package torhs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunFullStudy is the end-to-end integration test: one seed, every
// experiment, all renders present.
func TestRunFullStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study in -short mode")
	}
	cfg := DefaultStudyConfig(1)
	cfg.Scale = 0.03
	cfg.Clients = 400
	cfg.TrawlIPs = 20
	cfg.TrawlSteps = 5
	cfg.Relays = 300
	study, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 1", "55080-Skynet",
		"HTTPS certificates",
		"Table I",
		"language mix",
		"Fig. 2", "Adult",
		"Table II", "Goldnet", "SilkRoad",
		"Fig. 3",
		"Section VII", "FULL TAKEOVER",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q", want)
		}
	}
}

func TestNewStudyRejectsBadScale(t *testing.T) {
	cfg := DefaultStudyConfig(1)
	cfg.Scale = -1
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("negative scale accepted")
	}
}
