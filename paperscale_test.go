package torhs

// Paper-scale integration test: regenerates the study at the paper's full
// population size (39,824 services, 1,400 relays, 4,000 clients) and
// checks the headline numbers against the paper's bands. Takes ~30s;
// gated behind an environment variable so the default suite stays fast:
//
//	TORHS_PAPER_SCALE=1 go test -run TestPaperScale -v .

import (
	"os"
	"testing"

	"torhs/internal/experiments"
	"torhs/internal/hspop"
	"torhs/internal/scenario"
)

func paperScaleStudy(t *testing.T) *experiments.Study {
	t.Helper()
	if os.Getenv("TORHS_PAPER_SCALE") == "" {
		t.Skip("set TORHS_PAPER_SCALE=1 to run the full-scale study")
	}
	cfg := experiments.ConfigFromSpec(scenario.MustLookup(scenario.PaperScale), 42)
	s, err := experiments.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func within(t *testing.T, name string, got, want, tolerance float64) {
	t.Helper()
	lo, hi := want*(1-tolerance), want*(1+tolerance)
	if got < lo || got > hi {
		t.Errorf("%s = %.0f, want %.0f ± %.0f%%", name, got, want, tolerance*100)
	}
}

func TestPaperScaleScanAndCerts(t *testing.T) {
	s := paperScaleStudy(t)
	res, audit, err := s.RunScan()
	if err != nil {
		t.Fatal(err)
	}
	within(t, "addresses", float64(res.TotalAddresses), 39824, 0.02)
	within(t, "with descriptor", float64(res.WithDescriptor), 24511, 0.03)
	within(t, "port 55080", float64(res.OpenPortCount[hspop.PortSkynet]), 13854, 0.10)
	within(t, "port 80", float64(res.OpenPortCount[hspop.PortHTTP]), 4027, 0.10)
	within(t, "port 443", float64(res.OpenPortCount[hspop.PortHTTPS]), 1366, 0.10)
	within(t, "port 22", float64(res.OpenPortCount[hspop.PortSSH]), 1238, 0.10)
	within(t, "unique ports", float64(res.UniquePorts), 495, 0.25)
	within(t, "TorHost CNs", float64(audit.TorHostCN), 1168, 0.12)
	within(t, "DNS leaks", float64(audit.DNSLeaks), 34, 0.40)
}

func TestPaperScaleContentFunnel(t *testing.T) {
	s := paperScaleStudy(t)
	scanRes, _, err := s.RunScan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContent(scanRes)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "connected", float64(res.Connected), 6579, 0.10)
	within(t, "port 80 connected", float64(res.ConnectedByPort[hspop.PortHTTP]), 3741, 0.10)
	within(t, "short excluded", float64(res.ExcludedShort), 2348, 0.15)
	within(t, "SSH banners", float64(res.ExcludedSSHBanners), 1092, 0.15)
	within(t, "443 duplicates", float64(res.ExcludedDup443), 1108, 0.25)
	within(t, "classified", float64(res.Classified), 3050, 0.12)
	engFrac := float64(res.EnglishTotal) / float64(res.Classified)
	if engFrac < 0.80 || engFrac > 0.90 {
		t.Errorf("English fraction = %.2f, want ~0.84", engFrac)
	}
	if langs := len(res.LanguageCounts); langs < 15 {
		t.Errorf("languages detected = %d, want ~17", langs)
	}
}

func TestPaperScalePopularityRanking(t *testing.T) {
	s := paperScaleStudy(t)
	res, err := s.RunPopularity()
	if err != nil {
		t.Fatal(err)
	}
	if res.Harvest.CollectedFraction < 0.95 {
		t.Errorf("collection fraction = %.2f, want near-complete", res.Harvest.CollectedFraction)
	}
	unresolved := 1 - float64(res.Resolution.ResolvedRequests)/float64(res.Resolution.TotalRequests)
	if unresolved < 0.7 || unresolved > 0.9 {
		t.Errorf("unresolvable share = %.2f, want ~0.8", unresolved)
	}
	if res.Ranking[0].Label != "Goldnet" {
		t.Errorf("rank 1 = %q, want Goldnet", res.Ranking[0].Label)
	}
	skynet := 0
	for _, e := range res.Ranking[:30] {
		if e.Label == "Skynet" {
			skynet++
		}
	}
	if skynet < 7 {
		t.Errorf("Skynet in top 30 = %d, want ~10", skynet)
	}
	frac := res.Harvest.RequestedPublishedFraction()
	if frac <= 0 || frac > 0.3 {
		t.Errorf("requested/published = %.2f, want ~0.1", frac)
	}
}
