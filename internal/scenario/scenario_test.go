package scenario

import (
	"strings"
	"testing"
)

func TestPresetsAreValidAndUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, s := range Presets() {
		if err := s.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("preset %q has no description", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate preset %q", s.Name)
		}
		seen[s.Name] = true
	}
	for _, name := range []string{Laptop, Smoke, PaperScale, Stress, BotnetHeavy} {
		if !seen[name] {
			t.Errorf("named preset %q missing from Presets()", name)
		}
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup(Laptop)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != Laptop || s.Scale != 0.05 {
		t.Fatalf("laptop preset malformed: %+v", s)
	}
	if _, err := Lookup("no-such-scenario"); err == nil || !strings.Contains(err.Error(), Laptop) {
		t.Fatalf("unknown preset error should list the presets, got %v", err)
	}
}

func TestPresetsAreCopies(t *testing.T) {
	a := MustLookup(Smoke)
	a.Clients = -1
	if b := MustLookup(Smoke); b.Clients == -1 {
		t.Fatal("Lookup returned a shared Spec")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	good := MustLookup(Laptop)
	for _, tc := range []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"comma name", func(s *Spec) { s.Name = "a,b" }},
		{"zero scale", func(s *Spec) { s.Scale = 0 }},
		{"overscale", func(s *Spec) { s.Scale = 1.5 }},
		{"no clients", func(s *Spec) { s.Clients = 0 }},
		{"no fleet", func(s *Spec) { s.TrawlIPs = 0 }},
		{"no relays", func(s *Spec) { s.Relays = 0 }},
		{"negative bot factor", func(s *Spec) { s.BotFactor = -1 }},
		{"negative tracking days", func(s *Spec) { s.TrackingDays = -1 }},
	} {
		s := good
		tc.mutate(&s)
		if s.Validate() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
