// Package scenario declares the workload presets the experiment
// pipeline runs against. A Spec is pure data — how large the landscape
// is, how much traffic hits it, how big the honest relay network is —
// and the presets below are the named scenarios every layer consumes:
// experiments.ConfigFromSpec turns one into a study configuration,
// cmd/hsstudy selects one with -scenario, and the examples/ programs
// each start from the preset that matches their workload. Adding a
// workload means adding a preset here (plus, if it needs new artefacts,
// registering experiments) — no CLI, harness or substrate edits.
package scenario

import (
	"fmt"
	"strings"
)

// Preset names.
const (
	// Laptop is the default: a 5%-scale landscape whose result shapes
	// match the paper on a developer machine in seconds.
	Laptop = "laptop"
	// Smoke is the smallest useful study — demos, CI smoke jobs.
	Smoke = "smoke"
	// PaperScale reproduces the paper's February 2013 measurement:
	// 39,824 services, a 1,400-relay network, the 58-IP trawling fleet.
	PaperScale = "paper-scale"
	// Stress drives the full-scale landscape with several times the
	// paper's traffic and relay churn surface, for throughput work.
	Stress = "stress"
	// BotnetHeavy skews the population towards Skynet bots and C&C
	// traffic — the Section III census workload.
	BotnetHeavy = "botnet-heavy"
	// PaperScaleX100 stretches the paper's measurement a hundredfold
	// along the time axis — 100x the trawl rotation steps and a
	// 100x-longer tracking window — and runs the streaming pipeline so
	// peak live heap stays bounded by the sliding window ring rather
	// than growing with the axis.
	PaperScaleX100 = "paper-scale-x100"
)

// Spec is one declarative workload: everything a study needs to size
// its substrates and traffic, independent of seed and worker count
// (those stay runtime knobs).
type Spec struct {
	// Name is the preset key (CLI: -scenario NAME).
	Name string
	// Description is the one-line summary `hsstudy -list` prints.
	Description string
	// Scale shrinks the hidden-service population (1.0 = the paper's
	// 39,824 services).
	Scale float64
	// Clients is the simulated client population for traffic-driven
	// experiments.
	Clients int
	// TrawlIPs / TrawlSteps size the collection fleet.
	TrawlIPs   int
	TrawlSteps int
	// Relays sizes the honest relay network.
	Relays int
	// BotFactor scales the Skynet bot population relative to the
	// paper's calibrated count (0 means 1.0, the paper's mix).
	BotFactor float64
	// TrackingDays overrides the Section VII consensus-history window
	// in days (0 = the tracking substrate's default).
	TrackingDays int
	// PopularityTopN is how many head rows Table II always prints
	// (below-top rows still appear when labelled). 0 = the experiment
	// default (the paper's 30).
	PopularityTopN int
	// Stream runs the window-consuming kernels as a streaming pipeline
	// with a bounded sliding ring instead of materializing their full
	// time axis. Output bytes are identical either way; only the peak
	// working set changes.
	Stream bool
}

// TrackingWindow returns the Section VII history length in days: the
// preset's TrackingDays when set, otherwise def (the tracking
// substrate's own default).
func (s Spec) TrackingWindow(def int) int {
	if s.TrackingDays > 0 {
		return s.TrackingDays
	}
	return def
}

// Validate reports the first structurally invalid field.
func (s Spec) Validate() error {
	switch {
	case s.Name == "" || strings.ContainsAny(s.Name, ", \t\n"):
		return fmt.Errorf("scenario: invalid name %q", s.Name)
	case s.Scale <= 0 || s.Scale > 1:
		return fmt.Errorf("scenario %s: scale %v out of (0,1]", s.Name, s.Scale)
	case s.Clients <= 0:
		return fmt.Errorf("scenario %s: clients %d not positive", s.Name, s.Clients)
	case s.TrawlIPs <= 0 || s.TrawlSteps <= 0:
		return fmt.Errorf("scenario %s: trawl fleet %dx%d not positive", s.Name, s.TrawlIPs, s.TrawlSteps)
	case s.Relays <= 0:
		return fmt.Errorf("scenario %s: relays %d not positive", s.Name, s.Relays)
	case s.BotFactor < 0:
		return fmt.Errorf("scenario %s: bot factor %v negative", s.Name, s.BotFactor)
	case s.TrackingDays < 0:
		return fmt.Errorf("scenario %s: tracking days %d negative", s.Name, s.TrackingDays)
	case s.PopularityTopN < 0:
		return fmt.Errorf("scenario %s: popularity topN %d negative", s.Name, s.PopularityTopN)
	}
	return nil
}

// Presets returns every named scenario, in listing order. The slice and
// its Specs are fresh copies; callers may tweak them freely.
func Presets() []Spec {
	return []Spec{
		{
			Name:           Laptop,
			Description:    "default 5%-scale study; paper shapes in seconds on one machine",
			Scale:          0.05,
			Clients:        1500,
			TrawlIPs:       30,
			TrawlSteps:     8,
			Relays:         350,
			PopularityTopN: 30,
		},
		{
			Name:           Smoke,
			Description:    "smallest useful landscape, for demos and CI smoke runs",
			Scale:          0.03,
			Clients:        500,
			TrawlIPs:       20,
			TrawlSteps:     5,
			Relays:         300,
			PopularityTopN: 30,
		},
		{
			Name:           PaperScale,
			Description:    "the paper's Feb 2013 measurement: 39,824 services, 1,400 relays, 58-IP fleet",
			Scale:          1.0,
			Clients:        4000,
			TrawlIPs:       58,
			TrawlSteps:     12,
			Relays:         1400,
			PopularityTopN: 30,
		},
		{
			Name:           Stress,
			Description:    "full-scale landscape under 3x the paper's traffic and a doubled relay network",
			Scale:          1.0,
			Clients:        12000,
			TrawlIPs:       116,
			TrawlSteps:     24,
			Relays:         2800,
			TrackingDays:   240,
			PopularityTopN: 30,
		},
		{
			Name:           PaperScaleX100,
			Description:    "paper landscape stretched 100x along the time axis; streaming pipeline, bounded RSS",
			Scale:          1.0,
			Clients:        4000,
			TrawlIPs:       58,
			TrawlSteps:     1200,
			Relays:         1400,
			TrackingDays:   12000,
			PopularityTopN: 30,
			Stream:         true,
		},
		{
			Name:           BotnetHeavy,
			Description:    "Skynet-bot-skewed population with C&C-dominated traffic (Section III census)",
			Scale:          0.05,
			Clients:        3000,
			TrawlIPs:       30,
			TrawlSteps:     8,
			Relays:         350,
			BotFactor:      2.5,
			PopularityTopN: 30,
		},
	}
}

// Names lists the preset names in listing order.
func Names() []string {
	presets := Presets()
	out := make([]string, len(presets))
	for i, s := range presets {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the named preset.
func Lookup(name string) (Spec, error) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown preset %q (have: %s)", name, strings.Join(Names(), ", "))
}

// MustLookup is Lookup for preset names known at compile time.
func MustLookup(name string) Spec {
	s, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return s
}
