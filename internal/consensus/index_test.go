package consensus

import (
	"math/rand"
	"testing"

	"torhs/internal/onion"
)

// publishTestDoc builds a consensus over a mixed relay population.
func publishTestDoc(t *testing.T, seed int64, n int) *Document {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	auth := NewAuthority(DefaultThresholds())
	for i := 0; i < n; i++ {
		r := newRelay(rng, int64(i), "10.1.0."+string(rune('1'+i%200)), 100+rng.Intn(400))
		r.Start(at(-30 * 24))
		auth.Register(r)
	}
	return auth.Publish(at(0))
}

// TestDocumentCachedIndexesMatchEntries checks that the cached flag
// slices, ring, and lookup table agree with a direct scan of Entries.
func TestDocumentCachedIndexesMatchEntries(t *testing.T) {
	doc := publishTestDoc(t, 31, 120)

	var wantHSDirs, wantGuards []onion.Fingerprint
	for _, e := range doc.Entries {
		if e.Flags.Has(FlagHSDir) {
			wantHSDirs = append(wantHSDirs, e.Fingerprint)
		}
		if e.Flags.Has(FlagGuard) {
			wantGuards = append(wantGuards, e.Fingerprint)
		}
	}
	gotHSDirs := doc.HSDirs()
	if len(gotHSDirs) != len(wantHSDirs) {
		t.Fatalf("HSDirs len %d, want %d", len(gotHSDirs), len(wantHSDirs))
	}
	for i := range wantHSDirs {
		if gotHSDirs[i] != wantHSDirs[i] {
			t.Fatalf("HSDirs[%d] mismatch", i)
		}
	}
	if got, want := len(doc.Guards()), len(wantGuards); got != want {
		t.Fatalf("Guards len %d, want %d", got, want)
	}

	if got, want := doc.Ring().Len(), len(wantHSDirs); got != want {
		t.Fatalf("Ring len %d, want %d", got, want)
	}
	if doc.AverageGap() != doc.Ring().AverageGap() {
		t.Fatal("cached AverageGap differs from ring's")
	}

	// The accessors return the same cached objects every call.
	if doc.Ring() != doc.Ring() {
		t.Fatal("Ring() not cached")
	}
	if len(gotHSDirs) > 0 && &gotHSDirs[0] != &doc.HSDirs()[0] {
		t.Fatal("HSDirs() not cached")
	}

	for _, e := range doc.Entries {
		got, ok := doc.Lookup(e.Fingerprint)
		if !ok || got.RelayID != e.RelayID {
			t.Fatalf("Lookup(%x) = %+v, %v", e.Fingerprint, got, ok)
		}
	}
	rng := rand.New(rand.NewSource(32))
	if _, ok := doc.Lookup(onion.RandomFingerprint(rng)); ok {
		t.Fatal("Lookup of absent fingerprint succeeded")
	}
}

// TestDocumentLookupAllocsZero locks in the allocation-free lookup the
// tracking sweep depends on (the index is built on first use, so warm it
// before measuring).
func TestDocumentLookupAllocsZero(t *testing.T) {
	doc := publishTestDoc(t, 33, 100)
	fp := doc.Entries[len(doc.Entries)/2].Fingerprint
	doc.Lookup(fp) // build the index outside the measured runs
	var (
		e  Entry
		ok bool
	)
	if avg := testing.AllocsPerRun(100, func() { e, ok = doc.Lookup(fp) }); avg != 0 {
		t.Errorf("Lookup: %v allocs/op, want 0", avg)
	}
	_, _ = e, ok
}
