// Package consensus models Tor's directory authorities: monitoring
// self-advertised relays, enforcing the two-relays-per-IP consensus rule,
// assigning flags (Fast, Stable, Guard, HSDir), and publishing periodic
// consensus documents into a queryable history archive.
//
// Two behaviours matter for the paper:
//
//  1. Only the two highest-bandwidth relays per IP address enter the
//     consensus ("active" relays); the rest ("shadow" relays) keep running
//     and keep accruing uptime, so their flags reflect their *real* run
//     time the moment they become active. This is the flaw behind the
//     trawling collection (Section II-A).
//  2. The HSDir flag requires ≥ 25 hours of continuous uptime, which both
//     enables the attack and provides the "became HSDir exactly 25 hours
//     after appearing" tracking-detection signal (Section VII).
package consensus

import (
	"sort"
	"strings"
	"sync"
	"time"

	"torhs/internal/hsdir"
	"torhs/internal/onion"
	"torhs/internal/relay"
)

// Flag is a consensus relay flag bitmask.
type Flag uint8

// Relay flags assigned by the authority.
const (
	FlagRunning Flag = 1 << iota
	FlagFast
	FlagStable
	FlagGuard
	FlagHSDir
)

// Has reports whether all bits in want are set.
func (f Flag) Has(want Flag) bool { return f&want == want }

// String renders the flags in consensus-document order.
func (f Flag) String() string {
	var b strings.Builder
	b.Grow(len("Fast Guard HSDir Running Stable"))
	add := func(s string) {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s)
	}
	if f.Has(FlagFast) {
		add("Fast")
	}
	if f.Has(FlagGuard) {
		add("Guard")
	}
	if f.Has(FlagHSDir) {
		add("HSDir")
	}
	if f.Has(FlagRunning) {
		add("Running")
	}
	if f.Has(FlagStable) {
		add("Stable")
	}
	return b.String()
}

// Entry is one relay line in a consensus document.
type Entry struct {
	Fingerprint onion.Fingerprint
	RelayID     relay.ID
	Nickname    string
	IP          string
	ORPort      int
	Bandwidth   int
	Flags       Flag
	// Uptime is the authority-observed continuous uptime at publication.
	Uptime time.Duration
}

// Document is a published consensus: the authority's view of the network
// at ValidAfter, entries sorted by fingerprint.
//
// A document is immutable once published (Entries never change after the
// document enters a History), so the flag slices, the fingerprint lookup
// table, and the HSDir ring are computed at most once, lazily, under a
// sync.Once; every accessor below is safe for concurrent use and the
// returned slices and ring alias the cache — callers must not mutate
// them. Documents must not be copied by value after first use.
type Document struct {
	ValidAfter time.Time
	Entries    []Entry

	idxOnce sync.Once
	idx     docIndex
}

// docIndex holds the lazily-built immutable per-document indexes.
type docIndex struct {
	hsdirs  []onion.Fingerprint
	guards  []onion.Fingerprint
	byFP    map[onion.Fingerprint]int32
	ring    *hsdir.Ring
	ringPos map[onion.Fingerprint]int32
	avgGap  onion.RingInt
}

func (d *Document) index() *docIndex {
	d.idxOnce.Do(func() {
		ix := &d.idx
		ix.byFP = make(map[onion.Fingerprint]int32, len(d.Entries))
		for i, e := range d.Entries {
			if _, dup := ix.byFP[e.Fingerprint]; !dup {
				ix.byFP[e.Fingerprint] = int32(i)
			}
			if e.Flags.Has(FlagHSDir) {
				ix.hsdirs = append(ix.hsdirs, e.Fingerprint)
			}
			if e.Flags.Has(FlagGuard) {
				ix.guards = append(ix.guards, e.Fingerprint)
			}
		}
		ix.ring = hsdir.NewRing(ix.hsdirs)
		ix.ringPos = make(map[onion.Fingerprint]int32, ix.ring.Len())
		for i, fp := range ix.ring.Fingerprints() {
			ix.ringPos[fp] = int32(i)
		}
		ix.avgGap = ix.ring.AverageGap()
	})
	return &d.idx
}

// HSDirs returns the fingerprints of all entries carrying the HSDir flag,
// in ring (sorted) order. This is the input to responsible-directory
// selection. The result is cached; callers must not mutate it.
func (d *Document) HSDirs() []onion.Fingerprint { return d.index().hsdirs }

// Guards returns the fingerprints of all entries carrying the Guard flag.
// The result is cached; callers must not mutate it.
func (d *Document) Guards() []onion.Fingerprint { return d.index().guards }

// Ring returns the document's HSDir fingerprint ring, built once and
// shared by every caller analysing this consensus.
func (d *Document) Ring() *hsdir.Ring { return d.index().ring }

// AverageGap returns the cached mean inter-fingerprint gap of the
// document's HSDir ring.
func (d *Document) AverageGap() onion.RingInt { return d.index().avgGap }

// HSDirRingPos returns the position of fingerprint f on the document's
// HSDir ring (the index into Ring().Fingerprints()), if f carries the
// HSDir flag. Consumers that keep per-HSDir state in dense ring-ordered
// arrays — the simnet descriptor directories — resolve fingerprints to
// integer relay handles through this cached table exactly once instead
// of keying their own maps.
func (d *Document) HSDirRingPos(f onion.Fingerprint) (int32, bool) {
	i, ok := d.index().ringPos[f]
	return i, ok
}

// Lookup returns the entry for fingerprint f, if present. The cached
// fingerprint table makes the lookup O(1) and allocation-free.
func (d *Document) Lookup(f onion.Fingerprint) (Entry, bool) {
	if i, ok := d.index().byFP[f]; ok {
		return d.Entries[i], true
	}
	return Entry{}, false
}

// Thresholds parameterise flag assignment.
type Thresholds struct {
	// HSDirUptime is the continuous uptime required for the HSDir flag
	// (25 h on the 2013 network).
	HSDirUptime time.Duration
	// StableUptime is the continuous uptime required for the Stable flag.
	StableUptime time.Duration
	// GuardUptime is the continuous uptime required for the Guard flag.
	GuardUptime time.Duration
	// GuardBandwidth is the minimum bandwidth (KB/s) for the Guard flag.
	GuardBandwidth int
	// FastBandwidth is the minimum bandwidth (KB/s) for the Fast flag.
	FastBandwidth int
	// MaxPerIP is the maximum number of relays per IP admitted to the
	// consensus (2 on the real network).
	MaxPerIP int
}

// DefaultThresholds returns the 2013-network parameters used throughout
// the reproduction.
func DefaultThresholds() Thresholds {
	return Thresholds{
		HSDirUptime:    25 * time.Hour,
		StableUptime:   5 * 24 * time.Hour,
		GuardUptime:    8 * 24 * time.Hour,
		GuardBandwidth: 250,
		FastBandwidth:  100,
		MaxPerIP:       2,
	}
}

// Authority is a (collapsed) set of directory authorities: it monitors
// registered relays and periodically publishes consensus documents.
type Authority struct {
	thresholds Thresholds
	relays     []*relay.Relay
	byID       map[relay.ID]*relay.Relay
}

// NewAuthority creates an authority with the given thresholds.
func NewAuthority(th Thresholds) *Authority {
	return &Authority{
		thresholds: th,
		byID:       make(map[relay.ID]*relay.Relay),
	}
}

// Register adds a self-advertised relay to the authority's watch list.
// Registering the same relay twice is a no-op.
func (a *Authority) Register(r *relay.Relay) {
	if _, ok := a.byID[r.ID()]; ok {
		return
	}
	a.relays = append(a.relays, r)
	a.byID[r.ID()] = r
}

// Registered returns the number of watched relays.
func (a *Authority) Registered() int { return len(a.relays) }

// flagsFor computes the flags a relay earns from its probe status.
func (a *Authority) flagsFor(s relay.Status) Flag {
	f := FlagRunning
	if s.Bandwidth >= a.thresholds.FastBandwidth {
		f |= FlagFast
	}
	if s.Uptime >= a.thresholds.StableUptime {
		f |= FlagStable
	}
	if s.Uptime >= a.thresholds.GuardUptime && s.Bandwidth >= a.thresholds.GuardBandwidth {
		f |= FlagGuard
	}
	if s.Uptime >= a.thresholds.HSDirUptime {
		f |= FlagHSDir
	}
	return f
}

// Publish probes every registered relay and produces the consensus valid
// from now. Per IP address, only the MaxPerIP highest-bandwidth reachable
// relays are admitted (ties broken by fingerprint for determinism); the
// rest are the "shadow relays" of Section II-A.
func (a *Authority) Publish(now time.Time) *Document {
	statuses := make([]relay.Status, 0, len(a.relays))
	for _, r := range a.relays {
		s := r.StatusAt(now)
		if s.Running && s.Reachable {
			statuses = append(statuses, s)
		}
	}

	byIP := make(map[string][]relay.Status, len(statuses))
	for _, s := range statuses {
		byIP[s.IP] = append(byIP[s.IP], s)
	}

	doc := &Document{ValidAfter: now}
	for _, group := range byIP {
		sort.Slice(group, func(i, j int) bool {
			if group[i].Bandwidth != group[j].Bandwidth {
				return group[i].Bandwidth > group[j].Bandwidth
			}
			return group[i].Fingerprint.Less(group[j].Fingerprint)
		})
		n := a.thresholds.MaxPerIP
		if n > len(group) {
			n = len(group)
		}
		for _, s := range group[:n] {
			doc.Entries = append(doc.Entries, Entry{
				Fingerprint: s.Fingerprint,
				RelayID:     s.ID,
				Nickname:    s.Nickname,
				IP:          s.IP,
				ORPort:      s.ORPort,
				Bandwidth:   s.Bandwidth,
				Flags:       a.flagsFor(s),
				Uptime:      s.Uptime,
			})
		}
	}

	sort.Slice(doc.Entries, func(i, j int) bool {
		return doc.Entries[i].Fingerprint.Less(doc.Entries[j].Fingerprint)
	})
	return doc
}

// ShadowCount reports how many running, reachable relays were *excluded*
// from the given consensus by the per-IP cap — i.e. the size of the shadow
// population an attacker could be hiding.
func (a *Authority) ShadowCount(now time.Time, doc *Document) int {
	inDoc := make(map[onion.Fingerprint]bool, len(doc.Entries))
	for _, e := range doc.Entries {
		inDoc[e.Fingerprint] = true
	}
	n := 0
	for _, r := range a.relays {
		s := r.StatusAt(now)
		if s.Running && s.Reachable && !inDoc[s.Fingerprint] {
			n++
		}
	}
	return n
}
