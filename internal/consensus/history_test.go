package consensus

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"torhs/internal/relay"
)

func buildDoc(t *testing.T, seed int64, validAfter time.Time, n int) *Document {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	auth := NewAuthority(DefaultThresholds())
	for i := 0; i < n; i++ {
		r := relay.New(relay.Config{
			ID:        relay.ID(i),
			Nickname:  "node",
			IP:        randIP(rng),
			ORPort:    9001,
			Bandwidth: 100 + rng.Intn(400),
		}, rng)
		r.Start(validAfter.Add(-30 * time.Hour))
		auth.Register(r)
	}
	return auth.Publish(validAfter)
}

func randIP(rng *rand.Rand) string {
	return "10." + itoa(rng.Intn(256)) + "." + itoa(rng.Intn(256)) + "." + itoa(rng.Intn(254)+1)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func TestHistoryAtPicksLatestNotAfter(t *testing.T) {
	h := NewHistory()
	d1 := &Document{ValidAfter: at(0)}
	d2 := &Document{ValidAfter: at(24)}
	if err := h.Append(d1); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(d2); err != nil {
		t.Fatal(err)
	}

	got, err := h.At(at(12))
	if err != nil {
		t.Fatal(err)
	}
	if got != d1 {
		t.Fatal("At(12h) returned wrong document")
	}
	got, err = h.At(at(24))
	if err != nil {
		t.Fatal(err)
	}
	if got != d2 {
		t.Fatal("At(24h) returned wrong document")
	}
}

func TestHistoryAtBeforeFirst(t *testing.T) {
	h := NewHistory()
	if err := h.Append(&Document{ValidAfter: at(10)}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.At(at(5)); !errors.Is(err, ErrNoDocument) {
		t.Fatalf("err = %v, want ErrNoDocument", err)
	}
}

func TestHistoryAppendOutOfOrderRejected(t *testing.T) {
	h := NewHistory()
	if err := h.Append(&Document{ValidAfter: at(10)}); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(&Document{ValidAfter: at(5)}); err == nil {
		t.Fatal("out-of-order append succeeded")
	}
}

func TestHistoryRange(t *testing.T) {
	h := NewHistory()
	for d := 0; d < 10; d++ {
		if err := h.Append(&Document{ValidAfter: at(24 * d)}); err != nil {
			t.Fatal(err)
		}
	}
	got := h.Range(at(48), at(96))
	if len(got) != 3 {
		t.Fatalf("range length = %d, want 3", len(got))
	}
	if !got[0].ValidAfter.Equal(at(48)) || !got[2].ValidAfter.Equal(at(96)) {
		t.Fatal("range bounds wrong")
	}
}

func TestHistoryFirstAppearance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := relay.New(relay.Config{ID: 1, Nickname: "late", IP: "10.9.9.9", ORPort: 9001, Bandwidth: 100}, rng)

	auth := NewAuthority(DefaultThresholds())
	auth.Register(r)
	h := NewHistory()

	if err := h.Append(auth.Publish(at(0))); err != nil {
		t.Fatal(err)
	}
	r.Start(at(10))
	if err := h.Append(auth.Publish(at(24))); err != nil {
		t.Fatal(err)
	}

	first, ok := h.FirstAppearance(r.Fingerprint())
	if !ok {
		t.Fatal("relay never found")
	}
	if !first.Equal(at(24)) {
		t.Fatalf("first appearance = %v, want %v", first, at(24))
	}

	var never [20]byte
	if _, ok := h.FirstAppearance(never); ok {
		t.Fatal("phantom fingerprint found")
	}
}

// TestHistoryFirstAppearanceInvalidatedOnAppend checks that the cached
// first-seen map picks up fingerprints introduced by documents appended
// after the first query.
func TestHistoryFirstAppearanceInvalidatedOnAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	early := relay.New(relay.Config{ID: 1, Nickname: "early", IP: "10.9.9.1", ORPort: 9001, Bandwidth: 100}, rng)
	late := relay.New(relay.Config{ID: 2, Nickname: "late", IP: "10.9.9.2", ORPort: 9001, Bandwidth: 100}, rng)

	auth := NewAuthority(DefaultThresholds())
	auth.Register(early)
	auth.Register(late)
	h := NewHistory()

	early.Start(at(-1))
	if err := h.Append(auth.Publish(at(0))); err != nil {
		t.Fatal(err)
	}
	// First query builds the cached map — before the late relay exists.
	if _, ok := h.FirstAppearance(early.Fingerprint()); !ok {
		t.Fatal("early relay not found")
	}
	if _, ok := h.FirstAppearance(late.Fingerprint()); ok {
		t.Fatal("late relay found before it appeared")
	}

	late.Start(at(10))
	if err := h.Append(auth.Publish(at(24))); err != nil {
		t.Fatal(err)
	}
	first, ok := h.FirstAppearance(late.Fingerprint())
	if !ok {
		t.Fatal("late relay not found after append")
	}
	if !first.Equal(at(24)) {
		t.Fatalf("late first appearance = %v, want %v", first, at(24))
	}
	// The earlier fingerprint keeps its original first sighting.
	if first, _ := h.FirstAppearance(early.Fingerprint()); !first.Equal(at(0)) {
		t.Fatalf("early first appearance = %v, want %v", first, at(0))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	doc := buildDoc(t, 11, at(0), 40)
	var buf bytes.Buffer
	if err := doc.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ValidAfter.Equal(doc.ValidAfter) {
		t.Fatal("valid-after mismatch")
	}
	if len(got.Entries) != len(doc.Entries) {
		t.Fatalf("entries = %d, want %d", len(got.Entries), len(doc.Entries))
	}
	for i := range got.Entries {
		a, b := got.Entries[i], doc.Entries[i]
		if a.Fingerprint != b.Fingerprint || a.Flags != b.Flags ||
			a.Bandwidth != b.Bandwidth || a.IP != b.IP ||
			a.Uptime != b.Uptime || a.RelayID != b.RelayID {
			t.Fatalf("entry %d mismatch:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "hello\n"},
		{"missing valid-after", headerLine + "\n"},
		{"bad valid-after", headerLine + "\nvalid-after yesterday\n"},
		{"s before r", headerLine + "\nvalid-after 2013-02-04T00:00:00Z\ns Fast\n"},
		{"short r line", headerLine + "\nvalid-after 2013-02-04T00:00:00Z\nr onlyname\n"},
		{"bad fingerprint", headerLine + "\nvalid-after 2013-02-04T00:00:00Z\nr n XYZ 1.2.3.4 9001 100 0 1\n"},
		{"unknown flag", headerLine + "\nvalid-after 2013-02-04T00:00:00Z\nr n " + strings.Repeat("AB", 20) + " 1.2.3.4 9001 100 0 1\ns Turbo\n"},
		{"junk line", headerLine + "\nvalid-after 2013-02-04T00:00:00Z\nx what\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("Unmarshal(%q) succeeded, want error", tc.in)
			}
		})
	}
}

// Property: any authority-produced document survives a codec round trip
// bit-for-bit on all fields.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		doc := buildDoc(t, seed, at(int(n%48)), int(n%60)+1)
		var buf bytes.Buffer
		if err := doc.Marshal(&buf); err != nil {
			return false
		}
		got, err := Unmarshal(&buf)
		if err != nil {
			return false
		}
		if len(got.Entries) != len(doc.Entries) || !got.ValidAfter.Equal(doc.ValidAfter) {
			return false
		}
		for i := range got.Entries {
			a, b := got.Entries[i], doc.Entries[i]
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHSDirsAndGuardsFiltering(t *testing.T) {
	doc := buildDoc(t, 12, at(0), 60)
	hsdirs := doc.HSDirs()
	if len(hsdirs) == 0 {
		t.Fatal("no HSDirs in 30h-old population")
	}
	for _, f := range hsdirs {
		e, ok := doc.Lookup(f)
		if !ok || !e.Flags.Has(FlagHSDir) {
			t.Fatal("HSDirs() returned non-HSDir entry")
		}
	}
	for i := 1; i < len(hsdirs); i++ {
		if !hsdirs[i-1].Less(hsdirs[i]) {
			t.Fatal("HSDirs not in ring order")
		}
	}
	for _, f := range doc.Guards() {
		e, ok := doc.Lookup(f)
		if !ok || !e.Flags.Has(FlagGuard) {
			t.Fatal("Guards() returned non-Guard entry")
		}
	}
}
