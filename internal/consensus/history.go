package consensus

import (
	"errors"
	"sort"
	"sync"
	"time"

	"torhs/internal/onion"
)

// ErrNoDocument is returned when the archive has no consensus covering the
// requested instant.
var ErrNoDocument = errors.New("consensus: no document for instant")

// History is an append-only archive of consensus documents, the raw
// material of the paper's Section VII tracking detection (three years of
// consensus history around Silk Road).
type History struct {
	docs []*Document // sorted by ValidAfter

	// firstSeen caches fingerprint → first ValidAfter. The archive is
	// append-only, so the map is built once on first FirstAppearance call
	// and invalidated whenever Append grows the archive.
	mu        sync.Mutex
	firstSeen map[onion.Fingerprint]time.Time
}

// NewHistory returns an empty archive.
func NewHistory() *History { return &History{} }

// Append stores a document. Documents must be appended in ValidAfter
// order; out-of-order appends are rejected.
func (h *History) Append(doc *Document) error {
	if n := len(h.docs); n > 0 && doc.ValidAfter.Before(h.docs[n-1].ValidAfter) {
		return errors.New("consensus: out-of-order append")
	}
	h.docs = append(h.docs, doc)
	h.mu.Lock()
	h.firstSeen = nil // the new document may introduce fingerprints
	h.mu.Unlock()
	return nil
}

// Len returns the number of archived documents.
func (h *History) Len() int { return len(h.docs) }

// At returns the document valid at instant t: the latest document whose
// ValidAfter is not after t.
func (h *History) At(t time.Time) (*Document, error) {
	i := sort.Search(len(h.docs), func(i int) bool {
		return h.docs[i].ValidAfter.After(t)
	})
	if i == 0 {
		return nil, ErrNoDocument
	}
	return h.docs[i-1], nil
}

// Range returns all documents with ValidAfter in [from, to], in order.
// The returned slice aliases the archive; callers must not mutate it.
func (h *History) Range(from, to time.Time) []*Document {
	lo := sort.Search(len(h.docs), func(i int) bool {
		return !h.docs[i].ValidAfter.Before(from)
	})
	hi := sort.Search(len(h.docs), func(i int) bool {
		return h.docs[i].ValidAfter.After(to)
	})
	return h.docs[lo:hi]
}

// All returns every archived document in order. The returned slice aliases
// the archive; callers must not mutate it.
func (h *History) All() []*Document { return h.docs }

// FirstAppearance returns the ValidAfter of the first document containing
// fingerprint f, or false if f never appeared. Tracking detection uses
// this for the "became responsible HSDir 25 hours after appearing in the
// consensus" rule; the per-relay calls it makes made the old
// scan-the-whole-archive implementation O(docs · log n) per call. The
// first-seen map is built once per archive state (one linear pass over
// every entry) and each call is then a single map lookup.
func (h *History) FirstAppearance(f onion.Fingerprint) (time.Time, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.firstSeen == nil {
		m := make(map[onion.Fingerprint]time.Time)
		for _, doc := range h.docs {
			for i := range doc.Entries {
				fp := doc.Entries[i].Fingerprint
				if _, ok := m[fp]; !ok {
					m[fp] = doc.ValidAfter
				}
			}
		}
		h.firstSeen = m
	}
	t, ok := h.firstSeen[f]
	return t, ok
}
