package consensus

import (
	"errors"
	"sort"
	"time"

	"torhs/internal/onion"
)

// ErrNoDocument is returned when the archive has no consensus covering the
// requested instant.
var ErrNoDocument = errors.New("consensus: no document for instant")

// History is an append-only archive of consensus documents, the raw
// material of the paper's Section VII tracking detection (three years of
// consensus history around Silk Road).
type History struct {
	docs []*Document // sorted by ValidAfter
}

// NewHistory returns an empty archive.
func NewHistory() *History { return &History{} }

// Append stores a document. Documents must be appended in ValidAfter
// order; out-of-order appends are rejected.
func (h *History) Append(doc *Document) error {
	if n := len(h.docs); n > 0 && doc.ValidAfter.Before(h.docs[n-1].ValidAfter) {
		return errors.New("consensus: out-of-order append")
	}
	h.docs = append(h.docs, doc)
	return nil
}

// Len returns the number of archived documents.
func (h *History) Len() int { return len(h.docs) }

// At returns the document valid at instant t: the latest document whose
// ValidAfter is not after t.
func (h *History) At(t time.Time) (*Document, error) {
	i := sort.Search(len(h.docs), func(i int) bool {
		return h.docs[i].ValidAfter.After(t)
	})
	if i == 0 {
		return nil, ErrNoDocument
	}
	return h.docs[i-1], nil
}

// Range returns all documents with ValidAfter in [from, to], in order.
// The returned slice aliases the archive; callers must not mutate it.
func (h *History) Range(from, to time.Time) []*Document {
	lo := sort.Search(len(h.docs), func(i int) bool {
		return !h.docs[i].ValidAfter.Before(from)
	})
	hi := sort.Search(len(h.docs), func(i int) bool {
		return h.docs[i].ValidAfter.After(to)
	})
	return h.docs[lo:hi]
}

// All returns every archived document in order. The returned slice aliases
// the archive; callers must not mutate it.
func (h *History) All() []*Document { return h.docs }

// FirstAppearance returns the ValidAfter of the first document containing
// fingerprint f, or false if f never appeared. Tracking detection uses
// this for the "became responsible HSDir 25 hours after appearing in the
// consensus" rule.
func (h *History) FirstAppearance(f onion.Fingerprint) (time.Time, bool) {
	for _, doc := range h.docs {
		if _, ok := doc.Lookup(f); ok {
			return doc.ValidAfter, true
		}
	}
	return time.Time{}, false
}
