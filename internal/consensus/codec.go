package consensus

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"torhs/internal/onion"
	"torhs/internal/relay"
)

// The text codec serialises consensus documents in a format modelled on
// Tor's v3 network-status documents, so archives produced by the
// simulation can be saved, inspected, and replayed by the CLI tools.
//
//	network-status-version 3 torhs
//	valid-after 2013-02-04T00:00:00Z
//	r <nickname> <fingerprint> <ip> <orport> <bandwidth> <uptime-sec> <relay-id>
//	s <flags...>

const headerLine = "network-status-version 3 torhs"

// Marshal writes the document in the text format.
func (d *Document) Marshal(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, headerLine)
	fmt.Fprintf(bw, "valid-after %s\n", d.ValidAfter.UTC().Format(time.RFC3339))
	for _, e := range d.Entries {
		fmt.Fprintf(bw, "r %s %s %s %d %d %d %d\n",
			e.Nickname, e.Fingerprint.Hex(), e.IP, e.ORPort,
			e.Bandwidth, int64(e.Uptime/time.Second), int64(e.RelayID))
		fmt.Fprintf(bw, "s %s\n", e.Flags)
	}
	return bw.Flush()
}

// MarshalText returns the document as a byte slice.
func (d *Document) MarshalText() ([]byte, error) {
	var buf bytes.Buffer
	if err := d.Marshal(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a document in the text format.
func Unmarshal(r io.Reader) (*Document, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("consensus: empty document")
	}
	if got := sc.Text(); got != headerLine {
		return nil, fmt.Errorf("consensus: bad header %q", got)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("consensus: missing valid-after")
	}
	vaLine := sc.Text()
	if !strings.HasPrefix(vaLine, "valid-after ") {
		return nil, fmt.Errorf("consensus: bad valid-after line %q", vaLine)
	}
	va, err := time.Parse(time.RFC3339, strings.TrimPrefix(vaLine, "valid-after "))
	if err != nil {
		return nil, fmt.Errorf("consensus: parse valid-after: %w", err)
	}

	doc := &Document{ValidAfter: va}
	var cur *Entry
	lineNo := 2
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "r "):
			fields := strings.Fields(line)
			if len(fields) != 8 {
				return nil, fmt.Errorf("consensus: line %d: r line has %d fields, want 8", lineNo, len(fields))
			}
			fp, err := parseFingerprint(fields[2])
			if err != nil {
				return nil, fmt.Errorf("consensus: line %d: %w", lineNo, err)
			}
			orPort, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("consensus: line %d: orport: %w", lineNo, err)
			}
			bw, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("consensus: line %d: bandwidth: %w", lineNo, err)
			}
			uptimeSec, err := strconv.ParseInt(fields[6], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("consensus: line %d: uptime: %w", lineNo, err)
			}
			rid, err := strconv.ParseInt(fields[7], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("consensus: line %d: relay-id: %w", lineNo, err)
			}
			doc.Entries = append(doc.Entries, Entry{
				Nickname:    fields[1],
				Fingerprint: fp,
				IP:          fields[3],
				ORPort:      orPort,
				Bandwidth:   bw,
				Uptime:      time.Duration(uptimeSec) * time.Second,
				RelayID:     relay.ID(rid),
			})
			cur = &doc.Entries[len(doc.Entries)-1]
		case strings.HasPrefix(line, "s"):
			if cur == nil {
				return nil, fmt.Errorf("consensus: line %d: s line before any r line", lineNo)
			}
			flags, err := parseFlags(strings.Fields(line)[1:])
			if err != nil {
				return nil, fmt.Errorf("consensus: line %d: %w", lineNo, err)
			}
			cur.Flags = flags
			cur = nil
		case strings.TrimSpace(line) == "":
			// skip blank lines
		default:
			return nil, fmt.Errorf("consensus: line %d: unrecognised line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("consensus: scan: %w", err)
	}
	return doc, nil
}

func parseFingerprint(s string) (onion.Fingerprint, error) {
	var fp onion.Fingerprint
	raw, err := hex.DecodeString(strings.ToLower(s))
	if err != nil {
		return fp, fmt.Errorf("fingerprint %q: %w", s, err)
	}
	if len(raw) != len(fp) {
		return fp, fmt.Errorf("fingerprint %q: length %d, want %d", s, len(raw), len(fp))
	}
	copy(fp[:], raw)
	return fp, nil
}

func parseFlags(names []string) (Flag, error) {
	var f Flag
	for _, n := range names {
		switch n {
		case "Fast":
			f |= FlagFast
		case "Guard":
			f |= FlagGuard
		case "HSDir":
			f |= FlagHSDir
		case "Running":
			f |= FlagRunning
		case "Stable":
			f |= FlagStable
		default:
			return 0, fmt.Errorf("unknown flag %q", n)
		}
	}
	return f, nil
}
