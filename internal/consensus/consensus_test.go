package consensus

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"torhs/internal/relay"
)

func at(h int) time.Time {
	return time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func newRelay(rng *rand.Rand, id int64, ip string, bw int) *relay.Relay {
	return relay.New(relay.Config{
		ID:        relay.ID(id),
		Nickname:  "r" + string(rune('A'+id%26)),
		IP:        ip,
		ORPort:    9001,
		Bandwidth: bw,
	}, rng)
}

func TestPublishExcludesDownAndUnreachable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	auth := NewAuthority(DefaultThresholds())

	up := newRelay(rng, 1, "10.0.0.1", 100)
	down := newRelay(rng, 2, "10.0.0.2", 100)
	unreach := newRelay(rng, 3, "10.0.0.3", 100)

	up.Start(at(0))
	unreach.Start(at(0))
	unreach.SetReachable(false)

	for _, r := range []*relay.Relay{up, down, unreach} {
		auth.Register(r)
	}

	doc := auth.Publish(at(1))
	if len(doc.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(doc.Entries))
	}
	if doc.Entries[0].RelayID != 1 {
		t.Fatalf("wrong relay in consensus: %d", doc.Entries[0].RelayID)
	}
}

func TestPublishTwoPerIPByBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	auth := NewAuthority(DefaultThresholds())

	// Five relays on one IP; only the two fastest should appear.
	bws := []int{50, 400, 100, 300, 200}
	for i, bw := range bws {
		r := newRelay(rng, int64(i+1), "10.0.0.1", bw)
		r.Start(at(0))
		auth.Register(r)
	}

	doc := auth.Publish(at(1))
	if len(doc.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(doc.Entries))
	}
	got := map[int]bool{}
	for _, e := range doc.Entries {
		got[e.Bandwidth] = true
	}
	if !got[400] || !got[300] {
		t.Fatalf("wrong relays selected: %+v", doc.Entries)
	}
	if n := auth.ShadowCount(at(1), doc); n != 3 {
		t.Fatalf("shadow count = %d, want 3", n)
	}
}

func TestShadowPromotionOnUnreachability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	auth := NewAuthority(DefaultThresholds())

	fast := newRelay(rng, 1, "10.0.0.1", 400)
	mid := newRelay(rng, 2, "10.0.0.1", 300)
	shadow := newRelay(rng, 3, "10.0.0.1", 200)
	for _, r := range []*relay.Relay{fast, mid, shadow} {
		r.Start(at(0))
		auth.Register(r)
	}

	doc := auth.Publish(at(26))
	if _, ok := doc.Lookup(shadow.Fingerprint()); ok {
		t.Fatal("shadow relay in consensus before promotion")
	}

	// The attacker takes the fast relay off the air; the shadow becomes
	// active *with its accrued HSDir flag*.
	fast.SetReachable(false)
	doc = auth.Publish(at(27))
	e, ok := doc.Lookup(shadow.Fingerprint())
	if !ok {
		t.Fatal("shadow relay not promoted")
	}
	if !e.Flags.Has(FlagHSDir) {
		t.Fatalf("promoted shadow lacks HSDir flag (uptime %v)", e.Uptime)
	}
}

func TestHSDirFlagRequires25Hours(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	auth := NewAuthority(DefaultThresholds())
	r := newRelay(rng, 1, "10.0.0.1", 100)
	r.Start(at(0))
	auth.Register(r)

	if e := auth.Publish(at(24)).Entries[0]; e.Flags.Has(FlagHSDir) {
		t.Fatal("HSDir flag granted before 25h")
	}
	if e := auth.Publish(at(25)).Entries[0]; !e.Flags.Has(FlagHSDir) {
		t.Fatal("HSDir flag missing at 25h")
	}
}

func TestFingerprintSwitchResetsHSDirFlag(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	auth := NewAuthority(DefaultThresholds())
	r := newRelay(rng, 1, "10.0.0.1", 100)
	r.Start(at(0))
	auth.Register(r)

	if e := auth.Publish(at(30)).Entries[0]; !e.Flags.Has(FlagHSDir) {
		t.Fatal("HSDir flag missing at 30h")
	}
	r.SwitchFingerprint(rng, at(30))
	if e := auth.Publish(at(31)).Entries[0]; e.Flags.Has(FlagHSDir) {
		t.Fatal("HSDir flag survived identity switch")
	}
	if e := auth.Publish(at(56)).Entries[0]; !e.Flags.Has(FlagHSDir) {
		t.Fatal("HSDir flag not re-earned 26h after switch")
	}
}

func TestGuardFlagNeedsUptimeAndBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	auth := NewAuthority(DefaultThresholds())
	slow := newRelay(rng, 1, "10.0.0.1", 50)
	fast := newRelay(rng, 2, "10.0.0.2", 500)
	slow.Start(at(0))
	fast.Start(at(0))
	auth.Register(slow)
	auth.Register(fast)

	doc := auth.Publish(at(9 * 24))
	if e, _ := doc.Lookup(slow.Fingerprint()); e.Flags.Has(FlagGuard) {
		t.Fatal("slow relay got Guard flag")
	}
	if e, _ := doc.Lookup(fast.Fingerprint()); !e.Flags.Has(FlagGuard) {
		t.Fatal("fast long-lived relay missing Guard flag")
	}
}

func TestEntriesSortedByFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	auth := NewAuthority(DefaultThresholds())
	for i := 0; i < 50; i++ {
		r := newRelay(rng, int64(i), "10.0.1."+string(rune('0'+i%10))+string(rune('0'+i/10)), 100)
		r.Start(at(0))
		auth.Register(r)
	}
	doc := auth.Publish(at(1))
	for i := 1; i < len(doc.Entries); i++ {
		if !doc.Entries[i-1].Fingerprint.Less(doc.Entries[i].Fingerprint) {
			t.Fatal("entries not sorted by fingerprint")
		}
	}
}

func TestRegisterIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	auth := NewAuthority(DefaultThresholds())
	r := newRelay(rng, 1, "10.0.0.1", 100)
	auth.Register(r)
	auth.Register(r)
	if auth.Registered() != 1 {
		t.Fatalf("registered = %d, want 1", auth.Registered())
	}
}

func TestDocumentLookupMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	doc := &Document{}
	r := newRelay(rng, 1, "10.0.0.1", 100)
	if _, ok := doc.Lookup(r.Fingerprint()); ok {
		t.Fatal("lookup in empty document succeeded")
	}
}

func TestFlagString(t *testing.T) {
	f := FlagFast | FlagGuard | FlagHSDir | FlagRunning | FlagStable
	if got, want := f.String(), "Fast Guard HSDir Running Stable"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got := Flag(0).String(); got != "" {
		t.Fatalf("empty flags String() = %q, want empty", got)
	}
}

// Property: no consensus ever contains more than MaxPerIP entries for one
// IP, regardless of the relay population.
func TestQuickPerIPInvariant(t *testing.T) {
	f := func(seed int64, nRelays uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		auth := NewAuthority(DefaultThresholds())
		ips := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3"}
		n := int(nRelays%40) + 1
		for i := 0; i < n; i++ {
			r := newRelay(rng, int64(i), ips[rng.Intn(len(ips))], rng.Intn(500))
			if rng.Intn(4) > 0 {
				r.Start(at(0))
			}
			auth.Register(r)
		}
		doc := auth.Publish(at(rng.Intn(100)))
		perIP := map[string]int{}
		for _, e := range doc.Entries {
			perIP[e.IP]++
			if perIP[e.IP] > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
