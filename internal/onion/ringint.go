package onion

import (
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/bits"
)

// RingInt is a 160-bit unsigned integer: the arithmetic domain of the
// HSDir ring. Fingerprints and descriptor IDs are 160-bit values and
// "distance" between them is subtraction mod 2^160.
//
// It is a value type backed by three big-endian uint64 limbs — the value
// is l[0]<<128 | l[1]<<64 | l[2], with l[0] < 2^32 — so the arithmetic in
// the tracking-detection inner loop is word-wise and allocation-free.
type RingInt struct {
	l [3]uint64
}

// hiMask truncates the top limb to the 32 bits that exist in a 160-bit
// value.
const hiMask = 1<<32 - 1

func ringIntFromBytes(src []byte) RingInt {
	var b [20]byte
	copy(b[20-len(src):], src)
	return ringIntFrom20(b)
}

func ringIntFrom20(b [20]byte) RingInt {
	return RingInt{l: [3]uint64{
		uint64(binary.BigEndian.Uint32(b[0:4])),
		binary.BigEndian.Uint64(b[4:12]),
		binary.BigEndian.Uint64(b[12:20]),
	}}
}

// RingIntFromFingerprint converts a fingerprint to its ring integer.
func RingIntFromFingerprint(f Fingerprint) RingInt { return ringIntFrom20(f) }

// RingIntFromDescriptorID converts a descriptor ID to its ring integer.
func RingIntFromDescriptorID(d DescriptorID) RingInt { return ringIntFrom20(d) }

// SubMod returns (r - other) mod 2^160.
//
//torhs:hotpath
func (r RingInt) SubMod(other RingInt) RingInt {
	lo, borrow := bits.Sub64(r.l[2], other.l[2], 0)
	mid, borrow := bits.Sub64(r.l[1], other.l[1], borrow)
	hi, _ := bits.Sub64(r.l[0], other.l[0], borrow)
	return RingInt{l: [3]uint64{hi & hiMask, mid, lo}}
}

// Add returns (r + other) mod 2^160.
//
//torhs:hotpath
func (r RingInt) Add(other RingInt) RingInt {
	lo, carry := bits.Add64(r.l[2], other.l[2], 0)
	mid, carry := bits.Add64(r.l[1], other.l[1], carry)
	hi, _ := bits.Add64(r.l[0], other.l[0], carry)
	return RingInt{l: [3]uint64{hi & hiMask, mid, lo}}
}

// DivScalar returns r / n (integer division) for n > 0; n == 0 yields
// zero.
//
//torhs:hotpath
func (r RingInt) DivScalar(n uint64) RingInt {
	if n == 0 {
		return RingInt{}
	}
	// Limb-wise long division; each partial remainder is < n, so
	// bits.Div64 never overflows.
	q0, rem := bits.Div64(0, r.l[0], n)
	q1, rem := bits.Div64(rem, r.l[1], n)
	q2, _ := bits.Div64(rem, r.l[2], n)
	return RingInt{l: [3]uint64{q0, q1, q2}}
}

// MulScalar returns (r * n) mod 2^160.
//
//torhs:hotpath
func (r RingInt) MulScalar(n uint64) RingInt {
	c2, lo := bits.Mul64(r.l[2], n)
	c1, mid := bits.Mul64(r.l[1], n)
	mid, carry := bits.Add64(mid, c2, 0)
	hi := r.l[0]*n + c1 + carry
	return RingInt{l: [3]uint64{hi & hiMask, mid, lo}}
}

// bytes20 returns the big-endian byte representation.
func (r RingInt) bytes20() [20]byte {
	var b [20]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(r.l[0]))
	binary.BigEndian.PutUint64(b[4:12], r.l[1])
	binary.BigEndian.PutUint64(b[12:20], r.l[2])
	return b
}

// Fingerprint converts the ring integer back to a fingerprint.
func (r RingInt) Fingerprint() Fingerprint { return Fingerprint(r.bytes20()) }

// MaxRingAvgGap returns 2^160 / n as a RingInt: the expected gap between
// consecutive fingerprints on a uniform ring of n members, truncated to
// 160 bits (so n == 1 yields zero, as does n == 0).
func MaxRingAvgGap(n uint64) RingInt {
	if n == 0 {
		return RingInt{}
	}
	// 2^160 is the 192-bit value with limbs {1<<32, 0, 0}; long-divide and
	// truncate the quotient's top limb to 32 bits.
	q0, rem := bits.Div64(0, 1<<32, n)
	q1, rem := bits.Div64(rem, 0, n)
	q2, _ := bits.Div64(rem, 0, n)
	return RingInt{l: [3]uint64{q0 & hiMask, q1, q2}}
}

// Cmp compares r with other: -1 if r < other, 0 if equal, 1 if r > other.
//
//torhs:hotpath
func (r RingInt) Cmp(other RingInt) int {
	for i := 0; i < 3; i++ {
		switch {
		case r.l[i] < other.l[i]:
			return -1
		case r.l[i] > other.l[i]:
			return 1
		}
	}
	return 0
}

// IsZero reports whether r is zero.
func (r RingInt) IsZero() bool { return r.l == [3]uint64{} }

// Float64 returns an approximation of r as a float64. 160-bit values far
// exceed float64 precision; the approximation is used only for distance
// *ratios* (average gap / observed gap), where relative error is
// negligible. The byte-wise Horner evaluation reproduces the historical
// rounding sequence bit-for-bit.
func (r RingInt) Float64() float64 {
	b := r.bytes20()
	var out float64
	for i := 0; i < 20; i++ {
		out = out*256 + float64(b[i])
	}
	return out
}

// Hex returns the lowercase hex representation, without leading-zero
// trimming.
func (r RingInt) Hex() string {
	b := r.bytes20()
	return hex.EncodeToString(b[:])
}

// RingRatio computes avgDist/dist as a float64, returning +Inf for a zero
// distance. It is the "ratio" statistic from Section VII of the paper: a
// relay whose fingerprint sits far closer to a descriptor ID than the
// average inter-fingerprint gap has positioned itself deliberately.
func RingRatio(avgDist, dist RingInt) float64 {
	d := dist.Float64()
	if d == 0 {
		return math.Inf(1)
	}
	return avgDist.Float64() / d
}
