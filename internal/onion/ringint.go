package onion

import (
	"encoding/hex"
	"math"
)

// RingInt is a 160-bit unsigned integer in big-endian byte order. It is
// the arithmetic domain of the HSDir ring: fingerprints and descriptor IDs
// are 160-bit values and "distance" between them is subtraction mod 2^160.
type RingInt struct {
	b [20]byte
}

func ringIntFromBytes(src []byte) *RingInt {
	var r RingInt
	copy(r.b[20-len(src):], src)
	return &r
}

// RingIntFromFingerprint converts a fingerprint to its ring integer.
func RingIntFromFingerprint(f Fingerprint) *RingInt { return ringIntFromBytes(f[:]) }

// RingIntFromDescriptorID converts a descriptor ID to its ring integer.
func RingIntFromDescriptorID(d DescriptorID) *RingInt { return ringIntFromBytes(d[:]) }

// SubMod returns (r - other) mod 2^160 as a new RingInt.
func (r *RingInt) SubMod(other *RingInt) *RingInt {
	var out RingInt
	var borrow int
	for i := 19; i >= 0; i-- {
		d := int(r.b[i]) - int(other.b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out.b[i] = byte(d)
	}
	return &out
}

// Add returns (r + other) mod 2^160 as a new RingInt.
func (r *RingInt) Add(other *RingInt) *RingInt {
	var out RingInt
	var carry int
	for i := 19; i >= 0; i-- {
		s := int(r.b[i]) + int(other.b[i]) + carry
		out.b[i] = byte(s)
		carry = s >> 8
	}
	return &out
}

// DivScalar returns r / n (integer division) for n > 0; n == 0 yields
// zero.
func (r *RingInt) DivScalar(n uint64) *RingInt {
	var out RingInt
	if n == 0 {
		return &out
	}
	var rem uint64
	for i := 0; i < 20; i++ {
		cur := rem*256 + uint64(r.b[i])
		out.b[i] = byte(cur / n)
		rem = cur % n
	}
	return &out
}

// MulScalar returns (r * n) mod 2^160.
func (r *RingInt) MulScalar(n uint64) *RingInt {
	var out RingInt
	var carry uint64
	for i := 19; i >= 0; i-- {
		cur := uint64(r.b[i])*n + carry
		out.b[i] = byte(cur)
		carry = cur >> 8
	}
	return &out
}

// Fingerprint converts the ring integer back to a fingerprint.
func (r *RingInt) Fingerprint() Fingerprint {
	var f Fingerprint
	copy(f[:], r.b[:])
	return f
}

// MaxRingAvgGap returns 2^160 / n as a RingInt: the expected gap between
// consecutive fingerprints on a uniform ring of n members. n == 0 yields
// zero.
func MaxRingAvgGap(n uint64) *RingInt {
	var out RingInt
	if n == 0 {
		return &out
	}
	// Long-divide the 21-byte value 2^160 by n, truncating to 160 bits.
	var rem uint64
	dividend := make([]byte, 21)
	dividend[0] = 1
	quot := make([]byte, 21)
	for i, b := range dividend {
		cur := rem*256 + uint64(b)
		quot[i] = byte(cur / n)
		rem = cur % n
	}
	copy(out.b[:], quot[1:])
	return &out
}

// Cmp compares r with other: -1 if r < other, 0 if equal, 1 if r > other.
func (r *RingInt) Cmp(other *RingInt) int {
	for i := 0; i < 20; i++ {
		switch {
		case r.b[i] < other.b[i]:
			return -1
		case r.b[i] > other.b[i]:
			return 1
		}
	}
	return 0
}

// IsZero reports whether r is zero.
func (r *RingInt) IsZero() bool {
	for _, v := range r.b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Float64 returns an approximation of r as a float64. 160-bit values far
// exceed float64 precision; the approximation is used only for distance
// *ratios* (average gap / observed gap), where relative error is
// negligible.
func (r *RingInt) Float64() float64 {
	var out float64
	for i := 0; i < 20; i++ {
		out = out*256 + float64(r.b[i])
	}
	return out
}

// Hex returns the lowercase hex representation, without leading-zero
// trimming.
func (r *RingInt) Hex() string { return hex.EncodeToString(r.b[:]) }

// RingRatio computes avgDist/dist as a float64, returning +Inf for a zero
// distance. It is the "ratio" statistic from Section VII of the paper: a
// relay whose fingerprint sits far closer to a descriptor ID than the
// average inter-fingerprint gap has positioned itself deliberately.
func RingRatio(avgDist, dist *RingInt) float64 {
	d := dist.Float64()
	if d == 0 {
		return math.Inf(1)
	}
	return avgDist.Float64() / d
}
