package onion

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestGenerateKeyLength(t *testing.T) {
	k := GenerateKey(testRand())
	if len(k) != KeyLen {
		t.Fatalf("key length = %d, want %d", len(k), KeyLen)
	}
}

func TestAddressIs16Base32Chars(t *testing.T) {
	rng := testRand()
	for i := 0; i < 100; i++ {
		addr := AddressFromKey(GenerateKey(rng))
		if len(addr) != AddressLen {
			t.Fatalf("address %q length = %d, want %d", addr, len(addr), AddressLen)
		}
		for _, c := range addr {
			if !strings.ContainsRune("abcdefghijklmnopqrstuvwxyz234567", c) {
				t.Fatalf("address %q contains non-base32 rune %q", addr, c)
			}
		}
	}
}

func TestAddressStringHasOnionSuffix(t *testing.T) {
	addr := AddressFromKey(GenerateKey(testRand()))
	if !strings.HasSuffix(addr.String(), ".onion") {
		t.Fatalf("String() = %q, want .onion suffix", addr.String())
	}
}

func TestParseAddressRoundTrip(t *testing.T) {
	rng := testRand()
	for i := 0; i < 50; i++ {
		k := GenerateKey(rng)
		id := k.PermanentID()
		addr := AddressFromID(id)

		got, gotID, err := ParseAddress(addr.String())
		if err != nil {
			t.Fatalf("ParseAddress(%q): %v", addr.String(), err)
		}
		if got != addr {
			t.Fatalf("ParseAddress returned %q, want %q", got, addr)
		}
		if gotID != id {
			t.Fatalf("ParseAddress ID mismatch for %q", addr)
		}
	}
}

func TestParseAddressRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "abcdef"},
		{"long", "abcdefghijklmnopq"},
		{"bad charset digit 1", "1bcdefghijklmnop"},
		{"bad charset digit 0", "0bcdefghijklmnop"},
		{"bad charset punct", "abcdefghijklmno!"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ParseAddress(tc.in); err == nil {
				t.Fatalf("ParseAddress(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestParseAddressAcceptsUppercaseAndSuffix(t *testing.T) {
	k := GenerateKey(testRand())
	addr := AddressFromKey(k)
	upper := strings.ToUpper(string(addr)) + ".ONION"
	// ".ONION" is not trimmed (case-sensitive suffix), so construct the
	// realistic variant: uppercase body, lowercase suffix.
	upper = strings.ToUpper(string(addr)) + ".onion"
	got, _, err := ParseAddress(upper)
	if err != nil {
		t.Fatalf("ParseAddress(%q): %v", upper, err)
	}
	if got != addr {
		t.Fatalf("ParseAddress(%q) = %q, want %q", upper, got, addr)
	}
}

func TestTimePeriodOffsetStaggersRollover(t *testing.T) {
	// Two IDs differing in the first byte must roll over at different
	// instants. id0 rolls over exactly at midnight; idFF rolls over
	// 255*86400/256 seconds earlier.
	var id0, idFF PermanentID
	idFF[0] = 0xFF

	midnight := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	justBefore := midnight.Add(-time.Second)

	if TimePeriod(id0, justBefore) == TimePeriod(id0, midnight) {
		t.Fatal("id0 period did not roll over at midnight")
	}
	if TimePeriod(idFF, justBefore) != TimePeriod(idFF, midnight) {
		t.Fatal("idFF period rolled over at midnight, want earlier rollover")
	}
}

func TestComputeDescriptorIDStableWithinPeriod(t *testing.T) {
	k := GenerateKey(testRand())
	id := k.PermanentID()
	base := time.Date(2013, 2, 4, 1, 0, 0, 0, time.UTC)

	d1 := ComputeDescriptorID(id, base, 0)
	d2 := ComputeDescriptorID(id, base.Add(time.Hour), 0)
	if d1 != d2 {
		// The offset may have pushed the second instant into the next
		// period; only fail if the periods match.
		if TimePeriod(id, base) == TimePeriod(id, base.Add(time.Hour)) {
			t.Fatal("descriptor ID changed within one time period")
		}
	}
}

func TestComputeDescriptorIDChangesAcrossPeriods(t *testing.T) {
	k := GenerateKey(testRand())
	id := k.PermanentID()
	base := time.Date(2013, 2, 4, 1, 0, 0, 0, time.UTC)

	d1 := ComputeDescriptorID(id, base, 0)
	d2 := ComputeDescriptorID(id, base.Add(48*time.Hour), 0)
	if d1 == d2 {
		t.Fatal("descriptor ID identical across distinct time periods")
	}
}

func TestReplicasHaveDistinctDescriptorIDs(t *testing.T) {
	k := GenerateKey(testRand())
	ids := DescriptorIDs(k.PermanentID(), time.Date(2013, 2, 4, 12, 0, 0, 0, time.UTC))
	if ids[0] == ids[1] {
		t.Fatal("replica descriptor IDs are identical")
	}
}

func TestDescriptorIDsOverRangeCoversBothReplicas(t *testing.T) {
	k := GenerateKey(testRand())
	id := k.PermanentID()
	from := time.Date(2013, 1, 28, 0, 0, 0, 0, time.UTC)
	to := time.Date(2013, 2, 8, 0, 0, 0, 0, time.UTC)

	ids := DescriptorIDsOverRange(id, from, to)
	periods := int(TimePeriod(id, to)-TimePeriod(id, from)) + 1
	if want := periods * Replicas; len(ids) != want {
		t.Fatalf("got %d descriptor IDs, want %d", len(ids), want)
	}

	seen := make(map[DescriptorID]bool, len(ids))
	for _, d := range ids {
		if seen[d] {
			t.Fatalf("duplicate descriptor ID %s in range enumeration", d.Hex())
		}
		seen[d] = true
	}

	// The per-instant IDs must be contained in the range enumeration.
	for _, d := range DescriptorIDs(id, from.Add(36*time.Hour)) {
		if !seen[d] {
			t.Fatalf("descriptor ID %s for mid-range instant missing", d.Hex())
		}
	}
}

func TestDescriptorIDsOverRangeSwappedBounds(t *testing.T) {
	k := GenerateKey(testRand())
	id := k.PermanentID()
	from := time.Date(2013, 1, 28, 0, 0, 0, 0, time.UTC)
	to := time.Date(2013, 2, 8, 0, 0, 0, 0, time.UTC)

	a := DescriptorIDsOverRange(id, from, to)
	b := DescriptorIDsOverRange(id, to, from)
	if len(a) != len(b) {
		t.Fatalf("swapped bounds changed result size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("swapped bounds changed enumeration")
		}
	}
}

func TestFingerprintCompareConsistentWithLess(t *testing.T) {
	rng := testRand()
	for i := 0; i < 200; i++ {
		a := RandomFingerprint(rng)
		b := RandomFingerprint(rng)
		switch a.Compare(b) {
		case -1:
			if !a.Less(b) || b.Less(a) {
				t.Fatal("Compare=-1 inconsistent with Less")
			}
		case 1:
			if a.Less(b) || !b.Less(a) {
				t.Fatal("Compare=1 inconsistent with Less")
			}
		case 0:
			if a.Less(b) || b.Less(a) {
				t.Fatal("Compare=0 inconsistent with Less")
			}
		}
	}
}

func TestFingerprintHexIs40Chars(t *testing.T) {
	f := RandomFingerprint(testRand())
	if len(f.Hex()) != 40 {
		t.Fatalf("Hex length = %d, want 40", len(f.Hex()))
	}
	if f.Hex() != strings.ToUpper(f.Hex()) {
		t.Fatal("Hex is not uppercase")
	}
}

// Property: descriptor IDs are deterministic functions of (permID, period,
// replica) — recomputation is identical.
func TestQuickDescriptorIDDeterministic(t *testing.T) {
	f := func(seed int64, hourOffset uint16, replica bool) bool {
		rng := rand.New(rand.NewSource(seed))
		id := GenerateKey(rng).PermanentID()
		at := time.Unix(1359936000+int64(hourOffset)*3600, 0) // around Feb 2013
		r := uint8(0)
		if replica {
			r = 1
		}
		return ComputeDescriptorID(id, at, r) == ComputeDescriptorID(id, at, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVanityPermanentID(t *testing.T) {
	rng := testRand()
	id, err := VanityPermanentID("silkroa", rng)
	if err != nil {
		t.Fatal(err)
	}
	addr := AddressFromID(id)
	if !strings.HasPrefix(string(addr), "silkroa") {
		t.Fatalf("vanity address %q lacks prefix", addr)
	}
	// Distinct calls yield distinct suffixes.
	id2, err := VanityPermanentID("silkroa", rng)
	if err != nil {
		t.Fatal(err)
	}
	if id == id2 {
		t.Fatal("vanity IDs collide")
	}
}

func TestVanityPermanentIDRejectsBadPrefix(t *testing.T) {
	rng := testRand()
	if _, err := VanityPermanentID("abcdefghijklmnop", rng); err == nil {
		t.Fatal("full-length prefix accepted")
	}
	if _, err := VanityPermanentID("bad!prefix", rng); err == nil {
		t.Fatal("invalid charset accepted")
	}
}

// Property: distinct keys yield distinct addresses (no collisions at test
// scale).
func TestQuickAddressInjective(t *testing.T) {
	rng := testRand()
	seen := make(map[Address]bool, 5000)
	for i := 0; i < 5000; i++ {
		addr := AddressFromKey(GenerateKey(rng))
		if seen[addr] {
			t.Fatalf("address collision after %d keys", i)
		}
		seen[addr] = true
	}
}

// TestSecretIDTableDerivationsMatchDirect pins the table-backed
// descriptor-ID derivations (inside and outside the table's window, where
// they fall back to direct computation) to ComputeDescriptorID.
func TestSecretIDTableDerivationsMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	from := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)
	to := from.Add(5 * 24 * time.Hour)
	table := NewSecretIDTable(from, to)
	if !table.Covers(from, to) {
		t.Fatal("table does not cover its own window")
	}
	if table.Covers(from.Add(-48*time.Hour), to) {
		t.Fatal("table claims to cover instants before its window")
	}
	instants := []time.Time{
		from, from.Add(36 * time.Hour), to, // inside
		from.Add(-30 * 24 * time.Hour), to.Add(30 * 24 * time.Hour), // fallback
	}
	for i := 0; i < 50; i++ {
		id := GenerateKey(rng).PermanentID()
		for _, at := range instants {
			for r := uint8(0); r < Replicas; r++ {
				if got, want := table.DescriptorID(id, at, r), ComputeDescriptorID(id, at, r); got != want {
					t.Fatalf("DescriptorID(%v, replica %d) diverges from direct derivation", at, r)
				}
			}
			if got, want := table.DescriptorIDsAt(id, at), DescriptorIDs(id, at); got != want {
				t.Fatalf("DescriptorIDsAt(%v) diverges from DescriptorIDs", at)
			}
		}
	}
}
