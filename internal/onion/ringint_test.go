package onion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRingIntSubModSimple(t *testing.T) {
	a := ringIntFromBytes([]byte{5})
	b := ringIntFromBytes([]byte{3})
	if got := a.SubMod(b).Float64(); got != 2 {
		t.Fatalf("5-3 = %v, want 2", got)
	}
}

func TestRingIntSubModWraps(t *testing.T) {
	a := ringIntFromBytes([]byte{3})
	b := ringIntFromBytes([]byte{5})
	// (3-5) mod 2^160 = 2^160 - 2.
	got := a.SubMod(b)
	want := math.Pow(2, 160) - 2
	if rel := math.Abs(got.Float64()-want) / want; rel > 1e-12 {
		t.Fatalf("wraparound = %v, want ~%v", got.Float64(), want)
	}
}

func TestRingIntAddSubInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		a := RingIntFromFingerprint(RandomFingerprint(rng))
		b := RingIntFromFingerprint(RandomFingerprint(rng))
		if got := a.Add(b).SubMod(b); got.Cmp(a) != 0 {
			t.Fatalf("(a+b)-b != a: %s vs %s", got.Hex(), a.Hex())
		}
	}
}

func TestRingIntCmp(t *testing.T) {
	small := ringIntFromBytes([]byte{1})
	big := ringIntFromBytes([]byte{2, 0})
	if small.Cmp(big) != -1 || big.Cmp(small) != 1 || small.Cmp(small) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
}

func TestRingIntIsZero(t *testing.T) {
	zero := ringIntFromBytes(nil)
	if !zero.IsZero() {
		t.Fatal("zero not recognised")
	}
	one := ringIntFromBytes([]byte{1})
	if one.IsZero() {
		t.Fatal("one reported as zero")
	}
}

func TestRingRatioInfinityOnZeroDistance(t *testing.T) {
	avg := ringIntFromBytes([]byte{1, 0})
	if got := RingRatio(avg, ringIntFromBytes(nil)); !math.IsInf(got, 1) {
		t.Fatalf("ratio with zero distance = %v, want +Inf", got)
	}
}

func TestRingRatioPlainDivision(t *testing.T) {
	avg := ringIntFromBytes([]byte{100})
	dist := ringIntFromBytes([]byte{4})
	if got := RingRatio(avg, dist); got != 25 {
		t.Fatalf("ratio = %v, want 25", got)
	}
}

func TestDistanceForwardOnRing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		f := RandomFingerprint(rng)
		var d DescriptorID
		copy(d[:], f[:])
		// Distance from an ID to the identical fingerprint is zero.
		if !Distance(d, f).IsZero() {
			t.Fatal("distance to self not zero")
		}
	}
}

// Property: Distance(id, f) + id == f on the ring.
func TestQuickDistanceConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fp := RandomFingerprint(rng)
		var id DescriptorID
		id2 := RandomFingerprint(rng)
		copy(id[:], id2[:])
		dist := Distance(id, fp)
		back := RingIntFromDescriptorID(id).Add(dist)
		return back.Cmp(RingIntFromFingerprint(fp)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
