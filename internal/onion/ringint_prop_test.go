package onion

import (
	"math/big"
	"math/rand"
	"testing"
	"time"
)

// Reference byte-wise implementations of the 160-bit ring arithmetic, as
// shipped before the limb rewrite. The property tests below pin the
// limb-based RingInt to these bit-for-bit.

func refSubMod(a, b [20]byte) [20]byte {
	var out [20]byte
	var borrow int
	for i := 19; i >= 0; i-- {
		d := int(a[i]) - int(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

func refAdd(a, b [20]byte) [20]byte {
	var out [20]byte
	var carry int
	for i := 19; i >= 0; i-- {
		s := int(a[i]) + int(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

func refDivScalar(a [20]byte, n uint64) [20]byte {
	var out [20]byte
	if n == 0 {
		return out
	}
	var rem uint64
	for i := 0; i < 20; i++ {
		cur := rem*256 + uint64(a[i])
		out[i] = byte(cur / n)
		rem = cur % n
	}
	return out
}

func refMulScalar(a [20]byte, n uint64) [20]byte {
	var out [20]byte
	var carry uint64
	for i := 19; i >= 0; i-- {
		cur := uint64(a[i])*n + carry
		out[i] = byte(cur)
		carry = cur >> 8
	}
	return out
}

func refMaxRingAvgGap(n uint64) [20]byte {
	var out [20]byte
	if n == 0 {
		return out
	}
	var rem uint64
	dividend := make([]byte, 21)
	dividend[0] = 1
	quot := make([]byte, 21)
	for i, b := range dividend {
		cur := rem*256 + uint64(b)
		quot[i] = byte(cur / n)
		rem = cur % n
	}
	copy(out[:], quot[1:])
	return out
}

func refCmp(a, b [20]byte) int {
	for i := 0; i < 20; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

func refFloat64(a [20]byte) float64 {
	var out float64
	for i := 0; i < 20; i++ {
		out = out*256 + float64(a[i])
	}
	return out
}

// edgeValues are 160-bit patterns that exercise borrows and carries
// across every limb boundary of the [3]uint64 representation.
func edgeValues() [][20]byte {
	patterns := [][20]byte{
		{},                             // zero
		{19: 1},                        // one
		{0: 0xFF},                      // high byte set
		{3: 0x01},                      // top-limb low bit
		{4: 0x01},                      // mid-limb high bit region
		{11: 0x01},                     // mid-limb low end
		{12: 0x01},                     // low-limb high end
		{19: 0xFF},                     // low byte max
		{3: 0xFF, 4: 0xFF, 5: 0xFF},    // straddle hi/mid boundary
		{10: 0xFF, 11: 0xFF, 12: 0xFF}, // straddle mid/lo boundary
	}
	var all [20]byte
	for i := range all {
		all[i] = 0xFF
	}
	patterns = append(patterns, all) // 2^160 - 1
	return patterns
}

func randomValues(rng *rand.Rand, n int) [][20]byte {
	out := make([][20]byte, n)
	for i := range out {
		for j := range out[i] {
			out[i][j] = byte(rng.Intn(256))
		}
	}
	return out
}

// TestRingIntMatchesByteReference drives the limb implementation and the
// historical byte-wise implementation through the same random and edge
// 160-bit values and requires identical results everywhere, including
// the borrow/carry cases at the limb boundaries.
func TestRingIntMatchesByteReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := append(edgeValues(), randomValues(rng, 500)...)
	// The byte-wise reference computed rem*256 (DivScalar) and byte*n
	// (MulScalar) in uint64 and silently overflowed for n ≳ 2^56; the
	// limb implementation is exact for the full uint64 range (see
	// TestRingIntScalarOpsBigIntOracle), so the byte comparison stops
	// where the reference was sound.
	scalars := []uint64{1, 2, 3, 7, 256, 757, 1862, 1 << 20, 1 << 55}

	for i, a := range vals {
		ra := ringIntFromBytes(a[:])
		if got := ra.bytes20(); got != a {
			t.Fatalf("roundtrip %d: got %x want %x", i, got, a)
		}
		if got, want := ra.Float64(), refFloat64(a); got != want {
			t.Fatalf("Float64(%x) = %v, want %v", a, got, want)
		}
		for _, b := range vals {
			rb := ringIntFromBytes(b[:])
			if got, want := ra.SubMod(rb).bytes20(), refSubMod(a, b); got != want {
				t.Fatalf("SubMod(%x, %x) = %x, want %x", a, b, got, want)
			}
			if got, want := ra.Add(rb).bytes20(), refAdd(a, b); got != want {
				t.Fatalf("Add(%x, %x) = %x, want %x", a, b, got, want)
			}
			if got, want := ra.Cmp(rb), refCmp(a, b); got != want {
				t.Fatalf("Cmp(%x, %x) = %d, want %d", a, b, got, want)
			}
		}
		for _, n := range scalars {
			if got, want := ra.DivScalar(n).bytes20(), refDivScalar(a, n); got != want {
				t.Fatalf("DivScalar(%x, %d) = %x, want %x", a, n, got, want)
			}
			if got, want := ra.MulScalar(n).bytes20(), refMulScalar(a, n); got != want {
				t.Fatalf("MulScalar(%x, %d) = %x, want %x", a, n, got, want)
			}
		}
		if got, want := ra.DivScalar(0).bytes20(), refDivScalar(a, 0); got != want {
			t.Fatalf("DivScalar(%x, 0) = %x, want %x", a, got, want)
		}
	}

	for _, n := range append([]uint64{0}, scalars...) {
		if got, want := MaxRingAvgGap(n).bytes20(), refMaxRingAvgGap(n); got != want {
			t.Fatalf("MaxRingAvgGap(%d) = %x, want %x", n, got, want)
		}
	}
}

// TestRingIntScalarOpsBigIntOracle verifies DivScalar and MulScalar
// against math/big over the full uint64 scalar range — including the
// n ≳ 2^56 region where the retired byte-wise implementation overflowed.
func TestRingIntScalarOpsBigIntOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	mod := new(big.Int).Lsh(big.NewInt(1), 160)
	vals := append(edgeValues(), randomValues(rng, 50)...)
	scalars := []uint64{1, 3, 757, 1 << 40, 1 << 56, 1<<63 + 7, 1<<64 - 1}
	for _, a := range vals {
		ra := ringIntFromBytes(a[:])
		ba := new(big.Int).SetBytes(a[:])
		for _, n := range scalars {
			bn := new(big.Int).SetUint64(n)
			wantDiv := new(big.Int).Quo(ba, bn)
			if got := ra.DivScalar(n).bytes20(); !bytesEqualBig(got, wantDiv) {
				t.Fatalf("DivScalar(%x, %d) = %x, want %x", a, n, got, wantDiv)
			}
			wantMul := new(big.Int).Mod(new(big.Int).Mul(ba, bn), mod)
			if got := ra.MulScalar(n).bytes20(); !bytesEqualBig(got, wantMul) {
				t.Fatalf("MulScalar(%x, %d) = %x, want %x", a, n, got, wantMul)
			}
		}
	}
}

func bytesEqualBig(got [20]byte, want *big.Int) bool {
	var buf [20]byte
	want.FillBytes(buf[:])
	return got == buf
}

// TestCompare160MatchesByteLoop pins the word-wise fingerprint compare to
// the byte-loop ordering.
func TestCompare160MatchesByteLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	vals := append(edgeValues(), randomValues(rng, 200)...)
	for _, a := range vals {
		for _, b := range vals {
			fa, fb := Fingerprint(a), Fingerprint(b)
			if got, want := fa.Compare(fb), refCmp(a, b); got != want {
				t.Fatalf("Compare(%x, %x) = %d, want %d", a, b, got, want)
			}
			if got, want := fa.Less(fb), refCmp(a, b) < 0; got != want {
				t.Fatalf("Less(%x, %x) = %v, want %v", a, b, got, want)
			}
			da, db := DescriptorID(a), DescriptorID(b)
			if got, want := da.Less(db), refCmp(a, b) < 0; got != want {
				t.Fatalf("DescriptorID.Less(%x, %x) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestSecretIDTableMatchesDirectDerivation checks that the shared
// secret-part table yields exactly the IDs of the direct per-service
// derivation over a window, including for services whose rollover offset
// pushes a period past the table's base range.
func TestSecretIDTableMatchesDirectDerivation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	from := time.Date(2013, 1, 28, 0, 0, 0, 0, time.UTC)
	to := time.Date(2013, 2, 8, 0, 0, 0, 0, time.UTC)
	table := NewSecretIDTable(from, to)
	for i := 0; i < 200; i++ {
		id := GenerateKey(rng).PermanentID()
		want := DescriptorIDsOverRange(id, from, to)
		got := table.DescriptorIDsInto(nil, id, from, to)
		if len(got) != len(want) {
			t.Fatalf("service %d: %d IDs, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("service %d id %d: %x want %x", i, j, got[j], want[j])
			}
		}
	}
	// Outside the table's window the fallback path must still be exact.
	id := GenerateKey(rng).PermanentID()
	outFrom, outTo := from.AddDate(0, -1, 0), from.AddDate(0, -1, 3)
	want := DescriptorIDsOverRange(id, outFrom, outTo)
	got := table.DescriptorIDsInto(nil, id, outFrom, outTo)
	if len(got) != len(want) {
		t.Fatalf("fallback: %d IDs, want %d", len(got), len(want))
	}
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("fallback id %d: %x want %x", j, got[j], want[j])
		}
	}
}
