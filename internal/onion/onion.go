// Package onion implements Tor v2 hidden-service identity material:
// identity keys, onion addresses, relay fingerprints, and the rend-spec-v2
// descriptor-ID schedule that governs which hidden-service directories are
// responsible for a service at any given time.
//
// The implementation follows rend-spec.txt (version 2, the protocol in
// force in February 2013 when the paper's measurements were taken):
//
//	permanent-id   = first 10 bytes of SHA1(public-key)
//	onion address  = base32(permanent-id) + ".onion"
//	time-period    = (current-time + permanent-id-byte-0 * 86400 / 256) / 86400
//	secret-id-part = SHA1(time-period | replica)
//	descriptor-id  = SHA1(permanent-id | secret-id-part)
//
// Identity keys are modelled as opaque DER-like byte blobs rather than real
// RSA-1024 keys: every downstream computation consumes only the SHA-1
// digest of the key, which is uniformly distributed either way (see
// DESIGN.md, substitution table).
package onion

import (
	"crypto/sha1"
	"encoding/base32"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

const (
	// PermanentIDLen is the length in bytes of a hidden-service permanent
	// identifier (the truncated SHA-1 digest of the identity key).
	PermanentIDLen = 10

	// AddressLen is the length of a v2 onion address without the ".onion"
	// suffix: base32 of 10 bytes = 16 characters.
	AddressLen = 16

	// KeyLen is the length of the synthetic DER-like identity-key blob.
	// 140 bytes matches the typical DER length of an RSA-1024 public key.
	KeyLen = 140

	// Replicas is the number of descriptor replicas a hidden service
	// publishes per time period. Each replica has its own descriptor ID
	// and its own set of responsible directories.
	Replicas = 2

	// SpreadPerReplica is the number of consecutive ring positions that
	// store one replica, so Replicas*SpreadPerReplica directories are
	// responsible for a service in each time period.
	SpreadPerReplica = 3

	// PeriodLength is the duration of one descriptor time period.
	PeriodLength = 24 * time.Hour
)

var b32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// IdentityKey is a hidden-service (or relay) identity public key. It is an
// opaque blob; only its SHA-1 digest matters to the protocol.
type IdentityKey []byte

// GenerateKey draws a fresh synthetic identity key from rng.
func GenerateKey(rng *rand.Rand) IdentityKey {
	k := make(IdentityKey, KeyLen)
	for i := range k {
		k[i] = byte(rng.Intn(256))
	}
	return k
}

// Digest returns the full 20-byte SHA-1 digest of the key.
func (k IdentityKey) Digest() [sha1.Size]byte { return sha1.Sum(k) }

// PermanentID is the 10-byte truncated key digest identifying a hidden
// service.
type PermanentID [PermanentIDLen]byte

// PermanentID derives the service's permanent identifier from the key.
func (k IdentityKey) PermanentID() PermanentID {
	d := k.Digest()
	var id PermanentID
	copy(id[:], d[:PermanentIDLen])
	return id
}

// Address is a v2 onion address: 16 lowercase base32 characters, without
// the ".onion" suffix.
type Address string

// AddressFromID encodes a permanent identifier as an onion address.
func AddressFromID(id PermanentID) Address {
	return Address(strings.ToLower(b32.EncodeToString(id[:])))
}

// AddressFromKey derives the onion address of the given identity key.
func AddressFromKey(k IdentityKey) Address {
	return AddressFromID(k.PermanentID())
}

// errors returned by address parsing.
var (
	ErrBadAddressLength  = errors.New("onion: address must be 16 base32 characters")
	ErrBadAddressCharset = errors.New("onion: address contains invalid base32 characters")
)

// ParseAddress validates s (with or without a ".onion" suffix) and returns
// the canonical Address and its decoded permanent identifier.
func ParseAddress(s string) (Address, PermanentID, error) {
	s = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(s), ".onion"))
	var id PermanentID
	if len(s) != AddressLen {
		return "", id, fmt.Errorf("%w: got %d", ErrBadAddressLength, len(s))
	}
	raw, err := b32.DecodeString(strings.ToUpper(s))
	if err != nil {
		return "", id, fmt.Errorf("%w: %q", ErrBadAddressCharset, s)
	}
	copy(id[:], raw)
	return Address(s), id, nil
}

// String returns the address with the ".onion" suffix, as a user would see
// it.
func (a Address) String() string { return string(a) + ".onion" }

// ID decodes the address back to its permanent identifier. The address is
// assumed valid (constructed by this package); invalid input yields the
// zero ID and false.
func (a Address) ID() (PermanentID, bool) {
	_, id, err := ParseAddress(string(a))
	if err != nil {
		return PermanentID{}, false
	}
	return id, true
}

// VanityPermanentID constructs a permanent identifier whose onion
// address begins with the given base32 prefix, filling the remaining
// characters randomly. It models the result of vanity-address mining
// (brute-forcing keys until the address prefix matches — ~32^len tries);
// the returned identifier has no corresponding key material.
func VanityPermanentID(prefix string, rng *rand.Rand) (PermanentID, error) {
	const alphabet = "abcdefghijklmnopqrstuvwxyz234567"
	prefix = strings.ToLower(prefix)
	if len(prefix) >= AddressLen {
		return PermanentID{}, fmt.Errorf("onion: vanity prefix %q too long", prefix)
	}
	full := prefix
	for len(full) < AddressLen {
		full += string(alphabet[rng.Intn(len(alphabet))])
	}
	_, id, err := ParseAddress(full)
	if err != nil {
		return PermanentID{}, fmt.Errorf("onion: vanity prefix %q: %w", prefix, err)
	}
	return id, nil
}

// DescriptorID is the 20-byte identifier under which one replica of a
// hidden-service descriptor is stored for one time period. Descriptor IDs
// live in the same SHA-1 space as relay fingerprints; responsible
// directories are the fingerprints that follow the descriptor ID on the
// ring.
type DescriptorID [sha1.Size]byte

// Hex returns the lowercase hex form of the descriptor ID.
func (d DescriptorID) Hex() string { return hex.EncodeToString(d[:]) }

// Less reports whether d sorts before other when descriptor IDs and
// fingerprints are compared as big-endian integers.
func (d DescriptorID) Less(other DescriptorID) bool {
	for i := range d {
		if d[i] != other[i] {
			return d[i] < other[i]
		}
	}
	return false
}

// TimePeriod computes the rend-spec-v2 time-period number for a service at
// instant t. The first byte of the permanent ID staggers period rollover
// across services so the whole network does not re-upload descriptors at
// midnight simultaneously.
func TimePeriod(id PermanentID, t time.Time) uint32 {
	unix := uint64(t.Unix())
	offset := uint64(id[0]) * 86400 / 256
	return uint32((unix + offset) / 86400)
}

// ComputeDescriptorID derives the descriptor ID for one replica of a
// service in the time period containing t.
func ComputeDescriptorID(id PermanentID, t time.Time, replica uint8) DescriptorID {
	return descriptorIDForPeriod(id, TimePeriod(id, t), replica)
}

func descriptorIDForPeriod(id PermanentID, period uint32, replica uint8) DescriptorID {
	var buf [5]byte
	binary.BigEndian.PutUint32(buf[:4], period)
	buf[4] = replica
	secret := sha1.Sum(buf[:])

	h := sha1.New()
	h.Write(id[:])
	h.Write(secret[:])
	var out DescriptorID
	copy(out[:], h.Sum(nil))
	return out
}

// DescriptorIDs returns the descriptor IDs of all replicas of a service in
// the time period containing t, in replica order.
func DescriptorIDs(id PermanentID, t time.Time) [Replicas]DescriptorID {
	var out [Replicas]DescriptorID
	period := TimePeriod(id, t)
	for r := 0; r < Replicas; r++ {
		out[r] = descriptorIDForPeriod(id, period, uint8(r))
	}
	return out
}

// DescriptorIDsOverRange enumerates the descriptor IDs a service uses for
// every time period intersecting [from, to]. It is the building block of
// popularity resolution: client requests carry only descriptor IDs, and
// the measurement pipeline re-derives candidate IDs over a date window to
// map requests back to onion addresses (tolerating clients with wrong
// clocks, as the paper does for 28 Jan–8 Feb 2013).
func DescriptorIDsOverRange(id PermanentID, from, to time.Time) []DescriptorID {
	if to.Before(from) {
		from, to = to, from
	}
	first := TimePeriod(id, from)
	last := TimePeriod(id, to)
	out := make([]DescriptorID, 0, int(last-first+1)*Replicas)
	for p := first; p <= last; p++ {
		for r := 0; r < Replicas; r++ {
			out = append(out, descriptorIDForPeriod(id, p, uint8(r)))
		}
	}
	return out
}

// Fingerprint is a relay identity fingerprint: the SHA-1 digest of the
// relay's identity key. Fingerprints and descriptor IDs share one ring.
type Fingerprint [sha1.Size]byte

// FingerprintFromKey derives a relay fingerprint from its identity key.
func FingerprintFromKey(k IdentityKey) Fingerprint {
	return Fingerprint(k.Digest())
}

// RandomFingerprint draws a uniform fingerprint from rng. Used by
// population generators and property tests.
func RandomFingerprint(rng *rand.Rand) Fingerprint {
	var f Fingerprint
	for i := range f {
		f[i] = byte(rng.Intn(256))
	}
	return f
}

// Hex returns the uppercase hex form, as consensus documents print it.
func (f Fingerprint) Hex() string {
	return strings.ToUpper(hex.EncodeToString(f[:]))
}

// Less reports whether f sorts before other as big-endian integers.
func (f Fingerprint) Less(other Fingerprint) bool {
	for i := range f {
		if f[i] != other[i] {
			return f[i] < other[i]
		}
	}
	return false
}

// Compare returns -1, 0, or 1 comparing f with other as big-endian
// integers.
func (f Fingerprint) Compare(other Fingerprint) int {
	for i := range f {
		switch {
		case f[i] < other[i]:
			return -1
		case f[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Distance returns the forward ring distance from id to f interpreted as
// 160-bit big-endian integers, i.e. (f - id) mod 2^160. Tracking detection
// uses this to quantify how suspiciously close a relay positioned its
// fingerprint to a target descriptor ID.
func Distance(id DescriptorID, f Fingerprint) *RingInt {
	a := ringIntFromBytes(f[:])
	b := ringIntFromBytes(id[:])
	return a.SubMod(b)
}

// Descriptor is a v2 hidden-service descriptor: the public blob a service
// uploads to its responsible directories and clients fetch by descriptor
// ID.
type Descriptor struct {
	// DescID is the ID under which this replica is stored.
	DescID DescriptorID
	// Address is the service's onion address (derivable from PermID, kept
	// for convenience).
	Address Address
	// PermID is the service's permanent identifier.
	PermID PermanentID
	// Replica is the replica number (0-based).
	Replica uint8
	// PublishedAt is the upload instant.
	PublishedAt time.Time
	// IntroPoints lists the fingerprints of the introduction points.
	IntroPoints []Fingerprint
}
