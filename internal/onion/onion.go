// Package onion implements Tor v2 hidden-service identity material:
// identity keys, onion addresses, relay fingerprints, and the rend-spec-v2
// descriptor-ID schedule that governs which hidden-service directories are
// responsible for a service at any given time.
//
// The implementation follows rend-spec.txt (version 2, the protocol in
// force in February 2013 when the paper's measurements were taken):
//
//	permanent-id   = first 10 bytes of SHA1(public-key)
//	onion address  = base32(permanent-id) + ".onion"
//	time-period    = (current-time + permanent-id-byte-0 * 86400 / 256) / 86400
//	secret-id-part = SHA1(time-period | replica)
//	descriptor-id  = SHA1(permanent-id | secret-id-part)
//
// Identity keys are modelled as opaque DER-like byte blobs rather than real
// RSA-1024 keys: every downstream computation consumes only the SHA-1
// digest of the key, which is uniformly distributed either way (see
// DESIGN.md, substitution table).
package onion

import (
	"crypto/sha1"
	"encoding/base32"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"
)

const (
	// PermanentIDLen is the length in bytes of a hidden-service permanent
	// identifier (the truncated SHA-1 digest of the identity key).
	PermanentIDLen = 10

	// AddressLen is the length of a v2 onion address without the ".onion"
	// suffix: base32 of 10 bytes = 16 characters.
	AddressLen = 16

	// KeyLen is the length of the synthetic DER-like identity-key blob.
	// 140 bytes matches the typical DER length of an RSA-1024 public key.
	KeyLen = 140

	// Replicas is the number of descriptor replicas a hidden service
	// publishes per time period. Each replica has its own descriptor ID
	// and its own set of responsible directories.
	Replicas = 2

	// SpreadPerReplica is the number of consecutive ring positions that
	// store one replica, so Replicas*SpreadPerReplica directories are
	// responsible for a service in each time period.
	SpreadPerReplica = 3

	// PeriodLength is the duration of one descriptor time period.
	PeriodLength = 24 * time.Hour
)

var b32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// IdentityKey is a hidden-service (or relay) identity public key. It is an
// opaque blob; only its SHA-1 digest matters to the protocol.
type IdentityKey []byte

// GenerateKey draws a fresh synthetic identity key from rng.
func GenerateKey(rng *rand.Rand) IdentityKey {
	k := make(IdentityKey, KeyLen)
	for i := range k {
		k[i] = byte(rng.Intn(256))
	}
	return k
}

// Digest returns the full 20-byte SHA-1 digest of the key.
func (k IdentityKey) Digest() [sha1.Size]byte { return sha1.Sum(k) }

// PermanentID is the 10-byte truncated key digest identifying a hidden
// service.
type PermanentID [PermanentIDLen]byte

// PermanentID derives the service's permanent identifier from the key.
func (k IdentityKey) PermanentID() PermanentID {
	d := k.Digest()
	var id PermanentID
	copy(id[:], d[:PermanentIDLen])
	return id
}

// Address is a v2 onion address: 16 lowercase base32 characters, without
// the ".onion" suffix.
type Address string

// AddressFromID encodes a permanent identifier as an onion address.
func AddressFromID(id PermanentID) Address {
	return Address(strings.ToLower(b32.EncodeToString(id[:])))
}

// AddressFromKey derives the onion address of the given identity key.
func AddressFromKey(k IdentityKey) Address {
	return AddressFromID(k.PermanentID())
}

// errors returned by address parsing.
var (
	ErrBadAddressLength  = errors.New("onion: address must be 16 base32 characters")
	ErrBadAddressCharset = errors.New("onion: address contains invalid base32 characters")
)

// ParseAddress validates s (with or without a ".onion" suffix) and returns
// the canonical Address and its decoded permanent identifier.
func ParseAddress(s string) (Address, PermanentID, error) {
	s = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(s), ".onion"))
	var id PermanentID
	if len(s) != AddressLen {
		return "", id, fmt.Errorf("%w: got %d", ErrBadAddressLength, len(s))
	}
	raw, err := b32.DecodeString(strings.ToUpper(s))
	if err != nil {
		return "", id, fmt.Errorf("%w: %q", ErrBadAddressCharset, s)
	}
	copy(id[:], raw)
	return Address(s), id, nil
}

// String returns the address with the ".onion" suffix, as a user would see
// it.
func (a Address) String() string { return string(a) + ".onion" }

// ID decodes the address back to its permanent identifier. The address is
// assumed valid (constructed by this package); invalid input yields the
// zero ID and false.
func (a Address) ID() (PermanentID, bool) {
	_, id, err := ParseAddress(string(a))
	if err != nil {
		return PermanentID{}, false
	}
	return id, true
}

// VanityPermanentID constructs a permanent identifier whose onion
// address begins with the given base32 prefix, filling the remaining
// characters randomly. It models the result of vanity-address mining
// (brute-forcing keys until the address prefix matches — ~32^len tries);
// the returned identifier has no corresponding key material.
func VanityPermanentID(prefix string, rng *rand.Rand) (PermanentID, error) {
	const alphabet = "abcdefghijklmnopqrstuvwxyz234567"
	prefix = strings.ToLower(prefix)
	if len(prefix) >= AddressLen {
		return PermanentID{}, fmt.Errorf("onion: vanity prefix %q too long", prefix)
	}
	var full strings.Builder
	full.Grow(AddressLen)
	full.WriteString(prefix)
	for full.Len() < AddressLen {
		full.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	_, id, err := ParseAddress(full.String())
	if err != nil {
		return PermanentID{}, fmt.Errorf("onion: vanity prefix %q: %w", prefix, err)
	}
	return id, nil
}

// DescriptorID is the 20-byte identifier under which one replica of a
// hidden-service descriptor is stored for one time period. Descriptor IDs
// live in the same SHA-1 space as relay fingerprints; responsible
// directories are the fingerprints that follow the descriptor ID on the
// ring.
type DescriptorID [sha1.Size]byte

// Hex returns the lowercase hex form of the descriptor ID.
func (d DescriptorID) Hex() string { return hex.EncodeToString(d[:]) }

// Less reports whether d sorts before other when descriptor IDs and
// fingerprints are compared as big-endian integers.
func (d DescriptorID) Less(other DescriptorID) bool {
	return compare160(d, other) < 0
}

// compare160 compares two 20-byte big-endian values word-wise: three
// 8/8/4-byte big-endian loads instead of a byte-at-a-time loop.
func compare160(a, b [sha1.Size]byte) int {
	if x, y := binary.BigEndian.Uint64(a[0:8]), binary.BigEndian.Uint64(b[0:8]); x != y {
		if x < y {
			return -1
		}
		return 1
	}
	if x, y := binary.BigEndian.Uint64(a[8:16]), binary.BigEndian.Uint64(b[8:16]); x != y {
		if x < y {
			return -1
		}
		return 1
	}
	if x, y := binary.BigEndian.Uint32(a[16:20]), binary.BigEndian.Uint32(b[16:20]); x != y {
		if x < y {
			return -1
		}
		return 1
	}
	return 0
}

// TimePeriod computes the rend-spec-v2 time-period number for a service at
// instant t. The first byte of the permanent ID staggers period rollover
// across services so the whole network does not re-upload descriptors at
// midnight simultaneously.
func TimePeriod(id PermanentID, t time.Time) uint32 {
	unix := uint64(t.Unix())
	offset := uint64(id[0]) * 86400 / 256
	return uint32((unix + offset) / 86400)
}

// ComputeDescriptorID derives the descriptor ID for one replica of a
// service in the time period containing t.
func ComputeDescriptorID(id PermanentID, t time.Time, replica uint8) DescriptorID {
	return descriptorIDForPeriod(id, TimePeriod(id, t), replica)
}

func descriptorIDForPeriod(id PermanentID, period uint32, replica uint8) DescriptorID {
	secret := secretIDPart(period, replica)
	return descriptorIDFromParts(id, &secret)
}

// secretIDPart computes SHA1(time-period | replica). It depends only on
// the period and replica — never on the service — so callers deriving IDs
// for many services over one window can share it (see SecretIDTable).
func secretIDPart(period uint32, replica uint8) [sha1.Size]byte {
	var buf [5]byte
	binary.BigEndian.PutUint32(buf[:4], period)
	buf[4] = replica
	return sha1.Sum(buf[:])
}

// descriptorIDFromParts computes SHA1(permanent-id | secret-id-part)
// over a stack buffer, so one descriptor-ID derivation performs exactly
// one SHA-1 and zero heap allocations.
func descriptorIDFromParts(id PermanentID, secret *[sha1.Size]byte) DescriptorID {
	var msg [PermanentIDLen + sha1.Size]byte
	copy(msg[:PermanentIDLen], id[:])
	copy(msg[PermanentIDLen:], secret[:])
	return DescriptorID(sha1.Sum(msg[:]))
}

// DescriptorIDForPeriod derives the descriptor ID for an explicit
// time-period number (see TimePeriod). Callers that fetch many IDs for
// one service can compute the period once and memoize per (id, period,
// replica).
func DescriptorIDForPeriod(id PermanentID, period uint32, replica uint8) DescriptorID {
	return descriptorIDForPeriod(id, period, replica)
}

// DescriptorIDForPeriod is the table-backed variant of the free function:
// periods inside the table reuse the precomputed secret part.
func (t *SecretIDTable) DescriptorIDForPeriod(id PermanentID, period uint32, replica uint8) DescriptorID {
	if s := t.secretFor(period); s != nil {
		return descriptorIDFromParts(id, &s[replica])
	}
	return descriptorIDForPeriod(id, period, replica)
}

// DescriptorIDs returns the descriptor IDs of all replicas of a service in
// the time period containing t, in replica order.
func DescriptorIDs(id PermanentID, t time.Time) [Replicas]DescriptorID {
	var out [Replicas]DescriptorID
	period := TimePeriod(id, t)
	for r := 0; r < Replicas; r++ {
		out[r] = descriptorIDForPeriod(id, period, uint8(r))
	}
	return out
}

// DescriptorIDsOverRange enumerates the descriptor IDs a service uses for
// every time period intersecting [from, to]. It is the building block of
// popularity resolution: client requests carry only descriptor IDs, and
// the measurement pipeline re-derives candidate IDs over a date window to
// map requests back to onion addresses (tolerating clients with wrong
// clocks, as the paper does for 28 Jan–8 Feb 2013).
func DescriptorIDsOverRange(id PermanentID, from, to time.Time) []DescriptorID {
	if to.Before(from) {
		from, to = to, from
	}
	n := int(TimePeriod(id, to)-TimePeriod(id, from)+1) * Replicas
	return DescriptorIDsOverRangeInto(make([]DescriptorID, 0, n), id, from, to)
}

// DescriptorIDsOverRangeInto is DescriptorIDsOverRange appending into
// dst, so sweeps over many services can reuse one scratch buffer instead
// of allocating a fresh slice per service. Pass dst[:0] to reuse; the
// appended-to slice is returned.
func DescriptorIDsOverRangeInto(dst []DescriptorID, id PermanentID, from, to time.Time) []DescriptorID {
	if to.Before(from) {
		from, to = to, from
	}
	first := TimePeriod(id, from)
	last := TimePeriod(id, to)
	for p := first; p <= last; p++ {
		for r := 0; r < Replicas; r++ {
			dst = append(dst, descriptorIDForPeriod(id, p, uint8(r)))
		}
	}
	return dst
}

// SecretIDTable precomputes the rend-spec secret-id-parts for every
// (time-period, replica) pair intersecting a date window. The secret part
// depends only on the period and replica — not on the service — so one
// table serves every service when deriving descriptor IDs over a shared
// window, halving the SHA-1 work of popularity-index construction.
type SecretIDTable struct {
	first   uint32
	secrets [][Replicas][sha1.Size]byte
}

// NewSecretIDTable builds the table for [from, to]. The per-service
// rollover offset is under one day, so every service's periods in the
// window lie in [from's base period, to's base period + 1].
func NewSecretIDTable(from, to time.Time) *SecretIDTable {
	if to.Before(from) {
		from, to = to, from
	}
	first := uint32(uint64(from.Unix()) / 86400)
	last := uint32(uint64(to.Unix())/86400) + 1
	t := &SecretIDTable{
		first:   first,
		secrets: make([][Replicas][sha1.Size]byte, last-first+1),
	}
	for p := first; p <= last; p++ {
		for r := 0; r < Replicas; r++ {
			t.secrets[p-first][r] = secretIDPart(p, uint8(r))
		}
	}
	return t
}

// DescriptorIDsInto appends the descriptor IDs of service id for every
// time period intersecting [from, to] to dst, reusing the table's
// precomputed secret parts (periods outside the table fall back to
// direct derivation). The output is identical to
// DescriptorIDsOverRangeInto.
func (t *SecretIDTable) DescriptorIDsInto(dst []DescriptorID, id PermanentID, from, to time.Time) []DescriptorID {
	if to.Before(from) {
		from, to = to, from
	}
	first := TimePeriod(id, from)
	last := TimePeriod(id, to)
	// The permanent-id prefix of the hashed message is loop-invariant.
	var msg [PermanentIDLen + sha1.Size]byte
	copy(msg[:PermanentIDLen], id[:])
	for p := first; p <= last; p++ {
		if p < t.first || int(p-t.first) >= len(t.secrets) {
			for r := 0; r < Replicas; r++ {
				dst = append(dst, descriptorIDForPeriod(id, p, uint8(r)))
			}
			continue
		}
		secrets := &t.secrets[p-t.first]
		for r := 0; r < Replicas; r++ {
			copy(msg[PermanentIDLen:], secrets[r][:])
			dst = append(dst, DescriptorID(sha1.Sum(msg[:])))
		}
	}
	return dst
}

// Covers reports whether every time period any service may use inside
// [from, to] lies within the table, i.e. whether derivations over that
// range never fall back to direct secret-part computation.
func (t *SecretIDTable) Covers(from, to time.Time) bool {
	if to.Before(from) {
		from, to = to, from
	}
	first := uint32(uint64(from.Unix()) / 86400)
	last := uint32(uint64(to.Unix())/86400) + 1
	return first >= t.first && int(last-t.first) < len(t.secrets)
}

// secretFor returns the precomputed secret parts for the given period, or
// nil when the period lies outside the table.
func (t *SecretIDTable) secretFor(period uint32) *[Replicas][sha1.Size]byte {
	if period < t.first || int(period-t.first) >= len(t.secrets) {
		return nil
	}
	return &t.secrets[period-t.first]
}

// DescriptorID derives the descriptor ID of one replica of service id in
// the time period containing at, reusing the table's precomputed secret
// part when the period lies inside the table (halving the SHA-1 work of
// every derivation on the fetch hot path) and falling back to direct
// derivation otherwise. The result is always identical to
// ComputeDescriptorID.
func (t *SecretIDTable) DescriptorID(id PermanentID, at time.Time, replica uint8) DescriptorID {
	period := TimePeriod(id, at)
	if s := t.secretFor(period); s != nil {
		return descriptorIDFromParts(id, &s[replica])
	}
	return descriptorIDForPeriod(id, period, replica)
}

// DescriptorIDsAt returns the descriptor IDs of all replicas of service id
// in the time period containing at, in replica order. Identical output to
// DescriptorIDs, sharing the table's secret parts when possible.
func (t *SecretIDTable) DescriptorIDsAt(id PermanentID, at time.Time) [Replicas]DescriptorID {
	var out [Replicas]DescriptorID
	period := TimePeriod(id, at)
	if s := t.secretFor(period); s != nil {
		for r := 0; r < Replicas; r++ {
			out[r] = descriptorIDFromParts(id, &s[r])
		}
		return out
	}
	for r := 0; r < Replicas; r++ {
		out[r] = descriptorIDForPeriod(id, period, uint8(r))
	}
	return out
}

// Fingerprint is a relay identity fingerprint: the SHA-1 digest of the
// relay's identity key. Fingerprints and descriptor IDs share one ring.
type Fingerprint [sha1.Size]byte

// FingerprintFromKey derives a relay fingerprint from its identity key.
func FingerprintFromKey(k IdentityKey) Fingerprint {
	return Fingerprint(k.Digest())
}

// RandomFingerprint draws a uniform fingerprint from rng. Used by
// population generators and property tests.
func RandomFingerprint(rng *rand.Rand) Fingerprint {
	var f Fingerprint
	for i := range f {
		f[i] = byte(rng.Intn(256))
	}
	return f
}

// Hex returns the uppercase hex form, as consensus documents print it.
func (f Fingerprint) Hex() string {
	return strings.ToUpper(hex.EncodeToString(f[:]))
}

// Less reports whether f sorts before other as big-endian integers.
func (f Fingerprint) Less(other Fingerprint) bool {
	return compare160(f, other) < 0
}

// Compare returns -1, 0, or 1 comparing f with other as big-endian
// integers.
func (f Fingerprint) Compare(other Fingerprint) int {
	return compare160(f, other)
}

// Distance returns the forward ring distance from id to f interpreted as
// 160-bit big-endian integers, i.e. (f - id) mod 2^160. Tracking detection
// uses this to quantify how suspiciously close a relay positioned its
// fingerprint to a target descriptor ID.
func Distance(id DescriptorID, f Fingerprint) RingInt {
	return RingIntFromFingerprint(f).SubMod(RingIntFromDescriptorID(id))
}

// Descriptor is a v2 hidden-service descriptor: the public blob a service
// uploads to its responsible directories and clients fetch by descriptor
// ID.
type Descriptor struct {
	// DescID is the ID under which this replica is stored.
	DescID DescriptorID
	// Address is the service's onion address (derivable from PermID, kept
	// for convenience).
	Address Address
	// PermID is the service's permanent identifier.
	PermID PermanentID
	// Replica is the replica number (0-based).
	Replica uint8
	// PublishedAt is the upload instant.
	PublishedAt time.Time
	// IntroPoints lists the fingerprints of the introduction points.
	IntroPoints []Fingerprint
}
