package onion

import (
	"math/rand"
	"testing"
	"time"
)

// The ring arithmetic and descriptor-ID derivation sit in the innermost
// loops of tracking detection and popularity resolution; these tests lock
// in their zero-allocation guarantee.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, fn); avg != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, avg)
	}
}

func TestRingArithmeticAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := RingIntFromFingerprint(RandomFingerprint(rng))
	b := RingIntFromFingerprint(RandomFingerprint(rng))
	var (
		outR RingInt
		outI int
		outF float64
		outB bool
	)
	assertZeroAllocs(t, "SubMod", func() { outR = a.SubMod(b) })
	assertZeroAllocs(t, "Add", func() { outR = a.Add(b) })
	assertZeroAllocs(t, "Cmp", func() { outI = a.Cmp(b) })
	assertZeroAllocs(t, "DivScalar", func() { outR = a.DivScalar(1862) })
	assertZeroAllocs(t, "MulScalar", func() { outR = a.MulScalar(1862) })
	assertZeroAllocs(t, "Float64", func() { outF = a.Float64() })
	assertZeroAllocs(t, "IsZero", func() { outB = a.IsZero() })
	assertZeroAllocs(t, "MaxRingAvgGap", func() { outR = MaxRingAvgGap(1400) })
	assertZeroAllocs(t, "RingRatio", func() { outF = RingRatio(a, b) })
	_, _, _, _ = outR, outI, outF, outB
}

func TestFingerprintCompareAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	f1 := RandomFingerprint(rng)
	f2 := RandomFingerprint(rng)
	var d1 DescriptorID
	copy(d1[:], f1[:])
	var out int
	var outB bool
	assertZeroAllocs(t, "Fingerprint.Compare", func() { out = f1.Compare(f2) })
	assertZeroAllocs(t, "Fingerprint.Less", func() { outB = f1.Less(f2) })
	assertZeroAllocs(t, "DescriptorID.Less", func() { outB = d1.Less(DescriptorID(f2)) })
	assertZeroAllocs(t, "Distance", func() { _ = Distance(d1, f2) })
	_, _ = out, outB
}

func TestDescriptorDerivationAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	id := GenerateKey(rng).PermanentID()
	at := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	var out DescriptorID
	assertZeroAllocs(t, "ComputeDescriptorID", func() { out = ComputeDescriptorID(id, at, 1) })
	_ = out

	from := at
	to := at.Add(3 * 24 * time.Hour)
	buf := DescriptorIDsOverRange(id, from, to) // warm: sized for the window
	table := NewSecretIDTable(from, to)
	assertZeroAllocs(t, "DescriptorIDsOverRangeInto", func() {
		buf = DescriptorIDsOverRangeInto(buf[:0], id, from, to)
	})
	assertZeroAllocs(t, "SecretIDTable.DescriptorIDsInto", func() {
		buf = table.DescriptorIDsInto(buf[:0], id, from, to)
	})
}
