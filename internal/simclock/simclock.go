// Package simclock provides a virtual clock for deterministic simulation.
//
// All time-dependent components in this repository consume the Clock
// interface instead of calling time.Now directly, so a whole multi-month
// measurement campaign (descriptor churn, consensus history, uptime
// accounting) can be replayed deterministically in milliseconds.
package simclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts the flow of time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
}

// Real is a Clock backed by the system clock.
type Real struct{}

var _ Clock = Real{}

// Now returns time.Now.
func (Real) Now() time.Time { return time.Now() }

// Sim is a manually advanced virtual clock. The zero value is not usable;
// construct with NewSim. Sim is safe for concurrent use.
type Sim struct {
	mu  sync.RWMutex
	now time.Time
}

var _ Clock = (*Sim)(nil)

// NewSim returns a Sim clock starting at the given instant.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current virtual instant.
func (s *Sim) Now() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.now
}

// Advance moves the clock forward by d. Negative durations are rejected:
// simulated time never flows backwards.
func (s *Sim) Advance(d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("simclock: advance by negative duration %v", d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = s.now.Add(d)
	return nil
}

// Set jumps the clock to t. Jumping backwards is rejected.
func (s *Sim) Set(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Before(s.now) {
		return fmt.Errorf("simclock: set to %v before current %v", t, s.now)
	}
	s.now = t
	return nil
}

// MustAdvance advances the clock and panics on misuse. It is intended for
// tests and simulation drivers where a negative duration is a programming
// error.
func (s *Sim) MustAdvance(d time.Duration) {
	if err := s.Advance(d); err != nil {
		panic(err)
	}
}
