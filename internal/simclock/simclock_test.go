package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestSimStartsAtGivenInstant(t *testing.T) {
	start := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	c := NewSim(start)
	if got := c.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
}

func TestSimAdvance(t *testing.T) {
	start := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	c := NewSim(start)
	if err := c.Advance(25 * time.Hour); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	want := start.Add(25 * time.Hour)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimAdvanceNegativeRejected(t *testing.T) {
	c := NewSim(time.Unix(0, 0))
	if err := c.Advance(-time.Second); err == nil {
		t.Fatal("Advance(-1s) succeeded, want error")
	}
}

func TestSimSet(t *testing.T) {
	start := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	c := NewSim(start)
	later := start.Add(48 * time.Hour)
	if err := c.Set(later); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if got := c.Now(); !got.Equal(later) {
		t.Fatalf("Now() = %v, want %v", got, later)
	}
	if err := c.Set(start); err == nil {
		t.Fatal("Set to the past succeeded, want error")
	}
}

func TestSimConcurrentAccess(t *testing.T) {
	c := NewSim(time.Unix(1000, 0))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.MustAdvance(time.Millisecond)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	want := time.Unix(1000, 0).Add(800 * time.Millisecond)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestRealClockMovesForward(t *testing.T) {
	var c Clock = Real{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backwards: %v then %v", a, b)
	}
}
