package textclass

import (
	"testing"

	"torhs/internal/corpus"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion([]string{"b", "a"})
	if got := c.Labels(); got[0] != "a" || got[1] != "b" {
		t.Fatal("labels not sorted")
	}
	c.Add("a", "a")
	c.Add("a", "b")
	c.Add("b", "b")
	if c.Count("a", "b") != 1 || c.Count("a", "a") != 1 {
		t.Fatal("counts wrong")
	}
	if acc := c.Accuracy(); acc < 0.66 || acc > 0.67 {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	recall := c.Recall()
	if recall["a"] != 0.5 || recall["b"] != 1.0 {
		t.Fatalf("recall = %v", recall)
	}
}

func TestConfusionEmptyAccuracy(t *testing.T) {
	c := NewConfusion(nil)
	if c.Accuracy() != 0 {
		t.Fatal("empty accuracy not 0")
	}
}

func TestEvaluateLanguageDetector(t *testing.T) {
	det, err := TrainLanguageDetector(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateLanguageDetector(det, 0, 10, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	conf, err := EvaluateLanguageDetector(det, 10, 80, 123)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.9 {
		t.Fatalf("accuracy = %.2f, want >= 0.9", acc)
	}
	// Every language must have been evaluated.
	recall := conf.Recall()
	if len(recall) != len(corpus.Languages()) {
		t.Fatalf("recall covers %d languages, want %d", len(recall), len(corpus.Languages()))
	}
}

func TestEvaluateTopicClassifier(t *testing.T) {
	cls, err := TrainTopicClassifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateTopicClassifier(cls, 5, 0, 1); err == nil {
		t.Fatal("zero words accepted")
	}
	conf, err := EvaluateTopicClassifier(cls, 8, 130, 321)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.85 {
		t.Fatalf("accuracy = %.2f, want >= 0.85", acc)
	}
	if len(conf.Recall()) != corpus.NumTopics {
		t.Fatal("recall missing topics")
	}
}
