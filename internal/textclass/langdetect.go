// Package textclass provides the two text classifiers the paper's content
// analysis relies on: a character-n-gram naive-Bayes language detector
// (standing in for Langdetect [11]) and a multinomial naive-Bayes topic
// classifier (standing in for Mallet [13] / uClassify [14]).
package textclass

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"torhs/internal/corpus"
)

// LanguageDetector identifies the language of a text using character
// n-gram log-likelihoods with Laplace smoothing.
type LanguageDetector struct {
	order  int
	langs  []string
	logp   []map[string]float64
	unseen []float64 // per-language smoothed log-probability of an unseen n-gram
}

// TrainLanguageDetector builds a detector of the given n-gram order
// (1–4) from the seed corpus. Training texts are sampled with a fixed
// seed, so training is deterministic.
func TrainLanguageDetector(order int) (*LanguageDetector, error) {
	if order < 1 || order > 4 {
		return nil, fmt.Errorf("textclass: n-gram order %d out of range [1,4]", order)
	}
	langs := corpus.Languages()
	d := &LanguageDetector{
		order:  order,
		langs:  langs,
		logp:   make([]map[string]float64, len(langs)),
		unseen: make([]float64, len(langs)),
	}
	rng := rand.New(rand.NewSource(0x7a9))
	for i, lang := range langs {
		text, err := corpus.SampleText(rng, lang, 4000, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("textclass: train %s: %w", lang, err)
		}
		counts := make(map[string]int)
		total := 0
		for _, g := range ngrams(text, order) {
			counts[g]++
			total++
		}
		// Laplace smoothing with V = distinct n-grams + 1.
		v := float64(len(counts) + 1)
		probs := make(map[string]float64, len(counts))
		for g, c := range counts {
			probs[g] = math.Log((float64(c) + 1) / (float64(total) + v))
		}
		d.logp[i] = probs
		d.unseen[i] = math.Log(1 / (float64(total) + v))
	}
	return d, nil
}

// ngrams extracts rune-level n-grams from text, lowercased, with spaces
// collapsed so layout does not affect detection.
func ngrams(text string, order int) []string {
	runes := []rune(strings.ToLower(strings.Join(strings.Fields(text), " ")))
	if len(runes) < order {
		return nil
	}
	out := make([]string, 0, len(runes)-order+1)
	for i := 0; i+order <= len(runes); i++ {
		out = append(out, string(runes[i:i+order]))
	}
	return out
}

// Score is one language's log-likelihood for a text.
type Score struct {
	Language string
	LogProb  float64
}

// Detect returns the most likely language of text and the margin (in
// mean log-likelihood per n-gram) over the runner-up. Empty or too-short
// texts return an error.
func (d *LanguageDetector) Detect(text string) (string, float64, error) {
	scores, err := d.Scores(text)
	if err != nil {
		return "", 0, err
	}
	return scores[0].Language, scores[0].LogProb - scores[1].LogProb, nil
}

// Scores returns all languages ranked by descending mean log-likelihood
// per n-gram.
func (d *LanguageDetector) Scores(text string) ([]Score, error) {
	grams := ngrams(text, d.order)
	if len(grams) == 0 {
		return nil, fmt.Errorf("textclass: text too short for order-%d detection", d.order)
	}
	out := make([]Score, len(d.langs))
	for i, lang := range d.langs {
		sum := 0.0
		for _, g := range grams {
			if lp, ok := d.logp[i][g]; ok {
				sum += lp
			} else {
				sum += d.unseen[i]
			}
		}
		out[i] = Score{Language: lang, LogProb: sum / float64(len(grams))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].LogProb != out[b].LogProb {
			return out[a].LogProb > out[b].LogProb
		}
		return out[a].Language < out[b].Language
	})
	return out, nil
}

// Order returns the detector's n-gram order.
func (d *LanguageDetector) Order() int { return d.order }
