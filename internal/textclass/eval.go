package textclass

import (
	"fmt"
	"math/rand"
	"sort"

	"torhs/internal/corpus"
)

// Confusion is a confusion matrix over string labels.
type Confusion struct {
	labels []string
	counts map[string]map[string]int // truth -> predicted -> count
	total  int
	hits   int
}

// NewConfusion creates an empty matrix over the given label set.
func NewConfusion(labels []string) *Confusion {
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	return &Confusion{
		labels: sorted,
		counts: make(map[string]map[string]int, len(sorted)),
	}
}

// Add records one (truth, predicted) observation.
func (c *Confusion) Add(truth, predicted string) {
	row := c.counts[truth]
	if row == nil {
		row = make(map[string]int)
		c.counts[truth] = row
	}
	row[predicted]++
	c.total++
	if truth == predicted {
		c.hits++
	}
}

// Labels returns the label set in sorted order.
func (c *Confusion) Labels() []string { return c.labels }

// Count returns the number of observations with the given truth predicted
// as the given label.
func (c *Confusion) Count(truth, predicted string) int { return c.counts[truth][predicted] }

// Accuracy returns overall accuracy (0 when empty).
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.total)
}

// Recall returns per-label recall (correct / truth-total); labels with no
// observations are omitted.
func (c *Confusion) Recall() map[string]float64 {
	out := make(map[string]float64, len(c.counts))
	for truth, row := range c.counts {
		total := 0
		for _, n := range row {
			total += n
		}
		if total > 0 {
			out[truth] = float64(row[truth]) / float64(total)
		}
	}
	return out
}

// EvaluateLanguageDetector measures the detector on freshly sampled text
// (disjoint from training by seed): samples per language, each of the
// given word count.
func EvaluateLanguageDetector(det *LanguageDetector, samples, words int, seed int64) (*Confusion, error) {
	if samples <= 0 || words <= 0 {
		return nil, fmt.Errorf("textclass: samples %d / words %d must be positive", samples, words)
	}
	rng := rand.New(rand.NewSource(seed))
	conf := NewConfusion(corpus.Languages())
	for _, lang := range corpus.Languages() {
		for i := 0; i < samples; i++ {
			text, err := corpus.SampleText(rng, lang, words, nil, 0)
			if err != nil {
				return nil, err
			}
			got, _, err := det.Detect(text)
			if err != nil {
				return nil, err
			}
			conf.Add(lang, got)
		}
	}
	return conf, nil
}

// EvaluateTopicClassifier measures the topic classifier on freshly
// sampled English pages.
func EvaluateTopicClassifier(cls *TopicClassifier, samples, words int, seed int64) (*Confusion, error) {
	if samples <= 0 || words <= 0 {
		return nil, fmt.Errorf("textclass: samples %d / words %d must be positive", samples, words)
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]string, 0, corpus.NumTopics)
	for _, t := range corpus.AllTopics() {
		labels = append(labels, t.String())
	}
	conf := NewConfusion(labels)
	for _, topic := range corpus.AllTopics() {
		keywords, err := corpus.TopicKeywords(topic)
		if err != nil {
			return nil, err
		}
		for i := 0; i < samples; i++ {
			text, err := corpus.SampleText(rng, corpus.LangEnglish, words, keywords, 0.3)
			if err != nil {
				return nil, err
			}
			got, _, err := cls.Classify(text)
			if err != nil {
				return nil, err
			}
			conf.Add(topic.String(), got.String())
		}
	}
	return conf, nil
}
