package textclass

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"torhs/internal/corpus"
)

// TopicClassifier assigns one of the paper's 18 content categories to an
// English text using a multinomial naive-Bayes model over words.
type TopicClassifier struct {
	topics []corpus.Topic
	logp   []map[string]float64
	unseen []float64
}

// TrainTopicClassifier builds the classifier from the seed lexicons. For
// each topic the training document mixes topic keywords with English
// function words (the background every page shares), so the model learns
// to discount the background. Training is deterministic.
func TrainTopicClassifier() (*TopicClassifier, error) {
	topics := corpus.AllTopics()
	c := &TopicClassifier{
		topics: topics,
		logp:   make([]map[string]float64, len(topics)),
		unseen: make([]float64, len(topics)),
	}
	rng := rand.New(rand.NewSource(0x70c))
	for i, topic := range topics {
		keywords, err := corpus.TopicKeywords(topic)
		if err != nil {
			return nil, fmt.Errorf("textclass: train: %w", err)
		}
		text, err := corpus.SampleText(rng, corpus.LangEnglish, 4000, keywords, 0.35)
		if err != nil {
			return nil, fmt.Errorf("textclass: train %v: %w", topic, err)
		}
		counts := make(map[string]int)
		total := 0
		for _, w := range tokenize(text) {
			counts[w]++
			total++
		}
		v := float64(len(counts) + 1)
		probs := make(map[string]float64, len(counts))
		for w, n := range counts {
			probs[w] = math.Log((float64(n) + 1) / (float64(total) + v))
		}
		c.logp[i] = probs
		c.unseen[i] = math.Log(1 / (float64(total) + v))
	}
	return c, nil
}

// tokenize lowercases and splits a text into word tokens, stripping basic
// punctuation.
func tokenize(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	out := fields[:0]
	for _, f := range fields {
		f = strings.Trim(f, ".,;:!?\"'()[]<>")
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// TopicScore is one topic's log-likelihood for a text.
type TopicScore struct {
	Topic   corpus.Topic
	LogProb float64
}

// Classify returns the most likely topic and its margin over the
// runner-up (mean log-likelihood per token).
func (c *TopicClassifier) Classify(text string) (corpus.Topic, float64, error) {
	scores, err := c.Scores(text)
	if err != nil {
		return 0, 0, err
	}
	return scores[0].Topic, scores[0].LogProb - scores[1].LogProb, nil
}

// Scores ranks all topics by descending mean log-likelihood per token.
func (c *TopicClassifier) Scores(text string) ([]TopicScore, error) {
	tokens := tokenize(text)
	if len(tokens) == 0 {
		return nil, fmt.Errorf("textclass: empty text")
	}
	out := make([]TopicScore, len(c.topics))
	for i, topic := range c.topics {
		sum := 0.0
		for _, w := range tokens {
			if lp, ok := c.logp[i][w]; ok {
				sum += lp
			} else {
				sum += c.unseen[i]
			}
		}
		out[i] = TopicScore{Topic: topic, LogProb: sum / float64(len(tokens))}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].LogProb != out[b].LogProb {
			return out[a].LogProb > out[b].LogProb
		}
		return out[a].Topic < out[b].Topic
	})
	return out, nil
}
