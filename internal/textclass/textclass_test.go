package textclass

import (
	"math/rand"
	"testing"

	"torhs/internal/corpus"
)

func TestTrainLanguageDetectorBadOrder(t *testing.T) {
	for _, order := range []int{0, 5, -1} {
		if _, err := TrainLanguageDetector(order); err == nil {
			t.Fatalf("order %d accepted, want error", order)
		}
	}
}

func TestLanguageDetectorAccuracyOnFreshSamples(t *testing.T) {
	det, err := TrainLanguageDetector(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99)) // different seed from training
	total, correct := 0, 0
	for _, lang := range corpus.Languages() {
		for i := 0; i < 20; i++ {
			text, err := corpus.SampleText(rng, lang, 80, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := det.Detect(text)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if got == lang {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("language detection accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestLanguageDetectorShortTextError(t *testing.T) {
	det, err := TrainLanguageDetector(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := det.Detect(""); err == nil {
		t.Fatal("Detect(\"\") succeeded, want error")
	}
	if _, _, err := det.Detect("ab"); err == nil {
		t.Fatal("Detect(2 runes) with order 3 succeeded, want error")
	}
}

func TestLanguageDetectorScoresSortedAndComplete(t *testing.T) {
	det, err := TrainLanguageDetector(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	text, _ := corpus.SampleText(rng, corpus.LangGerman, 60, nil, 0)
	scores, err := det.Scores(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(corpus.Languages()) {
		t.Fatalf("scores for %d languages, want %d", len(scores), len(corpus.Languages()))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1].LogProb < scores[i].LogProb {
			t.Fatal("scores not sorted descending")
		}
	}
}

func TestLanguageDetectorDistinguishesScripts(t *testing.T) {
	det, err := TrainLanguageDetector(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for _, lang := range []string{corpus.LangRussian, corpus.LangArabic, corpus.LangChinese, corpus.LangJapanese} {
		text, _ := corpus.SampleText(rng, lang, 40, nil, 0)
		got, margin, err := det.Detect(text)
		if err != nil {
			t.Fatal(err)
		}
		if got != lang {
			t.Fatalf("script-distinct language %s detected as %s", lang, got)
		}
		if margin <= 0 {
			t.Fatalf("margin %v for %s not positive", margin, lang)
		}
	}
}

func TestTopicClassifierAccuracyOnFreshSamples(t *testing.T) {
	cls, err := TrainTopicClassifier()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	total, correct := 0, 0
	for _, topic := range corpus.AllTopics() {
		keywords, err := corpus.TopicKeywords(topic)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			text, err := corpus.SampleText(rng, corpus.LangEnglish, 120, keywords, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := cls.Classify(text)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if got == topic {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("topic classification accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestTopicClassifierEmptyText(t *testing.T) {
	cls, err := TrainTopicClassifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cls.Classify("   "); err == nil {
		t.Fatal("Classify(blank) succeeded, want error")
	}
}

func TestTokenizeStripsPunctuation(t *testing.T) {
	got := tokenize("Hello, World! (test)")
	want := []string{"hello", "world", "test"}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokenize = %v, want %v", got, want)
		}
	}
}

func TestTopicScoresComplete(t *testing.T) {
	cls, err := TrainTopicClassifier()
	if err != nil {
		t.Fatal(err)
	}
	scores, err := cls.Scores("bitcoin escrow service with guarantee")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != corpus.NumTopics {
		t.Fatalf("scores for %d topics, want %d", len(scores), corpus.NumTopics)
	}
}
