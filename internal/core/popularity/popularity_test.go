package popularity

import (
	"math/rand"
	"testing"
	"time"

	"torhs/internal/onion"
)

func window() (time.Time, time.Time) {
	return time.Date(2013, 1, 28, 0, 0, 0, 0, time.UTC),
		time.Date(2013, 2, 8, 0, 0, 0, 0, time.UTC)
}

func makeServices(n int, seed int64) map[onion.Address]onion.PermanentID {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[onion.Address]onion.PermanentID, n)
	for i := 0; i < n; i++ {
		k := onion.GenerateKey(rng)
		out[onion.AddressFromKey(k)] = k.PermanentID()
	}
	return out
}

func TestBuildIndexValidation(t *testing.T) {
	from, to := window()
	if _, err := BuildIndex(nil, to, from); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestBuildIndexCoversWindow(t *testing.T) {
	from, to := window()
	services := makeServices(20, 1)
	ix, err := BuildIndex(services, from, to)
	if err != nil {
		t.Fatal(err)
	}
	// 12 days × 2 replicas × 20 services (±1 period from the offset).
	if ix.Len() < 20*11*2 {
		t.Fatalf("index size = %d, want >= %d", ix.Len(), 20*11*2)
	}
	for addr, permID := range services {
		mid := from.Add(5 * 24 * time.Hour)
		for _, id := range onion.DescriptorIDs(permID, mid) {
			got, ok := ix.Resolve(id)
			if !ok || got != addr {
				t.Fatalf("mid-window ID not resolvable to %s", addr)
			}
		}
	}
}

// TestBuildIndexWorkersIdenticalAcrossCounts checks the hard invariant of
// the sharded build: every worker count produces the same index, entry
// for entry.
func TestBuildIndexWorkersIdenticalAcrossCounts(t *testing.T) {
	from, to := window()
	services := makeServices(30, 2)
	base, err := BuildIndexWorkers(services, from, to, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 0} {
		ix, err := BuildIndexWorkers(services, from, to, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ix.Len() != base.Len() {
			t.Fatalf("workers=%d: len %d, want %d", workers, ix.Len(), base.Len())
		}
		for i := range base.entries {
			want := base.addrs[base.entries[i].addrIdx]
			addr, ok := ix.Resolve(base.entries[i].id)
			if !ok || addr != want {
				t.Fatalf("workers=%d: entry %d resolves to %q, %v; want %q",
					workers, i, addr, ok, want)
			}
		}
	}
}

// TestBuildIndexEmptyServices covers the zero-shard path.
func TestBuildIndexEmptyServices(t *testing.T) {
	from, to := window()
	ix, err := BuildIndex(nil, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 0 {
		t.Fatalf("empty index len = %d", ix.Len())
	}
	var id onion.DescriptorID
	if _, ok := ix.Resolve(id); ok {
		t.Fatal("empty index resolved an ID")
	}
}

// TestIndexTableGrow forces the probe table through growth and checks
// every mapping survives.
func TestIndexTableGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ids []onion.DescriptorID
	var addrs []onion.Address
	for i := 0; i < 500; i++ {
		f := onion.RandomFingerprint(rng)
		k := onion.GenerateKey(rng)
		ids = append(ids, onion.DescriptorID(f))
		addrs = append(addrs, onion.AddressFromKey(k))
	}
	ix := newIndexTable(0, addrs) // starts at minimum size, must grow repeatedly
	for i := range ids {
		ix.insert(ids[i], int32(i))
	}
	if ix.Len() != len(ids) {
		t.Fatalf("len = %d, want %d", ix.Len(), len(ids))
	}
	for i := range ids {
		if got, ok := ix.Resolve(ids[i]); !ok || got != addrs[i] {
			t.Fatalf("Resolve(%x) = %q, %v; want %q", ids[i], got, ok, addrs[i])
		}
	}
	// Overwrite keeps the table size and updates the value.
	ix.insert(ids[0], 1)
	if ix.Len() != len(ids) {
		t.Fatalf("overwrite changed len to %d", ix.Len())
	}
	if got, _ := ix.Resolve(ids[0]); got != addrs[1] {
		t.Fatalf("overwrite not visible: %q", got)
	}
}

func TestResolveRoundTrip(t *testing.T) {
	from, to := window()
	services := makeServices(50, 2)
	ix, err := BuildIndex(services, from, to)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate requests: 10 services requested with known counts, plus
	// phantom IDs.
	rng := rand.New(rand.NewSource(3))
	counts := make(map[onion.DescriptorID]int)
	wantPerAddr := map[onion.Address]int{}
	i := 0
	for addr, permID := range services {
		if i >= 10 {
			break
		}
		i++
		at := from.Add(time.Duration(rng.Intn(10*24)) * time.Hour)
		ids := onion.DescriptorIDs(permID, at)
		counts[ids[0]] += 5 * i
		counts[ids[1]] += 3
		wantPerAddr[addr] = 5*i + 3
	}
	phantomTotal := 0
	for p := 0; p < 30; p++ {
		f := onion.RandomFingerprint(rng)
		var id onion.DescriptorID
		copy(id[:], f[:])
		counts[id] = 7
		phantomTotal += 7
	}

	res := Resolve(counts, ix)
	if res.ResolvedAddresses != 10 {
		t.Fatalf("resolved addresses = %d, want 10", res.ResolvedAddresses)
	}
	if res.UniqueIDs != len(counts) {
		t.Fatalf("unique IDs = %d, want %d", res.UniqueIDs, len(counts))
	}
	for addr, want := range wantPerAddr {
		if res.PerAddress[addr] != want {
			t.Fatalf("address %s count = %d, want %d", addr, res.PerAddress[addr], want)
		}
	}
	if res.TotalRequests != res.ResolvedRequests+phantomTotal {
		t.Fatal("phantom requests leaked into resolved volume")
	}
}

func TestResolveBruteForceMatchesIndexed(t *testing.T) {
	from, to := window()
	services := makeServices(15, 4)
	ix, err := BuildIndex(services, from, to)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	counts := make(map[onion.DescriptorID]int)
	for _, permID := range services {
		at := from.Add(time.Duration(rng.Intn(8*24)) * time.Hour)
		counts[onion.ComputeDescriptorID(permID, at, 0)] = 1 + rng.Intn(50)
	}
	for p := 0; p < 10; p++ {
		f := onion.RandomFingerprint(rng)
		var id onion.DescriptorID
		copy(id[:], f[:])
		counts[id] = 2
	}

	fast := Resolve(counts, ix)
	slow := ResolveBruteForce(counts, services, from, to)

	if fast.ResolvedIDs != slow.ResolvedIDs || fast.ResolvedRequests != slow.ResolvedRequests ||
		fast.ResolvedAddresses != slow.ResolvedAddresses {
		t.Fatalf("brute force diverges: fast=%+v slow=%+v", fast, slow)
	}
	for addr, n := range fast.PerAddress {
		if slow.PerAddress[addr] != n {
			t.Fatalf("address %s: fast %d, slow %d", addr, n, slow.PerAddress[addr])
		}
	}
}

func TestRankOrderingAndLabels(t *testing.T) {
	res := &Resolution{PerAddress: map[onion.Address]int{
		"aaaaaaaaaaaaaaaa": 100,
		"bbbbbbbbbbbbbbbb": 300,
		"cccccccccccccccc": 200,
	}}
	labels := map[onion.Address]string{"bbbbbbbbbbbbbbbb": "Goldnet"}
	ranking := Rank(res, func(a onion.Address) string { return labels[a] })

	if ranking[0].Addr != "bbbbbbbbbbbbbbbb" || ranking[0].Rank != 1 {
		t.Fatalf("rank 1 = %+v", ranking[0])
	}
	if ranking[0].Label != "Goldnet" {
		t.Fatal("label missing")
	}
	if ranking[1].Requests != 200 || ranking[2].Requests != 100 {
		t.Fatal("ordering wrong")
	}

	e, ok := FindLabel(ranking, "Goldnet")
	if !ok || e.Rank != 1 {
		t.Fatal("FindLabel broken")
	}
	if _, ok := FindLabel(ranking, "nope"); ok {
		t.Fatal("FindLabel found phantom label")
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	res := &Resolution{PerAddress: map[onion.Address]int{
		"zzzzzzzzzzzzzzzz": 5,
		"aaaaaaaaaaaaaaaa": 5,
	}}
	r1 := Rank(res, nil)
	r2 := Rank(res, nil)
	if r1[0].Addr != r2[0].Addr || r1[0].Addr != "aaaaaaaaaaaaaaaa" {
		t.Fatal("tie break not deterministic by address")
	}
}

// TestResolutionWindowAblation reproduces why the paper resolves over a
// ±days window (28 Jan – 8 Feb): clients with skewed clocks request
// descriptor IDs for the wrong day. A window covering only the
// measurement day misses them; widening the window recovers them.
func TestResolutionWindowAblation(t *testing.T) {
	day := time.Date(2013, 2, 4, 12, 0, 0, 0, time.UTC)
	services := makeServices(40, 7)

	// Half the requests use correct clocks; half are skewed ±1–3 days.
	rng := rand.New(rand.NewSource(8))
	counts := make(map[onion.DescriptorID]int)
	i := 0
	for _, permID := range services {
		at := day
		if i%2 == 1 {
			offset := time.Duration(1+rng.Intn(3)) * 24 * time.Hour
			if rng.Intn(2) == 0 {
				offset = -offset
			}
			at = day.Add(offset)
		}
		counts[onion.ComputeDescriptorID(permID, at, 0)]++
		i++
	}

	narrowIx, err := BuildIndex(services, day, day)
	if err != nil {
		t.Fatal(err)
	}
	wideIx, err := BuildIndex(services, day.Add(-4*24*time.Hour), day.Add(4*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	narrow := Resolve(counts, narrowIx)
	wide := Resolve(counts, wideIx)

	if narrow.ResolvedIDs >= wide.ResolvedIDs {
		t.Fatalf("narrow window resolved %d, wide %d — skew handling broken",
			narrow.ResolvedIDs, wide.ResolvedIDs)
	}
	// The wide window must recover everything.
	if wide.ResolvedIDs != len(counts) {
		t.Fatalf("wide window resolved %d of %d", wide.ResolvedIDs, len(counts))
	}
	// The narrow window still catches the correct-clock half.
	if narrow.ResolvedIDs < len(counts)/3 {
		t.Fatalf("narrow window resolved only %d of %d", narrow.ResolvedIDs, len(counts))
	}
}

func TestResolveEmptyLog(t *testing.T) {
	from, to := window()
	ix, err := BuildIndex(makeServices(3, 6), from, to)
	if err != nil {
		t.Fatal(err)
	}
	res := Resolve(nil, ix)
	if res.TotalRequests != 0 || res.ResolvedAddresses != 0 {
		t.Fatalf("empty log resolution = %+v", res)
	}
}
