// Package popularity implements the paper's Section V: resolving the
// descriptor-ID request counts observed at (attacker-operated) hidden
// service directories back to onion addresses, and ranking services by
// request volume. Clients only ever ask for descriptor IDs; the attacker
// re-derives every candidate ID for every known onion address across a
// window of days (tolerating clients with wrong clocks, as the paper did
// for 28 Jan – 8 Feb 2013) and joins the two sets.
package popularity

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"torhs/internal/hsdir"
	"torhs/internal/onion"
	"torhs/internal/parallel"
)

// Index precomputes descriptor-ID → onion-address mappings over a date
// window. The mapping is stored as a dense entry array plus a compact
// open-addressed probe table of int32 references, keyed by the IDs' own
// leading bytes: descriptor IDs are SHA-1 outputs, already uniformly
// distributed, so inserts and lookups need no hash function at all —
// just a linear probe chain at ≤50% load over a table of 4-byte slots.
// Entries reference their address by index into a shared slice, keeping
// the (large) entry array pointer-free so the garbage collector never
// scans it.
type Index struct {
	slots   []int32 // 1-based indexes into entries; 0 = empty
	mask    uint64
	entries []idEntry
	addrs   []onion.Address
	from    time.Time
	to      time.Time
}

// idEntry is one indexed mapping; addrIdx indexes Index.addrs.
type idEntry struct {
	id      onion.DescriptorID
	addrIdx int32
}

// newIndexTable returns an empty table over the given address universe
// with room for capacity entries at ≤50% load.
func newIndexTable(capacity int, addrs []onion.Address) *Index {
	size := 1 << bits.Len(uint(2*capacity))
	if size < 16 {
		size = 16
	}
	return &Index{
		slots:   make([]int32, size),
		mask:    uint64(size - 1),
		entries: make([]idEntry, 0, capacity),
		addrs:   addrs,
	}
}

// insert adds or overwrites one mapping.
//
//torhs:hotpath
func (ix *Index) insert(id onion.DescriptorID, addrIdx int32) {
	if 2*(len(ix.entries)+1) > len(ix.slots) {
		ix.grow()
	}
	slot := binary.BigEndian.Uint64(id[0:8]) & ix.mask
	for {
		ref := ix.slots[slot]
		if ref == 0 {
			ix.entries = append(ix.entries, idEntry{id: id, addrIdx: addrIdx})
			ix.slots[slot] = int32(len(ix.entries))
			return
		}
		if e := &ix.entries[ref-1]; e.id == id {
			e.addrIdx = addrIdx
			return
		}
		slot = (slot + 1) & ix.mask
	}
}

// grow doubles the probe table and reindexes the entries.
func (ix *Index) grow() {
	ix.slots = make([]int32, 2*len(ix.slots))
	ix.mask = uint64(len(ix.slots) - 1)
	for i := range ix.entries {
		slot := binary.BigEndian.Uint64(ix.entries[i].id[0:8]) & ix.mask
		for ix.slots[slot] != 0 {
			slot = (slot + 1) & ix.mask
		}
		ix.slots[slot] = int32(i + 1)
	}
}

// BuildIndex derives, for every known service, all descriptor IDs valid
// in [from, to] and indexes them, using one worker per CPU.
func BuildIndex(services map[onion.Address]onion.PermanentID, from, to time.Time) (*Index, error) {
	return BuildIndexWorkers(services, from, to, 0)
}

// BuildIndexWorkers is BuildIndex with an explicit worker count (<= 0:
// one per CPU). Construction shards the services across workers; the
// secret-id-parts of the window are precomputed once and shared by every
// service (they depend only on the time period and replica), and each
// shard reuses one scratch buffer for the per-service ID derivations.
// The resulting index is identical at every worker count.
func BuildIndexWorkers(
	services map[onion.Address]onion.PermanentID,
	from, to time.Time,
	workers int,
) (*Index, error) {
	return BuildIndexTable(services, from, to, workers, nil)
}

// BuildIndexTable is BuildIndexWorkers with an externally shared
// secret-id-part table (nil builds a fresh one for the window). The
// experiments Env passes its study-wide table so index construction
// reuses the secret parts the simulation substrate already computed;
// periods outside the table fall back to direct derivation, so any table
// yields an identical index.
func BuildIndexTable(
	services map[onion.Address]onion.PermanentID,
	from, to time.Time,
	workers int,
	table *onion.SecretIDTable,
) (*Index, error) {
	if to.Before(from) {
		return nil, fmt.Errorf("popularity: window end %v before start %v", to, from)
	}
	days := int(to.Sub(from)/(24*time.Hour)) + 1
	perService := (days + 1) * onion.Replicas

	// Deterministic shard layout: services sorted by address.
	addrs := make([]onion.Address, 0, len(services))
	for a := range services {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	if table == nil {
		table = onion.NewSecretIDTable(from, to)
	}
	shards := make([]*Index, parallel.NumChunks(workers, len(addrs)))
	parallel.Chunks(workers, len(addrs), func(shard, lo, hi int) {
		t := newIndexTable((hi-lo)*perService, addrs)
		var buf []onion.DescriptorID
		for i := lo; i < hi; i++ {
			buf = table.DescriptorIDsInto(buf[:0], services[addrs[i]], from, to)
			for _, id := range buf {
				t.insert(id, int32(i))
			}
		}
		shards[shard] = t
	})

	var ix *Index
	switch len(shards) {
	case 0:
		ix = newIndexTable(0, addrs)
	case 1:
		ix = shards[0]
	default:
		ix = newIndexTable(len(addrs)*perService, addrs)
		// Merge in shard order (and within a shard in insertion order) so
		// any (cryptographically improbable) cross-service ID collision
		// resolves deterministically.
		for _, t := range shards {
			for i := range t.entries {
				ix.insert(t.entries[i].id, t.entries[i].addrIdx)
			}
		}
	}
	ix.from, ix.to = from, to
	return ix, nil
}

// Len returns the number of indexed descriptor IDs.
func (ix *Index) Len() int { return len(ix.entries) }

// Resolve maps one descriptor ID to its onion address.
//
//torhs:hotpath
func (ix *Index) Resolve(id onion.DescriptorID) (onion.Address, bool) {
	slot := binary.BigEndian.Uint64(id[0:8]) & ix.mask
	for {
		ref := ix.slots[slot]
		if ref == 0 {
			return "", false
		}
		if e := &ix.entries[ref-1]; e.id == id {
			return ix.addrs[e.addrIdx], true
		}
		slot = (slot + 1) & ix.mask
	}
}

// Resolution summarises resolving a request log against an index.
type Resolution struct {
	// TotalRequests across all descriptor IDs (1,031,176 in the paper).
	TotalRequests int
	// UniqueIDs requested (29,123 in the paper).
	UniqueIDs int
	// ResolvedIDs mapped to a known address (6,113 in the paper).
	ResolvedIDs int
	// ResolvedAddresses is the number of distinct addresses hit (3,140
	// in the paper).
	ResolvedAddresses int
	// ResolvedRequests is the request volume carried by resolved IDs.
	ResolvedRequests int
	// PerAddress is the request count per resolved onion address.
	PerAddress map[onion.Address]int
}

// Resolve joins per-descriptor-ID request counts with the index.
func Resolve(counts map[onion.DescriptorID]int, ix *Index) *Resolution {
	res := &Resolution{PerAddress: make(map[onion.Address]int)}
	for id, n := range counts {
		res.addCount(id, n, ix)
	}
	res.ResolvedAddresses = len(res.PerAddress)
	return res
}

// ResolveLog joins a directory request log with the index, iterating the
// log's per-ID counts in place instead of copying them into a map first
// (the zero-copy sibling of Resolve over RequestLog.CountsByID). Output
// is identical to Resolve.
func ResolveLog(log *hsdir.RequestLog, ix *Index) *Resolution {
	res := &Resolution{PerAddress: make(map[onion.Address]int)}
	log.EachCount(func(id onion.DescriptorID, n int) {
		res.addCount(id, n, ix)
	})
	res.ResolvedAddresses = len(res.PerAddress)
	return res
}

// addCount folds one per-descriptor-ID request count into the resolution.
//
//torhs:orderinsensitive every fold is a commutative accumulation (+= counters and a per-key map add), so the fold order cannot change the result
func (res *Resolution) addCount(id onion.DescriptorID, n int, ix *Index) {
	res.TotalRequests += n
	res.UniqueIDs++
	if addr, ok := ix.Resolve(id); ok {
		res.ResolvedIDs++
		res.ResolvedRequests += n
		res.PerAddress[addr] += n
	}
}

// ResolveBruteForce is the ablation baseline: no index — every requested
// ID is checked against every service by re-deriving that service's IDs
// over the window. Identical output to Resolve over BuildIndex, at
// O(ids × services × days) cost.
func ResolveBruteForce(
	counts map[onion.DescriptorID]int,
	services map[onion.Address]onion.PermanentID,
	from, to time.Time,
) *Resolution {
	res := &Resolution{PerAddress: make(map[onion.Address]int)}
	// Check services in sorted address order: the first-match break below
	// must not depend on map iteration order (IDs never collide across
	// services in practice, but the baseline should be deterministic even
	// if they did).
	addrs := make([]onion.Address, 0, len(services))
	for addr := range services {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var buf []onion.DescriptorID
	for id, n := range counts {
		res.TotalRequests += n
		res.UniqueIDs++
		resolved := false
		for _, addr := range addrs {
			buf = onion.DescriptorIDsOverRangeInto(buf[:0], services[addr], from, to)
			for _, candidate := range buf {
				if candidate == id {
					res.ResolvedIDs++
					res.ResolvedRequests += n
					res.PerAddress[addr] += n
					resolved = true
					break
				}
			}
			if resolved {
				break
			}
		}
	}
	res.ResolvedAddresses = len(res.PerAddress)
	return res
}

// RankEntry is one row of the popularity ranking (Table II).
type RankEntry struct {
	Rank     int
	Requests int
	Addr     onion.Address
	// Label annotates known services ("Goldnet", "SilkRoad", …); empty
	// for anonymous ones.
	Label string
}

// Rank orders resolved addresses by request count, labelling each via the
// optional labeler.
func Rank(res *Resolution, labeler func(onion.Address) string) []RankEntry {
	out := make([]RankEntry, 0, len(res.PerAddress))
	for addr, n := range res.PerAddress {
		out = append(out, RankEntry{Requests: n, Addr: addr})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Addr < out[j].Addr
	})
	// Label after sorting: labeler is caller-supplied code, so calling it
	// per map entry would hand it addresses in iteration order.
	for i := range out {
		out[i].Rank = i + 1
		if labeler != nil {
			out[i].Label = labeler(out[i].Addr)
		}
	}
	return out
}

// FindLabel returns the first entry carrying the label, if any.
func FindLabel(ranking []RankEntry, label string) (RankEntry, bool) {
	for _, e := range ranking {
		if e.Label == label {
			return e, true
		}
	}
	return RankEntry{}, false
}
