// Package popularity implements the paper's Section V: resolving the
// descriptor-ID request counts observed at (attacker-operated) hidden
// service directories back to onion addresses, and ranking services by
// request volume. Clients only ever ask for descriptor IDs; the attacker
// re-derives every candidate ID for every known onion address across a
// window of days (tolerating clients with wrong clocks, as the paper did
// for 28 Jan – 8 Feb 2013) and joins the two sets.
package popularity

import (
	"fmt"
	"sort"
	"time"

	"torhs/internal/onion"
)

// Index precomputes descriptor-ID → onion-address mappings over a date
// window.
type Index struct {
	byID map[onion.DescriptorID]onion.Address
	from time.Time
	to   time.Time
}

// BuildIndex derives, for every known service, all descriptor IDs valid
// in [from, to] and indexes them.
func BuildIndex(services map[onion.Address]onion.PermanentID, from, to time.Time) (*Index, error) {
	if to.Before(from) {
		return nil, fmt.Errorf("popularity: window end %v before start %v", to, from)
	}
	days := int(to.Sub(from)/(24*time.Hour)) + 1
	ix := &Index{
		byID: make(map[onion.DescriptorID]onion.Address, len(services)*days*onion.Replicas),
		from: from,
		to:   to,
	}
	for addr, permID := range services {
		for _, id := range onion.DescriptorIDsOverRange(permID, from, to) {
			ix.byID[id] = addr
		}
	}
	return ix, nil
}

// Len returns the number of indexed descriptor IDs.
func (ix *Index) Len() int { return len(ix.byID) }

// Resolve maps one descriptor ID to its onion address.
func (ix *Index) Resolve(id onion.DescriptorID) (onion.Address, bool) {
	addr, ok := ix.byID[id]
	return addr, ok
}

// Resolution summarises resolving a request log against an index.
type Resolution struct {
	// TotalRequests across all descriptor IDs (1,031,176 in the paper).
	TotalRequests int
	// UniqueIDs requested (29,123 in the paper).
	UniqueIDs int
	// ResolvedIDs mapped to a known address (6,113 in the paper).
	ResolvedIDs int
	// ResolvedAddresses is the number of distinct addresses hit (3,140
	// in the paper).
	ResolvedAddresses int
	// ResolvedRequests is the request volume carried by resolved IDs.
	ResolvedRequests int
	// PerAddress is the request count per resolved onion address.
	PerAddress map[onion.Address]int
}

// Resolve joins per-descriptor-ID request counts with the index.
func Resolve(counts map[onion.DescriptorID]int, ix *Index) *Resolution {
	res := &Resolution{PerAddress: make(map[onion.Address]int)}
	for id, n := range counts {
		res.TotalRequests += n
		res.UniqueIDs++
		if addr, ok := ix.Resolve(id); ok {
			res.ResolvedIDs++
			res.ResolvedRequests += n
			res.PerAddress[addr] += n
		}
	}
	res.ResolvedAddresses = len(res.PerAddress)
	return res
}

// ResolveBruteForce is the ablation baseline: no index — every requested
// ID is checked against every service by re-deriving that service's IDs
// over the window. Identical output to Resolve over BuildIndex, at
// O(ids × services × days) cost.
func ResolveBruteForce(
	counts map[onion.DescriptorID]int,
	services map[onion.Address]onion.PermanentID,
	from, to time.Time,
) *Resolution {
	res := &Resolution{PerAddress: make(map[onion.Address]int)}
	for id, n := range counts {
		res.TotalRequests += n
		res.UniqueIDs++
		resolved := false
		for addr, permID := range services {
			for _, candidate := range onion.DescriptorIDsOverRange(permID, from, to) {
				if candidate == id {
					res.ResolvedIDs++
					res.ResolvedRequests += n
					res.PerAddress[addr] += n
					resolved = true
					break
				}
			}
			if resolved {
				break
			}
		}
	}
	res.ResolvedAddresses = len(res.PerAddress)
	return res
}

// RankEntry is one row of the popularity ranking (Table II).
type RankEntry struct {
	Rank     int
	Requests int
	Addr     onion.Address
	// Label annotates known services ("Goldnet", "SilkRoad", …); empty
	// for anonymous ones.
	Label string
}

// Rank orders resolved addresses by request count, labelling each via the
// optional labeler.
func Rank(res *Resolution, labeler func(onion.Address) string) []RankEntry {
	out := make([]RankEntry, 0, len(res.PerAddress))
	for addr, n := range res.PerAddress {
		e := RankEntry{Requests: n, Addr: addr}
		if labeler != nil {
			e.Label = labeler(addr)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Requests != out[j].Requests {
			return out[i].Requests > out[j].Requests
		}
		return out[i].Addr < out[j].Addr
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// FindLabel returns the first entry carrying the label, if any.
func FindLabel(ranking []RankEntry, label string) (RankEntry, bool) {
	for _, e := range ranking {
		if e.Label == label {
			return e, true
		}
	}
	return RankEntry{}, false
}
