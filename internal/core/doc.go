// Package core groups the paper's primary contributions, one subpackage
// per pipeline:
//
//   - trawl: the shadow-relay collection attack (Section II-A) that
//     harvests onion addresses and client request rates;
//   - scan: port scanning and HTTPS certificate auditing (Section III,
//     Fig. 1);
//   - content: crawling, filtering, language detection and topic
//     classification (Section IV, Table I, Fig. 2);
//   - popularity: descriptor-ID resolution and ranking (Section V,
//     Table II);
//   - deanon: opportunistic deanonymisation of hidden-service clients
//     (Section VI, Fig. 3) and of the services themselves (the [8]
//     attack of Section II-B);
//   - tracking: consensus-history tracking detection (Section VII).
package core
