// Package scan implements the paper's Section III: port-scanning the
// collected onion addresses over a multi-day window, counting open ports
// (with the Skynet abnormal-error fingerprint on 55080 counted as open),
// and auditing the TLS certificates of HTTPS listeners.
package scan

import (
	"fmt"
	"sort"
	"strings"

	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/parallel"
)

// Config parameterises the scan campaign.
type Config struct {
	// Days is the number of scan days; the port space is partitioned
	// into Days chunks scanned on different days (as the paper did
	// between 14 and 21 Feb 2013).
	Days int
	// DailyOfflineProb is the chance a service is unreachable on any
	// given scan day, producing the paper's partial coverage (~87%).
	DailyOfflineProb float64
	// Seed drives the per-day availability draws.
	Seed int64
	// Workers shards the sweep across goroutines (<= 0: one per CPU).
	// Availability draws are derived per address, so results are
	// identical at every worker count.
	Workers int
}

// DefaultConfig mirrors the paper's campaign shape.
func DefaultConfig(seed int64) Config {
	return Config{Days: 4, DailyOfflineProb: 0.045, Seed: seed}
}

// Result aggregates a scan campaign — the data behind Fig. 1.
type Result struct {
	// TotalAddresses is the input list size (39,824 in the paper).
	TotalAddresses int
	// WithDescriptor is how many addresses had fetchable descriptors
	// (24,511 in the paper).
	WithDescriptor int
	// Timeouts counts addresses whose probes persistently timed out.
	Timeouts int
	// OpenPortCount maps port number to the number of addresses
	// answering on it (abnormal errors counted as open, as the paper
	// does for 55080).
	OpenPortCount map[int]int
	// AbnormalCount counts abnormal-error observations per port.
	AbnormalCount map[int]int
	// PerAddress lists the answering ports found per address.
	PerAddress map[onion.Address][]int
	// TotalOpenPorts is the sum over OpenPortCount (22,007 in the
	// paper).
	TotalOpenPorts int
	// UniquePorts is the number of distinct open port numbers (495 in
	// the paper).
	UniquePorts int
	// Coverage is the fraction of truly answering ports the campaign
	// found (87% in the paper).
	Coverage float64
}

// Scanner scans address lists against a fabric.
type Scanner struct {
	cfg    Config
	fabric *darknet.Fabric
}

// New builds a scanner.
func New(fabric *darknet.Fabric, cfg Config) (*Scanner, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("scan: days %d must be positive", cfg.Days)
	}
	if cfg.DailyOfflineProb < 0 || cfg.DailyOfflineProb >= 1 {
		return nil, fmt.Errorf("scan: offline probability %v out of [0,1)", cfg.DailyOfflineProb)
	}
	return &Scanner{cfg: cfg, fabric: fabric}, nil
}

// portDay assigns each port to the scan day on which its range chunk is
// swept.
func (s *Scanner) portDay(port int) int {
	return port * s.cfg.Days / 65536
}

// shardResult is one worker's partial campaign tally.
type shardResult struct {
	withDescriptor int
	timeouts       int
	truePorts      int
	openPortCount  map[int]int
	abnormalCount  map[int]int
	perAddress     map[onion.Address][]int
}

// scanOne sweeps a single address into the shard tally. Availability is
// drawn from an RNG derived from (seed, address index), so the outcome
// for an address never depends on which worker swept it.
func (s *Scanner) scanOne(idx int, addr onion.Address, out *shardResult) {
	ports, status := s.fabric.AnsweringPorts(addr, darknet.PhaseScan)
	switch status {
	case darknet.ProbeNoDescriptor:
		return
	case darknet.ProbeTimeout:
		out.withDescriptor++
		out.timeouts++
		return
	}
	out.withDescriptor++
	out.truePorts += len(ports)

	// Per-day availability: a chunk's ports are missed if the service
	// was offline on that chunk's scan day.
	rng := parallel.NewRNG(parallel.SeedFor(s.cfg.Seed, int64(idx)))
	offline := make([]bool, s.cfg.Days)
	for d := range offline {
		offline[d] = rng.Float64() < s.cfg.DailyOfflineProb
	}
	var found []int
	for _, p := range ports {
		if offline[s.portDay(p)] {
			continue
		}
		found = append(found, p)
		out.openPortCount[p]++
		if s.fabric.Probe(addr, p, darknet.PhaseScan) == darknet.ProbeAbnormal {
			out.abnormalCount[p]++
		}
	}
	if len(found) > 0 {
		out.perAddress[addr] = found
	}
}

// ScanAll runs the campaign over the address list, sharded across
// cfg.Workers goroutines.
func (s *Scanner) ScanAll(addrs []onion.Address) *Result {
	res := &Result{
		TotalAddresses: len(addrs),
		OpenPortCount:  make(map[int]int),
		AbnormalCount:  make(map[int]int),
		PerAddress:     make(map[onion.Address][]int, len(addrs)),
	}
	shards := make([]shardResult, parallel.NumChunks(s.cfg.Workers, len(addrs)))
	parallel.Chunks(s.cfg.Workers, len(addrs), func(shard, lo, hi int) {
		out := &shards[shard]
		out.openPortCount = make(map[int]int)
		out.abnormalCount = make(map[int]int)
		out.perAddress = make(map[onion.Address][]int, hi-lo)
		for i := lo; i < hi; i++ {
			s.scanOne(i, addrs[i], out)
		}
	})

	// Merge in shard order; every field is a sum or a disjoint-key map
	// union, so the merged result is independent of scheduling.
	truePorts := 0
	for i := range shards {
		sh := &shards[i]
		res.WithDescriptor += sh.withDescriptor
		res.Timeouts += sh.timeouts
		truePorts += sh.truePorts
		for p, n := range sh.openPortCount {
			res.OpenPortCount[p] += n
		}
		for p, n := range sh.abnormalCount {
			res.AbnormalCount[p] += n
		}
		for a, ports := range sh.perAddress {
			res.PerAddress[a] = ports
		}
	}
	for _, n := range res.OpenPortCount {
		res.TotalOpenPorts += n
	}
	res.UniquePorts = len(res.OpenPortCount)
	if truePorts > 0 {
		res.Coverage = float64(res.TotalOpenPorts) / float64(truePorts)
	}
	return res
}

// Fig1Row is one bar of the paper's Fig. 1.
type Fig1Row struct {
	Label string
	Port  int // 0 for the aggregated "other" row
	Count int
}

// Fig1 renders the open-ports distribution exactly as the paper's figure
// groups it: named ports with counts ≥ threshold, everything else under
// "other".
func (r *Result) Fig1(threshold int) []Fig1Row {
	names := map[int]string{
		hspop.PortSkynet:  "55080-Skynet",
		hspop.PortHTTP:    "80-http",
		hspop.PortHTTPS:   "443-https",
		hspop.PortSSH:     "22-ssh",
		hspop.PortTorChat: "11009-TorChat",
		hspop.Port4050:    "4050",
		hspop.PortIRC:     "6667-irc",
	}
	var rows []Fig1Row
	other := 0
	for port, count := range r.OpenPortCount {
		name, named := names[port]
		if !named && count < threshold {
			other += count
			continue
		}
		if !named {
			name = fmt.Sprintf("%d", port)
		}
		rows = append(rows, Fig1Row{Label: name, Port: port, Count: count})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Port < rows[j].Port
	})
	rows = append(rows, Fig1Row{Label: "other", Count: other})
	return rows
}

// CertAudit summarises the Section III HTTPS-certificate analysis.
type CertAudit struct {
	// HTTPSServices is how many scanned addresses had port 443 open.
	HTTPSServices int
	// SelfSignedMismatch counts self-signed certificates whose CN does
	// not match the onion address (1,225 in the paper).
	SelfSignedMismatch int
	// TorHostCN counts certificates with the TorHost common name (1,168
	// in the paper, a subset of the mismatches).
	TorHostCN int
	// DNSLeaks counts certificates whose CN names a public DNS host,
	// deanonymising the operator (34 in the paper).
	DNSLeaks int
	// LeakedNames lists the leaked DNS names.
	LeakedNames []string
}

// AuditCertificates inspects the certificate of every scanned address
// with an open 443.
func (s *Scanner) AuditCertificates(res *Result) *CertAudit {
	audit := &CertAudit{}
	addrs := make([]onion.Address, 0, len(res.PerAddress))
	for addr := range res.PerAddress {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	for _, addr := range addrs {
		has443 := false
		for _, p := range res.PerAddress[addr] {
			if p == hspop.PortHTTPS {
				has443 = true
				break
			}
		}
		if !has443 {
			continue
		}
		cert, err := s.fabric.TLSCert(addr, darknet.PhaseScan)
		if err != nil {
			continue
		}
		audit.HTTPSServices++
		cnIsOnion := strings.HasSuffix(cert.CommonName, ".onion")
		switch {
		case cert.SelfSigned && cnIsOnion && cert.CommonName != addr.String():
			audit.SelfSignedMismatch++
			if cert.CommonName == hspop.TorHostCN {
				audit.TorHostCN++
			}
		case !cnIsOnion:
			audit.DNSLeaks++
			audit.LeakedNames = append(audit.LeakedNames, cert.CommonName)
		}
	}
	return audit
}
