package scan

import (
	"context"
	"strings"
	"testing"

	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
)

func setupScan(t *testing.T, seed int64) (*Scanner, *hspop.Population, []onion.Address) {
	t.Helper()
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	sc, err := New(fabric, DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]onion.Address, 0, pop.Len())
	for _, s := range pop.Services {
		addrs = append(addrs, s.Address)
	}
	return sc, pop, addrs
}

func TestNewValidation(t *testing.T) {
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	cfg := DefaultConfig(1)
	cfg.Days = 0
	if _, err := New(fabric, cfg); err == nil {
		t.Fatal("days=0 accepted")
	}
	cfg = DefaultConfig(1)
	cfg.DailyOfflineProb = 1.0
	if _, err := New(fabric, cfg); err == nil {
		t.Fatal("offline prob 1.0 accepted")
	}
}

func TestScanAllFig1Shape(t *testing.T) {
	sc, pop, addrs := setupScan(t, 2)
	res := sc.ScanAll(addrs)

	if res.TotalAddresses != pop.Len() {
		t.Fatalf("total = %d, want %d", res.TotalAddresses, pop.Len())
	}
	if res.WithDescriptor >= res.TotalAddresses {
		t.Fatal("descriptor churn missing: all addresses resolvable")
	}
	// Fig. 1 ordering: 55080 dominates, then 80, 443, 22.
	if !(res.OpenPortCount[hspop.PortSkynet] > res.OpenPortCount[hspop.PortHTTP]) {
		t.Fatal("port 55080 not dominant")
	}
	if !(res.OpenPortCount[hspop.PortHTTP] > res.OpenPortCount[hspop.PortHTTPS]) {
		t.Fatal("port 80 not above 443")
	}
	// All 55080 observations are abnormal errors.
	if res.AbnormalCount[hspop.PortSkynet] != res.OpenPortCount[hspop.PortSkynet] {
		t.Fatal("55080 observations not abnormal")
	}
	if res.AbnormalCount[hspop.PortHTTP] != 0 {
		t.Fatal("port 80 flagged abnormal")
	}
}

func TestScanCoveragePartial(t *testing.T) {
	sc, _, addrs := setupScan(t, 3)
	res := sc.ScanAll(addrs)
	if res.Coverage <= 0.75 || res.Coverage >= 1.0 {
		t.Fatalf("coverage = %.3f, want partial (~0.87)", res.Coverage)
	}
	if res.Timeouts == 0 {
		t.Fatal("no timeouts observed")
	}
}

func TestScanUniquePortsScaled(t *testing.T) {
	sc, _, addrs := setupScan(t, 4)
	res := sc.ScanAll(addrs)
	// At 5% scale the unique-port count should be tens (paper: 495).
	if res.UniquePorts < 10 {
		t.Fatalf("unique ports = %d, want >= 10", res.UniquePorts)
	}
	if res.TotalOpenPorts == 0 {
		t.Fatal("no open ports found")
	}
}

func TestFig1RowsOrderedWithOtherLast(t *testing.T) {
	sc, _, addrs := setupScan(t, 5)
	res := sc.ScanAll(addrs)
	rows := res.Fig1(50)
	if len(rows) < 3 {
		t.Fatalf("fig1 rows = %d", len(rows))
	}
	if rows[0].Label != "55080-Skynet" {
		t.Fatalf("top row = %q, want Skynet", rows[0].Label)
	}
	last := rows[len(rows)-1]
	if last.Label != "other" {
		t.Fatalf("last row = %q, want other", last.Label)
	}
	for i := 2; i < len(rows)-1; i++ {
		if rows[i].Count > rows[i-1].Count {
			t.Fatal("fig1 body not sorted descending")
		}
	}
}

func TestCertAuditShape(t *testing.T) {
	sc, _, addrs := setupScan(t, 6)
	res := sc.ScanAll(addrs)
	audit := sc.AuditCertificates(res)

	if audit.HTTPSServices == 0 {
		t.Fatal("no HTTPS services audited")
	}
	if audit.TorHostCN == 0 {
		t.Fatal("no TorHost CNs found")
	}
	if audit.TorHostCN > audit.SelfSignedMismatch {
		t.Fatal("TorHost CNs not a subset of mismatches")
	}
	if audit.DNSLeaks == 0 {
		t.Fatal("no DNS leaks found")
	}
	if len(audit.LeakedNames) != audit.DNSLeaks {
		t.Fatal("leaked name list inconsistent")
	}
	for _, name := range audit.LeakedNames {
		if strings.HasSuffix(name, ".onion") {
			t.Fatalf("leaked name %q is an onion address", name)
		}
	}
	// The mismatch population dominates the leak population, as in the
	// paper (1,225 vs 34).
	if audit.SelfSignedMismatch <= audit.DNSLeaks {
		t.Fatal("mismatches should dominate DNS leaks")
	}
}

func TestScanDeterministicForSeed(t *testing.T) {
	scA, _, addrsA := setupScan(t, 7)
	scB, _, addrsB := setupScan(t, 7)
	a := scA.ScanAll(addrsA)
	b := scB.ScanAll(addrsB)
	if a.TotalOpenPorts != b.TotalOpenPorts || a.UniquePorts != b.UniquePorts ||
		a.WithDescriptor != b.WithDescriptor || a.Timeouts != b.Timeouts {
		t.Fatal("scan results differ across identical runs")
	}
}
