package scan

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
)

// TestScanAllIdenticalAcrossWorkerCounts asserts the sharded sweep is a
// pure function of (seed, addresses): every worker count produces the
// same campaign result.
func TestScanAllIdenticalAcrossWorkerCounts(t *testing.T) {
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	addrs := make([]onion.Address, 0, pop.Len())
	for _, s := range pop.Services {
		addrs = append(addrs, s.Address)
	}

	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	var base *Result
	for _, workers := range []int{1, 2, 3, 4, 8} {
		cfg := DefaultConfig(11)
		cfg.Workers = workers
		sc, err := New(fabric, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sc.ScanAll(addrs)
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("scan result differs between workers=1 and workers=%d", workers)
		}
	}
	if base.TotalOpenPorts == 0 {
		t.Fatal("empty scan")
	}
}
