package tracking

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestAnalyzeIdenticalAcrossWorkerCounts pins the sharded sweep's merge
// algebra: every worker count must reproduce the sequential report
// exactly — including the seams the merge has to stitch (fingerprint
// switches at shard boundaries, responsible-day runs crossing them, and
// boundary days counted by two shards).
func TestAnalyzeIdenticalAcrossWorkerCounts(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	sc, err := BuildScenario(DefaultScenarioConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	from := sc.Start
	to := from.Add(120 * 24 * time.Hour)

	var base *Report
	for _, workers := range []int{1, 2, 3, 4, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		an, err := NewAnalyzer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			continue
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("report differs between workers=1 and workers=%d", workers)
		}
	}
	if len(base.Relays) == 0 {
		t.Fatal("empty report")
	}
}
