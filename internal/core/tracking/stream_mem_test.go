package tracking

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"
)

// memScenarioConfig is a longer time axis than the default scenario —
// long enough that the materialized history dominates the live heap and
// the streamed/materialized gap is structural, not noise.
func memScenarioConfig() ScenarioConfig {
	cfg := DefaultScenarioConfig(35)
	cfg.Days = 365
	cfg.InitialRelays = 500
	cfg.FinalRelays = 700
	return cfg
}

// peakLiveHeapAbove runs fn with the GC pinned close to the live set
// (SetGCPercent(10), so HeapAlloc tracks live data within ~10%) and
// returns the peak HeapAlloc sampled during the run, minus the settled
// baseline before it — the working set fn added.
func peakLiveHeapAbove(t *testing.T, fn func()) uint64 {
	t.Helper()
	old := debug.SetGCPercent(10)
	defer debug.SetGCPercent(old)
	runtime.GC()
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
				runtime.ReadMemStats(&ms)
				if cur := ms.HeapAlloc; cur > peak.Load() {
					peak.Store(cur)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	fn()
	close(stop)
	<-done
	if p := peak.Load(); p > base.HeapAlloc {
		return p - base.HeapAlloc
	}
	return 0
}

// TestStreamingPeakHeapRegression is the memory-regression gate of the
// streaming pipeline: over a year-long scenario, the streamed analysis
// (bounded sliding ring, documents re-derived from seed) must peak at no
// more than half the materialized path's live heap. A kernel that starts
// retaining documents past its fold — the regression the torhsvet
// windowring analyzer exists to catch statically — fails this
// dynamically.
func TestStreamingPeakHeapRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("year-long scenario build is not short")
	}
	cfg := memScenarioConfig()
	aCfg := DefaultConfig()
	aCfg.Workers = 1 // sequential on both sides: compare kernels, not shard counts
	an, err := NewAnalyzer(aCfg)
	if err != nil {
		t.Fatal(err)
	}

	materialized := peakLiveHeapAbove(t, func() {
		sc, err := BuildScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		from := sc.Start
		to := from.Add(time.Duration(cfg.Days) * 24 * time.Hour)
		rep, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Suspicious) == 0 {
			t.Fatal("materialized analysis found nothing")
		}
	})

	streamed := peakLiveHeapAbove(t, func() {
		sc, src, err := NewScenarioSource(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := an.AnalyzeSource(context.Background(), src, sc.Target, nil, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Suspicious) == 0 {
			t.Fatal("streamed analysis found nothing")
		}
	})

	t.Logf("peak live heap: materialized %d MB, streamed %d MB",
		materialized>>20, streamed>>20)
	if streamed > materialized/2 {
		t.Fatalf("streamed peak live heap %d MB exceeds half the materialized path's %d MB",
			streamed>>20, materialized>>20)
	}
}
