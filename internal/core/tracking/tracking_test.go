package tracking

import (
	"context"
	"testing"
	"time"

	"torhs/internal/relay"
)

func TestNewAnalyzerValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"zero sigma", func(c *Config) { c.SigmaK = 0 }},
		{"ratio below one", func(c *Config) { c.RatioSuspicious = 0.5 }},
		{"strong below suspicious", func(c *Config) { c.RatioStrong = c.RatioSuspicious - 1 }},
		{"zero switches", func(c *Config) { c.MinSwitches = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mod(&cfg)
			if _, err := NewAnalyzer(cfg); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
}

func TestScenarioValidation(t *testing.T) {
	cfg := DefaultScenarioConfig(1)
	cfg.Days = 10 // shorter than episodes
	if _, err := BuildScenario(cfg); err == nil {
		t.Fatal("short scenario accepted")
	}
	cfg = DefaultScenarioConfig(1)
	cfg.BandEnd = cfg.BandStart
	if _, err := BuildScenario(cfg); err == nil {
		t.Fatal("empty band accepted")
	}
}

func buildAndAnalyze(t *testing.T, seed int64) (*Scenario, *Report) {
	t.Helper()
	sc, err := BuildScenario(DefaultScenarioConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), sc.History, sc.Target, sc.Start, sc.Start.Add(200*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return sc, rep
}

func suspiciousSet(rep *Report) map[relay.ID]RelayReport {
	out := make(map[relay.ID]RelayReport)
	for _, idx := range rep.Suspicious {
		out[rep.Relays[idx].RelayID] = rep.Relays[idx]
	}
	return out
}

func TestAnalyzeEmptyWindow(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := sc.Start.Add(-100 * 24 * time.Hour)
	if _, err := an.Analyze(context.Background(), sc.History, sc.Target, before, before.Add(24*time.Hour)); err == nil {
		t.Fatal("empty window accepted")
	}
}

func TestBandTrackersDetectedWithStrongRatio(t *testing.T) {
	sc, rep := buildAndAnalyze(t, 3)
	sus := suspiciousSet(rep)
	cfg := DefaultConfig()
	for _, id := range sc.BandRelayIDs {
		r, ok := sus[id]
		if !ok {
			t.Fatalf("band tracker %d not flagged", id)
		}
		if r.MaxRatio <= cfg.RatioStrong {
			t.Fatalf("band tracker %d ratio = %.0f, want > %.0f", id, r.MaxRatio, cfg.RatioStrong)
		}
		if r.SwitchesIntoPosition == 0 {
			t.Fatalf("band tracker %d has no switch-into-position evidence", id)
		}
	}
	// The band trackers must be the ONLY relays crossing the strong
	// ratio threshold apart from the takeover fleet — as the paper says,
	// "they are also the only responsible HSDirs that cross a ratio of
	// 10k" during their episode.
	planted := map[relay.ID]bool{}
	for _, id := range sc.BandRelayIDs {
		planted[id] = true
	}
	for _, id := range sc.TakeoverRelayIDs {
		planted[id] = true
	}
	for _, id := range sc.OwnRelayIDs {
		planted[id] = true
	}
	for _, r := range rep.Relays {
		if r.MaxRatio > cfg.RatioStrong && !planted[r.RelayID] {
			t.Fatalf("honest relay %d crossed strong ratio %.0f", r.RelayID, r.MaxRatio)
		}
	}
}

func TestTakeoverEpisodeDetected(t *testing.T) {
	sc, rep := buildAndAnalyze(t, 4)
	sus := suspiciousSet(rep)
	for _, id := range sc.TakeoverRelayIDs {
		if _, ok := sus[id]; !ok {
			t.Fatalf("takeover relay %d not flagged", id)
		}
	}
	// An episode with FullTakeover must exist and consist of the
	// takeover fleet.
	var full *Episode
	for i := range rep.Episodes {
		if rep.Episodes[i].FullTakeover {
			full = &rep.Episodes[i]
			break
		}
	}
	if full == nil {
		t.Fatal("no full-takeover episode found")
	}
	if len(full.RelayIDs) != 6 {
		t.Fatalf("takeover episode has %d members, want 6", len(full.RelayIDs))
	}
	want := map[relay.ID]bool{}
	for _, id := range sc.TakeoverRelayIDs {
		want[id] = true
	}
	for _, id := range full.RelayIDs {
		if !want[id] {
			t.Fatalf("unexpected takeover member %d", id)
		}
	}
}

func TestOwnProbesDetected(t *testing.T) {
	sc, rep := buildAndAnalyze(t, 5)
	sus := suspiciousSet(rep)
	found := 0
	for _, id := range sc.OwnRelayIDs {
		if r, ok := sus[id]; ok {
			found++
			if r.Switches == 0 {
				t.Fatalf("own probe %d flagged without switches", id)
			}
		}
	}
	if found == 0 {
		t.Fatal("no own-probe relay flagged")
	}
}

func TestHonestFalsePositiveRateLow(t *testing.T) {
	sc, rep := buildAndAnalyze(t, 6)
	planted := map[relay.ID]bool{}
	for _, ids := range [][]relay.ID{sc.OwnRelayIDs, sc.BandRelayIDs, sc.TakeoverRelayIDs} {
		for _, id := range ids {
			planted[id] = true
		}
	}
	falsePos := 0
	for _, idx := range rep.Suspicious {
		if !planted[rep.Relays[idx].RelayID] {
			falsePos++
		}
	}
	if falsePos > len(rep.Relays)/50 {
		t.Fatalf("false positives = %d of %d relays", falsePos, len(rep.Relays))
	}
}

func TestEpisodesClusterByNicknameStem(t *testing.T) {
	sc, rep := buildAndAnalyze(t, 7)
	var bandEp *Episode
	for i := range rep.Episodes {
		if rep.Episodes[i].Label == "tracknet" {
			bandEp = &rep.Episodes[i]
			break
		}
	}
	if bandEp == nil {
		t.Fatalf("no tracknet episode; episodes: %+v", rep.Episodes)
	}
	if len(bandEp.RelayIDs) != len(sc.BandRelayIDs) {
		t.Fatalf("band episode members = %d, want %d", len(bandEp.RelayIDs), len(sc.BandRelayIDs))
	}
	// Band episode must span (roughly) the configured band.
	cfg := DefaultScenarioConfig(7)
	wantFrom := sc.Start.Add(time.Duration(cfg.BandStart) * 24 * time.Hour)
	if bandEp.From.Before(wantFrom.Add(-48*time.Hour)) || bandEp.From.After(wantFrom.Add(48*time.Hour)) {
		t.Fatalf("band episode starts %v, want near %v", bandEp.From, wantFrom)
	}
}

func TestReportBasicAccounting(t *testing.T) {
	_, rep := buildAndAnalyze(t, 8)
	if rep.Days != 120 {
		t.Fatalf("days = %d, want 120", rep.Days)
	}
	if rep.MeanHSDirs <= 0 {
		t.Fatal("mean HSDirs not computed")
	}
	for i := 1; i < len(rep.Relays); i++ {
		if rep.Relays[i].TimesResponsible > rep.Relays[i-1].TimesResponsible {
			t.Fatal("relays not sorted by responsibility count")
		}
	}
	for _, r := range rep.Relays {
		if r.TimesResponsible == 0 {
			t.Fatal("report contains never-responsible relay")
		}
		if len(r.Occurrences) < r.TimesResponsible {
			t.Fatal("occurrences fewer than responsible days")
		}
	}
}

func TestMarkResponsibleRuns(t *testing.T) {
	st := &relayState{lastRespDay: noRespDay}
	// -1 first: pre-epoch days must not collide with the sentinel.
	for _, day := range []int64{-1, 10, 10, 11, 12, 20, 21} {
		st.markResponsible(day)
	}
	if st.maxRun != 3 {
		t.Fatalf("max consecutive = %d, want 3", st.maxRun)
	}
	if st.respCount != 6 {
		t.Fatalf("distinct days = %d, want 6", st.respCount)
	}
	empty := &relayState{lastRespDay: noRespDay}
	if empty.maxRun != 0 {
		t.Fatalf("max consecutive empty = %d, want 0", empty.maxRun)
	}
}

func TestNicknameStem(t *testing.T) {
	for in, want := range map[string]string{
		"tracknet03":   "tracknet",
		"snatch-unit5": "snatch-unit",
		"relay":        "relay",
		"a-1_2":        "a",
	} {
		if got := nicknameStem(in); got != want {
			t.Fatalf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}
