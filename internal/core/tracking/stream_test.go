package tracking

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/fault"
)

// TestScenarioSourceMatchesHistory pins the rebuild-from-seed contract:
// the streamed document sequence must equal the materialized history
// document for document, including after a backward read forces a
// replay, and the ring must never hold more than K documents.
func TestScenarioSourceMatchesHistory(t *testing.T) {
	cfg := DefaultScenarioConfig(31)
	sc, err := BuildScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ssc, src, err := NewScenarioSource(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ssc.Target != sc.Target || !ssc.Start.Equal(sc.Start) {
		t.Fatal("streaming scenario ground truth diverged from the materialized build")
	}
	if src.Len() != sc.History.Len() {
		t.Fatalf("source Len = %d, history Len = %d", src.Len(), sc.History.Len())
	}
	docs := sc.History.All()
	for i := 0; i < src.Len(); i++ {
		doc, err := src.At(i)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		if !reflect.DeepEqual(doc, docs[i]) {
			t.Fatalf("streamed document %d diverged from the archived history", i)
		}
	}
	// Rewinding past the ring replays from seed and still matches.
	doc0, err := src.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc0, docs[0]) {
		t.Fatal("document 0 diverged after a rewind-by-rebuild")
	}
	if src.Ring() != 3 {
		t.Fatalf("Ring() = %d, want 3", src.Ring())
	}
}

// streamReport runs AnalyzeSource over a fresh ScenarioSource.
func streamReport(t *testing.T, cfg ScenarioConfig, workers, ring int) *Report {
	t.Helper()
	aCfg := DefaultConfig()
	aCfg.Workers = workers
	an, err := NewAnalyzer(aCfg)
	if err != nil {
		t.Fatal(err)
	}
	_, src, err := NewScenarioSource(cfg, ring)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.AnalyzeSource(context.Background(), src, mustScenario(t, cfg).Target, nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

var scenarioCache = map[int64]*Scenario{}

// mustScenario memoizes BuildScenario per seed — the reference
// materialized history the streaming runs are compared against.
func mustScenario(t *testing.T, cfg ScenarioConfig) *Scenario {
	t.Helper()
	if sc, ok := scenarioCache[cfg.Seed]; ok {
		return sc
	}
	sc, err := BuildScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scenarioCache[cfg.Seed] = sc
	return sc
}

// TestAnalyzeSourceStreamingMatchesMaterialized is the tracking leg of
// the streaming equivalence contract: the report from a bounded-ring
// streaming source must equal the materialized-history report exactly,
// at every worker count (sharded streaming clones the source per shard)
// and at every ring size down to 1.
func TestAnalyzeSourceStreamingMatchesMaterialized(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	cfg := DefaultScenarioConfig(32)
	sc := mustScenario(t, cfg)
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	from := sc.Start
	to := from.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	ref, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Suspicious) == 0 {
		t.Fatal("reference analysis found nothing; scenario too small to prove anything")
	}
	for _, tc := range []struct{ workers, ring int }{
		{1, 1}, {1, 0}, {4, 1}, {4, 0}, {8, 2}, {0, 0},
	} {
		got := streamReport(t, cfg, tc.workers, tc.ring)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("streamed report (workers=%d ring=%d) diverged from materialized analysis",
				tc.workers, tc.ring)
		}
	}
}

// TestStreamingCrashResumeByteIdentical kills a checkpointed streaming
// sweep at the window fault site and resumes it over the same snapshot
// set: the resumed report must equal an uninterrupted materialized run's.
func TestStreamingCrashResumeByteIdentical(t *testing.T) {
	cfg := DefaultScenarioConfig(33)
	sc := mustScenario(t, cfg)
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	from := sc.Start
	to := from.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	ref, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
	if err != nil {
		t.Fatal(err)
	}
	set := trackingCkptSet(t)

	// "Process one": crash entering window 60, snapshots every 7 docs.
	in := fault.New(1)
	if err := in.Set(fault.SiteTrackingWindow, fault.Rule{Mode: fault.ModeCrash, At: 60}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	func() {
		defer func() {
			if _, ok := recover().(fault.CrashPoint); !ok {
				t.Fatal("streaming analysis did not crash at the window site")
			}
		}()
		_, src, err := NewScenarioSource(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		an.AnalyzeSource(context.Background(), src, sc.Target, ctxSet{set}, 7, false)
	}()
	fault.Install(prev)

	// "Process two": a fresh source resumes from the snapshot; its ring
	// replays forward from seed to the restored window.
	_, src, err := NewScenarioSource(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := an.AnalyzeSource(context.Background(), src, sc.Target, ctxSet{set}, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("resumed streaming analysis diverged from uninterrupted materialized run")
	}
}

// TestStreamingCancellationExact cancels a checkpointed streaming sweep
// mid-fold, requires the cancellation to surface as ctx.Err() with the
// folded prefix flushed, and requires the resumed report to be exact.
func TestStreamingCancellationExact(t *testing.T) {
	cfg := DefaultScenarioConfig(34)
	sc := mustScenario(t, cfg)
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	from := sc.Start
	to := from.Add(time.Duration(cfg.Days) * 24 * time.Hour)
	ref, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
	if err != nil {
		t.Fatal(err)
	}
	set := trackingCkptSet(t)

	// Cancel after window 50 folds: the source counts folds and trips the
	// context from inside the sweep, the way a deadline lands mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, src, err := NewScenarioSource(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cs := &cancellingSource{DocSource: src, cancelAt: 50, cancel: cancel}
	if _, err := an.AnalyzeSource(ctx, cs, sc.Target, ctxSet{set}, 5, false); err != context.Canceled {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	// The cancellation flush must have landed a snapshot of the folded
	// prefix, so the resume skips straight past it.
	var snap sweepSnapshot
	if _, ok, err := set.Latest(&snap); err != nil || !ok {
		t.Fatalf("no snapshot after cancellation flush (ok=%v err=%v)", ok, err)
	}
	if snap.Docs < 50 {
		t.Fatalf("cancellation flush covers %d documents, want >= 50", snap.Docs)
	}

	_, src2, err := NewScenarioSource(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := an.AnalyzeSource(context.Background(), src2, sc.Target, ctxSet{set}, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("post-cancellation resume diverged from uninterrupted run")
	}
}

// cancellingSource trips its cancel func after cancelAt documents.
type cancellingSource struct {
	DocSource
	served   int
	cancelAt int
	cancel   context.CancelFunc
}

func (c *cancellingSource) At(i int) (*consensus.Document, error) {
	d, err := c.DocSource.At(i)
	c.served++
	if c.served == c.cancelAt {
		c.cancel()
	}
	return d, err
}
