package tracking

import (
	"fmt"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/onion"
	"torhs/internal/relay"
	"torhs/internal/relaynet"
)

// ScenarioConfig builds a consensus history around a target hidden
// service ("Silk Road") with planted tracking episodes mirroring the
// three the paper found:
//
//   - the authors' own measurement servers, switching fingerprints into
//     position on a few scattered occasions (ratio ≳ 100);
//   - a named set of relays ("they share the same name") holding one of
//     the six responsible slots continuously over a multi-week band, the
//     only relays crossing ratio 10,000;
//   - a six-relay, three-IP fleet taking over ALL six responsible slots
//     for a single day.
type ScenarioConfig struct {
	// Seed drives the honest network and tracker randomness.
	Seed int64
	// Days is the total history length.
	Days int
	// InitialRelays / FinalRelays bound network growth (757 → 1,862
	// HSDirs across the paper's window).
	InitialRelays int
	FinalRelays   int

	// OwnProbeDays are the days on which the "our own servers" episode
	// mines into position (responsibility lands two days later).
	OwnProbeDays []int
	// BandStart / BandEnd bound the continuous-tracking episode
	// (inclusive start, exclusive end; responsibility observed within
	// the band).
	BandStart, BandEnd int
	// TakeoverDay is the full six-slot takeover day.
	TakeoverDay int
}

// DefaultScenarioConfig returns a scaled-down version of the paper's
// three-year window: the same three episodes over cfg.Days days.
func DefaultScenarioConfig(seed int64) ScenarioConfig {
	return ScenarioConfig{
		Seed:          seed,
		Days:          120,
		InitialRelays: 300,
		FinalRelays:   450,
		OwnProbeDays:  []int{20, 32, 44},
		BandStart:     60,
		BandEnd:       74,
		TakeoverDay:   100,
	}
}

// Scenario is the built history plus ground truth for evaluation.
type Scenario struct {
	History *consensus.History
	// Target is the tracked service's permanent ID ("Silk Road").
	Target onion.PermanentID
	// TargetAddress is its onion address.
	TargetAddress onion.Address
	// OwnRelayIDs / BandRelayIDs / TakeoverRelayIDs identify the planted
	// trackers.
	OwnRelayIDs      []relay.ID
	BandRelayIDs     []relay.ID
	TakeoverRelayIDs []relay.ID
	// Start is day 0's consensus instant.
	Start time.Time
}

// minedLead is how many days before its responsibility a tracker mines
// its fingerprint: it must exceed the 25 h HSDir uptime threshold.
const minedLead = 2

// BuildScenario runs the relay network for cfg.Days days and plants the
// three tracking episodes, materializing the full consensus history.
func BuildScenario(cfg ScenarioConfig) (*Scenario, error) {
	sc, sim, hook, err := newScenarioRun(cfg)
	if err != nil {
		return nil, err
	}
	h, err := sim.Run(hook)
	if err != nil {
		return nil, fmt.Errorf("tracking: %w", err)
	}
	sc.History = h
	return sc, nil
}

// newScenarioRun validates cfg, builds the simulation with the planted
// tracker fleets registered, and returns the scenario ground truth
// (History nil) plus the ready-to-run sim and day hook. Everything is
// derived from cfg.Seed, so two calls with the same cfg produce sims
// whose stepped document sequences are byte-identical — the property the
// streaming source's rewind-by-rebuild relies on.
func newScenarioRun(cfg ScenarioConfig) (*Scenario, *relaynet.Sim, relaynet.DayHook, error) {
	if cfg.Days < cfg.TakeoverDay+1 || cfg.Days < cfg.BandEnd {
		return nil, nil, nil, fmt.Errorf("tracking: scenario days %d too short for episodes", cfg.Days)
	}
	if cfg.BandStart <= 0 || cfg.BandEnd <= cfg.BandStart {
		return nil, nil, nil, fmt.Errorf("tracking: band [%d,%d) invalid", cfg.BandStart, cfg.BandEnd)
	}

	fleet := relaynet.FleetConfig{
		Seed:          cfg.Seed,
		Start:         time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:          cfg.Days,
		InitialRelays: cfg.InitialRelays,
		FinalRelays:   cfg.FinalRelays,
		DailyChurn:    0.01,
		Thresholds:    consensus.DefaultThresholds(),
	}
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("tracking: %w", err)
	}
	rng := sim.RNG()

	targetKey := onion.GenerateKey(rng)
	sc := &Scenario{
		Target:        targetKey.PermanentID(),
		TargetAddress: onion.AddressFromKey(targetKey),
		Start:         fleet.Start,
	}

	dayTime := func(day int) time.Time {
		return fleet.Start.Add(time.Duration(day) * 24 * time.Hour)
	}
	// The attacker's ring-size estimate; precision is irrelevant, only
	// the order of magnitude of the resulting ratio matters.
	estimatedHSDirs := uint64((cfg.InitialRelays + cfg.FinalRelays) / 2)

	// mineNear returns a mined fingerprint just after the target's
	// replica-r descriptor ID on the given day.
	mineNear := func(day int, rep uint8, targetRatio float64, slot uint64) onion.Fingerprint {
		descID := onion.ComputeDescriptorID(sc.Target, dayTime(day), rep)
		return MineFingerprint(descID, estimatedHSDirs, targetRatio, slot)
	}

	newTracker := func(nick, ip string, startDay int) *relay.Relay {
		r := relay.New(relay.Config{
			ID:        sim.NewRelayID(),
			Nickname:  nick,
			IP:        ip,
			ORPort:    9001,
			Bandwidth: 600,
		}, rng)
		r.Start(dayTime(startDay).Add(-30 * time.Hour))
		sim.AddAttackerRelay(r)
		return r
	}

	// Episode 1: "our own servers" — two relays, occasional probes.
	own := []*relay.Relay{
		newTracker("uniluprobe1", "158.64.1.10", 0),
		newTracker("uniluprobe2", "158.64.1.11", 0),
	}
	for _, r := range own {
		sc.OwnRelayIDs = append(sc.OwnRelayIDs, r.ID())
	}

	// Episode 2: the named band set — four relays sharing a nickname
	// stem, round-robin covering every day of the band.
	band := make([]*relay.Relay, 4)
	for i := range band {
		band[i] = newTracker(fmt.Sprintf("tracknet%02d", i),
			fmt.Sprintf("198.51.%d.7", 100+i), 0)
		sc.BandRelayIDs = append(sc.BandRelayIDs, band[i].ID())
	}

	// Episode 3: full takeover — six relays on three IPs (the consensus
	// admits two per IP).
	takeover := make([]*relay.Relay, 6)
	for i := range takeover {
		takeover[i] = newTracker(fmt.Sprintf("snatch-unit%d", i),
			fmt.Sprintf("192.0.2.%d", 10+i/2), 0)
		sc.TakeoverRelayIDs = append(sc.TakeoverRelayIDs, takeover[i].ID())
	}

	hook := func(day int, now time.Time) {
		// Own-probe episode: mine on the listed days; responsibility
		// lands minedLead days later with ratio ≈ 300.
		for i, probeDay := range cfg.OwnProbeDays {
			if day == probeDay {
				own[i%len(own)].AdoptMinedFingerprint(
					mineNear(day+minedLead, 0, 300, 1), now)
			}
		}

		// Band episode: tracker (d mod 4) re-mines for day d+minedLead
		// whenever that day falls inside the band. Ratio ≈ 50,000 —
		// these are the only relays crossing 10k, as in the paper.
		targetDay := day + minedLead
		if targetDay >= cfg.BandStart && targetDay < cfg.BandEnd {
			band[targetDay%len(band)].AdoptMinedFingerprint(
				mineNear(targetDay, uint8(targetDay%2), 50000, 1), now)
		}

		// Takeover episode: two days ahead, all six relays mine onto
		// the three slots following each replica's descriptor ID.
		if day == cfg.TakeoverDay-minedLead {
			for i, r := range takeover {
				rep := uint8(i / 3)
				slot := uint64(i%3 + 1)
				r.AdoptMinedFingerprint(
					mineNear(cfg.TakeoverDay, rep, 20000, slot), now)
			}
		}
	}

	return sc, sim, hook, nil
}

// DefaultWindowRing is the sliding-ring capacity a streaming tracking
// analysis uses when the caller does not choose one. The sweep is a pure
// left fold, so a single live document would suffice; a few slots absorb
// the (rare) short backward re-reads without a rebuild.
const DefaultWindowRing = 4

// ScenarioSource is a streaming DocSource over the planted-tracker
// scenario: consensus documents are derived one day at a time from
// cfg.Seed through relaynet.Sim.StepDay and held in a sliding ring of at
// most ring live documents. Memory stays flat in cfg.Days — the
// full History is never materialized. Reading backward past the ring
// rebuilds the simulation from seed and replays forward (documents are
// re-derived, not stored), which is exactly how sweep shards and
// checkpoint resumes rewind.
//
// The document sequence is byte-identical to BuildScenario's archived
// history for the same cfg. Not safe for concurrent use; sweep shards
// each take their own replica via Clone.
type ScenarioSource struct {
	cfg  ScenarioConfig
	ring int
	sim  *relaynet.Sim
	hook relaynet.DayHook
	// buf is the bounded sliding ring itself: buf[j] is document
	// base+j, len(buf) <= ring.
	//
	//torhs:retained the sliding window ring; holds at most ring live documents by construction
	buf  []*consensus.Document
	base int
}

// NewScenarioSource builds the scenario simulation without running it
// and returns the ground truth (History nil — the streamed documents are
// never archived) plus the streaming source. ring <= 0 selects
// DefaultWindowRing.
func NewScenarioSource(cfg ScenarioConfig, ring int) (*Scenario, *ScenarioSource, error) {
	if ring <= 0 {
		ring = DefaultWindowRing
	}
	sc, sim, hook, err := newScenarioRun(cfg)
	if err != nil {
		return nil, nil, err
	}
	return sc, &ScenarioSource{cfg: cfg, ring: ring, sim: sim, hook: hook}, nil
}

// Len returns the number of documents in the window (one per day).
func (s *ScenarioSource) Len() int { return s.cfg.Days }

// Ring returns the ring capacity (the live-document bound K).
func (s *ScenarioSource) Ring() int { return s.ring }

// Clone returns an independent replica of the source positioned at day
// zero; its simulation is rebuilt from seed on first use. Sweep shards
// clone so each folds its own ring.
func (s *ScenarioSource) Clone() DocSource {
	return &ScenarioSource{cfg: s.cfg, ring: s.ring}
}

// rebuild re-derives the simulation from seed and empties the ring.
func (s *ScenarioSource) rebuild() error {
	_, sim, hook, err := newScenarioRun(s.cfg)
	if err != nil {
		return err
	}
	s.sim, s.hook = sim, hook
	s.buf = s.buf[:0]
	s.base = 0
	return nil
}

// At returns document i, stepping the simulation forward as needed and
// recycling the oldest ring slot once the ring is full. Asking for a
// document older than the ring replays from seed.
func (s *ScenarioSource) At(i int) (*consensus.Document, error) {
	if i < 0 || i >= s.cfg.Days {
		return nil, fmt.Errorf("tracking: scenario source day %d out of [0,%d)", i, s.cfg.Days)
	}
	if s.sim == nil || i < s.base {
		if err := s.rebuild(); err != nil {
			return nil, err
		}
	}
	for s.base+len(s.buf) <= i {
		doc, err := s.sim.StepDay(s.hook)
		if err != nil {
			return nil, err
		}
		if len(s.buf) < s.ring {
			s.buf = append(s.buf, doc)
		} else {
			copy(s.buf, s.buf[1:])
			s.buf[len(s.buf)-1] = doc
			s.base++
		}
	}
	return s.buf[i-s.base], nil
}
