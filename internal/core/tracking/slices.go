package tracking

import (
	"context"
	"fmt"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/onion"
)

// MineFingerprint models the key mining a real tracker performs: it
// returns a fingerprint positioned slot × (expected ring gap / ratio)
// after the descriptor ID, so the relay adopting it becomes (one of) the
// first fingerprints following the ID on a ring of ringSize members, at a
// distance that yields approximately the given avg_dist/distance ratio.
//
// In reality this costs ~2^40 RSA key generations per position; the
// simulation installs the result directly (see
// relay.AdoptMinedFingerprint and DESIGN.md's substitution table).
func MineFingerprint(descID onion.DescriptorID, ringSize uint64, targetRatio float64, slot uint64) onion.Fingerprint {
	if ringSize == 0 {
		ringSize = 1
	}
	if targetRatio < 1 {
		targetRatio = 1
	}
	if slot == 0 {
		slot = 1
	}
	delta := onion.MaxRingAvgGap(ringSize).DivScalar(uint64(targetRatio)).MulScalar(slot)
	return onion.RingIntFromDescriptorID(descID).Add(delta).Fingerprint()
}

// AnalyzeSlices splits [from, to] into n equal windows and analyses each
// independently — the paper analyses its three-year Silk Road window
// year by year, because the HSDir count (and hence the binomial μ+3σ
// threshold) changes over time.
func (a *Analyzer) AnalyzeSlices(
	ctx context.Context,
	h *consensus.History,
	target onion.PermanentID,
	from, to time.Time,
	n int,
) ([]*Report, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tracking: slice count %d must be positive", n)
	}
	if to.Before(from) {
		return nil, fmt.Errorf("tracking: window end before start")
	}
	total := to.Sub(from)
	out := make([]*Report, 0, n)
	for i := 0; i < n; i++ {
		sliceFrom := from.Add(time.Duration(int64(total) * int64(i) / int64(n)))
		sliceTo := from.Add(time.Duration(int64(total)*int64(i+1)/int64(n)) - time.Nanosecond)
		if i == n-1 {
			sliceTo = to
		}
		rep, err := a.Analyze(ctx, h, target, sliceFrom, sliceTo)
		if err != nil {
			return nil, fmt.Errorf("tracking: slice %d: %w", i, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
