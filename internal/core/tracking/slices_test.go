package tracking

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"torhs/internal/hsdir"
	"torhs/internal/onion"
)

func TestMineFingerprintLandsFirstOnRing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Build a realistic ring and verify a mined fingerprint becomes the
	// first responsible relay for the descriptor ID.
	fps := make([]onion.Fingerprint, 1400)
	for i := range fps {
		fps[i] = onion.RandomFingerprint(rng)
	}
	var descID onion.DescriptorID
	f := onion.RandomFingerprint(rng)
	copy(descID[:], f[:])

	mined := MineFingerprint(descID, 1400, 10000, 1)
	ring := hsdir.NewRing(append(fps, mined))
	resp := ring.Responsible(descID, 3)
	if resp[0] != mined {
		t.Fatal("mined fingerprint is not the first responsible relay")
	}
	// And the measured ratio is near the target.
	ratio := onion.RingRatio(ring.AverageGap(), onion.Distance(descID, mined))
	if ratio < 2000 || ratio > 50000 {
		t.Fatalf("measured ratio = %.0f, want order of 10k", ratio)
	}
}

func TestMineFingerprintSlotsOrdered(t *testing.T) {
	var descID onion.DescriptorID
	descID[0] = 0x42
	m1 := MineFingerprint(descID, 1000, 1000, 1)
	m2 := MineFingerprint(descID, 1000, 1000, 2)
	m3 := MineFingerprint(descID, 1000, 1000, 3)
	if !m1.Less(m2) || !m2.Less(m3) {
		t.Fatal("slots not ordered on the ring")
	}
	// All must follow the descriptor ID.
	var asFP onion.Fingerprint
	copy(asFP[:], descID[:])
	if !asFP.Less(m1) {
		t.Fatal("slot 1 does not follow the descriptor ID")
	}
}

func TestMineFingerprintDegenerateInputs(t *testing.T) {
	var descID onion.DescriptorID
	// Zero ring size, sub-1 ratio and zero slot must not panic and must
	// still return a following fingerprint.
	m := MineFingerprint(descID, 0, 0.1, 0)
	var asFP onion.Fingerprint
	copy(asFP[:], descID[:])
	if !asFP.Less(m) && asFP != m {
		t.Fatal("degenerate mining went backwards")
	}
}

func TestAnalyzeSlicesValidation(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(30))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	end := sc.Start.Add(119 * 24 * time.Hour)
	if _, err := an.AnalyzeSlices(context.Background(), sc.History, sc.Target, sc.Start, end, 0); err == nil {
		t.Fatal("zero slices accepted")
	}
	if _, err := an.AnalyzeSlices(context.Background(), sc.History, sc.Target, end, sc.Start, 2); err == nil {
		t.Fatal("inverted window accepted")
	}
}

func TestAnalyzeSlicesCoverWholeWindowDisjointly(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(31))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	end := sc.Start.Add(119 * 24 * time.Hour)
	reports, err := an.AnalyzeSlices(context.Background(), sc.History, sc.Target, sc.Start, end, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	totalDays := 0
	for i, rep := range reports {
		totalDays += rep.Days
		if i > 0 && !reports[i-1].To.Before(rep.From) {
			t.Fatal("slices overlap")
		}
	}
	if totalDays != 120 {
		t.Fatalf("slices cover %d days, want 120", totalDays)
	}
	// The takeover episode must appear in the last slice only.
	for i, rep := range reports {
		full := false
		for _, ep := range rep.Episodes {
			if ep.FullTakeover {
				full = true
			}
		}
		if i == 2 && !full {
			t.Fatal("takeover missing from final slice")
		}
		if i != 2 && full {
			t.Fatalf("takeover leaked into slice %d", i)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(33))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), sc.History, sc.Target, sc.Start, sc.Start.Add(120*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Count(out, "\n")
	if lines != len(rep.Relays)+1 {
		t.Fatalf("csv has %d lines, want %d", lines, len(rep.Relays)+1)
	}
	if !strings.HasPrefix(out, "relay_id,") {
		t.Fatal("csv header missing")
	}
	if !strings.Contains(out, "tracknet") {
		t.Fatal("csv missing tracker rows")
	}
}

func TestSliceThresholdsTrackRingGrowth(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	end := sc.Start.Add(119 * 24 * time.Hour)
	reports, err := an.AnalyzeSlices(context.Background(), sc.History, sc.Target, sc.Start, end, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The network grows, so the mean ring size grows per slice and the
	// per-relay selection probability shrinks.
	if !(reports[0].MeanHSDirs < reports[2].MeanHSDirs) {
		t.Fatalf("ring growth not visible: %.0f .. %.0f",
			reports[0].MeanHSDirs, reports[2].MeanHSDirs)
	}
}
