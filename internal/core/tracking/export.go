package tracking

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV exports the per-relay analysis as CSV, one row per relay that
// was ever responsible for the target, for inspection in external tools.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"relay_id", "nicknames", "ips", "fingerprints",
		"times_responsible", "threshold", "max_ratio", "max_consecutive",
		"switches", "switches_into_position", "fresh_flag_responsible",
		"suspicious", "reasons",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("tracking: csv header: %w", err)
	}
	for _, rel := range r.Relays {
		row := []string{
			strconv.FormatInt(int64(rel.RelayID), 10),
			strings.Join(rel.Nicknames, ";"),
			strings.Join(rel.IPs, ";"),
			strconv.Itoa(rel.Fingerprints),
			strconv.Itoa(rel.TimesResponsible),
			strconv.FormatFloat(rel.Threshold, 'f', 3, 64),
			strconv.FormatFloat(rel.MaxRatio, 'f', 1, 64),
			strconv.Itoa(rel.MaxConsecutive),
			strconv.Itoa(rel.Switches),
			strconv.Itoa(rel.SwitchesIntoPosition),
			strconv.Itoa(rel.FreshFlagResponsible),
			strconv.FormatBool(rel.Suspicious),
			strings.Join(rel.Reasons, ";"),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("tracking: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
