package tracking

import "torhs/internal/relay"

// Metrics quantifies detector performance against scenario ground truth.
type Metrics struct {
	// TruePositives / FalseNegatives partition the planted trackers.
	TruePositives  int
	FalseNegatives int
	// FalsePositives counts honest relays flagged suspicious.
	FalsePositives int
	// HonestRelays is the number of non-planted relays in the report.
	HonestRelays int
	// MissedRelayIDs lists planted trackers the detector did not flag.
	MissedRelayIDs []relay.ID
}

// Precision returns TP / (TP + FP); 0 when nothing was flagged.
func (m Metrics) Precision() float64 {
	flagged := m.TruePositives + m.FalsePositives
	if flagged == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(flagged)
}

// Recall returns TP / (TP + FN); 0 when nothing was planted.
func (m Metrics) Recall() float64 {
	planted := m.TruePositives + m.FalseNegatives
	if planted == 0 {
		return 0
	}
	return float64(m.TruePositives) / float64(planted)
}

// FalsePositiveRate returns FP over the honest population.
func (m Metrics) FalsePositiveRate() float64 {
	if m.HonestRelays == 0 {
		return 0
	}
	return float64(m.FalsePositives) / float64(m.HonestRelays)
}

// EvaluateDetection scores a report against the scenario's planted
// trackers. Only trackers that appear in the report's window count as
// ground truth (a tracker outside the analysed slice cannot be found).
func EvaluateDetection(sc *Scenario, rep *Report) Metrics {
	planted := make(map[relay.ID]bool)
	for _, ids := range [][]relay.ID{sc.OwnRelayIDs, sc.BandRelayIDs, sc.TakeoverRelayIDs} {
		for _, id := range ids {
			planted[id] = true
		}
	}
	flagged := make(map[relay.ID]bool, len(rep.Suspicious))
	for _, idx := range rep.Suspicious {
		flagged[rep.Relays[idx].RelayID] = true
	}

	var m Metrics
	for _, r := range rep.Relays {
		switch {
		case planted[r.RelayID] && flagged[r.RelayID]:
			m.TruePositives++
		case planted[r.RelayID]:
			m.FalseNegatives++
			m.MissedRelayIDs = append(m.MissedRelayIDs, r.RelayID)
		case flagged[r.RelayID]:
			m.FalsePositives++
			m.HonestRelays++
		default:
			m.HonestRelays++
		}
	}
	return m
}
