package tracking

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"torhs/internal/fault"
	"torhs/internal/resultstore"
)

func ckptScenario(t *testing.T) (*Scenario, *Analyzer, time.Time, time.Time) {
	t.Helper()
	sc, err := BuildScenario(DefaultScenarioConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	an, err := NewAnalyzer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	from := sc.Start
	return sc, an, from, from.Add(120 * 24 * time.Hour)
}

func trackingCkptSet(t *testing.T) *resultstore.CheckpointSet {
	t.Helper()
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Checkpoints(resultstore.Key{
		Experiment:  "ckpt-tracking",
		Scenario:    "test",
		Params:      "seed=50",
		CodeVersion: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ctxSet adapts the raw store CheckpointSet to the ctx-aware tracking
// Checkpointer, the way the experiments layer's retry wrapper does in
// production; the storage API itself stays context-free.
type ctxSet struct{ set *resultstore.CheckpointSet }

func (c ctxSet) Save(_ context.Context, w int, s any) error         { return c.set.Save(w, s) }
func (c ctxSet) Latest(_ context.Context, s any) (int, bool, error) { return c.set.Latest(s) }

func TestTrackingCheckpointedMatchesPlain(t *testing.T) {
	sc, an, from, to := ckptScenario(t)
	ref, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
	if err != nil {
		t.Fatal(err)
	}
	set := trackingCkptSet(t)
	got, err := an.AnalyzeCheckpointed(context.Background(), sc.History, sc.Target, from, to, ctxSet{set}, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("checkpointed analysis diverged from plain Analyze")
	}
}

func TestTrackingCrashResumeByteIdentical(t *testing.T) {
	sc, an, from, to := ckptScenario(t)
	ref, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
	if err != nil {
		t.Fatal(err)
	}
	set := trackingCkptSet(t)

	// "Process one": crash entering window 60, snapshots every 7 docs.
	in := fault.New(1)
	if err := in.Set(fault.SiteTrackingWindow, fault.Rule{Mode: fault.ModeCrash, At: 60}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	func() {
		defer func() {
			if _, ok := recover().(fault.CrashPoint); !ok {
				t.Fatal("analysis did not crash at the window site")
			}
		}()
		an.AnalyzeCheckpointed(context.Background(), sc.History, sc.Target, from, to, ctxSet{set}, 7, false)
	}()
	fault.Install(prev)

	// "Process two": resume; the report must match bit for bit.
	got, err := an.AnalyzeCheckpointed(context.Background(), sc.History, sc.Target, from, to, ctxSet{set}, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("resumed analysis diverged from uninterrupted run")
	}
}

func TestTrackingWindowFaultIsTransient(t *testing.T) {
	sc, an, from, to := ckptScenario(t)
	in := fault.New(1)
	if err := in.Set(fault.SiteTrackingWindow, fault.Rule{Mode: fault.ModeErr, At: 5}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	t.Cleanup(func() { fault.Install(prev) })
	_, err := an.Analyze(context.Background(), sc.History, sc.Target, from, to)
	if err == nil {
		t.Fatal("analysis under an armed window fault succeeded")
	}
	if !errors.Is(err, fault.Transient) {
		t.Fatalf("window fault lost its transient classification: %v", err)
	}
}
