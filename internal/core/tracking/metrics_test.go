package tracking

import (
	"context"
	"testing"
	"time"
)

func analyzeWith(t *testing.T, sc *Scenario, cfg Config) *Report {
	t.Helper()
	an, err := NewAnalyzer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := an.Analyze(context.Background(), sc.History, sc.Target, sc.Start, sc.Start.Add(200*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEvaluateDetectionFullConfig(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	rep := analyzeWith(t, sc, DefaultConfig())
	m := EvaluateDetection(sc, rep)

	if m.Recall() < 0.95 {
		t.Fatalf("recall = %.2f (missed %v), want ~1.0", m.Recall(), m.MissedRelayIDs)
	}
	if m.Precision() < 0.8 {
		t.Fatalf("precision = %.2f, want >= 0.8", m.Precision())
	}
	if m.FalsePositiveRate() > 0.02 {
		t.Fatalf("false positive rate = %.3f, want <= 0.02", m.FalsePositiveRate())
	}
}

// The ablation backing the paper's claim that fingerprint changes
// combined with ring distance are "the most reliable way to detect
// tracking": with both positional rules neutralised, the detector loses
// the trackers while the full configuration finds them.
func TestDetectionAblationPositionalRules(t *testing.T) {
	sc, err := BuildScenario(DefaultScenarioConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	full := EvaluateDetection(sc, analyzeWith(t, sc, DefaultConfig()))

	blunted := DefaultConfig()
	blunted.RatioSuspicious = 1e17
	blunted.RatioStrong = 1e18
	blunted.SwitchLead = time.Nanosecond // switch-into-position never fires
	blunted.MinSwitches = 1000
	blunted.FreshFlagWindow = time.Nanosecond
	weak := EvaluateDetection(sc, analyzeWith(t, sc, blunted))

	if weak.Recall() >= full.Recall() {
		t.Fatalf("ablated recall %.2f not below full recall %.2f",
			weak.Recall(), full.Recall())
	}
	if full.Recall() < 0.95 {
		t.Fatalf("full-config recall = %.2f", full.Recall())
	}
	// Without positional evidence, almost all trackers are missed (the
	// binomial rule alone flags nothing at these visit counts).
	if weak.Recall() > 0.3 {
		t.Fatalf("ablated recall = %.2f, want near zero", weak.Recall())
	}
}

func TestMetricsArithmetic(t *testing.T) {
	m := Metrics{TruePositives: 8, FalseNegatives: 2, FalsePositives: 4, HonestRelays: 100}
	if m.Recall() != 0.8 {
		t.Fatalf("recall = %v", m.Recall())
	}
	if got := m.Precision(); got < 0.66 || got > 0.67 {
		t.Fatalf("precision = %v", got)
	}
	if m.FalsePositiveRate() != 0.04 {
		t.Fatalf("fpr = %v", m.FalsePositiveRate())
	}
	var empty Metrics
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.FalsePositiveRate() != 0 {
		t.Fatal("empty metrics not zero")
	}
}
