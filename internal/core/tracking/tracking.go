// Package tracking implements the paper's Section VII: statistical
// analysis of consensus history to detect entities that positioned
// themselves as a hidden service's responsible directories. Five rules
// are applied, exactly as the paper describes:
//
//  1. A relay responsible for the target far more often than chance
//     (binomial μ+3σ outlier rule with p = 6/N_hsdir).
//  2. A relay that changed its fingerprint shortly before becoming
//     responsible.
//  3. A suspiciously small descriptor-ID-to-fingerprint ring distance
//     (the avg_dist/distance ratio; >100 suspicious, >10,000 strong).
//  4. A high number of fingerprint switches in a short period.
//  5. A relay responsible for many consecutive time periods, or becoming
//     responsible at the minimum possible uptime (25 h after appearing).
package tracking

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/fault"
	"torhs/internal/onion"
	"torhs/internal/parallel"
	"torhs/internal/relay"
	"torhs/internal/stats"
)

// Checkpointer persists per-window sweep snapshots so a killed analysis
// resumes from its last folded consensus document. The contract matches
// resultstore.CheckpointSet; the interface keeps tracking below the
// store in the import graph. The context is per call — implementations
// must not retain it — and the cancellation flush passes an
// uncancellable context so the final snapshot always lands.
type Checkpointer interface {
	Save(ctx context.Context, window int, state any) error
	Latest(ctx context.Context, state any) (window int, ok bool, err error)
}

// Config parameterises the detector; defaults follow the paper.
type Config struct {
	// SigmaK is the binomial outlier multiplier (3 in the paper).
	SigmaK float64
	// RatioSuspicious / RatioStrong are the distance-ratio thresholds
	// (the paper calls >100 "close" and singles out relays crossing
	// 10,000).
	RatioSuspicious float64
	RatioStrong     float64
	// FreshFlagWindow flags relays that become responsible with uptime
	// in [25h, 25h+window) — the minimum achievable.
	FreshFlagWindow time.Duration
	// SwitchLead is how soon after a fingerprint switch a responsibility
	// must follow to count as "switched into position".
	SwitchLead time.Duration
	// MinSwitches is the switch count considered unusual (rule 4).
	MinSwitches int
	// HSDirUptime is the flag threshold (for rule 5's minimum-uptime
	// check).
	HSDirUptime time.Duration
	// Workers shards the consensus sweep across goroutines (<= 0 means
	// one per CPU). Shards sweep contiguous document ranges and merge in
	// shard order, so the report is identical at every worker count.
	// Checkpointed or resumed analyses always sweep sequentially:
	// snapshots are per-document left folds.
	Workers int
}

// DefaultConfig returns the paper's thresholds.
func DefaultConfig() Config {
	return Config{
		SigmaK:          3,
		RatioSuspicious: 100,
		RatioStrong:     10000,
		FreshFlagWindow: 24 * time.Hour,
		SwitchLead:      72 * time.Hour,
		MinSwitches:     2,
		HSDirUptime:     25 * time.Hour,
	}
}

// Occurrence is one (day, relay) responsibility observation.
type Occurrence struct {
	At          time.Time
	Fingerprint onion.Fingerprint
	Replica     int
	// Ratio is avg_dist/distance for this occurrence.
	Ratio float64
	// Uptime is the relay's consensus-reported uptime that day.
	Uptime time.Duration
}

// RelayReport aggregates one relay identity's behaviour toward the
// target.
type RelayReport struct {
	RelayID      relay.ID
	Nicknames    []string
	IPs          []string
	Fingerprints int
	Occurrences  []Occurrence

	// TimesResponsible counts distinct days the relay was responsible.
	TimesResponsible int
	// Threshold is the μ+kσ suspicion bound for this window.
	Threshold float64
	// MaxRatio is the largest distance ratio observed.
	MaxRatio float64
	// MaxConsecutive is the longest run of consecutive responsible days.
	MaxConsecutive int
	// Switches counts fingerprint changes within the window.
	Switches int
	// SwitchesIntoPosition counts switches followed by responsibility
	// within SwitchLead.
	SwitchesIntoPosition int
	// FreshFlagResponsible counts days the relay was responsible at the
	// minimum possible uptime.
	FreshFlagResponsible int

	Suspicious bool
	Reasons    []string
}

// Episode is a cluster of suspicious relays that acted together — the
// paper groups trackers by shared nickname parts and IP addresses.
type Episode struct {
	// Label is the shared nickname stem (or IP set).
	Label string
	// RelayIDs lists the members.
	RelayIDs []relay.ID
	// From / To bound the episode's responsibility observations.
	From, To time.Time
	// FullTakeover marks an episode whose members held all six
	// responsible slots on at least one day.
	FullTakeover bool
}

// Report is the full analysis outcome.
type Report struct {
	From, To time.Time
	// Days is the number of consensuses analysed.
	Days int
	// MeanHSDirs is the average HSDir-ring size across the window.
	MeanHSDirs float64
	// Relays reports every relay that was ever responsible, most
	// frequent first.
	Relays []RelayReport
	// Suspicious lists indexes into Relays.
	Suspicious []int
	// Episodes clusters suspicious relays.
	Episodes []Episode
}

// Analyzer applies the Section VII rules.
type Analyzer struct {
	cfg Config

	// secrets optionally shares precomputed rend-spec secret-id-parts
	// for the target's per-day descriptor-ID derivations (set via
	// SetSecretTable; the experiments Env passes its shared table).
	// Derivations outside the table fall back to direct computation.
	secrets *onion.SecretIDTable
}

// SetSecretTable shares a precomputed secret-id-part table with the
// analyzer, so the per-consensus descriptor-ID derivations reuse secrets
// other pipeline stages already computed. A nil table reverts to direct
// derivation.
func (a *Analyzer) SetSecretTable(t *onion.SecretIDTable) { a.secrets = t }

// NewAnalyzer validates the configuration.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if cfg.SigmaK <= 0 {
		return nil, fmt.Errorf("tracking: sigma multiplier %v must be positive", cfg.SigmaK)
	}
	if cfg.RatioSuspicious <= 1 || cfg.RatioStrong < cfg.RatioSuspicious {
		return nil, fmt.Errorf("tracking: ratio thresholds %v/%v invalid",
			cfg.RatioSuspicious, cfg.RatioStrong)
	}
	if cfg.MinSwitches <= 0 {
		return nil, fmt.Errorf("tracking: min switches %d must be positive", cfg.MinSwitches)
	}
	return &Analyzer{cfg: cfg}, nil
}

// relayState accumulates per-relay evidence during the sweep. The layout
// is tuned for the common honest relay — one fingerprint, one nickname,
// one IP — which needs no per-relay heap allocations at all: firsts are
// stored inline, overflow slices stay nil, and responsibility statistics
// (distinct days, longest consecutive run) are tracked online because
// documents arrive in ValidAfter order.
type relayState struct {
	report RelayReport

	seen   bool
	lastFP onion.Fingerprint
	// fps is allocated on the first fingerprint switch and seeded with
	// the pre-switch fingerprint; while nil the distinct set is {lastFP}.
	fps        []onion.Fingerprint
	nick0, ip0 string
	extraNicks []string
	extraIPs   []string
	switchAts  []time.Time

	// Boundary fields for the sharded sweep's merge: what this state saw
	// *first* in its document range, so the merge can stitch the seam
	// against the preceding shard's *last* observations (fingerprint
	// switches hiding at the boundary, responsible-day runs crossing it).
	// mergeRelayState only ever reads them from a pristine single-shard
	// state, never from an already-merged one.
	firstFP      onion.Fingerprint
	firstSeenAt  time.Time
	firstRespDay int64 // unix day of the first responsibility, noRespDay if none
	initRun      int   // length of the first consecutive responsible-day run

	lastRespDay    int64 // unix day of the latest responsibility, noRespDay if none
	curRun, maxRun int   // consecutive responsible days
	respCount      int   // distinct responsible days

	occCount, occOff, occFilled int // global occurrence-list bookkeeping
}

// stateTable maps relay IDs to their accumulating state. Simulation IDs
// are small and dense, so the common path is a direct slice index (a map
// keeps sparse or negative IDs working); states are arena-allocated in
// fixed blocks so a sweep over thousands of relay identities costs a
// handful of heap allocations rather than one per relay.
type stateTable struct {
	dense  []*relayState
	sparse map[relay.ID]*relayState
	arena  []relayState
	used   int
	all    []*relayState // creation order
}

// denseIDLimit bounds the ID range backed by the dense slice.
const denseIDLimit = 1 << 20

// noRespDay is the never-responsible sentinel for lastRespDay; math.MinInt64
// cannot collide with any real unix day (including negative pre-epoch ones).
const noRespDay = math.MinInt64

func (t *stateTable) get(id relay.ID) *relayState {
	if id >= 0 && id < denseIDLimit {
		if int(id) < len(t.dense) {
			if st := t.dense[id]; st != nil {
				return st
			}
		} else {
			size := 2 * len(t.dense)
			if size < 1024 {
				size = 1024
			}
			for size <= int(id) {
				size *= 2
			}
			grown := make([]*relayState, size)
			copy(grown, t.dense)
			t.dense = grown
		}
		st := t.alloc(id)
		t.dense[id] = st
		return st
	}
	if st := t.sparse[id]; st != nil {
		return st
	}
	if t.sparse == nil {
		t.sparse = make(map[relay.ID]*relayState)
	}
	st := t.alloc(id)
	t.sparse[id] = st
	return st
}

func (t *stateTable) alloc(id relay.ID) *relayState {
	const block = 256
	if t.used == len(t.arena) {
		t.arena = make([]relayState, block) // previous block stays alive via dense/sparse/all
		t.used = 0
	}
	st := &t.arena[t.used]
	t.used++
	st.report.RelayID = id
	st.lastRespDay = noRespDay
	st.firstRespDay = noRespDay
	t.all = append(t.all, st)
	return st
}

// markResponsible folds one responsibility observation into the online
// day statistics. Days arrive in nondecreasing order (documents are
// swept in ValidAfter order), so distinct-day and consecutive-run counts
// need no per-relay day set.
func (st *relayState) markResponsible(day int64) {
	if day == st.lastRespDay {
		return
	}
	cont := day == st.lastRespDay+1
	if cont {
		st.curRun++
	} else {
		st.curRun = 1
	}
	if st.curRun > st.maxRun {
		st.maxRun = st.curRun
	}
	// Track the first run for the shard merge: it keeps pace with
	// respCount exactly until the first gap, then freezes.
	if st.respCount == 0 {
		st.firstRespDay = day
		st.initRun = 1
	} else if cont && st.initRun == st.respCount {
		st.initRun++
	}
	st.lastRespDay = day
	st.respCount++
}

// appendFPAbsent appends fp unless already present (the slice stays tiny:
// one entry per distinct fingerprint a single relay identity ever used).
func appendFPAbsent(s []onion.Fingerprint, fp onion.Fingerprint) []onion.Fingerprint {
	for _, have := range s {
		if have == fp {
			return s
		}
	}
	return append(s, fp)
}

func appendStrAbsent(s []string, v string) []string {
	for _, have := range s {
		if have == v {
			return s
		}
	}
	return append(s, v)
}

// sortedWithFirst merges the inline first value with the overflow set and
// sorts, reproducing the sorted-distinct-set semantics of the reports.
func sortedWithFirst(first string, extra []string) []string {
	out := make([]string, 0, 1+len(extra))
	out = append(out, first)
	out = append(out, extra...)
	sort.Strings(out)
	return out
}

// Analyze sweeps the history window [from, to] and scores every relay
// that was ever responsible for the target.
func (a *Analyzer) Analyze(ctx context.Context, h *consensus.History, target onion.PermanentID, from, to time.Time) (*Report, error) {
	return a.AnalyzeCheckpointed(ctx, h, target, from, to, nil, 0, false)
}

// DocSource hands out the consensus documents of one analysis window in
// ascending ValidAfter order. It is the seam between the sweep (a pure
// left fold, document at a time) and where the documents come from: a
// materialized History slice, or a streaming source that re-derives
// windows from seed through a bounded sliding ring (ScenarioSource).
// Sequential access is O(1) for every implementation; rewinding a
// streaming source replays from seed.
//
// Sources that must not be shared across sweep shards implement
// Clone() DocSource; each shard then folds its own replica.
type DocSource interface {
	// Len returns the number of documents in the window.
	Len() int
	// At returns document i. Consumers must not retain the returned
	// document past their fold of it — a streaming source recycles ring
	// slots as the window advances (the torhsvet windowring analyzer
	// audits consumers for retained doc pointers).
	At(i int) (*consensus.Document, error)
}

// sliceSource adapts a materialized document slice to DocSource.
type sliceSource struct {
	// docs is the fully materialized window, shared read-only by shards.
	//
	//torhs:retained the materialized (non-streaming) window itself
	docs []*consensus.Document
}

func (s *sliceSource) Len() int { return len(s.docs) }

func (s *sliceSource) At(i int) (*consensus.Document, error) { return s.docs[i], nil }

// AnalyzeCheckpointed is Analyze with window-level crash safety: when
// ckpt is non-nil the sweep state is snapshotted every `every` consensus
// documents (<= 0 means every document), and with resume set the sweep
// folds forward from the latest valid snapshot instead of document
// zero. The report is byte-identical to an uninterrupted Analyze: the
// sweep is a pure left fold over documents in ValidAfter order, and the
// wrap-up sorts by a total order, so restored accumulator state is
// indistinguishable from locally-computed state.
//
// The document is the cancellation unit: ctx is observed before every
// fold. A cancelled checkpointed sweep flushes a snapshot of its folded
// prefix before returning ctx.Err(), so a deliberate stop loses no
// completed documents and a resume is byte-identical to an
// uninterrupted analysis. (The cancellation loop itself lives in
// AnalyzeSource, this wrapper's delegate.)
func (a *Analyzer) AnalyzeCheckpointed(
	ctx context.Context,
	h *consensus.History,
	target onion.PermanentID,
	from, to time.Time,
	ckpt Checkpointer,
	every int,
	resume bool,
) (*Report, error) {
	docs := h.Range(from, to)
	if len(docs) == 0 {
		return nil, fmt.Errorf("tracking: no consensus documents in [%v, %v]", from, to)
	}
	return a.AnalyzeSource(ctx, &sliceSource{docs: docs}, target, ckpt, every, resume)
}

// AnalyzeSource is the sweep over an arbitrary DocSource: the streaming
// entry point. The report is byte-identical to Analyze over a
// materialized history yielding the same document sequence, at every
// worker count, and the checkpoint/resume and cancellation contracts of
// AnalyzeCheckpointed hold unchanged — the source only changes where
// documents come from, never what is folded.
//
//torhs:cancelpoint
func (a *Analyzer) AnalyzeSource(
	ctx context.Context,
	src DocSource,
	target onion.PermanentID,
	ckpt Checkpointer,
	every int,
	resume bool,
) (*Report, error) {
	n := src.Len()
	if n == 0 {
		return nil, fmt.Errorf("tracking: empty document source")
	}

	// Without a checkpointer the sweep is free to shard: contiguous
	// document ranges fold in parallel and merge in shard order, which
	// reproduces the sequential left fold exactly (verified against the
	// sequential path by the determinism tests). Checkpointed analyses
	// stay sequential — their snapshots are per-document prefixes.
	if ckpt == nil {
		if shards := parallel.NumChunks(a.cfg.Workers, n); shards > 1 {
			sw, err := a.sweepSharded(ctx, src, target, shards)
			if err != nil {
				return nil, err
			}
			return a.report(sw, n), nil
		}
	}

	sw := sweep{
		a: a,
		// Scratch buffer reused across every (document, replica) pair:
		// the responsible set is consumed before the next
		// ResponsibleInto call.
		respBuf: make([]onion.Fingerprint, 0, onion.SpreadPerReplica),
	}
	start := 0
	if resume && ckpt != nil {
		var snap sweepSnapshot
		w, ok, err := ckpt.Latest(ctx, &snap)
		if err != nil {
			return nil, fmt.Errorf("tracking: resume: %w", err)
		}
		if ok {
			if snap.Docs != w+1 || snap.Docs >= n {
				return nil, fmt.Errorf("tracking: resume: snapshot covers %d documents under window %d (have %d)",
					snap.Docs, w, n)
			}
			sw.restore(&snap)
			start = snap.Docs
		}
	}
	if every <= 0 {
		every = 1
	}
	// lastSaved is the newest document index already snapshotted (the
	// restored prefix on resume, nothing otherwise); the cancellation
	// flush only writes when the fold advanced past it.
	lastSaved := start - 1
	for i := start; i < n; i++ {
		if cerr := ctx.Err(); cerr != nil {
			if ckpt != nil && i-1 > lastSaved {
				// The run is already cancelled; the flush must still
				// land, so it keeps ctx's values but not its cancel.
				if err := ckpt.Save(context.WithoutCancel(ctx), i-1, sw.snapshot(i)); err != nil {
					return nil, fmt.Errorf("tracking: window %d: cancel flush: %w", i-1, err)
				}
			}
			return nil, cerr
		}
		// The document boundary is the tracking fault site: everything
		// before it is snapshotted (or cheap to refold).
		if err := fault.Hit(fault.SiteTrackingWindow); err != nil {
			return nil, fmt.Errorf("tracking: window %d: %w", i, err)
		}
		doc, err := src.At(i)
		if err != nil {
			return nil, fmt.Errorf("tracking: window %d: source: %w", i, err)
		}
		sw.observeDoc(doc, target)
		// Snapshot after the document folds; the final document is not
		// snapshotted — the report follows immediately and the caller
		// clears the set on success.
		if ckpt != nil && i < n-1 && (i+1)%every == 0 {
			if err := ckpt.Save(ctx, i, sw.snapshot(i+1)); err != nil {
				return nil, fmt.Errorf("tracking: window %d: checkpoint: %w", i, err)
			}
			lastSaved = i
		}
	}
	return a.report(&sw, n), nil
}

// sweepSharded folds the source through per-shard private sweeps over
// contiguous document ranges and merges them in shard order. A source
// implementing Clone() DocSource gives each shard its own replica (a
// streaming source replays its range from seed); other sources are
// shared read-only. The fault site still fires once per document, and
// every shard observes ctx at its document boundaries; when several
// shards trip either, the error of the lowest document index wins — the
// one the sequential sweep would have hit first (cancellation surfaces
// as ctx.Err() whichever shard noticed it, so the report is
// deterministic).
func (a *Analyzer) sweepSharded(ctx context.Context, src DocSource, target onion.PermanentID, shards int) (*sweep, error) {
	sweeps := make([]sweep, shards)
	type shardFail struct {
		doc int
		err error
	}
	fails := make([]shardFail, shards)
	cloner, _ := src.(interface{ Clone() DocSource })
	parallel.Chunks(shards, src.Len(), func(shard, lo, hi int) {
		shardSrc := src
		if cloner != nil {
			shardSrc = cloner.Clone()
		}
		sw := &sweeps[shard]
		sw.a = a
		sw.respBuf = make([]onion.Fingerprint, 0, onion.SpreadPerReplica)
		for i := lo; i < hi; i++ {
			if cerr := ctx.Err(); cerr != nil {
				fails[shard] = shardFail{doc: i, err: cerr}
				return
			}
			if err := fault.Hit(fault.SiteTrackingWindow); err != nil {
				fails[shard] = shardFail{doc: i, err: fmt.Errorf("tracking: window %d: %w", i, err)}
				return
			}
			doc, err := shardSrc.At(i)
			if err != nil {
				fails[shard] = shardFail{doc: i, err: fmt.Errorf("tracking: window %d: source: %w", i, err)}
				return
			}
			sw.observeDoc(doc, target)
		}
	})
	failDoc, failErr := -1, error(nil)
	for s := range fails {
		if fails[s].err != nil && (failDoc < 0 || fails[s].doc < failDoc) {
			failDoc, failErr = fails[s].doc, fails[s].err
		}
	}
	if failErr != nil {
		return nil, failErr
	}
	return mergeSweeps(sweeps), nil
}

// report runs the wrap-up over a finished sweep of n documents:
// thresholds, per-relay occurrence carving, rule judging, ordering,
// episode clustering. The window bounds come from the sweep's own
// first/last ValidAfter observations, captured during the fold — a
// streaming source's documents are already gone by wrap-up time.
func (a *Analyzer) report(sw *sweep, n int) *Report {
	states, totalHSDirs, occs, occStates := &sw.states, sw.totalHSDirs, sw.occs, sw.occStates

	meanHSDirs := float64(totalHSDirs) / float64(n)
	binom := stats.Binomial{
		N: n,
		P: float64(onion.Replicas*onion.SpreadPerReplica) / meanHSDirs,
	}
	threshold := binom.OutlierThreshold(a.cfg.SigmaK)

	rep := &Report{
		From:       sw.firstVA,
		To:         sw.lastVA,
		Days:       n,
		MeanHSDirs: meanHSDirs,
	}

	// Carve the per-relay occurrence slices out of one backing array, in
	// chronological order (the global list already is).
	backing := make([]Occurrence, len(occs))
	cum := 0
	for _, st := range states.all {
		st.occOff = cum
		cum += st.occCount
	}
	for i, st := range occStates {
		backing[st.occOff+st.occFilled] = occs[i]
		st.occFilled++
	}

	for _, st := range states.all {
		if st.occCount == 0 {
			continue
		}
		r := &st.report
		r.Occurrences = backing[st.occOff : st.occOff+st.occCount]
		r.Nicknames = sortedWithFirst(st.nick0, st.extraNicks)
		r.IPs = sortedWithFirst(st.ip0, st.extraIPs)
		if st.fps != nil {
			r.Fingerprints = len(st.fps)
		} else if st.seen {
			r.Fingerprints = 1
		}
		r.TimesResponsible = st.respCount
		r.Threshold = threshold
		r.MaxConsecutive = st.maxRun
		r.SwitchesIntoPosition = countSwitchesIntoPosition(st.switchAts, r.Occurrences, a.cfg.SwitchLead)

		a.judge(r)
		rep.Relays = append(rep.Relays, *r)
	}

	sort.Slice(rep.Relays, func(i, j int) bool {
		if rep.Relays[i].TimesResponsible != rep.Relays[j].TimesResponsible {
			return rep.Relays[i].TimesResponsible > rep.Relays[j].TimesResponsible
		}
		return rep.Relays[i].RelayID < rep.Relays[j].RelayID
	})
	for i := range rep.Relays {
		if rep.Relays[i].Suspicious {
			rep.Suspicious = append(rep.Suspicious, i)
		}
	}
	rep.Episodes = a.clusterEpisodes(rep)
	return rep
}

// mergeSweeps folds the per-shard partial sweeps into sweeps[0], in
// shard index order. Document shards are contiguous ascending ranges, so
// shard order is chronological order: relay states merging in src
// creation order reproduces the sequential sweep's first-appearance
// order, and the global occurrence list concatenates chronologically
// with owner pointers remapped into the merged table.
//
//torhs:shardmerge sweeps
//torhs:hotpath
func mergeSweeps(sweeps []sweep) *sweep {
	dst := &sweeps[0]
	for i := 1; i < len(sweeps); i++ {
		src := &sweeps[i]
		dst.totalHSDirs += src.totalHSDirs
		if dst.firstVA.IsZero() {
			dst.firstVA = src.firstVA
		}
		if !src.lastVA.IsZero() {
			dst.lastVA = src.lastVA
		}
		for _, sst := range src.states.all {
			mergeRelayState(dst.states.get(sst.report.RelayID), sst)
		}
		dst.occs = append(dst.occs, src.occs...)
		for _, sst := range src.occStates {
			dst.occStates = append(dst.occStates, dst.states.get(sst.report.RelayID))
		}
	}
	return dst
}

// mergeRelayState folds src — one relay's state over the *next*
// contiguous document range — into dst, the same relay's state over
// everything before it. All cross-range continuity is resolved here:
// a fingerprint switch hiding at the seam (src first saw the relay under
// a different fingerprint than dst last did), a responsible-day run
// crossing it, and the boundary day counted by both ranges when the seam
// falls inside one unix day. src must be a pristine single-range state:
// its first* boundary fields are only meaningful there.
func mergeRelayState(dst, src *relayState) {
	if !dst.seen {
		// The relay's first sighting was in src's range: adopt it
		// wholesale. Slice fields transfer ownership — shard sweeps are
		// discarded after the merge.
		id := dst.report.RelayID
		*dst = *src
		dst.report.RelayID = id
		return
	}

	dst.report.Switches += src.report.Switches
	dst.report.FreshFlagResponsible += src.report.FreshFlagResponsible
	if src.report.MaxRatio > dst.report.MaxRatio {
		dst.report.MaxRatio = src.report.MaxRatio
	}
	dst.occCount += src.occCount

	// Seam fingerprint switch, recorded at the document where src first
	// saw the relay — exactly where the sequential sweep records it.
	if src.firstFP != dst.lastFP {
		dst.report.Switches++
		dst.switchAts = append(dst.switchAts, src.firstSeenAt)
	}
	// Distinct fingerprint set: union, keeping the nil-means-{lastFP}
	// encoding while the union stays a single fingerprint.
	if dst.fps != nil || src.fps != nil || src.lastFP != dst.lastFP {
		if dst.fps == nil {
			dst.fps = append(make([]onion.Fingerprint, 0, 4), dst.lastFP)
		}
		if src.fps == nil {
			dst.fps = appendFPAbsent(dst.fps, src.lastFP)
		} else {
			for _, fp := range src.fps {
				dst.fps = appendFPAbsent(dst.fps, fp)
			}
		}
	}
	dst.switchAts = append(dst.switchAts, src.switchAts...)
	dst.lastFP = src.lastFP

	if src.nick0 != dst.nick0 {
		dst.extraNicks = appendStrAbsent(dst.extraNicks, src.nick0)
	}
	for _, v := range src.extraNicks {
		if v != dst.nick0 {
			dst.extraNicks = appendStrAbsent(dst.extraNicks, v)
		}
	}
	if src.ip0 != dst.ip0 {
		dst.extraIPs = appendStrAbsent(dst.extraIPs, src.ip0)
	}
	for _, v := range src.extraIPs {
		if v != dst.ip0 {
			dst.extraIPs = appendStrAbsent(dst.extraIPs, v)
		}
	}

	if src.respCount > 0 {
		if dst.respCount == 0 {
			dst.firstRespDay = src.firstRespDay
			dst.initRun = src.initRun
			dst.lastRespDay = src.lastRespDay
			dst.curRun = src.curRun
			dst.maxRun = src.maxRun
			dst.respCount = src.respCount
		} else {
			// Days are nondecreasing across the document order, so src's
			// first responsible day is >= dst's last. Two seams need
			// stitching: the same unix day observed by both ranges (the
			// sequential sweep counts it once), and a run continuing
			// straight across the boundary (bridged = its true length).
			bridged := 0
			switch src.firstRespDay {
			case dst.lastRespDay:
				dst.respCount += src.respCount - 1
				bridged = dst.curRun + src.initRun - 1
			case dst.lastRespDay + 1:
				dst.respCount += src.respCount
				bridged = dst.curRun + src.initRun
			default:
				dst.respCount += src.respCount
			}
			if src.maxRun > dst.maxRun {
				dst.maxRun = src.maxRun
			}
			if bridged > dst.maxRun {
				dst.maxRun = bridged
			}
			if bridged > 0 && src.initRun == src.respCount {
				// src was one unbroken run; the bridge extends it, so it
				// is still the current run.
				dst.curRun = bridged
			} else {
				dst.curRun = src.curRun
			}
			dst.lastRespDay = src.lastRespDay
		}
	}
}

// sweep is the accumulation state of one Analyze pass over a consensus
// range. Occurrences accumulate in one chronological global list (plus
// the owning state per entry) and are carved into per-relay slices at
// wrap-up, so the sweep never grows hundreds of tiny slices.
type sweep struct {
	a           *Analyzer
	states      stateTable
	totalHSDirs int
	occs        []Occurrence
	occStates   []*relayState
	respBuf     []onion.Fingerprint
	// firstVA / lastVA bound the folded documents' ValidAfter instants —
	// the report's From/To — captured during the fold so the wrap-up
	// never needs the (possibly already recycled) documents themselves.
	firstVA, lastVA time.Time
}

// sweepSnapshot is the serializable form of a sweep after Docs folded
// documents: relay states in creation order (occurrence owners become
// indexes into that order), plus the global occurrence list. The
// wrap-up-only fields (occOff, occFilled) are deliberately absent —
// they are recomputed from occCount when the report is carved.
type sweepSnapshot struct {
	Docs        int
	TotalHSDirs int
	// FirstVA / LastVA carry the folded prefix's window bounds.
	FirstVA, LastVA time.Time
	Occs            []Occurrence
	OccOwners       []int
	States          []relaySnap
}

// relaySnap serializes one relayState (gob needs exported fields).
type relaySnap struct {
	Report       RelayReport
	Seen         bool
	LastFP       onion.Fingerprint
	FPs          []onion.Fingerprint
	Nick0, IP0   string
	ExtraNicks   []string
	ExtraIPs     []string
	SwitchAts    []time.Time
	FirstFP      onion.Fingerprint
	FirstSeenAt  time.Time
	FirstRespDay int64
	InitRun      int
	LastRespDay  int64
	CurRun       int
	MaxRun       int
	RespCount    int
	OccCount     int
}

// snapshot captures the sweep after docs folded documents.
func (sw *sweep) snapshot(docs int) *sweepSnapshot {
	idx := make(map[*relayState]int, len(sw.states.all))
	states := make([]relaySnap, len(sw.states.all))
	for i, st := range sw.states.all {
		idx[st] = i
		states[i] = relaySnap{
			Report:       st.report,
			Seen:         st.seen,
			LastFP:       st.lastFP,
			FPs:          st.fps,
			Nick0:        st.nick0,
			IP0:          st.ip0,
			ExtraNicks:   st.extraNicks,
			ExtraIPs:     st.extraIPs,
			SwitchAts:    st.switchAts,
			FirstFP:      st.firstFP,
			FirstSeenAt:  st.firstSeenAt,
			FirstRespDay: st.firstRespDay,
			InitRun:      st.initRun,
			LastRespDay:  st.lastRespDay,
			CurRun:       st.curRun,
			MaxRun:       st.maxRun,
			RespCount:    st.respCount,
			OccCount:     st.occCount,
		}
	}
	owners := make([]int, len(sw.occStates))
	for i, st := range sw.occStates {
		owners[i] = idx[st]
	}
	return &sweepSnapshot{
		Docs:        docs,
		TotalHSDirs: sw.totalHSDirs,
		FirstVA:     sw.firstVA,
		LastVA:      sw.lastVA,
		Occs:        sw.occs,
		OccOwners:   owners,
		States:      states,
	}
}

// restore rebuilds the sweep from a snapshot. States are recreated in
// their original creation order, so the occurrence-owner indexes (and
// the wrap-up's creation-order walk) line up exactly.
func (sw *sweep) restore(snap *sweepSnapshot) {
	sw.totalHSDirs = snap.TotalHSDirs
	sw.firstVA = snap.FirstVA
	sw.lastVA = snap.LastVA
	for i := range snap.States {
		ss := &snap.States[i]
		st := sw.states.get(ss.Report.RelayID)
		st.report = ss.Report
		st.seen = ss.Seen
		st.lastFP = ss.LastFP
		st.fps = ss.FPs
		st.nick0 = ss.Nick0
		st.ip0 = ss.IP0
		st.extraNicks = ss.ExtraNicks
		st.extraIPs = ss.ExtraIPs
		st.switchAts = ss.SwitchAts
		st.firstFP = ss.FirstFP
		st.firstSeenAt = ss.FirstSeenAt
		st.firstRespDay = ss.FirstRespDay
		st.initRun = ss.InitRun
		st.lastRespDay = ss.LastRespDay
		st.curRun = ss.CurRun
		st.maxRun = ss.MaxRun
		st.respCount = ss.RespCount
		st.occCount = ss.OccCount
	}
	sw.occs = snap.Occs
	sw.occStates = make([]*relayState, len(snap.OccOwners))
	for i, n := range snap.OccOwners {
		sw.occStates[i] = sw.states.all[n]
	}
}

// observeDoc folds one consensus document into the sweep: fingerprint
// switches for every relay identity, and responsibility occurrences for
// the target's descriptor IDs. This is Analyze's per-document
// accumulator — the tracking pipeline's hot loop over a multi-month
// History — and stays allocation-free in steady state (everything grows
// amortized or reuses scratch).
//
//torhs:hotpath
func (sw *sweep) observeDoc(doc *consensus.Document, target onion.PermanentID) {
	// Window bounds are captured before the empty-HSDir early return:
	// every folded document widens the report's [From, To], whether or
	// not it contributed responsibilities.
	if sw.firstVA.IsZero() {
		sw.firstVA = doc.ValidAfter
	}
	sw.lastVA = doc.ValidAfter
	hsdirFPs := doc.HSDirs()
	if len(hsdirFPs) == 0 {
		return
	}
	sw.totalHSDirs += len(hsdirFPs)
	// The ring and average gap are cached on the document: repeated
	// analyses (and other pipelines) share one sorted ring per
	// consensus instead of rebuilding it per sweep.
	ring := doc.Ring()
	avgGap := doc.AverageGap()

	// Track fingerprint switches for every relay identity, whether
	// or not it was ever responsible: a tracker mines its key days
	// *before* the responsibility shows up.
	for i := range doc.Entries {
		e := &doc.Entries[i]
		st := sw.states.get(e.RelayID)
		if !st.seen {
			st.seen = true
			st.lastFP = e.Fingerprint
			st.firstFP = e.Fingerprint
			st.firstSeenAt = doc.ValidAfter
			st.nick0 = e.Nickname
			st.ip0 = e.IP
			continue
		}
		if e.Fingerprint != st.lastFP {
			if st.fps == nil {
				//torhs:ignore hotalloc cold path: runs once per relay, on its first observed fingerprint switch
				st.fps = append(make([]onion.Fingerprint, 0, 4), st.lastFP)
			}
			st.fps = appendFPAbsent(st.fps, e.Fingerprint)
			st.report.Switches++
			st.switchAts = append(st.switchAts, doc.ValidAfter)
			st.lastFP = e.Fingerprint
		}
		if e.Nickname != st.nick0 {
			st.extraNicks = appendStrAbsent(st.extraNicks, e.Nickname)
		}
		if e.IP != st.ip0 {
			st.extraIPs = appendStrAbsent(st.extraIPs, e.IP)
		}
	}

	day := doc.ValidAfter.Unix() / 86400
	var ids [onion.Replicas]onion.DescriptorID
	if sw.a.secrets != nil {
		ids = sw.a.secrets.DescriptorIDsAt(target, doc.ValidAfter)
	} else {
		ids = onion.DescriptorIDs(target, doc.ValidAfter)
	}
	for replica, descID := range ids {
		sw.respBuf = ring.ResponsibleInto(sw.respBuf[:0], descID, onion.SpreadPerReplica)
		for _, fp := range sw.respBuf {
			entry, ok := doc.Lookup(fp)
			if !ok {
				continue
			}
			st := sw.states.get(entry.RelayID)
			ratio := onion.RingRatio(avgGap, onion.Distance(descID, fp))
			sw.occs = append(sw.occs, Occurrence{
				At:          doc.ValidAfter,
				Fingerprint: fp,
				Replica:     replica,
				Ratio:       ratio,
				Uptime:      entry.Uptime,
			})
			sw.occStates = append(sw.occStates, st)
			st.occCount++
			if ratio > st.report.MaxRatio {
				st.report.MaxRatio = ratio
			}
			if entry.Uptime >= sw.a.cfg.HSDirUptime &&
				entry.Uptime < sw.a.cfg.HSDirUptime+sw.a.cfg.FreshFlagWindow {
				st.report.FreshFlagResponsible++
			}
			st.markResponsible(day)
		}
	}
}

// judge applies the five rules and records the reasons.
func (a *Analyzer) judge(r *RelayReport) {
	if float64(r.TimesResponsible) > r.Threshold {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("responsible %d times, above mu+%.0fsigma=%.2f",
				r.TimesResponsible, a.cfg.SigmaK, r.Threshold))
	}
	if r.SwitchesIntoPosition > 0 {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("%d fingerprint switch(es) shortly before becoming responsible",
				r.SwitchesIntoPosition))
	}
	switch {
	case r.MaxRatio > a.cfg.RatioStrong:
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("distance ratio %.0f above strong threshold %.0f",
				r.MaxRatio, a.cfg.RatioStrong))
	case r.MaxRatio > a.cfg.RatioSuspicious:
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("distance ratio %.0f above threshold %.0f",
				r.MaxRatio, a.cfg.RatioSuspicious))
	}
	if r.Switches >= a.cfg.MinSwitches {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("%d fingerprint switches in window", r.Switches))
	}
	if r.FreshFlagResponsible > 0 {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("responsible at minimum uptime %d time(s)", r.FreshFlagResponsible))
	}
	if r.MaxConsecutive >= 5 {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("responsible %d consecutive time periods", r.MaxConsecutive))
	}

	// A single weak signal is not enough: the paper requires either a
	// strong positional signal (ratio, switch-into-position) or repeated
	// anomalies.
	strong := r.MaxRatio > a.cfg.RatioSuspicious || r.SwitchesIntoPosition > 0
	repeated := len(r.Reasons) >= 2
	r.Suspicious = (strong || repeated) && len(r.Reasons) > 0
}

func countSwitchesIntoPosition(switches []time.Time, occs []Occurrence, lead time.Duration) int {
	count := 0
	for _, sw := range switches {
		for _, o := range occs {
			d := o.At.Sub(sw)
			if d >= 0 && d <= lead {
				count++
				break
			}
		}
	}
	return count
}

// nicknameStem strips trailing digits and separators, so "tracknet03"
// and "tracknet11" share the stem "tracknet".
func nicknameStem(n string) string {
	return strings.TrimRight(n, "0123456789-_")
}

// clusterEpisodes groups suspicious relays by shared nickname stem. The
// episode's time bounds come from *positionally suspicious* occurrences
// (ratio above the threshold): any relay is occasionally responsible by
// pure chance, and those chance days must not stretch the episode.
func (a *Analyzer) clusterEpisodes(rep *Report) []Episode {
	groups := make(map[string][]int)
	for _, idx := range rep.Suspicious {
		r := rep.Relays[idx]
		stem := ""
		if len(r.Nicknames) > 0 {
			stem = nicknameStem(r.Nicknames[0])
		}
		groups[stem] = append(groups[stem], idx)
	}
	var episodes []Episode
	for stem, members := range groups {
		ep := Episode{Label: stem}
		perDaySlots := make(map[int64]int)
		deliberate := 0
		for _, idx := range members {
			r := rep.Relays[idx]
			ep.RelayIDs = append(ep.RelayIDs, r.RelayID)
			for _, o := range r.Occurrences {
				if o.Ratio <= a.cfg.RatioSuspicious {
					continue
				}
				deliberate++
				if ep.From.IsZero() || o.At.Before(ep.From) {
					ep.From = o.At
				}
				if o.At.After(ep.To) {
					ep.To = o.At
				}
				perDaySlots[o.At.Unix()/86400]++
			}
		}
		if deliberate == 0 {
			// No positional evidence; fall back to all occurrences.
			for _, idx := range members {
				for _, o := range rep.Relays[idx].Occurrences {
					if ep.From.IsZero() || o.At.Before(ep.From) {
						ep.From = o.At
					}
					if o.At.After(ep.To) {
						ep.To = o.At
					}
				}
			}
		}
		for _, slots := range perDaySlots {
			if slots >= onion.Replicas*onion.SpreadPerReplica {
				ep.FullTakeover = true
				break
			}
		}
		sort.Slice(ep.RelayIDs, func(i, j int) bool { return ep.RelayIDs[i] < ep.RelayIDs[j] })
		episodes = append(episodes, ep)
	}
	sort.Slice(episodes, func(i, j int) bool {
		if !episodes[i].From.Equal(episodes[j].From) {
			return episodes[i].From.Before(episodes[j].From)
		}
		return episodes[i].Label < episodes[j].Label
	})
	return episodes
}
