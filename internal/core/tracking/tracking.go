// Package tracking implements the paper's Section VII: statistical
// analysis of consensus history to detect entities that positioned
// themselves as a hidden service's responsible directories. Five rules
// are applied, exactly as the paper describes:
//
//  1. A relay responsible for the target far more often than chance
//     (binomial μ+3σ outlier rule with p = 6/N_hsdir).
//  2. A relay that changed its fingerprint shortly before becoming
//     responsible.
//  3. A suspiciously small descriptor-ID-to-fingerprint ring distance
//     (the avg_dist/distance ratio; >100 suspicious, >10,000 strong).
//  4. A high number of fingerprint switches in a short period.
//  5. A relay responsible for many consecutive time periods, or becoming
//     responsible at the minimum possible uptime (25 h after appearing).
package tracking

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/hsdir"
	"torhs/internal/onion"
	"torhs/internal/relay"
	"torhs/internal/stats"
)

// Config parameterises the detector; defaults follow the paper.
type Config struct {
	// SigmaK is the binomial outlier multiplier (3 in the paper).
	SigmaK float64
	// RatioSuspicious / RatioStrong are the distance-ratio thresholds
	// (the paper calls >100 "close" and singles out relays crossing
	// 10,000).
	RatioSuspicious float64
	RatioStrong     float64
	// FreshFlagWindow flags relays that become responsible with uptime
	// in [25h, 25h+window) — the minimum achievable.
	FreshFlagWindow time.Duration
	// SwitchLead is how soon after a fingerprint switch a responsibility
	// must follow to count as "switched into position".
	SwitchLead time.Duration
	// MinSwitches is the switch count considered unusual (rule 4).
	MinSwitches int
	// HSDirUptime is the flag threshold (for rule 5's minimum-uptime
	// check).
	HSDirUptime time.Duration
}

// DefaultConfig returns the paper's thresholds.
func DefaultConfig() Config {
	return Config{
		SigmaK:          3,
		RatioSuspicious: 100,
		RatioStrong:     10000,
		FreshFlagWindow: 24 * time.Hour,
		SwitchLead:      72 * time.Hour,
		MinSwitches:     2,
		HSDirUptime:     25 * time.Hour,
	}
}

// Occurrence is one (day, relay) responsibility observation.
type Occurrence struct {
	At          time.Time
	Fingerprint onion.Fingerprint
	Replica     int
	// Ratio is avg_dist/distance for this occurrence.
	Ratio float64
	// Uptime is the relay's consensus-reported uptime that day.
	Uptime time.Duration
}

// RelayReport aggregates one relay identity's behaviour toward the
// target.
type RelayReport struct {
	RelayID      relay.ID
	Nicknames    []string
	IPs          []string
	Fingerprints int
	Occurrences  []Occurrence

	// TimesResponsible counts distinct days the relay was responsible.
	TimesResponsible int
	// Threshold is the μ+kσ suspicion bound for this window.
	Threshold float64
	// MaxRatio is the largest distance ratio observed.
	MaxRatio float64
	// MaxConsecutive is the longest run of consecutive responsible days.
	MaxConsecutive int
	// Switches counts fingerprint changes within the window.
	Switches int
	// SwitchesIntoPosition counts switches followed by responsibility
	// within SwitchLead.
	SwitchesIntoPosition int
	// FreshFlagResponsible counts days the relay was responsible at the
	// minimum possible uptime.
	FreshFlagResponsible int

	Suspicious bool
	Reasons    []string
}

// Episode is a cluster of suspicious relays that acted together — the
// paper groups trackers by shared nickname parts and IP addresses.
type Episode struct {
	// Label is the shared nickname stem (or IP set).
	Label string
	// RelayIDs lists the members.
	RelayIDs []relay.ID
	// From / To bound the episode's responsibility observations.
	From, To time.Time
	// FullTakeover marks an episode whose members held all six
	// responsible slots on at least one day.
	FullTakeover bool
}

// Report is the full analysis outcome.
type Report struct {
	From, To time.Time
	// Days is the number of consensuses analysed.
	Days int
	// MeanHSDirs is the average HSDir-ring size across the window.
	MeanHSDirs float64
	// Relays reports every relay that was ever responsible, most
	// frequent first.
	Relays []RelayReport
	// Suspicious lists indexes into Relays.
	Suspicious []int
	// Episodes clusters suspicious relays.
	Episodes []Episode
}

// Analyzer applies the Section VII rules.
type Analyzer struct {
	cfg Config
}

// NewAnalyzer validates the configuration.
func NewAnalyzer(cfg Config) (*Analyzer, error) {
	if cfg.SigmaK <= 0 {
		return nil, fmt.Errorf("tracking: sigma multiplier %v must be positive", cfg.SigmaK)
	}
	if cfg.RatioSuspicious <= 1 || cfg.RatioStrong < cfg.RatioSuspicious {
		return nil, fmt.Errorf("tracking: ratio thresholds %v/%v invalid",
			cfg.RatioSuspicious, cfg.RatioStrong)
	}
	if cfg.MinSwitches <= 0 {
		return nil, fmt.Errorf("tracking: min switches %d must be positive", cfg.MinSwitches)
	}
	return &Analyzer{cfg: cfg}, nil
}

// relayState accumulates per-relay evidence during the sweep.
type relayState struct {
	report    RelayReport
	lastFP    onion.Fingerprint
	seenFP    map[onion.Fingerprint]bool
	nickSet   map[string]bool
	ipSet     map[string]bool
	switchAts []time.Time
	respDays  map[int64]bool // unix day -> responsible
}

// Analyze sweeps the history window [from, to] and scores every relay
// that was ever responsible for the target.
func (a *Analyzer) Analyze(h *consensus.History, target onion.PermanentID, from, to time.Time) (*Report, error) {
	docs := h.Range(from, to)
	if len(docs) == 0 {
		return nil, fmt.Errorf("tracking: no consensus documents in [%v, %v]", from, to)
	}

	states := make(map[relay.ID]*relayState)
	totalHSDirs := 0

	getState := func(id relay.ID) *relayState {
		st := states[id]
		if st == nil {
			st = &relayState{
				seenFP:   map[onion.Fingerprint]bool{},
				nickSet:  map[string]bool{},
				ipSet:    map[string]bool{},
				respDays: map[int64]bool{},
			}
			st.report.RelayID = id
			states[id] = st
		}
		return st
	}

	for _, doc := range docs {
		hsdirFPs := doc.HSDirs()
		if len(hsdirFPs) == 0 {
			continue
		}
		totalHSDirs += len(hsdirFPs)
		ring := hsdir.NewRing(hsdirFPs)
		avgGap := ring.AverageGap()

		// Track fingerprint switches for every relay identity, whether
		// or not it was ever responsible: a tracker mines its key days
		// *before* the responsibility shows up.
		for _, e := range doc.Entries {
			st := getState(e.RelayID)
			if st.lastFP != (onion.Fingerprint{}) && st.lastFP != e.Fingerprint {
				st.report.Switches++
				st.switchAts = append(st.switchAts, doc.ValidAfter)
			}
			st.lastFP = e.Fingerprint
			st.seenFP[e.Fingerprint] = true
			st.nickSet[e.Nickname] = true
			st.ipSet[e.IP] = true
		}

		ids := onion.DescriptorIDs(target, doc.ValidAfter)
		for replica, descID := range ids {
			for _, fp := range ring.Responsible(descID, onion.SpreadPerReplica) {
				entry, ok := doc.Lookup(fp)
				if !ok {
					continue
				}
				st := getState(entry.RelayID)
				ratio := onion.RingRatio(avgGap, onion.Distance(descID, fp))
				st.report.Occurrences = append(st.report.Occurrences, Occurrence{
					At:          doc.ValidAfter,
					Fingerprint: fp,
					Replica:     replica,
					Ratio:       ratio,
					Uptime:      entry.Uptime,
				})
				if ratio > st.report.MaxRatio {
					st.report.MaxRatio = ratio
				}
				if entry.Uptime >= a.cfg.HSDirUptime &&
					entry.Uptime < a.cfg.HSDirUptime+a.cfg.FreshFlagWindow {
					st.report.FreshFlagResponsible++
				}
				st.respDays[doc.ValidAfter.Unix()/86400] = true
			}
		}
	}

	n := len(docs)
	meanHSDirs := float64(totalHSDirs) / float64(n)
	binom := stats.Binomial{
		N: n,
		P: float64(onion.Replicas*onion.SpreadPerReplica) / meanHSDirs,
	}
	threshold := binom.OutlierThreshold(a.cfg.SigmaK)

	rep := &Report{
		From:       docs[0].ValidAfter,
		To:         docs[len(docs)-1].ValidAfter,
		Days:       n,
		MeanHSDirs: meanHSDirs,
	}

	for _, st := range states {
		if len(st.report.Occurrences) == 0 {
			continue
		}
		r := &st.report
		r.Nicknames = sortedKeys(st.nickSet)
		r.IPs = sortedKeys(st.ipSet)
		r.Fingerprints = len(st.seenFP)
		r.TimesResponsible = len(st.respDays)
		r.Threshold = threshold
		r.MaxConsecutive = maxConsecutiveDays(st.respDays)
		r.SwitchesIntoPosition = countSwitchesIntoPosition(st.switchAts, r.Occurrences, a.cfg.SwitchLead)

		a.judge(r)
		rep.Relays = append(rep.Relays, *r)
	}

	sort.Slice(rep.Relays, func(i, j int) bool {
		if rep.Relays[i].TimesResponsible != rep.Relays[j].TimesResponsible {
			return rep.Relays[i].TimesResponsible > rep.Relays[j].TimesResponsible
		}
		return rep.Relays[i].RelayID < rep.Relays[j].RelayID
	})
	for i := range rep.Relays {
		if rep.Relays[i].Suspicious {
			rep.Suspicious = append(rep.Suspicious, i)
		}
	}
	rep.Episodes = a.clusterEpisodes(rep)
	return rep, nil
}

// judge applies the five rules and records the reasons.
func (a *Analyzer) judge(r *RelayReport) {
	if float64(r.TimesResponsible) > r.Threshold {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("responsible %d times, above mu+%.0fsigma=%.2f",
				r.TimesResponsible, a.cfg.SigmaK, r.Threshold))
	}
	if r.SwitchesIntoPosition > 0 {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("%d fingerprint switch(es) shortly before becoming responsible",
				r.SwitchesIntoPosition))
	}
	switch {
	case r.MaxRatio > a.cfg.RatioStrong:
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("distance ratio %.0f above strong threshold %.0f",
				r.MaxRatio, a.cfg.RatioStrong))
	case r.MaxRatio > a.cfg.RatioSuspicious:
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("distance ratio %.0f above threshold %.0f",
				r.MaxRatio, a.cfg.RatioSuspicious))
	}
	if r.Switches >= a.cfg.MinSwitches {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("%d fingerprint switches in window", r.Switches))
	}
	if r.FreshFlagResponsible > 0 {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("responsible at minimum uptime %d time(s)", r.FreshFlagResponsible))
	}
	if r.MaxConsecutive >= 5 {
		r.Reasons = append(r.Reasons,
			fmt.Sprintf("responsible %d consecutive time periods", r.MaxConsecutive))
	}

	// A single weak signal is not enough: the paper requires either a
	// strong positional signal (ratio, switch-into-position) or repeated
	// anomalies.
	strong := r.MaxRatio > a.cfg.RatioSuspicious || r.SwitchesIntoPosition > 0
	repeated := len(r.Reasons) >= 2
	r.Suspicious = (strong || repeated) && len(r.Reasons) > 0
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func maxConsecutiveDays(days map[int64]bool) int {
	if len(days) == 0 {
		return 0
	}
	keys := make([]int64, 0, len(days))
	for d := range days {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	best, run := 1, 1
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1]+1 {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
		}
	}
	return best
}

func countSwitchesIntoPosition(switches []time.Time, occs []Occurrence, lead time.Duration) int {
	count := 0
	for _, sw := range switches {
		for _, o := range occs {
			d := o.At.Sub(sw)
			if d >= 0 && d <= lead {
				count++
				break
			}
		}
	}
	return count
}

// nicknameStem strips trailing digits and separators, so "tracknet03"
// and "tracknet11" share the stem "tracknet".
func nicknameStem(n string) string {
	return strings.TrimRight(n, "0123456789-_")
}

// clusterEpisodes groups suspicious relays by shared nickname stem. The
// episode's time bounds come from *positionally suspicious* occurrences
// (ratio above the threshold): any relay is occasionally responsible by
// pure chance, and those chance days must not stretch the episode.
func (a *Analyzer) clusterEpisodes(rep *Report) []Episode {
	groups := make(map[string][]int)
	for _, idx := range rep.Suspicious {
		r := rep.Relays[idx]
		stem := ""
		if len(r.Nicknames) > 0 {
			stem = nicknameStem(r.Nicknames[0])
		}
		groups[stem] = append(groups[stem], idx)
	}
	var episodes []Episode
	for stem, members := range groups {
		ep := Episode{Label: stem}
		perDaySlots := make(map[int64]int)
		deliberate := 0
		for _, idx := range members {
			r := rep.Relays[idx]
			ep.RelayIDs = append(ep.RelayIDs, r.RelayID)
			for _, o := range r.Occurrences {
				if o.Ratio <= a.cfg.RatioSuspicious {
					continue
				}
				deliberate++
				if ep.From.IsZero() || o.At.Before(ep.From) {
					ep.From = o.At
				}
				if o.At.After(ep.To) {
					ep.To = o.At
				}
				perDaySlots[o.At.Unix()/86400]++
			}
		}
		if deliberate == 0 {
			// No positional evidence; fall back to all occurrences.
			for _, idx := range members {
				for _, o := range rep.Relays[idx].Occurrences {
					if ep.From.IsZero() || o.At.Before(ep.From) {
						ep.From = o.At
					}
					if o.At.After(ep.To) {
						ep.To = o.At
					}
				}
			}
		}
		for _, slots := range perDaySlots {
			if slots >= onion.Replicas*onion.SpreadPerReplica {
				ep.FullTakeover = true
				break
			}
		}
		sort.Slice(ep.RelayIDs, func(i, j int) bool { return ep.RelayIDs[i] < ep.RelayIDs[j] })
		episodes = append(episodes, ep)
	}
	sort.Slice(episodes, func(i, j int) bool {
		if !episodes[i].From.Equal(episodes[j].From) {
			return episodes[i].From.Before(episodes[j].From)
		}
		return episodes[i].Label < episodes[j].Label
	})
	return episodes
}
