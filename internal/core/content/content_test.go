package content

import (
	"context"
	"testing"

	"torhs/internal/core/scan"
	"torhs/internal/corpus"
	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
)

func runPipeline(t *testing.T, seed int64) (*Crawler, *Result) {
	t.Helper()
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)

	sc, err := scan.New(fabric, scan.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]onion.Address, 0, pop.Len())
	for _, s := range pop.Services {
		addrs = append(addrs, s.Address)
	}
	scanRes := sc.ScanAll(addrs)

	cr, err := New(fabric, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dests := DestinationsFromPorts(scanRes.PerAddress)
	res, err := cr.Crawl(dests)
	if err != nil {
		t.Fatal(err)
	}
	return cr, res
}

func TestNewValidation(t *testing.T) {
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MinWords = 0
	if _, err := New(darknet.New(pop), cfg); err == nil {
		t.Fatal("min words 0 accepted")
	}
}

func TestDestinationsExcludeSkynetPort(t *testing.T) {
	per := map[onion.Address][]int{
		"aaaaaaaaaaaaaaaa": {80, 55080},
		"bbbbbbbbbbbbbbbb": {55080},
		"cccccccccccccccc": {443, 80},
	}
	dests := DestinationsFromPorts(per)
	if len(dests) != 3 {
		t.Fatalf("destinations = %d, want 3", len(dests))
	}
	for _, d := range dests {
		if d.Port == 55080 {
			t.Fatal("55080 destination included")
		}
	}
	// Sorted: address "a..." port 80, then "c..." 80 before 443.
	if dests[0].Addr != "aaaaaaaaaaaaaaaa" || dests[1].Port != 80 || dests[2].Port != 443 {
		t.Fatalf("ordering wrong: %+v", dests)
	}
}

func TestCrawlFunnelShape(t *testing.T) {
	_, res := runPipeline(t, 2)

	// Funnel: attempted > open >= connected > classified.
	if !(res.Attempted > res.OpenAtCrawl) {
		t.Fatalf("no churn: attempted %d, open %d", res.Attempted, res.OpenAtCrawl)
	}
	if !(res.OpenAtCrawl >= res.Connected) {
		t.Fatal("connected exceeds open")
	}
	if !(res.Connected > res.Classified) {
		t.Fatal("no exclusions applied")
	}
	// Conservation: connected = classified + exclusions.
	if res.Connected != res.Classified+res.ExcludedShort+res.ExcludedDup443+res.ExcludedError {
		t.Fatalf("funnel leaks: connected=%d classified=%d short=%d dup=%d err=%d",
			res.Connected, res.Classified, res.ExcludedShort, res.ExcludedDup443, res.ExcludedError)
	}
	if res.ExcludedSSHBanners == 0 || res.ExcludedSSHBanners > res.ExcludedShort {
		t.Fatalf("SSH banners = %d of short %d", res.ExcludedSSHBanners, res.ExcludedShort)
	}
	if res.ExcludedDup443 == 0 {
		t.Fatal("no 443 duplicates found")
	}
	if res.ExcludedError == 0 {
		t.Fatal("no error pages found")
	}
}

func TestTableIShape(t *testing.T) {
	_, res := runPipeline(t, 3)
	rows := res.TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I rows = %d, want 5", len(rows))
	}
	if rows[0].Label != "80" || rows[1].Label != "443" || rows[2].Label != "22" ||
		rows[3].Label != "8080" || rows[4].Label != "Other" {
		t.Fatalf("Table I labels wrong: %+v", rows)
	}
	// Paper ordering: port 80 > 443 >= 22 > 8080.
	if !(rows[0].Count > rows[1].Count) {
		t.Fatalf("port 80 (%d) not above 443 (%d)", rows[0].Count, rows[1].Count)
	}
	if !(rows[1].Count >= rows[2].Count) {
		t.Fatalf("port 443 (%d) below 22 (%d)", rows[1].Count, rows[2].Count)
	}
	sum := 0
	for _, r := range rows {
		sum += r.Count
	}
	if sum != res.Connected {
		t.Fatalf("Table I sums to %d, want %d", sum, res.Connected)
	}
}

func TestLanguageMixEnglishDominant(t *testing.T) {
	_, res := runPipeline(t, 4)
	if res.EnglishTotal != res.LanguageCounts[corpus.LangEnglish] {
		t.Fatal("EnglishTotal inconsistent")
	}
	frac := float64(res.EnglishTotal) / float64(res.Classified)
	if frac < 0.75 || frac > 0.95 {
		t.Fatalf("English fraction = %.2f, want ~0.84", frac)
	}
	if len(res.LanguageCounts) < 5 {
		t.Fatalf("only %d languages detected, want multilingual mix", len(res.LanguageCounts))
	}
}

func TestTorhostDefaultDetected(t *testing.T) {
	_, res := runPipeline(t, 5)
	if res.TorhostDefault == 0 {
		t.Fatal("no TorHost default pages detected")
	}
	classifiedEnglish := 0
	for _, n := range res.TopicCounts {
		classifiedEnglish += n
	}
	if res.TorhostDefault+classifiedEnglish != res.EnglishTotal {
		t.Fatalf("English accounting: default %d + topics %d != english %d",
			res.TorhostDefault, classifiedEnglish, res.EnglishTotal)
	}
}

func TestTopicDistributionShape(t *testing.T) {
	_, res := runPipeline(t, 6)
	pct := res.TopicPercentages()
	sum := 0
	for _, v := range pct {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("topic percentages sum to %d", sum)
	}
	// The paper's dominant categories must dominate here too.
	if pct[corpus.TopicAdult] < pct[corpus.TopicSports] {
		t.Fatal("Adult not above Sports")
	}
	if pct[corpus.TopicDrugs] < pct[corpus.TopicGames] {
		t.Fatal("Drugs not above Games")
	}
	// Adult+Drugs+Counterfeit+Weapons ≈ 44% in the paper; allow slack.
	illegal := pct[corpus.TopicAdult] + pct[corpus.TopicDrugs] +
		pct[corpus.TopicCounterfeit] + pct[corpus.TopicWeapons]
	if illegal < 30 || illegal > 60 {
		t.Fatalf("Adult+Drugs+Counterfeit+Weapons = %d%%, want ~44%%", illegal)
	}
}

func TestStripHTML(t *testing.T) {
	in := "<html><body><h1>Title</h1><p>hello world</p></body></html>"
	out := StripHTML(in)
	for _, want := range []string{"Title", "hello", "world"} {
		if !containsWord(out, want) {
			t.Fatalf("StripHTML lost %q: %q", want, out)
		}
	}
	if containsWord(out, "html") || containsWord(out, "body") {
		t.Fatalf("StripHTML kept tags: %q", out)
	}
}

func containsWord(s, w string) bool {
	for _, f := range splitFields(s) {
		if f == w {
			return true
		}
	}
	return false
}

func splitFields(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' || r == '\n' || r == '\t' {
			if cur != "" {
				out = append(out, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func TestIsErrorPage(t *testing.T) {
	if !IsErrorPage("<html><body><h1>404 Not Found</h1></body></html>") {
		t.Fatal("404 page not detected")
	}
	if IsErrorPage("<html><body><p>all about 404 recovery tutorials</p></body></html>") {
		t.Fatal("false positive on page mentioning 404")
	}
}
