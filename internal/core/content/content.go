// Package content implements the paper's Section IV: crawling the
// HTTP(S) destinations found by the port scan (two months later, so churn
// applies), filtering out short pages, SSH banners, 443 duplicates and
// error pages, detecting languages, and classifying English pages into
// the 18 topic categories of Fig. 2.
package content

import (
	"fmt"
	"sort"
	"strings"

	"torhs/internal/corpus"
	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/parallel"
	"torhs/internal/stats"
	"torhs/internal/textclass"
)

// Destination is one onion:port crawl target.
type Destination struct {
	Addr onion.Address
	Port int
}

// Config parameterises the crawler.
type Config struct {
	// MinWords is the classification threshold; pages with fewer words
	// are excluded (20 in the paper).
	MinWords int
	// LangOrder is the language detector's n-gram order.
	LangOrder int
	// Workers shards the crawl across goroutines (<= 0: one per CPU).
	// Destinations for the same address always stay on one shard, so
	// duplicate-443 detection and the final tallies are identical at
	// every worker count.
	Workers int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config { return Config{MinWords: 20, LangOrder: 3} }

// Crawler drives the content analysis.
type Crawler struct {
	cfg    Config
	fabric *darknet.Fabric
	lang   *textclass.LanguageDetector
	topics *textclass.TopicClassifier
}

// New builds a crawler, training both classifiers.
func New(fabric *darknet.Fabric, cfg Config) (*Crawler, error) {
	if cfg.MinWords <= 0 {
		return nil, fmt.Errorf("content: min words %d must be positive", cfg.MinWords)
	}
	lang, err := textclass.TrainLanguageDetector(cfg.LangOrder)
	if err != nil {
		return nil, fmt.Errorf("content: %w", err)
	}
	topics, err := textclass.TrainTopicClassifier()
	if err != nil {
		return nil, fmt.Errorf("content: %w", err)
	}
	return &Crawler{cfg: cfg, fabric: fabric, lang: lang, topics: topics}, nil
}

// Result aggregates a crawl — the data behind Table I and Fig. 2.
type Result struct {
	// Attempted destinations (8,153 in the paper: all scanned ports
	// except 55080).
	Attempted int
	// OpenAtCrawl destinations still answered (7,114 in the paper).
	OpenAtCrawl int
	// Connected destinations spoke HTTP(S) (6,579 in the paper).
	Connected int
	// ConnectedByPort is Table I: connected destinations per port.
	ConnectedByPort map[int]int

	// Exclusions, in the paper's order.
	ExcludedShort      int // <MinWords words (2,348)
	ExcludedSSHBanners int // subset of ExcludedShort from port 22 (1,092)
	ExcludedDup443     int // 443 copies of port-80 content (1,108)
	ExcludedError      int // error messages in HTML (73)

	// Classified destinations (3,050 in the paper).
	Classified int
	// LanguageCounts tallies detected languages over classified pages.
	LanguageCounts map[string]int
	// EnglishTotal is LanguageCounts["en"] (2,618 in the paper).
	EnglishTotal int
	// TorhostDefault counts English pages showing the TorHost default
	// (805 in the paper); they are excluded from topic classification.
	TorhostDefault int
	// TopicCounts tallies Fig. 2 categories over the remaining English
	// pages (1,813 in the paper).
	TopicCounts map[corpus.Topic]int
}

// DestinationsFromPorts converts a scan result's per-address port lists
// into crawl destinations, excluding the Skynet port as the paper did.
func DestinationsFromPorts(perAddress map[onion.Address][]int) []Destination {
	var out []Destination
	for addr, ports := range perAddress {
		for _, p := range ports {
			if p == hspop.PortSkynet {
				continue
			}
			out = append(out, Destination{Addr: addr, Port: p})
		}
	}
	// Deterministic order: by address, port 80 before 443 so duplicate
	// detection sees the port-80 body first.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// crawlSpan runs the Section IV pipeline over one contiguous span of the
// (address-sorted) destination list. The span must never split an
// address across shards: duplicate-443 detection needs the port-80 body
// fetched in the same span.
func (c *Crawler) crawlSpan(dests []Destination, res *Result) {
	torhostBody := darknet.TorhostDefaultBody()

	// Bodies of port-80 fetches per address, for duplicate detection.
	port80Body := make(map[onion.Address]string)

	for _, d := range dests {
		probe := c.fabric.Probe(d.Addr, d.Port, darknet.PhaseCrawl)
		if probe != darknet.ProbeOpen && probe != darknet.ProbeAbnormal {
			continue
		}
		res.OpenAtCrawl++

		resp, err := c.fabric.Get(d.Addr, d.Port, darknet.PhaseCrawl)
		if err != nil {
			continue // does not speak HTTP
		}
		res.Connected++
		res.ConnectedByPort[d.Port]++

		body := resp.Body
		if d.Port == hspop.PortHTTP {
			port80Body[d.Addr] = body
		}

		text := StripHTML(body)
		words := len(strings.Fields(text))

		switch {
		case words < c.cfg.MinWords:
			res.ExcludedShort++
			if d.Port == hspop.PortSSH {
				res.ExcludedSSHBanners++
			}
			continue
		case d.Port == hspop.PortHTTPS && port80Body[d.Addr] == body:
			res.ExcludedDup443++
			continue
		case IsErrorPage(body):
			res.ExcludedError++
			continue
		}

		res.Classified++
		lang, _, err := c.lang.Detect(text)
		if err != nil {
			lang = corpus.LangEnglish
		}
		res.LanguageCounts[lang]++
		if lang != corpus.LangEnglish {
			continue
		}
		res.EnglishTotal++
		if body == torhostBody {
			res.TorhostDefault++
			continue
		}
		topic, _, err := c.topics.Classify(text)
		if err != nil {
			continue
		}
		res.TopicCounts[topic]++
	}
}

// newPartialResult allocates the map fields of a shard tally.
func newPartialResult() *Result {
	return &Result{
		ConnectedByPort: make(map[int]int),
		LanguageCounts:  make(map[string]int),
		TopicCounts:     make(map[corpus.Topic]int),
	}
}

// merge folds a shard tally into r. All fields are sums or map folds, so
// the merged result is independent of shard boundaries and scheduling.
func (r *Result) merge(o *Result) {
	r.OpenAtCrawl += o.OpenAtCrawl
	r.Connected += o.Connected
	r.ExcludedShort += o.ExcludedShort
	r.ExcludedSSHBanners += o.ExcludedSSHBanners
	r.ExcludedDup443 += o.ExcludedDup443
	r.ExcludedError += o.ExcludedError
	r.Classified += o.Classified
	r.EnglishTotal += o.EnglishTotal
	r.TorhostDefault += o.TorhostDefault
	for p, n := range o.ConnectedByPort {
		r.ConnectedByPort[p] += n
	}
	for l, n := range o.LanguageCounts {
		r.LanguageCounts[l] += n
	}
	for t, n := range o.TopicCounts {
		r.TopicCounts[t] += n
	}
}

// Crawl runs the full Section IV pipeline over the destinations, sharded
// across cfg.Workers goroutines. Destinations must be grouped by address
// (DestinationsFromPorts guarantees this); shard cuts are placed on
// address boundaries.
func (c *Crawler) Crawl(dests []Destination) (*Result, error) {
	res := newPartialResult()
	res.Attempted = len(dests)

	// Group boundaries: groups[g] is the start index of the g-th
	// address's run of destinations.
	groups := make([]int, 0, len(dests))
	for i := range dests {
		if i == 0 || dests[i].Addr != dests[i-1].Addr {
			groups = append(groups, i)
		}
	}

	partials := make([]*Result, parallel.NumChunks(c.cfg.Workers, len(groups)))
	parallel.Chunks(c.cfg.Workers, len(groups), func(shard, lo, hi int) {
		start := groups[lo]
		end := len(dests)
		if hi < len(groups) {
			end = groups[hi]
		}
		p := newPartialResult()
		c.crawlSpan(dests[start:end], p)
		partials[shard] = p
	})
	for _, p := range partials {
		res.merge(p)
	}
	return res, nil
}

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Label string
	Count int
}

// TableI renders the connected-destinations-per-port table as the paper
// prints it: ports 80, 443, 22, 8080 and an aggregated "Other".
func (r *Result) TableI() []TableIRow {
	named := []int{hspop.PortHTTP, hspop.PortHTTPS, hspop.PortSSH, hspop.PortAltHTTP}
	rows := make([]TableIRow, 0, len(named)+1)
	other := 0
	isNamed := map[int]bool{}
	for _, p := range named {
		isNamed[p] = true
		rows = append(rows, TableIRow{Label: fmt.Sprintf("%d", p), Count: r.ConnectedByPort[p]})
	}
	for p, n := range r.ConnectedByPort {
		if !isNamed[p] {
			other += n
		}
	}
	rows = append(rows, TableIRow{Label: "Other", Count: other})
	return rows
}

// TopicPercentages renders Fig. 2: integer percentages per category over
// the topic-classified English pages.
func (r *Result) TopicPercentages() map[corpus.Topic]int {
	counts := make(map[string]int, len(r.TopicCounts))
	for t, n := range r.TopicCounts {
		counts[t.String()] = n
	}
	byName := stats.Percentages(counts)
	out := make(map[corpus.Topic]int, len(byName))
	for _, t := range corpus.AllTopics() {
		if v, ok := byName[t.String()]; ok {
			out[t] = v
		}
	}
	return out
}

// StripHTML removes tags from an HTML body, leaving text content.
func StripHTML(body string) string {
	var sb strings.Builder
	sb.Grow(len(body))
	inTag := false
	for _, r := range body {
		switch {
		case r == '<':
			inTag = true
			sb.WriteByte(' ')
		case r == '>':
			inTag = false
		case !inTag:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// IsErrorPage detects an error message embedded in an HTML page.
func IsErrorPage(body string) bool {
	lower := strings.ToLower(body)
	for _, marker := range []string{
		"<h1>404 not found</h1>",
		"503 service temporarily unavailable",
		"<h1>500 internal server error</h1>",
		"<h1>403 forbidden</h1>",
	} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}
