package content

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"torhs/internal/core/scan"
	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
)

// TestCrawlIdenticalAcrossWorkerCounts asserts the sharded crawl tallies
// exactly what the sequential crawl does — including the duplicate-443
// exclusions, which require shard cuts on address boundaries.
func TestCrawlIdenticalAcrossWorkerCounts(t *testing.T) {
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	sc, err := scan.New(fabric, scan.DefaultConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]onion.Address, 0, pop.Len())
	for _, s := range pop.Services {
		addrs = append(addrs, s.Address)
	}
	dests := DestinationsFromPorts(sc.ScanAll(addrs).PerAddress)

	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	var base *Result
	for _, workers := range []int{1, 2, 3, 4, 8} {
		cfg := DefaultConfig()
		cfg.Workers = workers
		cr, err := New(fabric, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := cr.Crawl(dests)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("crawl result differs between workers=1 and workers=%d:\nbase: %+v\ngot:  %+v", workers, base, res)
		}
	}
	if base.Classified == 0 {
		t.Fatal("empty crawl")
	}
}
