package trawl

import (
	"context"
	"testing"
	"time"

	"torhs/internal/geo"
	"torhs/internal/hspop"
	"torhs/internal/relaynet"
)

func TestNewTrawlerValidation(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Config)
	}{
		{"zero IPs", func(c *Config) { c.IPs = 0 }},
		{"zero steps", func(c *Config) { c.Steps = 0 }},
		{"zero step length", func(c *Config) { c.StepLen = 0 }},
		{"short lead", func(c *Config) { c.DeployLead = 10 * time.Hour }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig(1)
			tc.mod(&cfg)
			if _, err := NewTrawler(cfg); err == nil {
				t.Fatal("bad config accepted")
			}
		})
	}
}

func TestRunWithoutDeployFails(t *testing.T) {
	tr, err := NewTrawler(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(context.Background(), nil, nil, nil, time.Now()); err == nil {
		t.Fatal("Run without Deploy succeeded")
	}
}

func setupTrawl(t *testing.T, seed int64, steps int, driveTraffic bool) (*Trawler, *relaynet.Sim, *hspop.Population, *geo.DB, time.Time) {
	t.Helper()
	fleet := relaynet.DefaultFleetConfig(seed)
	fleet.Days = 1
	fleet.InitialRelays = 300
	fleet.FinalRelays = 300
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(seed)
	cfg.IPs = 20
	cfg.Steps = steps
	cfg.DriveTraffic = driveTraffic
	cfg.ClientConfig.Clients = 300
	tr, err := NewTrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}

	popCfg := hspop.TestConfig(seed)
	popCfg.Scale = 0.02
	pop, err := hspop.Generate(context.Background(), popCfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	start := fleet.Start.Add(48 * time.Hour)
	tr.Deploy(sim, start)
	return tr, sim, pop, db, start
}

func TestTrawlCollectsMostAddresses(t *testing.T) {
	tr, sim, pop, db, start := setupTrawl(t, 2, 8, false)
	h, err := tr.Run(context.Background(), sim, pop, db, start)
	if err != nil {
		t.Fatal(err)
	}
	if h.CollectedFraction < 0.9 {
		t.Fatalf("collected fraction = %.2f, want >= 0.9 (paper collected ~the full ring)", h.CollectedFraction)
	}
	// Every collected address must belong to a descriptor-publishing
	// service.
	for addr := range h.Addresses {
		svc, ok := pop.ByAddress(addr)
		if !ok {
			t.Fatalf("harvested unknown address %s", addr)
		}
		if !svc.DescriptorAtScan {
			t.Fatalf("harvested address %s of non-publishing service", addr)
		}
		if h.PermIDs[addr] != svc.PermID {
			t.Fatal("harvest PermID mismatch")
		}
	}
}

func TestTrawlStepCoverageReflectsFleet(t *testing.T) {
	tr, sim, pop, db, start := setupTrawl(t, 3, 4, false)
	h, err := tr.Run(context.Background(), sim, pop, db, start)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.StepCoverage) != 4 {
		t.Fatalf("coverage entries = %d, want 4", len(h.StepCoverage))
	}
	for i, c := range h.StepCoverage {
		if c <= 0 || c >= 1 {
			t.Fatalf("step %d coverage = %v, want in (0,1)", i, c)
		}
	}
}

func TestTrawlGathersRequestLog(t *testing.T) {
	tr, sim, pop, db, start := setupTrawl(t, 4, 3, true)
	h, err := tr.Run(context.Background(), sim, pop, db, start)
	if err != nil {
		t.Fatal(err)
	}
	if h.Log.Total() == 0 {
		t.Fatal("no client requests logged")
	}
	if h.Log.UniqueIDs() == 0 {
		t.Fatal("no unique descriptor IDs logged")
	}
}

func TestTrawlPublishedVersusRequestedStatistic(t *testing.T) {
	tr, sim, pop, db, start := setupTrawl(t, 11, 4, true)
	h, err := tr.Run(context.Background(), sim, pop, db, start)
	if err != nil {
		t.Fatal(err)
	}
	if h.PublishedIDsSeen == 0 {
		t.Fatal("no published descriptor IDs recorded")
	}
	if h.RequestedPublishedIDs == 0 {
		t.Fatal("no requested published IDs recorded")
	}
	frac := h.RequestedPublishedFraction()
	// The paper observed ~10% of published descriptors ever requested;
	// the popularity tail is configured to reproduce that order.
	if frac <= 0 || frac > 0.5 {
		t.Fatalf("requested/published fraction = %.2f, want small (~0.1)", frac)
	}
}

func TestTrawlCoverageScalesWithFleetSize(t *testing.T) {
	trSmall, simSmall, popSmall, dbSmall, startSmall := setupTrawl(t, 12, 2, false)
	small, err := trSmall.Run(context.Background(), simSmall, popSmall, dbSmall, startSmall)
	if err != nil {
		t.Fatal(err)
	}

	// A one-IP fleet with a single step collects far less.
	fleet := relaynet.DefaultFleetConfig(12)
	fleet.Days = 1
	fleet.InitialRelays = 300
	fleet.FinalRelays = 300
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(12)
	cfg.IPs = 1
	cfg.Steps = 1
	cfg.DriveTraffic = false
	tiny, err := NewTrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	popCfg := hspop.TestConfig(12)
	popCfg.Scale = 0.02
	pop, err := hspop.Generate(context.Background(), popCfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	start := fleet.Start.Add(48 * time.Hour)
	tiny.Deploy(sim, start)
	tinyH, err := tiny.Run(context.Background(), sim, pop, db, start)
	if err != nil {
		t.Fatal(err)
	}
	if tinyH.CollectedFraction >= small.CollectedFraction {
		t.Fatalf("1-IP fleet collected %.2f, multi-IP fleet %.2f",
			tinyH.CollectedFraction, small.CollectedFraction)
	}
}

func TestRotationActivatesFreshPairs(t *testing.T) {
	tr, _, _, _, _ := setupTrawl(t, 5, 3, false)
	s0 := tr.ActiveFingerprints(0)
	s1 := tr.ActiveFingerprints(1)
	if len(s0) == 0 || len(s1) == 0 {
		t.Fatal("no active fingerprints")
	}
	seen := map[string]bool{}
	for _, f := range s0 {
		seen[f.Hex()] = true
	}
	for _, f := range s1 {
		if seen[f.Hex()] {
			t.Fatal("step 1 reuses step-0 fingerprints")
		}
	}
	for _, f := range s0 {
		var fp = f
		if !tr.Owns(fp) {
			t.Fatal("fleet fingerprint not owned")
		}
	}
}
