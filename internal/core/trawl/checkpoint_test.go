package trawl

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"torhs/internal/fault"
	"torhs/internal/geo"
	"torhs/internal/hspop"
	"torhs/internal/relaynet"
	"torhs/internal/resultstore"
)

// ckptRun builds a fresh sim/population/fleet from the same seed and
// runs the attack once — the moral equivalent of one process lifetime,
// so a "crashed" run and its resume each call ckptRun anew.
func ckptRun(t *testing.T, mutate func(*Config)) (*Harvest, error) {
	t.Helper()
	const seed = 5
	fleet := relaynet.DefaultFleetConfig(seed)
	fleet.Days = 1
	fleet.InitialRelays = 300
	fleet.FinalRelays = 300
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.IPs = 20
	cfg.Steps = 6
	cfg.ClientConfig.Clients = 300
	if mutate != nil {
		mutate(&cfg)
	}
	tr, err := NewTrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	popCfg := hspop.TestConfig(seed)
	popCfg.Scale = 0.02
	pop, err := hspop.Generate(context.Background(), popCfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	start := fleet.Start.Add(48 * time.Hour)
	tr.Deploy(sim, start)
	return tr.Run(context.Background(), sim, pop, db, start)
}

func testCkptSet(t *testing.T) *resultstore.CheckpointSet {
	t.Helper()
	s, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Checkpoints(resultstore.Key{
		Experiment:  "ckpt-trawl",
		Scenario:    "test",
		Params:      "seed=5",
		CodeVersion: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// ctxSet adapts the raw store CheckpointSet to the ctx-aware trawl
// Checkpointer, the way the experiments layer's retry wrapper does in
// production; the storage API itself stays context-free.
type ctxSet struct{ set *resultstore.CheckpointSet }

func (c ctxSet) Save(_ context.Context, w int, s any) error         { return c.set.Save(w, s) }
func (c ctxSet) Latest(_ context.Context, s any) (int, bool, error) { return c.set.Latest(s) }

// harvestsEqual compares every output-bearing field, including the
// request log in append order.
func harvestsEqual(t *testing.T, a, b *Harvest) {
	t.Helper()
	if !reflect.DeepEqual(a.Addresses, b.Addresses) {
		t.Error("Addresses diverged")
	}
	if !reflect.DeepEqual(a.PermIDs, b.PermIDs) {
		t.Error("PermIDs diverged")
	}
	if a.DescriptorsSeen != b.DescriptorsSeen {
		t.Errorf("DescriptorsSeen %d != %d", a.DescriptorsSeen, b.DescriptorsSeen)
	}
	if !reflect.DeepEqual(a.StepCoverage, b.StepCoverage) {
		t.Errorf("StepCoverage %v != %v", a.StepCoverage, b.StepCoverage)
	}
	if a.PublishedIDsSeen != b.PublishedIDsSeen || a.RequestedPublishedIDs != b.RequestedPublishedIDs {
		t.Error("published/requested ID counts diverged")
	}
	if a.CollectedFraction != b.CollectedFraction {
		t.Error("CollectedFraction diverged")
	}
	if !reflect.DeepEqual(a.Log.Requests(), b.Log.Requests()) {
		t.Error("request logs diverged")
	}
	if !a.Start.Equal(b.Start) || !a.End.Equal(b.End) {
		t.Error("window diverged")
	}
}

func TestCheckpointedRunMatchesPlain(t *testing.T) {
	ref, err := ckptRun(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := testCkptSet(t)
	got, err := ckptRun(t, func(c *Config) { c.Checkpoint = ctxSet{set} })
	if err != nil {
		t.Fatal(err)
	}
	harvestsEqual(t, ref, got)
}

func TestCrashAtStepResumesByteIdentical(t *testing.T) {
	ref, err := ckptRun(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := testCkptSet(t)

	// "Process one": checkpoint every step, crash entering step 4.
	in := fault.New(1)
	if err := in.Set(fault.SiteTrawlStep, fault.Rule{Mode: fault.ModeCrash, At: 4}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	crashed := func() (cp fault.CrashPoint, ok bool) {
		defer func() {
			if r := recover(); r != nil {
				cp, ok = r.(fault.CrashPoint)
				if !ok {
					panic(r)
				}
			}
		}()
		ckptRun(t, func(c *Config) { c.Checkpoint = ctxSet{set} })
		return
	}
	cp, ok := crashed()
	fault.Install(prev)
	if !ok || cp.Site != fault.SiteTrawlStep {
		t.Fatalf("run did not crash at the step site: %+v ok=%v", cp, ok)
	}

	// "Process two": resume from the snapshot; output must match the
	// uninterrupted reference bit for bit.
	got, err := ckptRun(t, func(c *Config) {
		c.Checkpoint = ctxSet{set}
		c.Resume = true
	})
	if err != nil {
		t.Fatal(err)
	}
	harvestsEqual(t, ref, got)
}

func TestCheckpointEveryNCadence(t *testing.T) {
	set := testCkptSet(t)
	if _, err := ckptRun(t, func(c *Config) {
		c.Checkpoint = ctxSet{set}
		c.CheckpointEvery = 2
	}); err != nil {
		t.Fatal(err)
	}
	// Steps 0..5 with cadence 2 and no final-step snapshot: snapshots
	// after steps 1 and 3 (pruning keeps both).
	var snap Snapshot
	w, ok, err := set.Latest(&snap)
	if err != nil || !ok {
		t.Fatalf("Latest = ok=%v err=%v", ok, err)
	}
	if w != 3 || snap.Step != 3 {
		t.Fatalf("latest window = %d (step %d), want 3", w, snap.Step)
	}
}

func TestStepFaultIsTransient(t *testing.T) {
	in := fault.New(1)
	if err := in.Set(fault.SiteTrawlStep, fault.Rule{Mode: fault.ModeErr, At: 2}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	t.Cleanup(func() { fault.Install(prev) })
	_, err := ckptRun(t, nil)
	if err == nil {
		t.Fatal("run under an armed step fault succeeded")
	}
	if !errors.Is(err, fault.Transient) {
		t.Fatalf("step fault lost its transient classification: %v", err)
	}
}
