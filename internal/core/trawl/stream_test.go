package trawl

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"torhs/internal/geo"
	"torhs/internal/hspop"
	"torhs/internal/relaynet"
)

// runHarvest runs a small trawl end to end with or without compact logs
// and returns the harvest. Mirrors setupTrawl, but the log mode must
// vary per call.
func runHarvest(t *testing.T, seed int64, compact bool) *Harvest {
	t.Helper()
	fleet := relaynet.DefaultFleetConfig(seed)
	fleet.Days = 1
	fleet.InitialRelays = 300
	fleet.FinalRelays = 300
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.IPs = 15
	cfg.Steps = 3
	cfg.ClientConfig.Clients = 300
	cfg.CompactLogs = compact
	tr, err := NewTrawler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	popCfg := hspop.TestConfig(seed)
	popCfg.Scale = 0.02
	pop, err := hspop.Generate(context.Background(), popCfg)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	start := fleet.Start.Add(48 * time.Hour)
	tr.Deploy(sim, start)
	h, err := tr.Run(context.Background(), sim, pop, db, start)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// assertHarvestAggregatesEqual compares every downstream-visible output
// of two harvests (raw request records excluded — compact mode retires
// them by contract).
func assertHarvestAggregatesEqual(t *testing.T, want, got *Harvest) {
	t.Helper()
	if !reflect.DeepEqual(want.Addresses, got.Addresses) {
		t.Errorf("Addresses diverged: %d vs %d", len(want.Addresses), len(got.Addresses))
	}
	if !reflect.DeepEqual(want.PermIDs, got.PermIDs) {
		t.Error("PermIDs diverged")
	}
	if want.DescriptorsSeen != got.DescriptorsSeen {
		t.Errorf("DescriptorsSeen = %d, want %d", got.DescriptorsSeen, want.DescriptorsSeen)
	}
	if !reflect.DeepEqual(want.StepCoverage, got.StepCoverage) {
		t.Errorf("StepCoverage = %v, want %v", got.StepCoverage, want.StepCoverage)
	}
	if want.PublishedIDsSeen != got.PublishedIDsSeen {
		t.Errorf("PublishedIDsSeen = %d, want %d", got.PublishedIDsSeen, want.PublishedIDsSeen)
	}
	if want.RequestedPublishedIDs != got.RequestedPublishedIDs {
		t.Errorf("RequestedPublishedIDs = %d, want %d", got.RequestedPublishedIDs, want.RequestedPublishedIDs)
	}
	if want.CollectedFraction != got.CollectedFraction {
		t.Errorf("CollectedFraction = %v, want %v", got.CollectedFraction, want.CollectedFraction)
	}
	if !want.Start.Equal(got.Start) || !want.End.Equal(got.End) {
		t.Error("attack window diverged")
	}
	if want.Log.Total() != got.Log.Total() ||
		want.Log.UniqueIDs() != got.Log.UniqueIDs() ||
		want.Log.FoundFraction() != got.Log.FoundFraction() {
		t.Error("merged log scalar aggregates diverged")
	}
	if !reflect.DeepEqual(want.Log.CountsByID(), got.Log.CountsByID()) {
		t.Error("merged log per-ID counts diverged")
	}
}

// TestCompactHarvestMatchesRaw is the trawl leg of the streaming
// equivalence contract: retiring raw request records per window must not
// move a single downstream aggregate.
func TestCompactHarvestMatchesRaw(t *testing.T) {
	raw := runHarvest(t, 21, false)
	compact := runHarvest(t, 21, true)
	assertHarvestAggregatesEqual(t, raw, compact)
	if !compact.Log.Compacted() {
		t.Fatal("CompactLogs run produced a raw merged log")
	}
	if compact.Log.Requests() != nil {
		t.Fatal("compact harvest retained raw request records")
	}
	if raw.Log.Compacted() {
		t.Fatal("raw run produced a compact merged log")
	}
}

// TestHarvestStateRoundTrip pins the intermediate-artefact encoding: a
// harvest must survive State → gob → HarvestFromState with every
// aggregate intact, in both log modes.
func TestHarvestStateRoundTrip(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "raw"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			h := runHarvest(t, 22, compact)
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(h.State()); err != nil {
				t.Fatal(err)
			}
			var st HarvestState
			if err := gob.NewDecoder(&buf).Decode(&st); err != nil {
				t.Fatal(err)
			}
			back := HarvestFromState(&st)
			assertHarvestAggregatesEqual(t, h, back)
			if compact {
				if !back.Log.Compacted() {
					t.Fatal("compact harvest came back raw")
				}
			} else if rr := back.Log.Requests(); len(rr) != h.Log.Total() {
				t.Fatalf("raw harvest came back with %d of %d request records", len(rr), h.Log.Total())
			}
		})
	}
}
