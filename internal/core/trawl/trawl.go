// Package trawl implements the paper's collection methodology: the
// shadow-relay ("shadowing") attack of Section II-A. An attacker rents a
// small number of IP addresses, runs many relays on each, waits 25 hours
// so *all* of them earn the HSDir flag, and then rotates reachability so
// that fresh pairs of relays occupy the consensus slots each step. Over a
// 24-hour window the attacker's relays sweep the HSDir ring, receiving
// descriptor uploads (onion addresses) and client descriptor requests
// (popularity data) for a large fraction of all hidden services.
package trawl

import (
	"context"
	"fmt"
	"time"

	"torhs/internal/fault"
	"torhs/internal/geo"
	"torhs/internal/hsdir"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/parallel"
	"torhs/internal/relay"
	"torhs/internal/relaynet"
	"torhs/internal/simnet"
)

// Checkpointer persists per-step accumulator snapshots so a killed run
// can fold forward from its last completed step. The contract matches
// resultstore.CheckpointSet; the interface keeps trawl below the store
// in the import graph. The context is per call — implementations must
// not retain it — and the cancellation flush passes an uncancellable
// context so the final snapshot always lands.
type Checkpointer interface {
	// Save snapshots state after window completed.
	Save(ctx context.Context, window int, state any) error
	// Latest decodes the newest valid snapshot into state; ok is false
	// when none exists.
	Latest(ctx context.Context, state any) (window int, ok bool, err error)
}

// Snapshot is the serializable accumulator state of a run after Step+1
// completed steps: exactly the values Run folds forward across step
// boundaries. Resuming from it is byte-identical to never crashing
// because every per-step quantity (consensus, network seed, traffic) is
// derived from the step index alone, never from prior-step state.
type Snapshot struct {
	// Step is the last completed step (0-based).
	Step int
	// Accumulators mirrored from Harvest.
	Addresses       map[onion.Address]bool
	PermIDs         map[onion.Address]onion.PermanentID
	DescriptorsSeen int
	StepCoverage    []float64
	// Requests is the merged request log in original append order (nil
	// for compact-log runs, whose raw records were retired on arrival).
	Requests []hsdir.Request
	// LogCounts / LogTotal / LogFound carry the merged log's aggregate
	// state for compact-log runs (hsdir.RequestLog.CompactState form).
	LogCounts map[onion.DescriptorID]int
	LogTotal  int
	LogFound  int
	// PublishedIDs / RequestedPublished are the cross-step descriptor-ID
	// sets behind PublishedIDsSeen / RequestedPublishedIDs.
	PublishedIDs       map[onion.DescriptorID]bool
	RequestedPublished map[onion.DescriptorID]bool
}

// Config parameterises the trawling fleet. The paper used 58 Amazon EC2
// instances (IP addresses).
type Config struct {
	// IPs is the number of rented IP addresses.
	IPs int
	// Steps is the number of reachability-rotation steps across the
	// attack window; each step activates a fresh pair of relays per IP,
	// so RelaysPerIP = 2*Steps.
	Steps int
	// StepLen is the duration of one rotation step.
	StepLen time.Duration
	// Bandwidth is the advertised bandwidth of attacker relays. It must
	// be high: the per-IP consensus slots go to the two fastest relays.
	Bandwidth int
	// DeployLead is how long before the attack the fleet starts running
	// (must exceed the 25-hour HSDir threshold).
	DeployLead time.Duration
	// DriveTraffic also simulates client descriptor-request traffic in
	// each step and aggregates the attacker's request logs.
	DriveTraffic bool
	// ClientConfig configures the client population when DriveTraffic is
	// set.
	ClientConfig simnet.Config
	// Workers shards the per-step traffic drive and the attacker
	// directory read-out across goroutines (<= 0: one per CPU). Results
	// are identical at every worker count.
	Workers int
	// SecretTable optionally shares precomputed rend-spec
	// secret-id-parts across every per-step network (descriptor
	// placement and fetch-traffic derivation). The experiments Env
	// passes one study-wide table; nil lets each step's network build
	// its own.
	SecretTable *onion.SecretIDTable
	// Checkpoint, when non-nil, snapshots the harvest accumulators at
	// step boundaries so a killed run can resume.
	Checkpoint Checkpointer
	// CheckpointEvery is the number of steps between snapshots (<= 0
	// means every step when Checkpoint is set).
	CheckpointEvery int
	// Resume restores the latest valid snapshot from Checkpoint and
	// continues from the following step instead of starting at step 0.
	Resume bool
	// CompactLogs runs the streaming pipeline's per-window log
	// retirement: every per-step directory log and the merged harvest
	// log fold requests into per-descriptor-ID counts on arrival instead
	// of retaining raw records, bounding log memory by distinct IDs
	// rather than request volume. All aggregate harvest outputs (and the
	// rendered experiments) are byte-identical; only Harvest.Log's raw
	// Requests() reads become nil.
	CompactLogs bool
}

// DefaultConfig mirrors the paper's deployment at simulation scale.
func DefaultConfig(seed int64) Config {
	return Config{
		IPs:          58,
		Steps:        12,
		StepLen:      2 * time.Hour,
		Bandwidth:    99999,
		DeployLead:   26 * time.Hour,
		DriveTraffic: true,
		ClientConfig: simnet.DefaultConfig(seed),
	}
}

// Harvest is the outcome of one trawling run.
type Harvest struct {
	// Addresses are all collected onion addresses.
	Addresses map[onion.Address]bool
	// PermIDs maps collected addresses to their permanent IDs (derived
	// from the harvested descriptors).
	PermIDs map[onion.Address]onion.PermanentID
	// DescriptorsSeen counts descriptor uploads captured (with replica
	// multiplicity).
	DescriptorsSeen int
	// Log merges the request logs of all attacker directories across all
	// steps (empty unless DriveTraffic).
	Log *hsdir.RequestLog
	// StepCoverage is, per step, the fraction of the consensus HSDir
	// ring positions held by attacker relays.
	StepCoverage []float64
	// PublishedIDsSeen is the number of distinct descriptor IDs stored
	// on attacker directories across the window.
	PublishedIDsSeen int
	// RequestedPublishedIDs is how many of those were ever fetched by a
	// client — the paper observed only ~10% of published descriptors
	// were ever requested (E9).
	RequestedPublishedIDs int
	// CollectedFraction is |Addresses| over the number of services that
	// published descriptors.
	CollectedFraction float64
	// Window is the attack window [Start, End).
	Start, End time.Time
}

// Trawler drives the attack against a relaynet simulation.
type Trawler struct {
	cfg    Config
	fleet  [][]*relay.Relay // fleet[ip][i]
	allFPs map[onion.Fingerprint]bool
}

// NewTrawler validates the configuration.
func NewTrawler(cfg Config) (*Trawler, error) {
	if cfg.IPs <= 0 {
		return nil, fmt.Errorf("trawl: IPs %d must be positive", cfg.IPs)
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("trawl: steps %d must be positive", cfg.Steps)
	}
	if cfg.StepLen <= 0 {
		return nil, fmt.Errorf("trawl: step length %v must be positive", cfg.StepLen)
	}
	if cfg.DeployLead < 25*time.Hour {
		return nil, fmt.Errorf("trawl: deploy lead %v below the 25h HSDir threshold", cfg.DeployLead)
	}
	return &Trawler{cfg: cfg, allFPs: make(map[onion.Fingerprint]bool)}, nil
}

// Deploy starts the fleet at attackStart-DeployLead and registers it with
// the simulation's authority: cfg.IPs addresses × 2*Steps relays each.
// Initially only the first pair per IP is reachable.
func (t *Trawler) Deploy(sim *relaynet.Sim, attackStart time.Time) {
	startAt := attackStart.Add(-t.cfg.DeployLead)
	relaysPerIP := 2 * t.cfg.Steps
	t.fleet = make([][]*relay.Relay, t.cfg.IPs)
	for ip := 0; ip < t.cfg.IPs; ip++ {
		addr := fmt.Sprintf("203.0.%d.%d", ip/250, ip%250+1)
		t.fleet[ip] = make([]*relay.Relay, relaysPerIP)
		for i := 0; i < relaysPerIP; i++ {
			r := relay.New(relay.Config{
				ID:        sim.NewRelayID(),
				Nickname:  fmt.Sprintf("trawler%02d-%02d", ip, i),
				IP:        addr,
				ORPort:    9001 + i,
				Bandwidth: t.cfg.Bandwidth,
			}, sim.RNG())
			r.Start(startAt)
			// Shadow relays stay reachable (they accrue uptime and
			// flags); only step-0's pair keeps the consensus slots at
			// first because slots go to the two fastest *reachable*
			// relays and we mark later pairs unreachable until their
			// step.
			if i >= 2 {
				r.SetReachable(false)
			}
			sim.AddAttackerRelay(r)
			t.fleet[ip][i] = r
			t.allFPs[r.Fingerprint()] = true
		}
	}
}

// rotate makes exactly the pair for the given step reachable on every IP.
func (t *Trawler) rotate(step int) {
	for _, relays := range t.fleet {
		for i, r := range relays {
			r.SetReachable(i/2 == step)
		}
	}
}

// ActiveFingerprints returns the fingerprints of the pair active in the
// given step across all IPs.
func (t *Trawler) ActiveFingerprints(step int) []onion.Fingerprint {
	out := make([]onion.Fingerprint, 0, 2*len(t.fleet))
	for _, relays := range t.fleet {
		for i := 2 * step; i < 2*step+2 && i < len(relays); i++ {
			out = append(out, relays[i].Fingerprint())
		}
	}
	return out
}

// Owns reports whether the fingerprint belongs to the trawling fleet.
func (t *Trawler) Owns(fp onion.Fingerprint) bool { return t.allFPs[fp] }

// Run executes the attack: for each step it rotates the fleet, lets the
// authority publish a consensus, re-publishes all service descriptors
// onto the resulting ring, optionally drives client traffic, and reads
// the attacker directories.
//
// The step is the cancellation unit: ctx is observed at every step
// boundary (and inside the step through the traffic drive). A cancelled
// checkpointed run flushes a snapshot of its completed steps before
// returning ctx.Err(), so resuming after a deliberate stop loses no
// finished work and stays byte-identical to an uninterrupted run.
//
//torhs:cancelpoint
func (t *Trawler) Run(
	ctx context.Context,
	sim *relaynet.Sim,
	pop *hspop.Population,
	db *geo.DB,
	attackStart time.Time,
) (*Harvest, error) {
	if t.fleet == nil {
		return nil, fmt.Errorf("trawl: fleet not deployed")
	}
	h := &Harvest{
		Addresses: make(map[onion.Address]bool),
		PermIDs:   make(map[onion.Address]onion.PermanentID),
		Log:       hsdir.NewRequestLog(),
		Start:     attackStart,
		End:       attackStart.Add(time.Duration(t.cfg.Steps) * t.cfg.StepLen),
	}
	if t.cfg.CompactLogs {
		h.Log = hsdir.NewCompactLog()
	}

	published := pop.WithDescriptor()
	publishedIDs := make(map[onion.DescriptorID]bool)
	requestedPublished := make(map[onion.DescriptorID]bool)
	startStep := 0
	if t.cfg.Resume && t.cfg.Checkpoint != nil {
		var snap Snapshot
		w, ok, err := t.cfg.Checkpoint.Latest(ctx, &snap)
		if err != nil {
			return nil, fmt.Errorf("trawl: resume: %w", err)
		}
		if ok {
			if snap.Step != w {
				return nil, fmt.Errorf("trawl: resume: snapshot step %d under window %d", snap.Step, w)
			}
			startStep = snap.Step + 1
			h.DescriptorsSeen = snap.DescriptorsSeen
			h.StepCoverage = snap.StepCoverage
			if snap.Addresses != nil {
				h.Addresses = snap.Addresses
			}
			if snap.PermIDs != nil {
				h.PermIDs = snap.PermIDs
			}
			if snap.PublishedIDs != nil {
				publishedIDs = snap.PublishedIDs
			}
			if snap.RequestedPublished != nil {
				requestedPublished = snap.RequestedPublished
			}
			if snap.LogCounts != nil {
				// Compact snapshot: the aggregate log state restores
				// exactly (raw records were retired before the save).
				h.Log.RestoreCompact(snap.LogCounts, snap.LogTotal, snap.LogFound)
			} else {
				// Requests restore in original append order, so every
				// order-dependent downstream read is unchanged.
				h.Log.RecordBatch(snap.Requests)
			}
		}
	}
	ckptEvery := t.cfg.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 1
	}
	// lastSaved is the newest step already covered by a snapshot: the
	// restored one on resume, nothing otherwise (startStep-1 is -1 for a
	// fresh run). The cancellation flush only writes when the
	// accumulators have advanced past it.
	lastSaved := startStep - 1
	makeSnap := func(step int) *Snapshot {
		snap := &Snapshot{
			Step:               step,
			Addresses:          h.Addresses,
			PermIDs:            h.PermIDs,
			DescriptorsSeen:    h.DescriptorsSeen,
			StepCoverage:       h.StepCoverage,
			PublishedIDs:       publishedIDs,
			RequestedPublished: requestedPublished,
		}
		if h.Log.Compacted() {
			snap.LogCounts, snap.LogTotal, snap.LogFound = h.Log.CompactState()
		} else {
			snap.Requests = h.Log.Requests()
		}
		return snap
	}
	flush := func(step int) error {
		if t.cfg.Checkpoint == nil || step <= lastSaved || step < 0 {
			return nil
		}
		// The run is already cancelled; the flush must still land, so it
		// gets a context that keeps ctx's values but not its cancel.
		if err := t.cfg.Checkpoint.Save(context.WithoutCancel(ctx), step, makeSnap(step)); err != nil {
			return fmt.Errorf("trawl: step %d: cancel flush: %w", step, err)
		}
		lastSaved = step
		return nil
	}
	for step := startStep; step < t.cfg.Steps; step++ {
		if cerr := ctx.Err(); cerr != nil {
			if err := flush(step - 1); err != nil {
				return nil, err
			}
			return nil, cerr
		}
		// The step boundary is a fault site: everything before it is
		// checkpointed (or cheap to redo), everything after belongs to
		// this step alone.
		if err := fault.Hit(fault.SiteTrawlStep); err != nil {
			return nil, fmt.Errorf("trawl: step %d: %w", step, err)
		}
		now := attackStart.Add(time.Duration(step) * t.cfg.StepLen)
		t.rotate(step)
		doc := sim.Authority().Publish(now)
		hsdirs := doc.HSDirs()
		if len(hsdirs) == 0 {
			return nil, fmt.Errorf("trawl: step %d: consensus has no HSDir-flagged relays", step)
		}

		cfg := t.cfg.ClientConfig
		cfg.Seed = cfg.Seed*1000003 + int64(step) // fresh but deterministic per step
		cfg.Workers = t.cfg.Workers
		cfg.SecretTable = t.cfg.SecretTable
		cfg.CompactLogs = t.cfg.CompactLogs
		net, err := simnet.NewNetwork(doc, db, cfg)
		if err != nil {
			return nil, fmt.Errorf("trawl: step %d: %w", step, err)
		}
		net.PublishAll(pop, now)

		if t.cfg.DriveTraffic {
			if _, err := net.DriveWindow(ctx, pop, now, t.cfg.StepLen, nil); err != nil {
				// Cancelled mid-step: the step's per-step network is
				// abandoned wholesale (nothing merged into the harvest),
				// so the completed prefix is still exactly [0, step).
				if ferr := flush(step - 1); ferr != nil {
					return nil, ferr
				}
				return nil, err
			}
		}

		// Read out every attacker-operated directory, fanned out across
		// workers; per-shard partials merge into the harvest in shard
		// order, and every harvest field is a set union or a sum, so the
		// read-out is identical at every worker count.
		attacker := make([]onion.Fingerprint, 0, 2*len(t.fleet))
		for _, fp := range hsdirs {
			if t.allFPs[fp] {
				attacker = append(attacker, fp)
			}
		}
		shards := make([]readout, parallel.NumChunks(t.cfg.Workers, len(attacker)))
		parallel.Chunks(t.cfg.Workers, len(attacker), func(shard, lo, hi int) {
			out := &shards[shard]
			out.init()
			for _, fp := range attacker[lo:hi] {
				t.readDirectory(net, fp, out)
			}
		})
		t.mergeReadouts(h, publishedIDs, requestedPublished, shards)
		h.StepCoverage = append(h.StepCoverage, float64(len(attacker))/float64(len(hsdirs)))

		// Snapshot after the step's accumulators are complete. The final
		// step is not snapshotted: the run finishes immediately after and
		// the caller clears the set on success.
		if t.cfg.Checkpoint != nil && step < t.cfg.Steps-1 && (step+1)%ckptEvery == 0 {
			if err := t.cfg.Checkpoint.Save(ctx, step, makeSnap(step)); err != nil {
				return nil, fmt.Errorf("trawl: step %d: checkpoint: %w", step, err)
			}
			lastSaved = step
		}
	}

	h.PublishedIDsSeen = len(publishedIDs)
	h.RequestedPublishedIDs = len(requestedPublished)
	if len(published) > 0 {
		h.CollectedFraction = float64(len(h.Addresses)) / float64(len(published))
	}
	return h, nil
}

// mergeReadouts folds the per-shard read-out partials into the harvest
// accumulators, iterating shards in index order — shard spans are
// contiguous ascending directory ranges, so shard-then-directory order
// is directory order. Every scalar is a sum, every map a set union, and
// the request logs land through one bulk MergeAll per step, so one merge
// per step is all the synchronization the read-out ever does.
//
//torhs:shardmerge shards
//torhs:hotpath
func (t *Trawler) mergeReadouts(
	h *Harvest,
	publishedIDs, requestedPublished map[onion.DescriptorID]bool,
	shards []readout,
) {
	for i := range shards {
		sh := &shards[i]
		h.DescriptorsSeen += sh.descriptorsSeen
		for a, id := range sh.permIDs {
			h.Addresses[a] = true
			h.PermIDs[a] = id
		}
		for id := range sh.publishedIDs {
			publishedIDs[id] = true
		}
		for id := range sh.requestedPublished {
			requestedPublished[id] = true
		}
		h.Log.MergeAll(sh.logs)
	}
}

// readout is one worker's partial read of the attacker directories.
type readout struct {
	descriptorsSeen    int
	permIDs            map[onion.Address]onion.PermanentID
	publishedIDs       map[onion.DescriptorID]bool
	requestedPublished map[onion.DescriptorID]bool
	logs               []*hsdir.RequestLog
}

func (r *readout) init() {
	r.permIDs = make(map[onion.Address]onion.PermanentID)
	r.publishedIDs = make(map[onion.DescriptorID]bool)
	r.requestedPublished = make(map[onion.DescriptorID]bool)
}

// readDirectory harvests one attacker-operated directory into the shard
// tally, iterating the store in place (no snapshot copies: the visitor
// variants of All/PublishedIDs/RequestedPublishedIDs).
func (t *Trawler) readDirectory(net *simnet.Network, fp onion.Fingerprint, out *readout) {
	dir, ok := net.Directory(fp)
	if !ok {
		return
	}
	dir.Each(func(desc *onion.Descriptor) {
		out.descriptorsSeen++
		out.permIDs[desc.Address] = desc.PermID
	})
	dir.EachPublishedID(func(id onion.DescriptorID) {
		out.publishedIDs[id] = true
	})
	if t.cfg.DriveTraffic {
		out.logs = append(out.logs, dir.Log())
		dir.EachRequestedPublishedID(func(id onion.DescriptorID) {
			out.requestedPublished[id] = true
		})
	}
}

// RequestedPublishedFraction returns the share of observed published
// descriptor IDs that clients ever asked for (≈10% in the paper).
func (h *Harvest) RequestedPublishedFraction() float64 {
	if h.PublishedIDsSeen == 0 {
		return 0
	}
	return float64(h.RequestedPublishedIDs) / float64(h.PublishedIDsSeen)
}

// HarvestState is the serializable (gob) form of a completed Harvest —
// the intermediate artefact the experiments layer spills to the result
// store so re-runs and sweeps sharing a harvest stage are cache hits.
// Round-tripping through it reconstructs every aggregate the downstream
// pipelines read; raw request records survive only for raw-mode logs.
type HarvestState struct {
	Addresses             map[onion.Address]bool
	PermIDs               map[onion.Address]onion.PermanentID
	DescriptorsSeen       int
	StepCoverage          []float64
	PublishedIDsSeen      int
	RequestedPublishedIDs int
	CollectedFraction     float64
	Start, End            time.Time
	// Requests is the raw merged log (raw mode); Compact runs carry the
	// aggregate state instead.
	Requests  []hsdir.Request
	Compact   bool
	LogCounts map[onion.DescriptorID]int
	LogTotal  int
	LogFound  int
}

// State captures the harvest's serializable form.
func (h *Harvest) State() *HarvestState {
	st := &HarvestState{
		Addresses:             h.Addresses,
		PermIDs:               h.PermIDs,
		DescriptorsSeen:       h.DescriptorsSeen,
		StepCoverage:          h.StepCoverage,
		PublishedIDsSeen:      h.PublishedIDsSeen,
		RequestedPublishedIDs: h.RequestedPublishedIDs,
		CollectedFraction:     h.CollectedFraction,
		Start:                 h.Start,
		End:                   h.End,
	}
	if h.Log != nil {
		if h.Log.Compacted() {
			st.Compact = true
			st.LogCounts, st.LogTotal, st.LogFound = h.Log.CompactState()
		} else {
			st.Requests = h.Log.Requests()
		}
	}
	return st
}

// HarvestFromState reconstructs a Harvest from its serializable form.
func HarvestFromState(st *HarvestState) *Harvest {
	h := &Harvest{
		Addresses:             st.Addresses,
		PermIDs:               st.PermIDs,
		DescriptorsSeen:       st.DescriptorsSeen,
		StepCoverage:          st.StepCoverage,
		PublishedIDsSeen:      st.PublishedIDsSeen,
		RequestedPublishedIDs: st.RequestedPublishedIDs,
		CollectedFraction:     st.CollectedFraction,
		Start:                 st.Start,
		End:                   st.End,
		Log:                   hsdir.NewRequestLog(),
	}
	if h.Addresses == nil {
		h.Addresses = make(map[onion.Address]bool)
	}
	if h.PermIDs == nil {
		h.PermIDs = make(map[onion.Address]onion.PermanentID)
	}
	if st.Compact {
		h.Log.RestoreCompact(st.LogCounts, st.LogTotal, st.LogFound)
	} else {
		h.Log.RecordBatch(st.Requests)
	}
	return h
}
