package deanon

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/simnet"
)

// ServiceConfig parameterises the service-side campaign: the original [8]
// attack the paper's Section II-B summarises, targeting the hidden
// service's own location rather than its clients.
type ServiceConfig struct {
	// GuardControlFraction is the attacker's share of the guard pool.
	GuardControlFraction float64
	// Days is how many daily descriptor uploads the attacker observes;
	// each upload is a fresh chance that the service's circuit uses an
	// attacker guard.
	Days int
	// Seed selects the attacker's guards.
	Seed int64
}

// DefaultServiceConfig returns a realistic multi-month observation: the
// attack is a waiting game on the target's 30–60-day guard rotation.
func DefaultServiceConfig(seed int64) ServiceConfig {
	return ServiceConfig{GuardControlFraction: 0.15, Days: 120, Seed: seed}
}

// ServiceReport summarises a service-side campaign.
type ServiceReport struct {
	Target onion.Address
	// SignaturesSent counts uploads answered with the traffic signature.
	SignaturesSent int
	// Detections are the raw guard observations.
	Detections []simnet.ServiceDetection
	// Success reports whether the service's IP was revealed.
	Success bool
	// RevealedIP is the deanonymised address (empty on failure).
	RevealedIP string
	// DaysToFirstDetection is the observation day of the first hit
	// (0-based; -1 on failure).
	DaysToFirstDetection int
}

// RunServiceSide executes the [8] attack against one service: the
// attacker positions itself as the service's responsible directories for
// every observed day (positions are predictable, Section II-A) and
// watches its guards for the upload signature.
func RunServiceSide(
	net *simnet.Network,
	target *hspop.Service,
	start time.Time,
	cfg ServiceConfig,
) (*ServiceReport, error) {
	if cfg.GuardControlFraction <= 0 || cfg.GuardControlFraction > 1 {
		return nil, fmt.Errorf("deanon: guard fraction %v out of (0,1]", cfg.GuardControlFraction)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("deanon: days %d must be positive", cfg.Days)
	}

	// Attacker directories: the union of the target's responsible sets
	// across the observed days.
	dirSet := make(map[onion.Fingerprint]bool)
	for day := 0; day < cfg.Days; day++ {
		at := start.Add(time.Duration(day) * 24 * time.Hour)
		for _, fp := range net.Ring().ResponsibleForServiceAt(target.PermID, at) {
			dirSet[fp] = true
		}
	}
	dirs := make([]onion.Fingerprint, 0, len(dirSet))
	for fp := range dirSet {
		dirs = append(dirs, fp)
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].Less(dirs[j]) })

	pool := append([]onion.Fingerprint(nil), net.GuardPool()...)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	nGuards := int(float64(len(pool)) * cfg.GuardControlFraction)
	if nGuards < 1 {
		nGuards = 1
	}

	attack := simnet.NewServiceSignatureAttack(target.PermID, dirs, pool[:nGuards])
	net.OnUpload(attack.ObserveUpload)

	rep := &ServiceReport{Target: target.Address, DaysToFirstDetection: -1}
	for day := 0; day < cfg.Days; day++ {
		at := start.Add(time.Duration(day) * 24 * time.Hour)
		net.PublishService(target, at)
		if rep.DaysToFirstDetection < 0 && len(attack.Detections()) > 0 {
			rep.DaysToFirstDetection = day
		}
	}

	rep.SignaturesSent = attack.SignaturesSent()
	rep.Detections = attack.Detections()
	if ip, ok := attack.DeanonymisedServices()[target.Address]; ok {
		rep.Success = true
		rep.RevealedIP = ip
	}
	return rep, nil
}
