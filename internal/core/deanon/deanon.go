// Package deanon implements the paper's Section VI: opportunistic
// deanonymisation of hidden-service *clients*. The attacker controls the
// target service's responsible directories (trivial, since responsible
// directories are predictable and positions can be mined) plus some
// fraction of the guard population; descriptor responses are wrapped in a
// traffic signature that attacker guards recognise, revealing client IPs.
// The output is the per-country client map of Fig. 3.
package deanon

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/simnet"
	"torhs/internal/stats"
)

// Config parameterises a deanonymisation campaign.
type Config struct {
	// GuardControlFraction is the share of the guard pool the attacker
	// operates.
	GuardControlFraction float64
	// Window is the observation duration.
	Window time.Duration
	// Seed selects which guards the attacker controls.
	Seed int64
	// CellLevel runs the attack at cell-trace granularity: guards
	// recover the signature from circuit cell counts (the [8]
	// mechanism) instead of being told which responses were marked.
	CellLevel bool
}

// DefaultConfig returns a campaign with a realistic minority guard share.
func DefaultConfig(seed int64) Config {
	return Config{GuardControlFraction: 0.1, Window: 2 * time.Hour, Seed: seed}
}

// Report summarises a campaign.
type Report struct {
	// Target is the attacked service.
	Target onion.Address
	// AttackerDirs / AttackerGuards are the controlled fingerprints.
	AttackerDirs   []onion.Fingerprint
	AttackerGuards int
	// SignaturesSent counts signature-wrapped responses.
	SignaturesSent int
	// Detections are the deanonymised observations.
	Detections []simnet.Detection
	// UniqueClients is the number of distinct clients identified.
	UniqueClients int
	// CountryHistogram aggregates detections per country (Fig. 3).
	CountryHistogram map[string]int
	// DetectionRate is detections over signatures sent; its expectation
	// is the attacker's guard-pool share.
	DetectionRate float64
	// CellMisses / CellFalsePositives report the cell-level detector's
	// errors (zero unless CellLevel was enabled).
	CellMisses         int
	CellFalsePositives int
}

// Run executes the campaign on an already-published network, driving one
// measurement window of traffic. Cancellation propagates into the
// window drive; a cancelled campaign abandons the whole window (no
// partial report) and returns ctx.Err().
func Run(
	ctx context.Context,
	net *simnet.Network,
	pop *hspop.Population,
	target *hspop.Service,
	start time.Time,
	cfg Config,
) (*Report, error) {
	if cfg.GuardControlFraction <= 0 || cfg.GuardControlFraction > 1 {
		return nil, fmt.Errorf("deanon: guard fraction %v out of (0,1]", cfg.GuardControlFraction)
	}
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("deanon: window %v must be positive", cfg.Window)
	}

	// The attacker occupies the target's responsible directories for the
	// current (and, against clock-skewed clients, adjacent) periods.
	dirSet := make(map[onion.Fingerprint]bool)
	for _, off := range []time.Duration{-24 * time.Hour, 0, 24 * time.Hour} {
		for _, fp := range net.Ring().ResponsibleForServiceAt(target.PermID, start.Add(off)) {
			dirSet[fp] = true
		}
	}
	dirs := make([]onion.Fingerprint, 0, len(dirSet))
	for fp := range dirSet {
		dirs = append(dirs, fp)
	}
	sort.Slice(dirs, func(i, j int) bool { return dirs[i].Less(dirs[j]) })

	// Attacker guards: a random but deterministic subset of the pool.
	pool := append([]onion.Fingerprint(nil), net.GuardPool()...)
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	nGuards := int(float64(len(pool)) * cfg.GuardControlFraction)
	if nGuards < 1 {
		nGuards = 1
	}
	attackerGuards := pool[:nGuards]

	attack := simnet.NewSignatureAttack(target.PermID, dirs, attackerGuards)
	if cfg.CellLevel {
		attack.EnableCellLevel(cfg.Seed)
	}
	if _, err := net.DriveWindow(ctx, pop, start, cfg.Window, attack.Observe); err != nil {
		return nil, err
	}

	rep := &Report{
		Target:           target.Address,
		AttackerDirs:     dirs,
		AttackerGuards:   nGuards,
		SignaturesSent:   attack.SignaturesSent(),
		Detections:       attack.Detections(),
		UniqueClients:    attack.UniqueClients(),
		CountryHistogram: attack.CountryHistogram(),
	}
	rep.CellMisses, rep.CellFalsePositives = attack.CellStats()
	if rep.SignaturesSent > 0 {
		rep.DetectionRate = float64(len(rep.Detections)) / float64(rep.SignaturesSent)
	}
	return rep, nil
}

// MapPoints renders the country histogram as ranked rows — the tabular
// form of the Fig. 3 world map.
func (r *Report) MapPoints() []stats.RankedCount {
	return stats.RankCounts(r.CountryHistogram)
}
