package deanon

import (
	"context"
	"math"
	"testing"
	"time"

	"torhs/internal/geo"
	"torhs/internal/hspop"
	"torhs/internal/relaynet"
	"torhs/internal/simnet"
)

func setup(t *testing.T, seed int64) (*simnet.Network, *hspop.Population, time.Time) {
	t.Helper()
	fleet := relaynet.DefaultFleetConfig(seed)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	cfg := simnet.DefaultConfig(seed)
	cfg.Clients = 800
	net, err := simnet.NewNetwork(h.All()[0], db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	now := h.All()[0].ValidAfter
	net.PublishAll(pop, now)
	return net, pop, now
}

func TestRunValidation(t *testing.T) {
	net, pop, now := setup(t, 1)
	cfg := DefaultConfig(1)
	cfg.GuardControlFraction = 0
	if _, err := Run(context.Background(), net, pop, pop.Services[0], now, cfg); err == nil {
		t.Fatal("zero guard fraction accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Window = 0
	if _, err := Run(context.Background(), net, pop, pop.Services[0], now, cfg); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestCampaignAgainstGoldnet(t *testing.T) {
	net, pop, now := setup(t, 2)
	target := pop.Services[0] // top Goldnet front

	cfg := DefaultConfig(2)
	cfg.GuardControlFraction = 0.25
	rep, err := Run(context.Background(), net, pop, target, now, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignaturesSent == 0 {
		t.Fatal("no signatures sent against the most popular service")
	}
	if len(rep.Detections) == 0 {
		t.Fatal("no clients deanonymised with 25% guard control")
	}
	if rep.UniqueClients == 0 || rep.UniqueClients > len(rep.Detections) {
		t.Fatalf("unique clients = %d of %d detections", rep.UniqueClients, len(rep.Detections))
	}
	// Detection rate should approximate the guard-control share.
	if math.Abs(rep.DetectionRate-0.25) > 0.12 {
		t.Fatalf("detection rate = %.3f, want ~0.25", rep.DetectionRate)
	}
	// Country histogram covers the detections.
	sum := 0
	for _, n := range rep.CountryHistogram {
		sum += n
	}
	if sum != len(rep.Detections) {
		t.Fatal("country histogram inconsistent")
	}
	// Fig. 3 data: multiple countries, ranked.
	points := rep.MapPoints()
	if len(points) < 3 {
		t.Fatalf("map covers %d countries, want a world-wide spread", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Count > points[i-1].Count {
			t.Fatal("map points not ranked")
		}
	}
}

func TestDetectionRateScalesWithGuardControl(t *testing.T) {
	netLow, popLow, nowLow := setup(t, 3)
	low, err := Run(context.Background(), netLow, popLow, popLow.Services[0], nowLow, Config{
		GuardControlFraction: 0.05, Window: 2 * time.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	netHigh, popHigh, nowHigh := setup(t, 3)
	high, err := Run(context.Background(), netHigh, popHigh, popHigh.Services[0], nowHigh, Config{
		GuardControlFraction: 0.5, Window: 2 * time.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if high.DetectionRate <= low.DetectionRate {
		t.Fatalf("detection rate did not scale: %.3f (5%%) vs %.3f (50%%)",
			low.DetectionRate, high.DetectionRate)
	}
}

func TestCellLevelCampaignMatchesBooleanMode(t *testing.T) {
	netA, popA, nowA := setup(t, 30)
	plain, err := Run(context.Background(), netA, popA, popA.Services[0], nowA, Config{
		GuardControlFraction: 0.3, Window: 2 * time.Hour, Seed: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	netB, popB, nowB := setup(t, 30)
	cell, err := Run(context.Background(), netB, popB, popB.Services[0], nowB, Config{
		GuardControlFraction: 0.3, Window: 2 * time.Hour, Seed: 30, CellLevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds → same traffic; the cell detector recovers every
	// marked circuit, so the two modes agree.
	if cell.SignaturesSent != plain.SignaturesSent {
		t.Fatalf("signatures differ: %d vs %d", cell.SignaturesSent, plain.SignaturesSent)
	}
	if len(cell.Detections) != len(plain.Detections) {
		t.Fatalf("detections differ: %d vs %d", len(cell.Detections), len(plain.Detections))
	}
	if cell.CellMisses != 0 {
		t.Fatalf("cell detector missed %d circuits", cell.CellMisses)
	}
	if cell.CellFalsePositives > cell.SignaturesSent/50+1 {
		t.Fatalf("false positives = %d", cell.CellFalsePositives)
	}
}

func TestUnpopularTargetYieldsNothing(t *testing.T) {
	net, pop, now := setup(t, 4)
	var dark *hspop.Service
	for _, s := range pop.Services {
		if s.ExpectedRequests == 0 && s.DescriptorAtScan {
			dark = s
			break
		}
	}
	if dark == nil {
		t.Fatal("no dark service")
	}
	rep, err := Run(context.Background(), net, pop, dark, now, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignaturesSent != 0 || len(rep.Detections) != 0 {
		t.Fatalf("phantom detections: %+v", rep)
	}
}
