package deanon

import "testing"

func TestRunServiceSideValidation(t *testing.T) {
	net, pop, now := setup(t, 20)
	cfg := DefaultServiceConfig(1)
	cfg.GuardControlFraction = 0
	if _, err := RunServiceSide(net, pop.Services[0], now, cfg); err == nil {
		t.Fatal("zero guard fraction accepted")
	}
	cfg = DefaultServiceConfig(1)
	cfg.Days = 0
	if _, err := RunServiceSide(net, pop.Services[0], now, cfg); err == nil {
		t.Fatal("zero days accepted")
	}
}

func TestServiceSideFullGuardControlSucceedsImmediately(t *testing.T) {
	net, pop, now := setup(t, 21)
	target := pop.WithDescriptor()[0]
	cfg := ServiceConfig{GuardControlFraction: 1.0, Days: 3, Seed: 21}
	rep, err := RunServiceSide(net, target, now, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatal("full guard control failed to deanonymise")
	}
	if rep.DaysToFirstDetection != 0 {
		t.Fatalf("first detection on day %d, want 0", rep.DaysToFirstDetection)
	}
	host, ok := net.Host(target.Address)
	if !ok {
		t.Fatal("no host")
	}
	if rep.RevealedIP != host.IP {
		t.Fatalf("revealed %q, host IP %q", rep.RevealedIP, host.IP)
	}
}

func TestServiceSidePartialControlEventuallySucceeds(t *testing.T) {
	net, pop, now := setup(t, 22)
	target := pop.WithDescriptor()[0]
	// Each day the upload uses one of 3 guards; with a 1/3 guard share
	// over 60 days, success is overwhelmingly likely — and the paper's
	// point is exactly this waiting game.
	cfg := ServiceConfig{GuardControlFraction: 0.33, Days: 60, Seed: 22}
	rep, err := RunServiceSide(net, target, now, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignaturesSent == 0 {
		t.Fatal("no signatures sent")
	}
	if !rep.Success {
		t.Fatal("attack never succeeded over 60 days at 33% guard share")
	}
	if rep.DaysToFirstDetection < 0 {
		t.Fatal("success without first-detection day")
	}
}

func TestServiceSideTinyGuardShareUsuallySlower(t *testing.T) {
	netA, popA, nowA := setup(t, 23)
	fast, err := RunServiceSide(netA, popA.WithDescriptor()[0], nowA,
		ServiceConfig{GuardControlFraction: 1.0, Days: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	netB, popB, nowB := setup(t, 23)
	slow, err := RunServiceSide(netB, popB.WithDescriptor()[0], nowB,
		ServiceConfig{GuardControlFraction: 0.02, Days: 10, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Success && fast.Success &&
		slow.DaysToFirstDetection < fast.DaysToFirstDetection {
		t.Fatal("2% guard share detected earlier than 100%")
	}
	if len(slow.Detections) >= len(fast.Detections) {
		t.Fatalf("detections: %d at 2%% vs %d at 100%%",
			len(slow.Detections), len(fast.Detections))
	}
}
