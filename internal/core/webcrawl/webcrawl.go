// Package webcrawl is the collection *baseline* the paper's introduction
// argues against: starting from Hidden-Wiki-style directory sites and
// following onion hyperlinks. Hidden services rarely link to each other,
// so the crawl saturates at a small fraction of the landscape — at the
// time of the paper, three Hidden Wikis plus ahmia.fi together covered
// ~1,657 addresses against the 39,824 the trawling attack harvested.
// The comparison experiment quantifies exactly that gap.
package webcrawl

import (
	"fmt"

	"torhs/internal/darknet"
	"torhs/internal/onion"
)

// Config bounds the crawl.
type Config struct {
	// MaxPages caps fetched pages (a politeness/time budget).
	MaxPages int
	// MaxDepth caps BFS depth from the seeds.
	MaxDepth int
}

// DefaultConfig returns a generous budget: the baseline's weakness is
// graph sparsity, not budget.
func DefaultConfig() Config { return Config{MaxPages: 100000, MaxDepth: 20} }

// Result summarises a link crawl.
type Result struct {
	// Seeds are the starting addresses.
	Seeds []onion.Address
	// Discovered is every address found (seeds included).
	Discovered map[onion.Address]bool
	// Fetched counts pages retrieved.
	Fetched int
	// Unreachable counts discovered addresses that could not be fetched
	// (dead links — wikis are full of them).
	Unreachable int
	// MaxDepthReached is the deepest BFS level that yielded a new
	// address.
	MaxDepthReached int
}

// Crawler runs the baseline against a fabric.
type Crawler struct {
	cfg    Config
	fabric *darknet.Fabric
}

// New validates the configuration.
func New(fabric *darknet.Fabric, cfg Config) (*Crawler, error) {
	if cfg.MaxPages <= 0 {
		return nil, fmt.Errorf("webcrawl: page budget %d must be positive", cfg.MaxPages)
	}
	if cfg.MaxDepth <= 0 {
		return nil, fmt.Errorf("webcrawl: depth %d must be positive", cfg.MaxDepth)
	}
	return &Crawler{cfg: cfg, fabric: fabric}, nil
}

// Crawl BFS-walks the onion link graph from the seeds, fetching pages on
// ports 80 and 443 and extracting onion hyperlinks.
func (c *Crawler) Crawl(seeds []onion.Address) *Result {
	res := &Result{
		Seeds:      append([]onion.Address(nil), seeds...),
		Discovered: make(map[onion.Address]bool, len(seeds)),
	}
	type item struct {
		addr  onion.Address
		depth int
	}
	queue := make([]item, 0, len(seeds))
	for _, s := range seeds {
		if !res.Discovered[s] {
			res.Discovered[s] = true
			queue = append(queue, item{addr: s, depth: 0})
		}
	}

	for len(queue) > 0 && res.Fetched < c.cfg.MaxPages {
		cur := queue[0]
		queue = queue[1:]
		if cur.depth >= c.cfg.MaxDepth {
			continue
		}

		body, ok := c.fetch(cur.addr)
		if !ok {
			res.Unreachable++
			continue
		}
		res.Fetched++
		for _, link := range darknet.ExtractOnionLinks(body) {
			if res.Discovered[link] {
				continue
			}
			res.Discovered[link] = true
			if cur.depth+1 > res.MaxDepthReached {
				res.MaxDepthReached = cur.depth + 1
			}
			queue = append(queue, item{addr: link, depth: cur.depth + 1})
		}
	}
	return res
}

// fetch tries HTTP then HTTPS.
func (c *Crawler) fetch(addr onion.Address) (string, bool) {
	for _, port := range []int{80, 443} {
		resp, err := c.fabric.Get(addr, port, darknet.PhaseScan)
		if err == nil && resp.StatusCode == 200 {
			return resp.Body, true
		}
	}
	return "", false
}
