package webcrawl

import (
	"context"
	"testing"

	"torhs/internal/darknet"
	"torhs/internal/hspop"
	"torhs/internal/onion"
)

func setupCrawl(t *testing.T, seed int64) (*Crawler, *hspop.Population, []onion.Address) {
	t.Helper()
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	c, err := New(fabric, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var seeds []onion.Address
	for _, s := range pop.Services {
		switch s.Label {
		case "TorDir", "Onion Bookmarks", "SilkRoad(wiki)", "Tor Host":
			seeds = append(seeds, s.Address)
		}
	}
	if len(seeds) == 0 {
		t.Fatal("no directory seeds in population")
	}
	return c, pop, seeds
}

func TestNewValidation(t *testing.T) {
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	cfg := DefaultConfig()
	cfg.MaxPages = 0
	if _, err := New(fabric, cfg); err == nil {
		t.Fatal("zero page budget accepted")
	}
	cfg = DefaultConfig()
	cfg.MaxDepth = 0
	if _, err := New(fabric, cfg); err == nil {
		t.Fatal("zero depth accepted")
	}
}

func TestCrawlDiscoversDirectoryNeighbourhoodOnly(t *testing.T) {
	c, pop, seeds := setupCrawl(t, 2)
	res := c.Crawl(seeds)

	if len(res.Discovered) <= len(seeds) {
		t.Fatal("crawl discovered nothing beyond the seeds")
	}
	published := len(pop.WithDescriptor())
	frac := float64(len(res.Discovered)) / float64(published)
	// The paper's motivation: linked directories cover only a few
	// percent of the landscape (1,657 / 39,824 ≈ 4%).
	if frac > 0.25 {
		t.Fatalf("link crawl covered %.0f%% — graph not sparse enough", frac*100)
	}
	// Everything discovered must be a real address.
	for addr := range res.Discovered {
		if _, ok := pop.ByAddress(addr); !ok {
			t.Fatalf("crawl invented address %s", addr)
		}
	}
	if res.Fetched == 0 {
		t.Fatal("no pages fetched")
	}
}

func TestCrawlCountsDeadLinks(t *testing.T) {
	c, _, seeds := setupCrawl(t, 3)
	res := c.Crawl(seeds)
	// Directory sites link to services that churned away or are
	// 443-only/dark — dead links are expected.
	if res.Unreachable == 0 {
		t.Fatal("no dead links encountered; link graph unrealistically clean")
	}
}

func TestCrawlRespectsPageBudget(t *testing.T) {
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	fabric := darknet.New(pop)
	c, err := New(fabric, Config{MaxPages: 3, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	var seeds []onion.Address
	for _, s := range pop.Services {
		if s.Label == "TorDir" {
			seeds = append(seeds, s.Address)
		}
	}
	res := c.Crawl(seeds)
	if res.Fetched > 3 {
		t.Fatalf("fetched %d pages, budget 3", res.Fetched)
	}
}

func TestExtractOnionLinks(t *testing.T) {
	body := `<html><body>
<a href="http://aaaaaaaaaaaaaaaa.onion/">one</a>
<a href="http://example.com/">clearnet</a>
<a href="http://bbbbbbbbbbbbbbbb.onion/page">two</a>
</body></html>`
	links := darknet.ExtractOnionLinks(body)
	if len(links) != 2 {
		t.Fatalf("links = %v, want 2 onion links", links)
	}
	if links[0] != "aaaaaaaaaaaaaaaa" || links[1] != "bbbbbbbbbbbbbbbb" {
		t.Fatalf("links = %v", links)
	}
}
