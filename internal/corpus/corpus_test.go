package corpus

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAllLanguagesHaveVocabulary(t *testing.T) {
	for _, lang := range Languages() {
		words, err := Words(lang)
		if err != nil {
			t.Fatalf("Words(%q): %v", lang, err)
		}
		if len(words) < 20 {
			t.Fatalf("language %q has only %d seed words", lang, len(words))
		}
		seen := make(map[string]bool, len(words))
		for _, w := range words {
			if w == "" {
				t.Fatalf("language %q has empty word", lang)
			}
			seen[w] = true
		}
	}
}

func TestSeventeenLanguages(t *testing.T) {
	if got := len(Languages()); got != 17 {
		t.Fatalf("language count = %d, want 17 (as in the paper)", got)
	}
}

func TestWordsUnknownLanguage(t *testing.T) {
	if _, err := Words("xx"); err == nil {
		t.Fatal("Words(xx) succeeded, want error")
	}
}

func TestSampleTextLengthAndVocabulary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	text, err := SampleText(rng, LangEnglish, 100, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(text)
	if len(fields) != 100 {
		t.Fatalf("word count = %d, want 100", len(fields))
	}
	vocab, _ := Words(LangEnglish)
	inVocab := make(map[string]bool, len(vocab))
	for _, w := range vocab {
		inVocab[w] = true
	}
	for _, w := range fields {
		if !inVocab[w] {
			t.Fatalf("word %q not in English vocabulary", w)
		}
	}
}

func TestSampleTextInterleavesExtras(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text, err := SampleText(rng, LangEnglish, 500, []string{"zzzkeyword"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "zzzkeyword") {
		t.Fatal("extras never sampled at p=0.5 over 500 words")
	}
}

func TestSampleTextUnknownLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := SampleText(rng, "xx", 10, nil, 0); err == nil {
		t.Fatal("SampleText(xx) succeeded, want error")
	}
}

func TestAllTopicsHaveKeywordsAndNames(t *testing.T) {
	topics := AllTopics()
	if len(topics) != NumTopics {
		t.Fatalf("topic count = %d, want %d", len(topics), NumTopics)
	}
	for _, topic := range topics {
		kw, err := TopicKeywords(topic)
		if err != nil {
			t.Fatalf("TopicKeywords(%v): %v", topic, err)
		}
		if len(kw) < 10 {
			t.Fatalf("topic %v has only %d keywords", topic, len(kw))
		}
		if strings.HasPrefix(topic.String(), "Topic(") {
			t.Fatalf("topic %d has no name", int(topic))
		}
	}
}

func TestTopicKeywordsUnknown(t *testing.T) {
	if _, err := TopicKeywords(Topic(99)); err == nil {
		t.Fatal("TopicKeywords(99) succeeded, want error")
	}
}

func TestPaperTopicPercentSumsTo100(t *testing.T) {
	sum := 0
	for _, topic := range AllTopics() {
		p, ok := PaperTopicPercent[topic]
		if !ok {
			t.Fatalf("topic %v missing from paper distribution", topic)
		}
		if p <= 0 {
			t.Fatalf("topic %v has non-positive share %d", topic, p)
		}
		sum += p
	}
	if sum != 100 {
		t.Fatalf("paper topic distribution sums to %d, want 100", sum)
	}
}

func TestTopicStringUnknown(t *testing.T) {
	if got := Topic(99).String(); got != "Topic(99)" {
		t.Fatalf("String() = %q", got)
	}
}
