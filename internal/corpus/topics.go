package corpus

import "fmt"

// Topic is one of the 18 content categories from Fig. 2 of the paper.
type Topic int

// The 18 categories in the order the paper's Fig. 2 lists them.
const (
	TopicAdult Topic = iota + 1
	TopicDrugs
	TopicPolitics
	TopicCounterfeit
	TopicWeapons
	TopicFAQsTutorials
	TopicSecurity
	TopicAnonymity
	TopicHacking
	TopicSoftwareHardware
	TopicArt
	TopicServices
	TopicGames
	TopicScience
	TopicDigitalLibraries
	TopicSports
	TopicTechnology
	TopicOther
)

// NumTopics is the number of content categories.
const NumTopics = 18

// AllTopics returns all topics in Fig. 2 order.
func AllTopics() []Topic {
	out := make([]Topic, 0, NumTopics)
	for t := TopicAdult; t <= TopicOther; t++ {
		out = append(out, t)
	}
	return out
}

var topicNames = map[Topic]string{
	TopicAdult:            "Adult",
	TopicDrugs:            "Drugs",
	TopicPolitics:         "Politics",
	TopicCounterfeit:      "Counterfeit",
	TopicWeapons:          "Weapons",
	TopicFAQsTutorials:    "FAQs,Tutorials",
	TopicSecurity:         "Security",
	TopicAnonymity:        "Anonymity",
	TopicHacking:          "Hacking",
	TopicSoftwareHardware: "Software,Hardware",
	TopicArt:              "Art",
	TopicServices:         "Services",
	TopicGames:            "Games",
	TopicScience:          "Science",
	TopicDigitalLibraries: "Digital libs",
	TopicSports:           "Sports",
	TopicTechnology:       "Technology",
	TopicOther:            "Other",
}

// String returns the Fig. 2 label.
func (t Topic) String() string {
	if n, ok := topicNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Topic(%d)", int(t))
}

// PaperTopicPercent is the Fig. 2 distribution (percent of the 1,813
// classified English hidden services). The values sum to 100.
var PaperTopicPercent = map[Topic]int{
	TopicAdult:            17,
	TopicDrugs:            15,
	TopicPolitics:         9,
	TopicCounterfeit:      8,
	TopicWeapons:          4,
	TopicFAQsTutorials:    4,
	TopicSecurity:         5,
	TopicAnonymity:        8,
	TopicHacking:          3,
	TopicSoftwareHardware: 7,
	TopicArt:              2,
	TopicServices:         4,
	TopicGames:            1,
	TopicScience:          1,
	TopicDigitalLibraries: 4,
	TopicSports:           1,
	TopicTechnology:       4,
	TopicOther:            3,
}

// topicKeywords is the per-topic keyword lexicon used both to synthesise
// page bodies and to seed the topic classifier's training set.
var topicKeywords = map[Topic][]string{
	TopicAdult: {
		"adult", "porn", "xxx", "erotic", "nude", "webcam", "escort",
		"fetish", "explicit", "amateur", "video", "gallery", "mature",
		"hardcore", "softcore", "lingerie", "strip", "cams",
	},
	TopicDrugs: {
		"cannabis", "weed", "marijuana", "cocaine", "mdma", "ecstasy",
		"lsd", "heroin", "pills", "gram", "ounce", "shipping", "stealth",
		"vendor", "strain", "psychedelic", "opioid", "dose", "pharmacy",
	},
	TopicPolitics: {
		"freedom", "rights", "corruption", "censorship", "government",
		"leak", "cable", "whistleblower", "repression", "activist",
		"protest", "regime", "election", "propaganda", "revolution",
		"journalist", "dissident", "speech", "democracy",
	},
	TopicCounterfeit: {
		"counterfeit", "replica", "fake", "passport", "license", "card",
		"cvv", "dumps", "stolen", "account", "paypal", "cloned", "bills",
		"banknote", "euro", "dollar", "identity", "document", "fullz",
	},
	TopicWeapons: {
		"gun", "pistol", "rifle", "ammo", "ammunition", "firearm",
		"glock", "caliber", "holster", "knife", "explosive", "tactical",
		"barrel", "trigger", "magazine", "silencer", "armory",
	},
	TopicFAQsTutorials: {
		"faq", "tutorial", "howto", "guide", "beginner", "step",
		"instructions", "learn", "wiki", "manual", "answered", "question",
		"basics", "walkthrough", "lesson", "explained", "setup",
	},
	TopicSecurity: {
		"security", "encryption", "pgp", "gpg", "cipher", "password",
		"authentication", "firewall", "vulnerability", "patch", "audit",
		"malware", "antivirus", "exploit", "hardening", "key", "secure",
	},
	TopicAnonymity: {
		"anonymity", "anonymous", "tor", "onion", "hidden", "privacy",
		"pseudonym", "relay", "circuit", "mixnet", "remailer", "vpn",
		"untraceable", "metadata", "surveillance", "mailbox", "hosting",
	},
	TopicHacking: {
		"hack", "hacking", "exploit", "rootkit", "botnet", "ddos",
		"phishing", "sql", "injection", "shell", "payload", "backdoor",
		"crack", "keylogger", "zeroday", "deface", "bruteforce",
	},
	TopicSoftwareHardware: {
		"software", "hardware", "linux", "windows", "download", "source",
		"compile", "repository", "driver", "kernel", "install", "release",
		"version", "binary", "firmware", "package", "opensource", "cpu",
	},
	TopicArt: {
		"art", "poetry", "painting", "gallery", "artist", "creative",
		"literature", "sculpture", "drawing", "novel", "exhibition",
		"photography", "zine", "prose", "canvas", "sketch",
	},
	TopicServices: {
		"escrow", "laundering", "hitman", "hire", "service", "mixer",
		"tumbler", "exchange", "wallet", "bitcoin", "payment", "fee",
		"guarantee", "delivery", "order", "contract", "broker", "rent",
	},
	TopicGames: {
		"game", "chess", "poker", "lottery", "casino", "dice", "bet",
		"wager", "jackpot", "player", "tournament", "roulette", "cards",
		"blackjack", "winnings", "odds", "gamble",
	},
	TopicScience: {
		"science", "research", "physics", "chemistry", "biology",
		"experiment", "theory", "quantum", "molecule", "genome", "data",
		"hypothesis", "laboratory", "journal", "peer", "study",
	},
	TopicDigitalLibraries: {
		"library", "book", "ebook", "pdf", "archive", "collection",
		"author", "title", "catalog", "read", "chapter", "text",
		"literature", "scan", "mirror", "repository", "index",
	},
	TopicSports: {
		"sport", "football", "soccer", "basketball", "match", "league",
		"team", "score", "season", "player", "coach", "tournament",
		"goal", "racing", "boxing", "fixture",
	},
	TopicTechnology: {
		"technology", "internet", "network", "protocol", "server",
		"router", "bandwidth", "wireless", "cloud", "storage", "mobile",
		"gadget", "electronics", "robotics", "sensor", "startup",
	},
	TopicOther: {
		"misc", "random", "blog", "diary", "personal", "forum", "board",
		"community", "chat", "links", "directory", "page", "notes",
		"thoughts", "journal", "stuff", "various",
	},
}

// TopicKeywords returns the keyword lexicon for a topic.
func TopicKeywords(t Topic) ([]string, error) {
	k, ok := topicKeywords[t]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown topic %v", t)
	}
	return k, nil
}
