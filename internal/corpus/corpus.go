// Package corpus holds the seed vocabularies from which synthetic
// hidden-service pages are generated and on which the language detector
// and topic classifier are trained.
//
// The paper classified real crawled pages with Langdetect (character
// n-grams) and Mallet/uClassify (bag-of-words topic models). We cannot
// redistribute the 2013 crawl, so we synthesise pages from per-language
// function-word vocabularies and per-topic keyword lexicons; the
// classifiers in internal/textclass are trained on the same seed data and
// evaluated on freshly sampled pages (never on the training documents
// themselves).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Language codes follow ISO 639-1 where one exists. The 17 languages are
// exactly those the paper reports finding.
const (
	LangEnglish    = "en"
	LangGerman     = "de"
	LangRussian    = "ru"
	LangPortuguese = "pt"
	LangSpanish    = "es"
	LangFrench     = "fr"
	LangPolish     = "pl"
	LangJapanese   = "ja"
	LangItalian    = "it"
	LangCzech      = "cs"
	LangArabic     = "ar"
	LangDutch      = "nl"
	LangBasque     = "eu"
	LangChinese    = "zh"
	LangHungarian  = "hu"
	LangBantu      = "bnt" // the paper reports "Bantu"; we use Swahili vocabulary
	LangSwedish    = "sv"
)

// Languages lists all supported language codes in a stable order.
func Languages() []string {
	return []string{
		LangEnglish, LangGerman, LangRussian, LangPortuguese, LangSpanish,
		LangFrench, LangPolish, LangJapanese, LangItalian, LangCzech,
		LangArabic, LangDutch, LangBasque, LangChinese, LangHungarian,
		LangBantu, LangSwedish,
	}
}

// languageWords maps language code to a function-word vocabulary. These
// are high-frequency words whose character statistics are distinctive
// enough for n-gram language identification.
var languageWords = map[string][]string{
	LangEnglish: {
		"the", "and", "for", "with", "this", "that", "from", "have", "are",
		"you", "your", "about", "here", "more", "what", "when", "which",
		"will", "can", "all", "our", "their", "has", "was", "were", "not",
		"but", "they", "them", "there", "been", "would", "could", "should",
		"into", "over", "under", "some", "other", "only", "also", "after",
		"before", "because", "between", "through", "where", "while", "very",
	},
	LangGerman: {
		"der", "die", "das", "und", "ist", "nicht", "mit", "ein", "eine",
		"für", "auf", "von", "dem", "den", "des", "sich", "auch", "werden",
		"haben", "einen", "wird", "sind", "oder", "aber", "nach", "wenn",
		"über", "noch", "durch", "können", "müssen", "zwischen", "diese",
		"dieser", "schon", "mehr", "sehr", "ohne", "unter", "gegen", "beim",
	},
	LangRussian: {
		"это", "как", "что", "для", "или", "при", "его", "она", "они",
		"быть", "если", "можно", "только", "также", "после", "через",
		"который", "время", "есть", "нет", "все", "наш", "ваш", "здесь",
		"сайт", "очень", "более", "между", "потом", "когда", "нужно",
		"может", "тоже", "даже", "этот", "того", "чтобы", "была", "были",
	},
	LangPortuguese: {
		"que", "não", "uma", "com", "para", "mais", "como", "mas", "foi",
		"ser", "tem", "seu", "sua", "pelo", "pela", "até", "isso", "ela",
		"entre", "depois", "sem", "mesmo", "aos", "seus", "quem", "nas",
		"esse", "eles", "você", "essa", "num", "nem", "suas", "meu", "às",
		"minha", "numa", "pelos", "elas", "qual", "nós", "lhe", "deles",
	},
	LangSpanish: {
		"que", "los", "las", "una", "por", "con", "para", "como", "más",
		"pero", "sus", "este", "esta", "son", "entre", "cuando", "muy",
		"sin", "sobre", "también", "hasta", "hay", "donde", "quien",
		"desde", "todo", "nos", "durante", "todos", "uno", "les", "contra",
		"otros", "ese", "eso", "ante", "ellos", "esto", "mí", "antes",
	},
	LangFrench: {
		"les", "des", "est", "une", "dans", "qui", "que", "pour", "pas",
		"sur", "avec", "son", "aux", "par", "mais", "nous", "comme", "ont",
		"être", "fait", "plus", "leur", "sans", "peut", "cette", "ces",
		"notre", "vous", "tout", "faire", "elle", "deux", "même", "aussi",
		"bien", "où", "encore", "toujours", "après", "très", "entre",
	},
	LangPolish: {
		"nie", "jest", "się", "czy", "tak", "jak", "ale", "dla", "przez",
		"być", "tylko", "jego", "oraz", "może", "bardzo", "już", "także",
		"który", "która", "które", "kiedy", "gdzie", "wszystko", "jeszcze",
		"między", "został", "można", "przy", "jako", "tego", "tym", "ich",
		"będzie", "były", "taki", "inne", "nawet", "wtedy", "czyli",
	},
	LangJapanese: {
		"これ", "それ", "あれ", "です", "ます", "した", "して", "いる",
		"ある", "ない", "こと", "もの", "ため", "よう", "から", "まで",
		"など", "について", "という", "ですが", "します", "される",
		"できる", "において", "により", "および", "ください", "場合",
	},
	LangItalian: {
		"che", "non", "per", "una", "sono", "con", "del", "della", "più",
		"come", "anche", "questo", "questa", "alla", "nel", "nella", "gli",
		"dei", "delle", "loro", "essere", "hanno", "molto", "quando",
		"dove", "dopo", "senza", "tutti", "tutto", "altri", "quindi",
		"però", "ancora", "fare", "tra", "cosa", "così", "già", "solo",
	},
	LangCzech: {
		"není", "jsou", "jako", "ale", "nebo", "pro", "tak", "být", "což",
		"jen", "také", "když", "této", "který", "která", "které", "podle",
		"však", "mezi", "může", "již", "byl", "byla", "bylo", "jsem",
		"jeho", "její", "naše", "vaše", "ještě", "velmi", "třeba", "tady",
		"tedy", "proto", "přes", "před", "pouze", "každý",
	},
	LangArabic: {
		"في", "من", "على", "هذا", "هذه", "التي", "الذي", "إلى", "عن",
		"مع", "كان", "كانت", "لكن", "بعد", "قبل", "عند", "أن", "إن",
		"كل", "بين", "حتى", "ذلك", "هناك", "أيضا", "غير", "منذ", "حيث",
		"لدى", "خلال", "حول", "دون", "نحن", "أنت", "هما",
	},
	LangDutch: {
		"het", "een", "van", "voor", "met", "aan", "bij", "ook", "naar",
		"uit", "maar", "dit", "dat", "zijn", "niet", "wordt", "worden",
		"heeft", "hebben", "deze", "over", "onder", "tussen", "omdat",
		"alleen", "nog", "wel", "geen", "andere", "veel", "meer", "hier",
		"daar", "dan", "toch", "zelf", "onze", "jullie", "alles",
	},
	LangBasque: {
		"eta", "bat", "dira", "dela", "izan", "zen", "egin", "ere", "baina",
		"hau", "hori", "horrek", "duen", "dute", "gabe", "arte", "bere",
		"zuen", "behar", "beste", "baita", "edo", "oso", "berri", "ondoren",
		"artean", "bezala", "gehiago", "lehen", "asko", "guztiak", "batean",
		"honetan", "izango", "baino", "gero", "nahi", "badira",
	},
	LangChinese: {
		"我们", "你们", "他们", "这个", "那个", "什么", "可以", "没有",
		"知道", "因为", "所以", "但是", "如果", "现在", "时候", "这里",
		"那里", "已经", "还是", "就是", "不是", "一个", "很多", "非常",
		"需要", "使用", "服务", "网站", "信息", "请问",
	},
	LangHungarian: {
		"nem", "hogy", "egy", "van", "meg", "csak", "már", "még", "volt",
		"vagy", "mint", "lehet", "minden", "ezt", "azt", "így", "úgy",
		"nagyon", "mert", "után", "előtt", "között", "amely", "pedig",
		"ennek", "annak", "szerint", "kell", "lesz", "majd", "itt", "ott",
		"aki", "ami", "hanem", "tehát", "illetve", "például",
	},
	LangBantu: {
		"ya", "wa", "na", "kwa", "ni", "katika", "hii", "hiyo", "kama",
		"lakini", "pia", "sana", "tu", "kila", "bila", "baada", "kabla",
		"kati", "watu", "mtu", "kitu", "vitu", "mahali", "wakati", "siku",
		"leo", "kesho", "jana", "habari", "asante", "karibu", "ndiyo",
		"hapana", "kubwa", "ndogo", "nzuri", "mbaya", "hapa",
	},
	LangSwedish: {
		"och", "att", "det", "som", "för", "inte", "med", "den", "har",
		"till", "ett", "man", "var", "men", "och", "efter", "under",
		"mellan", "också", "bara", "mycket", "från", "eller", "när",
		"kan", "ska", "skulle", "finns", "många", "andra", "även",
		"några", "denna", "detta", "vilket", "redan", "sedan", "utan",
	},
}

// Words returns the seed vocabulary for a language code.
func Words(lang string) ([]string, error) {
	w, ok := languageWords[lang]
	if !ok {
		return nil, fmt.Errorf("corpus: unknown language %q", lang)
	}
	return w, nil
}

// SampleText generates a text of n words in the given language by
// sampling the seed vocabulary. Extra words (topic keywords, onion
// addresses…) can be interleaved via extra with probability extraProb.
func SampleText(rng *rand.Rand, lang string, n int, extra []string, extraProb float64) (string, error) {
	words, err := Words(lang)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.Grow(n * 8)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if len(extra) > 0 && rng.Float64() < extraProb {
			sb.WriteString(extra[rng.Intn(len(extra))])
		} else {
			sb.WriteString(words[rng.Intn(len(words))])
		}
	}
	return sb.String(), nil
}
