// Package relay models Tor relays as the directory authorities see them:
// an identity key (hence fingerprint), a network location, self-advertised
// bandwidth, and an uptime history. Relays can restart, become unreachable,
// and — crucially for the paper's Section VII — switch identity keys, which
// is how trackers reposition themselves on the HSDir ring.
package relay

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"torhs/internal/onion"
)

// ID is a stable instance identifier for bookkeeping across fingerprint
// switches. A tracker that rotates keys keeps its ID, which lets tests and
// analyses ask "was this the same physical server?" — exactly the question
// the paper answers via shared nicknames and IP addresses.
type ID int64

// FingerprintChange records one identity-key switch.
type FingerprintChange struct {
	At   time.Time
	From onion.Fingerprint
	To   onion.Fingerprint
}

// Relay is a mutable relay instance. All methods are safe for concurrent
// use.
type Relay struct {
	mu sync.Mutex

	id       ID
	nickname string
	ip       string
	orPort   int

	key         onion.IdentityKey
	fingerprint onion.Fingerprint

	bandwidth int // self-advertised bandwidth, KB/s

	running   bool
	reachable bool
	upSince   time.Time // start of the current continuous run (zero if down)

	fingerprintHistory []FingerprintChange
}

// Config describes a new relay.
type Config struct {
	ID        ID
	Nickname  string
	IP        string
	ORPort    int
	Bandwidth int
}

// New creates a stopped relay with a fresh identity drawn from rng.
func New(cfg Config, rng *rand.Rand) *Relay {
	key := onion.GenerateKey(rng)
	return &Relay{
		id:          cfg.ID,
		nickname:    cfg.Nickname,
		ip:          cfg.IP,
		orPort:      cfg.ORPort,
		key:         key,
		fingerprint: onion.FingerprintFromKey(key),
		bandwidth:   cfg.Bandwidth,
	}
}

// ID returns the stable instance identifier.
func (r *Relay) ID() ID { return r.id }

// Nickname returns the operator-chosen nickname.
func (r *Relay) Nickname() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nickname
}

// SetNickname renames the relay (trackers in the paper shared name parts).
func (r *Relay) SetNickname(n string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nickname = n
}

// IP returns the relay's IP address.
func (r *Relay) IP() string { return r.ip }

// ORPort returns the relay's OR port.
func (r *Relay) ORPort() int { return r.orPort }

// Bandwidth returns the advertised bandwidth in KB/s.
func (r *Relay) Bandwidth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bandwidth
}

// SetBandwidth updates the advertised bandwidth.
func (r *Relay) SetBandwidth(bw int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bandwidth = bw
}

// Running reports whether the relay process is up.
func (r *Relay) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.running
}

// Fingerprint returns the current identity fingerprint.
func (r *Relay) Fingerprint() onion.Fingerprint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fingerprint
}

// Start brings the relay up (running and reachable) at instant now. A
// relay that is already running keeps its original upSince; restart with
// Restart to reset uptime.
func (r *Relay) Start(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		return
	}
	r.running = true
	r.reachable = true
	r.upSince = now
}

// Stop takes the relay down at instant now, resetting its continuous-run
// accounting.
func (r *Relay) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.running = false
	r.reachable = false
	r.upSince = time.Time{}
}

// Restart stops and immediately starts the relay, resetting uptime.
func (r *Relay) Restart(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.running = true
	r.reachable = true
	r.upSince = now
}

// SetReachable toggles whether directory authorities can reach the relay.
// The shadowing attack works by making *active* relays unreachable so that
// shadow relays (same IP, lower bandwidth) take their consensus slots.
// Unreachability does not reset uptime accounting: the process keeps
// running.
func (r *Relay) SetReachable(v bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		r.reachable = v
	}
}

// SwitchFingerprint replaces the relay's identity key with a fresh one
// from rng at instant now, recording the change. In Tor, a new identity is
// a brand-new relay to the authorities, so uptime restarts from now.
func (r *Relay) SwitchFingerprint(rng *rand.Rand, now time.Time) onion.Fingerprint {
	key := onion.GenerateKey(rng)
	return r.adoptKey(key, now)
}

// SwitchFingerprintTo installs a specific identity key (used by trackers
// that mine keys to land near a target descriptor ID) at instant now.
func (r *Relay) SwitchFingerprintTo(key onion.IdentityKey, now time.Time) onion.Fingerprint {
	return r.adoptKey(key, now)
}

// AdoptMinedFingerprint installs an identity whose fingerprint is exactly
// fp, modelling the result of the key-mining a real tracker performs to
// position itself on the ring (brute-forcing RSA keys until the SHA-1
// digest lands just after a target descriptor ID). Uptime restarts, as
// with any identity switch.
func (r *Relay) AdoptMinedFingerprint(fp onion.Fingerprint, now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.fingerprint
	r.key = nil
	r.fingerprint = fp
	r.fingerprintHistory = append(r.fingerprintHistory, FingerprintChange{
		At:   now,
		From: old,
		To:   fp,
	})
	if r.running {
		r.upSince = now
	}
}

func (r *Relay) adoptKey(key onion.IdentityKey, now time.Time) onion.Fingerprint {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.fingerprint
	r.key = key
	r.fingerprint = onion.FingerprintFromKey(key)
	r.fingerprintHistory = append(r.fingerprintHistory, FingerprintChange{
		At:   now,
		From: old,
		To:   r.fingerprint,
	})
	if r.running {
		r.upSince = now
	}
	return r.fingerprint
}

// FingerprintHistory returns a copy of all recorded identity switches.
func (r *Relay) FingerprintHistory() []FingerprintChange {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FingerprintChange, len(r.fingerprintHistory))
	copy(out, r.fingerprintHistory)
	return out
}

// Status is an immutable snapshot of the relay as the authority probes it.
type Status struct {
	ID          ID
	Nickname    string
	IP          string
	ORPort      int
	Fingerprint onion.Fingerprint
	Bandwidth   int
	Running     bool
	Reachable   bool
	// Uptime is the continuous run time under the current identity as of
	// the probe instant (zero when down).
	Uptime time.Duration
}

// StatusAt snapshots the relay at instant now.
func (r *Relay) StatusAt(now time.Time) Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Status{
		ID:          r.id,
		Nickname:    r.nickname,
		IP:          r.ip,
		ORPort:      r.orPort,
		Fingerprint: r.fingerprint,
		Bandwidth:   r.bandwidth,
		Running:     r.running,
		Reachable:   r.reachable,
	}
	if r.running && !r.upSince.IsZero() {
		s.Uptime = now.Sub(r.upSince)
	}
	return s
}

// String implements fmt.Stringer for debugging.
func (r *Relay) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("relay %s(%s:%d %s)", r.nickname, r.ip, r.orPort, r.fingerprint.Hex()[:8])
}
