package relay

import (
	"math/rand"
	"testing"
	"time"
)

func newTestRelay(t *testing.T) (*Relay, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	r := New(Config{ID: 1, Nickname: "test", IP: "10.0.0.1", ORPort: 9001, Bandwidth: 500}, rng)
	return r, rng
}

func at(h int) time.Time {
	return time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func TestNewRelayIsDown(t *testing.T) {
	r, _ := newTestRelay(t)
	s := r.StatusAt(at(0))
	if s.Running || s.Reachable {
		t.Fatal("new relay reports running/reachable")
	}
	if s.Uptime != 0 {
		t.Fatalf("new relay uptime = %v, want 0", s.Uptime)
	}
}

func TestStartAccruesUptime(t *testing.T) {
	r, _ := newTestRelay(t)
	r.Start(at(0))
	s := r.StatusAt(at(26))
	if !s.Running || !s.Reachable {
		t.Fatal("started relay not running/reachable")
	}
	if want := 26 * time.Hour; s.Uptime != want {
		t.Fatalf("uptime = %v, want %v", s.Uptime, want)
	}
}

func TestDoubleStartKeepsUpSince(t *testing.T) {
	r, _ := newTestRelay(t)
	r.Start(at(0))
	r.Start(at(10)) // no-op
	if got := r.StatusAt(at(20)).Uptime; got != 20*time.Hour {
		t.Fatalf("uptime = %v, want 20h", got)
	}
}

func TestStopResetsUptime(t *testing.T) {
	r, _ := newTestRelay(t)
	r.Start(at(0))
	r.Stop()
	if got := r.StatusAt(at(30)).Uptime; got != 0 {
		t.Fatalf("uptime after stop = %v, want 0", got)
	}
}

func TestRestartResetsUptime(t *testing.T) {
	r, _ := newTestRelay(t)
	r.Start(at(0))
	r.Restart(at(20))
	if got := r.StatusAt(at(30)).Uptime; got != 10*time.Hour {
		t.Fatalf("uptime after restart = %v, want 10h", got)
	}
}

func TestSetReachableDoesNotResetUptime(t *testing.T) {
	r, _ := newTestRelay(t)
	r.Start(at(0))
	r.SetReachable(false)
	s := r.StatusAt(at(30))
	if s.Reachable {
		t.Fatal("relay still reachable")
	}
	if !s.Running {
		t.Fatal("unreachable relay stopped running")
	}
	if s.Uptime != 30*time.Hour {
		t.Fatalf("uptime = %v, want 30h", s.Uptime)
	}
	r.SetReachable(true)
	if !r.StatusAt(at(31)).Reachable {
		t.Fatal("relay not reachable after re-enable")
	}
}

func TestSetReachableIgnoredWhenDown(t *testing.T) {
	r, _ := newTestRelay(t)
	r.SetReachable(true)
	if r.StatusAt(at(0)).Reachable {
		t.Fatal("stopped relay became reachable")
	}
}

func TestSwitchFingerprintChangesIdentityAndResetsUptime(t *testing.T) {
	r, rng := newTestRelay(t)
	r.Start(at(0))
	old := r.Fingerprint()
	nw := r.SwitchFingerprint(rng, at(30))
	if nw == old {
		t.Fatal("fingerprint unchanged after switch")
	}
	if got := r.Fingerprint(); got != nw {
		t.Fatal("Fingerprint() does not reflect switch")
	}
	if got := r.StatusAt(at(40)).Uptime; got != 10*time.Hour {
		t.Fatalf("uptime after switch = %v, want 10h", got)
	}
	hist := r.FingerprintHistory()
	if len(hist) != 1 {
		t.Fatalf("history length = %d, want 1", len(hist))
	}
	if hist[0].From != old || hist[0].To != nw || !hist[0].At.Equal(at(30)) {
		t.Fatal("history record wrong")
	}
}

func TestSwitchFingerprintWhileDownDoesNotStartClock(t *testing.T) {
	r, rng := newTestRelay(t)
	r.SwitchFingerprint(rng, at(5))
	if got := r.StatusAt(at(10)).Uptime; got != 0 {
		t.Fatalf("uptime = %v, want 0 for stopped relay", got)
	}
}

func TestFingerprintHistoryIsACopy(t *testing.T) {
	r, rng := newTestRelay(t)
	r.SwitchFingerprint(rng, at(1))
	h := r.FingerprintHistory()
	h[0].At = at(99)
	if r.FingerprintHistory()[0].At.Equal(at(99)) {
		t.Fatal("history leaked internal slice")
	}
}

func TestSetNicknameAndBandwidth(t *testing.T) {
	r, _ := newTestRelay(t)
	r.SetNickname("tracker01")
	r.SetBandwidth(999)
	if r.Nickname() != "tracker01" || r.Bandwidth() != 999 {
		t.Fatal("setters did not take effect")
	}
}
