// Package geo provides a synthetic IP-geolocation database. The paper's
// Fig. 3 plots the geographic locations of a Goldnet C&C's deanonymised
// clients; since real client IPs are unobtainable, clients draw addresses
// from a country-prefix table with a botnet-victim-like country mix, and
// lookups map them back.
package geo

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// CountryShare is one country's share of the client population.
type CountryShare struct {
	// Code is the ISO 3166-1 alpha-2 country code.
	Code string
	// Weight is the relative share (need not be normalised).
	Weight float64
}

// DefaultBotnetMix is a victim-country mix typical of 2012/13 botnet
// telemetry (heavy in large broadband populations).
func DefaultBotnetMix() []CountryShare {
	return []CountryShare{
		{Code: "US", Weight: 16}, {Code: "BR", Weight: 10}, {Code: "IN", Weight: 9},
		{Code: "RU", Weight: 8}, {Code: "DE", Weight: 6}, {Code: "TR", Weight: 6},
		{Code: "ID", Weight: 5}, {Code: "VN", Weight: 5}, {Code: "MX", Weight: 4},
		{Code: "IT", Weight: 4}, {Code: "FR", Weight: 4}, {Code: "GB", Weight: 3},
		{Code: "PL", Weight: 3}, {Code: "ES", Weight: 3}, {Code: "UA", Weight: 3},
		{Code: "TH", Weight: 2}, {Code: "AR", Weight: 2}, {Code: "CN", Weight: 2},
		{Code: "JP", Weight: 2}, {Code: "NL", Weight: 1}, {Code: "SE", Weight: 1},
		{Code: "CA", Weight: 1},
	}
}

// DB allocates client IPs by country and resolves them back.
type DB struct {
	shares   []CountryShare
	total    float64
	prefixes map[string]int // country -> first octet of its /8
	byOctet  map[int]string
}

// NewDB builds a database over the given country mix. Each country is
// assigned a synthetic /8; allocation draws countries by weight.
func NewDB(shares []CountryShare) (*DB, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("geo: empty country mix")
	}
	db := &DB{
		shares:   make([]CountryShare, len(shares)),
		prefixes: make(map[string]int, len(shares)),
		byOctet:  make(map[int]string, len(shares)),
	}
	copy(db.shares, shares)
	sort.Slice(db.shares, func(i, j int) bool { return db.shares[i].Code < db.shares[j].Code })
	octet := 11 // start in public-ish space, one /8 per country
	for _, s := range db.shares {
		if s.Weight <= 0 {
			return nil, fmt.Errorf("geo: country %s has non-positive weight", s.Code)
		}
		if _, dup := db.prefixes[s.Code]; dup {
			return nil, fmt.Errorf("geo: duplicate country %s", s.Code)
		}
		db.prefixes[s.Code] = octet
		db.byOctet[octet] = s.Code
		db.total += s.Weight
		octet++
	}
	return db, nil
}

// AllocateIP draws a client IP: a country sampled by weight, an address
// within its /8.
func (db *DB) AllocateIP(rng *rand.Rand) (ip, country string) {
	r := rng.Float64() * db.total
	acc := 0.0
	country = db.shares[len(db.shares)-1].Code
	for _, s := range db.shares {
		acc += s.Weight
		if r < acc {
			country = s.Code
			break
		}
	}
	o1 := db.prefixes[country]
	return fmt.Sprintf("%d.%d.%d.%d", o1, rng.Intn(256), rng.Intn(256), 1+rng.Intn(254)), country
}

// Lookup resolves an IP to its country code.
func (db *DB) Lookup(ip string) (string, error) {
	dot := strings.IndexByte(ip, '.')
	if dot <= 0 {
		return "", fmt.Errorf("geo: malformed IP %q", ip)
	}
	var o1 int
	for _, c := range ip[:dot] {
		if c < '0' || c > '9' {
			return "", fmt.Errorf("geo: malformed IP %q", ip)
		}
		o1 = o1*10 + int(c-'0')
	}
	country, ok := db.byOctet[o1]
	if !ok {
		return "", fmt.Errorf("geo: IP %q outside allocated space", ip)
	}
	return country, nil
}

// Countries returns the country codes in the database, sorted.
func (db *DB) Countries() []string {
	out := make([]string, 0, len(db.shares))
	for _, s := range db.shares {
		out = append(out, s.Code)
	}
	return out
}
