package geo

import (
	"math/rand"
	"testing"
)

func TestNewDBRejectsBadInput(t *testing.T) {
	if _, err := NewDB(nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := NewDB([]CountryShare{{Code: "US", Weight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := NewDB([]CountryShare{{Code: "US", Weight: 1}, {Code: "US", Weight: 2}}); err == nil {
		t.Fatal("duplicate country accepted")
	}
}

func TestAllocateLookupRoundTrip(t *testing.T) {
	db, err := NewDB(DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		ip, country := db.AllocateIP(rng)
		got, err := db.Lookup(ip)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", ip, err)
		}
		if got != country {
			t.Fatalf("Lookup(%s) = %s, want %s", ip, got, country)
		}
	}
}

func TestAllocationFollowsWeights(t *testing.T) {
	db, err := NewDB([]CountryShare{{Code: "AA", Weight: 9}, {Code: "BB", Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		_, c := db.AllocateIP(rng)
		counts[c]++
	}
	frac := float64(counts["AA"]) / 5000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("AA share = %.3f, want ~0.9", frac)
	}
}

func TestLookupErrors(t *testing.T) {
	db, err := NewDB(DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	for _, ip := range []string{"", "notanip", "999.1.1.1", ".1.2.3", "5.1.1.1"} {
		if _, err := db.Lookup(ip); err == nil {
			t.Fatalf("Lookup(%q) succeeded, want error", ip)
		}
	}
}

func TestCountriesSortedAndComplete(t *testing.T) {
	mix := DefaultBotnetMix()
	db, err := NewDB(mix)
	if err != nil {
		t.Fatal(err)
	}
	got := db.Countries()
	if len(got) != len(mix) {
		t.Fatalf("countries = %d, want %d", len(got), len(mix))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("countries not sorted")
		}
	}
}
