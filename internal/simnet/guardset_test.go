package simnet

import (
	"math/rand"
	"testing"

	"torhs/internal/geo"
	"torhs/internal/onion"
	"torhs/internal/relaynet"
)

func TestGuardPoolUniformSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fps := make([]onion.Fingerprint, 10)
	for i := range fps {
		fps[i] = onion.RandomFingerprint(rng)
	}
	pool := newGuardPool(fps, nil)
	counts := map[onion.Fingerprint]int{}
	for i := 0; i < 10000; i++ {
		counts[pool.sample(rng)]++
	}
	for fp, n := range counts {
		if n < 700 || n > 1300 {
			t.Fatalf("uniform pool skewed: %s got %d of 10000", fp.Hex()[:8], n)
		}
	}
}

func TestGuardPoolWeightedSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fps := []onion.Fingerprint{onion.RandomFingerprint(rng), onion.RandomFingerprint(rng)}
	pool := newGuardPool(fps, []int{900, 100})
	counts := map[onion.Fingerprint]int{}
	for i := 0; i < 10000; i++ {
		counts[pool.sample(rng)]++
	}
	frac := float64(counts[fps[0]]) / 10000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("heavy guard share = %.3f, want ~0.9", frac)
	}
}

func TestGuardPoolZeroWeightsClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fps := []onion.Fingerprint{onion.RandomFingerprint(rng), onion.RandomFingerprint(rng)}
	pool := newGuardPool(fps, []int{0, 0})
	seen := map[onion.Fingerprint]bool{}
	for i := 0; i < 100; i++ {
		seen[pool.sample(rng)] = true
	}
	if len(seen) != 2 {
		t.Fatal("zero-weight guards never sampled")
	}
}

func TestWeightedGuardsBiasClientSelection(t *testing.T) {
	fleet := relaynet.DefaultFleetConfig(4)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := h.All()[0]
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(4)
	cfg.Clients = 3000
	cfg.WeightedGuards = true
	net, err := NewNetwork(doc, db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Tally guard usage over one circuit per client.
	now := doc.ValidAfter
	usage := map[onion.Fingerprint]int{}
	for _, c := range net.Clients() {
		usage[c.gs.pickPool(net.pool, net.rng, now)]++
	}

	// Selections must correlate with bandwidth: the top-bandwidth
	// quartile of guards should carry far more than the bottom quartile.
	guards := doc.Guards()
	type gw struct {
		fp onion.Fingerprint
		bw int
	}
	ranked := make([]gw, 0, len(guards))
	for _, fp := range guards {
		e, _ := doc.Lookup(fp)
		ranked = append(ranked, gw{fp: fp, bw: e.Bandwidth})
	}
	for i := 0; i < len(ranked); i++ {
		for j := i + 1; j < len(ranked); j++ {
			if ranked[j].bw > ranked[i].bw {
				ranked[i], ranked[j] = ranked[j], ranked[i]
			}
		}
	}
	q := len(ranked) / 4
	top, bottom := 0, 0
	for i := 0; i < q; i++ {
		top += usage[ranked[i].fp]
		bottom += usage[ranked[len(ranked)-1-i].fp]
	}
	if top <= 2*bottom {
		t.Fatalf("weighted selection not biased: top quartile %d, bottom %d", top, bottom)
	}
}
