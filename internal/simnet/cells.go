package simnet

import (
	"math/rand"
)

// This file models traffic at the cell level. Tor moves data in
// fixed-size 512-byte cells; the attack of [8] (adapted to clients in the
// paper's Section VI) marks a descriptor response with a distinctive
// burst pattern of padding cells that an attacker-controlled guard can
// recognise in the cell counts of a circuit, without decrypting anything.

// CellTrace is the number of cells observed on one circuit per fixed time
// bin, as counted by the entry guard.
type CellTrace []int

// signatureBurst is the marker burst size. Ordinary descriptor fetches
// move a handful of cells per bin; a 50-cell burst never occurs
// organically (cf. the 50-padding-cell signature of [8]).
const signatureBurst = 50

// AttackSignature returns the injected marker pattern: two large bursts
// separated by a one-bin gap, which makes accidental matches on bulk
// traffic even less likely.
func AttackSignature() CellTrace {
	return CellTrace{signatureBurst, 0, signatureBurst}
}

// NormalFetchTrace synthesises the guard-observed cell counts of an
// ordinary descriptor fetch: a few small request/response bins.
func NormalFetchTrace(rng *rand.Rand) CellTrace {
	bins := 4 + rng.Intn(5)
	trace := make(CellTrace, bins)
	for i := range trace {
		trace[i] = 1 + rng.Intn(8)
	}
	return trace
}

// NormalBulkTrace synthesises a busier circuit (page loads) — the hard
// negative for the detector.
func NormalBulkTrace(rng *rand.Rand) CellTrace {
	bins := 6 + rng.Intn(8)
	trace := make(CellTrace, bins)
	for i := range trace {
		trace[i] = 2 + rng.Intn(30)
	}
	return trace
}

// InjectSignature appends the marker pattern to a trace, as the malicious
// directory does when answering the descriptor request.
func InjectSignature(trace CellTrace) CellTrace {
	out := make(CellTrace, 0, len(trace)+3)
	out = append(out, trace...)
	out = append(out, AttackSignature()...)
	return out
}

// DetectSignature reports whether the marker pattern occurs in the trace:
// two bins of at least the burst size separated by exactly one quiet bin.
func DetectSignature(trace CellTrace) bool {
	for i := 0; i+2 < len(trace); i++ {
		if trace[i] >= signatureBurst &&
			trace[i+1] < signatureBurst/4 &&
			trace[i+2] >= signatureBurst {
			return true
		}
	}
	return false
}

// SignatureFalsePositiveRate estimates how often the detector fires on n
// normal traces (mixing fetch and bulk traffic).
func SignatureFalsePositiveRate(rng *rand.Rand, n int) float64 {
	if n <= 0 {
		return 0
	}
	fp := 0
	for i := 0; i < n; i++ {
		var trace CellTrace
		if i%2 == 0 {
			trace = NormalFetchTrace(rng)
		} else {
			trace = NormalBulkTrace(rng)
		}
		if DetectSignature(trace) {
			fp++
		}
	}
	return float64(fp) / float64(n)
}
