package simnet

import (
	"math/rand"
	"sort"
	"time"

	"torhs/internal/onion"
)

// guardPool is the set of Guard-flagged relays clients choose from,
// optionally weighted by consensus bandwidth (as the real client does).
type guardPool struct {
	fps []onion.Fingerprint
	// cum holds cumulative bandwidth weights; nil means uniform.
	cum []int64
}

func newGuardPool(fps []onion.Fingerprint, weights []int) *guardPool {
	p := &guardPool{fps: fps}
	if len(weights) == len(fps) && len(fps) > 0 {
		p.cum = make([]int64, len(fps))
		var acc int64
		for i, w := range weights {
			if w < 1 {
				w = 1
			}
			acc += int64(w)
			p.cum[i] = acc
		}
	}
	return p
}

func (p *guardPool) sample(rng *rand.Rand) onion.Fingerprint {
	if p.cum == nil {
		return p.fps[rng.Intn(len(p.fps))]
	}
	total := p.cum[len(p.cum)-1]
	r := rng.Int63n(total)
	i := sort.Search(len(p.cum), func(i int) bool { return p.cum[i] > r })
	return p.fps[i]
}

// guardSet is the entry-guard state shared by clients and hidden-service
// hosts: three guards, each rotated after a uniform 30–60 day lifetime,
// one picked per circuit.
type guardSet struct {
	guards [3]onion.Fingerprint
	expiry [3]time.Time
}

func (g *guardSet) refreshPool(pool *guardPool, rng *rand.Rand, now time.Time) {
	g.refreshPoolUntil(pool, rng, now, now)
}

// refreshPoolUntil rotates every guard that is (or will be by horizon)
// expired. Refreshing up to a horizon lets DriveWindow guarantee that no
// guard expires inside a driven window, so concurrent fetches only read
// guard state.
func (g *guardSet) refreshPoolUntil(pool *guardPool, rng *rand.Rand, now, horizon time.Time) {
	for i := range g.guards {
		if g.expiry[i].IsZero() || horizon.After(g.expiry[i]) {
			g.guards[i] = pool.sample(rng)
			g.expiry[i] = now.Add(guardLifetime(rng))
		}
	}
}

func (g *guardSet) pickPool(pool *guardPool, rng *rand.Rand, now time.Time) onion.Fingerprint {
	g.refreshPool(pool, rng, now)
	return g.guards[rng.Intn(len(g.guards))]
}

func (g *guardSet) pick(pool []onion.Fingerprint, rng *rand.Rand, now time.Time) onion.Fingerprint {
	return g.pickPool(&guardPool{fps: pool}, rng, now)
}
