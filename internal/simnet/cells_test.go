package simnet

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestSignatureAlwaysDetectedAfterInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		trace := InjectSignature(NormalFetchTrace(rng))
		if !DetectSignature(trace) {
			t.Fatalf("injected signature missed in trace %v", trace)
		}
	}
}

func TestSignatureNotInNormalTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if fp := SignatureFalsePositiveRate(rng, 20000); fp > 0.001 {
		t.Fatalf("false positive rate = %v, want ~0", fp)
	}
}

func TestSignatureFalsePositiveRateDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if fp := SignatureFalsePositiveRate(rng, 0); fp != 0 {
		t.Fatalf("fp(0 samples) = %v", fp)
	}
}

func TestDetectSignatureNeedsBothBursts(t *testing.T) {
	cases := []struct {
		name  string
		trace CellTrace
		want  bool
	}{
		{"exact pattern", CellTrace{50, 0, 50}, true},
		{"embedded", CellTrace{3, 4, 50, 2, 55, 1}, true},
		{"single burst", CellTrace{50, 0, 3}, false},
		{"no gap", CellTrace{50, 50, 50}, false},
		{"too short", CellTrace{50, 0}, false},
		{"empty", nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := DetectSignature(tc.trace); got != tc.want {
				t.Fatalf("DetectSignature(%v) = %v, want %v", tc.trace, got, tc.want)
			}
		})
	}
}

func TestInjectSignatureDoesNotMutateInput(t *testing.T) {
	base := CellTrace{1, 2, 3}
	out := InjectSignature(base)
	if len(base) != 3 {
		t.Fatal("input mutated")
	}
	if len(out) != 6 {
		t.Fatalf("output length = %d, want 6", len(out))
	}
}

func TestCellLevelAttackEndToEnd(t *testing.T) {
	net, pop, now := buildNetwork(t, 30)
	net.PublishAll(pop, now)

	target := pop.Services[0]
	dirs := net.Ring().ResponsibleForServiceAt(target.PermID, now)
	attack := NewSignatureAttack(target.PermID, dirs, net.GuardPool())
	attack.EnableCellLevel(30)

	net.DriveWindow(context.Background(), pop, now.Add(time.Hour), 2*time.Hour, attack.Observe)

	if attack.SignaturesSent() == 0 {
		t.Fatal("no signatures sent")
	}
	misses, fps := attack.CellStats()
	// The burst pattern is unambiguous: no misses, and the watched
	// unmarked traffic produces (essentially) no false positives.
	if misses != 0 {
		t.Fatalf("cell detector missed %d marked circuits", misses)
	}
	if fps > attack.SignaturesSent()/100+1 {
		t.Fatalf("false positives = %d", fps)
	}
	if len(attack.Detections()) != attack.SignaturesSent() {
		t.Fatalf("detections %d != signatures %d under full guard control",
			len(attack.Detections()), attack.SignaturesSent())
	}
}
