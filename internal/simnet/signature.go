package simnet

import (
	"math/rand"
	"sync"
	"time"

	"torhs/internal/onion"
)

// SignatureAttack implements the Section VI opportunistic client
// deanonymisation: a malicious responsible HSDir wraps descriptor
// responses for a target service in a recognisable traffic signature;
// whenever the requesting client's entry guard happens to be
// attacker-controlled, the guard sees the signature and learns the
// client's IP address.
type SignatureAttack struct {
	mu sync.Mutex

	target         onion.PermanentID
	attackerDirs   map[onion.Fingerprint]bool
	attackerGuards map[onion.Fingerprint]bool

	signaturesSent int
	detections     []Detection
	// countryHist caches the per-country detection tally, built on first
	// CountryHistogram call and invalidated whenever a detection is
	// appended (the History.FirstAppearance pattern), so renderers that
	// query the histogram repeatedly never rescan the detection list.
	countryHist map[string]int

	// Cell-level mode: instead of flagging marked responses directly,
	// the guard counts cells per circuit and runs the burst detector on
	// the trace (the mechanism of [8]).
	cellRNG        *rand.Rand
	cellMisses     int
	falsePositives int
}

// Detection is one deanonymised client observation.
type Detection struct {
	ClientID int
	IP       string
	Country  string
	At       time.Time
	Guard    onion.Fingerprint
}

// NewSignatureAttack targets the service with permanent ID target, with
// the attacker controlling the given directories and guards.
func NewSignatureAttack(target onion.PermanentID, dirs, guards []onion.Fingerprint) *SignatureAttack {
	a := &SignatureAttack{
		target:         target,
		attackerDirs:   make(map[onion.Fingerprint]bool, len(dirs)),
		attackerGuards: make(map[onion.Fingerprint]bool, len(guards)),
	}
	for _, d := range dirs {
		a.attackerDirs[d] = true
	}
	for _, g := range guards {
		a.attackerGuards[g] = true
	}
	return a
}

// EnableCellLevel switches the attack to cell-trace detection: attacker
// guards synthesise the cell counts they would observe for each circuit
// and run the burst detector, instead of being told directly which
// responses were marked. Deterministic in seed.
func (a *SignatureAttack) EnableCellLevel(seed int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cellRNG = rand.New(rand.NewSource(seed))
}

// CellStats reports cell-level counters: marked responses the detector
// missed and unmarked circuits it flagged.
func (a *SignatureAttack) CellStats() (misses, falsePositives int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cellMisses, a.falsePositives
}

// Observe inspects one fetch event. If the fetch is for the target's
// descriptor, hits an attacker directory, and transits an attacker guard,
// the client is deanonymised.
func (a *SignatureAttack) Observe(ev FetchEvent) {
	if !a.attackerDirs[ev.Dir] {
		// In cell-level mode, attacker guards still watch every circuit
		// through them; unmarked traffic measures the false-positive
		// rate.
		a.mu.Lock()
		if a.cellRNG != nil && a.attackerGuards[ev.Guard] {
			if DetectSignature(NormalFetchTrace(a.cellRNG)) {
				a.falsePositives++
			}
		}
		a.mu.Unlock()
		return
	}
	ids := onion.DescriptorIDs(a.target, ev.At)
	match := false
	for _, id := range ids {
		if id == ev.DescID {
			match = true
			break
		}
	}
	if !match {
		// Clients with skewed clocks may request yesterday's or
		// tomorrow's descriptor ID; check the adjacent periods too, as
		// the attacker recognises the service's IDs over a window.
		for _, off := range []time.Duration{-24 * time.Hour, 24 * time.Hour} {
			for _, id := range onion.DescriptorIDs(a.target, ev.At.Add(off)) {
				if id == ev.DescID {
					match = true
					break
				}
			}
		}
	}
	if !match {
		return
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	a.signaturesSent++
	if !a.attackerGuards[ev.Guard] {
		return
	}
	if a.cellRNG != nil {
		// The guard sees the marked circuit's cell trace and must
		// recover the burst pattern from it.
		trace := InjectSignature(NormalFetchTrace(a.cellRNG))
		if !DetectSignature(trace) {
			a.cellMisses++
			return
		}
	}
	a.detections = append(a.detections, Detection{
		ClientID: ev.Client.ID,
		IP:       ev.Client.IP,
		Country:  ev.Client.Country,
		At:       ev.At,
		Guard:    ev.Guard,
	})
	a.countryHist = nil // invalidate the cached histogram
}

// SignaturesSent returns how many signature-wrapped responses left
// attacker directories.
func (a *SignatureAttack) SignaturesSent() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.signaturesSent
}

// Detections returns a copy of all deanonymised client observations.
func (a *SignatureAttack) Detections() []Detection {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Detection, len(a.detections))
	copy(out, a.detections)
	return out
}

// CountryHistogram aggregates detections by country — the data behind the
// paper's Fig. 3 world map. The tally is cached across calls and rebuilt
// only after new detections; the returned map is a copy the caller may
// keep or mutate.
func (a *SignatureAttack) CountryHistogram() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.countryHist == nil {
		a.countryHist = make(map[string]int)
		for _, d := range a.detections {
			a.countryHist[d.Country]++
		}
	}
	out := make(map[string]int, len(a.countryHist))
	for c, n := range a.countryHist {
		out[c] = n
	}
	return out
}

// UniqueClients returns how many distinct clients were deanonymised.
func (a *SignatureAttack) UniqueClients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[int]bool, len(a.detections))
	for _, d := range a.detections {
		seen[d.ClientID] = true
	}
	return len(seen)
}
