package simnet

import (
	"math/rand"
	"testing"
	"time"

	"torhs/internal/onion"
)

// TestCountryHistogramCachedAndInvalidated exercises the cached Fig. 3
// histogram: repeated queries return equal (copied) maps, appending a
// detection invalidates the cache, and mutating a returned map never
// corrupts later queries.
func TestCountryHistogramCachedAndInvalidated(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	target := onion.GenerateKey(rng).PermanentID()
	dir := onion.RandomFingerprint(rng)
	guard := onion.RandomFingerprint(rng)
	a := NewSignatureAttack(target, []onion.Fingerprint{dir}, []onion.Fingerprint{guard})

	at := time.Date(2013, 2, 4, 12, 0, 0, 0, time.UTC)
	hit := func(clientID int, country string) FetchEvent {
		return FetchEvent{
			Client: &Client{ID: clientID, IP: "198.51.100.7", Country: country},
			Guard:  guard,
			Dir:    dir,
			DescID: onion.DescriptorIDs(target, at)[0],
			Found:  true,
			At:     at,
		}
	}

	a.Observe(hit(1, "DE"))
	h1 := a.CountryHistogram()
	if h1["DE"] != 1 || len(h1) != 1 {
		t.Fatalf("histogram after first detection = %v", h1)
	}
	// Mutating the returned copy must not poison the cache.
	h1["DE"] = 99
	if h := a.CountryHistogram(); h["DE"] != 1 {
		t.Fatalf("cache corrupted by caller mutation: %v", h)
	}

	// A new detection must invalidate the cached tally.
	a.Observe(hit(2, "DE"))
	a.Observe(hit(3, "US"))
	h2 := a.CountryHistogram()
	if h2["DE"] != 2 || h2["US"] != 1 {
		t.Fatalf("histogram after invalidation = %v", h2)
	}
}
