package simnet

import (
	"context"
	"runtime"
	"testing"
	"time"

	"torhs/internal/geo"
	"torhs/internal/hspop"
	"torhs/internal/relaynet"
)

// driveOnce builds a fresh network at the given worker count, drives one
// window, and returns the stats plus the observed event stream.
func driveOnce(t *testing.T, seed int64, workers int) (TrafficStats, []FetchEvent) {
	t.Helper()
	fleet := relaynet.DefaultFleetConfig(seed)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := h.All()[0]
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.Clients = 300
	cfg.Workers = workers
	net, err := NewNetwork(doc, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	now := doc.ValidAfter
	net.PublishAll(pop, now)

	var events []FetchEvent
	stats, _ := net.DriveWindow(context.Background(), pop, now, 2*time.Hour, func(ev FetchEvent) {
		events = append(events, ev)
	})
	return stats, events
}

// TestDriveWindowIdenticalAcrossWorkerCounts asserts the three-phase
// drive (sequential plan, concurrent fetch, ordered replay) delivers the
// same stats and the same observer event stream at every worker count.
func TestDriveWindowIdenticalAcrossWorkerCounts(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	baseStats, baseEvents := driveOnce(t, 21, 1)
	if baseStats.TotalRequests == 0 {
		t.Fatal("no traffic driven")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		stats, events := driveOnce(t, 21, workers)
		if stats != baseStats {
			t.Fatalf("stats differ at workers=%d: %+v vs %+v", workers, stats, baseStats)
		}
		if len(events) != len(baseEvents) {
			t.Fatalf("event count differs at workers=%d: %d vs %d", workers, len(events), len(baseEvents))
		}
		for i := range events {
			a, b := events[i], baseEvents[i]
			// Client pointers differ across networks; compare by ID.
			if a.Client.ID != b.Client.ID || a.Guard != b.Guard || a.Dir != b.Dir ||
				a.DescID != b.DescID || a.Found != b.Found || a.Attempts != b.Attempts ||
				!a.At.Equal(b.At) {
				t.Fatalf("event %d differs at workers=%d:\n%+v\nvs\n%+v", i, workers, a, b)
			}
		}
	}
}
