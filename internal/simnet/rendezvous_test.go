package simnet

import (
	"testing"
	"time"

	"torhs/internal/onion"
)

func TestPublishMaterialisesHostsWithIntroPoints(t *testing.T) {
	net, pop, now := buildNetwork(t, 20)
	net.PublishAll(pop, now)

	svc := pop.WithDescriptor()[0]
	host, ok := net.Host(svc.Address)
	if !ok {
		t.Fatal("no host materialised")
	}
	if host.IP == "" || host.Country == "" {
		t.Fatal("host without location")
	}
	if len(host.IntroPoints()) != 3 {
		t.Fatalf("intro points = %d, want 3", len(host.IntroPoints()))
	}
	// Descriptors carry the intro points.
	ids := onion.DescriptorIDs(svc.PermID, now)
	dirFP := net.Ring().Responsible(ids[0], onion.SpreadPerReplica)[0]
	dir, _ := net.Directory(dirFP)
	desc, found := dir.Fetch(ids[0], now)
	if !found {
		t.Fatal("descriptor missing")
	}
	if len(desc.IntroPoints) != 3 {
		t.Fatalf("descriptor intro points = %d, want 3", len(desc.IntroPoints))
	}
}

func TestHostStableAcrossRepublish(t *testing.T) {
	net, pop, now := buildNetwork(t, 21)
	svc := pop.WithDescriptor()[0]
	net.PublishService(svc, now)
	h1, _ := net.Host(svc.Address)
	net.PublishService(svc, now.Add(24*time.Hour))
	h2, _ := net.Host(svc.Address)
	if h1 != h2 {
		t.Fatal("republish created a new host")
	}
}

func TestConnectEndToEnd(t *testing.T) {
	net, pop, now := buildNetwork(t, 22)
	net.PublishAll(pop, now)
	svc := pop.WithDescriptor()[0]

	var c *Client
	for _, cand := range net.Clients() {
		if cand.ClockSkew == 0 {
			c = cand
			break
		}
	}
	if c == nil {
		t.Fatal("no skew-free client")
	}

	res, err := net.Connect(c, svc.Address, now.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("descriptor not found during connect")
	}
	host, _ := net.Host(svc.Address)

	// The intro point must come from the host's advertised set.
	okIntro := false
	for _, ip := range host.IntroPoints() {
		if ip == res.IntroPoint {
			okIntro = true
		}
	}
	if !okIntro {
		t.Fatal("intro point not from host's set")
	}
	// Both circuit halves end at the same rendezvous point.
	if res.ClientCircuit.Last != res.RendezvousPoint ||
		res.ServiceCircuit.Last != res.RendezvousPoint {
		t.Fatal("circuits do not join at the rendezvous point")
	}
	// Guards anchor each half and belong to the respective guard sets.
	cg := c.Guards()
	if res.ClientCircuit.Guard != cg[0] && res.ClientCircuit.Guard != cg[1] && res.ClientCircuit.Guard != cg[2] {
		t.Fatal("client circuit guard not from client guard set")
	}
	hg := host.Guards()
	if res.ServiceCircuit.Guard != hg[0] && res.ServiceCircuit.Guard != hg[1] && res.ServiceCircuit.Guard != hg[2] {
		t.Fatal("service circuit guard not from host guard set")
	}
}

func TestConnectUnknownHost(t *testing.T) {
	net, pop, now := buildNetwork(t, 23)
	net.PublishAll(pop, now)
	c := net.Clients()[0]
	if _, err := net.Connect(c, "aaaaaaaaaaaaaaaa", now); err == nil {
		t.Fatal("connect to unknown host succeeded")
	}
}

func TestServiceSignatureAttackTargeted(t *testing.T) {
	net, pop, now := buildNetwork(t, 24)
	target := pop.WithDescriptor()[0]

	// The attacker controls the target's responsible directories and the
	// whole guard pool: the upload must be detected.
	dirs := net.Ring().ResponsibleForServiceAt(target.PermID, now)
	attack := NewServiceSignatureAttack(target.PermID, dirs, net.GuardPool())
	net.OnUpload(attack.ObserveUpload)

	net.PublishAll(pop, now)

	if attack.SignaturesSent() == 0 {
		t.Fatal("no signatures sent on target upload")
	}
	dets := attack.Detections()
	if len(dets) != attack.SignaturesSent() {
		t.Fatal("full guard control must detect every signature")
	}
	host, _ := net.Host(target.Address)
	deanon := attack.DeanonymisedServices()
	if ip, ok := deanon[target.Address]; !ok || ip != host.IP {
		t.Fatalf("target not deanonymised correctly: %v", deanon)
	}
	// Targeted mode must not flag other services.
	if len(deanon) != 1 {
		t.Fatalf("targeted attack deanonymised %d services", len(deanon))
	}
}

func TestServiceSignatureAttackOpportunistic(t *testing.T) {
	net, pop, now := buildNetwork(t, 25)
	// Opportunistic: zero target, attacker runs ALL directories and all
	// guards — every publishing service is exposed.
	attack := NewServiceSignatureAttack(onion.PermanentID{}, net.Ring().Fingerprints(), net.GuardPool())
	net.OnUpload(attack.ObserveUpload)

	published := net.PublishAll(pop, now)
	deanon := attack.DeanonymisedServices()
	if len(deanon) != published {
		t.Fatalf("deanonymised %d of %d services with full control", len(deanon), published)
	}
}

func TestServiceSignatureAttackPartialGuards(t *testing.T) {
	net, pop, now := buildNetwork(t, 26)
	pool := net.GuardPool()
	attack := NewServiceSignatureAttack(onion.PermanentID{}, net.Ring().Fingerprints(), pool[:len(pool)/10])
	net.OnUpload(attack.ObserveUpload)

	net.PublishAll(pop, now)
	sent := attack.SignaturesSent()
	det := len(attack.Detections())
	if sent == 0 {
		t.Fatal("no signatures")
	}
	if det == 0 || det >= sent {
		t.Fatalf("partial guard control: %d of %d detected", det, sent)
	}
}
