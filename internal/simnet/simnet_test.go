package simnet

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"torhs/internal/geo"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/relaynet"
)

func buildNetwork(t *testing.T, seed int64) (*Network, *hspop.Population, time.Time) {
	t.Helper()
	fleet := relaynet.DefaultFleetConfig(seed)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := h.All()[0]

	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(seed)
	cfg.Clients = 500
	net, err := NewNetwork(doc, db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return net, pop, doc.ValidAfter
}

func TestNewNetworkValidation(t *testing.T) {
	fleet := relaynet.DefaultFleetConfig(1)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1)
	cfg.Clients = 0
	if _, err := NewNetwork(h.All()[0], db, cfg); err == nil {
		t.Fatal("zero clients accepted")
	}
}

func TestPublishAllStoresDescriptorsOnResponsibleDirs(t *testing.T) {
	net, pop, now := buildNetwork(t, 2)
	published := net.PublishAll(pop, now)
	if published != len(pop.WithDescriptor()) {
		t.Fatalf("published %d, want %d", published, len(pop.WithDescriptor()))
	}

	// Every service's descriptors must be fetchable from all responsible
	// directories.
	svc := pop.WithDescriptor()[0]
	for _, descID := range onion.DescriptorIDs(svc.PermID, now) {
		for _, fp := range net.Ring().Responsible(descID, onion.SpreadPerReplica) {
			dir, ok := net.Directory(fp)
			if !ok {
				t.Fatal("responsible directory missing")
			}
			desc, found := dir.Fetch(descID, now)
			if !found {
				t.Fatal("descriptor not stored on responsible directory")
			}
			if desc.Address != svc.Address {
				t.Fatal("wrong descriptor stored")
			}
		}
	}
}

func TestFetchDescriptorFindsPublished(t *testing.T) {
	net, pop, now := buildNetwork(t, 3)
	net.PublishAll(pop, now)
	client := net.Clients()[0]
	svc := pop.WithDescriptor()[0]

	found := 0
	for i := 0; i < 20; i++ {
		ev := net.FetchDescriptor(client, svc.PermID, now.Add(time.Minute))
		if ev.Found {
			found++
		}
	}
	// A client with a correct clock must almost always succeed.
	if client.ClockSkew == 0 && found < 15 {
		t.Fatalf("found %d/20 fetches for published descriptor", found)
	}
}

func TestFetchRawIDNeverPublished(t *testing.T) {
	net, pop, now := buildNetwork(t, 4)
	net.PublishAll(pop, now)
	client := net.Clients()[0]
	var phantom onion.DescriptorID
	phantom[0] = 0xAB
	ev := net.FetchRawID(client, phantom, now)
	if ev.Found {
		t.Fatal("phantom descriptor found")
	}
}

func TestDriveWindowStats(t *testing.T) {
	net, pop, now := buildNetwork(t, 5)
	net.PublishAll(pop, now)

	var events int
	st, _ := net.DriveWindow(context.Background(), pop, now.Add(time.Hour), 2*time.Hour, func(ev FetchEvent) { events++ })
	if st.TotalRequests == 0 {
		t.Fatal("no requests driven")
	}
	if events != st.TotalRequests {
		t.Fatalf("observer saw %d events, stats count %d", events, st.TotalRequests)
	}
	// Phantom fraction should approximate the configured 80%.
	phantomFrac := float64(st.PhantomRequests) / float64(st.TotalRequests)
	if phantomFrac < 0.7 || phantomFrac > 0.9 {
		t.Fatalf("phantom fraction = %.2f, want ~0.8", phantomFrac)
	}
	// Most real (non-phantom) requests should resolve.
	if st.ResolvedHits == 0 {
		t.Fatal("no resolved hits")
	}
}

func TestDirFailureValidation(t *testing.T) {
	fleet := relaynet.DefaultFleetConfig(40)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(40)
	cfg.DirFailureProb = 1.0
	if _, err := NewNetwork(h.All()[0], db, cfg); err == nil {
		t.Fatal("failure probability 1.0 accepted")
	}
}

func TestDirFailureRetriesKeepFetchesWorking(t *testing.T) {
	fleet := relaynet.DefaultFleetConfig(41)
	fleet.Days = 1
	sim, err := relaynet.NewSim(fleet)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := h.All()[0]
	db, err := geo.NewDB(geo.DefaultBotnetMix())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(41)
	cfg.Clients = 200
	cfg.DirFailureProb = 0.3
	net, err := NewNetwork(doc, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	now := doc.ValidAfter
	net.PublishAll(pop, now)

	var c *Client
	for _, cand := range net.Clients() {
		if cand.ClockSkew == 0 {
			c = cand
			break
		}
	}
	svc := pop.WithDescriptor()[0]

	found, retried := 0, 0
	const trials = 200
	for i := 0; i < trials; i++ {
		ev := net.FetchDescriptor(c, svc.PermID, now.Add(time.Minute))
		if ev.Found {
			found++
		}
		if ev.Attempts > 1 {
			retried++
		}
	}
	// With 30% per-directory failure and up to 3 fallbacks, nearly every
	// fetch still succeeds (P(all 3 fail) = 2.7%).
	if float64(found)/trials < 0.9 {
		t.Fatalf("found %d/%d fetches with retries enabled", found, trials)
	}
	if retried == 0 {
		t.Fatal("no retries observed at 30% failure probability")
	}
}

func TestGuardRotationAndStability(t *testing.T) {
	pool := make([]onion.Fingerprint, 50)
	rng := rand.New(rand.NewSource(6))
	for i := range pool {
		pool[i] = onion.RandomFingerprint(rng)
	}
	c := &Client{ID: 1}
	now := time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC)

	c.PickGuard(pool, rng, now)
	before := c.Guards()
	// Within the 30-day minimum lifetime, the set must not change.
	for i := 0; i < 50; i++ {
		c.PickGuard(pool, rng, now.Add(time.Duration(i)*time.Hour))
	}
	if c.Guards() != before {
		t.Fatal("guard set changed within lifetime")
	}
	// After 61 days every guard has expired.
	c.PickGuard(pool, rng, now.Add(61*24*time.Hour))
	after := c.Guards()
	same := 0
	for i := range after {
		if after[i] == before[i] {
			same++
		}
	}
	if same == 3 {
		t.Fatal("no guard rotated after 61 days")
	}
}

func TestPickGuardReturnsMemberOfSet(t *testing.T) {
	pool := make([]onion.Fingerprint, 10)
	rng := rand.New(rand.NewSource(7))
	for i := range pool {
		pool[i] = onion.RandomFingerprint(rng)
	}
	c := &Client{ID: 2}
	now := time.Unix(0, 0)
	g := c.PickGuard(pool, rng, now)
	set := c.Guards()
	if g != set[0] && g != set[1] && g != set[2] {
		t.Fatal("picked guard not in guard set")
	}
}

func TestSignatureAttackDetectsThroughAttackerGuards(t *testing.T) {
	net, pop, now := buildNetwork(t, 8)
	net.PublishAll(pop, now)

	target := pop.Services[0] // most popular Goldnet front
	// Attacker controls the target's responsible directories and a large
	// fraction of the guard pool (to make detection certain in-test).
	dirs := net.Ring().ResponsibleForServiceAt(target.PermID, now)
	guards := net.GuardPool()
	attack := NewSignatureAttack(target.PermID, dirs, guards)

	st, _ := net.DriveWindow(context.Background(), pop, now.Add(time.Hour), 2*time.Hour, attack.Observe)
	if st.TotalRequests == 0 {
		t.Fatal("no traffic")
	}
	if attack.SignaturesSent() == 0 {
		t.Fatal("no signatures sent for most popular service")
	}
	dets := attack.Detections()
	if len(dets) == 0 {
		t.Fatal("no detections despite controlling all guards")
	}
	// With all guards controlled, every signature is detected.
	if len(dets) != attack.SignaturesSent() {
		t.Fatalf("detections %d != signatures %d with full guard control",
			len(dets), attack.SignaturesSent())
	}
	hist := attack.CountryHistogram()
	sum := 0
	for _, n := range hist {
		sum += n
	}
	if sum != len(dets) {
		t.Fatal("country histogram loses detections")
	}
	if attack.UniqueClients() == 0 || attack.UniqueClients() > len(dets) {
		t.Fatalf("unique clients = %d", attack.UniqueClients())
	}
}

func TestSignatureAttackPartialGuardControl(t *testing.T) {
	net, pop, now := buildNetwork(t, 9)
	net.PublishAll(pop, now)

	target := pop.Services[0]
	dirs := net.Ring().ResponsibleForServiceAt(target.PermID, now)
	// Attacker controls only ~20% of guards.
	pool := net.GuardPool()
	attackerGuards := pool[:len(pool)/5]
	attack := NewSignatureAttack(target.PermID, dirs, attackerGuards)

	net.DriveWindow(context.Background(), pop, now.Add(time.Hour), 2*time.Hour, attack.Observe)
	sent := attack.SignaturesSent()
	det := len(attack.Detections())
	if sent == 0 {
		t.Fatal("no signatures sent")
	}
	if det >= sent {
		t.Fatalf("partial control detected %d of %d signatures", det, sent)
	}
}

func TestSignatureAttackIgnoresOtherServices(t *testing.T) {
	net, pop, now := buildNetwork(t, 10)
	net.PublishAll(pop, now)

	// Target a service that receives no traffic (a dark one).
	var dark *hspop.Service
	for _, s := range pop.Services {
		if s.ExpectedRequests == 0 && s.DescriptorAtScan {
			dark = s
			break
		}
	}
	if dark == nil {
		t.Fatal("no dark service")
	}
	dirs := net.Ring().ResponsibleForServiceAt(dark.PermID, now)
	attack := NewSignatureAttack(dark.PermID, dirs, net.GuardPool())
	net.DriveWindow(context.Background(), pop, now.Add(time.Hour), 2*time.Hour, attack.Observe)
	if attack.SignaturesSent() != 0 {
		t.Fatalf("signatures sent for traffic-less service: %d", attack.SignaturesSent())
	}
}
