// Package simnet simulates the client side of the hidden-service
// ecosystem: clients with entry-guard sets, descriptor-fetch traffic
// driven by the population's popularity model (including the large volume
// of requests for never-published descriptors the paper observed), and
// the guard-based traffic-signature attack of Section VI.
package simnet

import (
	"math/rand"
	"time"

	"torhs/internal/onion"
)

// Client is one Tor client.
type Client struct {
	// ID is a stable identifier.
	ID int
	// IP is the client's real address; Country its geolocation.
	IP      string
	Country string
	// ClockSkew offsets the client's wall clock. Clients with skewed
	// clocks compute descriptor IDs for the wrong time period, which is
	// why the paper resolves requests over a ±days window.
	ClockSkew time.Duration

	gs guardSet
}

// minGuardLifetime is the shortest guard rotation lifetime; a freshly
// refreshed guard is guaranteed stable for at least this long.
const minGuardLifetime = 30 * 24 * time.Hour

// guardLifetime draws a guard rotation lifetime uniform in [30,60) days,
// as the Tor client does.
func guardLifetime(rng *rand.Rand) time.Duration {
	return minGuardLifetime + time.Duration(rng.Intn(30))*24*time.Hour
}

// PickGuard returns the entry guard for a new circuit at instant now,
// rotating expired guards first.
func (c *Client) PickGuard(pool []onion.Fingerprint, rng *rand.Rand, now time.Time) onion.Fingerprint {
	return c.gs.pick(pool, rng, now)
}

// Guards returns a copy of the client's current guard set.
func (c *Client) Guards() [3]onion.Fingerprint { return c.gs.guards }

// LocalTime returns the client's skewed notion of now.
func (c *Client) LocalTime(now time.Time) time.Time { return now.Add(c.ClockSkew) }
