package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/geo"
	"torhs/internal/hsdir"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/parallel"
	"torhs/internal/stats"
)

// Network wires a consensus snapshot, the HSDir ring with per-relay
// descriptor stores, a guard pool, and a client population into one
// drivable simulation.
type Network struct {
	rng *rand.Rand

	ring       *hsdir.Ring
	dirs       map[onion.Fingerprint]*hsdir.Directory
	guards     []onion.Fingerprint
	pool       *guardPool
	dirFailure float64
	workers    int

	geoDB   *geo.DB
	clients []*Client

	hosts           map[onion.Address]*Host
	uploadObservers []func(UploadEvent)
}

// Config parameterises client synthesis.
type Config struct {
	// Clients is the number of simulated clients.
	Clients int
	// SkewedClientFraction of clients have wrong clocks.
	SkewedClientFraction float64
	// MaxSkew bounds the absolute clock skew of skewed clients.
	MaxSkew time.Duration
	// WeightedGuards selects entry guards weighted by consensus
	// bandwidth, as the real Tor client does. Off by default: uniform
	// selection makes attacker guard share equal attacker guard count,
	// which the analytical checks in the experiments rely on.
	WeightedGuards bool
	// DirFailureProb is the probability that contacting one directory
	// fails (relay overloaded or unreachable); the client falls back to
	// the remaining responsible directories, as the Tor client does.
	DirFailureProb float64
	// Seed drives the network's randomness.
	Seed int64
	// Workers shards DriveWindow's fetch execution across goroutines
	// (<= 0: one per CPU). Each fetch draws from an RNG derived from the
	// request's index in the traffic plan, so the driven window is
	// byte-identical at every worker count.
	Workers int
}

// DefaultConfig returns a client population sized for tests and examples.
func DefaultConfig(seed int64) Config {
	return Config{
		Clients:              2000,
		SkewedClientFraction: 0.1,
		MaxSkew:              72 * time.Hour,
		Seed:                 seed,
	}
}

// NewNetwork builds the network from a consensus snapshot: one descriptor
// directory per HSDir-flagged relay, the guard pool, and cfg.Clients
// clients with geo-allocated IPs.
func NewNetwork(doc *consensus.Document, db *geo.DB, cfg Config) (*Network, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("simnet: client count %d must be positive", cfg.Clients)
	}
	hsdirs := doc.HSDirs()
	if len(hsdirs) < onion.Replicas*onion.SpreadPerReplica {
		return nil, fmt.Errorf("simnet: only %d HSDirs in consensus, need >= %d",
			len(hsdirs), onion.Replicas*onion.SpreadPerReplica)
	}
	guards := doc.Guards()
	if len(guards) == 0 {
		return nil, errors.New("simnet: no Guard-flagged relays in consensus")
	}

	if cfg.DirFailureProb < 0 || cfg.DirFailureProb >= 1 {
		return nil, fmt.Errorf("simnet: directory failure probability %v out of [0,1)", cfg.DirFailureProb)
	}
	n := &Network{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		// The ring is cached on the document: every network (and analysis)
		// over the same consensus shares one sorted ring.
		ring:       doc.Ring(),
		dirs:       make(map[onion.Fingerprint]*hsdir.Directory, len(hsdirs)),
		guards:     guards,
		geoDB:      db,
		hosts:      make(map[onion.Address]*Host),
		dirFailure: cfg.DirFailureProb,
		workers:    cfg.Workers,
	}
	for _, fp := range hsdirs {
		n.dirs[fp] = hsdir.NewDirectory(fp, 24*time.Hour)
	}
	if cfg.WeightedGuards {
		weights := make([]int, len(guards))
		for i, fp := range guards {
			if e, ok := doc.Lookup(fp); ok {
				weights[i] = e.Bandwidth
			}
		}
		n.pool = newGuardPool(guards, weights)
	} else {
		n.pool = newGuardPool(guards, nil)
	}

	n.clients = make([]*Client, cfg.Clients)
	for i := range n.clients {
		ip, country := db.AllocateIP(n.rng)
		c := &Client{ID: i, IP: ip, Country: country}
		if n.rng.Float64() < cfg.SkewedClientFraction {
			skew := time.Duration(n.rng.Int63n(int64(2*cfg.MaxSkew))) - cfg.MaxSkew
			c.ClockSkew = skew
		}
		n.clients[i] = c
	}
	return n, nil
}

// Ring returns the HSDir ring.
func (n *Network) Ring() *hsdir.Ring { return n.ring }

// Directory returns the descriptor store of the relay with fingerprint
// fp.
func (n *Network) Directory(fp onion.Fingerprint) (*hsdir.Directory, bool) {
	d, ok := n.dirs[fp]
	return d, ok
}

// Directories returns all descriptor stores keyed by fingerprint.
func (n *Network) Directories() map[onion.Fingerprint]*hsdir.Directory { return n.dirs }

// GuardPool returns the Guard-flagged fingerprints. The slice aliases the
// consensus document's shared cache; callers must not mutate it (copy
// first, as the deanon pipelines do).
func (n *Network) GuardPool() []onion.Fingerprint { return n.guards }

// Clients returns the client population.
func (n *Network) Clients() []*Client { return n.clients }

// PublishService uploads both descriptor replicas of a service to their
// responsible directories at instant now. The upload travels a
// guard-anchored circuit from the service's host; every upload is
// announced to registered upload observers (the tap the [8]-style
// service deanonymisation uses).
func (n *Network) PublishService(svc *hspop.Service, now time.Time) {
	host := n.ensureHost(svc)
	if len(host.intros) == 0 {
		n.establishIntroPoints(host, 3)
	}
	ids := onion.DescriptorIDs(svc.PermID, now)
	for replica, descID := range ids {
		desc := &onion.Descriptor{
			DescID:      descID,
			Address:     svc.Address,
			PermID:      svc.PermID,
			Replica:     uint8(replica),
			PublishedAt: now,
			IntroPoints: host.IntroPoints(),
		}
		for _, fp := range n.ring.Responsible(descID, onion.SpreadPerReplica) {
			n.dirs[fp].Publish(desc, now)
			if len(n.uploadObservers) > 0 {
				ev := UploadEvent{
					Host:   host,
					Guard:  host.gs.pickPool(n.pool, n.rng, now),
					Dir:    fp,
					DescID: descID,
					At:     now,
				}
				for _, fn := range n.uploadObservers {
					fn(ev)
				}
			}
		}
	}
}

// PublishAll uploads descriptors for every descriptor-bearing service in
// the population and returns the number published.
func (n *Network) PublishAll(pop *hspop.Population, now time.Time) int {
	count := 0
	for _, svc := range pop.WithDescriptor() {
		n.PublishService(svc, now)
		count++
	}
	return count
}

// FetchEvent describes one descriptor fetch as the network executed it.
type FetchEvent struct {
	Client *Client
	// Guard is the entry guard the circuit used.
	Guard onion.Fingerprint
	// Dir is the directory that finally answered.
	Dir onion.Fingerprint
	// DescID is the requested descriptor ID.
	DescID onion.DescriptorID
	// Found reports whether the directory had the descriptor.
	Found bool
	// Attempts is how many directories the client contacted (retries on
	// unreachable directories included).
	Attempts int
	// At is the (true) request instant.
	At time.Time
}

// FetchDescriptor performs one client descriptor fetch for the service
// with permanent ID permID: the client computes the descriptor ID with
// its *local* clock, picks a replica, and queries one of the responsible
// directories through one of its guards.
func (n *Network) FetchDescriptor(c *Client, permID onion.PermanentID, now time.Time) FetchEvent {
	return n.fetchDescriptor(n.rng, c, permID, now)
}

// FetchRawID performs one fetch for an arbitrary descriptor ID (used for
// the phantom requests to never-published descriptors).
func (n *Network) FetchRawID(c *Client, descID onion.DescriptorID, now time.Time) FetchEvent {
	return n.fetchByID(n.rng, c, descID, now)
}

// fetchDescriptor is FetchDescriptor with the randomness source made
// explicit so DriveWindow can run fetches concurrently on per-request
// RNGs.
func (n *Network) fetchDescriptor(rng *rand.Rand, c *Client, permID onion.PermanentID, now time.Time) FetchEvent {
	local := c.LocalTime(now)
	replica := uint8(rng.Intn(onion.Replicas))
	descID := onion.ComputeDescriptorID(permID, local, replica)
	return n.fetchByID(rng, c, descID, now)
}

func (n *Network) fetchByID(rng *rand.Rand, c *Client, descID onion.DescriptorID, now time.Time) FetchEvent {
	guard := c.gs.pickPool(n.pool, rng, now)
	responsible := n.ring.Responsible(descID, onion.SpreadPerReplica)
	// Contact the responsible directories in random order, falling back
	// on unreachable ones, as the Tor client does.
	order := rng.Perm(len(responsible))
	ev := FetchEvent{
		Client: c,
		Guard:  guard,
		DescID: descID,
		At:     now,
	}
	for _, i := range order {
		ev.Attempts++
		ev.Dir = responsible[i]
		if n.dirFailure > 0 && rng.Float64() < n.dirFailure {
			continue // this directory was unreachable; try the next
		}
		_, ev.Found = n.dirs[ev.Dir].Fetch(descID, now)
		return ev
	}
	// Every responsible directory was unreachable.
	ev.Found = false
	return ev
}

// TrafficStats summarises a driven measurement window.
type TrafficStats struct {
	TotalRequests   int
	PhantomRequests int
	ResolvedHits    int
}

// warmGuardSets rotates-in the guard set of every client, using the
// network RNG sequentially, refreshing any guard that would expire
// before horizon. DriveWindow calls it before fanning out so that
// concurrent fetches only *read* guard state: after warming, every
// guard's expiry lies beyond the window's end.
func (n *Network) warmGuardSets(now, horizon time.Time) {
	for _, c := range n.clients {
		c.gs.refreshPoolUntil(n.pool, n.rng, now, horizon)
	}
}

// DriveWindow generates descriptor-fetch traffic over a measurement
// window of the given duration starting at start: Poisson counts around
// each popular service's expected rate, plus phantom requests for
// never-published descriptor IDs at the configured fraction. The observer
// callback (optional) sees every fetch event — this is where the
// signature attack taps in.
//
// Execution is three-phase so cfg.Workers never changes the outcome:
// the traffic plan is drawn sequentially from the network RNG; the
// fetches execute concurrently, each on an RNG derived from its plan
// index; and the events are replayed to the stats and the observer
// sequentially in plan order.
func (n *Network) DriveWindow(
	pop *hspop.Population,
	start time.Time,
	window time.Duration,
	observer func(FetchEvent),
) TrafficStats {
	var out TrafficStats

	// Phase 1: draw the plan sequentially from the network RNG.
	type planEntry struct {
		permID  onion.PermanentID
		phantom bool
	}
	plan := make([]planEntry, 0, 4096)
	realTotal := 0
	for _, svc := range pop.PopularServices() {
		c := stats.Poisson(n.rng, svc.ExpectedRequests)
		for k := 0; k < c; k++ {
			plan = append(plan, planEntry{permID: svc.PermID})
		}
		realTotal += c
	}

	// Phantom pool: never-published descriptor IDs, power-law weighted.
	phantomFrac := pop.Config.PhantomRequestFraction
	phantomTotal := 0
	if phantomFrac > 0 {
		phantomTotal = int(float64(realTotal) * phantomFrac / (1 - phantomFrac))
	}
	nPhantomIDs := pop.Config.ScaledPhantomIDs()
	phantomIDs := make([]onion.DescriptorID, nPhantomIDs)
	for i := range phantomIDs {
		f := onion.RandomFingerprint(n.rng)
		copy(phantomIDs[i][:], f[:])
	}
	for k := 0; k < phantomTotal; k++ {
		plan = append(plan, planEntry{phantom: true})
	}
	planSeed := n.rng.Int63()
	end := start.Add(window)
	n.warmGuardSets(start, end)

	// Phase 2: execute the fetches concurrently. Each request derives
	// its RNG from (planSeed, index), directories serialise their own
	// mutations, and warmed guard sets are only read: warming refreshed
	// every guard that would expire before end. A freshly refreshed
	// guard is stable for minGuardLifetime, so for windows that long or
	// longer the no-mid-window-rotation guarantee cannot hold and we
	// fall back to serial execution (identical results at every Workers
	// value either way, since the plan already fixes each request's RNG).
	workers := n.workers
	if window >= minGuardLifetime {
		workers = 1
	}
	events := make([]FetchEvent, len(plan))
	parallel.ForEach(workers, len(plan), func(i int) {
		rng := parallel.NewRNG(parallel.SeedFor(planSeed, int64(i)))
		at := start.Add(time.Duration(rng.Int63n(int64(window))))
		c := n.clients[rng.Intn(len(n.clients))]
		if plan[i].phantom {
			// Zipf-ish: low indexes requested far more often.
			idx := int(float64(len(phantomIDs)) * math.Pow(rng.Float64(), 2.2))
			if idx >= len(phantomIDs) {
				idx = len(phantomIDs) - 1
			}
			events[i] = n.fetchByID(rng, c, phantomIDs[idx], at)
		} else {
			events[i] = n.fetchDescriptor(rng, c, plan[i].permID, at)
		}
	})

	// Phase 3: replay in plan order.
	for i, ev := range events {
		out.TotalRequests++
		if ev.Found {
			out.ResolvedHits++
		}
		if plan[i].phantom {
			out.PhantomRequests++
		}
		if observer != nil {
			observer(ev)
		}
	}
	return out
}
