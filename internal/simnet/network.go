package simnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/geo"
	"torhs/internal/hsdir"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/stats"
)

// Network wires a consensus snapshot, the HSDir ring with per-relay
// descriptor stores, a guard pool, and a client population into one
// drivable simulation.
type Network struct {
	rng *rand.Rand

	ring       *hsdir.Ring
	dirs       map[onion.Fingerprint]*hsdir.Directory
	guards     []onion.Fingerprint
	pool       *guardPool
	dirFailure float64

	geoDB   *geo.DB
	clients []*Client

	hosts           map[onion.Address]*Host
	uploadObservers []func(UploadEvent)
}

// Config parameterises client synthesis.
type Config struct {
	// Clients is the number of simulated clients.
	Clients int
	// SkewedClientFraction of clients have wrong clocks.
	SkewedClientFraction float64
	// MaxSkew bounds the absolute clock skew of skewed clients.
	MaxSkew time.Duration
	// WeightedGuards selects entry guards weighted by consensus
	// bandwidth, as the real Tor client does. Off by default: uniform
	// selection makes attacker guard share equal attacker guard count,
	// which the analytical checks in the experiments rely on.
	WeightedGuards bool
	// DirFailureProb is the probability that contacting one directory
	// fails (relay overloaded or unreachable); the client falls back to
	// the remaining responsible directories, as the Tor client does.
	DirFailureProb float64
	// Seed drives the network's randomness.
	Seed int64
}

// DefaultConfig returns a client population sized for tests and examples.
func DefaultConfig(seed int64) Config {
	return Config{
		Clients:              2000,
		SkewedClientFraction: 0.1,
		MaxSkew:              72 * time.Hour,
		Seed:                 seed,
	}
}

// NewNetwork builds the network from a consensus snapshot: one descriptor
// directory per HSDir-flagged relay, the guard pool, and cfg.Clients
// clients with geo-allocated IPs.
func NewNetwork(doc *consensus.Document, db *geo.DB, cfg Config) (*Network, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("simnet: client count %d must be positive", cfg.Clients)
	}
	hsdirs := doc.HSDirs()
	if len(hsdirs) < onion.Replicas*onion.SpreadPerReplica {
		return nil, fmt.Errorf("simnet: only %d HSDirs in consensus, need >= %d",
			len(hsdirs), onion.Replicas*onion.SpreadPerReplica)
	}
	guards := doc.Guards()
	if len(guards) == 0 {
		return nil, errors.New("simnet: no Guard-flagged relays in consensus")
	}

	if cfg.DirFailureProb < 0 || cfg.DirFailureProb >= 1 {
		return nil, fmt.Errorf("simnet: directory failure probability %v out of [0,1)", cfg.DirFailureProb)
	}
	n := &Network{
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		ring:       hsdir.NewRing(hsdirs),
		dirs:       make(map[onion.Fingerprint]*hsdir.Directory, len(hsdirs)),
		guards:     guards,
		geoDB:      db,
		hosts:      make(map[onion.Address]*Host),
		dirFailure: cfg.DirFailureProb,
	}
	for _, fp := range hsdirs {
		n.dirs[fp] = hsdir.NewDirectory(fp, 24*time.Hour)
	}
	if cfg.WeightedGuards {
		weights := make([]int, len(guards))
		for i, fp := range guards {
			if e, ok := doc.Lookup(fp); ok {
				weights[i] = e.Bandwidth
			}
		}
		n.pool = newGuardPool(guards, weights)
	} else {
		n.pool = newGuardPool(guards, nil)
	}

	n.clients = make([]*Client, cfg.Clients)
	for i := range n.clients {
		ip, country := db.AllocateIP(n.rng)
		c := &Client{ID: i, IP: ip, Country: country}
		if n.rng.Float64() < cfg.SkewedClientFraction {
			skew := time.Duration(n.rng.Int63n(int64(2*cfg.MaxSkew))) - cfg.MaxSkew
			c.ClockSkew = skew
		}
		n.clients[i] = c
	}
	return n, nil
}

// Ring returns the HSDir ring.
func (n *Network) Ring() *hsdir.Ring { return n.ring }

// Directory returns the descriptor store of the relay with fingerprint
// fp.
func (n *Network) Directory(fp onion.Fingerprint) (*hsdir.Directory, bool) {
	d, ok := n.dirs[fp]
	return d, ok
}

// Directories returns all descriptor stores keyed by fingerprint.
func (n *Network) Directories() map[onion.Fingerprint]*hsdir.Directory { return n.dirs }

// GuardPool returns the Guard-flagged fingerprints.
func (n *Network) GuardPool() []onion.Fingerprint { return n.guards }

// Clients returns the client population.
func (n *Network) Clients() []*Client { return n.clients }

// PublishService uploads both descriptor replicas of a service to their
// responsible directories at instant now. The upload travels a
// guard-anchored circuit from the service's host; every upload is
// announced to registered upload observers (the tap the [8]-style
// service deanonymisation uses).
func (n *Network) PublishService(svc *hspop.Service, now time.Time) {
	host := n.ensureHost(svc)
	if len(host.intros) == 0 {
		n.establishIntroPoints(host, 3)
	}
	ids := onion.DescriptorIDs(svc.PermID, now)
	for replica, descID := range ids {
		desc := &onion.Descriptor{
			DescID:      descID,
			Address:     svc.Address,
			PermID:      svc.PermID,
			Replica:     uint8(replica),
			PublishedAt: now,
			IntroPoints: host.IntroPoints(),
		}
		for _, fp := range n.ring.Responsible(descID, onion.SpreadPerReplica) {
			n.dirs[fp].Publish(desc, now)
			if len(n.uploadObservers) > 0 {
				ev := UploadEvent{
					Host:   host,
					Guard:  host.gs.pickPool(n.pool, n.rng, now),
					Dir:    fp,
					DescID: descID,
					At:     now,
				}
				for _, fn := range n.uploadObservers {
					fn(ev)
				}
			}
		}
	}
}

// PublishAll uploads descriptors for every descriptor-bearing service in
// the population and returns the number published.
func (n *Network) PublishAll(pop *hspop.Population, now time.Time) int {
	count := 0
	for _, svc := range pop.WithDescriptor() {
		n.PublishService(svc, now)
		count++
	}
	return count
}

// FetchEvent describes one descriptor fetch as the network executed it.
type FetchEvent struct {
	Client *Client
	// Guard is the entry guard the circuit used.
	Guard onion.Fingerprint
	// Dir is the directory that finally answered.
	Dir onion.Fingerprint
	// DescID is the requested descriptor ID.
	DescID onion.DescriptorID
	// Found reports whether the directory had the descriptor.
	Found bool
	// Attempts is how many directories the client contacted (retries on
	// unreachable directories included).
	Attempts int
	// At is the (true) request instant.
	At time.Time
}

// FetchDescriptor performs one client descriptor fetch for the service
// with permanent ID permID: the client computes the descriptor ID with
// its *local* clock, picks a replica, and queries one of the responsible
// directories through one of its guards.
func (n *Network) FetchDescriptor(c *Client, permID onion.PermanentID, now time.Time) FetchEvent {
	local := c.LocalTime(now)
	replica := uint8(n.rng.Intn(onion.Replicas))
	descID := onion.ComputeDescriptorID(permID, local, replica)
	return n.fetchByID(c, descID, now)
}

// FetchRawID performs one fetch for an arbitrary descriptor ID (used for
// the phantom requests to never-published descriptors).
func (n *Network) FetchRawID(c *Client, descID onion.DescriptorID, now time.Time) FetchEvent {
	return n.fetchByID(c, descID, now)
}

func (n *Network) fetchByID(c *Client, descID onion.DescriptorID, now time.Time) FetchEvent {
	guard := c.gs.pickPool(n.pool, n.rng, now)
	responsible := n.ring.Responsible(descID, onion.SpreadPerReplica)
	// Contact the responsible directories in random order, falling back
	// on unreachable ones, as the Tor client does.
	order := n.rng.Perm(len(responsible))
	ev := FetchEvent{
		Client: c,
		Guard:  guard,
		DescID: descID,
		At:     now,
	}
	for _, i := range order {
		ev.Attempts++
		ev.Dir = responsible[i]
		if n.dirFailure > 0 && n.rng.Float64() < n.dirFailure {
			continue // this directory was unreachable; try the next
		}
		_, ev.Found = n.dirs[ev.Dir].Fetch(descID, now)
		return ev
	}
	// Every responsible directory was unreachable.
	ev.Found = false
	return ev
}

// TrafficStats summarises a driven measurement window.
type TrafficStats struct {
	TotalRequests   int
	PhantomRequests int
	ResolvedHits    int
}

// DriveWindow generates descriptor-fetch traffic over a measurement
// window of the given duration starting at start: Poisson counts around
// each popular service's expected rate, plus phantom requests for
// never-published descriptor IDs at the configured fraction. The observer
// callback (optional) sees every fetch event — this is where the
// signature attack taps in.
func (n *Network) DriveWindow(
	pop *hspop.Population,
	start time.Time,
	window time.Duration,
	observer func(FetchEvent),
) TrafficStats {
	var out TrafficStats

	type job struct {
		permID onion.PermanentID
		count  int
	}
	jobs := make([]job, 0, 4096)
	realTotal := 0
	for _, svc := range pop.PopularServices() {
		c := stats.Poisson(n.rng, svc.ExpectedRequests)
		if c > 0 {
			jobs = append(jobs, job{permID: svc.PermID, count: c})
			realTotal += c
		}
	}

	// Phantom pool: never-published descriptor IDs, power-law weighted.
	phantomFrac := pop.Config.PhantomRequestFraction
	phantomTotal := 0
	if phantomFrac > 0 {
		phantomTotal = int(float64(realTotal) * phantomFrac / (1 - phantomFrac))
	}
	nPhantomIDs := pop.Config.ScaledPhantomIDs()
	phantomIDs := make([]onion.DescriptorID, nPhantomIDs)
	for i := range phantomIDs {
		f := onion.RandomFingerprint(n.rng)
		copy(phantomIDs[i][:], f[:])
	}

	emit := func(ev FetchEvent) {
		out.TotalRequests++
		if ev.Found {
			out.ResolvedHits++
		}
		if observer != nil {
			observer(ev)
		}
	}

	// Interleave real and phantom requests across the window.
	for _, j := range jobs {
		for k := 0; k < j.count; k++ {
			at := start.Add(time.Duration(n.rng.Int63n(int64(window))))
			c := n.clients[n.rng.Intn(len(n.clients))]
			emit(n.FetchDescriptor(c, j.permID, at))
		}
	}
	for k := 0; k < phantomTotal; k++ {
		at := start.Add(time.Duration(n.rng.Int63n(int64(window))))
		c := n.clients[n.rng.Intn(len(n.clients))]
		// Zipf-ish: low indexes requested far more often.
		idx := int(float64(len(phantomIDs)) * math.Pow(n.rng.Float64(), 2.2))
		if idx >= len(phantomIDs) {
			idx = len(phantomIDs) - 1
		}
		emit(n.FetchRawID(c, phantomIDs[idx], at))
		out.PhantomRequests++
	}
	return out
}
