package simnet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/fault"
	"torhs/internal/geo"
	"torhs/internal/hsdir"
	"torhs/internal/hspop"
	"torhs/internal/onion"
	"torhs/internal/parallel"
	"torhs/internal/stats"
)

// Network wires a consensus snapshot, the HSDir ring with per-relay
// descriptor stores, a guard pool, and a client population into one
// drivable simulation.
//
// Directories are addressed by dense integer relay handles — positions on
// the consensus HSDir ring — resolved once through the document's cached
// lookup table, so the descriptor-fetch hot path runs entirely on slice
// indexing: no fingerprint-keyed map is consulted per request.
type Network struct {
	rng *rand.Rand

	// doc is the single consensus snapshot this network simulates; the
	// network *is* that window, so the document lives exactly as long as
	// the per-step network does (the trawl drops both together).
	//
	//torhs:retained the network's own consensus window; dropped with the per-step network
	doc        *consensus.Document
	ring       *hsdir.Ring
	ringFPs    []onion.Fingerprint // ring.Fingerprints(), cached
	dirs       []*hsdir.Directory  // dirs[i] serves ringFPs[i]
	guards     []onion.Fingerprint
	pool       *guardPool
	dirFailure float64
	workers    int
	maxSkew    time.Duration

	// secrets shares the window's precomputed secret-id-parts across
	// every descriptor-ID derivation (publish and fetch). Either injected
	// via Config.SecretTable (the experiments Env shares one table across
	// simnet, trawl, and tracking) or built lazily per driven window.
	secrets *onion.SecretIDTable

	geoDB   *geo.DB
	clients []*Client

	hosts           map[onion.Address]*Host
	uploadObservers []func(UploadEvent)
}

// Config parameterises client synthesis.
type Config struct {
	// Clients is the number of simulated clients.
	Clients int
	// SkewedClientFraction of clients have wrong clocks.
	SkewedClientFraction float64
	// MaxSkew bounds the absolute clock skew of skewed clients.
	MaxSkew time.Duration
	// WeightedGuards selects entry guards weighted by consensus
	// bandwidth, as the real Tor client does. Off by default: uniform
	// selection makes attacker guard share equal attacker guard count,
	// which the analytical checks in the experiments rely on.
	WeightedGuards bool
	// DirFailureProb is the probability that contacting one directory
	// fails (relay overloaded or unreachable); the client falls back to
	// the remaining responsible directories, as the Tor client does.
	DirFailureProb float64
	// Seed drives the network's randomness.
	Seed int64
	// Workers shards DriveWindow's fetch execution across goroutines
	// (<= 0: one per CPU). Each fetch draws from an RNG derived from the
	// request's index in the traffic plan, so the driven window is
	// byte-identical at every worker count.
	Workers int
	// SecretTable optionally shares precomputed rend-spec
	// secret-id-parts across every descriptor-ID derivation the network
	// performs. Derivations outside the table's window fall back to
	// direct computation, so any table is correct; the experiments Env
	// passes one study-wide table so simnet, trawl, and the popularity
	// index never recompute the same secret parts. Nil means the network
	// builds a table per driven window on its own.
	SecretTable *onion.SecretIDTable
	// CompactLogs creates every per-directory request log in compact
	// mode: raw requests retire into per-descriptor-ID counts on arrival
	// (the streaming pipeline's per-window retirement). All aggregate
	// log queries are unchanged; only raw Requests() reads become nil.
	CompactLogs bool
}

// DefaultConfig returns a client population sized for tests and examples.
func DefaultConfig(seed int64) Config {
	return Config{
		Clients:              2000,
		SkewedClientFraction: 0.1,
		MaxSkew:              72 * time.Hour,
		Seed:                 seed,
	}
}

// NewNetwork builds the network from a consensus snapshot: one descriptor
// directory per HSDir-flagged relay, the guard pool, and cfg.Clients
// clients with geo-allocated IPs.
func NewNetwork(doc *consensus.Document, db *geo.DB, cfg Config) (*Network, error) {
	if cfg.Clients <= 0 {
		return nil, fmt.Errorf("simnet: client count %d must be positive", cfg.Clients)
	}
	hsdirs := doc.HSDirs()
	if len(hsdirs) < onion.Replicas*onion.SpreadPerReplica {
		return nil, fmt.Errorf("simnet: only %d HSDirs in consensus, need >= %d",
			len(hsdirs), onion.Replicas*onion.SpreadPerReplica)
	}
	guards := doc.Guards()
	if len(guards) == 0 {
		return nil, errors.New("simnet: no Guard-flagged relays in consensus")
	}

	if cfg.DirFailureProb < 0 || cfg.DirFailureProb >= 1 {
		return nil, fmt.Errorf("simnet: directory failure probability %v out of [0,1)", cfg.DirFailureProb)
	}
	n := &Network{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		doc: doc,
		// The ring is cached on the document: every network (and analysis)
		// over the same consensus shares one sorted ring.
		ring:       doc.Ring(),
		guards:     guards,
		geoDB:      db,
		hosts:      make(map[onion.Address]*Host),
		dirFailure: cfg.DirFailureProb,
		workers:    cfg.Workers,
		maxSkew:    cfg.MaxSkew,
		secrets:    cfg.SecretTable,
	}
	n.ringFPs = n.ring.Fingerprints()
	n.dirs = make([]*hsdir.Directory, len(n.ringFPs))
	for i, fp := range n.ringFPs {
		n.dirs[i] = hsdir.NewDirectory(fp, 24*time.Hour)
		if cfg.CompactLogs {
			n.dirs[i].Log().Compact()
		}
	}
	if cfg.WeightedGuards {
		weights := make([]int, len(guards))
		for i, fp := range guards {
			if e, ok := doc.Lookup(fp); ok {
				weights[i] = e.Bandwidth
			}
		}
		n.pool = newGuardPool(guards, weights)
	} else {
		n.pool = newGuardPool(guards, nil)
	}

	n.clients = make([]*Client, cfg.Clients)
	for i := range n.clients {
		ip, country := db.AllocateIP(n.rng)
		c := &Client{ID: i, IP: ip, Country: country}
		if n.rng.Float64() < cfg.SkewedClientFraction {
			skew := time.Duration(n.rng.Int63n(int64(2*cfg.MaxSkew))) - cfg.MaxSkew
			c.ClockSkew = skew
		}
		n.clients[i] = c
	}
	return n, nil
}

// Ring returns the HSDir ring.
func (n *Network) Ring() *hsdir.Ring { return n.ring }

// Directory returns the descriptor store of the relay with fingerprint
// fp, resolved through the consensus document's cached ring-position
// table.
func (n *Network) Directory(fp onion.Fingerprint) (*hsdir.Directory, bool) {
	if i, ok := n.doc.HSDirRingPos(fp); ok {
		return n.dirs[i], true
	}
	return nil, false
}

// Directories returns all descriptor stores in ring order: Directories()[i]
// serves Ring().Fingerprints()[i]. The slice aliases the network; callers
// must not mutate it.
func (n *Network) Directories() []*hsdir.Directory { return n.dirs }

// GuardPool returns the Guard-flagged fingerprints. The slice aliases the
// consensus document's shared cache; callers must not mutate it (copy
// first, as the deanon pipelines do).
func (n *Network) GuardPool() []onion.Fingerprint { return n.guards }

// Clients returns the client population.
func (n *Network) Clients() []*Client { return n.clients }

// descriptorID derives one replica ID, through the shared secret table
// when one is available.
func (n *Network) descriptorID(permID onion.PermanentID, at time.Time, replica uint8) onion.DescriptorID {
	if n.secrets != nil {
		return n.secrets.DescriptorID(permID, at, replica)
	}
	return onion.ComputeDescriptorID(permID, at, replica)
}

// publishScratch carries the reusable buffers of a publish sweep.
type publishScratch struct {
	pos []int32
}

// PublishService uploads both descriptor replicas of a service to their
// responsible directories at instant now. The upload travels a
// guard-anchored circuit from the service's host; every upload is
// announced to registered upload observers (the tap the [8]-style
// service deanonymisation uses).
func (n *Network) PublishService(svc *hspop.Service, now time.Time) {
	var sc publishScratch
	n.publishService(svc, now, &sc)
}

func (n *Network) publishService(svc *hspop.Service, now time.Time, sc *publishScratch) {
	host := n.ensureHost(svc)
	if len(host.intros) == 0 {
		n.establishIntroPoints(host, 3)
	}
	var ids [onion.Replicas]onion.DescriptorID
	if n.secrets != nil {
		ids = n.secrets.DescriptorIDsAt(svc.PermID, now)
	} else {
		ids = onion.DescriptorIDs(svc.PermID, now)
	}
	// Both replica descriptors share one intro-point snapshot; the slice
	// is never mutated after the host establishes its intro points.
	intros := host.IntroPoints()
	for replica, descID := range ids {
		desc := &onion.Descriptor{
			DescID:      descID,
			Address:     svc.Address,
			PermID:      svc.PermID,
			Replica:     uint8(replica),
			PublishedAt: now,
			IntroPoints: intros,
		}
		sc.pos = n.ring.ResponsibleIndicesInto(sc.pos[:0], descID, onion.SpreadPerReplica)
		for _, pos := range sc.pos {
			n.dirs[pos].Publish(desc, now)
			if len(n.uploadObservers) > 0 {
				ev := UploadEvent{
					Host:   host,
					Guard:  host.gs.pickPool(n.pool, n.rng, now),
					Dir:    n.ringFPs[pos],
					DescID: descID,
					At:     now,
				}
				for _, fn := range n.uploadObservers {
					fn(ev)
				}
			}
		}
	}
}

// PublishAll uploads descriptors for every descriptor-bearing service in
// the population and returns the number published.
//
// The sweep is sharded: host and intro-point establishment draw from the
// network RNG and stay sequential (preserving the RNG byte stream
// exactly), then each worker derives descriptor IDs and responsible sets
// for a contiguous span of services into private staging buffers, and a
// merge phase applies the staged placements per directory in
// shard-then-service order — which is service order, so every
// directory's store sees the exact insertion sequence of a sequential
// sweep. Observer-tapped networks (the service-deanon tap) draw a guard
// pick from the network RNG per upload and must announce events in
// service order, so they take the sequential path, as does Workers==1
// (no goroutines, no staging).
func (n *Network) PublishAll(pop *hspop.Population, now time.Time) int {
	svcs := pop.WithDescriptor()
	shards := parallel.NumChunks(n.workers, len(svcs))
	if len(n.uploadObservers) > 0 || shards <= 1 {
		var sc publishScratch
		for _, svc := range svcs {
			n.publishService(svc, now, &sc)
		}
		return len(svcs)
	}

	// Phase 1 (sequential): establish hosts and intro points in service
	// order — the only RNG draws of an untapped publish sweep.
	hosts := make([]*Host, len(svcs))
	for i, svc := range svcs {
		hosts[i] = n.ensureHost(svc)
		if len(hosts[i].intros) == 0 {
			n.establishIntroPoints(hosts[i], 3)
		}
	}

	// Phase 2 (parallel): derive and stage. Each shard owns a span of
	// services, a private responsible-set scratch, its span of the
	// shared descriptor array, and private staging buffers + counts —
	// zero cross-shard synchronization.
	nd := len(n.dirs)
	descs := make([]onion.Descriptor, onion.Replicas*len(svcs))
	type staged struct {
		dirs    []int32 // placement target ring positions, service order
		descIdx []int32 // parallel indexes into descs
	}
	stage := make([]staged, shards)
	countsPtr := grabZeroed[int32](&i32Pool, shards*nd)
	defer i32Pool.Put(countsPtr)
	counts := *countsPtr
	parallel.Chunks(shards, len(svcs), func(shard, lo, hi int) {
		var sc publishScratch
		est := (hi - lo) * onion.Replicas * onion.SpreadPerReplica
		pls := make([]int32, 0, est)
		dix := make([]int32, 0, est)
		cnt := counts[shard*nd : (shard+1)*nd]
		for si := lo; si < hi; si++ {
			svc := svcs[si]
			var ids [onion.Replicas]onion.DescriptorID
			if n.secrets != nil {
				ids = n.secrets.DescriptorIDsAt(svc.PermID, now)
			} else {
				ids = onion.DescriptorIDs(svc.PermID, now)
			}
			intros := hosts[si].IntroPoints()
			for replica, descID := range ids {
				di := int32(si*onion.Replicas + replica)
				descs[di] = onion.Descriptor{
					DescID:      descID,
					Address:     svc.Address,
					PermID:      svc.PermID,
					Replica:     uint8(replica),
					PublishedAt: now,
					IntroPoints: intros,
				}
				sc.pos = n.ring.ResponsibleIndicesInto(sc.pos[:0], descID, onion.SpreadPerReplica)
				for _, pos := range sc.pos {
					pls = append(pls, pos)
					dix = append(dix, di)
					cnt[pos]++
				}
			}
		}
		stage[shard] = staged{dirs: pls, descIdx: dix}
	})

	// Phase 3 (merge): cursor the staged counts into one placement arena
	// ordered directory-major then shard-then-service, and apply each
	// directory's span independently (each Directory has its own lock
	// and sees its placements in exact service order).
	dirOffsPtr := grabZeroed[int32](&i32Pool, nd+1)
	defer i32Pool.Put(dirOffsPtr)
	dirOffs := *dirOffsPtr
	total := shardFillCursors(counts, dirOffs, shards, nd)
	arena := make([]*onion.Descriptor, total)
	parallel.ForEach(shards, shards, func(shard int) {
		cur := counts[shard*nd : (shard+1)*nd]
		st := &stage[shard]
		for k, pos := range st.dirs {
			arena[cur[pos]] = &descs[st.descIdx[k]]
			cur[pos]++
		}
	})
	parallel.ForEach(n.workers, nd, func(d int) {
		for _, desc := range arena[dirOffs[d]:dirOffs[d+1]] {
			n.dirs[d].Publish(desc, now)
		}
	})
	return len(svcs)
}

// FetchEvent describes one descriptor fetch as the network executed it.
type FetchEvent struct {
	Client *Client
	// Guard is the entry guard the circuit used.
	Guard onion.Fingerprint
	// Dir is the directory that finally answered.
	Dir onion.Fingerprint
	// DescID is the requested descriptor ID.
	DescID onion.DescriptorID
	// Found reports whether the directory had the descriptor.
	Found bool
	// Attempts is how many directories the client contacted (retries on
	// unreachable directories included).
	Attempts int
	// At is the (true) request instant.
	At time.Time
}

// fetchScratch carries the reusable buffers and memos of one fetch
// worker. Traffic plans list requests grouped by service, so consecutive
// fetches usually repeat the same descriptor-ID derivations (per
// replica) and the same responsible-set lookups; phantom requests are
// Zipf-weighted, so their descriptor IDs repeat too. Both memos are pure
// functions of their keys — they can never change an outcome, only skip
// repeated SHA-1 and ring-search work.
type fetchScratch struct {
	pos []int32

	// Descriptor-ID memo for the current (service, period): one slot per
	// replica, filled lazily.
	idPermID onion.PermanentID
	idPeriod uint32
	idValid  bool
	idOK     [onion.Replicas]bool
	idVal    [onion.Replicas]onion.DescriptorID

	// Responsible-set memo: 4-way direct-mapped by the descriptor ID's
	// low bits (uniform SHA-1 output), so the two live replicas of a
	// service and the hot phantom IDs rarely evict each other.
	respKey [4]onion.DescriptorID
	respOK  [4]bool
	respLen [4]int
	respVal [4][onion.SpreadPerReplica]int32
}

// fetchRec is the compact, pointer-free record a fetch worker writes:
// DriveWindow buffers one per planned request (the garbage collector
// never scans the buffer) and materialises FetchEvents from them during
// the sequential replay.
type fetchRec struct {
	descID   onion.DescriptorID
	guard    onion.Fingerprint
	atNanos  int64
	clientID int32
	// lastDir is the ring position of the last directory tried (the
	// event's Dir field); answered is the position of the directory that
	// actually took the request, -1 when every responsible directory was
	// unreachable.
	lastDir  int32
	answered int32
	attempts int32
	found    bool
}

// event materialises the FetchEvent a record describes.
func (n *Network) event(rec *fetchRec) FetchEvent {
	return FetchEvent{
		Client:   n.clients[rec.clientID],
		Guard:    rec.guard,
		Dir:      n.ringFPs[rec.lastDir],
		DescID:   rec.descID,
		Found:    rec.found,
		Attempts: int(rec.attempts),
		At:       time.Unix(0, rec.atNanos).UTC(),
	}
}

// FetchDescriptor performs one client descriptor fetch for the service
// with permanent ID permID: the client computes the descriptor ID with
// its *local* clock, picks a replica, and queries one of the responsible
// directories through one of its guards.
//
// Like every Network method that draws from the network RNG, single
// fetches must be externally serialized with publishes and other
// fetches (DriveWindow is the concurrency-safe path: it executes an
// entire window's fetches on per-request RNGs against read-only
// stores). Expired descriptors read as absent but are reaped by the
// next Publish or Expire rather than on the fetch itself.
func (n *Network) FetchDescriptor(c *Client, permID onion.PermanentID, now time.Time) FetchEvent {
	var sc fetchScratch
	rec := n.fetchDescriptor(n.rng, c, permID, now, &sc)
	if rec.answered >= 0 {
		n.dirs[rec.answered].Log().Record(hsdir.Request{At: now, DescID: rec.descID, Found: rec.found})
	}
	return n.event(&rec)
}

// FetchRawID performs one fetch for an arbitrary descriptor ID (used for
// the phantom requests to never-published descriptors). The
// serialization contract of FetchDescriptor applies.
func (n *Network) FetchRawID(c *Client, descID onion.DescriptorID, now time.Time) FetchEvent {
	var sc fetchScratch
	rec := n.fetchByID(n.rng, c, descID, now, &sc)
	if rec.answered >= 0 {
		n.dirs[rec.answered].Log().Record(hsdir.Request{At: now, DescID: rec.descID, Found: rec.found})
	}
	return n.event(&rec)
}

// fetchDescriptor is FetchDescriptor with the randomness source and
// scratch buffers made explicit so DriveWindow can run fetches
// concurrently on per-request RNGs; the caller owns request-log
// recording.
//
//torhs:hotpath
func (n *Network) fetchDescriptor(rng *rand.Rand, c *Client, permID onion.PermanentID, now time.Time, sc *fetchScratch) fetchRec {
	local := c.LocalTime(now)
	replica := uint8(rng.Intn(onion.Replicas))
	period := onion.TimePeriod(permID, local)
	if !sc.idValid || sc.idPermID != permID || sc.idPeriod != period {
		sc.idPermID, sc.idPeriod, sc.idValid = permID, period, true
		sc.idOK = [onion.Replicas]bool{}
	}
	if !sc.idOK[replica] {
		sc.idOK[replica] = true
		if n.secrets != nil {
			sc.idVal[replica] = n.secrets.DescriptorIDForPeriod(permID, period, replica)
		} else {
			sc.idVal[replica] = onion.DescriptorIDForPeriod(permID, period, replica)
		}
	}
	return n.fetchByID(rng, c, sc.idVal[replica], now, sc)
}

//
//torhs:hotpath
func (n *Network) fetchByID(rng *rand.Rand, c *Client, descID onion.DescriptorID, now time.Time, sc *fetchScratch) fetchRec {
	rec := fetchRec{
		descID:   descID,
		guard:    c.gs.pickPool(n.pool, rng, now),
		atNanos:  now.UnixNano(),
		clientID: int32(c.ID),
		answered: -1,
	}
	slot := descID[len(descID)-1] & 3
	if !sc.respOK[slot] || sc.respKey[slot] != descID {
		sc.pos = n.ring.ResponsibleIndicesInto(sc.pos[:0], descID, onion.SpreadPerReplica)
		sc.respKey[slot], sc.respOK[slot] = descID, true
		sc.respLen[slot] = copy(sc.respVal[slot][:], sc.pos)
	}
	k := sc.respLen[slot]
	// Contact the responsible directories in random order, falling back
	// on unreachable ones, as the Tor client does. The permutation
	// replays math/rand.Perm's exact draw sequence into a stack buffer
	// (rand.Perm would heap-allocate per fetch); k never exceeds
	// onion.SpreadPerReplica, and the i=0 iteration swaps order[0] with
	// itself but still consumes one Intn draw — math/rand.Perm does the
	// same, and the RNG stream (and with it every driven window) must
	// not shift.
	var order [onion.SpreadPerReplica]int32
	for i := 0; i < k; i++ {
		j := rng.Intn(i + 1)
		order[i] = order[j]
		order[j] = int32(i)
	}
	for _, oi := range order[:k] {
		pos := sc.respVal[slot][oi]
		rec.attempts++
		rec.lastDir = pos
		if n.dirFailure > 0 && rng.Float64() < n.dirFailure {
			continue // this directory was unreachable; try the next
		}
		_, rec.found = n.dirs[pos].Probe(descID, now)
		rec.answered = pos
		return rec
	}
	// Every responsible directory was unreachable.
	return rec
}

// TrafficStats summarises a driven measurement window.
type TrafficStats struct {
	TotalRequests   int
	PhantomRequests int
	ResolvedHits    int
}

// planEntry is one planned request of a driven window.
type planEntry struct {
	permID  onion.PermanentID
	phantom bool
}

// Window-sized scratch buffers are pooled across DriveWindow calls (and
// across the per-step networks of a trawl): every slot is overwritten
// before it is read, so reuse can never change an outcome — it only
// stops each window from allocating and zeroing megabytes of plan,
// record, and log-routing buffers.
var (
	planPool = sync.Pool{New: func() any { return new([]planEntry) }}
	recsPool = sync.Pool{New: func() any { return new([]fetchRec) }}
	reqsPool = sync.Pool{New: func() any { return new([]hsdir.Request) }}
	idsPool  = sync.Pool{New: func() any { return new([]onion.DescriptorID) }}
	i32Pool  = sync.Pool{New: func() any { return new([]int32) }}
)

// grabSlice returns a zero-length slice with capacity >= n from the
// pooled backing array, growing it if needed.
func grabSlice[T any](pool *sync.Pool, n int) *[]T {
	p := pool.Get().(*[]T)
	if cap(*p) < n {
		*p = make([]T, 0, n)
	}
	*p = (*p)[:0]
	return p
}

// grabZeroed returns a length-n zeroed slice from the pooled backing
// array (grabSlice hands out dirty capacity; counting buffers need
// zeroes).
func grabZeroed[T any](pool *sync.Pool, n int) *[]T {
	p := grabSlice[T](pool, n)
	var zero T
	s := (*p)[:n]
	for i := range s {
		s[i] = zero
	}
	*p = s
	return p
}

// warmGuardSets rotates-in the guard set of every client, using the
// network RNG sequentially, refreshing any guard that would expire
// before horizon. DriveWindow calls it before fanning out so that
// concurrent fetches only *read* guard state: after warming, every
// guard's expiry lies beyond the window's end.
func (n *Network) warmGuardSets(now, horizon time.Time) {
	for _, c := range n.clients {
		c.gs.refreshPoolUntil(n.pool, n.rng, now, horizon)
	}
}

// ensureSecrets makes sure the shared secret table covers every local
// clock a client may use inside [start, end]. Called from the sequential
// planning phase only; phase-2 workers read the table immutably.
func (n *Network) ensureSecrets(start, end time.Time) {
	lo := start.Add(-n.maxSkew - 24*time.Hour)
	hi := end.Add(n.maxSkew + 24*time.Hour)
	if n.secrets == nil || !n.secrets.Covers(lo, hi) {
		n.secrets = onion.NewSecretIDTable(lo, hi)
	}
}

// DriveWindow generates descriptor-fetch traffic over a measurement
// window of the given duration starting at start: Poisson counts around
// each popular service's expected rate, plus phantom requests for
// never-published descriptor IDs at the configured fraction. The observer
// callback (optional) sees every fetch event — this is where the
// signature attack taps in.
//
// Execution is three-phase so cfg.Workers never changes the outcome:
// the traffic plan is drawn sequentially from the network RNG; the
// fetches execute concurrently, each on an RNG derived from its plan
// index, probing the descriptor stores lock-free and recording into
// per-worker buffers; and the events are replayed to the stats and the
// observer sequentially in plan order, with the request records routed
// to the per-directory logs in one batch per directory.
//
// The window is the cancellation unit: ctx is checked on entry and
// while the plan is drawn, before any descriptor store or directory log
// mutates. Once the fetch fan-out starts the window runs to completion,
// so a nil error means the window's effects are fully applied and a
// ctx.Err() return means the network state is exactly as it was —
// cancelled windows can always be replayed.
//
//torhs:cancelpoint
func (n *Network) DriveWindow(
	ctx context.Context,
	pop *hspop.Population,
	start time.Time,
	window time.Duration,
	observer func(FetchEvent),
) (TrafficStats, error) {
	// The window boundary is a fault site (crash/slow only: the method
	// surfaces no transient errors — its only error is cancellation).
	fault.MustHit(fault.SiteSimWindow)

	var out TrafficStats
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// Phase 1: draw the plan sequentially from the network RNG. The RNG
	// draws must complete once started (a partial draw would desync the
	// sequential stream), so cancellation is observed between services,
	// before the plan seed is drawn and any state below is touched.
	planPtr := grabSlice[planEntry](&planPool, 4096)
	defer planPool.Put(planPtr)
	plan := *planPtr
	realTotal := 0
	for _, svc := range pop.PopularServices() {
		if err := ctx.Err(); err != nil {
			*planPtr = plan
			return out, err
		}
		c := stats.Poisson(n.rng, svc.ExpectedRequests)
		for k := 0; k < c; k++ {
			plan = append(plan, planEntry{permID: svc.PermID})
		}
		realTotal += c
	}

	// Phantom pool: never-published descriptor IDs, power-law weighted.
	phantomFrac := pop.Config.PhantomRequestFraction
	phantomTotal := 0
	if phantomFrac > 0 {
		phantomTotal = int(float64(realTotal) * phantomFrac / (1 - phantomFrac))
	}
	nPhantomIDs := pop.Config.ScaledPhantomIDs()
	phantomPtr := grabSlice[onion.DescriptorID](&idsPool, nPhantomIDs)
	defer idsPool.Put(phantomPtr)
	phantomIDs := (*phantomPtr)[:nPhantomIDs]
	for i := range phantomIDs {
		f := onion.RandomFingerprint(n.rng)
		copy(phantomIDs[i][:], f[:])
	}
	for k := 0; k < phantomTotal; k++ {
		plan = append(plan, planEntry{phantom: true})
	}
	*planPtr = plan // pool the (possibly grown) backing array, not the stale header
	planSeed := n.rng.Int63()
	end := start.Add(window)
	n.warmGuardSets(start, end)
	n.ensureSecrets(start, end)

	// Phase 2: execute the fetches concurrently. Each request derives
	// its RNG from (planSeed, index) — one reseeded RNG per worker, not
	// one allocation per request — probes the descriptor stores without
	// taking any lock, and notes which directory answered. Every shard
	// is fully private: its own fetch scratch (descriptor-ID and
	// responsible-set memos), its own RNG stream, its own stats tally,
	// and its own per-directory staging counts — zero cross-shard
	// synchronization until the merge. Warmed guard sets are only read:
	// warming refreshed every guard that would expire before end. A
	// freshly refreshed guard is stable for minGuardLifetime, so for
	// windows that long or longer the no-mid-window-rotation guarantee
	// cannot hold and we fall back to serial execution (identical
	// results at every Workers value either way, since the plan already
	// fixes each request's RNG).
	workers := n.workers
	if window >= minGuardLifetime {
		workers = 1
	}
	shards := parallel.NumChunks(workers, len(plan))
	if shards == 0 {
		return out, nil
	}
	recsPtr := grabSlice[fetchRec](&recsPool, len(plan))
	defer recsPool.Put(recsPtr)
	recs := (*recsPtr)[:len(plan)] // pointer-free: never GC-scanned
	nd := len(n.dirs)
	// counts[shard*nd+d] stages shard's answered-request count for
	// directory d; after the drive it is rewritten in place into the
	// shard's fill cursors for the routing arena.
	countsPtr := grabZeroed[int32](&i32Pool, shards*nd)
	defer i32Pool.Put(countsPtr)
	counts := *countsPtr
	shardStats := make([]TrafficStats, shards)
	parallel.Chunks(shards, len(plan), func(shard, lo, hi int) {
		var sc fetchScratch
		rng := parallel.NewRNG(0)
		cnt := counts[shard*nd : (shard+1)*nd]
		st := &shardStats[shard]
		for i := lo; i < hi; i++ {
			rng.Seed(parallel.SeedFor(planSeed, int64(i)))
			at := start.Add(time.Duration(rng.Int63n(int64(window))))
			c := n.clients[rng.Intn(len(n.clients))]
			if plan[i].phantom {
				// Zipf-ish: low indexes requested far more often.
				idx := int(float64(len(phantomIDs)) * math.Pow(rng.Float64(), 2.2))
				if idx >= len(phantomIDs) {
					idx = len(phantomIDs) - 1
				}
				recs[i] = n.fetchByID(rng, c, phantomIDs[idx], at, &sc)
				st.PhantomRequests++
			} else {
				recs[i] = n.fetchDescriptor(rng, c, plan[i].permID, at, &sc)
			}
			st.TotalRequests++
			if recs[i].found {
				st.ResolvedHits++
			}
			if recs[i].answered >= 0 {
				cnt[recs[i].answered]++
			}
		}
	})

	// Phase 3: merge. Stats fold in shard index order; the observer —
	// when one is tapped in — replays the records sequentially in plan
	// order (the records are already globally ordered: chunk spans are
	// contiguous and ascending).
	out = mergeWindowStats(shardStats)
	if observer != nil {
		for i := range recs {
			observer(n.event(&recs[i]))
		}
	}

	// Route the window's request records to the per-directory logs: the
	// staged per-shard counts become fill cursors into one shared arena
	// whose directory spans are ordered shard-then-plan — which *is*
	// plan order, so log contents are byte-identical at every worker
	// count — then each shard copies its own records into its disjoint
	// cursor ranges in parallel, and the per-directory RecordBatch calls
	// (independent logs, one batch each) fan out too.
	dirOffsPtr := grabZeroed[int32](&i32Pool, nd+1)
	defer i32Pool.Put(dirOffsPtr)
	dirOffs := *dirOffsPtr
	total := shardFillCursors(counts, dirOffs, shards, nd)
	if total > 0 {
		arenaPtr := grabSlice[hsdir.Request](&reqsPool, int(total))
		defer reqsPool.Put(arenaPtr)
		arena := (*arenaPtr)[:total]
		parallel.Chunks(shards, len(plan), func(shard, lo, hi int) {
			cur := counts[shard*nd : (shard+1)*nd]
			for i := lo; i < hi; i++ {
				d := recs[i].answered
				if d < 0 {
					continue
				}
				arena[cur[d]] = hsdir.Request{
					At:     time.Unix(0, recs[i].atNanos).UTC(),
					DescID: recs[i].descID,
					Found:  recs[i].found,
				}
				cur[d]++
			}
		})
		parallel.ForEach(workers, nd, func(d int) {
			if dirOffs[d+1] > dirOffs[d] {
				n.dirs[d].Log().RecordBatch(arena[dirOffs[d]:dirOffs[d+1]])
			}
		})
	}
	return out, nil
}

// mergeWindowStats folds the per-shard traffic tallies of a driven
// window, iterating shards in index order (every field is a sum, but the
// order is part of the merge contract the analyzer checks).
//
//torhs:shardmerge shards
//torhs:hotpath
func mergeWindowStats(shards []TrafficStats) TrafficStats {
	var out TrafficStats
	for i := range shards {
		out.TotalRequests += shards[i].TotalRequests
		out.PhantomRequests += shards[i].PhantomRequests
		out.ResolvedHits += shards[i].ResolvedHits
	}
	return out
}

// shardFillCursors turns staged per-shard per-directory counts
// (counts[shard*nd+d]) into arena fill cursors, in place: after the call
// counts[shard*nd+d] is the arena index where that shard writes its
// first record for directory d, spans ordered directory-major then shard
// — so concatenation reproduces plan order exactly. dirOffs (len nd+1)
// receives each directory's [dirOffs[d], dirOffs[d+1]) arena span; the
// return value is the total record count.
//
//torhs:hotpath
func shardFillCursors(counts, dirOffs []int32, shards, nd int) int32 {
	pos := int32(0)
	for d := 0; d < nd; d++ {
		dirOffs[d] = pos
		for s := 0; s < shards; s++ {
			c := counts[s*nd+d]
			counts[s*nd+d] = pos
			pos += c
		}
	}
	dirOffs[nd] = pos
	return pos
}
