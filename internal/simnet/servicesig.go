package simnet

import (
	"sync"
	"time"

	"torhs/internal/onion"
)

// ServiceSignatureAttack implements the original attack of [8] that the
// paper's Section II-B summarises (and Section VI adapts to clients): a
// malicious responsible directory answers a hidden service's *descriptor
// upload* with a distinctive traffic signature; the signature travels
// back through the service's circuit, and if the service's entry guard is
// attacker-controlled, the guard observes it and learns the service's
// real IP address.
type ServiceSignatureAttack struct {
	mu sync.Mutex

	// target limits the attack to one service; the zero PermanentID
	// attacks every service whose upload hits an attacker directory
	// (the opportunistic mode of [8]).
	target         onion.PermanentID
	targetSet      bool
	attackerDirs   map[onion.Fingerprint]bool
	attackerGuards map[onion.Fingerprint]bool

	signaturesSent int
	detections     []ServiceDetection
}

// ServiceDetection is one deanonymised hidden-service observation.
type ServiceDetection struct {
	Address onion.Address
	IP      string
	Country string
	At      time.Time
	Guard   onion.Fingerprint
}

// NewServiceSignatureAttack builds the attack. Pass a zero target to
// attack opportunistically.
func NewServiceSignatureAttack(target onion.PermanentID, dirs, guards []onion.Fingerprint) *ServiceSignatureAttack {
	a := &ServiceSignatureAttack{
		target:         target,
		targetSet:      target != onion.PermanentID{},
		attackerDirs:   make(map[onion.Fingerprint]bool, len(dirs)),
		attackerGuards: make(map[onion.Fingerprint]bool, len(guards)),
	}
	for _, d := range dirs {
		a.attackerDirs[d] = true
	}
	for _, g := range guards {
		a.attackerGuards[g] = true
	}
	return a
}

// ObserveUpload inspects one descriptor-upload event; register it with
// Network.OnUpload.
func (a *ServiceSignatureAttack) ObserveUpload(ev UploadEvent) {
	if !a.attackerDirs[ev.Dir] {
		return
	}
	if a.targetSet && ev.Host.Service.PermID != a.target {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.signaturesSent++
	if a.attackerGuards[ev.Guard] {
		a.detections = append(a.detections, ServiceDetection{
			Address: ev.Host.Service.Address,
			IP:      ev.Host.IP,
			Country: ev.Host.Country,
			At:      ev.At,
			Guard:   ev.Guard,
		})
	}
}

// SignaturesSent returns how many uploads were answered with a signature.
func (a *ServiceSignatureAttack) SignaturesSent() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.signaturesSent
}

// Detections returns a copy of all observations.
func (a *ServiceSignatureAttack) Detections() []ServiceDetection {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]ServiceDetection, len(a.detections))
	copy(out, a.detections)
	return out
}

// DeanonymisedServices returns the distinct services whose IP was
// revealed, with the revealed IP.
func (a *ServiceSignatureAttack) DeanonymisedServices() map[onion.Address]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[onion.Address]string)
	for _, d := range a.detections {
		out[d.Address] = d.IP
	}
	return out
}
