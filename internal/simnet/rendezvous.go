package simnet

import (
	"errors"
	"fmt"
	"time"

	"torhs/internal/hspop"
	"torhs/internal/onion"
)

// This file implements the server side of the v2 hidden-service protocol
// and the rendezvous connection establishment the paper's Section II-A
// summarises: the service maintains introduction points and entry guards,
// uploads descriptors through a guard-anchored circuit, and clients reach
// it by joining circuits at a rendezvous point.

// Host is the machine operating a hidden service: the thing whose
// location the protocol protects and the [8]-style guard attack reveals.
type Host struct {
	// Service is the hidden service this host runs.
	Service *hspop.Service
	// IP / Country are the host's real location.
	IP      string
	Country string

	gs     guardSet
	intros []onion.Fingerprint
}

// Guards returns the host's current guard set.
func (h *Host) Guards() [3]onion.Fingerprint { return h.gs.guards }

// IntroPoints returns the host's current introduction points.
func (h *Host) IntroPoints() []onion.Fingerprint {
	out := make([]onion.Fingerprint, len(h.intros))
	copy(out, h.intros)
	return out
}

// Circuit is a three-hop path; the first hop is always an entry guard.
type Circuit struct {
	Guard  onion.Fingerprint
	Middle onion.Fingerprint
	Last   onion.Fingerprint
}

// UploadEvent is one descriptor upload as observed on the wire: the host
// pushed a descriptor to a directory through a guard-anchored circuit.
// The [8] attack taps here: a malicious directory answers the upload with
// a traffic signature, and if the host's guard is attacker-controlled the
// signature reveals the host's IP.
type UploadEvent struct {
	Host   *Host
	Guard  onion.Fingerprint
	Dir    onion.Fingerprint
	DescID onion.DescriptorID
	At     time.Time
}

// RendezvousResult describes one completed (or failed) client connection.
type RendezvousResult struct {
	// Found reports whether the descriptor lookup succeeded.
	Found bool
	// IntroPoint and RendezvousPoint are the relays used.
	IntroPoint      onion.Fingerprint
	RendezvousPoint onion.Fingerprint
	// ClientCircuit / ServiceCircuit are the two halves joined at the
	// rendezvous point.
	ClientCircuit  Circuit
	ServiceCircuit Circuit
}

// errNoRelays is returned when the consensus lacks enough relays to build
// circuits.
var errNoRelays = errors.New("simnet: not enough relays for circuit building")

// Host returns the host running the service with the given address, if
// the network has materialised one (hosts are created on first publish).
func (n *Network) Host(addr onion.Address) (*Host, bool) {
	h, ok := n.hosts[addr]
	return h, ok
}

// OnUpload registers an observer for descriptor-upload events.
func (n *Network) OnUpload(fn func(UploadEvent)) {
	n.uploadObservers = append(n.uploadObservers, fn)
}

// ensureHost materialises the Host for a service.
func (n *Network) ensureHost(svc *hspop.Service) *Host {
	if h, ok := n.hosts[svc.Address]; ok {
		return h
	}
	ip, country := n.geoDB.AllocateIP(n.rng)
	h := &Host{Service: svc, IP: ip, Country: country}
	n.hosts[svc.Address] = h
	return h
}

// pickRelay draws a random relay fingerprint from the consensus HSDir
// ring (any relay can serve as middle, intro, or rendezvous point at this
// abstraction level).
func (n *Network) pickRelay() onion.Fingerprint {
	fps := n.ring.Fingerprints()
	return fps[n.rng.Intn(len(fps))]
}

// establishIntroPoints picks k introduction points for the host.
func (n *Network) establishIntroPoints(h *Host, k int) {
	h.intros = make([]onion.Fingerprint, 0, k)
	for i := 0; i < k; i++ {
		h.intros = append(h.intros, n.pickRelay())
	}
}

// buildCircuit assembles a guard-anchored three-hop circuit ending at
// last.
func (n *Network) buildCircuit(gs *guardSet, last onion.Fingerprint, now time.Time) Circuit {
	return Circuit{
		Guard:  gs.pickPool(n.pool, n.rng, now),
		Middle: n.pickRelay(),
		Last:   last,
	}
}

// Connect performs the full client-side rendezvous: fetch the descriptor
// (through a directory, observed in the request log), extract an
// introduction point, set up a rendezvous point, and join the two circuit
// halves. The returned result reports every relay involved, which is what
// the attacks in this repository observe.
func (n *Network) Connect(c *Client, addr onion.Address, now time.Time) (*RendezvousResult, error) {
	if n.ring.Len() < 3 {
		return nil, errNoRelays
	}
	host, ok := n.hosts[addr]
	if !ok {
		return nil, fmt.Errorf("simnet: no host for %s", addr)
	}

	// 1. Descriptor fetch (with the client's possibly-skewed clock).
	ev := n.FetchDescriptor(c, host.Service.PermID, now)
	if !ev.Found {
		return &RendezvousResult{Found: false}, nil
	}
	if len(host.intros) == 0 {
		return nil, fmt.Errorf("simnet: host %s has no introduction points", addr)
	}

	// 2. Client picks a rendezvous point and builds a circuit to it.
	rp := n.pickRelay()
	clientCirc := n.buildCircuit(&c.gs, rp, now)

	// 3. INTRODUCE1 via an introduction point; the service answers by
	//    building its own circuit to the rendezvous point.
	intro := host.intros[n.rng.Intn(len(host.intros))]
	serviceCirc := n.buildCircuit(&host.gs, rp, now)

	return &RendezvousResult{
		Found:           true,
		IntroPoint:      intro,
		RendezvousPoint: rp,
		ClientCircuit:   clientCirc,
		ServiceCircuit:  serviceCirc,
	}, nil
}
