package jobs

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"torhs/internal/experiments"
	"torhs/internal/scenario"
)

// blockingRun returns a stub runner that signals when a job starts and
// blocks until the job context is cancelled or the release channel
// closes.
func blockingRun(started chan<- string, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, j *Job, progress func(experiments.ProgressEvent)) error {
		if started != nil {
			started <- j.ID()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-release:
			return nil
		}
	}
}

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	m := NewManager(opts)
	ctx, cancel := context.WithCancel(context.Background())
	m.Start(ctx)
	t.Cleanup(func() {
		cancel()
		if err := m.Drain(5 * time.Second); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return m
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if s := j.Status().State; s == want {
			return
		} else if s.Terminal() {
			t.Fatalf("job %s reached terminal state %q, want %q", j.ID(), s, want)
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %q, want %q", j.ID(), j.Status().State, want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestSubmitDedupesOnCacheKey(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	m := newTestManager(t, Options{Run: blockingRun(started, release)})

	j1, dup, err := m.Submit(scenario.Smoke, 1, []string{experiments.ExpScan})
	if err != nil || dup {
		t.Fatalf("first submit: job=%v dup=%v err=%v", j1, dup, err)
	}
	<-started

	// Same scenario+seed+subset (order-insensitive) → the same job.
	j2, dup, err := m.Submit(scenario.Smoke, 1, []string{experiments.ExpScan})
	if err != nil {
		t.Fatalf("dedupe submit: %v", err)
	}
	if !dup || j2.ID() != j1.ID() {
		t.Fatalf("got job %s dup=%v, want dedupe onto %s", j2.ID(), dup, j1.ID())
	}

	// A different seed is different store keys → a new job.
	j3, dup, err := m.Submit(scenario.Smoke, 2, []string{experiments.ExpScan})
	if err != nil || dup {
		t.Fatalf("different-seed submit: dup=%v err=%v", dup, err)
	}
	if j3.ID() == j1.ID() {
		t.Fatalf("different seed deduped onto the same job %s", j1.ID())
	}

	close(release)
	waitState(t, j1, StateDone)
	waitState(t, j3, StateDone)

	// After the job is terminal, the dedupe slot is free: an identical
	// POST starts a fresh job (which would resume from checkpoints).
	j4, dup, err := m.Submit(scenario.Smoke, 1, []string{experiments.ExpScan})
	if err != nil || dup {
		t.Fatalf("post-terminal submit: dup=%v err=%v", dup, err)
	}
	if j4.ID() == j1.ID() {
		t.Fatal("terminal job still occupies the dedupe slot")
	}
}

func TestSubmitValidates(t *testing.T) {
	m := newTestManager(t, Options{Run: blockingRun(nil, nil)})
	if _, _, err := m.Submit("no-such-scenario", 1, nil); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, _, err := m.Submit(scenario.Smoke, 1, []string{"no-such-experiment"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestQueueFullSheds(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Options{QueueDepth: 1, Workers: 1, Run: blockingRun(started, release)})

	// Fill the worker, then the queue; submissions land in distinct
	// dedupe slots via distinct seeds.
	if _, _, err := m.Submit(scenario.Smoke, 1, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := m.Submit(scenario.Smoke, 2, nil); err != nil {
		t.Fatal(err)
	}
	_, _, err := m.Submit(scenario.Smoke, 3, nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: err=%v, want ErrQueueFull", err)
	}
	// A shed submission must not leak a dedupe slot: retrying once the
	// queue has room must be possible, and meanwhile the shed key is
	// absent from the job index.
	for _, st := range m.Jobs() {
		if st.Seed == 3 {
			t.Fatalf("shed submission appears in the job index: %+v", st)
		}
	}
}

func TestJobDeadline(t *testing.T) {
	m := newTestManager(t, Options{JobTimeout: 20 * time.Millisecond, Run: blockingRun(nil, nil)})
	j, _, err := m.Submit(scenario.Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDeadline)
	if st := j.Status(); st.Err == "" {
		t.Fatal("deadline-exceeded job has no error")
	}
}

func TestFailedJob(t *testing.T) {
	boom := errors.New("boom")
	m := newTestManager(t, Options{Run: func(context.Context, *Job, func(experiments.ProgressEvent)) error {
		return boom
	}})
	j, _, err := m.Submit(scenario.Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if st := j.Status(); st.Err != "boom" {
		t.Fatalf("failed job err = %q, want %q", st.Err, "boom")
	}
}

func TestDrainCancelsInFlightAndQueued(t *testing.T) {
	started := make(chan string, 1)
	m := NewManager(Options{QueueDepth: 2, Workers: 1, Run: blockingRun(started, nil)})
	m.Start(context.Background())

	running, _, err := m.Submit(scenario.Smoke, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, _, err := m.Submit(scenario.Smoke, 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s := running.Status().State; s != StateCancelled {
		t.Fatalf("in-flight job state = %q, want cancelled", s)
	}
	if s := queued.Status().State; s != StateCancelled {
		t.Fatalf("queued job state = %q, want cancelled", s)
	}
	if !m.Draining() {
		t.Fatal("manager does not report draining")
	}
	if _, _, err := m.Submit(scenario.Smoke, 3, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: err=%v, want ErrDraining", err)
	}
}

func TestDrainGraceExceeded(t *testing.T) {
	started := make(chan string, 1)
	// A runner that ignores cancellation simulates a wedged kernel.
	m := NewManager(Options{Run: func(ctx context.Context, j *Job, _ func(experiments.ProgressEvent)) error {
		started <- j.ID()
		time.Sleep(500 * time.Millisecond)
		return ctx.Err()
	}})
	m.Start(context.Background())
	if _, _, err := m.Submit(scenario.Smoke, 1, nil); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := m.Drain(10 * time.Millisecond); err == nil {
		t.Fatal("drain returned nil despite a wedged job")
	}
	// Let the wedged worker finish so the test does not leak it.
	if err := m.Drain(5 * time.Second); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

func TestEventsReplayAndStream(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	m := newTestManager(t, Options{Run: func(ctx context.Context, j *Job, progress func(experiments.ProgressEvent)) error {
		started <- j.ID()
		progress(experiments.ProgressEvent{Experiment: experiments.ExpScan, Stage: "start"})
		<-release
		progress(experiments.ProgressEvent{Experiment: experiments.ExpScan, Stage: "done"})
		return nil
	}})
	j, _, err := m.Submit(scenario.Smoke, 1, []string{experiments.ExpScan})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Subscribing mid-run replays the history (queued, running, start)
	// before the live tail.
	events, releaseSub := j.Subscribe()
	defer releaseSub()
	close(release)

	var got []Event
	for ev := range events {
		got = append(got, ev)
	}
	want := []Event{
		{Type: "state", State: StateQueued},
		{Type: "state", State: StateRunning},
		{Type: "progress", Experiment: experiments.ExpScan, Stage: "start"},
		{Type: "progress", Experiment: experiments.ExpScan, Stage: "done"},
		{Type: "state", State: StateDone},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Subscribing after the terminal state replays everything and
	// closes immediately.
	events, releaseSub2 := j.Subscribe()
	defer releaseSub2()
	n := 0
	for range events {
		n++
	}
	if n != len(want) {
		t.Fatalf("post-terminal replay delivered %d events, want %d", n, len(want))
	}
}

// TestNoGoroutineLeakAfterCancelledJobs runs a batch of jobs that all
// end cancelled (per-job deadline) with live subscribers attached, then
// checks the goroutine count settles back to the baseline — the drain
// path must not strand workers, subscribers, or timers.
func TestNoGoroutineLeakAfterCancelledJobs(t *testing.T) {
	before := runtime.NumGoroutine()

	m := NewManager(Options{QueueDepth: 32, Workers: 2, JobTimeout: 10 * time.Millisecond,
		Run: blockingRun(nil, nil)})
	m.Start(context.Background())
	var jobs []*Job
	for seed := int64(0); seed < 16; seed++ {
		j, _, err := m.Submit(scenario.Smoke, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		ev, release := j.Subscribe()
		defer release()
		go func() { // a subscriber that reads until close, like an SSE handler
			for range ev {
			}
		}()
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		<-j.Done()
		if s := j.Status().State; s != StateDeadline {
			t.Fatalf("job %s state = %q, want deadline-exceeded", j.ID(), s)
		}
	}
	if err := m.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after cancelled jobs\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
