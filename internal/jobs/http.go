package jobs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// retryAfterSeconds is the backoff hint sent with shed responses. The
// queue drains at study pace, so a short constant hint is honest
// enough; clients that keep hitting 429 should back off exponentially
// themselves.
const retryAfterSeconds = 5

// API serves the study-execution endpoints over a Manager:
//
//	POST /studies                submit {scenario, seed, experiments}
//	GET  /studies                list all jobs, newest first
//	GET  /studies/{id}           one job's status
//	GET  /studies/{id}/events    SSE stream: history replay, then live
type API struct {
	m *Manager
}

// NewAPI wraps a manager.
func NewAPI(m *Manager) *API { return &API{m: m} }

// Register mounts the study routes on mux.
func (a *API) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /studies", a.handleSubmit)
	mux.HandleFunc("GET /studies", a.handleIndex)
	mux.HandleFunc("GET /studies/{id}", a.handleStatus)
	mux.HandleFunc("GET /studies/{id}/events", a.handleEvents)
}

// SubmitRequest is the POST /studies body.
type SubmitRequest struct {
	Scenario    string   `json:"scenario"`
	Seed        int64    `json:"seed"`
	Experiments []string `json:"experiments,omitempty"` // empty = all
}

// SubmitResponse echoes the job the submission mapped to.
type SubmitResponse struct {
	Status
	// Deduped is true when the POST matched an already queued or
	// running job and no new work was enqueued.
	Deduped bool `json:"deduped,omitempty"`
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if req.Scenario == "" {
		http.Error(w, "scenario is required", http.StatusBadRequest)
		return
	}
	job, deduped, err := a.m.Submit(req.Scenario, req.Seed, req.Experiments)
	switch {
	case err == nil:
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case err == ErrDraining:
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	code := http.StatusAccepted
	if deduped {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{Status: job.Status(), Deduped: deduped})
}

func (a *API) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.m.Jobs())
}

func (a *API) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleEvents streams the job's events as server-sent events. The
// history replays first, then live events follow; the stream ends when
// the job reaches a terminal state or the client goes away.
func (a *API) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := a.m.Get(r.PathValue("id"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events, release := job.Subscribe()
	defer release()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			flusher.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
