package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"torhs/internal/experiments"
	"torhs/internal/scenario"
)

func newTestAPI(t *testing.T, opts Options) (*Manager, *httptest.Server) {
	t.Helper()
	m := newTestManager(t, opts)
	mux := http.NewServeMux()
	NewAPI(m).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return m, srv
}

func postStudy(t *testing.T, url string, req SubmitRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPSubmitStatusAndDedupe(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	_, srv := newTestAPI(t, Options{Run: blockingRun(started, release)})

	resp := postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 1,
		Experiments: []string{experiments.ExpScan}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", resp.StatusCode)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" || sub.Deduped {
		t.Fatalf("submit response = %+v", sub)
	}
	<-started

	// The identical POST dedupes onto the running job with 200.
	resp = postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 1,
		Experiments: []string{experiments.ExpScan}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedupe POST status = %d, want 200", resp.StatusCode)
	}
	var dup SubmitResponse
	json.NewDecoder(resp.Body).Decode(&dup)
	resp.Body.Close()
	if !dup.Deduped || dup.ID != sub.ID {
		t.Fatalf("dedupe response = %+v, want deduped onto %s", dup, sub.ID)
	}

	// Status endpoint reflects the running job; unknown IDs 404.
	resp, err := http.Get(srv.URL + "/studies/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.State != StateRunning {
		t.Fatalf("status = %+v, want running", st)
	}
	if resp, _ = http.Get(srv.URL + "/studies/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	close(release)
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestAPI(t, Options{Run: blockingRun(nil, nil)})
	for _, body := range []string{
		`{`,                      // malformed JSON
		`{}`,                     // missing scenario
		`{"scenario":"no-such"}`, // unknown scenario
		`{"scenario":"smoke","experiments":["no-such"]}`, // unknown experiment
	} {
		resp, err := http.Post(srv.URL+"/studies", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHTTPQueueFullSheds429(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	_, srv := newTestAPI(t, Options{QueueDepth: 1, Workers: 1, Run: blockingRun(started, release)})

	resp := postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 1})
	resp.Body.Close()
	<-started
	resp = postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 2})
	resp.Body.Close()

	resp = postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull POST status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response has no Retry-After header")
	}
}

func TestHTTPDraining503(t *testing.T) {
	m := NewManager(Options{Run: blockingRun(nil, nil)})
	m.Start(context.Background())
	mux := http.NewServeMux()
	NewAPI(m).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if err := m.Drain(time.Second); err != nil {
		t.Fatal(err)
	}
	resp := postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response has no Retry-After header")
	}
}

// TestHTTPEventStream reads the SSE endpoint end to end: history
// replay, live progress, and stream close on the terminal state.
func TestHTTPEventStream(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	_, srv := newTestAPI(t, Options{Run: func(ctx context.Context, j *Job, progress func(experiments.ProgressEvent)) error {
		started <- j.ID()
		<-release
		progress(experiments.ProgressEvent{Experiment: experiments.ExpScan, Stage: "done"})
		return nil
	}})

	resp := postStudy(t, srv.URL, SubmitRequest{Scenario: scenario.Smoke, Seed: 1,
		Experiments: []string{experiments.ExpScan}})
	var sub SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	<-started

	resp, err := http.Get(srv.URL + "/studies/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	close(release)

	var payloads []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		payloads = append(payloads, ev)
	}
	// The stream must end by itself (terminal state closes it), having
	// replayed queued/running and delivered the live progress + done.
	want := []Event{
		{Type: "state", State: StateQueued},
		{Type: "state", State: StateRunning},
		{Type: "progress", Experiment: experiments.ExpScan, Stage: "done"},
		{Type: "state", State: StateDone},
	}
	if len(payloads) != len(want) {
		t.Fatalf("SSE delivered %+v, want %d events", payloads, len(want))
	}
	for i := range want {
		if payloads[i] != want[i] {
			t.Fatalf("SSE event[%d] = %+v, want %+v", i, payloads[i], want[i])
		}
	}
}
