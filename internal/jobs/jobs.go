// Package jobs is the study-execution plane behind hsserve: a bounded
// queue of study jobs, each running the experiment pipeline against the
// shared result store with checkpointing armed, under a per-job
// deadline, with progress streamed to subscribers.
//
// The plane leans on the rest of the stack for every hard guarantee:
// dedupe keys are the store's cache keys (two POSTs asking for the same
// bytes share one execution), jobs run with UseCache+Resume so a job
// cancelled by a drain leaves window checkpoints behind and a re-POST
// after restart resumes byte-identically, and cancellation propagates
// through the study context so kernels stop at checkpoint boundaries.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"torhs/internal/experiments"
	"torhs/internal/resultstore"
	"torhs/internal/scenario"
)

// State is one point in a job's lifecycle:
//
//	queued → running → {done, failed, cancelled, deadline-exceeded}
//
// Submissions shed by a full queue or a draining manager never become
// jobs at all — the caller gets ErrQueueFull / ErrDraining instead.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	StateDeadline  State = "deadline-exceeded"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCancelled, StateDeadline:
		return true
	}
	return false
}

// ErrQueueFull is returned by Submit when the bounded queue has no
// room; callers translate it to 429 with Retry-After.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrDraining is returned by Submit once Drain has begun; callers
// translate it to 503.
var ErrDraining = errors.New("jobs: draining, not accepting jobs")

// Event is one observable transition of a job, delivered to
// subscribers in order: state changes and per-experiment scheduling
// progress.
type Event struct {
	Type       string `json:"type"` // "state" or "progress"
	State      State  `json:"state,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	Stage      string `json:"stage,omitempty"` // "cached", "start", "done", "failed"
	Err        string `json:"err,omitempty"`
}

// Status is a point-in-time snapshot of a job.
type Status struct {
	ID          string   `json:"id"`
	Scenario    string   `json:"scenario"`
	Seed        int64    `json:"seed"`
	Experiments []string `json:"experiments,omitempty"` // nil = all
	State       State    `json:"state"`
	Err         string   `json:"err,omitempty"`
}

// Job is one submitted study execution.
type Job struct {
	id          string
	key         string
	scenario    string
	seed        int64
	experiments []string

	mu     sync.Mutex
	state  State
	err    string
	events []Event
	subs   map[chan Event]struct{}
	done   chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Key returns the dedupe key: the scenario label, the full config cache
// key, and the sorted experiment selection — exactly the inputs that
// determine the store documents the job would produce.
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID:          j.id,
		Scenario:    j.scenario,
		Seed:        j.seed,
		Experiments: append([]string(nil), j.experiments...),
		State:       j.state,
		Err:         j.err,
	}
}

// Subscribe returns a channel that replays the job's event history and
// then streams live events, plus a release function the subscriber must
// call when done. The channel is closed after the terminal event.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 256)
	j.mu.Lock()
	for _, ev := range j.events {
		sendEvent(ch, ev)
	}
	terminal := j.state.Terminal()
	if !terminal {
		j.subs[ch] = struct{}{}
	}
	j.mu.Unlock()
	if terminal {
		close(ch)
		return ch, func() {}
	}
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// sendEvent delivers without blocking: a subscriber that stops reading
// loses progress events rather than wedging the scheduler (progress is
// advisory; Status and the store are the ground truth).
func sendEvent(ch chan Event, ev Event) {
	select {
	case ch <- ev:
	default:
	}
}

// record appends to history and fans out to subscribers.
func (j *Job) record(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	for ch := range j.subs {
		sendEvent(ch, ev)
	}
	if ev.Type == "state" && ev.State.Terminal() {
		for ch := range j.subs {
			delete(j.subs, ch)
			close(ch)
		}
		close(j.done)
	}
	j.mu.Unlock()
}

// setState transitions the job and emits the state event.
func (j *Job) setState(s State, err error) {
	j.mu.Lock()
	j.state = s
	if err != nil {
		j.err = err.Error()
	}
	j.mu.Unlock()
	ev := Event{Type: "state", State: s}
	if err != nil {
		ev.Err = err.Error()
	}
	j.record(ev)
}

// progress adapts the registry's scheduling hook to job events.
func (j *Job) progress(ev experiments.ProgressEvent) {
	j.record(Event{Type: "progress", Experiment: ev.Experiment, Stage: ev.Stage, Err: ev.Err})
}

// RunFunc executes one job's study. Tests inject stubs; production uses
// the default pipeline runner.
type RunFunc func(ctx context.Context, j *Job, progress func(experiments.ProgressEvent)) error

// Options parameterises a Manager.
type Options struct {
	// Store is the result store jobs publish into (required by the
	// default runner).
	Store *resultstore.Store
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// beyond it Submit sheds with ErrQueueFull. <= 0 means 8.
	QueueDepth int
	// Workers is how many jobs run concurrently. <= 0 means 1 — studies
	// parallelise internally, so one at a time is the sane default.
	Workers int
	// JobTimeout is the per-job deadline (context.WithTimeout). <= 0
	// disables the deadline.
	JobTimeout time.Duration
	// Run overrides the study runner (tests). Nil uses the default,
	// which runs the paper registry with UseCache, CheckpointEvery=1,
	// and Resume armed against Store.
	Run RunFunc
}

// Manager owns the queue, the worker pool, and the dedupe index.
type Manager struct {
	opts   Options
	queue  chan *Job
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job // by ID
	inflight map[string]*Job // by dedupe key, queued or running only
	nextID   int
	draining bool
}

// NewManager builds a manager; call Start before Submit.
func NewManager(opts Options) *Manager {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Run == nil {
		opts.Run = defaultRun(opts.Store)
	}
	return &Manager{
		opts:     opts,
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     map[string]*Job{},
		inflight: map[string]*Job{},
	}
}

// defaultRun executes the paper study for the job's scenario, seed, and
// experiment subset. UseCache serves already-persisted documents,
// CheckpointEvery=1 snapshots every window, and Resume folds forward
// from any checkpoint a previous (cancelled or crashed) execution of
// the same key left behind — so a drain-interrupted job re-POSTed later
// produces byte-identical store content to an uninterrupted run.
func defaultRun(store *resultstore.Store) RunFunc {
	return func(ctx context.Context, j *Job, progress func(experiments.ProgressEvent)) error {
		spec, err := scenario.Lookup(j.scenario)
		if err != nil {
			return err
		}
		env, err := experiments.NewEnv(experiments.ConfigFromSpec(spec, j.seed))
		if err != nil {
			return err
		}
		_, err = experiments.Paper().RunStudy(ctx, env, experiments.RunOptions{
			Names:           j.experiments,
			Scenario:        j.scenario,
			Store:           store,
			UseCache:        true,
			CheckpointEvery: 1,
			Resume:          true,
			Progress:        progress,
		}, io.Discard)
		return err
	}
}

// Start launches the worker pool. The workers stop when ctx is
// cancelled or Drain is called.
func (m *Manager) Start(ctx context.Context) {
	ctx, m.cancel = context.WithCancel(ctx)
	m.wg.Add(m.opts.Workers)
	for i := 0; i < m.opts.Workers; i++ {
		go m.worker(ctx)
	}
}

func (m *Manager) worker(ctx context.Context) {
	defer m.wg.Done()
	for {
		select {
		case <-ctx.Done():
			// Flush whatever is still queued as cancelled so no job is
			// left dangling in "queued" after a drain.
			for {
				select {
				case j := <-m.queue:
					m.finish(j, StateCancelled, ctx.Err())
				default:
					return
				}
			}
		case j := <-m.queue:
			m.runJob(ctx, j)
		}
	}
}

func (m *Manager) runJob(ctx context.Context, j *Job) {
	if err := ctx.Err(); err != nil {
		m.finish(j, StateCancelled, err)
		return
	}
	jctx := ctx
	if m.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, m.opts.JobTimeout)
		defer cancel()
	}
	j.setState(StateRunning, nil)
	err := m.opts.Run(jctx, j, j.progress)
	switch {
	case err == nil:
		m.finish(j, StateDone, nil)
	case errors.Is(err, context.DeadlineExceeded):
		m.finish(j, StateDeadline, err)
	case errors.Is(err, context.Canceled):
		m.finish(j, StateCancelled, err)
	default:
		m.finish(j, StateFailed, err)
	}
}

// finish moves a job to its terminal state and frees its dedupe slot,
// so a later identical POST starts a fresh job (which resumes from any
// checkpoints this one flushed).
func (m *Manager) finish(j *Job, s State, err error) {
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
	j.setState(s, err)
}

// Submit enqueues a study job. When an identical job (same dedupe key)
// is already queued or running, that job is returned with deduped=true
// and nothing new is enqueued. A full queue sheds with ErrQueueFull; a
// draining manager rejects with ErrDraining.
func (m *Manager) Submit(scen string, seed int64, names []string) (job *Job, deduped bool, err error) {
	spec, err := scenario.Lookup(scen)
	if err != nil {
		return nil, false, err
	}
	reg := experiments.Paper()
	for _, n := range names {
		if _, ok := reg.Get(n); !ok {
			return nil, false, fmt.Errorf("jobs: unknown experiment %q", n)
		}
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	cfg := experiments.ConfigFromSpec(spec, seed)
	key := scen + "|" + cfg.CacheKey() + "|" + strings.Join(sorted, ",")

	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.inflight[key]; ok {
		return j, true, nil
	}
	if m.draining {
		return nil, false, ErrDraining
	}
	m.nextID++
	j := &Job{
		id:          fmt.Sprintf("s%d", m.nextID),
		key:         key,
		scenario:    scen,
		seed:        seed,
		experiments: append([]string(nil), names...),
		state:       StateQueued,
		subs:        map[chan Event]struct{}{},
		done:        make(chan struct{}),
	}
	j.events = append(j.events, Event{Type: "state", State: StateQueued})
	select {
	case m.queue <- j:
	default:
		return nil, false, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.inflight[key] = j
	return j, false, nil
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs snapshots every job, newest first.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id > jobs[k].id })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Draining reports whether Drain has begun (readiness probes flip on
// this).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain stops accepting submissions, cancels in-flight jobs (their
// kernels flush window checkpoints and stop at the next boundary), and
// waits for the workers to finish, up to the grace period. It returns
// nil when everything stopped inside the grace window.
func (m *Manager) Drain(grace time.Duration) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	if m.cancel != nil {
		m.cancel()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		return fmt.Errorf("jobs: drain exceeded %v grace period", grace)
	}
}
