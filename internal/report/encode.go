package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Format names accepted by Encode.
const (
	FormatText     = "text"
	FormatJSON     = "json"
	FormatMarkdown = "md"
	FormatCSV      = "csv"
)

// Formats lists the encoder names in listing order.
func Formats() []string {
	return []string{FormatText, FormatJSON, FormatMarkdown, FormatCSV}
}

// ContentType returns the HTTP content type for a format.
func ContentType(format string) string {
	switch format {
	case FormatJSON:
		return "application/json"
	case FormatMarkdown:
		return "text/markdown; charset=utf-8"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// ValidFormat reports whether format names a known encoder — the one
// membership check the CLI, the registry and the HTTP server all share.
func ValidFormat(format string) error {
	for _, f := range Formats() {
		if f == format {
			return nil
		}
	}
	return fmt.Errorf("report: unknown format %q (have: %s)", format, strings.Join(Formats(), ", "))
}

// Encode renders the document in the named format.
func Encode(w io.Writer, d *Document, format string) error {
	switch format {
	case FormatText:
		return EncodeText(w, d)
	case FormatJSON:
		return EncodeJSON(w, d)
	case FormatMarkdown:
		return EncodeMarkdown(w, d)
	case FormatCSV:
		return EncodeCSV(w, d)
	default:
		return ValidFormat(format)
	}
}

// EncodeText renders the document exactly as the pre-model pipeline
// printed it: every node carries the printf format it was historically
// rendered with, so this encoding is byte-identical to the study's
// fmt.Fprintf output (the golden-file and determinism tests pin it).
func EncodeText(w io.Writer, d *Document) error {
	bw := newErrWriter(w)
	for _, s := range d.Sections {
		if s.Raw != "" {
			bw.writeString(s.Raw)
			continue
		}
		if s.Title != "" {
			bw.printf("== %s ==\n", s.Title)
		}
		for _, n := range s.Nodes {
			encodeTextNode(bw, n)
		}
		bw.writeString("\n")
	}
	return bw.err
}

func encodeTextNode(bw *errWriter, n Node) {
	switch {
	case n.KV != nil:
		bw.printf(n.KV.Format+"\n", fieldArgs(n.KV.Fields)...)
	case n.Text != nil:
		for _, line := range n.Text.Lines {
			bw.writeString(line + "\n")
		}
	case n.Table != nil:
		for _, row := range n.Table.Rows {
			bw.printf(n.Table.RowFormat+"\n", valueArgs(row)...)
		}
	case n.Figure != nil:
		for _, p := range n.Figure.Points {
			args := append([]any{p.Label}, valueArgs(p.Values)...)
			bw.printf(n.Figure.RowFormat+"\n", args...)
		}
	}
}

func fieldArgs(fields []Field) []any {
	out := make([]any, len(fields))
	for i, f := range fields {
		out[i] = f.Value.arg()
	}
	return out
}

func valueArgs(vals []Value) []any {
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = v.arg()
	}
	return out
}

// EncodeJSON renders the document as indented JSON (for humans and
// HTTP consumers). The canonical compact form used for hashing and
// storage is CanonicalJSON.
func EncodeJSON(w io.Writer, d *Document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// DecodeJSON parses a document from either the indented or the
// canonical encoding.
func DecodeJSON(r io.Reader) (*Document, error) {
	var d Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &d, nil
}

// CanonicalJSON returns the compact deterministic encoding used to
// content-address documents: same document, same bytes. The model has
// no maps, so encoding/json's field order is fixed by declaration.
func CanonicalJSON(d *Document) ([]byte, error) {
	b, err := json.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("report: canonical encode: %w", err)
	}
	return b, nil
}

// EncodeMarkdown renders sections as ## headings, KV and text lines as
// prose, and tables/figures as Markdown tables.
func EncodeMarkdown(w io.Writer, d *Document) error {
	bw := newErrWriter(w)
	if d.Title != "" {
		bw.printf("# %s\n\n", d.Title)
	}
	for _, s := range d.Sections {
		if s.Raw != "" {
			raw := s.Raw
			if !strings.HasSuffix(raw, "\n") {
				raw += "\n"
			}
			// The fence must be longer than any backtick run inside the
			// raw text, or an inner line would terminate it early.
			fence := strings.Repeat("`", max(4, longestBacktickRun(raw)+1))
			bw.printf("%s\n%s%s\n\n", fence, raw, fence)
			continue
		}
		if s.Title != "" {
			bw.printf("## %s\n\n", s.Title)
		}
		// Consecutive prose lines form one paragraph: hard breaks
		// (backslash-newline) join lines *within* it, never trail its
		// last line — CommonMark renders a trailing backslash before a
		// blank line as a literal backslash.
		var prose []string
		flush := func() {
			if len(prose) == 0 {
				return
			}
			bw.writeString(strings.Join(prose, "\\\n") + "\n\n")
			prose = nil
		}
		for _, n := range s.Nodes {
			switch {
			case n.KV != nil:
				prose = append(prose, strings.TrimLeft(fmt.Sprintf(n.KV.Format, fieldArgs(n.KV.Fields)...), " "))
			case n.Text != nil:
				prose = append(prose, n.Text.Lines...)
			default:
				flush()
				encodeMarkdownNode(bw, n)
			}
		}
		flush()
	}
	return bw.err
}

func encodeMarkdownNode(bw *errWriter, n Node) {
	switch {
	case n.Table != nil:
		width := len(n.Table.Columns)
		if width == 0 && len(n.Table.Rows) > 0 {
			width = len(n.Table.Rows[0])
		}
		markdownTable(bw, n.Table.Columns, width, func(emit func([]string)) {
			for _, row := range n.Table.Rows {
				emit(displayCells(row))
			}
		})
	case n.Figure != nil:
		width := 1
		if len(n.Figure.Points) > 0 {
			width += len(n.Figure.Points[0].Values)
		}
		cols := n.Figure.Columns
		if len(cols) == 0 {
			cols = defaultColumns(width)
		}
		markdownTable(bw, cols, width, func(emit func([]string)) {
			for _, p := range n.Figure.Points {
				// The label cell always renders, even empty — dropping
				// it would shift the point's values one column left.
				emit(append([]string{p.Label}, displayCells(p.Values)...))
			}
		})
	}
}

// longestBacktickRun returns the length of the longest consecutive
// backtick sequence in s.
func longestBacktickRun(s string) int {
	longest, run := 0, 0
	for _, r := range s {
		if r == '`' {
			run++
			longest = max(longest, run)
		} else {
			run = 0
		}
	}
	return longest
}

func defaultColumns(width int) []string {
	if width <= 0 {
		return nil
	}
	cols := make([]string, width)
	cols[0] = "label"
	for i := 1; i < width; i++ {
		cols[i] = fmt.Sprintf("v%d", i)
	}
	return cols
}

func displayCells(vals []Value) []string {
	cells := make([]string, len(vals))
	for i, v := range vals {
		cells[i] = v.Display()
	}
	return cells
}

func markdownTable(bw *errWriter, cols []string, width int, rows func(emit func([]string))) {
	if width == 0 {
		width = len(cols)
	}
	if len(cols) == 0 {
		cols = defaultColumns(width)
	}
	if len(cols) == 0 {
		// A table with neither columns nor rows has nothing to render
		// (and must not panic on decoded documents that omit both).
		return
	}
	bw.writeString("| " + strings.Join(cols, " | ") + " |\n")
	bw.writeString("|" + strings.Repeat(" --- |", len(cols)) + "\n")
	rows(func(cells []string) {
		for len(cells) < len(cols) {
			cells = append(cells, "")
		}
		bw.writeString("| " + strings.Join(cells, " | ") + " |\n")
	})
	bw.writeString("\n")
}

// EncodeCSV flattens every table and figure row (and KV field) into
// one long-format CSV: section,node,row,label,column,value.
func EncodeCSV(w io.Writer, d *Document) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"section", "node", "row", "label", "column", "value"}); err != nil {
		return err
	}
	for _, s := range d.Sections {
		if s.Raw != "" {
			if err := cw.Write([]string{s.ID, "raw", "0", "", "text", s.Raw}); err != nil {
				return err
			}
			continue
		}
		for ni, n := range s.Nodes {
			if err := encodeCSVNode(cw, s.ID, ni, n); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func encodeCSVNode(cw *csv.Writer, section string, ni int, n Node) error {
	node := fmt.Sprintf("%d", ni)
	switch {
	case n.KV != nil:
		for _, f := range n.KV.Fields {
			if err := cw.Write([]string{section, "kv" + node, "0", "", f.Name, f.Value.Display()}); err != nil {
				return err
			}
		}
	case n.Text != nil:
		for i, line := range n.Text.Lines {
			if err := cw.Write([]string{section, "text" + node, fmt.Sprintf("%d", i), "", "text", line}); err != nil {
				return err
			}
		}
	case n.Table != nil:
		id := n.Table.ID
		if id == "" {
			id = "table" + node
		}
		for ri, row := range n.Table.Rows {
			for ci, v := range row {
				col := fmt.Sprintf("c%d", ci)
				if ci < len(n.Table.Columns) {
					col = n.Table.Columns[ci]
				}
				if err := cw.Write([]string{section, id, fmt.Sprintf("%d", ri), "", col, v.Display()}); err != nil {
					return err
				}
			}
		}
	case n.Figure != nil:
		id := n.Figure.ID
		if id == "" {
			id = "figure" + node
		}
		for ri, p := range n.Figure.Points {
			for ci, v := range p.Values {
				col := fmt.Sprintf("v%d", ci+1)
				if ci+1 < len(n.Figure.Columns) {
					col = n.Figure.Columns[ci+1]
				}
				if err := cw.Write([]string{section, id, fmt.Sprintf("%d", ri), p.Label, col, v.Display()}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// errWriter latches the first write error so encoders can stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) writeString(s string) {
	if e.err != nil {
		return
	}
	_, e.err = io.WriteString(e.w, s)
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// TextString is EncodeText into a string (convenience for shims and
// tests).
func TextString(d *Document) string {
	var buf bytes.Buffer
	_ = EncodeText(&buf, d) // bytes.Buffer writes cannot fail
	return buf.String()
}
