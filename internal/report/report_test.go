package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sampleDocument exercises every node kind and value kind.
func sampleDocument() *Document {
	sec := NewSection("fig1", "Fig. 1: open-ports distribution").
		KVLine("addresses scanned: %d, coverage %.0f%%",
			"scanned", Int(1245), "coverage", Float(97.3))
	sec.AddFigure(&Figure{
		ID:        "ports",
		RowFormat: "  %-16s %6d",
		Columns:   []string{"port", "count"},
		Points: []Point{
			{Label: "80-http", Values: []Value{Int(155)}},
			{Label: "443-https", Values: []Value{Int(39)}},
		},
	})
	tab := NewSection("table1", "Table I").
		KVLine("attempted: %d", "attempted", Int(271)).
		TextLines("no clusters found")
	tab.AddTable(&Table{
		ID:        "destinations",
		Columns:   []string{"port", "count"},
		RowFormat: "  %-6s %6d",
		Rows: [][]Value{
			{String("80"), Int(145)},
			{String("Other"), Int(12)},
		},
	})
	return New("sample", sec, tab, RawSection("legacy", "free-form bytes\n"))
}

func TestEncodeTextMatchesFormats(t *testing.T) {
	got := TextString(sampleDocument())
	want := "== Fig. 1: open-ports distribution ==\n" +
		"addresses scanned: 1245, coverage 97%\n" +
		"  80-http             155\n" +
		"  443-https            39\n" +
		"\n" +
		"== Table I ==\n" +
		"attempted: 271\n" +
		"no clusters found\n" +
		"  80        145\n" +
		"  Other      12\n" +
		"\n" +
		"free-form bytes\n"
	if got != want {
		t.Fatalf("text encoding mismatch:\n--- got ---\n%q\n--- want ---\n%q", got, want)
	}
}

// TestJSONRoundTrip is the acceptance contract: decode(encode(doc))
// equals doc, for a document covering every node and value kind.
func TestJSONRoundTrip(t *testing.T) {
	doc := sampleDocument()
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, doc); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(doc, back) {
		t.Fatalf("JSON round trip not lossless:\n--- original ---\n%#v\n--- decoded ---\n%#v", doc, back)
	}
	// Canonical form is stable and round-trips too.
	c1, err := CanonicalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalJSON(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("canonical JSON differs after a round trip")
	}
}

func TestEncodeDispatch(t *testing.T) {
	doc := sampleDocument()
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := Encode(&buf, doc, f); err != nil {
			t.Fatalf("Encode(%s): %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("Encode(%s) wrote nothing", f)
		}
		if ContentType(f) == "" {
			t.Fatalf("ContentType(%s) empty", f)
		}
	}
	if err := Encode(new(bytes.Buffer), doc, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestMarkdownAndCSVCarryTheData(t *testing.T) {
	doc := sampleDocument()
	var md, csv bytes.Buffer
	if err := EncodeMarkdown(&md, doc); err != nil {
		t.Fatal(err)
	}
	if err := EncodeCSV(&csv, doc); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"## Fig. 1", "| port | count |", "| 80-http | 155 |", "free-form bytes"} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown missing %q:\n%s", want, md.String())
		}
	}
	// Hard breaks join lines within a paragraph, never trail its last
	// line (CommonMark would render the backslash literally there).
	if strings.Contains(md.String(), "\\\n\n") {
		t.Errorf("markdown paragraph ends with a hard break:\n%s", md.String())
	}
	for _, want := range []string{"section,node,row,label,column,value", "fig1,ports,0,80-http,count,155", "table1,destinations,1,,port,Other"} {
		if !strings.Contains(csv.String(), want) {
			t.Errorf("csv missing %q:\n%s", want, csv.String())
		}
	}
}

// TestMarkdownHandlesColumnlessNodes: decoded documents may omit
// Columns (it is omitempty); the Markdown encoder must derive widths
// from the rows instead of panicking.
func TestMarkdownHandlesColumnlessNodes(t *testing.T) {
	sec := NewSection("s", "S")
	sec.AddTable(&Table{RowFormat: "%s %d", Rows: [][]Value{{String("a"), Int(1)}}})
	sec.AddTable(&Table{RowFormat: "%s"}) // no columns, no rows
	sec.AddFigure(&Figure{RowFormat: "%s"})
	var buf bytes.Buffer
	if err := EncodeMarkdown(&buf, New("bare", sec)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| a | 1 |") {
		t.Fatalf("columnless table rows missing:\n%s", buf.String())
	}
}

// TestKVLinePanicsOnOddArguments: a mis-paired builder call must fail
// at construction, not ship a document missing a field.
func TestKVLinePanicsOnOddArguments(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KVLine with an odd argument count did not panic")
		}
	}()
	NewSection("s", "S").KVLine("a: %d b: %d", "a", Int(1), "b")
}

func TestDocumentAppend(t *testing.T) {
	a := New("a", NewSection("s1", "S1"))
	b := New("b", NewSection("s2", "S2"), NewSection("s3", "S3"))
	combined := a.Append(b)
	if combined.Title != "a" || len(combined.Sections) != 3 {
		t.Fatalf("Append = %q with %d sections, want a with 3", combined.Title, len(combined.Sections))
	}
	if len(a.Sections) != 1 {
		t.Fatal("Append mutated the receiver")
	}
}
