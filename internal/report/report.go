// Package report is the typed artefact model of the study pipeline.
// Every experiment produces a Document — an ordered list of Sections
// holding Table, Figure, KV and Text nodes — instead of opaque printed
// text, so downstream layers (the result store, the HTTP server, JSON
// consumers, diff tools) see structured data. Encoders turn a document
// into concrete bytes: the text encoder reproduces the study's
// historical fmt output byte-for-byte (each node carries the printf
// format it renders with), and the JSON, Markdown and CSV encoders
// expose the same data structurally.
//
// The model is pure data with no maps and no interface values, so a
// document round-trips through encoding/json losslessly
// (decode(encode(doc)) is reflect.DeepEqual to doc) and its canonical
// JSON form is stable enough to content-address.
package report

import "fmt"

// SchemaVersion tags the document model's JSON encoding. Stored
// documents are decoded by field name, so a rename or retag silently
// zeroes old objects; cache keys incorporate this constant (alongside
// experiments.OutputVersion) so bumping it on any model change
// invalidates every persisted artefact.
const SchemaVersion = "1"

// Document is one artefact: a titled, ordered list of sections. A
// multi-artefact run concatenates documents by appending their
// sections.
type Document struct {
	// Title identifies the artefact (the registry's experiment name,
	// or a synthesized name for combined documents).
	Title    string     `json:"title"`
	Sections []*Section `json:"sections,omitempty"`
}

// Section is one titled block of the paper's output — a figure, a
// table, or a prose paragraph group. In text encoding a section is
//
//	== Title ==\n  …nodes…  \n
//
// unless Raw is set, in which case the section encodes as exactly Raw
// (the escape hatch for artefacts registered outside this package that
// only know how to print themselves).
type Section struct {
	// ID is a stable slug ("fig1", "table2", …) for machine consumers.
	ID    string `json:"id"`
	Title string `json:"title,omitempty"`
	Nodes []Node `json:"nodes,omitempty"`
	// Raw, when non-empty, replaces the structured encoding: the text
	// encoder emits it verbatim (no heading, no trailing blank line).
	Raw string `json:"raw,omitempty"`
}

// Node is a tagged union: exactly one of the pointers is non-nil. A
// concrete struct (rather than an interface) keeps JSON round-trips
// trivially lossless.
type Node struct {
	KV     *KV     `json:"kv,omitempty"`
	Text   *Text   `json:"text,omitempty"`
	Table  *Table  `json:"table,omitempty"`
	Figure *Figure `json:"figure,omitempty"`
}

// KV is one formatted line of named values — the model for the study's
// "attempted: %d, open at crawl: %d" prose lines. Fields appear in
// format-verb order; the text encoder sprintf-s them through Format
// (which excludes the trailing newline).
type KV struct {
	Format string  `json:"format"`
	Fields []Field `json:"fields,omitempty"`
}

// Field is one named value inside a KV line.
type Field struct {
	Name  string `json:"name"`
	Value Value  `json:"value"`
}

// Text is literal prose: each entry is one line, emitted verbatim.
type Text struct {
	Lines []string `json:"lines,omitempty"`
}

// Table is rows of typed cells. RowFormat is the printf format the text
// encoder applies to each row's cells (without the trailing newline);
// Columns names the cells for structured consumers.
type Table struct {
	ID        string    `json:"id,omitempty"`
	Columns   []string  `json:"columns,omitempty"`
	RowFormat string    `json:"rowFormat"`
	Rows      [][]Value `json:"rows,omitempty"`
}

// Figure is a labelled series — the model for the paper's bar-chart
// figures (Fig. 1 port bars, Fig. 3 country counts). Each point is a
// label plus its values; RowFormat renders label-then-values per line.
type Figure struct {
	ID        string   `json:"id,omitempty"`
	RowFormat string   `json:"rowFormat"`
	Points    []Point  `json:"points,omitempty"`
	Columns   []string `json:"columns,omitempty"`
}

// Point is one labelled entry of a Figure series.
type Point struct {
	Label  string  `json:"label"`
	Values []Value `json:"values,omitempty"`
}

// ValueKind discriminates the Value union.
type ValueKind string

// Value kinds.
const (
	KindString ValueKind = "s"
	KindInt    ValueKind = "i"
	KindFloat  ValueKind = "f"
)

// Value is one typed scalar cell. Exactly the field matching Kind is
// meaningful; the others stay at their zero values so DeepEqual and
// JSON round-trips agree.
type Value struct {
	Kind  ValueKind `json:"kind"`
	Str   string    `json:"str,omitempty"`
	Int   int64     `json:"int,omitempty"`
	Float float64   `json:"float,omitempty"`
}

// String wraps a string cell.
func String(s string) Value { return Value{Kind: KindString, Str: s} }

// Int wraps an integer cell.
func Int[T ~int | ~int32 | ~int64](n T) Value { return Value{Kind: KindInt, Int: int64(n)} }

// Float wraps a float cell.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// arg returns the value as a fmt operand.
func (v Value) arg() any {
	switch v.Kind {
	case KindInt:
		return v.Int
	case KindFloat:
		return v.Float
	default:
		return v.Str
	}
}

// Display renders the value alone, for encoders without a format
// context (Markdown cells, CSV fields).
func (v Value) Display() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("%g", v.Float)
	default:
		return v.Str
	}
}

// New builds a document from sections.
func New(title string, sections ...*Section) *Document {
	return &Document{Title: title, Sections: sections}
}

// NewSection builds an empty titled section; append nodes with the Add
// helpers.
func NewSection(id, title string) *Section {
	return &Section{ID: id, Title: title}
}

// RawSection wraps pre-rendered text as a section encoding to exactly
// those bytes.
func RawSection(id, raw string) *Section {
	return &Section{ID: id, Raw: raw}
}

// KVLine appends a formatted named-value line. Fields alternate
// name, value: KVLine("total: %d", "total", Int(n)). Mis-paired
// arguments are a builder bug and panic at construction — silently
// dropping a field would corrupt the rendered output instead.
func (s *Section) KVLine(format string, namesAndValues ...any) *Section {
	if len(namesAndValues)%2 != 0 {
		panic(fmt.Sprintf("report: KVLine(%q): odd name/value argument count %d", format, len(namesAndValues)))
	}
	kv := &KV{Format: format}
	for i := 0; i+1 < len(namesAndValues); i += 2 {
		kv.Fields = append(kv.Fields, Field{
			Name:  namesAndValues[i].(string),
			Value: namesAndValues[i+1].(Value),
		})
	}
	s.Nodes = append(s.Nodes, Node{KV: kv})
	return s
}

// TextLines appends literal lines.
func (s *Section) TextLines(lines ...string) *Section {
	s.Nodes = append(s.Nodes, Node{Text: &Text{Lines: lines}})
	return s
}

// AddTable appends a table node.
func (s *Section) AddTable(t *Table) *Section {
	s.Nodes = append(s.Nodes, Node{Table: t})
	return s
}

// AddFigure appends a figure node.
func (s *Section) AddFigure(f *Figure) *Section {
	s.Nodes = append(s.Nodes, Node{Figure: f})
	return s
}

// Append returns a document holding the receiver's sections followed by
// the others' — how a multi-experiment run combines per-experiment
// documents into one.
func (d *Document) Append(others ...*Document) *Document {
	out := &Document{Title: d.Title, Sections: append([]*Section(nil), d.Sections...)}
	for _, o := range others {
		out.Sections = append(out.Sections, o.Sections...)
	}
	return out
}
