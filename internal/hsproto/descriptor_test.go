package hsproto

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"torhs/internal/onion"
)

func makeDescriptor(t *testing.T, seed int64, replica uint8) (*onion.Descriptor, onion.IdentityKey) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	key := onion.GenerateKey(rng)
	permID := key.PermanentID()
	at := time.Date(2013, 2, 4, 10, 30, 0, 0, time.UTC)
	intro := []onion.Fingerprint{
		onion.RandomFingerprint(rng),
		onion.RandomFingerprint(rng),
		onion.RandomFingerprint(rng),
	}
	return &onion.Descriptor{
		DescID:      onion.ComputeDescriptorID(permID, at, replica),
		Address:     onion.AddressFromID(permID),
		PermID:      permID,
		Replica:     replica,
		PublishedAt: at,
		IntroPoints: intro,
	}, key
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, replica := range []uint8{0, 1} {
		d, key := makeDescriptor(t, int64(replica)+1, replica)
		var buf bytes.Buffer
		if err := Encode(&buf, d, key); err != nil {
			t.Fatal(err)
		}
		got, gotKey, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.DescID != d.DescID || got.Address != d.Address || got.PermID != d.PermID {
			t.Fatal("identity fields mismatch")
		}
		if got.Replica != replica {
			t.Fatalf("replica = %d, want %d", got.Replica, replica)
		}
		if !got.PublishedAt.Equal(d.PublishedAt) {
			t.Fatalf("publication time %v, want %v", got.PublishedAt, d.PublishedAt)
		}
		if len(got.IntroPoints) != len(d.IntroPoints) {
			t.Fatal("intro points lost")
		}
		for i := range got.IntroPoints {
			if got.IntroPoints[i] != d.IntroPoints[i] {
				t.Fatal("intro point mismatch")
			}
		}
		if !bytes.Equal(gotKey, key) {
			t.Fatal("key mismatch")
		}
	}
}

func TestEncodeFormatLooksLikeRendSpec(t *testing.T) {
	d, key := makeDescriptor(t, 3, 0)
	var buf bytes.Buffer
	if err := Encode(&buf, d, key); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"rendezvous-service-descriptor ",
		"version 2",
		"permanent-key ",
		"secret-id-part ",
		"publication-time 2013-02-04 10:30:00",
		"protocol-versions 2,3",
		"introduction-points ",
		"signature ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("encoded descriptor missing %q:\n%s", want, out)
		}
	}
}

func TestDecodeRejectsTamperedBody(t *testing.T) {
	d, key := makeDescriptor(t, 4, 0)
	var buf bytes.Buffer
	if err := Encode(&buf, d, key); err != nil {
		t.Fatal(err)
	}
	// Flip the publication time: signature must fail.
	tampered := strings.Replace(buf.String(), "10:30:00", "10:30:01", 1)
	_, _, err := Decode(strings.NewReader(tampered))
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v, want ErrBadSignature", err)
	}
}

func TestDecodeRejectsWrongDescriptorID(t *testing.T) {
	d, key := makeDescriptor(t, 5, 0)
	// Lie about the descriptor ID (valid format, inconsistent with the
	// key): clients must not accept it.
	other, _ := makeDescriptor(t, 6, 0)
	d.DescID = other.DescID
	var buf bytes.Buffer
	if err := Encode(&buf, d, key); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(&buf); err == nil {
		t.Fatal("descriptor with inconsistent ID accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"hello world\n",
		"rendezvous-service-descriptor !!!\n",
		"rendezvous-service-descriptor aaaaaaaaaaaaaaaa\nversion 3\n",
	}
	for _, in := range cases {
		if _, _, err := Decode(strings.NewReader(in)); err == nil {
			t.Fatalf("Decode(%q) succeeded", in)
		}
	}
}

// Property: encode/decode is the identity for any generated descriptor.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, hourOffset uint16, replica, intros uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		key := onion.GenerateKey(rng)
		permID := key.PermanentID()
		at := time.Unix(1359936000+int64(hourOffset)*3600, 0).UTC()
		r := replica % 2
		ips := make([]onion.Fingerprint, intros%5)
		for i := range ips {
			ips[i] = onion.RandomFingerprint(rng)
		}
		d := &onion.Descriptor{
			DescID:      onion.ComputeDescriptorID(permID, at, r),
			Address:     onion.AddressFromID(permID),
			PermID:      permID,
			Replica:     r,
			PublishedAt: at,
			IntroPoints: ips,
		}
		var buf bytes.Buffer
		if err := Encode(&buf, d, key); err != nil {
			return false
		}
		got, gotKey, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.DescID != d.DescID || got.PermID != d.PermID ||
			!got.PublishedAt.Equal(d.PublishedAt) || len(got.IntroPoints) != len(ips) {
			return false
		}
		return bytes.Equal(gotKey, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeNilDescriptor(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil, nil); err == nil {
		t.Fatal("Encode(nil) succeeded")
	}
}
