// Package hsproto implements the v2 rendezvous-service-descriptor wire
// format (rend-spec.txt §1.3), the document a hidden service uploads to
// its responsible directories and clients parse after fetching. The
// trawler stores harvested descriptors in this format, and the CLI tools
// read and write it.
//
//	rendezvous-service-descriptor <descriptor-id, base32>
//	version 2
//	permanent-key <base64 key blob>
//	secret-id-part <base32>
//	publication-time <YYYY-MM-DD HH:MM:SS>
//	protocol-versions 2,3
//	introduction-points <base64 list of fingerprints>
//	signature <base64>
package hsproto

import (
	"bufio"
	"bytes"
	"crypto/sha1"
	"encoding/base32"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"torhs/internal/onion"
)

var b32 = base32.StdEncoding.WithPadding(base32.NoPadding)

// timeLayout is the descriptor timestamp format.
const timeLayout = "2006-01-02 15:04:05"

// Errors returned by parsing.
var (
	ErrBadDescriptor = errors.New("hsproto: malformed descriptor")
	ErrBadSignature  = errors.New("hsproto: signature check failed")
)

// Encode serialises a descriptor. The signature is a keyed digest over
// the body standing in for the RSA signature of the real format (the
// simulation's keys are opaque blobs; see DESIGN.md).
func Encode(w io.Writer, d *onion.Descriptor, key onion.IdentityKey) error {
	body, err := encodeBody(d, key)
	if err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	sig := sign(body, key)
	_, err = fmt.Fprintf(w, "signature %s\n", base64.StdEncoding.EncodeToString(sig))
	return err
}

func encodeBody(d *onion.Descriptor, key onion.IdentityKey) ([]byte, error) {
	if d == nil {
		return nil, fmt.Errorf("%w: nil descriptor", ErrBadDescriptor)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "rendezvous-service-descriptor %s\n",
		strings.ToLower(b32.EncodeToString(d.DescID[:])))
	fmt.Fprintf(&buf, "version 2\n")
	fmt.Fprintf(&buf, "permanent-key %s\n", base64.StdEncoding.EncodeToString(key))
	secret := secretIDPart(d)
	fmt.Fprintf(&buf, "secret-id-part %s\n", strings.ToLower(b32.EncodeToString(secret[:])))
	fmt.Fprintf(&buf, "publication-time %s\n", d.PublishedAt.UTC().Format(timeLayout))
	fmt.Fprintf(&buf, "protocol-versions 2,3\n")

	var ips bytes.Buffer
	for _, fp := range d.IntroPoints {
		fmt.Fprintf(&ips, "introduction-point %s\n", strings.ToLower(b32.EncodeToString(fp[:])))
	}
	fmt.Fprintf(&buf, "introduction-points %s\n",
		base64.StdEncoding.EncodeToString(ips.Bytes()))
	return buf.Bytes(), nil
}

// secretIDPart recomputes SHA1(time-period | replica) for the
// descriptor's publication instant.
func secretIDPart(d *onion.Descriptor) [sha1.Size]byte {
	var buf [5]byte
	binary.BigEndian.PutUint32(buf[:4], onion.TimePeriod(d.PermID, d.PublishedAt))
	buf[4] = d.Replica
	return sha1.Sum(buf[:])
}

// sign computes the stand-in signature: SHA-1 over key ‖ body.
func sign(body []byte, key onion.IdentityKey) []byte {
	h := sha1.New()
	h.Write(key)
	h.Write(body)
	return h.Sum(nil)
}

// Decode parses a descriptor and verifies its signature and that the
// descriptor ID is consistent with the embedded permanent key (clients
// must verify both before trusting a fetched descriptor).
func Decode(r io.Reader) (*onion.Descriptor, onion.IdentityKey, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	var (
		d        onion.Descriptor
		key      onion.IdentityKey
		sig      []byte
		body     bytes.Buffer
		haveDesc bool
	)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		keyword, rest, _ := strings.Cut(line, " ")
		if keyword != "signature" {
			body.WriteString(line)
			body.WriteByte('\n')
		}
		switch keyword {
		case "rendezvous-service-descriptor":
			raw, err := b32.DecodeString(strings.ToUpper(rest))
			if err != nil || len(raw) != len(d.DescID) {
				return nil, nil, fmt.Errorf("%w: descriptor-id %q", ErrBadDescriptor, rest)
			}
			copy(d.DescID[:], raw)
			haveDesc = true
		case "version":
			if rest != "2" {
				return nil, nil, fmt.Errorf("%w: version %q", ErrBadDescriptor, rest)
			}
		case "permanent-key":
			raw, err := base64.StdEncoding.DecodeString(rest)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: permanent-key: %v", ErrBadDescriptor, err)
			}
			key = onion.IdentityKey(raw)
		case "secret-id-part":
			// informational; recomputed below
		case "publication-time":
			t, err := time.Parse(timeLayout, rest)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: publication-time: %v", ErrBadDescriptor, err)
			}
			d.PublishedAt = t.UTC()
		case "protocol-versions":
			// informational
		case "introduction-points":
			raw, err := base64.StdEncoding.DecodeString(rest)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: introduction-points: %v", ErrBadDescriptor, err)
			}
			ips, err := parseIntroPoints(string(raw))
			if err != nil {
				return nil, nil, err
			}
			d.IntroPoints = ips
		case "signature":
			raw, err := base64.StdEncoding.DecodeString(rest)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: signature: %v", ErrBadDescriptor, err)
			}
			sig = raw
		default:
			return nil, nil, fmt.Errorf("%w: unknown keyword %q", ErrBadDescriptor, keyword)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !haveDesc || key == nil || sig == nil {
		return nil, nil, fmt.Errorf("%w: missing required fields", ErrBadDescriptor)
	}

	// Verify the signature over the body.
	if !bytes.Equal(sig, sign(body.Bytes(), key)) {
		return nil, nil, ErrBadSignature
	}

	// Reconstruct identity and check descriptor-ID consistency.
	d.PermID = key.PermanentID()
	d.Address = onion.AddressFromID(d.PermID)
	d.Replica = 0
	ids := onion.DescriptorIDs(d.PermID, d.PublishedAt)
	ok := false
	for r, id := range ids {
		if id == d.DescID {
			d.Replica = uint8(r)
			ok = true
			break
		}
	}
	if !ok {
		return nil, nil, fmt.Errorf("%w: descriptor-id does not match permanent key and publication time", ErrBadDescriptor)
	}
	return &d, key, nil
}

func parseIntroPoints(s string) ([]onion.Fingerprint, error) {
	var out []onion.Fingerprint
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		keyword, rest, _ := strings.Cut(line, " ")
		if keyword != "introduction-point" {
			return nil, fmt.Errorf("%w: intro-point line %q", ErrBadDescriptor, line)
		}
		raw, err := b32.DecodeString(strings.ToUpper(rest))
		if err != nil || len(raw) != sha1.Size {
			return nil, fmt.Errorf("%w: intro-point %q", ErrBadDescriptor, rest)
		}
		var fp onion.Fingerprint
		copy(fp[:], raw)
		out = append(out, fp)
	}
	return out, nil
}
