// Package stats provides the statistical helpers shared by the
// measurement pipelines: Poisson sampling for request generation, the
// binomial outlier rule from Section VII, and small ranking/histogram
// utilities.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Poisson draws a Poisson-distributed sample with the given mean using
// Knuth's method for small means and a normal approximation for large
// ones.
func Poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation, adequate for request-count synthesis.
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		if v >= float64(math.MaxInt32) {
			// Clamp absurd means; callers synthesise request counts, not
			// astronomy.
			return math.MaxInt32
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Binomial describes the count distribution of n independent trials with
// success probability p.
type Binomial struct {
	N int
	P float64
}

// Mean returns np.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// StdDev returns sqrt(np(1-p)).
func (b Binomial) StdDev() float64 { return math.Sqrt(float64(b.N) * b.P * (1 - b.P)) }

// OutlierThreshold returns μ + kσ, the Section VII suspicion threshold
// (the paper uses k = 3).
func (b Binomial) OutlierThreshold(k float64) float64 {
	return b.Mean() + k*b.StdDev()
}

// RankedCount is one (key, count) pair in a ranking.
type RankedCount struct {
	Key   string
	Count int
}

// RankCounts orders a count map descending by count (ties broken by key
// for determinism).
func RankCounts(counts map[string]int) []RankedCount {
	out := make([]RankedCount, 0, len(counts))
	for k, c := range counts {
		out = append(out, RankedCount{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Percentages converts a count map into integer percentages of the total,
// largest-remainder rounded so they sum to exactly 100. An empty or
// all-zero input returns nil.
func Percentages(counts map[string]int) map[string]int {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil
	}
	type frac struct {
		key  string
		base int
		rem  float64
	}
	fracs := make([]frac, 0, len(counts))
	sum := 0
	for k, c := range counts {
		exact := float64(c) * 100 / float64(total)
		base := int(exact)
		fracs = append(fracs, frac{key: k, base: base, rem: exact - float64(base)})
		sum += base
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].key < fracs[j].key
	})
	out := make(map[string]int, len(fracs))
	for i, f := range fracs {
		v := f.base
		if i < 100-sum {
			v++
		}
		out[f.key] = v
	}
	return out
}
