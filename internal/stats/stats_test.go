package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoissonZeroMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Poisson(rng, 0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := Poisson(rng, -5); got != 0 {
		t.Fatalf("Poisson(-5) = %d", got)
	}
}

func TestPoissonSmallMeanMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const mean, n = 4.0, 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := float64(Poisson(rng, mean))
		sum += v
		sumSq += v * v
	}
	m := sum / n
	variance := sumSq/n - m*m
	if math.Abs(m-mean) > 0.1 {
		t.Fatalf("sample mean = %.3f, want ~%.1f", m, mean)
	}
	if math.Abs(variance-mean) > 0.3 {
		t.Fatalf("sample variance = %.3f, want ~%.1f", variance, mean)
	}
}

func TestPoissonLargeMeanMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const mean, n = 500.0, 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(Poisson(rng, mean))
	}
	m := sum / n
	if math.Abs(m-mean)/mean > 0.01 {
		t.Fatalf("sample mean = %.1f, want ~%.0f", m, mean)
	}
}

func TestPoissonNeverNegative(t *testing.T) {
	f := func(seed int64, mean float64) bool {
		rng := rand.New(rand.NewSource(seed))
		return Poisson(rng, math.Abs(mean)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialOutlierThreshold(t *testing.T) {
	b := Binomial{N: 365, P: 6.0 / 1400}
	mu := b.Mean()
	sigma := b.StdDev()
	wantMu := 365 * 6.0 / 1400
	if math.Abs(mu-wantMu) > 1e-12 {
		t.Fatalf("mean = %v, want %v", mu, wantMu)
	}
	wantSigma := math.Sqrt(wantMu * (1 - 6.0/1400))
	if math.Abs(sigma-wantSigma) > 1e-12 {
		t.Fatalf("sigma = %v, want %v", sigma, wantSigma)
	}
	if got := b.OutlierThreshold(3); math.Abs(got-(mu+3*sigma)) > 1e-12 {
		t.Fatalf("threshold = %v", got)
	}
}

func TestRankCountsOrderingAndTies(t *testing.T) {
	got := RankCounts(map[string]int{"b": 5, "a": 5, "c": 9, "d": 1})
	wantKeys := []string{"c", "a", "b", "d"}
	for i, w := range wantKeys {
		if got[i].Key != w {
			t.Fatalf("rank %d = %q, want %q", i, got[i].Key, w)
		}
	}
}

func TestPercentagesSumTo100(t *testing.T) {
	in := map[string]int{"a": 1, "b": 1, "c": 1}
	out := Percentages(in)
	sum := 0
	for _, v := range out {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("percentages sum = %d, want 100", sum)
	}
}

func TestPercentagesEmpty(t *testing.T) {
	if out := Percentages(nil); out != nil {
		t.Fatalf("Percentages(nil) = %v, want nil", out)
	}
	if out := Percentages(map[string]int{"a": 0}); out != nil {
		t.Fatalf("Percentages(zero) = %v, want nil", out)
	}
}

func TestPercentagesQuickSumInvariant(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		in := make(map[string]int, len(vals))
		total := 0
		for i, v := range vals {
			in[string(rune('a'+i%26))+string(rune('0'+i/26))] += int(v)
			total += int(v)
		}
		out := Percentages(in)
		if total == 0 {
			return out == nil
		}
		sum := 0
		for _, v := range out {
			sum += v
		}
		return sum == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
