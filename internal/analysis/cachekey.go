package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CacheKey proves the cache-key contract: for every struct that
// declares a CacheKey() method, every field — and every field of a
// same-package struct reachable through it — is either consumed by
// CacheKey (directly, through helper methods on the same receiver, or
// by using the whole value) or carries an explicit
// //torhs:nocachekey <reason> exemption. Adding a knob to
// experiments.Config without threading it through CacheKey can
// therefore never silently alias result-store entries: the analyzer
// fails at the new field's line.
//
// Workers is the canonical exemption: output is byte-identical at every
// worker count (pinned by the determinism tests), so runs at different
// parallelism deliberately share cache entries.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc: "every field of a struct with a CacheKey() method must be consumed by CacheKey " +
		"or carry //torhs:nocachekey <reason>",
	Run: runCacheKey,
}

func runCacheKey(pass *Pass) error {
	decls := funcDeclIndex(pass.Files, pass.TypesInfo)
	structs := structDeclIndex(pass.Files, pass.TypesInfo)

	for fn, fd := range decls {
		if fn.Name() != "CacheKey" || fd.Recv == nil {
			continue
		}
		recvType := recvNamed(fn)
		if recvType == nil {
			continue
		}
		st, ok := structs[recvType.Obj()]
		if !ok {
			continue
		}
		consumed := map[string]bool{}
		consumeFunc(pass, fd, decls, "", consumed, map[*ast.FuncDecl]bool{})
		checkStruct(pass, recvType.Obj().Name(), st, "", consumed, structs, map[*ast.StructType]bool{})
	}
	return nil
}

// recvNamed resolves a method's receiver base type.
func recvNamed(fn *types.Func) *types.Named {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// structDeclIndex maps each named type declared in the package to its
// struct literal, for field-directive lookup.
func structDeclIndex(files []*ast.File, info *types.Info) map[*types.TypeName]*ast.StructType {
	ix := map[*types.TypeName]*ast.StructType{}
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
					ix[tn] = st
				}
			}
		}
	}
	return ix
}

// consumeFunc records, into consumed, the receiver field paths fn's
// body reads: "Seed", "Sub.Days", or prefix+"*" when the whole receiver
// escapes (passed as a value). Helper methods on the same receiver are
// followed; methods on struct-typed fields are followed with the field
// path as prefix.
func consumeFunc(pass *Pass, fd *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl,
	prefix string, consumed map[string]bool, seen map[*ast.FuncDecl]bool) {
	if fd.Body == nil || seen[fd] {
		return
	}
	seen[fd] = true
	recv := recvObj(pass, fd)
	if recv == nil {
		// Unnamed receiver: the body cannot read fields.
		return
	}
	parents := parentMap(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		path, method := selectorChain(pass, parents, id)
		full := joinPath(prefix, path...)
		switch {
		case method != nil:
			if mdecl, ok := decls[method]; ok {
				consumeFunc(pass, mdecl, decls, full, consumed, seen)
			} else {
				// A method we cannot see (embedded / other package):
				// assume it reads everything under its receiver.
				consumed[joinPath(full, "*")] = true
			}
		case len(path) == 0:
			// The bare receiver escapes (fmt.Sprintf("%v", c), f(c), a
			// copy...): every field is consumed.
			consumed[joinPath(prefix, "*")] = true
		default:
			consumed[full] = true
		}
		return true
	})
}

func joinPath(prefix string, elem ...string) string {
	parts := append([]string{}, elem...)
	if prefix != "" {
		parts = append(strings.Split(prefix, "."), parts...)
	}
	return strings.Join(parts, ".")
}

func recvObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// selectorChain climbs from a receiver identifier through enclosing
// selector expressions, returning the field names traversed and, if the
// chain ends in a method selection, that method.
func selectorChain(pass *Pass, parents map[ast.Node]ast.Node, id *ast.Ident) (fields []string, method *types.Func) {
	var cur ast.Node = id
	for {
		parent := parents[cur]
		if p, ok := parent.(*ast.ParenExpr); ok {
			cur = p
			continue
		}
		sel, ok := parent.(*ast.SelectorExpr)
		if !ok || sel.X != cur {
			return fields, nil
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil {
			// Qualified identifier or unresolved: stop.
			return fields, nil
		}
		if _, ok := s.Obj().(*types.Func); ok {
			return fields, s.Obj().(*types.Func)
		}
		fields = append(fields, sel.Sel.Name)
		cur = sel
	}
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// checkStruct verifies every field at this nesting level is consumed or
// exempted, recursing into same-package struct-typed fields.
func checkStruct(pass *Pass, typeName string, st *ast.StructType, prefix string,
	consumed map[string]bool, structs map[*types.TypeName]*ast.StructType, seen map[*ast.StructType]bool) {
	if seen[st] {
		return
	}
	seen[st] = true
	if consumed[joinPath(prefix, "*")] {
		return
	}
	for _, field := range st.Fields.List {
		names := fieldNames(pass, field)
		for _, name := range names {
			path := joinPath(prefix, name)
			reason, exempt := fieldDirective(field, dirNoCacheKey)
			isConsumed := consumed[path] || anyUnder(consumed, path)
			if exempt {
				switch {
				case reason == "":
					pass.Reportf(field.Pos(), "//torhs:nocachekey on %s.%s needs a reason", typeName, path)
				case isConsumed:
					pass.Reportf(field.Pos(), "%s.%s carries //torhs:nocachekey but IS consumed by CacheKey(): "+
						"drop the directive or the read", typeName, path)
				}
				continue
			}
			if !isConsumed {
				pass.Reportf(field.Pos(), "%s.%s is not consumed by CacheKey() and has no "+
					"//torhs:nocachekey exemption: a config knob outside the cache key aliases "+
					"result-store entries", typeName, path)
				continue
			}
			// Whole-value consumption covers nested fields; otherwise a
			// same-package struct field is checked field by field.
			if !consumed[path] {
				if nested := nestedStruct(pass, field, structs); nested != nil {
					checkStruct(pass, typeName, nested, path, consumed, structs, seen)
				}
			}
		}
	}
}

// fieldNames lists a field's names; an embedded field contributes its
// type name.
func fieldNames(pass *Pass, field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	t := pass.TypesInfo.TypeOf(field.Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return []string{named.Obj().Name()}
	}
	return nil
}

// anyUnder reports whether some consumed path lies strictly under path
// (path is a struct consumed via its subfields).
func anyUnder(consumed map[string]bool, path string) bool {
	p := path + "."
	for c := range consumed {
		if strings.HasPrefix(c, p) {
			return true
		}
	}
	return false
}

// nestedStruct resolves a field's type to a struct declared in this
// package, or nil.
func nestedStruct(pass *Pass, field *ast.Field, structs map[*types.TypeName]*ast.StructType) *ast.StructType {
	t := pass.TypesInfo.TypeOf(field.Type)
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return structs[named.Obj()]
}
