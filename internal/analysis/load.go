package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package ready for
// analysis.
type Package struct {
	Path      string // import path
	Name      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File // non-test Go files only
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load expands patterns (as the go command would, relative to dir),
// parses every matched package's non-test files, and type-checks them
// against compiler export data produced by `go list -export`. The whole
// pipeline is offline: it needs only the go toolchain and the module
// source.
//
// Test files are deliberately excluded: the determinism, hot-path, and
// cache-key contracts bind the shipped code; tests are free to iterate
// maps and stamp times.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	var files []*ast.File
	for _, gf := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:      t.ImportPath,
		Name:      t.Name,
		Dir:       t.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
