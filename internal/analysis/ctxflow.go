package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow proves the cancellation-plumbing contract the execution stack
// leans on:
//
//   - a context.Context parameter is always the first parameter — the
//     convention every call site in the module relies on when threading
//     cancellation downward (receivers aside; variadic or later
//     positions hide the context from readers and from this suite);
//   - context.Context is never stored in a struct field: a context is
//     scoped to a call tree, and a struct-held context silently outlives
//     the request or study that created it (the Checkpointer interfaces
//     take ctx per call for exactly this reason);
//   - every function annotated //torhs:cancelpoint — the sharded-kernel
//     boundaries (the simnet window plan, the trawl step loop, the
//     tracking document sweep, the hspop phase sequence) — declares a
//     context parameter and checks ctx.Err() or ctx.Done() inside at
//     least one of its outermost loops, so a cancelled study always
//     stops at a window boundary instead of running the kernel to
//     completion.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Context must be the first parameter and never a struct field; " +
		"//torhs:cancelpoint functions must check ctx inside their outermost loop",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	consumed := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxParamOrder(pass, n.Type)
				if _, ok := hasDirective(n.Doc, dirCancelPoint); ok {
					consumed[directivePos(n.Doc, dirCancelPoint)] = true
					checkCancelPoint(pass, n)
				}
			case *ast.FuncLit:
				checkCtxParamOrder(pass, n.Type)
			case *ast.StructType:
				checkCtxFields(pass, n)
			case *ast.InterfaceType:
				// Interface methods follow the same ordering convention.
				for _, m := range n.Methods.List {
					if ft, ok := m.Type.(*ast.FuncType); ok {
						checkCtxParamOrder(pass, ft)
					}
				}
			}
			return true
		})
	}
	// A cancelpoint directive that attached to anything but a function
	// declaration guards nothing; report it rather than let it rot.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(c); ok && d.kind == dirCancelPoint && !consumed[d.pos] {
					pass.Reportf(d.pos, "//torhs:cancelpoint must document a function declaration")
				}
			}
		}
	}
	return nil
}

// isContextType reports whether t is (an alias of) context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// exprIsContext resolves an AST type expression through the type info.
func exprIsContext(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	return ok && isContextType(tv.Type)
}

// checkCtxParamOrder reports context.Context parameters that are not the
// first parameter of their signature.
func checkCtxParamOrder(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		// An anonymous parameter group still occupies one position.
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if exprIsContext(pass, field.Type) && pos != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		pos += n
	}
}

// checkCtxFields reports struct fields of type context.Context.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if exprIsContext(pass, field.Type) {
			pass.Reportf(field.Pos(), "context.Context must not be stored in a struct field; "+
				"pass it as the first parameter of each call instead")
		}
	}
}

// checkCancelPoint enforces the //torhs:cancelpoint contract on one
// annotated function: a context parameter exists, the body has at least
// one loop, and at least one outermost loop checks ctx.Err()/ctx.Done()
// somewhere inside.
func checkCancelPoint(pass *Pass, fd *ast.FuncDecl) {
	ctxObj := contextParam(pass, fd)
	if ctxObj == nil {
		pass.Reportf(fd.Pos(), "//torhs:cancelpoint function has no context.Context parameter to check")
		return
	}
	if fd.Body == nil {
		pass.Reportf(fd.Pos(), "//torhs:cancelpoint must document a function with a body")
		return
	}
	loops := outermostLoops(fd.Body)
	if len(loops) == 0 {
		pass.Reportf(fd.Pos(), "//torhs:cancelpoint function has no loop to anchor the cancellation check")
		return
	}
	for _, loop := range loops {
		if loopChecksContext(pass, loop, ctxObj) {
			return
		}
	}
	pass.Reportf(fd.Pos(), "//torhs:cancelpoint function never checks %s.Err() or %s.Done() "+
		"inside an outermost loop; a cancelled run would run the kernel to completion",
		ctxObj.Name(), ctxObj.Name())
}

// contextParam returns the function's context.Context parameter object.
func contextParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		if !exprIsContext(pass, field.Type) {
			continue
		}
		for _, id := range field.Names {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

// outermostLoops collects the loop statements of body that are not
// nested inside another loop of the same function (loops inside nested
// function literals do not count as the kernel's own loops).
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false // outermost only
		case *ast.FuncLit:
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	return loops
}

// loopChecksContext reports whether the loop body contains a ctx.Err or
// ctx.Done selector on the given context object (either form stops the
// kernel; Done usually appears inside a select). A check inside a nested
// function literal does not count: the loop only stops if its own body
// consults the context.
func loopChecksContext(pass *Pass, loop ast.Stmt, ctxObj types.Object) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Err" && sel.Sel.Name != "Done" {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
			found = true
			return false
		}
		return true
	})
	return found
}
