package analysis

import "testing"

func TestDetOrderGolden(t *testing.T) {
	testAnalyzer(t, DetOrder, "./testdata/src/detorder")
}

func TestDetRandGolden(t *testing.T) {
	testAnalyzer(t, DetRand, "./testdata/src/detrand")
}

func TestHotAllocGolden(t *testing.T) {
	testAnalyzer(t, HotAlloc, "./testdata/src/hotalloc")
}

func TestCacheKeyGolden(t *testing.T) {
	testAnalyzer(t, CacheKey, "./testdata/src/cachekey")
}

// TestOutOfScopeSilent pins the scope gate: the scope-driven analyzers
// must say nothing about packages outside the deterministic set, however
// nondeterministic their code.
func TestOutOfScopeSilent(t *testing.T) {
	assertNoDiags(t, DetOrder, "./testdata/src/outofscope")
	assertNoDiags(t, DetRand, "./testdata/src/outofscope")
}
