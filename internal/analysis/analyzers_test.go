package analysis

import (
	"strings"
	"testing"
)

func TestDetOrderGolden(t *testing.T) {
	testAnalyzer(t, DetOrder, "./testdata/src/detorder")
}

func TestDetRandGolden(t *testing.T) {
	testAnalyzer(t, DetRand, "./testdata/src/detrand")
}

func TestHotAllocGolden(t *testing.T) {
	testAnalyzer(t, HotAlloc, "./testdata/src/hotalloc")
}

func TestCacheKeyGolden(t *testing.T) {
	testAnalyzer(t, CacheKey, "./testdata/src/cachekey")
}

func TestFaultSiteGolden(t *testing.T) {
	testAnalyzer(t, FaultSite, "./testdata/src/faultsite")
}

func TestFaultSiteRegistryGolden(t *testing.T) {
	testAnalyzer(t, FaultSite, "./testdata/src/faultsitereg")
}

// TestFaultSiteMisplaced covers the one faultsite diagnostic the golden
// harness cannot express: a directive that attaches to no constant is
// reported on the comment's own line, where a want comment cannot sit.
func TestFaultSiteMisplaced(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/faultsitebad")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := Run(pkgs[0], []*Analyzer{FaultSite})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "must document a string constant") {
		t.Fatalf("diagnostics = %+v, want one misplaced-directive finding", diags)
	}
}

func TestShardMergeGolden(t *testing.T) {
	testAnalyzer(t, ShardMerge, "./testdata/src/shardmerge")
}

// TestShardMergeMisplaced covers the diagnostic the golden harness
// cannot express: a shardmerge directive that documents anything but a
// function declaration is reported on the comment's own line.
func TestShardMergeMisplaced(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/shardmergebad")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := Run(pkgs[0], []*Analyzer{ShardMerge})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "must document a function declaration") {
		t.Fatalf("diagnostics = %+v, want one misplaced-directive finding", diags)
	}
}

func TestCtxFlowGolden(t *testing.T) {
	testAnalyzer(t, CtxFlow, "./testdata/src/ctxflow")
}

// TestCtxFlowMisplaced covers the diagnostic the golden harness cannot
// express: a cancelpoint directive that documents anything but a
// function declaration is reported on the comment's own line.
func TestCtxFlowMisplaced(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/ctxflowbad")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := Run(pkgs[0], []*Analyzer{CtxFlow})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "must document a function declaration") {
		t.Fatalf("diagnostics = %+v, want one misplaced-directive finding", diags)
	}
}

func TestWindowRingGolden(t *testing.T) {
	testAnalyzer(t, WindowRing, "./testdata/src/windowring")
}

// TestWindowRingMisplaced covers the diagnostic the golden harness
// cannot express: a retained directive that documents anything but a
// struct field is reported on the comment's own line.
func TestWindowRingMisplaced(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/windowringbad")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := Run(pkgs[0], []*Analyzer{WindowRing})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "must document a struct field") {
		t.Fatalf("diagnostics = %+v, want one misplaced-directive finding", diags)
	}
}

// TestOutOfScopeSilent pins the scope gate: the scope-driven analyzers
// must say nothing about packages outside the deterministic set, however
// nondeterministic their code.
func TestOutOfScopeSilent(t *testing.T) {
	assertNoDiags(t, DetOrder, "./testdata/src/outofscope")
	assertNoDiags(t, DetRand, "./testdata/src/outofscope")
	assertNoDiags(t, WindowRing, "./testdata/src/outofscope")
}
