package analysis

import (
	"bytes"
	"fmt"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

//go:generate go run torhs/internal/analysis/internal/scopegen

// DeterministicPackages is the single source of truth for which
// packages are under the byte-identical-output contract: detorder and
// detrand apply to exactly these. Entries are package names; the
// generated scopeImportPaths table (scope_paths.go, kept in sync by
// `go generate` and TestScopeMatchesModulePackages) pins each name to
// its real import path in this module.
//
// To put a new package under the contract: add its name here, run
// `go generate ./internal/analysis`, and burn down the findings.
var DeterministicPackages = []string{
	"experiments",
	"hsdir",
	"hspop",
	"popularity",
	"report",
	"simnet",
	"tracking",
	"trawl",
}

// InScope reports whether pkg is under the determinism contract: its
// import path is a pinned scope path, or — so analysistest fixtures and
// future renames participate by name — its package name appears in
// DeterministicPackages.
func InScope(pkg *types.Package) bool {
	for _, path := range scopeImportPaths {
		if pkg.Path() == path {
			return true
		}
	}
	for _, name := range DeterministicPackages {
		if pkg.Name() == name {
			return true
		}
	}
	return false
}

// ComputeScopeImportPaths resolves every DeterministicPackages name to
// its import path by listing the module's packages with the go command.
// scopegen writes the result into scope_paths.go; the scope test
// re-runs it to prove the generated table never drifts from reality.
func ComputeScopeImportPaths() (map[string]string, error) {
	// Resolve the module root so the listing is the same regardless of
	// which package directory the caller (go generate, go test) runs in.
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return nil, fmt.Errorf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	cmd := exec.Command("go", "list", "-f", "{{.Name}} {{.ImportPath}}", "./...")
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list ./...: %v\n%s", err, stderr.Bytes())
	}
	byName := map[string][]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		name, path, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		byName[name] = append(byName[name], path)
	}
	paths := make(map[string]string, len(DeterministicPackages))
	for _, name := range DeterministicPackages {
		matches := byName[name]
		switch len(matches) {
		case 0:
			return nil, fmt.Errorf("deterministic package %q does not exist in this module", name)
		case 1:
			paths[name] = matches[0]
		default:
			sort.Strings(matches)
			return nil, fmt.Errorf("deterministic package name %q is ambiguous: %v", name, matches)
		}
	}
	return paths, nil
}
