package analysis

import (
	"go/ast"
	"strings"
)

// DetRand forbids ambient nondeterminism sources in the deterministic
// packages: the wall clock, the environment, the globally-seeded
// math/rand top-level functions, and runtime-seeded hashing. The only
// sanctioned randomness is seed-derived — parallel.SeedFor /
// parallel.NewRNG (or an explicit *rand.Rand built from them) — and the
// only sanctioned clock is simclock / config-threaded times.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now, os.Getenv, global math/rand and runtime-seeded hashing " +
		"in deterministic packages; randomness must derive from parallel.SeedFor/NewRNG",
	Run: runDetRand,
}

// forbiddenCalls maps package path → function name → what to suggest
// instead. An empty name key means every package-level function.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "thread an explicit time through config (or use simclock)",
		"Since": "thread an explicit time through config (or use simclock)",
		"Until": "thread an explicit time through config (or use simclock)",
	},
	"os": {
		"Getenv":    "thread configuration explicitly",
		"LookupEnv": "thread configuration explicitly",
		"Environ":   "thread configuration explicitly",
	},
	"hash/maphash": {
		"MakeSeed": "derive the seed from parallel.SeedFor so hashes repeat across runs",
	},
}

// globalRandPackages are packages whose package-level functions draw
// from a shared, externally seeded source. Constructors (New*) are
// fine: they build explicit sources the caller seeds.
var globalRandPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runDetRand(pass *Pass) error {
	if !InScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || !isPackageLevel(fn) {
				return true
			}
			path, name := pkgPath(fn), fn.Name()
			if hint, ok := forbiddenCalls[path][name]; ok {
				pass.Reportf(call.Pos(), "%s.%s is nondeterministic across runs: %s",
					lastElem(path), name, hint)
				return true
			}
			if globalRandPackages[path] && !strings.HasPrefix(name, "New") {
				pass.Reportf(call.Pos(), "global %s.%s draws from a shared non-seeded source: "+
					"use parallel.NewRNG(parallel.SeedFor(...)) so every draw is seed-derived",
					lastElem(path), name)
			}
			return true
		})
	}
	return nil
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
