// Package hot is the hotalloc golden fixture. hotalloc is annotation-
// driven, not scope-driven: only //torhs:hotpath functions are checked.
package hot

import "fmt"

// Format allocates in every way fmt can.
//
//torhs:hotpath
func Format(n int, buf []byte) []byte {
	s := fmt.Sprintf("%d", n) // want "fmt.Sprintf allocates"
	b := []byte(s)            // want "conversion from string copies"
	m := make([]int, n)       // want "make allocates"
	_ = m
	return append(buf, b...)
}

// Grow demonstrates the append shapes.
//
//torhs:hotpath
func Grow(dst []int, n int) []int {
	out := append(dst, 1) // want "append into a different slice than its source starts a new backing array"
	_ = out
	dst = append(dst, 2)  // in-place growth: clean
	return append(dst, n) // growing a parameter in a return (Into idiom): clean
}

// Scratch reuses caller-owned backing: clean.
//
//torhs:hotpath
func Scratch(buf []byte, n byte) []byte {
	return append(buf[:0], n)
}

// Counter returns a capturing closure.
//
//torhs:hotpath
func Counter() func() int {
	i := 0
	return func() int { // want "closure captures outer variables"
		i++
		return i
	}
}

// Box passes a concrete int to an interface parameter.
//
//torhs:hotpath
func Box(v int) {
	sink(v) // want "passing int to an interface parameter boxes it on the heap"
}

func sink(v interface{}) { _ = v }

// Concat builds a string on the hot path.
//
//torhs:hotpath
func Concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// Ptr escapes a composite literal.
//
//torhs:hotpath
func Ptr() *[2]int {
	return &[2]int{1, 2} // want "&composite literal allocates"
}

// Lit builds a slice literal.
//
//torhs:hotpath
func Lit() []int {
	return []int{1, 2} // want "slice literal allocates"
}

// Cold is not annotated: allocate freely.
func Cold(n int) []int {
	return make([]int, n)
}

// Mixed has a cold error path inside a hot function.
//
//torhs:hotpath
func Mixed(n int) (string, error) {
	if n < 0 {
		//torhs:ignore hotalloc fixture: error exit, cold by construction
		return "", fmt.Errorf("negative %d", n)
	}
	return "ok", nil
}
