// Package faultfixturebad holds a misplaced faultsite directive. The
// diagnostic lands on the directive comment's own line, which a
// trailing `// want` comment cannot share, so TestFaultSiteMisplaced
// checks this fixture by hand instead of through the golden harness.
package faultfixturebad

//torhs:faultsite demo.misplaced
func Misplaced() {}
