// Package simnet is the detrand golden fixture; the package name puts
// it in the deterministic-package scope.
package simnet

import (
	"hash/maphash"
	"math/rand"
	"os"
	"time"
)

// Clock reads the wall clock.
func Clock() time.Time {
	return time.Now() // want "time.Now is nondeterministic across runs"
}

// Elapsed reads the wall clock through Since.
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since is nondeterministic across runs"
}

// Env reads ambient configuration.
func Env() string {
	return os.Getenv("HOME") // want "os.Getenv is nondeterministic across runs"
}

// Draw uses the globally seeded source.
func Draw() int {
	return rand.Intn(10) // want "global rand.Intn draws from a shared non-seeded source"
}

// Seeded builds an explicit source: constructors are sanctioned. Clean.
func Seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// HashSeed draws a process-random hashing seed.
func HashSeed() maphash.Seed {
	return maphash.MakeSeed() // want "maphash.MakeSeed is nondeterministic across runs"
}

// WallClock carries an audited ignore: clean.
func WallClock() time.Time {
	//torhs:ignore detrand fixture: this helper exists to timestamp log lines, not study output
	return time.Now()
}
