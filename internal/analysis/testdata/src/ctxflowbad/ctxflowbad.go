// Package ctxfixturebad holds a misplaced cancelpoint directive. The
// diagnostic lands on the directive comment's own line, which a trailing
// `// want` comment cannot share, so TestCtxFlowMisplaced checks this
// fixture by hand instead of through the golden harness.
package ctxfixturebad

//torhs:cancelpoint
var Misplaced = 0
