// Package shardfixture is the shardmerge golden fixture. shardmerge is
// annotation-driven: only //torhs:shardmerge functions are checked, and
// the named parameter must be folded in ascending shard index order.
package shardfixture

type partial struct{ n int }

// MergeRange folds with a range statement: ascending by definition.
//
//torhs:shardmerge shards
func MergeRange(shards []partial) int {
	total := 0
	for i := range shards {
		total += shards[i].n
	}
	for _, sh := range shards {
		total += sh.n
	}
	return total
}

// MergeSeeded folds everything into shards[0] with an incrementing for
// loop — the constant seed index and the ascending variable are clean.
//
//torhs:shardmerge shards
func MergeSeeded(shards []partial) *partial {
	dst := &shards[0]
	for i := 1; i < len(shards); i++ {
		dst.n += shards[i].n
	}
	return dst
}

// MergeStrided walks by two: still ascending.
//
//torhs:shardmerge shards
func MergeStrided(shards []partial) int {
	total := 0
	for i := 0; i < len(shards); i += 2 {
		total += shards[i].n
	}
	return total
}

// MergeBackwards folds highest shard first: the concatenation order it
// produces is not plan order.
//
//torhs:shardmerge shards
func MergeBackwards(shards []partial) int {
	total := 0
	for i := len(shards) - 1; i >= 0; i-- {
		total += shards[i].n // want "descending loop variable"
	}
	return total
}

// MergeShuffled indexes by arbitrary computed values.
//
//torhs:shardmerge shards
func MergeShuffled(shards []partial, order []int) int {
	total := 0
	for _, idx := range order {
		total += shards[idx].n // want "must be indexed by an ascending loop variable or a constant"
	}
	return total
}

// MergeDecrementing uses a compound-assignment countdown.
//
//torhs:shardmerge shards
func MergeDecrementing(shards []partial) int {
	total := 0
	for i := len(shards) - 1; i >= 0; i -= 1 {
		total += shards[i].n // want "descending loop variable"
	}
	return total
}

// Unused never touches its annotated parameter.
//
//torhs:shardmerge shards
func Unused(shards []partial) int { // want "never iterates its shard parameter"
	return len([]partial{})
}

// NoSuchParam names a parameter that does not exist.
//
//torhs:shardmerge partials
func NoSuchParam(shards []partial) int { // want "names unknown parameter"
	total := 0
	for i := range shards {
		total += shards[i].n
	}
	return total
}

// NotASlice names a non-slice parameter.
//
//torhs:shardmerge count
func NotASlice(shards []partial, count int) int { // want "must be a slice of per-shard partials"
	return count
}

// Unannotated is out of scope however it folds.
func Unannotated(shards []partial) int {
	total := 0
	for i := len(shards) - 1; i >= 0; i-- {
		total += shards[i].n
	}
	return total
}
