// Package cachekey is the cachekey golden fixture: a Config with every
// way a field can relate to its CacheKey method.
package cachekey

import "fmt"

// Sub is reachable from Config.Net; its fields inherit the contract.
type Sub struct {
	Days int
	Skip bool // want "Config.Net.Skip is not consumed by CacheKey"
}

// Config exercises consumption, exemption, and their failure modes.
type Config struct {
	Seed  int64 // consumed through the seedPart helper
	Scale float64
	Net   Sub
	// Workers is the sanctioned exemption shape: directive plus reason.
	//
	//torhs:nocachekey fixture: parallelism does not change output bytes
	Workers int
	Debug   bool // want "Config.Debug is not consumed by CacheKey"
	//torhs:nocachekey
	Trace bool // want "needs a reason"
	//torhs:nocachekey fixture: wrongly exempt, the key reads it
	Label string // want "carries //torhs:nocachekey but IS consumed"
}

// seedPart shows helper-method consumption: reads of c.Seed here count.
func (c Config) seedPart() string { return fmt.Sprintf("seed=%d", c.Seed) }

// CacheKey consumes Seed (via seedPart), Scale, Net.Days, and Label.
func (c Config) CacheKey() string {
	return fmt.Sprintf("%s scale=%g days=%d label=%s",
		c.seedPart(), c.Scale, c.Net.Days, c.Label)
}

// Spec consumes itself whole: every field is covered. Clean.
type Spec struct {
	A, B int
}

// CacheKey passes the whole value to fmt.
func (s Spec) CacheKey() string { return fmt.Sprintf("%v", s) }
