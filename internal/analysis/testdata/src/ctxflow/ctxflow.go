// Package ctxfixture is the ctxflow golden fixture. The analyzer is
// module-wide for the parameter-order and struct-field rules, and
// annotation-driven for the //torhs:cancelpoint loop-check rule.
package ctxfixture

import (
	"context"
	"time"
)

// DriveFirst has its context first: clean.
func DriveFirst(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// DriveLast buries the context behind the payload.
func DriveLast(n int, ctx context.Context) int { // want "context.Context must be the first parameter"
	_ = ctx
	return n
}

// litLast is a function literal with a trailing context.
var litLast = func(n int, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = ctx
}

// Runner follows the interface convention.
type Runner interface {
	Run(ctx context.Context, name string) error
	RunLate(name string, ctx context.Context) error // want "context.Context must be the first parameter"
}

// job smuggles a context into its state, outliving the call tree that
// created it.
type job struct {
	name string
	ctx  context.Context // want "must not be stored in a struct field"
}

// KernelChecked is a compliant cancellation boundary: the outermost loop
// checks ctx.Err() every iteration.
//
//torhs:cancelpoint
func KernelChecked(ctx context.Context, windows int) (int, error) {
	done := 0
	for w := 0; w < windows; w++ {
		if err := ctx.Err(); err != nil {
			return done, err
		}
		done++
	}
	return done, nil
}

// KernelSelect checks through Done inside a select: equally valid.
//
//torhs:cancelpoint
func KernelSelect(ctx context.Context, windows int) int {
	done := 0
	for w := 0; w < windows; w++ {
		select {
		case <-ctx.Done():
			return done
		case <-time.After(time.Millisecond):
			done++
		}
	}
	return done
}

// KernelUnchecked takes a context but runs its loop to completion — a
// cancelled run would never stop at a window boundary.
//
//torhs:cancelpoint
func KernelUnchecked(ctx context.Context, windows int) int { // want "never checks ctx.Err"
	done := 0
	for w := 0; w < windows; w++ {
		done++
	}
	return done
}

// KernelInnerOnly only checks inside a nested function literal, which
// the kernel's own loop never awaits.
//
//torhs:cancelpoint
func KernelInnerOnly(ctx context.Context, windows int) int { // want "never checks ctx.Err"
	done := 0
	for w := 0; w < windows; w++ {
		f := func() error { return ctx.Err() }
		_ = f
		done++
	}
	return done
}

// KernelNoCtx is annotated but has nothing to check.
//
//torhs:cancelpoint
func KernelNoCtx(windows int) int { // want "no context.Context parameter"
	done := 0
	for w := 0; w < windows; w++ {
		done++
	}
	return done
}

// KernelNoLoop has no loop to anchor the check.
//
//torhs:cancelpoint
func KernelNoLoop(ctx context.Context) error { // want "no loop to anchor"
	return ctx.Err()
}
