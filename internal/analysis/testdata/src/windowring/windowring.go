// Package tracking is the windowring golden fixture. The package name
// puts it in the deterministic-package scope; the directory name says
// what it tests.
package tracking

import "torhs/internal/consensus"

// ring retains documents with an audited, reasoned directive: clean.
type ring struct {
	//torhs:retained sliding window ring; at most K live by construction
	buf []*consensus.Document
}

// hoarder accumulates documents with no directive.
type hoarder struct {
	docs []*consensus.Document // want "hoarder.docs can hold consensus documents past the window fold"
}

// memoCache reaches a document through a generic type argument.
type box[T any] struct{ v T }

type memoCache struct {
	byDay map[int64]*box[*consensus.Document] // want "memoCache.byDay can hold consensus documents past the window fold"
}

// nested reaches a document through an anonymous struct and a channel.
type nested struct {
	inner struct { // want "nested.inner can hold consensus documents past the window fold"
		ch chan *consensus.Document
	}
}

// reasonless has the directive but no bounding argument.
type reasonless struct {
	//torhs:retained
	doc *consensus.Document // want "needs a reason saying why the retention is bounded"
}

// stale exempts a field that cannot hold a document.
type stale struct {
	//torhs:retained left over from a refactor
	n int // want "carries //torhs:retained but cannot hold a consensus document"
}

// history holds documents only behind a named abstraction's underlying
// structure: the walk stops at the named type, so this is clean.
type history struct {
	h *consensus.History
}

// trailing uses the trailing-comment directive placement: clean.
type trailing struct {
	doc *consensus.Document //torhs:retained the per-step window; dropped with the step
}
