// Package helper is NOT a deterministic package: detorder and detrand
// must both stay silent on it.
package helper

import (
	"fmt"
	"time"
)

// Noisy does everything the deterministic packages may not.
func Noisy(m map[string]int) time.Time {
	for k := range m {
		fmt.Println(k)
	}
	return time.Now()
}
