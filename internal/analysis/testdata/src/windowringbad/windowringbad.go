// Package tracking is the windowring misplaced-directive fixture: a
// retained directive that documents anything but a struct field is
// reported on its own line, where a want comment cannot sit.
package tracking

//torhs:retained this documents a function, not a struct field
func Retained() int { return 1 }
