// Package faultfixture is the faultsite golden fixture for marked
// constants (rule A) and Hit/MustHit call arguments (rule C). It is not
// named "fault", so the registry rule does not apply here.
package faultfixture

import "torhs/internal/fault"

// SiteGood is a well-formed marked site.
//
//torhs:faultsite demo.good
const SiteGood = "demo.good"

// SiteMismatch's directive names a different site than its value.
//
//torhs:faultsite demo.mismatch
const SiteMismatch = "demo.other" // want "directive and value must match"

// SiteNameless has a directive without a site name.
//
//torhs:faultsite
const SiteNameless = "demo.nameless" // want "needs a site name"

// SiteTwoWords has a multi-token directive.
//
//torhs:faultsite demo.two words
const SiteTwoWords = "demo.two" // want "takes a single site name"

// SiteInt marks a non-string constant.
//
//torhs:faultsite demo.int
const SiteInt = 7 // want "must mark a string constant"

// SiteGoodAgain reuses an already-marked name.
//
//torhs:faultsite demo.good
const SiteGoodAgain = "demo.good" // want "duplicate"

// hitSites exercises the call-argument rule: named constants from the
// fault package pass, everything else is flagged.
func hitSites() error {
	if err := fault.Hit(fault.SiteStoreWrite); err != nil {
		return err
	}
	fault.MustHit(fault.SiteSimWindow)
	if err := fault.Hit("resultstore.write"); err != nil { // want "named site constant"
		return err
	}
	fault.MustHit(fault.Site("inline.site")) // want "named site constant"
	const local fault.Site = "demo.local"
	fault.MustHit(local) // want "named site constant"
	return nil
}
