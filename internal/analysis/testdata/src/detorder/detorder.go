// Package trawl is the detorder golden fixture. The package NAME puts
// it in the deterministic-package scope (scope.go falls back to names
// precisely so fixtures like this one are analyzable); the directory
// name says what it tests.
package trawl

import (
	"fmt"
	"sort"
)

// Print leaks iteration order straight into output.
func Print(m map[string]int) {
	for k, v := range m { // want "call to Println may observe iteration order"
		fmt.Println(k, v)
	}
}

// Sum accumulates commutatively: clean.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// CollectSorted is the collect-then-sort idiom: clean.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectUnsorted escapes the keys in iteration order.
func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "append to out escapes in iteration order"
		out = append(out, k)
	}
	return out
}

// First returns whichever key the runtime yields first.
func First(m map[string]int) string {
	for k := range m { // want "return inside map range selects an order-dependent entry"
		return k
	}
	return ""
}

// AnyLarge is the idempotent any-pattern: a single constant store plus
// break cannot observe order. Clean.
func AnyLarge(m map[string]int) bool {
	found := false
	for _, v := range m {
		if v > 10 {
			found = true
			break
		}
	}
	return found
}

// SumUntil truncates an accumulation at an order-dependent prefix.
func SumUntil(m map[string]int) int {
	total := 0
	for _, v := range m { // want "break exits the map range after an order-dependent prefix"
		total += v
		if total > 100 {
			break
		}
	}
	return total
}

// Flags stores two different constants into one target: the last
// iterated entry wins.
func Flags(m map[string]int) string {
	state := ""
	for _, v := range m { // want "set to different constants"
		if v > 0 {
			state = "pos"
		} else {
			state = "neg"
		}
	}
	return state
}

// PerKey writes only per-key slots: clean.
func PerKey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Shifted serializes entries through a loop-independent index.
func Shifted(m map[string]int, dst []int) {
	i := 0
	for _, v := range m { // want "indexed write with a loop-independent index"
		dst[i] = v
		i++
	}
}

// Keyless ranges bind nothing: the body cannot see the order. Clean.
func Keyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Suppressed carries an audited ignore: clean.
func Suppressed(m map[string]int) {
	//torhs:ignore detorder fixture: output order is deliberately unspecified here
	for k := range m {
		fmt.Println(k)
	}
}

// fill rewrites buf from scratch; calls matching the buf = fill(buf[:0],
// ...) shape are part of the scratch-rewrite idiom.
func fill(buf []int, n int) []int {
	for i := 0; i < n; i++ {
		buf = append(buf, i)
	}
	return buf
}

// Scratch reuses a buffer that is fully rewritten per entry: clean.
func Scratch(m map[string]int) int {
	total := 0
	var buf []int
	for _, v := range m {
		buf = fill(buf[:0], v)
		total += len(buf)
	}
	return total
}
