// Package fault is the faultsite registry golden fixture; the package
// name puts it under the registry rule (rule B): marked constants and
// the keys of the sites map must coincide exactly.
package fault

// Site names one injectable site.
type Site string

// siteCaps declares which modes a site supports.
type siteCaps struct{ errOK bool }

// SiteAlpha is marked and registered: clean.
//
//torhs:faultsite demo.alpha
const SiteAlpha Site = "demo.alpha"

// SiteOrphan is marked but missing from the registry.
//
//torhs:faultsite demo.orphan
const SiteOrphan Site = "demo.orphan" // want "missing from the sites registry"

var sites = map[Site]siteCaps{
	SiteAlpha:    {errOK: true},
	"demo.rogue": {errOK: false}, // want "no //torhs:faultsite-marked constant"
}
