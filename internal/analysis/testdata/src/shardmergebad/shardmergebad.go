// Package shardfixturebad holds a misplaced shardmerge directive. The
// diagnostic lands on the directive comment's own line, which a trailing
// `// want` comment cannot share, so TestShardMergeMisplaced checks this
// fixture by hand instead of through the golden harness.
package shardfixturebad

//torhs:shardmerge shards
var Misplaced = []int{}
