package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// testAnalyzer loads one testdata package and checks the analyzer's
// diagnostics against `// want "regex"` comments: every diagnostic must
// match a want on its line, and every want must be matched — the golden
// style of golang.org/x/tools/go/analysis/analysistest, over this
// package's own loader.
func testAnalyzer(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := parseWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts `// want "re" "re"...` expectations, keyed by
// file:line of the comment (a trailing comment shares the construct's
// line).
func parseWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	wants := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for rest := strings.TrimSpace(text); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q: %v", pos, c.Text, err)
					}
					rest = rest[len(q):]
					unq, _ := strconv.Unquote(q)
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unq, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

// assertNoDiags runs the analyzer over a fixture that must stay clean.
func assertNoDiags(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := Load(".", dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		diags, err := Run(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}
