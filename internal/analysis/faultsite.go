package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FaultSite proves the fault-site registry contract (see internal/fault):
//
//   - A //torhs:faultsite <name> directive marks exactly one string
//     constant whose value equals <name>; names are unique per package.
//     The directive is the grep-able registry of injectable sites, so a
//     marked constant whose value drifted from its directive would lie
//     to every reader (and to the crash-resume test matrix that
//     enumerates sites by name).
//   - In the fault package itself, the marked constants and the keys of
//     the sites capability map must coincide exactly: a site constant
//     outside the map could never fire, and a map key without a marked
//     constant is invisible to the registry.
//   - Everywhere else, fault.Hit / fault.MustHit must be passed a named
//     constant from the fault package — never an inline string or
//     conversion, which would bypass the registry (and Injector.Set's
//     registration check only at runtime, deep into a study).
var FaultSite = &Analyzer{
	Name: "faultsite",
	Doc: "//torhs:faultsite names must be unique and match their constant; the fault package's " +
		"marked constants must equal the sites registry; Hit/MustHit take named site constants",
	Run: runFaultSite,
}

// faultPkgName identifies the fault package by name, like the
// deterministic scope does, so analysistest fixtures participate.
const faultPkgName = "fault"

func runFaultSite(pass *Pass) error {
	marked, consumed := faultSiteConsts(pass)
	reportMisplacedFaultSites(pass, consumed)
	if pass.Pkg.Name() == faultPkgName {
		checkSiteRegistry(pass, marked)
		return nil
	}
	checkHitArguments(pass)
	return nil
}

// markedSite is one //torhs:faultsite-annotated constant.
type markedSite struct {
	name string // the directive's site name (== the constant's value)
	pos  token.Pos
}

// faultSiteConsts collects the package's marked constants, reporting
// malformed markings, and returns the set of directive comment
// positions it consumed (for misplacement detection).
func faultSiteConsts(pass *Pass) ([]markedSite, map[token.Pos]bool) {
	var marked []markedSite
	consumed := map[token.Pos]bool{}
	seen := map[string]token.Pos{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				doc := vs.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				args, found := "", false
				for _, cg := range []*ast.CommentGroup{doc, vs.Comment} {
					if a, ok := hasDirective(cg, dirFaultSite); ok {
						args, found = a, true
						consumed[directivePos(cg, dirFaultSite)] = true
					}
				}
				if !found {
					continue
				}
				switch {
				case args == "":
					pass.Reportf(vs.Pos(), "//torhs:faultsite needs a site name")
					continue
				case strings.ContainsAny(args, " \t"):
					pass.Reportf(vs.Pos(), "//torhs:faultsite takes a single site name, got %q", args)
					continue
				case len(vs.Names) != 1:
					pass.Reportf(vs.Pos(), "//torhs:faultsite must mark exactly one constant")
					continue
				}
				c, ok := pass.TypesInfo.Defs[vs.Names[0]].(*types.Const)
				if !ok || c.Val().Kind() != constant.String {
					pass.Reportf(vs.Pos(), "//torhs:faultsite %s must mark a string constant", args)
					continue
				}
				if v := constant.StringVal(c.Val()); v != args {
					pass.Reportf(vs.Pos(), "//torhs:faultsite %s marks constant %s with value %q: "+
						"directive and value must match", args, vs.Names[0].Name, v)
					continue
				}
				if prev, dup := seen[args]; dup {
					pass.Reportf(vs.Pos(), "duplicate //torhs:faultsite %s (first marked at %s)",
						args, pass.Position(prev))
					continue
				}
				seen[args] = vs.Pos()
				marked = append(marked, markedSite{name: args, pos: vs.Pos()})
			}
		}
	}
	return marked, consumed
}

// directivePos finds the comment position of the given directive kind
// within the group (the group is known to carry it).
func directivePos(cg *ast.CommentGroup, kind string) token.Pos {
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok && d.kind == kind {
			return d.pos
		}
	}
	return cg.Pos()
}

// reportMisplacedFaultSites flags faultsite directives that did not
// attach to a constant declaration — on a func, a type, a var, or
// floating — which would silently drop a site from the registry.
func reportMisplacedFaultSites(pass *Pass, consumed map[token.Pos]bool) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || d.kind != dirFaultSite || consumed[d.pos] {
					continue
				}
				pass.Reportf(d.pos, "//torhs:faultsite must document a string constant declaration")
			}
		}
	}
}

// checkSiteRegistry compares, inside the fault package, the marked
// constants against the keys of the sites map literal.
func checkSiteRegistry(pass *Pass, marked []markedSite) {
	lit := sitesLiteral(pass)
	if lit == nil {
		if len(marked) > 0 {
			pass.Reportf(marked[0].pos, "package %s has //torhs:faultsite constants but no sites map literal",
				pass.Pkg.Name())
		}
		return
	}
	registered := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[kv.Key]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(kv.Key.Pos(), "sites key must be a named site constant")
			continue
		}
		registered[constant.StringVal(tv.Value)] = true
	}
	markedNames := map[string]bool{}
	for _, m := range marked {
		markedNames[m.name] = true
		if !registered[m.name] {
			pass.Reportf(m.pos, "site %q is marked //torhs:faultsite but missing from the sites registry", m.name)
		}
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[kv.Key]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if name := constant.StringVal(tv.Value); !markedNames[name] {
			pass.Reportf(kv.Key.Pos(), "sites key %q has no //torhs:faultsite-marked constant", name)
		}
	}
}

// sitesLiteral locates the package's `sites` map composite literal.
func sitesLiteral(pass *Pass) *ast.CompositeLit {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "sites" || len(vs.Values) != 1 {
					continue
				}
				if cl, ok := vs.Values[0].(*ast.CompositeLit); ok {
					return cl
				}
			}
		}
	}
	return nil
}

// checkHitArguments enforces, outside the fault package, that qualified
// fault.Hit / fault.MustHit calls pass a named fault-package constant.
func checkHitArguments(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Hit" && sel.Sel.Name != "MustHit") {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[x].(*types.PkgName)
			if !ok || pn.Imported().Name() != faultPkgName {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			if !isFaultConst(pass, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"fault.%s argument must be a named site constant from the fault package, "+
						"not an inline value (inline sites bypass the //torhs:faultsite registry)", sel.Sel.Name)
			}
			return true
		})
	}
}

// isFaultConst reports whether expr is a selector naming a constant
// declared in the fault package.
func isFaultConst(pass *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	c, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Const)
	return ok && c.Pkg() != nil && c.Pkg().Name() == faultPkgName
}
