package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WindowRing proves the streaming pipeline's bounded-working-set
// contract: in the deterministic packages, no long-lived struct quietly
// accumulates consensus documents. The window-consuming kernels fold
// each document and let it go — the whole bounded-RSS story of the
// streaming pipeline rests on retired windows actually becoming
// garbage. A struct field whose type can hold a consensus.Document
// (directly, or through any composition of pointers, slices, arrays,
// maps, channels, anonymous structs, or generic type arguments) must
// carry an audited //torhs:retained <reason> directive explaining why
// its retention is bounded — the sliding ring itself, the materialized
// non-streaming path, a fixed per-step window.
//
// The walk deliberately does not descend into named types' underlying
// structure: a field of type *consensus.History is the history
// abstraction's business (and the materialized path's contract), not a
// covert per-field document cache. Only the field's own compositional
// spelling is audited, so the directive always sits next to the slice
// or map that actually does the retaining.
var WindowRing = &Analyzer{
	Name: "windowring",
	Doc: "struct fields in deterministic packages that can hold consensus documents " +
		"must carry //torhs:retained <reason>: streamed windows must retire to garbage",
	Run: runWindowRing,
}

func runWindowRing(pass *Pass) error {
	if !InScope(pass.Pkg) {
		return nil
	}
	consumed := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkRetention(pass, ts.Name.Name, st, consumed)
			}
		}
	}
	// A retained directive that attached to anything but a struct field
	// protects nothing; report it rather than let it rot.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(c); ok && d.kind == dirRetained && !consumed[d.pos] {
					pass.Reportf(d.pos, "//torhs:retained must document a struct field")
				}
			}
		}
	}
	return nil
}

// checkRetention audits one struct declaration's fields.
func checkRetention(pass *Pass, typeName string, st *ast.StructType, consumed map[token.Pos]bool) {
	for _, field := range st.Fields.List {
		reason, exempt := fieldDirective(field, dirRetained)
		if exempt {
			if cg := field.Doc; hasKind(cg, dirRetained) {
				consumed[directivePos(cg, dirRetained)] = true
			} else {
				consumed[directivePos(field.Comment, dirRetained)] = true
			}
		}
		t := pass.TypesInfo.TypeOf(field.Type)
		holds := t != nil && holdsDocument(t, map[types.Type]bool{})
		name := fieldLabel(pass, field)
		switch {
		case holds && !exempt:
			pass.Reportf(field.Pos(), "%s.%s can hold consensus documents past the window fold: "+
				"bound the retention and document it with //torhs:retained <reason>, or drop the field",
				typeName, name)
		case holds && exempt && reason == "":
			pass.Reportf(field.Pos(), "//torhs:retained on %s.%s needs a reason saying why the retention is bounded",
				typeName, name)
		case !holds && exempt:
			pass.Reportf(field.Pos(), "%s.%s carries //torhs:retained but cannot hold a consensus document: "+
				"stale directive — delete it", typeName, name)
		}
	}
}

// fieldLabel names a field for diagnostics: the first declared name, or
// the embedded type's name.
func fieldLabel(pass *Pass, field *ast.Field) string {
	if names := fieldNames(pass, field); len(names) > 0 {
		return names[0]
	}
	return "(anonymous)"
}

// hasKind reports whether the comment group carries the directive kind.
func hasKind(cg *ast.CommentGroup, kind string) bool {
	_, ok := hasDirective(cg, kind)
	return ok
}

// holdsDocument reports whether a value of type t can reference a
// consensus.Document through type composition alone: pointers, slices,
// arrays, maps, channels, anonymous structs, and generic type arguments
// are traversed; named types' underlying structure is not (their
// retention is their own declaration's contract).
func holdsDocument(t types.Type, seen map[types.Type]bool) bool {
	t = types.Unalias(t)
	if seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Pointer:
		return holdsDocument(t.Elem(), seen)
	case *types.Slice:
		return holdsDocument(t.Elem(), seen)
	case *types.Array:
		return holdsDocument(t.Elem(), seen)
	case *types.Map:
		return holdsDocument(t.Key(), seen) || holdsDocument(t.Elem(), seen)
	case *types.Chan:
		return holdsDocument(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if holdsDocument(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Named:
		if isConsensusDocument(t) {
			return true
		}
		if args := t.TypeArgs(); args != nil {
			for i := 0; i < args.Len(); i++ {
				if holdsDocument(args.At(i), seen) {
					return true
				}
			}
		}
	}
	return false
}

// isConsensusDocument matches the consensus package's Document type by
// name, so analysistest fixtures shadowing the package participate.
func isConsensusDocument(n *types.Named) bool {
	obj := n.Obj()
	return obj != nil && obj.Name() == "Document" && obj.Pkg() != nil && obj.Pkg().Name() == "consensus"
}
