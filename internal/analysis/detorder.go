package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder flags `for range` over maps in deterministic packages when
// the loop body lets Go's randomized iteration order reach an
// order-sensitive sink: a write to an outer variable, an append to a
// slice that escapes unsorted, an early return/break, or a call with
// potential side effects (output, report nodes, hashing).
//
// A map range is accepted when the body is provably order-insensitive:
//   - writes only to per-key slots (map/slice indexed by the loop
//     variables) or to variables declared inside the loop,
//   - commutative accumulation into outer variables (+=, -=, *=, |=,
//     &=, ^=, ++, --),
//   - calls to pure functions (math, strings, strconv, bytes, unicode,
//     conversions, len/cap/min/max/delete/make) or to functions
//     annotated //torhs:orderinsensitive <reason>,
//   - appends to an outer slice that is passed to sort.X / slices.SortX
//     later in the same function (collect-then-sort),
//   - ranges that bind neither key nor value (`for range m`): the body
//     cannot observe the order.
//
// Anything else is a finding at the `for` line; fix it by sorting the
// keys first, or suppress with //torhs:ignore detorder <reason> when
// the order-insensitivity is real but beyond the analyzer.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "flag map iteration whose order can reach study output in deterministic packages " +
		"(sort keys first or use an order-insensitive accumulator)",
	Run: runDetOrder,
}

// pureCallPackages are standard-library packages whose package-level
// functions neither write output nor observe global state, so calling
// them on loop-local values cannot leak iteration order.
var pureCallPackages = map[string]bool{
	"bytes":        true,
	"math":         true,
	"math/bits":    true,
	"strconv":      true,
	"strings":      true,
	"unicode":      true,
	"unicode/utf8": true,
}

// sortCalls are the recognized collect-then-sort fixups.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func runDetOrder(pass *Pass) error {
	if !InScope(pass.Pkg) {
		return nil
	}
	decls := funcDeclIndex(pass.Files, pass.TypesInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil {
					// `for range m`: the body cannot see key or value,
					// so iteration order is unobservable.
					return true
				}
				checkMapRange(pass, fd, rs, decls)
				return true
			})
		}
	}
	return nil
}

// violation is one order-sensitive construct found in a map-range body.
type violation struct {
	pos token.Pos
	msg string
	// sink names the outer slice an append targets; such violations are
	// forgiven when the slice is sorted later in the same function.
	sink string
}

func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, decls map[*types.Func]*ast.FuncDecl) {
	c := &rangeChecker{pass: pass, rs: rs, decls: decls, constAssigns: map[string]map[string]token.Pos{}}
	c.stmts(rs.Body.List, 0)
	if c.accumulates {
		c.violations = append(c.violations, c.breaks...)
	}
	for target, values := range c.constAssigns {
		if len(values) > 1 {
			for _, pos := range values {
				c.violate(pos, "outer %s is set to different constants; the last map entry wins", target)
				break
			}
		}
	}

	var kept []violation
	for _, v := range c.violations {
		if v.sink != "" && sortedLater(pass, fd, rs, v.sink) {
			continue
		}
		kept = append(kept, v)
	}
	if len(kept) == 0 {
		return
	}
	first := kept[0]
	extra := ""
	if len(kept) > 1 {
		extra = fmt.Sprintf(" (+%d more)", len(kept)-1)
	}
	pass.Reportf(rs.For, "map iteration order can reach output: %s at line %d%s; "+
		"sort the keys first or annotate //torhs:ignore detorder <reason>",
		first.msg, pass.Position(first.pos).Line, extra)
}

// rangeChecker walks one map-range body collecting order-sensitive
// constructs.
type rangeChecker struct {
	pass       *Pass
	rs         *ast.RangeStmt
	decls      map[*types.Func]*ast.FuncDecl
	violations []violation

	// constAssigns tracks idempotent constant stores to outer targets
	// (flag = true): benign alone, order-sensitive when one target sees
	// two distinct constants.
	constAssigns map[string]map[string]token.Pos
	// accumulates records that the body has outer effects (+=, ++, map
	// writes, appends, deletes) beyond idempotent constant stores; an
	// early break then truncates those effects to an order-dependent
	// prefix.
	accumulates bool
	// breaks are tentative break/early-exit findings, kept only when
	// the body accumulates.
	breaks []violation
}

func (c *rangeChecker) violate(pos token.Pos, format string, args ...any) {
	c.violations = append(c.violations, violation{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// inner reports whether obj is declared within the range statement
// (loop variables included).
func (c *rangeChecker) inner(obj types.Object) bool {
	return declaredWithin(obj, c.rs)
}

func (c *rangeChecker) objOf(id *ast.Ident) types.Object {
	if obj, ok := c.pass.TypesInfo.Uses[id]; ok {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

// usesLoopVar reports whether e mentions the range's key or value
// variable (directly or through an expression over them).
func (c *rangeChecker) usesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.objOf(id); obj != nil && c.inner(obj) {
			found = true
		}
		return !found
	})
	return found
}

// depth counts enclosing breakable statements inside the map range, so
// a `break` that exits only an inner loop or switch is accepted.
func (c *rangeChecker) stmts(list []ast.Stmt, depth int) {
	for _, s := range list {
		c.stmt(s, depth)
	}
}

func (c *rangeChecker) stmt(s ast.Stmt, depth int) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			// In `buf = f(buf[:0], ...)` the top-level call is part of the
			// scratch-rewrite idiom: f's output is consumed per iteration
			// through buf, so only its remaining arguments need checking.
			if s.Tok != token.DEFINE && len(s.Lhs) == len(s.Rhs) &&
				c.scratchRewrite(ast.Unparen(s.Lhs[i]), rhs) {
				call := ast.Unparen(rhs).(*ast.CallExpr)
				for _, a := range call.Args[1:] {
					c.expr(a)
				}
				continue
			}
			c.expr(rhs)
		}
		if s.Tok == token.DEFINE {
			return
		}
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			}
			c.assign(lhs, s.Tok, rhs)
		}
	case *ast.IncDecStmt:
		// Counters commute; ++/-- on any target is order-insensitive.
		if base := baseIdent(s.X); base != nil {
			if obj := c.objOf(base); obj == nil || !c.inner(obj) {
				c.accumulates = true
			}
		}
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, depth)
		}
		c.expr(s.Cond)
		c.stmts(s.Body.List, depth)
		if s.Else != nil {
			c.stmt(s.Else, depth)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, depth)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, depth)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post, depth)
		}
		c.stmts(s.Body.List, depth+1)
	case *ast.RangeStmt:
		c.expr(s.X)
		if s.Tok == token.ASSIGN {
			if s.Key != nil {
				c.assign(s.Key, token.ASSIGN, nil)
			}
			if s.Value != nil {
				c.assign(s.Value, token.ASSIGN, nil)
			}
		}
		c.stmts(s.Body.List, depth+1)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, depth)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, e := range cl.List {
				c.expr(e)
			}
			c.stmts(cl.Body, depth+1)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, depth)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			c.stmts(cl.Body, depth+1)
		}
	case *ast.BranchStmt:
		switch {
		case s.Label != nil:
			c.violate(s.Pos(), "labeled %s can exit the map range after an order-dependent prefix", s.Tok)
		case s.Tok == token.BREAK && depth == 0:
			// Benign in the any()-pattern (idempotent store, then
			// break); order-sensitive once the body accumulates.
			c.breaks = append(c.breaks, violation{pos: s.Pos(),
				msg: "break exits the map range after an order-dependent prefix of accumulated effects"})
		case s.Tok == token.GOTO:
			c.violate(s.Pos(), "goto inside map range")
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e)
		}
		c.violate(s.Pos(), "return inside map range selects an order-dependent entry")
	case *ast.DeferStmt:
		c.violate(s.Pos(), "defer inside map range runs in iteration order")
	case *ast.GoStmt:
		c.violate(s.Pos(), "goroutine launched per map entry observes iteration order")
	case *ast.SendStmt:
		c.violate(s.Pos(), "channel send inside map range publishes entries in iteration order")
	case *ast.SelectStmt:
		c.violate(s.Pos(), "select inside map range")
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.expr(e)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, depth)
	case *ast.EmptyStmt:
	default:
		c.violate(s.Pos(), "statement kind %T not proven order-insensitive", s)
	}
}

// assign classifies one non-define assignment target inside the body.
func (c *rangeChecker) assign(lhs ast.Expr, tok token.Token, rhs ast.Expr) {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.IndexExpr:
		// Writes into per-key slots commute across distinct keys. A
		// loop-independent index (counts[j] with an outer j) serializes
		// entries in iteration order instead.
		if base := baseIdent(l.X); base != nil {
			if obj := c.objOf(base); obj != nil && c.inner(obj) {
				return
			}
		}
		c.accumulates = true
		if !c.usesLoopVar(l.Index) {
			c.violate(l.Pos(), "indexed write with a loop-independent index stores entries in iteration order")
		}
		return
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := c.objOf(l)
		if obj != nil && c.inner(obj) {
			return
		}
		if commutativeAssign(tok) {
			c.accumulates = true
			return
		}
		if c.scratchRewrite(lhs, rhs) {
			c.accumulates = true
			return
		}
		if c.constAssign(lhs, rhs) {
			return
		}
		if sink, ok := c.selfAppend(lhs, rhs); ok {
			c.accumulates = true
			c.violations = append(c.violations, violation{
				pos:  lhs.Pos(),
				msg:  fmt.Sprintf("append to %s escapes in iteration order (sort it before use)", sink),
				sink: sink,
			})
			return
		}
		c.violate(lhs.Pos(), "assignment to outer variable %s depends on iteration order", l.Name)
	case *ast.SelectorExpr, *ast.StarExpr:
		if base := baseIdent(lhs); base != nil {
			if obj := c.objOf(base); obj != nil && c.inner(obj) {
				return
			}
		}
		if commutativeAssign(tok) {
			c.accumulates = true
			return
		}
		if c.scratchRewrite(lhs, rhs) {
			c.accumulates = true
			return
		}
		if c.constAssign(lhs, rhs) {
			return
		}
		if sink, ok := c.selfAppend(lhs, rhs); ok {
			c.accumulates = true
			c.violations = append(c.violations, violation{
				pos:  lhs.Pos(),
				msg:  fmt.Sprintf("append to %s escapes in iteration order (sort it before use)", sink),
				sink: sink,
			})
			return
		}
		c.violate(lhs.Pos(), "assignment through outer target depends on iteration order")
	default:
		c.violate(lhs.Pos(), "assignment target not proven order-insensitive")
	}
}

// commutativeAssign reports whether the compound assignment operator
// commutes across iterations (sum, product, bitwise accumulate).
func commutativeAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

// constAssign records `outer = <constant>` stores: one constant per
// target is idempotent (the any()-pattern flag = true); two distinct
// constants make the last-iterated entry win, which checkMapRange turns
// into a violation.
func (c *rangeChecker) constAssign(lhs, rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[rhs]
	if !ok || tv.Value == nil {
		return false
	}
	target := types.ExprString(lhs)
	if c.constAssigns[target] == nil {
		c.constAssigns[target] = map[string]token.Pos{}
	}
	if _, ok := c.constAssigns[target][tv.Value.String()]; !ok {
		c.constAssigns[target][tv.Value.String()] = lhs.Pos()
	}
	return true
}

// scratchRewrite matches the scratch-buffer idiom
// `buf = f(buf[:0], ...)`: the buffer's value is fully rewritten every
// iteration (only its capacity carries over), so the assignment cannot
// transport iteration order between entries.
func (c *rangeChecker) scratchRewrite(lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sl, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.High == nil {
		return false
	}
	high, ok := ast.Unparen(sl.High).(*ast.BasicLit)
	if !ok || high.Value != "0" {
		return false
	}
	return types.ExprString(ast.Unparen(sl.X)) == types.ExprString(lhs)
}

// selfAppend matches `x = append(x, ...)` (including x.f / x[i]
// targets), the collect-then-sort sink shape; sink is the rendered
// target expression.
func (c *rangeChecker) selfAppend(lhs, rhs ast.Expr) (string, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || calleeBuiltin(c.pass.TypesInfo, call) != "append" || len(call.Args) == 0 {
		return "", false
	}
	target := types.ExprString(lhs)
	if types.ExprString(ast.Unparen(call.Args[0])) != target {
		return "", false
	}
	return target, true
}

// expr flags order-sensitive calls within an expression: anything with
// potential side effects (output writers, report builders, hashing)
// that is not a conversion, a pure builtin, a pure stdlib helper, or an
// annotated order-insensitive accumulator.
func (c *rangeChecker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs only if something calls it; the
			// carrying call is what gets classified.
			return false
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

func (c *rangeChecker) call(call *ast.CallExpr) {
	if isConversion(c.pass.TypesInfo, call) {
		return
	}
	if b := calleeBuiltin(c.pass.TypesInfo, call); b != "" {
		switch b {
		case "delete":
			c.accumulates = true
			return
		case "len", "cap", "min", "max", "append", "copy", "make", "new", "real", "imag", "complex":
			return
		default:
			// panic, print, println, clear, close: the observable
			// effect depends on which entry triggers it first.
			c.violate(call.Pos(), "builtin %s inside map range has order-dependent effect", b)
			return
		}
	}
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		c.violate(call.Pos(), "indirect call not proven order-insensitive")
		return
	}
	if pureCallPackages[pkgPath(fn)] && isPackageLevel(fn) {
		return
	}
	// Sorting a loop-local slice normalizes its order — the opposite of
	// leaking iteration order.
	if sortCalls[pkgPath(fn)][fn.Name()] && len(call.Args) > 0 {
		if base := baseIdent(ast.Unparen(call.Args[0])); base != nil {
			if obj := c.objOf(base); obj != nil && c.inner(obj) {
				return
			}
		}
	}
	if pureMethod(fn) {
		return
	}
	if decl, ok := c.decls[fn]; ok {
		if _, ok := hasDirective(decl.Doc, dirOrderInsensitive); ok {
			return
		}
	}
	c.violate(call.Pos(), "call to %s may observe iteration order (side effects)", fn.Name())
}

// pureMethod accepts methods of time.Time / time.Duration (IsZero,
// Before, Unix, ...): pure value computations with no way to observe
// or leak iteration order.
func pureMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "time"
}

// sortedLater reports whether the named sink expression is passed to a
// recognized sort call after the range statement in the same function —
// the collect-then-sort idiom (see runPrefixAudit).
func sortedLater(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, sink string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || found {
			return !found
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || !sortCalls[pkgPath(fn)][fn.Name()] || len(call.Args) == 0 {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		// sort.Sort(byCount(s)) wraps the slice in a conversion or
		// constructor; unwrap single-argument calls.
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = ast.Unparen(inner.Args[0])
		}
		if types.ExprString(arg) == sink {
			found = true
		}
		return !found
	})
	return found
}
