package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestParseDirectivesMalformed(t *testing.T) {
	cases := []struct {
		name, comment, wantMsg string
	}{
		{"no analyzer", "//torhs:ignore", "needs an analyzer name and a reason"},
		{"unknown analyzer", "//torhs:ignore nosuch because reasons", `unknown analyzer "nosuch"`},
		{"no reason", "//torhs:ignore detorder", "needs a reason"},
		{"unknown kind", "//torhs:frobnicate", "unknown directive //torhs:frobnicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, files := parseSrc(t, "package p\n\n"+tc.comment+"\nvar X int\n")
			_, diags := parseDirectives(fset, files)
			if len(diags) != 1 {
				t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
			}
			if d := diags[0]; d.Analyzer != diagDirective || !strings.Contains(d.Message, tc.wantMsg) {
				t.Errorf("got [%s] %q, want message containing %q", d.Analyzer, d.Message, tc.wantMsg)
			}
		})
	}
}

func TestIgnoreSuppressesSameAndNextLine(t *testing.T) {
	fset, files := parseSrc(t, `package p

//torhs:ignore detorder the construct below is audited
var A int
var B int
`)
	ix, diags := parseDirectives(fset, files)
	if len(diags) != 0 {
		t.Fatalf("unexpected parse diagnostics: %v", diags)
	}
	// Fabricate findings on the directive line (3), the line below (4),
	// and two lines below (5): the first two are covered, the last not.
	base := fset.File(files[0].Pos())
	mk := func(line int) Diagnostic {
		return Diagnostic{Pos: base.LineStart(line), Analyzer: "detorder", Message: "finding"}
	}
	found := []Diagnostic{mk(3), mk(4), mk(5)}
	unused := ix.apply(fset, found)
	if len(unused) != 0 {
		t.Fatalf("directive should be used, got unused diagnostics: %v", unused)
	}
	if !found[0].suppressed || !found[1].suppressed {
		t.Errorf("findings on the directive line and the next line must be suppressed: %+v", found[:2])
	}
	if found[2].suppressed {
		t.Errorf("finding two lines below the directive must NOT be suppressed")
	}
}

func TestIgnoreWrongAnalyzerDoesNotSuppress(t *testing.T) {
	fset, files := parseSrc(t, `package p

//torhs:ignore detrand wall clock audited
var A int
`)
	ix, diags := parseDirectives(fset, files)
	if len(diags) != 0 {
		t.Fatalf("unexpected parse diagnostics: %v", diags)
	}
	base := fset.File(files[0].Pos())
	found := []Diagnostic{{Pos: base.LineStart(4), Analyzer: "detorder", Message: "finding"}}
	unused := ix.apply(fset, found)
	if found[0].suppressed {
		t.Errorf("an ignore for detrand must not suppress a detorder finding")
	}
	if len(unused) != 1 || !strings.Contains(unused[0].Message, "unused //torhs:ignore detrand") {
		t.Errorf("the unmatched directive must be reported unused, got %v", unused)
	}
}

func TestUnusedIgnoreReported(t *testing.T) {
	fset, files := parseSrc(t, `package p

//torhs:ignore detorder nothing here needs this
var A int
`)
	ix, diags := parseDirectives(fset, files)
	if len(diags) != 0 {
		t.Fatalf("unexpected parse diagnostics: %v", diags)
	}
	unused := ix.apply(fset, nil)
	if len(unused) != 1 {
		t.Fatalf("got %d unused-directive diagnostics, want 1: %v", len(unused), unused)
	}
	d := unused[0]
	if d.Analyzer != diagDirective || !strings.Contains(d.Message, "unused //torhs:ignore detorder") {
		t.Errorf("got [%s] %q", d.Analyzer, d.Message)
	}
}
