package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the *types.Func a call invokes, or nil for calls
// through function values, builtins, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeBuiltin returns the builtin a call invokes ("len", "append",
// ...), or "".
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

// pkgPath returns the import path of a function's defining package
// ("" for builtins / universe scope).
func pkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isPackageLevel reports whether fn is a package-level function (no
// receiver).
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// baseIdent walks x.f[i].g-style expressions down to the root
// identifier, or nil if the root is not an identifier (a call result,
// for example).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies within the
// source span of n.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// funcDeclIndex maps each declared function/method object of the
// package to its declaration, so analyzers can chase same-package
// calls (directive lookup, cachekey recursion).
func funcDeclIndex(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	ix := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				ix[fn] = fd
			}
		}
	}
	return ix
}
