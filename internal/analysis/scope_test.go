package analysis

import (
	"reflect"
	"sort"
	"testing"
)

// TestScopePathsInSync regenerates the deterministic-package import
// paths from the live module and compares them with the generated
// scope_paths.go, so a renamed or moved package cannot silently drop
// out of detorder/detrand coverage. Fails with the go:generate fix.
func TestScopePathsInSync(t *testing.T) {
	fresh, err := ComputeScopeImportPaths()
	if err != nil {
		t.Fatalf("resolving deterministic packages: %v", err)
	}
	if !reflect.DeepEqual(fresh, scopeImportPaths) {
		t.Fatalf("scope_paths.go is stale: have %v, module has %v\n(run `go generate ./internal/analysis`)",
			scopeImportPaths, fresh)
	}
}

// TestDeterministicPackagesSorted keeps the source-of-truth list tidy
// and duplicate-free: the generator and the docs both quote it.
func TestDeterministicPackagesSorted(t *testing.T) {
	if !sort.StringsAreSorted(DeterministicPackages) {
		t.Errorf("DeterministicPackages is not sorted: %v", DeterministicPackages)
	}
	seen := map[string]bool{}
	for _, name := range DeterministicPackages {
		if seen[name] {
			t.Errorf("DeterministicPackages lists %q twice", name)
		}
		seen[name] = true
		if _, ok := scopeImportPaths[name]; !ok {
			t.Errorf("DeterministicPackages names %q but scope_paths.go has no import path for it", name)
		}
	}
	for name := range scopeImportPaths {
		if !seen[name] {
			t.Errorf("scope_paths.go maps %q, which DeterministicPackages does not list", name)
		}
	}
}
