package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The suite's comment directives. All of them are audited: ignore and
// nocachekey require a reason, unknown or unused directives are
// themselves diagnostics, so a suppression can never silently rot.
//
//	//torhs:ignore <analyzer> <reason>   suppress <analyzer> findings on
//	                                     this line or the line below
//	//torhs:hotpath                      (func doc) hotalloc analyzes this
//	                                     function's body
//	//torhs:nocachekey <reason>          (struct field) exempt the field
//	                                     from the cachekey contract
//	//torhs:orderinsensitive <reason>    (func doc) calls to this function
//	                                     are accepted inside map ranges
//	//torhs:faultsite <name>             (const doc) the string constant
//	                                     names a registered fault-injection
//	                                     site (see internal/fault)
//	//torhs:shardmerge <param>           (func doc) the function folds the
//	                                     named shard-slice parameter and
//	                                     must visit it in ascending index
//	                                     order
//	//torhs:cancelpoint                  (func doc) the function is a
//	                                     kernel cancellation boundary: it
//	                                     takes a context and must check
//	                                     ctx.Err()/ctx.Done() inside its
//	                                     outermost loop
//	//torhs:retained <reason>            (struct field) the field
//	                                     deliberately retains consensus
//	                                     documents past a streaming fold;
//	                                     the reason must say why the
//	                                     retention is bounded
const (
	dirIgnore           = "ignore"
	dirHotPath          = "hotpath"
	dirNoCacheKey       = "nocachekey"
	dirOrderInsensitive = "orderinsensitive"
	dirFaultSite        = "faultsite"
	dirShardMerge       = "shardmerge"
	dirCancelPoint      = "cancelpoint"
	dirRetained         = "retained"
)

// directivePrefix introduces every torhs directive comment.
const directivePrefix = "//torhs:"

// diagDirective is the pseudo-analyzer name attached to malformed or
// unused directives. It is deliberately not a real analyzer, so
// directive problems cannot themselves be suppressed.
const diagDirective = "directive"

// directive is one parsed //torhs: comment.
type directive struct {
	pos  token.Pos
	kind string // dirIgnore, dirHotPath, ...
	args string // everything after the kind, space-trimmed
}

// parseDirective parses a single comment; ok is false for ordinary
// comments that are not torhs directives.
func parseDirective(c *ast.Comment) (directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	kind, args, _ := strings.Cut(rest, " ")
	return directive{pos: c.Pos(), kind: kind, args: strings.TrimSpace(args)}, true
}

// ignoreDirective is an //torhs:ignore occurrence with use tracking.
type ignoreDirective struct {
	pos      token.Pos
	analyzer string
	reason   string
	used     bool
}

// directiveIndex holds every ignore directive of a package, keyed by
// file and line for suppression lookup.
type directiveIndex struct {
	// ignores maps "<file>:<line>" of the directive comment to the
	// directives on that line.
	ignores map[string][]*ignoreDirective
}

func lineKey(pos token.Position) string {
	// The filename/line pair as a map key; columns are irrelevant.
	return pos.Filename + ":" + strconv.Itoa(pos.Line)
}

// parseDirectives scans every comment of the package, building the
// suppression index and reporting malformed directives: unknown kinds,
// ignores naming unknown analyzers, and ignores without a reason.
// hotpath / nocachekey / orderinsensitive directives are validated
// where they are consumed (they are positional: their meaning depends
// on the declaration they document).
func parseDirectives(fset *token.FileSet, files []*ast.File) (*directiveIndex, []Diagnostic) {
	ix := &directiveIndex{ignores: map[string][]*ignoreDirective{}}
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: diagDirective, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				switch d.kind {
				case dirHotPath, dirNoCacheKey, dirOrderInsensitive, dirFaultSite, dirShardMerge, dirCancelPoint, dirRetained:
					// Positional; consumed by hotalloc / cachekey /
					// detorder / faultsite / shardmerge / ctxflow /
					// windowring respectively.
				case dirIgnore:
					analyzer, reason, _ := strings.Cut(d.args, " ")
					reason = strings.TrimSpace(reason)
					switch {
					case analyzer == "":
						report(d.pos, "//torhs:ignore needs an analyzer name and a reason")
					case byName(analyzer) == nil:
						report(d.pos, "//torhs:ignore names unknown analyzer "+strconv.Quote(analyzer))
					case reason == "":
						report(d.pos, "//torhs:ignore "+analyzer+" needs a reason")
					default:
						key := lineKey(fset.Position(d.pos))
						ix.ignores[key] = append(ix.ignores[key], &ignoreDirective{
							pos: d.pos, analyzer: analyzer, reason: reason,
						})
					}
				default:
					report(d.pos, "unknown directive //torhs:"+d.kind)
				}
			}
		}
	}
	return ix, diags
}

// apply marks diagnostics covered by an ignore directive as suppressed
// (a directive on line L covers findings on L — trailing comment — and
// L+1 — comment line above the construct) and returns diagnostics for
// directives that suppressed nothing, so stale ignores cannot linger.
func (ix *directiveIndex) apply(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	for i := range diags {
		d := &diags[i]
		if d.Analyzer == diagDirective {
			continue
		}
		pos := fset.Position(d.Pos)
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, ig := range ix.ignores[pos.Filename+":"+strconv.Itoa(line)] {
				if ig.analyzer == d.Analyzer {
					d.suppressed = true
					ig.used = true
				}
			}
		}
	}
	var unused []Diagnostic
	for _, igs := range ix.ignores {
		for _, ig := range igs {
			if !ig.used {
				unused = append(unused, Diagnostic{
					Pos:      ig.pos,
					Analyzer: diagDirective,
					Message:  "unused //torhs:ignore " + ig.analyzer + " (no " + ig.analyzer + " finding here — delete it)",
				})
			}
		}
	}
	return unused
}

// hasDirective reports whether the comment group carries the given
// directive kind, returning its arguments.
func hasDirective(cg *ast.CommentGroup, kind string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok && d.kind == kind {
			return d.args, true
		}
	}
	return "", false
}

// fieldDirective looks for kind on a struct field's doc or trailing
// line comment.
func fieldDirective(field *ast.Field, kind string) (string, bool) {
	if args, ok := hasDirective(field.Doc, kind); ok {
		return args, ok
	}
	return hasDirective(field.Comment, kind)
}
