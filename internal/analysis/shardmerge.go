package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardMerge proves the deterministic-merge contract of the sharded
// kernels: a function annotated //torhs:shardmerge <param> folds a slice
// of per-shard partial results, and the whole determinism story leans on
// that fold visiting shards in ascending index order — shard spans are
// contiguous ascending ranges (parallel.Chunks), so shard order is plan
// order, and any other visiting order would silently reorder the merged
// output. The analyzer requires:
//
//   - the directive documents a function declaration and names exactly
//     one of its parameters, which must have a slice type;
//   - every access to that parameter indexes it with a constant or with
//     the loop variable of an ascending loop (a range statement, or a
//     for statement whose post increments the variable) — a descending
//     or strided walk, or indexing by arbitrary computed values, is
//     reported;
//   - the function actually iterates the parameter: a directive naming
//     a parameter the body never folds is a stale annotation.
var ShardMerge = &Analyzer{
	Name: "shardmerge",
	Doc: "//torhs:shardmerge functions must fold their shard-slice parameter in ascending " +
		"index order (range loops or incrementing for loops; constant indexes aside)",
	Run: runShardMerge,
}

func runShardMerge(pass *Pass) error {
	consumed := map[token.Pos]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			args, ok := hasDirective(fd.Doc, dirShardMerge)
			if !ok {
				continue
			}
			consumed[directivePos(fd.Doc, dirShardMerge)] = true
			checkShardMerge(pass, fd, args)
		}
	}
	// A directive that attached to anything but a function declaration
	// protects nothing; report it rather than let it rot.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(c); ok && d.kind == dirShardMerge && !consumed[d.pos] {
					pass.Reportf(d.pos, "//torhs:shardmerge must document a function declaration")
				}
			}
		}
	}
	return nil
}

func checkShardMerge(pass *Pass, fd *ast.FuncDecl, name string) {
	switch {
	case name == "":
		pass.Reportf(fd.Pos(), "//torhs:shardmerge needs the shard-slice parameter name")
		return
	case strings.ContainsAny(name, " \t"):
		pass.Reportf(fd.Pos(), "//torhs:shardmerge takes a single parameter name, got %q", name)
		return
	}
	param := paramByName(pass, fd, name)
	if param == nil {
		pass.Reportf(fd.Pos(), "//torhs:shardmerge names unknown parameter %q", name)
		return
	}
	if _, ok := param.Type().Underlying().(*types.Slice); !ok {
		pass.Reportf(fd.Pos(), "//torhs:shardmerge parameter %s must be a slice of per-shard partials, not %s",
			name, param.Type())
		return
	}

	// Loop variables proven to advance in ascending order. Each loop
	// declares a distinct variable object, so one flat set is exact.
	ascending := map[types.Object]bool{}
	descending := map[types.Object]bool{}
	iterates := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Ranging over a slice visits indexes in ascending order by
			// language definition.
			if isParamIdent(pass, n.X, param) {
				iterates = true
				if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						ascending[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if v, asc, ok := forDirection(pass, n); ok {
				if asc {
					ascending[v] = true
				} else {
					descending[v] = true
				}
			}
		case *ast.IndexExpr:
			if !isParamIdent(pass, n.X, param) {
				return true
			}
			iterates = true
			if tv, ok := pass.TypesInfo.Types[n.Index]; ok && tv.Value != nil {
				return true // constant index (e.g. shards[0] as the merge seed)
			}
			if id, ok := ast.Unparen(n.Index).(*ast.Ident); ok {
				obj := pass.TypesInfo.Uses[id]
				switch {
				case ascending[obj]:
					return true
				case descending[obj]:
					pass.Reportf(n.Pos(), "%s is indexed by a descending loop variable; "+
						"shard merges must fold in ascending shard order", name)
					return true
				}
			}
			pass.Reportf(n.Pos(), "%s must be indexed by an ascending loop variable or a constant: "+
				"the merge order is the determinism contract", name)
		}
		return true
	})
	if !iterates {
		pass.Reportf(fd.Pos(), "//torhs:shardmerge %s: the function never iterates its shard parameter "+
			"(stale directive or wrong parameter name)", name)
	}
}

// paramByName resolves a parameter object of fd by name.
func paramByName(pass *Pass, fd *ast.FuncDecl, name string) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			if id.Name == name {
				return pass.TypesInfo.Defs[id]
			}
		}
	}
	return nil
}

// isParamIdent reports whether expr is an identifier resolving to param.
func isParamIdent(pass *Pass, expr ast.Expr, param types.Object) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == param
}

// forDirection classifies a for statement's loop variable by its post
// statement: i++ / i += c ascend, i-- / i -= c descend. Loops with no
// classifiable post statement prove nothing either way.
func forDirection(pass *Pass, n *ast.ForStmt) (types.Object, bool, bool) {
	switch post := n.Post.(type) {
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(post.X).(*ast.Ident); ok {
			if obj := lookupLoopVar(pass, id); obj != nil {
				return obj, post.Tok == token.INC, true
			}
		}
	case *ast.AssignStmt:
		if len(post.Lhs) == 1 && (post.Tok == token.ADD_ASSIGN || post.Tok == token.SUB_ASSIGN) {
			if id, ok := ast.Unparen(post.Lhs[0]).(*ast.Ident); ok {
				if obj := lookupLoopVar(pass, id); obj != nil {
					return obj, post.Tok == token.ADD_ASSIGN, true
				}
			}
		}
	}
	return nil, false, false
}

// lookupLoopVar resolves the loop variable identifier, which is a use in
// the post statement but may be defined in the loop init.
func lookupLoopVar(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Defs[id]
}
