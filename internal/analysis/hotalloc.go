package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation-forcing constructs inside functions
// annotated //torhs:hotpath, giving the AllocsPerRun regression tests
// line-level attribution. Flagged constructs:
//
//   - fmt package calls (argument boxing + formatting buffers),
//   - non-constant string <-> []byte / []rune conversions,
//   - make / new / &T{} / slice, map, and chan composite literals,
//   - append that starts a new backing array (`y = append(x, ...)` with
//     y != x); reuse shapes — x = append(x, ...), append(buf[:0], ...),
//     and `return append(dst, ...)` where dst is a parameter (the
//     caller-owned-growth Into idiom) — are accepted,
//   - function literals that capture outer variables (possible closure
//     heap allocation),
//   - interface boxing: passing a concrete non-pointer-shaped value to
//     an interface parameter,
//   - non-constant string concatenation.
//
// Cold paths inside a hot function (error exits, once-per-call setup)
// carry //torhs:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation-forcing constructs in //torhs:hotpath functions " +
		"(fmt, make/new/composite literals, fresh append backing, capturing closures, interface boxing)",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := hasDirective(fd.Doc, dirHotPath); !ok {
				continue
			}
			checkHotPath(pass, fd)
		}
	}
	return nil
}

func checkHotPath(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, fd, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates if it escapes; reuse a scratch value")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Chan:
				pass.Reportf(n.Pos(), "%s literal allocates; hoist it out of the hot path or reuse scratch",
					kindName(info.TypeOf(n)))
			}
		case *ast.FuncLit:
			if capturesOuter(info, n) {
				pass.Reportf(n.Pos(), "closure captures outer variables and may heap-allocate; "+
					"pass state explicitly or hoist the closure")
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConstExpr(info, n) {
				if b, ok := info.TypeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					pass.Reportf(n.Pos(), "string concatenation allocates; use an append-based builder outside the hot path")
				}
			}
		}
		return true
	})
}

func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return "composite"
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo

	if isConversion(info, call) {
		checkHotConversion(pass, call)
		return
	}
	switch calleeBuiltin(info, call) {
	case "make":
		pass.Reportf(call.Pos(), "make allocates; hoist it out of the hot path or reuse scratch")
		return
	case "new":
		pass.Reportf(call.Pos(), "new allocates; reuse a scratch value")
		return
	case "append":
		checkHotAppend(pass, fd, call)
		return
	case "":
	default:
		return
	}

	if fn := calleeFunc(info, call); fn != nil && pkgPath(fn) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates (boxes every argument); move formatting off the hot path",
			fn.Name())
		return
	}
	checkBoxing(pass, call)
}

// checkHotConversion flags conversions that copy their operand to the
// heap: string <-> []byte / []rune and rune -> string.
func checkHotConversion(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	if len(call.Args) != 1 || isConstExpr(info, call) {
		return
	}
	to := info.TypeOf(call)
	from := info.TypeOf(call.Args[0])
	if isString(to) && (isByteOrRuneSlice(from) || isBasicInfo(from, types.IsInteger)) {
		pass.Reportf(call.Pos(), "conversion to string copies; keep the hot path on []byte")
	} else if isByteOrRuneSlice(to) && isString(from) {
		pass.Reportf(call.Pos(), "conversion from string copies; keep the hot path on []byte")
	}
}

func isString(t types.Type) bool { return isBasicInfo(t, types.IsString) }

func isBasicInfo(t types.Type, info types.BasicInfo) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&info != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// checkHotAppend accepts the amortized-growth and scratch-reuse shapes
// and flags appends that must start a fresh backing array.
func checkHotAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	arg0 := ast.Unparen(call.Args[0])
	// append(buf[:0], ...) and friends: a reslice reuses an existing
	// backing array, so growth is amortized against caller-owned memory.
	if _, ok := arg0.(*ast.SliceExpr); ok {
		return
	}
	target := appendTarget(pass, fd, call)
	src := types.ExprString(arg0)
	if target == src {
		// x = append(x, ...): amortized growth against reused backing.
		return
	}
	if target == "" && returnsParam(pass, fd, call, arg0) {
		// return append(dst, ...): the Into idiom — the caller owns
		// dst's growth and amortizes it.
		return
	}
	pass.Reportf(call.Pos(), "append into a different slice than its source starts a new backing array; "+
		"append in place or reuse scratch")
}

// appendTarget renders the assignment target when the append call is
// an RHS of an assignment in fd ("" otherwise). The parent link comes
// from a positional walk since go/ast has no parent pointers.
func appendTarget(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) string {
	target := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) == 0 {
			return true
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) == call && i < len(as.Lhs) {
				target = types.ExprString(ast.Unparen(as.Lhs[i]))
			}
		}
		return true
	})
	return target
}

// returnsParam reports whether the call appears in a return statement
// and its first argument's base is one of fd's parameters.
func returnsParam(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, arg0 ast.Expr) bool {
	base := baseIdent(arg0)
	if base == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil || fd.Type.Params == nil || !declaredWithin(obj, fd.Type.Params) {
		return false
	}
	inReturn := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if ast.Unparen(r) == call {
					inReturn = true
				}
			}
		}
		return !inReturn
	})
	return inReturn
}

// capturesOuter reports whether the literal references variables
// declared outside it (closure capture).
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if !declaredWithin(v, lit) {
			captures = true
		}
		return !captures
	})
	return captures
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters: the value is copied to the heap to build the
// interface word.
func checkBoxing(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isPointerShaped(at) || isConstExpr(info, arg) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to an interface parameter boxes it on the heap", at)
	}
}

// isPointerShaped reports types whose interface representation reuses
// the value itself (no boxing allocation).
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}
