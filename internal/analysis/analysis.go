// Package analysis is torhs's static-analysis suite: repo-specific
// analyzers that prove the codebase's load-bearing contracts at compile
// time, plus the package loader and directive machinery that drive them.
//
// The contracts (see README "Static guarantees"):
//
//   - detorder: deterministic packages never let map iteration order
//     reach an order-sensitive sink (byte-identical study output at
//     every worker count).
//   - detrand: deterministic packages draw randomness only from
//     seed-derived sources (parallel.SeedFor / parallel.NewRNG) and
//     never read ambient state (time.Now, os.Getenv, global math/rand).
//   - hotalloc: functions annotated //torhs:hotpath avoid
//     allocation-forcing constructs, giving the AllocsPerRun tests
//     line-level attribution.
//   - cachekey: every field of a struct with a CacheKey() string method
//     is either consumed by CacheKey or carries an audited
//     //torhs:nocachekey exemption, so a new knob can never silently
//     alias result-store cache entries.
//   - faultsite: every //torhs:faultsite name is unique, matches its
//     constant's value, and is registered in the fault package's sites
//     map; fault.Hit / fault.MustHit calls pass named site constants,
//     never inline strings.
//   - shardmerge: functions annotated //torhs:shardmerge <param> fold
//     their per-shard partial-result slice in ascending shard index
//     order — the order that makes a contiguous-chunk merge reproduce
//     the sequential result byte for byte.
//   - windowring: deterministic packages never let a long-lived struct
//     field accumulate consensus documents without an audited
//     //torhs:retained exemption — the streaming pipeline's bounded
//     working set depends on retired windows becoming garbage.
//
// The API deliberately mirrors golang.org/x/tools/go/analysis (Analyzer
// / Pass / Diagnostic) so the suite can migrate to the upstream
// framework (and its unitchecker) wholesale if the dependency ever
// becomes available; the build environment is offline, so everything
// here runs on the standard library plus the go command.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //torhs:ignore directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run applies the check to a single type-checked package.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// directives holds the parsed //torhs: directives of the package,
	// shared by every analyzer in the run.
	directives *directiveIndex

	diagnostics []Diagnostic
}

// Diagnostic is one finding, attributed to the exact token position of
// the violating construct.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string

	// suppressed is set by the driver when a //torhs:ignore directive
	// covers the diagnostic; suppressed diagnostics are not reported
	// but mark their directive as used.
	suppressed bool
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// All returns the full suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetOrder, DetRand, HotAlloc, CacheKey, FaultSite, ShardMerge, CtxFlow, WindowRing}
}

// byName resolves an analyzer name; used to validate ignore directives.
func byName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies every analyzer in as to pkg, filters the findings through
// the package's //torhs:ignore directives, and returns the surviving
// diagnostics (directive problems included) sorted by position.
//
// The returned diagnostics are the tool's contract: an empty slice
// means the package satisfies every analyzed invariant or carries an
// audited suppression for each exception.
//
// Test files are exempt: the contracts govern study output, and test
// determinism is enforced separately (go test -shuffle=on in CI). The
// standalone loader never sees them; the go vet path does, so they are
// filtered here.
func Run(pkg *Package, as []*Analyzer) ([]Diagnostic, error) {
	files := pkg.Files[:0:0]
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	pkg = &Package{
		Path: pkg.Path, Name: pkg.Name, Dir: pkg.Dir, Fset: pkg.Fset,
		Files: files, Types: pkg.Types, TypesInfo: pkg.TypesInfo,
	}
	dirs, derrs := parseDirectives(pkg.Fset, pkg.Files)
	var all []Diagnostic
	all = append(all, derrs...)
	for _, a := range as {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			directives: dirs,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		all = append(all, pass.diagnostics...)
	}
	all = append(all, dirs.apply(pkg.Fset, all)...)
	kept := all[:0]
	for _, d := range all {
		if !d.suppressed {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(pkg.Fset, kept)
	return kept, nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny and this avoids
	// importing sort for a slice of unexported state.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	if pa.Column != pb.Column {
		return pa.Column < pb.Column
	}
	return a.Analyzer < b.Analyzer
}
