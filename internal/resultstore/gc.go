package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// GCStats summarises one garbage-collection pass over the store.
type GCStats struct {
	// Objects is the number of stored objects examined.
	Objects int
	// Reachable is how many were referenced by a key or index entry.
	Reachable int
	// Removed is how many orphans were deleted.
	Removed int
	// BytesFreed is the total size of the removed objects.
	BytesFreed int64
}

// GC removes orphaned objects/ entries: documents no longer reachable
// from any keys/ or index/ reference. Orphans accumulate when a key is
// rebound to a new content hash (a code-version bump re-runs every
// experiment) or when entries are quarantined — long sweep sessions with
// intermediate artefacts would otherwise grow the store unboundedly.
// Checkpoint and intermediate files never reference objects (they are
// self-contained blobs under their own cache key, removed by
// Clear/prune), so the reachable set is exactly the union of the entry
// planes. Unparseable entries are skipped conservatively — a corrupt
// reference must not turn into a deleted object.
//
// GC is safe against concurrent readers (objects vanish atomically; a
// reader holding a dangling entry sees a clean miss) but not against a
// concurrent writer publishing new objects, which may race the sweep:
// run it from the CLI between studies, as `hsstudy -gc` does.
func (s *Store) GC() (GCStats, error) {
	var st GCStats
	reachable := make(map[string]bool)
	for _, base := range []string{"keys", "index"} {
		root := filepath.Join(s.dir, base)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
				return err
			}
			e, err := readEntry(path)
			if err != nil || e == nil {
				// Unreadable entry: treat its (unknown) object as live.
				return nil
			}
			if e.ContentHash != "" {
				reachable[e.ContentHash] = true
			}
			return nil
		})
		if err != nil {
			return st, fmt.Errorf("resultstore: gc: scanning %s: %w", base, err)
		}
	}
	st.Reachable = len(reachable)

	root := filepath.Join(s.dir, "objects")
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		st.Objects++
		hash := strings.TrimSuffix(d.Name(), ".json")
		if reachable[hash] {
			return nil
		}
		info, ierr := d.Info()
		if rerr := os.Remove(path); rerr != nil {
			return rerr
		}
		st.Removed++
		if ierr == nil {
			st.BytesFreed += info.Size()
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("resultstore: gc: sweeping objects: %w", err)
	}

	// Drop shard directories the sweep emptied.
	if ents, err := os.ReadDir(root); err == nil {
		for _, e := range ents {
			if e.IsDir() {
				os.Remove(filepath.Join(root, e.Name())) // fails (kept) unless empty
			}
		}
	}
	return st, nil
}
