package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"torhs/internal/fault"
)

// Intermediates extend the store's content-addressed keying from final
// report documents to per-stage pipeline artefacts: a trawl harvest, a
// per-window log summary — anything expensive that a re-run or a sweep
// sharing the same cache key can reuse instead of recomputing. This is
// the spill side of the streaming pipeline: a window retired from the
// sliding ring lands here once and is a cache hit forever after.
//
// Layout under the store root:
//
//	intermediates/<keyhash>/<stage>.bin
//
// Each file carries the same one-line integrity header as checkpoints
// (format magic + SHA-256 of the payload) followed by the gob-encoded
// artefact; gob, not JSON, for the same bit-exact float64/time.Time
// round-trip reasons. Writes are atomic and fsync'd; a file failing its
// integrity check at read time is quarantined and reads as a clean miss,
// so a torn spill can only cost a recompute, never a wrong result.

// intMagic versions the intermediate-artefact file format.
const intMagic = "torhs-int/1"

// IntermediateSet holds the stage-named intermediate artefacts of one
// cache key.
type IntermediateSet struct {
	s   *Store
	dir string
}

// Intermediates returns the intermediate-artefact set for the key. The
// directory is created lazily on first Put; a key that never spills
// costs nothing.
func (s *Store) Intermediates(k Key) (*IntermediateSet, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &IntermediateSet{s: s, dir: filepath.Join(s.dir, "intermediates", k.CacheKey())}, nil
}

func (i *IntermediateSet) stagePath(stage string) string {
	return filepath.Join(i.dir, stage+".bin")
}

func validStage(stage string) error {
	if stage == "" || !pathSafe(stage) {
		return fmt.Errorf("resultstore: invalid intermediate stage %q", stage)
	}
	return nil
}

// Put stores the artefact under the stage name, replacing any previous
// artefact of that stage atomically.
func (i *IntermediateSet) Put(stage string, state any) error {
	if err := validStage(stage); err != nil {
		return err
	}
	if err := fault.Hit(fault.SiteStoreWrite); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return fmt.Errorf("resultstore: encode intermediate %q: %w", stage, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	data := make([]byte, 0, len(intMagic)+2+2*len(sum)+buf.Len())
	data = append(data, intMagic...)
	data = append(data, ' ')
	data = append(data, hex.EncodeToString(sum[:])...)
	data = append(data, '\n')
	data = append(data, buf.Bytes()...)
	if err := writeAtomic(i.stagePath(stage), data); err != nil {
		return fmt.Errorf("resultstore: write intermediate %q: %w", stage, err)
	}
	return nil
}

// Get decodes the stage's artefact into state (pass a zero value). ok is
// false on a clean miss; a corrupt artefact is quarantined and also
// reads as a miss.
func (i *IntermediateSet) Get(stage string, state any) (ok bool, err error) {
	if err := validStage(stage); err != nil {
		return false, err
	}
	if err := fault.Hit(fault.SiteStoreRead); err != nil {
		return false, err
	}
	path := i.stagePath(stage)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("resultstore: %w", err)
	}
	if err := decodeIntermediate(data, state); err != nil {
		if qerr := i.s.quarantine(path, fmt.Sprintf("invalid intermediate: %v", err)); qerr != nil {
			return false, qerr
		}
		return false, nil
	}
	return true, nil
}

// decodeIntermediate verifies the header magic and payload hash, then
// gob-decodes the payload into state.
func decodeIntermediate(data []byte, state any) error {
	header, payload, found := bytes.Cut(data, []byte{'\n'})
	if !found {
		return fmt.Errorf("missing header")
	}
	magic, wantHex, found := strings.Cut(string(header), " ")
	if !found || magic != intMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantHex {
		return fmt.Errorf("payload hash mismatch (torn write?)")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(state); err != nil {
		return fmt.Errorf("decode: %v", err)
	}
	return nil
}

// Clear removes the whole set.
func (i *IntermediateSet) Clear() error {
	return os.RemoveAll(i.dir)
}
