package resultstore

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"torhs/internal/fault"
)

// ckptState is a representative snapshot shape: nested maps, counters,
// non-finite floats, and exact instants.
type ckptState struct {
	Window  int
	Counts  map[string]int
	Ratio   float64
	At      time.Time
	Labels  []string
	Covered float64
}

func testState(window int) *ckptState {
	return &ckptState{
		Window:  window,
		Counts:  map[string]int{"descriptors": 17 * (window + 1), "requests": 5},
		Ratio:   math.Inf(1),
		At:      time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC).Add(time.Duration(window) * time.Hour),
		Labels:  []string{"a", "b"},
		Covered: 0.25,
	}
}

func openCkpt(t *testing.T) (*Store, *CheckpointSet) {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Checkpoints(testKey("trawl"))
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestCheckpointRoundTrip(t *testing.T) {
	_, c := openCkpt(t)

	var none ckptState
	if _, ok, err := c.Latest(&none); err != nil || ok {
		t.Fatalf("Latest on empty set = ok=%v err=%v, want clean miss", ok, err)
	}

	for w := 0; w < 3; w++ {
		if err := c.Save(w, testState(w)); err != nil {
			t.Fatalf("Save(%d): %v", w, err)
		}
	}
	var got ckptState
	w, ok, err := c.Latest(&got)
	if err != nil || !ok || w != 2 {
		t.Fatalf("Latest = (%d, %v, %v), want window 2", w, ok, err)
	}
	want := testState(2)
	if got.Window != want.Window || got.Counts["descriptors"] != want.Counts["descriptors"] ||
		!math.IsInf(got.Ratio, 1) || !got.At.Equal(want.At) {
		t.Fatalf("snapshot did not round-trip: %+v", got)
	}
}

func TestCheckpointPruneKeepsTwo(t *testing.T) {
	_, c := openCkpt(t)
	for w := 0; w < 5; w++ {
		if err := c.Save(w, testState(w)); err != nil {
			t.Fatal(err)
		}
	}
	wins, err := c.windows()
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 2 || wins[0] != 3 || wins[1] != 4 {
		t.Fatalf("windows after prune = %v, want [3 4]", wins)
	}
}

func TestCheckpointCorruptFallsBack(t *testing.T) {
	s, c := openCkpt(t)
	if err := c.Save(1, testState(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(2, testState(2)); err != nil {
		t.Fatal(err)
	}
	// Tear the newest snapshot: flip payload bytes behind the header.
	path := c.winPath(2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got ckptState
	w, ok, err := c.Latest(&got)
	if err != nil || !ok || w != 1 {
		t.Fatalf("Latest = (%d, %v, %v), want fallback to window 1", w, ok, err)
	}
	if got.Window != 1 {
		t.Fatalf("snapshot window = %d, want 1", got.Window)
	}
	// The torn file is quarantined, not left to poison the next run.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("torn checkpoint still present: %v", err)
	}
	q, err := filepath.Glob(filepath.Join(s.Dir(), "quarantine", "*.ckpt"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine glob = %v, %v; want one file", q, err)
	}
}

func TestCheckpointClear(t *testing.T) {
	_, c := openCkpt(t)
	if err := c.Save(0, testState(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Clear(); err != nil {
		t.Fatal(err)
	}
	var got ckptState
	if _, ok, err := c.Latest(&got); err != nil || ok {
		t.Fatalf("Latest after Clear = ok=%v err=%v, want miss", ok, err)
	}
}

func TestCheckpointSaveFaultIsTransient(t *testing.T) {
	_, c := openCkpt(t)
	in := fault.New(1)
	if err := in.Set(fault.SiteCheckpoint, fault.Rule{Mode: fault.ModeErr, At: 1}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	t.Cleanup(func() { fault.Install(prev) })

	err := c.Save(0, testState(0))
	if err == nil {
		t.Fatal("Save under an armed fault succeeded")
	}
	// Second attempt (the retry) goes through.
	if err := c.Save(0, testState(0)); err != nil {
		t.Fatalf("retry Save: %v", err)
	}
}

func TestOpenQuarantinesCorruptStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("scan")
	if _, err := s.Put(k, testDoc("scan")); err != nil {
		t.Fatal(err)
	}
	// Tear the object and corrupt the index entry on disk.
	var objPath string
	filepath.Walk(filepath.Join(dir, "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(p, ".json") {
			objPath = p
		}
		return nil
	})
	if objPath == "" {
		t.Fatal("no object written")
	}
	if err := os.WriteFile(objPath, []byte(`{"torn":`), 0o644); err != nil {
		t.Fatal(err)
	}
	idxPath := filepath.Join(dir, "index", k.Scenario, k.Experiment+".json")
	if err := os.WriteFile(idxPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen: both corruptions move to quarantine with reasons.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open over corrupt store: %v", err)
	}
	if _, err := os.Stat(objPath); !os.IsNotExist(err) {
		t.Fatal("torn object survived the startup scan")
	}
	if _, err := os.Stat(idxPath); !os.IsNotExist(err) {
		t.Fatal("corrupt index entry survived the startup scan")
	}
	q, err := filepath.Glob(filepath.Join(dir, "quarantine", "*.json"))
	if err != nil || len(q) != 2 {
		t.Fatalf("quarantined files = %v, want 2", q)
	}
	for _, f := range q {
		if _, err := os.Stat(f + ".reason"); err != nil {
			t.Errorf("missing reason sidecar for %s", f)
		}
	}
	// The store now reads as a clean miss, not an error.
	if _, _, ok, err := s2.Get(k); err != nil || ok {
		t.Fatalf("Get after quarantine = ok=%v err=%v, want clean miss", ok, err)
	}
}

func TestWriteAtomicFaultSites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(1)
	if err := in.Set(fault.SiteStoreRename, fault.Rule{Mode: fault.ModeErr, At: 1}); err != nil {
		t.Fatal(err)
	}
	prev := fault.Active()
	fault.Install(in)
	t.Cleanup(func() { fault.Install(prev) })

	k := testKey("scan")
	if _, err := s.Put(k, testDoc("scan")); err == nil {
		t.Fatal("Put under an armed rename fault succeeded")
	}
	// The failed write left no temp litter and no partial object.
	var tmps []string
	filepath.Walk(s.Dir(), func(p string, info os.FileInfo, err error) error {
		if err == nil && strings.Contains(filepath.Base(p), ".tmp-") {
			tmps = append(tmps, p)
		}
		return nil
	})
	if len(tmps) != 0 {
		t.Fatalf("temp litter after failed write: %v", tmps)
	}
	// Retrying succeeds and the store is consistent.
	if _, err := s.Put(k, testDoc("scan")); err != nil {
		t.Fatalf("retry Put: %v", err)
	}
	if _, _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("Get after retried Put = ok=%v err=%v", ok, err)
	}
}
