// Package resultstore persists experiment report documents in a
// content-addressed on-disk store. Every document is stored once under
// the SHA-256 of its canonical JSON encoding; cache keys — the hash of
// everything that determines an experiment's output (scenario spec,
// seed, study parameters, experiment name, code version) — map onto
// those objects, and a per-scenario index lets the HTTP layer serve
// the latest artefact for a (scenario, experiment) pair.
//
// Layout under the store root:
//
//	objects/<aa>/<contenthash>.json   canonical JSON document, named by its own hash
//	keys/<aa>/<keyhash>.json          Entry: key fields -> content hash
//	index/<scenario>/<experiment>.json  same Entry, for serving lookups
//
// Writes go through a temp file (fsync'd, as is its directory) + atomic
// rename, so concurrent writers and readers (the serve mode) never
// observe torn objects — even across a power cut — and rewriting an
// identical entry is idempotent. Open scans the store and quarantines
// (rather than crashes on or silently skips) any torn or corrupt file
// it finds, moving it to quarantine/ with a reason sidecar.
//
// The write, rename, and read paths carry fault-plane sites
// (resultstore.write / resultstore.rename / resultstore.read), so the
// crash-kill harness can prove a study killed mid-publish resumes
// cleanly.
package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"torhs/internal/fault"
	"torhs/internal/report"
)

// Key identifies one experiment output: everything that determines the
// bytes, nothing that doesn't (worker count, output format).
type Key struct {
	// Experiment is the registry name ("scan", "tracking", …).
	Experiment string `json:"experiment"`
	// Scenario is the preset name the run was configured from (also the
	// serving index bucket).
	//
	//torhs:nocachekey a serving-index label, not an input: the same parameters spelled via a preset or via explicit flags must hit the same cache entry
	Scenario string `json:"scenario"`
	// Params is the canonical study-parameter string
	// (experiments.Config.CacheKey: seed, scale, clients, …).
	Params string `json:"params"`
	// CodeVersion invalidates cached artefacts when the pipeline's
	// output-affecting code changes (experiments.OutputVersion).
	CodeVersion string `json:"codeVersion"`
}

// CacheKey returns the key's cache address: SHA-256 over the fields
// that determine output bytes — experiment, params, code version.
// Scenario is excluded via its //torhs:nocachekey directive, which the
// cachekey analyzer audits: adding a Key field without consuming it
// here (or exempting it) fails torhsvet.
func (k Key) CacheKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "experiment=%s\nparams=%s\ncode=%s\n",
		k.Experiment, k.Params, k.CodeVersion)
	return hex.EncodeToString(h.Sum(nil))
}

// Validate rejects keys that cannot be addressed or indexed.
func (k Key) Validate() error {
	switch {
	case k.Experiment == "" || !pathSafe(k.Experiment):
		return fmt.Errorf("resultstore: invalid experiment %q", k.Experiment)
	case k.Scenario == "" || !pathSafe(k.Scenario):
		return fmt.Errorf("resultstore: invalid scenario %q", k.Scenario)
	}
	return nil
}

// pathSafe reports whether s can be a single path element of the index
// layout (and an URL path segment of the serving layer).
func pathSafe(s string) bool {
	if s == "." || s == ".." {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Entry records one stored artefact: the full key, its hash, and the
// content hash of the document object it maps to.
type Entry struct {
	Key         Key    `json:"key"`
	KeyHash     string `json:"keyHash"`
	ContentHash string `json:"contentHash"`
}

// Store is a content-addressed result store rooted at a directory.
// Method receivers are safe for concurrent use; cross-process safety
// comes from atomic rename writes.
type Store struct {
	dir string
}

// Open creates (if necessary) and opens a store rooted at dir, then
// scans it for torn or corrupt files: a truncated object, a bit-flipped
// hash, or an unparseable entry is moved into quarantine/ (with a
// .reason sidecar and a logged reason) instead of poisoning later reads,
// and stale temp files from crashed writers are deleted.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty store directory")
	}
	for _, sub := range []string{"objects", "keys", "index"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	s := &Store{dir: dir}
	if err := s.scanAndQuarantine(); err != nil {
		return nil, err
	}
	return s, nil
}

// tmpMaxAge is how old a .tmp-* file must be before the startup scan
// deletes it; younger files may belong to a concurrent live writer.
const tmpMaxAge = 10 * time.Minute

// scanAndQuarantine verifies every object against its content hash and
// every key/index entry against its schema, quarantining what fails.
func (s *Store) scanAndQuarantine() error {
	for _, base := range []string{"objects", "keys", "index"} {
		root := filepath.Join(s.dir, base)
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			name := d.Name()
			if strings.HasPrefix(name, ".tmp-") {
				if info, err := d.Info(); err == nil && time.Since(info.ModTime()) > tmpMaxAge {
					os.Remove(path)
				}
				return nil
			}
			if !strings.HasSuffix(name, ".json") {
				return s.quarantine(path, "unexpected file in "+base+"/")
			}
			if base == "objects" {
				data, err := os.ReadFile(path)
				if err != nil {
					return err
				}
				sum := sha256.Sum256(data)
				if got := hex.EncodeToString(sum[:]); got != strings.TrimSuffix(name, ".json") {
					return s.quarantine(path, fmt.Sprintf("content hash mismatch: file hashes to %s", got))
				}
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			var e Entry
			if err := json.Unmarshal(data, &e); err != nil {
				return s.quarantine(path, fmt.Sprintf("unparseable entry: %v", err))
			}
			if e.ContentHash == "" || !pathSafe(e.ContentHash) {
				return s.quarantine(path, fmt.Sprintf("entry has invalid content hash %q", e.ContentHash))
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("resultstore: scanning %s: %w", base, err)
		}
	}
	return nil
}

// quarantine moves the file at path into quarantine/ alongside a
// .reason sidecar recording why, and logs the action. The original
// path disappears, so subsequent reads see a clean miss instead of the
// corruption.
func (s *Store) quarantine(path, reason string) error {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	dst := filepath.Join(qdir, filepath.Base(path))
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%d-%s", i, filepath.Base(path)))
	}
	if err := os.Rename(path, dst); err != nil {
		return err
	}
	os.WriteFile(dst+".reason", []byte(reason+"\n"), 0o644)
	log.Printf("resultstore: quarantined %s -> %s: %s", path, dst, reason)
	return nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// shardPath splits a hash into <aa>/<hash>.json under base.
func (s *Store) shardPath(base, hash string) string {
	return filepath.Join(s.dir, base, hash[:2], hash+".json")
}

func (s *Store) indexPath(scenario, experiment string) string {
	return filepath.Join(s.dir, "index", scenario, experiment+".json")
}

// writeAtomic writes data via a temp file + rename so readers never see
// partial content, fsyncing the temp file before the rename and the
// directory after it so the publish survives a power cut: without the
// file sync a crash can leave a correctly-named file with torn content,
// and without the directory sync the rename itself can be lost.
func writeAtomic(path string, data []byte) error {
	if err := fault.Hit(fault.SiteStoreWrite); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp makes the file 0600; the store is world-readable data
	// (a different user may run the serve side), so match the 0755
	// directories.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := fault.Hit(fault.SiteStoreRename); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return serr
		}
	}
	return nil
}

// Put stores the document under its content hash and binds the key (and
// the scenario/experiment index slot) to it. Re-putting an identical
// document is idempotent; a changed document under the same key (a new
// code version should prevent this, but hand-edited stores happen)
// simply rebinds the key.
func (s *Store) Put(k Key, doc *report.Document) (contentHash string, err error) {
	if err := k.Validate(); err != nil {
		return "", err
	}
	canon, err := report.CanonicalJSON(doc)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	contentHash = hex.EncodeToString(sum[:])
	// The object's name is the hash of its bytes, so an existing file
	// is identical by construction — skip the rewrite on warm stores.
	objPath := s.shardPath("objects", contentHash)
	if _, statErr := os.Stat(objPath); statErr != nil {
		if err := writeAtomic(objPath, canon); err != nil {
			return "", fmt.Errorf("resultstore: write object: %w", err)
		}
	}
	if err := s.Bind(k, contentHash); err != nil {
		return "", err
	}
	return contentHash, nil
}

// Bind maps the key — and its scenario/experiment serving-index slot —
// to an already-stored object without rewriting the object itself. The
// cache layer uses it on hits so that a run served entirely from cache
// under a new scenario label still becomes servable under that label.
// Binding an already-bound slot is a read-only no-op, so fully-cached
// runs work against read-only stores (e.g. a directory owned by the
// serve-side user).
func (s *Store) Bind(k Key, contentHash string) error {
	if err := k.Validate(); err != nil {
		return err
	}
	entry := Entry{Key: k, KeyHash: k.CacheKey(), ContentHash: contentHash}
	keyBound := entryMatches(s.shardPath("keys", entry.KeyHash), contentHash)
	indexBound := entryMatches(s.indexPath(k.Scenario, k.Experiment), contentHash)
	if keyBound && indexBound {
		return nil
	}
	data, err := json.MarshalIndent(entry, "", "  ")
	if err != nil {
		return err
	}
	if !keyBound {
		if err := writeAtomic(s.shardPath("keys", entry.KeyHash), data); err != nil {
			return fmt.Errorf("resultstore: write key: %w", err)
		}
	}
	if !indexBound {
		if err := writeAtomic(s.indexPath(k.Scenario, k.Experiment), data); err != nil {
			return fmt.Errorf("resultstore: write index: %w", err)
		}
	}
	return nil
}

// entryMatches reports whether the entry file at path already points at
// contentHash (a missing or corrupt entry reads as unbound, so Bind
// repairs it by rewriting).
func entryMatches(path, contentHash string) bool {
	e, err := readEntry(path)
	return err == nil && e != nil && e.ContentHash == contentHash
}

// Get returns the document cached under the key, if present. ok is
// false (with a nil error) on a clean miss — including a dangling key
// whose object was pruned.
func (s *Store) Get(k Key) (doc *report.Document, contentHash string, ok bool, err error) {
	if err := k.Validate(); err != nil {
		return nil, "", false, err
	}
	entry, err := readEntry(s.shardPath("keys", k.CacheKey()))
	if err != nil {
		return nil, "", false, err
	}
	if entry == nil || entry.ContentHash == "" {
		return nil, "", false, nil
	}
	doc, err = s.loadObject(entry.ContentHash)
	if err != nil {
		return nil, "", false, err
	}
	if doc == nil {
		return nil, "", false, nil
	}
	return doc, entry.ContentHash, true, nil
}

// Lookup returns the serving-index entry for a (scenario, experiment)
// pair, or nil on a miss.
func (s *Store) Lookup(scenario, experiment string) (*Entry, error) {
	if !pathSafe(scenario) || !pathSafe(experiment) || scenario == "" || experiment == "" {
		return nil, fmt.Errorf("resultstore: invalid lookup %q/%q", scenario, experiment)
	}
	return readEntry(s.indexPath(scenario, experiment))
}

func readEntry(path string) (*Entry, error) {
	if err := fault.Hit(fault.SiteStoreRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("resultstore: corrupt entry %s: %w", path, err)
	}
	return &e, nil
}

// ObjectBytes returns the canonical JSON bytes of a stored document, or
// nil on a miss.
func (s *Store) ObjectBytes(contentHash string) ([]byte, error) {
	if !pathSafe(contentHash) || len(contentHash) < 3 {
		return nil, fmt.Errorf("resultstore: invalid content hash %q", contentHash)
	}
	if err := fault.Hit(fault.SiteStoreRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(s.shardPath("objects", contentHash))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	return data, nil
}

// loadObject decodes a stored document, nil on a miss.
func (s *Store) loadObject(contentHash string) (*report.Document, error) {
	data, err := s.ObjectBytes(contentHash)
	if err != nil || data == nil {
		return nil, err
	}
	return report.DecodeJSON(bytes.NewReader(data))
}

// Document loads the document an index entry points at.
func (s *Store) Document(e *Entry) (*report.Document, error) {
	doc, err := s.loadObject(e.ContentHash)
	if err != nil {
		return nil, err
	}
	if doc == nil {
		return nil, fmt.Errorf("resultstore: index entry %s/%s points at missing object %s",
			e.Key.Scenario, e.Key.Experiment, e.ContentHash)
	}
	return doc, nil
}

// List walks the serving index and returns every entry, sorted by
// scenario then experiment for stable output. A corrupt entry file is
// skipped rather than failing the whole listing — one bad slot must not
// take down the server's startup or its /experiments index (requests
// for the bad slot itself still surface the corruption as an error).
func (s *Store) List() ([]Entry, error) {
	root := filepath.Join(s.dir, "index")
	var out []Entry
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		e, err := readEntry(path)
		if err != nil {
			return nil
		}
		if e != nil {
			out = append(out, *e)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Scenario != out[j].Key.Scenario {
			return out[i].Key.Scenario < out[j].Key.Scenario
		}
		return out[i].Key.Experiment < out[j].Key.Experiment
	})
	return out, nil
}
