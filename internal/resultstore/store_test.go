package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"torhs/internal/report"
)

func testDoc(title string) *report.Document {
	sec := report.NewSection("s", "Section "+title).
		KVLine("count: %d", "count", report.Int(42))
	return report.New(title, sec)
}

func testKey(experiment string) Key {
	return Key{
		Experiment:  experiment,
		Scenario:    "smoke",
		Params:      "seed=7 scale=0.02",
		CodeVersion: "test-1",
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	doc := testDoc("scan")
	k := testKey("scan")

	if _, _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("Get on empty store = ok=%v err=%v, want clean miss", ok, err)
	}
	hash, err := s.Put(k, doc)
	if err != nil {
		t.Fatal(err)
	}
	// The object is addressed by the hash of its canonical encoding.
	canon, err := report.CanonicalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(canon)
	if want := hex.EncodeToString(sum[:]); hash != want {
		t.Fatalf("content hash %s, want sha256 of canonical JSON %s", hash, want)
	}

	back, gotHash, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if gotHash != hash {
		t.Fatalf("Get hash %s != Put hash %s", gotHash, hash)
	}
	if !reflect.DeepEqual(doc, back) {
		t.Fatalf("document did not round-trip through the store:\n%#v\nvs\n%#v", doc, back)
	}

	// Idempotent re-put.
	again, err := s.Put(k, doc)
	if err != nil || again != hash {
		t.Fatalf("re-Put = (%s, %v), want same hash", again, err)
	}
}

func TestKeyHashCoversOutputDeterminants(t *testing.T) {
	base := testKey("scan")
	seen := map[string]string{"base": base.CacheKey()}
	for name, k := range map[string]Key{
		"experiment": {Experiment: "scan2", Scenario: base.Scenario, Params: base.Params, CodeVersion: base.CodeVersion},
		"params":     {Experiment: base.Experiment, Scenario: base.Scenario, Params: "seed=8", CodeVersion: base.CodeVersion},
		"code":       {Experiment: base.Experiment, Scenario: base.Scenario, Params: base.Params, CodeVersion: "test-2"},
	} {
		h := k.CacheKey()
		for prior, ph := range seen {
			if h == ph {
				t.Errorf("changing %s collides with %s", name, prior)
			}
		}
		seen[name] = h
	}
	// The scenario label does NOT affect the cache address: the same
	// parameters spelled via a preset or explicit flags must share one
	// entry (it still buckets the serving index).
	relabelled := base
	relabelled.Scenario = "custom"
	if relabelled.CacheKey() != base.CacheKey() {
		t.Error("scenario label changed the cache hash; identical runs would spuriously miss")
	}
}

func TestLookupAndList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, exp := range []string{"scan", "content"} {
		if _, err := s.Put(testKey(exp), testDoc(exp)); err != nil {
			t.Fatal(err)
		}
	}
	other := testKey("scan")
	other.Scenario = "laptop"
	if _, err := s.Put(other, testDoc("scan-laptop")); err != nil {
		t.Fatal(err)
	}

	e, err := s.Lookup("smoke", "scan")
	if err != nil || e == nil {
		t.Fatalf("Lookup = (%v, %v)", e, err)
	}
	doc, err := s.Document(e)
	if err != nil || doc.Title != "scan" {
		t.Fatalf("Document = (%v, %v), want title scan", doc, err)
	}
	if miss, err := s.Lookup("smoke", "absent"); err != nil || miss != nil {
		t.Fatalf("Lookup miss = (%v, %v), want (nil, nil)", miss, err)
	}

	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		got = append(got, e.Key.Scenario+"/"+e.Key.Experiment)
	}
	want := []string{"laptop/scan", "smoke/content", "smoke/scan"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List = %v, want %v (sorted)", got, want)
	}
}

func TestNewerPutRebindsIndex(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1 := testKey("scan")
	if _, err := s.Put(k1, testDoc("old")); err != nil {
		t.Fatal(err)
	}
	k2 := k1
	k2.CodeVersion = "test-2"
	newHash, err := s.Put(k2, testDoc("new"))
	if err != nil {
		t.Fatal(err)
	}
	// Both keys still resolve; the serving index points at the latest.
	if _, _, ok, _ := s.Get(k1); !ok {
		t.Fatal("old key lost after rebind")
	}
	e, err := s.Lookup("smoke", "scan")
	if err != nil || e == nil || e.ContentHash != newHash {
		t.Fatalf("index entry = %+v, want content %s", e, newHash)
	}
}

// TestListSkipsCorruptEntries: one bad index file must not fail the
// whole listing (or the server startup that calls it).
func TestListSkipsCorruptEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testKey("scan"), testDoc("scan")); err != nil {
		t.Fatal(err)
	}
	if err := writeAtomic(s.indexPath("smoke", "broken"), []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatalf("List failed on a corrupt sibling entry: %v", err)
	}
	if len(entries) != 1 || entries[0].Key.Experiment != "scan" {
		t.Fatalf("List = %v, want just the intact scan entry", entries)
	}
}

// TestBindIsReadOnlyWhenAlreadyBound: re-binding a slot that already
// points at the same content must write nothing, so fully-cached runs
// succeed against read-only stores.
func TestBindIsReadOnlyWhenAlreadyBound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("scan")
	hash, err := s.Put(k, testDoc("scan"))
	if err != nil {
		t.Fatal(err)
	}
	idx := s.indexPath(k.Scenario, k.Experiment)
	before, err := os.Stat(idx)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := s.Bind(k, hash); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Fatal("Bind rewrote an already-bound index entry")
	}
	// A different label still binds (that is Bind's whole purpose).
	other := k
	other.Scenario = "laptop"
	if err := s.Bind(other, hash); err != nil {
		t.Fatal(err)
	}
	if e, err := s.Lookup("laptop", "scan"); err != nil || e == nil || e.ContentHash != hash {
		t.Fatalf("Bind under a new label = %+v, %v", e, err)
	}
}

// TestStoreFilesWorldReadable: the producer (hsstudy -out) and the
// server (hsserve) may run as different users; every stored file must
// be readable beyond its owner, matching the 0755 directories.
func TestStoreFilesWorldReadable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testKey("scan"), testDoc("scan")); err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Mode().Perm()&0o044 != 0o044 {
			t.Errorf("%s mode %v not group/world readable", path, info.Mode().Perm())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{
		{Experiment: "", Scenario: "smoke"},
		{Experiment: "scan", Scenario: ""},
		{Experiment: "../scan", Scenario: "smoke"},
		{Experiment: "scan", Scenario: "a/b"},
		{Experiment: "sc an", Scenario: "smoke"},
	} {
		if _, err := s.Put(k, testDoc("x")); err == nil {
			t.Errorf("Put(%+v) accepted", k)
		}
		if _, _, _, err := s.Get(k); err == nil {
			t.Errorf("Get(%+v) accepted", k)
		}
	}
	if _, err := s.Lookup("..", "scan"); err == nil {
		t.Error("Lookup with traversal scenario accepted")
	}
	if _, err := s.ObjectBytes("../../etc/passwd"); err == nil {
		t.Error("ObjectBytes with traversal accepted")
	}
}
