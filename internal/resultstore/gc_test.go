package resultstore

import (
	"testing"
)

func TestGCRemovesOrphansKeepsReachable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Live object under its own key.
	ka := testKey("alpha")
	if _, err := s.Put(ka, testDoc("alpha")); err != nil {
		t.Fatal(err)
	}
	// Rebinding a key to new content orphans the first object — the
	// code-version-bump shape GC exists for.
	kb := testKey("beta")
	if _, err := s.Put(kb, testDoc("beta-v1")); err != nil {
		t.Fatal(err)
	}
	hb2, err := s.Put(kb, testDoc("beta-v2"))
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 3 || st.Reachable != 2 || st.Removed != 1 {
		t.Fatalf("GC stats = %+v, want 3 objects / 2 reachable / 1 removed", st)
	}
	if st.BytesFreed <= 0 {
		t.Fatalf("GC freed %d bytes, want > 0", st.BytesFreed)
	}

	// Both live bindings still resolve.
	if _, _, ok, err := s.Get(ka); err != nil || !ok {
		t.Fatalf("alpha unreadable after GC (ok=%v err=%v)", ok, err)
	}
	doc, hash, ok, err := s.Get(kb)
	if err != nil || !ok || hash != hb2 {
		t.Fatalf("beta after GC = ok=%v hash=%s err=%v, want %s", ok, hash, err, hb2)
	}
	if doc.Title != "beta-v2" {
		t.Fatalf("beta resolved to %q after GC", doc.Title)
	}

	// A second pass is a no-op: the store is already clean.
	st2, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Objects != 2 || st2.Removed != 0 {
		t.Fatalf("second GC stats = %+v, want 2 objects / 0 removed", st2)
	}
}

func TestGCSparesCheckpointsAndIntermediates(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("gamma")
	if _, err := s.Put(k, testDoc("gamma")); err != nil {
		t.Fatal(err)
	}
	ints, err := s.Intermediates(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := ints.Put("harvest", testArtefact()); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoints(k)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Save(3, testArtefact()); err != nil {
		t.Fatal(err)
	}

	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}

	var art intArtefact
	if ok, err := ints.Get("harvest", &art); err != nil || !ok {
		t.Fatalf("GC swept an intermediate artefact (ok=%v err=%v)", ok, err)
	}
	if w, ok, err := ck.Latest(&art); err != nil || !ok || w != 3 {
		t.Fatalf("GC swept a checkpoint (w=%d ok=%v err=%v)", w, ok, err)
	}
}
