package resultstore

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"torhs/internal/report"
)

// newTestServer stores one document and returns a live HTTP server
// over it.
func newTestServer(t *testing.T) (*httptest.Server, *Store) {
	t.Helper()
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(testKey("scan"), testDoc("scan")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store).Handler())
	t.Cleanup(ts.Close)
	return ts, store
}

func get(t *testing.T, url string, header map[string]string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
}

func TestExperimentsIndex(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := get(t, ts.URL+"/experiments", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments = %d", resp.StatusCode)
	}
	var rows []map[string]string
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("experiments not JSON: %v\n%s", err, body)
	}
	if len(rows) != 1 || rows[0]["experiment"] != "scan" || rows[0]["report"] != "/report/smoke/scan" {
		t.Fatalf("experiments rows = %v", rows)
	}
}

func TestReportFormatsAndETag(t *testing.T) {
	ts, store := newTestServer(t)

	// Text format equals the document's local text encoding exactly.
	resp, body := get(t, ts.URL+"/report/smoke/scan", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report = %d", resp.StatusCode)
	}
	entry, err := store.Lookup("smoke", "scan")
	if err != nil || entry == nil {
		t.Fatal("store entry lost")
	}
	doc, err := store.Document(entry)
	if err != nil {
		t.Fatal(err)
	}
	if want := report.TextString(doc); body != want {
		t.Fatalf("served text differs from local encoding:\n--- http ---\n%q\n--- local ---\n%q", body, want)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.Contains(etag, entry.ContentHash[:32]) {
		t.Fatalf("ETag %q not derived from content hash %s", etag, entry.ContentHash)
	}

	// Conditional revalidation: matching If-None-Match gets 304.
	resp304, _ := get(t, ts.URL+"/report/smoke/scan", map[string]string{"If-None-Match": etag})
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match = %d, want 304", resp304.StatusCode)
	}

	// Every format serves with a distinct ETag and the right type.
	tags := map[string]bool{}
	for _, f := range report.Formats() {
		resp, body := get(t, ts.URL+"/report/smoke/scan?format="+f, nil)
		if resp.StatusCode != http.StatusOK || body == "" {
			t.Fatalf("format %s = %d %q", f, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != report.ContentType(f) {
			t.Errorf("format %s content type %q, want %q", f, ct, report.ContentType(f))
		}
		tag := resp.Header.Get("ETag")
		if tags[tag] {
			t.Errorf("format %s reuses ETag %q", f, tag)
		}
		tags[tag] = true
	}
}

func TestReportErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for path, want := range map[string]int{
		"/report/smoke/absent":          http.StatusNotFound,
		"/report/nope/scan":             http.StatusNotFound,
		"/report/smoke/scan?format=xml": http.StatusBadRequest,
		// The mux cleans traversal segments before routing, so this can
		// never reach the handler (and Lookup validates path elements
		// besides — see TestInvalidKeysRejected).
		"/report/../smoke/scan": http.StatusNotFound,
	} {
		resp, _ := get(t, ts.URL+path, nil)
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestETagMatches(t *testing.T) {
	const tag = `"abc-text"`
	for header, want := range map[string]bool{
		``:                         false,
		`"abc-text"`:               true,
		`W/"abc-text"`:             true,
		`*`:                        true,
		`"zzz-text", "abc-text"`:   true,
		`"zzz-text",W/"abc-text"`:  true,
		`"zzz-text", "other-text"`: false,
		`"abc-json"`:               false,
	} {
		if got := etagMatches(header, tag); got != want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", header, tag, got, want)
		}
	}
}

// TestCorruptIndexEntryIs503: a hand-edited or truncated index entry
// (short content hash) degrades gracefully — 503 with Retry-After, the
// entry quarantined — and the very next request is an honest 404.
func TestCorruptIndexEntryIs503(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bad := Entry{Key: testKey("scan"), KeyHash: "x", ContentHash: "short"}
	data, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAtomic(store.indexPath("smoke", "scan"), data); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store).Handler())
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/report/smoke/scan", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("corrupt entry = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	resp, _ = get(t, ts.URL+"/report/smoke/scan", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after eviction = %d, want 404", resp.StatusCode)
	}
}

// TestMissingObjectIs503AndEvicts: a pruned object behind a live index
// entry yields 503 + Retry-After, quarantines the entry, and then 404s.
func TestMissingObjectIs503AndEvicts(t *testing.T) {
	ts, store := newTestServer(t)
	entry, err := store.Lookup("smoke", "scan")
	if err != nil || entry == nil {
		t.Fatalf("lookup: %v %v", entry, err)
	}
	if err := os.Remove(store.shardPath("objects", entry.ContentHash)); err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts.URL+"/report/smoke/scan", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("missing object = %d (Retry-After %q) %q, want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"), body)
	}
	if _, err := os.Stat(store.indexPath("smoke", "scan")); !os.IsNotExist(err) {
		t.Fatal("bad index entry was not evicted")
	}
	q, err := filepath.Glob(filepath.Join(store.Dir(), "quarantine", "*.json"))
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine glob = %v, %v; want the evicted entry", q, err)
	}
	resp, _ = get(t, ts.URL+"/report/smoke/scan", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after eviction = %d, want 404", resp.StatusCode)
	}
}

// TestReadyz: readiness tracks store readability, liveness does not.
func TestReadyz(t *testing.T) {
	ts, store := newTestServer(t)
	resp, body := get(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz = %d %q", resp.StatusCode, body)
	}

	// Make the index unwalkable — the moral equivalent of a store mount
	// disappearing under a live server.
	if err := os.RemoveAll(filepath.Join(store.Dir(), "index")); err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, ts.URL+"/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz over broken index = %d, want 503", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz must stay live: %d %q", resp.StatusCode, body)
	}
}

// TestConcurrentCachedReads hammers one report from many goroutines:
// every response must be byte-identical with the same ETag (the
// immutable encode cache behind a RWMutex). Run under -race this pins
// the cache's thread safety.
func TestConcurrentCachedReads(t *testing.T) {
	ts, _ := newTestServer(t)
	first, want := get(t, ts.URL+"/report/smoke/scan?format=json", nil)
	wantTag := first.Header.Get("ETag")

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, ts.URL+"/report/smoke/scan?format=json", nil)
			if body != want || resp.Header.Get("ETag") != wantTag {
				errs <- "concurrent read diverged"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
