package resultstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"torhs/internal/report"
)

// Server serves encoded report documents from a store over HTTP — the
// first slice of the serving story: results are computed once by the
// study pipeline, persisted content-addressed, and read here by any
// number of concurrent clients with ETag-based caching.
//
// Routes:
//
//	GET /healthz                                   liveness probe
//	GET /readyz                                    readiness probe (store readable)
//	GET /experiments                               JSON index of stored artefacts
//	GET /report/{scenario}/{experiment}?format=F   encoded document (text|json|md|csv)
type Server struct {
	store *Store

	// encoded caches rendered bytes per (contentHash, format): documents
	// are immutable once content-addressed, so entries never go stale
	// and concurrent readers share one encode. The cache is bounded (see
	// maxEncodedEntries): when a repopulated store rebinds index slots
	// to new content hashes, superseded encodings must not accumulate
	// for the process lifetime.
	mu      sync.RWMutex
	encoded map[string][]byte

	// listing caches the /experiments body briefly: the index walk
	// reads and parses every entry file, which must not run once per
	// poll on the serving path. listingTTL bounds staleness — a fresh
	// hsstudy -out shows up within that window.
	listingMu      sync.Mutex
	listingBody    []byte
	listingExpires time.Time

	// entries caches index lookups per scenario/experiment for the same
	// TTL, so hot /report paths (including 304 revalidations, which
	// send no body at all) skip the per-request ReadFile+Unmarshal.
	entriesMu sync.Mutex
	entries   map[string]cachedEntry
}

type cachedEntry struct {
	entry   *Entry // nil: a cached miss (404)
	expires time.Time
}

// listingTTL is how long an /experiments response — and a cached index
// entry — may be served from memory before re-reading the store.
const listingTTL = 2 * time.Second

// maxEncodedEntries bounds the encode cache. When exceeded the cache is
// reset wholesale: entries are immutable and cheap to recompute, so a
// rare full re-encode beats per-entry bookkeeping.
const maxEncodedEntries = 512

// NewServer wraps a store in an HTTP server.
func NewServer(store *Store) *Server {
	return &Server{
		store:   store,
		encoded: make(map[string][]byte),
		entries: make(map[string]cachedEntry),
	}
}

// errDegraded classifies serving-path failures caused by a damaged
// store: a pruned or corrupt object behind a live index entry, or an
// index entry that does not parse as one. The report handler answers
// these with 503 + Retry-After rather than 500 — the store is expected
// to heal (the next study run re-publishes the slot) — and the bad
// entry is evicted so it cannot keep poisoning the path.
var errDegraded = errors.New("resultstore: store degraded")

// lookupEntry is Store.Lookup behind the TTL cache.
func (s *Server) lookupEntry(scenario, experiment string) (*Entry, error) {
	key := scenario + "/" + experiment
	s.entriesMu.Lock()
	ce, ok := s.entries[key]
	s.entriesMu.Unlock()
	if ok && time.Now().Before(ce.expires) {
		return ce.entry, nil
	}
	entry, err := s.store.Lookup(scenario, experiment)
	if err != nil {
		return nil, err
	}
	// Verify the entry's object actually exists before caching it:
	// otherwise a pruned objects/ file would keep answering 304 to
	// revalidating clients while cold reads fail — the corruption must
	// surface to everyone, once, and then get out of the way.
	if entry != nil {
		var reason string
		switch {
		case len(entry.ContentHash) < 32:
			reason = "corrupt index entry (short content hash)"
		default:
			if _, statErr := os.Stat(s.store.shardPath("objects", entry.ContentHash)); statErr != nil {
				reason = "index entry points at missing object " + entry.ContentHash
			}
		}
		if reason != "" {
			s.evictEntry(key, scenario, experiment, reason)
			return nil, fmt.Errorf("%w: %s for %s/%s", errDegraded, reason, scenario, experiment)
		}
	}
	s.entriesMu.Lock()
	if len(s.entries) >= maxEncodedEntries {
		s.entries = make(map[string]cachedEntry)
	}
	s.entries[key] = cachedEntry{entry: entry, expires: time.Now().Add(listingTTL)}
	s.entriesMu.Unlock()
	return entry, nil
}

// evictEntry removes a damaged index entry from the serving path: the
// on-disk entry moves to quarantine/ with the reason (the same
// treatment the startup scan gives corruption found at rest), and the
// TTL cache forgets the slot, so the very next request sees an honest
// 404 instead of a repeating 503.
func (s *Server) evictEntry(cacheKey, scenario, experiment, reason string) {
	_ = s.store.quarantine(s.store.indexPath(scenario, experiment), reason)
	s.entriesMu.Lock()
	delete(s.entries, cacheKey)
	s.entriesMu.Unlock()
}

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /experiments", s.handleExperiments)
	mux.HandleFunc("GET /report/{scenario}/{experiment}", s.handleReport)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe, distinct from liveness: the
// process may be up (healthz ok) while its store mount is gone or
// unreadable, and a load balancer must stop routing reports to it. A
// full index walk is the strongest cheap proof of readability — it
// touches every entry file the report routes depend on.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if _, err := s.store.List(); err != nil {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "store unreadable: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// experimentsEntry is one row of the /experiments listing.
type experimentsEntry struct {
	Scenario    string `json:"scenario"`
	Experiment  string `json:"experiment"`
	ContentHash string `json:"contentHash"`
	Params      string `json:"params"`
	CodeVersion string `json:"codeVersion"`
	Report      string `json:"report"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	body, err := s.listing()
	if err != nil {
		http.Error(w, "index walk failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// listing returns the /experiments body, re-walking the index at most
// once per listingTTL.
func (s *Server) listing() ([]byte, error) {
	s.listingMu.Lock()
	defer s.listingMu.Unlock()
	if s.listingBody != nil && time.Now().Before(s.listingExpires) {
		return s.listingBody, nil
	}
	entries, err := s.store.List()
	if err != nil {
		return nil, err
	}
	out := make([]experimentsEntry, 0, len(entries))
	for _, e := range entries {
		out = append(out, experimentsEntry{
			Scenario:    e.Key.Scenario,
			Experiment:  e.Key.Experiment,
			ContentHash: e.ContentHash,
			Params:      e.Key.Params,
			CodeVersion: e.Key.CodeVersion,
			Report:      "/report/" + e.Key.Scenario + "/" + e.Key.Experiment,
		})
	}
	body, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	s.listingBody = body
	s.listingExpires = time.Now().Add(listingTTL)
	return body, nil
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	scenario := r.PathValue("scenario")
	experiment := r.PathValue("experiment")
	format := r.URL.Query().Get("format")
	if format == "" {
		format = report.FormatText
	}
	if err := report.ValidFormat(format); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Malformed path segments are the client's fault; anything Lookup
	// reports after this point (I/O failures, corrupt entries) is ours.
	if scenario == "" || experiment == "" || !pathSafe(scenario) || !pathSafe(experiment) {
		http.Error(w, fmt.Sprintf("invalid report path %q/%q", scenario, experiment), http.StatusBadRequest)
		return
	}
	entry, err := s.lookupEntry(scenario, experiment)
	if err != nil {
		if errors.Is(err, errDegraded) {
			// The damaged entry was just evicted: a retry lands on a
			// clean 404, or on a re-published entry if a study run is
			// repairing the store.
			w.Header().Set("Retry-After", "5")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if entry == nil {
		http.Error(w, "no stored report for "+scenario+"/"+experiment, http.StatusNotFound)
		return
	}
	if len(entry.ContentHash) < 32 {
		// A hand-edited or corrupt index entry must not panic the
		// handler; report it as a server-side store problem.
		http.Error(w, "corrupt index entry for "+scenario+"/"+experiment, http.StatusInternalServerError)
		return
	}

	// The ETag is derived from the content hash: same document bytes,
	// same tag, across processes and restarts.
	etag := fmt.Sprintf("%q", entry.ContentHash[:32]+"-"+format)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	body, err := s.encodedBody(entry, format)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", report.ContentType(format))
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Content-Hash", entry.ContentHash)
	_, _ = w.Write(body)
}

// etagMatches implements RFC 7232 If-None-Match semantics against one
// entity tag: the header may be "*", a single tag, or a comma-separated
// list, each optionally weak (W/ prefix) — weak comparison is correct
// for 304s, and proxies coalesce validators into lists.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	target := strings.TrimPrefix(etag, "W/")
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if strings.TrimPrefix(cand, "W/") == target {
			return true
		}
	}
	return false
}

// encodedBody returns the document encoded in the format, serving
// repeated reads from the immutable per-content-hash cache.
func (s *Server) encodedBody(entry *Entry, format string) ([]byte, error) {
	cacheKey := entry.ContentHash + "/" + format
	s.mu.RLock()
	body, ok := s.encoded[cacheKey]
	s.mu.RUnlock()
	if ok {
		return body, nil
	}

	doc, err := s.store.Document(entry)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.Encode(&buf, doc, format); err != nil {
		return nil, err
	}
	body = buf.Bytes()

	s.mu.Lock()
	// A concurrent encode of the same immutable content may have won;
	// either copy is byte-identical, keep the first.
	if prior, ok := s.encoded[cacheKey]; ok {
		body = prior
	} else {
		if len(s.encoded) >= maxEncodedEntries {
			s.encoded = make(map[string][]byte)
		}
		s.encoded[cacheKey] = body
	}
	s.mu.Unlock()
	return body, nil
}
