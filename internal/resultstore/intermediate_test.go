package resultstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// intArtefact stands in for a pipeline intermediate (a harvest state).
type intArtefact struct {
	Name   string
	Counts map[string]int
	Ratio  float64
}

func testArtefact() *intArtefact {
	return &intArtefact{
		Name:   "harvest",
		Counts: map[string]int{"a": 3, "b": 7},
		Ratio:  0.104,
	}
}

func TestIntermediatePutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set, err := s.Intermediates(testKey("trawl"))
	if err != nil {
		t.Fatal(err)
	}
	var miss intArtefact
	if ok, err := set.Get("harvest", &miss); err != nil || ok {
		t.Fatalf("Get on empty set = ok=%v err=%v, want clean miss", ok, err)
	}
	want := testArtefact()
	if err := set.Put("harvest", want); err != nil {
		t.Fatal(err)
	}
	var got intArtefact
	if ok, err := set.Get("harvest", &got); err != nil || !ok {
		t.Fatalf("Get after Put = ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(want, &got) {
		t.Fatalf("artefact did not round-trip: %#v vs %#v", want, got)
	}

	// Put replaces atomically.
	want.Ratio = 0.5
	if err := set.Put("harvest", want); err != nil {
		t.Fatal(err)
	}
	var again intArtefact
	if ok, err := set.Get("harvest", &again); err != nil || !ok || again.Ratio != 0.5 {
		t.Fatalf("re-Put not visible: ok=%v err=%v ratio=%v", ok, err, again.Ratio)
	}

	// Clear empties the whole set.
	if err := set.Clear(); err != nil {
		t.Fatal(err)
	}
	if ok, err := set.Get("harvest", &got); err != nil || ok {
		t.Fatalf("Get after Clear = ok=%v err=%v, want miss", ok, err)
	}
}

func TestIntermediateStagesAreIndependent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set, err := s.Intermediates(testKey("trawl"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := testArtefact(), testArtefact()
	b.Name = "other"
	if err := set.Put("stage-a", a); err != nil {
		t.Fatal(err)
	}
	if err := set.Put("stage-b", b); err != nil {
		t.Fatal(err)
	}
	var got intArtefact
	if ok, _ := set.Get("stage-b", &got); !ok || got.Name != "other" {
		t.Fatalf("stage-b = %+v ok=%v", got, ok)
	}

	// Different cache keys see different sets.
	other, err := s.Intermediates(testKey("other-exp"))
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := other.Get("stage-a", &got); err != nil || ok {
		t.Fatalf("foreign key read a stage (ok=%v err=%v)", ok, err)
	}
}

func TestIntermediateCorruptReadsAsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set, err := s.Intermediates(testKey("trawl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Put("harvest", testArtefact()); err != nil {
		t.Fatal(err)
	}
	path := set.stagePath("harvest")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte: the integrity hash no longer matches.
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got intArtefact
	if ok, err := set.Get("harvest", &got); err != nil || ok {
		t.Fatalf("corrupt artefact Get = ok=%v err=%v, want quarantined miss", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt artefact still in place; want quarantined")
	}
	ents, err := os.ReadDir(filepath.Join(s.Dir(), "quarantine"))
	if err != nil || len(ents) == 0 {
		t.Fatalf("quarantine empty after corrupt read (err=%v)", err)
	}
}

func TestIntermediateStageValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	set, err := s.Intermediates(testKey("trawl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"", "a/b", ".."} {
		if err := set.Put(stage, testArtefact()); err == nil {
			t.Errorf("Put(%q) accepted an unsafe stage name", stage)
		}
		var got intArtefact
		if _, err := set.Get(stage, &got); err == nil {
			t.Errorf("Get(%q) accepted an unsafe stage name", stage)
		}
	}
}
