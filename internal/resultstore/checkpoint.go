package resultstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"torhs/internal/fault"
)

// Checkpoints extend the store's keying from final reports to
// intermediate per-window state: a CheckpointSet holds the snapshots of
// one (experiment, params, code-version) cache key, each file one
// window index, so a killed study folds forward from the latest valid
// snapshot instead of starting over.
//
// Layout under the store root:
//
//	checkpoints/<keyhash>/win-<n>.ckpt
//
// Each file is a one-line integrity header — the format magic and the
// SHA-256 of the payload — followed by the gob-encoded snapshot (gob,
// not JSON, because snapshots carry float64s that must round-trip
// bit-exactly, including non-finite values, and exact time.Time
// instants). Writes are atomic and fsync'd like every store write; a
// snapshot that fails its integrity check at read time is quarantined
// and the set falls back to the previous window. Save prunes all but
// the two newest windows, and a completed run Clears its set, so
// checkpoints never accumulate.

// ckptMagic versions the checkpoint file format.
const ckptMagic = "torhs-ckpt/1"

// CheckpointSet is the window-indexed snapshot series of one cache key.
type CheckpointSet struct {
	s   *Store
	dir string
}

// Checkpoints returns the checkpoint set for the key. The set's
// directory is created lazily on first Save; a key that never
// checkpoints costs nothing.
func (s *Store) Checkpoints(k Key) (*CheckpointSet, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	return &CheckpointSet{s: s, dir: filepath.Join(s.dir, "checkpoints", k.CacheKey())}, nil
}

func (c *CheckpointSet) winPath(window int) string {
	return filepath.Join(c.dir, fmt.Sprintf("win-%08d.ckpt", window))
}

// Save snapshots state as the checkpoint after window (0-based; the
// snapshot means "windows 0..window are folded in"), then prunes every
// snapshot older than the previous one.
func (c *CheckpointSet) Save(window int, state any) error {
	if window < 0 {
		return fmt.Errorf("resultstore: negative checkpoint window %d", window)
	}
	if err := fault.Hit(fault.SiteCheckpoint); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return fmt.Errorf("resultstore: encode checkpoint: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	data := make([]byte, 0, len(ckptMagic)+2+2*len(sum)+buf.Len())
	data = append(data, ckptMagic...)
	data = append(data, ' ')
	data = append(data, hex.EncodeToString(sum[:])...)
	data = append(data, '\n')
	data = append(data, buf.Bytes()...)
	if err := writeAtomic(c.winPath(window), data); err != nil {
		return fmt.Errorf("resultstore: write checkpoint %d: %w", window, err)
	}
	c.prune()
	return nil
}

// Latest finds the newest valid snapshot, decodes it into state (pass a
// zero value), and returns its window index. ok is false when no valid
// snapshot exists. Corrupt snapshots are quarantined and the set falls
// back to the next older one.
func (c *CheckpointSet) Latest(state any) (window int, ok bool, err error) {
	wins, err := c.windows()
	if err != nil {
		return 0, false, err
	}
	for i := len(wins) - 1; i >= 0; i-- {
		w := wins[i]
		if err := c.load(w, state); err != nil {
			if qerr := c.s.quarantine(c.winPath(w), fmt.Sprintf("invalid checkpoint: %v", err)); qerr != nil {
				return 0, false, qerr
			}
			continue
		}
		return w, true, nil
	}
	return 0, false, nil
}

// load reads and verifies one snapshot: header magic, payload hash,
// then the gob decode.
func (c *CheckpointSet) load(window int, state any) error {
	if err := fault.Hit(fault.SiteStoreRead); err != nil {
		return err
	}
	data, err := os.ReadFile(c.winPath(window))
	if err != nil {
		return err
	}
	header, payload, found := bytes.Cut(data, []byte{'\n'})
	if !found {
		return fmt.Errorf("missing header")
	}
	magic, wantHex, found := strings.Cut(string(header), " ")
	if !found || magic != ckptMagic {
		return fmt.Errorf("bad magic %q", magic)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantHex {
		return fmt.Errorf("payload hash mismatch (torn write?)")
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(state); err != nil {
		return fmt.Errorf("decode: %v", err)
	}
	return nil
}

// Clear removes the whole set — called after the run completes, so
// finished studies leave no checkpoint orphans behind.
func (c *CheckpointSet) Clear() error {
	return os.RemoveAll(c.dir)
}

// prune keeps only the two newest snapshots: the latest to resume from
// and its predecessor as the fallback if the latest turns out torn.
func (c *CheckpointSet) prune() {
	wins, err := c.windows()
	if err != nil {
		return
	}
	for i := 0; i+2 < len(wins); i++ {
		os.Remove(c.winPath(wins[i]))
	}
}

// windows lists the stored window indexes, ascending. Files that do not
// match the naming scheme (including writer temp files) are ignored.
func (c *CheckpointSet) windows() ([]int, error) {
	ents, err := os.ReadDir(c.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var wins []int
	for _, e := range ents {
		num, ok := strings.CutPrefix(e.Name(), "win-")
		if !ok {
			continue
		}
		num, ok = strings.CutSuffix(num, ".ckpt")
		if !ok {
			continue
		}
		w, err := strconv.Atoi(num)
		if err != nil || w < 0 {
			continue
		}
		wins = append(wins, w)
	}
	sort.Ints(wins)
	return wins, nil
}
