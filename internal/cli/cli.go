// Package cli holds the entry-point scaffold every command shares:
// run-function wrapping (exit codes, error prefixes) and flag parsing
// with the usage-error convention. Commands define
//
//	func run(args []string, w io.Writer) error
//
// (testable: args and output are injected) and a one-line main:
//
//	func main() { cli.Main("name", run) }
package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
)

// ErrUsage marks a flag-parse failure the FlagSet has already reported
// to stderr; Main exits 1 without printing it again.
var ErrUsage = errors.New("usage")

// ExitError carries an explicit process exit code through the run
// function. Main unwraps it: a wrapped error still prints with the
// command-name prefix, then the process exits with Code instead of 1.
// The interrupt convention (SIGINT cancels the run) uses 130, the
// shell's 128+SIGINT.
type ExitError struct {
	Code int
	Err  error
}

func (e *ExitError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("exit %d", e.Code)
	}
	return e.Err.Error()
}

func (e *ExitError) Unwrap() error { return e.Err }

// Main runs run(os.Args[1:], os.Stdout), prefixing errors with the
// command name. Usage errors stay silent (the FlagSet printed the
// diagnostics during Parse) and exit 2, matching flag.ExitOnError's
// convention so wrapper scripts can tell bad invocations from runtime
// failures, which exit 1.
func Main(name string, run func(args []string, w io.Writer) error) {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, ErrUsage) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, name+":", err)
		var xe *ExitError
		if errors.As(err, &xe) {
			os.Exit(xe.Code)
		}
		os.Exit(1)
	}
}

// Parse parses args with fs under the shared convention: -h/-help is
// success (stop with a nil error), any other parse failure is ErrUsage.
// Callers return immediately when stop is true:
//
//	if stop, err := cli.Parse(fs, args); stop {
//	    return err
//	}
func Parse(fs *flag.FlagSet, args []string) (stop bool, err error) {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return true, nil
		}
		return true, ErrUsage
	}
	return false, nil
}
