package hspop

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"torhs/internal/corpus"
	"torhs/internal/onion"
	"torhs/internal/parallel"
)

// Population is a generated hidden-service landscape. Populations are
// immutable once generated, so derived views (the popularity ordering)
// are cached lazily and shared by every caller.
type Population struct {
	// Services lists every service, head entries first.
	Services []*Service
	// Config is the generating configuration.
	Config Config

	byAddr map[onion.Address]*Service

	popularOnce sync.Once
	popular     []*Service
}

// Generate builds a population from cfg. Generation is deterministic in
// cfg.Seed.
//
// The generation chunk (one build phase over the whole population) is
// the cancellation unit: ctx is observed between phases, never inside
// one, so a nil error means a fully consistent population and a
// ctx.Err() return means the partial population was never published to
// the caller. Generation has no checkpoint plane — it is cheap to redo
// relative to the pipelines it feeds — so cancellation simply discards
// the partial arena.
//
//torhs:cancelpoint
func Generate(ctx context.Context, cfg Config) (*Population, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("hspop: scale %v out of (0,1]", cfg.Scale)
	}
	if cfg.PhantomRequestFraction < 0 || cfg.PhantomRequestFraction >= 1 {
		return nil, fmt.Errorf("hspop: phantom fraction %v out of [0,1)", cfg.PhantomRequestFraction)
	}
	estimate := estimatedServices(cfg)
	g := &generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		pop: &Population{
			Config:   cfg,
			Services: make([]*Service, 0, estimate),
			byAddr:   make(map[onion.Address]*Service, estimate),
		},
	}
	// Arena chunks are demand-sized: a streaming consumer that only
	// touches a prefix of the population should not force one
	// full-population block allocation up front. Chunks are allocated on
	// use, so the unconsumed tail costs nothing beyond its own blocks.
	chunk := estimate
	if cfg.DemandHint > 0 && cfg.DemandHint < chunk {
		chunk = cfg.DemandHint
	}
	g.svcArena.chunk = chunk
	g.pageArena.chunk = chunk
	g.miscPorts = g.pickMiscPorts()
	// Phase order matters: the head must resolve addresses (first
	// deriveIdentities) before the clones can mine the Silk Road vanity
	// prefix and dedup against the index, and the body's identities must
	// resolve before certificates bind to addresses.
	phases := []func(){
		g.buildHead,
		g.deriveIdentities,
		g.buildPhishingClones,
		g.buildBody,
		g.deriveIdentities,
		g.assignCerts,
		g.assignPopularityTail,
		g.buildLinkGraph,
	}
	for _, phase := range phases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		phase()
	}
	return g.pop, nil
}

// estimatedServices predicts the population size from the configuration,
// so the generator can pre-size its arenas and the Services slice instead
// of growing them service by service. Phishing-clone dedup may land the
// real count slightly below the estimate; the chunked arenas tolerate
// either direction.
func estimatedServices(cfg Config) int {
	n := len(TableIIHead()) + cfg.PhishingClones + 1
	n += cfg.scaled(cfg.SkynetBots, 5)
	n += cfg.scaled(cfg.Web80Only, 5)
	n += cfg.scaled(cfg.WebBoth, 3)
	n += cfg.scaled(cfg.Web443Only, 2)
	n += cfg.scaled(cfg.SSHOnly, 3)
	n += cfg.scaled(cfg.TorChat, 2)
	n += cfg.scaled(cfg.IRC, 1)
	n += cfg.scaled(cfg.P4050, 1)
	n += cfg.scaled(cfg.Misc, 4)
	n += cfg.scaled(cfg.Dark, 2)
	n += cfg.scaled(cfg.Dead, 5)
	return n
}

// arena hands out pointers into pre-sized chunks so the generator
// performs one bulk allocation per ~population instead of one per
// service. Chunks are never reallocated once handed out, so every
// pointer stays valid even if the population outgrows the estimate.
type arena[T any] struct {
	chunk int
	buf   []T
}

func (a *arena[T]) take() *T {
	if len(a.buf) == cap(a.buf) {
		if a.chunk < 16 {
			a.chunk = 16
		}
		a.buf = make([]T, 0, a.chunk)
	}
	a.buf = append(a.buf, *new(T))
	return &a.buf[len(a.buf)-1]
}

type generator struct {
	cfg       Config
	rng       *rand.Rand
	pop       *Population
	seq       int
	miscPorts []int
	// derived marks how many of pop.Services have their identity
	// (PermID, Address) resolved and indexed; deriveIdentities advances it.
	derived int

	svcArena  arena[Service]
	pageArena arena[Page]
}

// newPage allocates a page from the arena and initialises it with p.
func (g *generator) newPage(p Page) *Page {
	out := g.pageArena.take()
	*out = p
	return out
}

// Shared HTTP-port singletons for the fixed port layouts: the slices are
// never mutated after generation, so every service with the same layout
// can alias one backing array.
var (
	portsHTTPOnly  = []int{PortHTTP}
	portsHTTPSOnly = []int{PortHTTPS}
	portsDualStack = []int{PortHTTP, PortHTTPS}
	portsSSHOnly   = []int{PortSSH}
)

// newService draws the service's key from the generator RNG but defers
// the derived identity (SHA-1 permanent ID, base32 address) to the next
// deriveIdentities flush: the derivation is the expensive part of
// generation and draws no randomness, so batching it keeps the RNG
// stream untouched while the hashing fans out over all CPUs.
func (g *generator) newService(kind Kind) *Service {
	key := onion.GenerateKey(g.rng)
	s := g.svcArena.take()
	*s = Service{
		Seq:   g.seq,
		Key:   key,
		Kind:  kind,
		Ports: map[int]PortState{},
	}
	g.seq++
	g.pop.Services = append(g.pop.Services, s)
	return s
}

// deriveIdentities resolves PermID and Address for every service created
// since the last flush and indexes them in byAddr. The per-service work
// is a pure function of the already-drawn key, so the shards cannot
// observe each other and the population is byte-identical at every
// worker count; only the index fill stays sequential (map writes).
func (g *generator) deriveIdentities() {
	pending := g.pop.Services[g.derived:]
	parallel.ForEach(g.cfg.Workers, len(pending), func(i int) {
		s := pending[i]
		if s.Key == nil {
			return // phishing clones carry a pre-mined identity
		}
		id := s.Key.PermanentID()
		s.PermID = id
		s.Address = onion.AddressFromID(id)
	})
	for _, s := range pending {
		g.pop.byAddr[s.Address] = s
	}
	g.derived = len(g.pop.Services)
}

// pickMiscPorts samples the distinct uncommon port numbers for the Misc
// long tail.
func (g *generator) pickMiscPorts() []int {
	named := map[int]bool{
		PortHTTP: true, PortHTTPS: true, PortSSH: true, PortSkynet: true,
		PortTorChat: true, PortIRC: true, Port4050: true, PortAltHTTP: true,
	}
	n := g.cfg.scaled(g.cfg.MiscUniquePorts, 3)
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		p := 1024 + g.rng.Intn(64000)
		if named[p] || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

func (g *generator) buildHead() {
	for _, e := range TableIIHead() {
		s := g.newService(e.Kind)
		s.Label = e.Label
		s.PhysServer = e.PhysServer
		s.DescriptorAtScan = true
		s.OpenAtCrawl = true
		s.ExpectedRequests = float64(e.Requests)
		switch e.Kind {
		case KindGoldnetCC:
			// Port 80 open, 503 responses, server-status exposed. The
			// fabric special-cases Goldnet; no page content.
			s.Ports[PortHTTP] = PortOpen
			s.HTTPPorts = portsHTTPOnly
		case KindSkynetCC:
			s.Ports[PortSkynet] = PortAbnormal
		case KindBitcoinMine:
			s.Ports[PortHTTP] = PortOpen
			s.HTTPPorts = portsHTTPOnly
			s.Page = g.newPage(Page{
				Language:  corpus.LangEnglish,
				Topic:     corpus.TopicServices,
				WordCount: 40 + g.rng.Intn(60),
			})
		case KindWeb:
			s.Ports[PortHTTP] = PortOpen
			s.HTTPPorts = portsHTTPOnly
			s.Page = g.newPage(Page{
				Language:  corpus.LangEnglish,
				Topic:     e.Topic,
				WordCount: 100 + g.rng.Intn(300),
			})
		}
	}
}

// buildPhishingClones creates vanity-prefix imitations of the Silk Road
// address: a prefix-mined key makes the first characters of the onion
// address match, luring users who only check the beginning. (In reality
// a 7-character prefix costs ~2^35 key generations; here the permanent ID
// is constructed directly, so clones carry no identity key.)
func (g *generator) buildPhishingClones() {
	var silkroad *Service
	for _, s := range g.pop.Services {
		if s.Label == "SilkRoad" {
			silkroad = s
			break
		}
	}
	if silkroad == nil || g.cfg.PhishingClones <= 0 {
		return
	}
	prefix := string(silkroad.Address[:7])

	// The forum (second official address) plus the phishing clones.
	labels := make([]string, 0, g.cfg.PhishingClones+1)
	labels = append(labels, "SilkRoad(forum)")
	for i := 0; i < g.cfg.PhishingClones; i++ {
		labels = append(labels, "SilkRoad(phish)")
	}
	for _, label := range labels {
		id, err := onion.VanityPermanentID(prefix, g.rng)
		if err != nil {
			// The prefix comes from a valid generated address; fall back
			// to a random identity in the impossible error case.
			id = onion.GenerateKey(g.rng).PermanentID()
		}
		addr := onion.AddressFromID(id)
		if _, dup := g.pop.byAddr[addr]; dup {
			continue
		}
		s := g.svcArena.take()
		*s = Service{
			Seq:              g.seq,
			Key:              nil, // prefix-mined; no real key material
			Address:          addr,
			PermID:           id,
			Kind:             KindWeb,
			Label:            label,
			Ports:            map[int]PortState{PortHTTP: PortOpen},
			HTTPPorts:        portsHTTPOnly,
			DescriptorAtScan: true,
			OpenAtCrawl:      true,
		}
		topic := corpus.TopicDrugs
		if label == "SilkRoad(phish)" {
			topic = corpus.TopicCounterfeit // fake login pages harvest credentials
		}
		s.Page = g.newPage(Page{
			Language:  corpus.LangEnglish,
			Topic:     topic,
			WordCount: 60 + g.rng.Intn(120),
		})
		g.seq++
		g.pop.Services = append(g.pop.Services, s)
		g.pop.byAddr[s.Address] = s
	}
}

func (g *generator) buildBody() {
	cfg := g.cfg

	for i, n := 0, cfg.scaled(cfg.SkynetBots, 5); i < n; i++ {
		s := g.newService(KindSkynetBot)
		s.Label = "Skynet"
		s.DescriptorAtScan = true
		s.Ports[PortSkynet] = PortAbnormal
		s.OpenAtCrawl = true // bots are excluded from the crawl anyway
	}

	for i, n := 0, cfg.scaled(cfg.Web80Only, 5); i < n; i++ {
		s := g.newService(KindWeb)
		s.DescriptorAtScan = true
		s.Ports[PortHTTP] = PortOpen
		s.HTTPPorts = portsHTTPOnly
		s.Page = g.samplePage(false)
		s.OpenAtCrawl = g.rng.Float64() < cfg.SurviveWeb80
	}

	for i, n := 0, cfg.scaled(cfg.WebBoth, 3); i < n; i++ {
		s := g.newService(KindWeb)
		s.DescriptorAtScan = true
		s.Ports[PortHTTP] = PortOpen
		s.Ports[PortHTTPS] = PortOpen
		s.HTTPPorts = portsDualStack
		s.Page = g.sampleDualPage()
		s.Page.DupOn443 = true
		s.OpenAtCrawl = g.rng.Float64() < cfg.SurviveWeb443
	}

	for i, n := 0, cfg.scaled(cfg.Web443Only, 2); i < n; i++ {
		s := g.newService(KindWeb)
		s.DescriptorAtScan = true
		s.Ports[PortHTTPS] = PortOpen
		s.HTTPPorts = portsHTTPSOnly
		s.Page = g.samplePage(false)
		s.OpenAtCrawl = g.rng.Float64() < cfg.SurviveWeb443
	}

	longSSHProb := 2.0 / float64(cfg.SSHOnly) // the two ≥20-word banners
	for i, n := 0, cfg.scaled(cfg.SSHOnly, 3); i < n; i++ {
		s := g.newService(KindSSH)
		s.DescriptorAtScan = true
		s.Ports[PortSSH] = PortOpen
		s.HTTPPorts = portsSSHOnly // banner is readable over a raw probe
		wc := 4 + g.rng.Intn(10)
		if g.rng.Float64() < longSSHProb {
			wc = 25 + g.rng.Intn(20)
		}
		s.Page = g.newPage(Page{Language: corpus.LangEnglish, Topic: corpus.TopicOther, WordCount: wc})
		s.OpenAtCrawl = g.rng.Float64() < cfg.SurviveSSH
	}

	plain := []struct {
		kind  Kind
		port  int
		count int
	}{
		{KindTorChat, PortTorChat, cfg.scaled(cfg.TorChat, 2)},
		{KindIRC, PortIRC, cfg.scaled(cfg.IRC, 1)},
		{KindPort4050, Port4050, cfg.scaled(cfg.P4050, 1)},
	}
	for _, p := range plain {
		for i := 0; i < p.count; i++ {
			s := g.newService(p.kind)
			s.DescriptorAtScan = true
			s.Ports[p.port] = PortOpen
			s.OpenAtCrawl = g.rng.Float64() < cfg.SurviveMiscTCP
		}
	}

	nMisc := cfg.scaled(cfg.Misc, 4)
	nMiscHTTP := cfg.scaled(cfg.MiscHTTPCount, 2)
	nMisc8080 := cfg.scaled(cfg.Misc8080, 1)
	if nMiscHTTP > nMisc {
		nMiscHTTP = nMisc
	}
	for i := 0; i < nMisc; i++ {
		s := g.newService(KindMisc)
		s.DescriptorAtScan = true
		port := g.miscPorts[g.rng.Intn(len(g.miscPorts))]
		if i < nMisc8080 {
			port = PortAltHTTP
		}
		s.Ports[port] = PortOpen
		if i < nMiscHTTP {
			s.HTTPPorts = []int{port}
			s.Page = g.samplePage(false)
			s.OpenAtCrawl = true
		} else {
			s.OpenAtCrawl = g.rng.Float64() < cfg.SurviveMiscTCP
		}
	}

	for i, n := 0, cfg.scaled(cfg.Dark, 2); i < n; i++ {
		s := g.newService(KindDark)
		s.DescriptorAtScan = true
	}

	for i, n := 0, cfg.scaled(cfg.Dead, 5); i < n; i++ {
		s := g.newService(KindDark)
		s.DescriptorAtScan = false
	}

	// A small fraction of port-bearing services persistently time out
	// during scans — the paper could not reach 13% of ports, partly from
	// timeouts.
	for _, s := range g.pop.Services {
		if len(s.Ports) > 0 && s.Kind != KindGoldnetCC && g.rng.Float64() < 0.02 {
			s.ScanTimeout = true
		}
	}
}

// sampleDualPage draws page attributes for a dual-stack (80+443,
// TorHost-style hosted) service. These pages are rarely short — the
// paper's 1,108 port-443 duplicate exclusions imply most dual-stack
// bodies passed the 20-word filter — and are dominated by the hosting
// service's default page.
func (g *generator) sampleDualPage() *Page {
	r := g.rng.Float64()
	switch {
	case r < 0.05:
		return g.newPage(Page{
			Language:  corpus.LangEnglish,
			Topic:     corpus.TopicOther,
			WordCount: 3 + g.rng.Intn(17),
		})
	case r < 0.06:
		return g.newPage(Page{
			Language:  corpus.LangEnglish,
			Topic:     corpus.TopicOther,
			WordCount: 25 + g.rng.Intn(20),
			ErrorPage: true,
		})
	case r < 0.51:
		return g.newPage(Page{
			Language:       corpus.LangEnglish,
			Topic:          corpus.TopicAnonymity,
			WordCount:      120,
			TorhostDefault: true,
		})
	}
	lang := corpus.LangEnglish
	if g.rng.Float64() >= g.cfg.EnglishFrac {
		others := corpus.Languages()[1:]
		lang = others[g.rng.Intn(len(others))]
	}
	return g.newPage(Page{
		Language:  lang,
		Topic:     g.sampleTopic(),
		WordCount: 50 + g.rng.Intn(450),
	})
}

// samplePage draws page attributes from the calibrated category mix.
func (g *generator) samplePage(forceEnglish bool) *Page {
	cfg := g.cfg
	r := g.rng.Float64()
	switch {
	case r < cfg.PageShortFrac:
		return g.newPage(Page{
			Language:  corpus.LangEnglish,
			Topic:     corpus.TopicOther,
			WordCount: 3 + g.rng.Intn(17),
		})
	case r < cfg.PageShortFrac+cfg.PageErrorFrac:
		return g.newPage(Page{
			Language:  corpus.LangEnglish,
			Topic:     corpus.TopicOther,
			WordCount: 25 + g.rng.Intn(20),
			ErrorPage: true,
		})
	case r < cfg.PageShortFrac+cfg.PageErrorFrac+cfg.PageTorhostDefaultFrac:
		return g.newPage(Page{
			Language:       corpus.LangEnglish,
			Topic:          corpus.TopicAnonymity,
			WordCount:      120,
			TorhostDefault: true,
		})
	}
	lang := corpus.LangEnglish
	if !forceEnglish && g.rng.Float64() >= cfg.EnglishFrac {
		others := corpus.Languages()[1:]
		lang = others[g.rng.Intn(len(others))]
	}
	return g.newPage(Page{
		Language:  lang,
		Topic:     g.sampleTopic(),
		WordCount: 50 + g.rng.Intn(450),
	})
}

// sampleTopic draws a topic from the Fig. 2 distribution.
func (g *generator) sampleTopic() corpus.Topic {
	r := g.rng.Intn(100)
	acc := 0
	for _, t := range corpus.AllTopics() {
		acc += corpus.PaperTopicPercent[t]
		if r < acc {
			return t
		}
	}
	return corpus.TopicOther
}

// operatorCN formats the leaked operator DNS name
// "www.operatorNNNN.example.com" (NNNN zero-padded) by writing digits
// into a stack buffer: one string allocation, none of fmt.Sprintf's
// boxing and verb parsing.
func operatorCN(n int) string {
	b := []byte("www.operator0000.example.com")
	for i := 15; i >= 12; i-- {
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b)
}

// assignCerts distributes the Section III certificate profiles over all
// 443 listeners.
func (g *generator) assignCerts() {
	var owners []*Service
	for _, s := range g.pop.Services {
		if s.HasPort(PortHTTPS) {
			owners = append(owners, s)
		}
	}
	g.rng.Shuffle(len(owners), func(i, j int) { owners[i], owners[j] = owners[j], owners[i] })

	nTorHost := g.cfg.scaled(g.cfg.CertTorHostCount, 1)
	nLeak := g.cfg.scaled(g.cfg.CertDNSLeakCount, 1)
	nMismatch := g.cfg.scaled(g.cfg.CertMismatchCount, 1)

	for i, s := range owners {
		switch {
		case i < nTorHost:
			s.Cert = Cert{Profile: CertTorHost, CommonName: TorHostCN, SelfSigned: true}
		case i < nTorHost+nLeak:
			s.Cert = Cert{
				Profile:    CertDNSLeak,
				CommonName: operatorCN(g.rng.Intn(10000)),
				SelfSigned: true,
			}
		case i < nTorHost+nLeak+nMismatch:
			other := onion.AddressFromKey(onion.GenerateKey(g.rng))
			s.Cert = Cert{Profile: CertSelfSignedMismatch, CommonName: other.String(), SelfSigned: true}
		default:
			s.Cert = Cert{Profile: CertSelfSignedMatch, CommonName: s.Address.String(), SelfSigned: true}
		}
	}
}

// assignPopularityTail gives power-law request rates to the anonymous
// body, interpolating through the Table II anchors.
func (g *generator) assignPopularityTail() {
	anchors := headAnchors()
	maxRank := anchors[len(anchors)-1][0]

	// Candidates: alive content-ish services without a head rate.
	var candidates []*Service
	for _, s := range g.pop.Services {
		if s.ExpectedRequests == 0 && s.DescriptorAtScan &&
			(s.Kind == KindWeb || s.Kind == KindMisc || s.Kind == KindSSH || s.Kind == KindDark) {
			candidates = append(candidates, s)
		}
	}
	g.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })

	n := g.cfg.scaled(g.cfg.PopularTail, 10)
	if n > len(candidates) {
		n = len(candidates)
	}
	head := len(TableIIHead())
	for i := 0; i < n; i++ {
		rank := head + 1 + i
		candidates[i].ExpectedRequests = g.tailRate(rank, anchors, maxRank)
	}
}

// tailRate interpolates the request count at the given rank: log-log
// linear between anchors, power-law extrapolation past the last anchor.
func (g *generator) tailRate(rank int, anchors [][2]int, maxAnchorRank int) float64 {
	if rank > maxAnchorRank {
		last := anchors[len(anchors)-1]
		v := float64(last[1]) * math.Pow(float64(rank)/float64(last[0]), -g.cfg.TailExponent)
		if v < 1 {
			v = 1
		}
		return v
	}
	for i := 1; i < len(anchors); i++ {
		r1, c1 := float64(anchors[i-1][0]), float64(anchors[i-1][1])
		r2, c2 := float64(anchors[i][0]), float64(anchors[i][1])
		if float64(rank) <= r2 {
			if r1 == r2 {
				return c2
			}
			alpha := math.Log(c2/c1) / math.Log(r2/r1)
			return c1 * math.Pow(float64(rank)/r1, alpha)
		}
	}
	return 1
}

// directoryLabels name the services that act as link directories (the
// Hidden-Wiki-style sites the paper's introduction discusses).
var directoryLabels = map[string]bool{
	"TorDir":          true,
	"Onion Bookmarks": true,
	"SilkRoad(wiki)":  true,
	"Tor Host":        true,
}

// buildLinkGraph wires the sparse hidden-service link graph: directory
// sites link to a small fraction of the population, ordinary sites to
// almost nobody.
func (g *generator) buildLinkGraph() {
	var linkable []*Service // descriptor-publishing, web-facing targets
	for _, s := range g.pop.Services {
		if s.DescriptorAtScan && len(s.HTTPPorts) > 0 {
			linkable = append(linkable, s)
		}
	}
	if len(linkable) == 0 {
		return
	}
	pick := func() onion.Address {
		return linkable[g.rng.Intn(len(linkable))].Address
	}
	for _, s := range g.pop.Services {
		switch {
		case directoryLabels[s.Label]:
			n := int(float64(len(g.pop.WithDescriptor())) * g.cfg.DirectoryLinkFraction)
			if n < 3 {
				n = 3
			}
			seen := make(map[onion.Address]bool, n)
			for len(s.LinksTo) < n {
				a := pick()
				if a == s.Address || seen[a] {
					continue
				}
				seen[a] = true
				s.LinksTo = append(s.LinksTo, a)
			}
		case s.Kind == KindWeb && s.Page != nil && !s.Page.TorhostDefault && !s.Page.ErrorPage:
			// Poisson(WebOutlinkMean) outlinks, inlined to keep hspop
			// free of a stats dependency cycle.
			n := 0
			for g.rng.Float64() < g.cfg.WebOutlinkMean/(1+float64(n)) && n < 4 {
				n++
			}
			for i := 0; i < n; i++ {
				if a := pick(); a != s.Address {
					s.LinksTo = append(s.LinksTo, a)
				}
			}
		}
	}
}

// ByAddress looks up a service by onion address.
func (p *Population) ByAddress(a onion.Address) (*Service, bool) {
	s, ok := p.byAddr[a]
	return s, ok
}

// Len returns the population size.
func (p *Population) Len() int { return len(p.Services) }

// CountByKind tallies services per kind.
func (p *Population) CountByKind() map[Kind]int {
	out := make(map[Kind]int, 12)
	for _, s := range p.Services {
		out[s.Kind]++
	}
	return out
}

// WithDescriptor returns all services that publish descriptors during the
// scan window.
func (p *Population) WithDescriptor() []*Service {
	out := make([]*Service, 0, len(p.Services))
	for _, s := range p.Services {
		if s.DescriptorAtScan {
			out = append(out, s)
		}
	}
	return out
}

// PopularServices returns all services with a nonzero expected request
// rate, most popular first. The ordering is computed once per population
// (every driven traffic window starts from it) and the returned slice
// aliases the cache — callers must not mutate it.
func (p *Population) PopularServices() []*Service {
	p.popularOnce.Do(func() {
		out := make([]*Service, 0, len(p.Services))
		for _, s := range p.Services {
			if s.ExpectedRequests > 0 {
				out = append(out, s)
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].ExpectedRequests != out[j].ExpectedRequests {
				return out[i].ExpectedRequests > out[j].ExpectedRequests
			}
			return out[i].Seq < out[j].Seq
		})
		p.popular = out
	})
	return p.popular
}
