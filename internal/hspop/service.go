// Package hspop synthesises a Tor hidden-service population calibrated to
// the marginals the paper reports: the Fig. 1 port mix (dominated by the
// Skynet botnet's port 55080), the Table I HTTP(S) protocol mix, the
// Fig. 2 topic mix and 17-language mix, and the Table II popularity head
// (the "Goldnet" C&C cluster, Skynet, adult sites, Silk Road, …).
//
// The real 2013 population is unobtainable; the paper's pipelines are
// distribution-driven, so a calibrated synthetic population exercises the
// identical code paths (see DESIGN.md, substitution table).
package hspop

import (
	"math/rand"

	"torhs/internal/corpus"
	"torhs/internal/onion"
)

// Kind is the behavioural class of a hidden service.
type Kind int

// Service kinds.
const (
	// KindSkynetBot is a machine infected by the Skynet malware: no open
	// ports, but port 55080 answers with an abnormal error.
	KindSkynetBot Kind = iota + 1
	// KindGoldnetCC is a C&C front of the large botnet the paper dubs
	// "Goldnet": port 80 open, always answers 503, exposes a
	// server-status page, and receives enormous client-request volume.
	KindGoldnetCC
	// KindSkynetCC is a Skynet command/bitcoin-pooling service.
	KindSkynetCC
	// KindBitcoinMine is a bitcoin mining pool ("BcMine" in Table II).
	KindBitcoinMine
	// KindWeb is an ordinary HTTP(S) site with content.
	KindWeb
	// KindSSH exposes only an SSH banner on port 22.
	KindSSH
	// KindTorChat is a TorChat peer on port 11009.
	KindTorChat
	// KindIRC is an IRC server on port 6667.
	KindIRC
	// KindPort4050 is the unexplained port-4050 cluster from Fig. 1.
	KindPort4050
	// KindMisc exposes a single uncommon port from the long tail.
	KindMisc
	// KindDark has a published descriptor but no open ports at all.
	KindDark
)

var kindNames = map[Kind]string{
	KindSkynetBot:   "SkynetBot",
	KindGoldnetCC:   "GoldnetCC",
	KindSkynetCC:    "SkynetCC",
	KindBitcoinMine: "BitcoinMine",
	KindWeb:         "Web",
	KindSSH:         "SSH",
	KindTorChat:     "TorChat",
	KindIRC:         "IRC",
	KindPort4050:    "Port4050",
	KindMisc:        "Misc",
	KindDark:        "Dark",
}

// String returns the kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return "Kind(?)"
}

// Well-known port numbers used by the population.
const (
	PortHTTP    = 80
	PortHTTPS   = 443
	PortSSH     = 22
	PortSkynet  = 55080
	PortTorChat = 11009
	PortIRC     = 6667
	Port4050    = 4050
	PortAltHTTP = 8080
)

// PortState describes how a port responds to a scan probe.
type PortState int

// Port probe outcomes.
const (
	// PortOpen accepts connections.
	PortOpen PortState = iota + 1
	// PortAbnormal refuses with the distinctive non-standard error the
	// Skynet malware produces on port 55080. The paper counts these as
	// open, since they fingerprint the bot.
	PortAbnormal
)

// CertProfile classifies the TLS certificate a service presents on 443.
type CertProfile int

// Certificate profiles from the paper's Section III.
const (
	// CertNone: no certificate (no 443 listener).
	CertNone CertProfile = iota
	// CertTorHost: self-signed, CN "esjqyk2khizsy43i.onion" (the TorHost
	// free hosting service) — 1,168 cases in the paper.
	CertTorHost
	// CertSelfSignedMismatch: self-signed, CN does not match the host —
	// the remainder of the 1,225 mismatch cases.
	CertSelfSignedMismatch
	// CertSelfSignedMatch: self-signed but CN matches the onion address.
	CertSelfSignedMatch
	// CertDNSLeak: CN carries the operator's public DNS name,
	// deanonymising the service — 34 cases in the paper.
	CertDNSLeak
)

// TorHostCN is the certificate common name shared by TorHost-hosted
// services in the paper.
const TorHostCN = "esjqyk2khizsy43i.onion"

// Cert is the TLS certificate synthesised for a 443 listener.
type Cert struct {
	Profile    CertProfile
	CommonName string
	SelfSigned bool
}

// Page models the content an HTTP destination serves.
type Page struct {
	// Language is the ISO code of the page body.
	Language string
	// Topic is the content category (meaningful for substantive pages).
	Topic corpus.Topic
	// WordCount is the number of words in the page body. Pages under 20
	// words are excluded from classification, as in the paper.
	WordCount int
	// TorhostDefault marks the TorHost hosting service's default page.
	TorhostDefault bool
	// ErrorPage marks an error message wrapped in HTML.
	ErrorPage bool
	// DupOn443 marks that the 443 listener serves a byte-identical copy
	// of the port-80 content (1,108 crawl destinations in the paper).
	DupOn443 bool
}

// Service is one synthetic hidden service.
type Service struct {
	// Seq is the generation sequence number (stable identifier).
	Seq int
	// Key is the identity key; Address and PermID derive from it.
	Key     onion.IdentityKey
	Address onion.Address
	PermID  onion.PermanentID

	Kind Kind
	// Label is the Table II annotation ("Goldnet", "Skynet", "SilkRoad",
	// "Adult", …); empty for unlabelled services.
	Label string
	// PhysServer groups C&C fronts by physical machine: the paper
	// observed the nine Goldnet addresses shared two Apache uptimes.
	PhysServer int

	// Ports maps open port numbers to their probe behaviour.
	Ports map[int]PortState
	// HTTPPorts lists ports that speak HTTP(S) when probed by the
	// crawler, in ascending order.
	HTTPPorts []int
	// Cert is the 443 certificate, if any.
	Cert Cert
	// Page is the served content, if the service speaks HTTP.
	Page *Page

	// DescriptorAtScan: a descriptor was fetchable during the port-scan
	// window (24,511 of 39,824 in the paper).
	DescriptorAtScan bool
	// OpenAtCrawl: the service was still up during the content crawl two
	// months later (7,114 of 8,153 destinations).
	OpenAtCrawl bool
	// ScanTimeout: probes persistently time out (a small fraction of
	// the paper's missing coverage).
	ScanTimeout bool

	// ExpectedRequests is the mean number of client descriptor fetches
	// in one 2-hour measurement window (the Table II popularity weight).
	ExpectedRequests float64

	// LinksTo lists onion addresses this service's pages link to.
	// Hidden services rarely link to each other (the paper's stated
	// reason why traditional crawling cannot map the landscape); only
	// directory sites carry many links.
	LinksTo []onion.Address
}

// HasPort reports whether the service answers on the port (open or
// abnormal).
func (s *Service) HasPort(port int) bool {
	_, ok := s.Ports[port]
	return ok
}

// SpeaksHTTP reports whether the given port serves HTTP(S).
func (s *Service) SpeaksHTTP(port int) bool {
	for _, p := range s.HTTPPorts {
		if p == port {
			return true
		}
	}
	return false
}

// pageSeed derives a stable per-service seed for content rendering, so
// the same service always serves the same bytes.
func (s *Service) pageSeed() int64 {
	var seed int64
	for i := 0; i < 8 && i < len(s.PermID); i++ {
		seed = seed<<8 | int64(s.PermID[i])
	}
	return seed
}

// NewPageRNG returns a deterministic RNG for rendering this service's
// page.
func (s *Service) NewPageRNG() *rand.Rand {
	return rand.New(rand.NewSource(s.pageSeed()))
}
