package hspop

import (
	"context"
	"math"
	"testing"

	"torhs/internal/corpus"
)

func testPop(t *testing.T) *Population {
	t.Helper()
	pop, err := Generate(context.Background(), TestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := PaperConfig(1)
	cfg.Scale = 0
	if _, err := Generate(context.Background(), cfg); err == nil {
		t.Fatal("scale 0 accepted")
	}
	cfg = PaperConfig(1)
	cfg.Scale = 1.5
	if _, err := Generate(context.Background(), cfg); err == nil {
		t.Fatal("scale 1.5 accepted")
	}
	cfg = PaperConfig(1)
	cfg.PhantomRequestFraction = 1.0
	if _, err := Generate(context.Background(), cfg); err == nil {
		t.Fatal("phantom fraction 1.0 accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(context.Background(), TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), TestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Services {
		if a.Services[i].Address != b.Services[i].Address {
			t.Fatalf("service %d address differs", i)
		}
		if a.Services[i].ExpectedRequests != b.Services[i].ExpectedRequests {
			t.Fatalf("service %d popularity differs", i)
		}
	}
}

func TestUniqueAddresses(t *testing.T) {
	pop := testPop(t)
	seen := make(map[string]bool, pop.Len())
	for _, s := range pop.Services {
		if seen[string(s.Address)] {
			t.Fatalf("duplicate address %s", s.Address)
		}
		seen[string(s.Address)] = true
		if got, ok := pop.ByAddress(s.Address); !ok || got != s {
			t.Fatalf("ByAddress(%s) broken", s.Address)
		}
	}
}

func TestHeadServicesPresentAndCalibrated(t *testing.T) {
	pop := testPop(t)
	head := TableIIHead()
	for i, e := range head {
		s := pop.Services[i]
		if s.Label != e.Label {
			t.Fatalf("head %d label = %q, want %q", i, s.Label, e.Label)
		}
		if s.Kind != e.Kind {
			t.Fatalf("head %d kind = %v, want %v", i, s.Kind, e.Kind)
		}
		if s.ExpectedRequests != float64(e.Requests) {
			t.Fatalf("head %d rate = %v, want %d", i, s.ExpectedRequests, e.Requests)
		}
		if !s.DescriptorAtScan {
			t.Fatalf("head %d not alive at scan", i)
		}
	}
}

func TestGoldnetFamilyShape(t *testing.T) {
	pop := testPop(t)
	phys := map[int]int{}
	n := 0
	for _, s := range pop.Services {
		if s.Kind == KindGoldnetCC {
			n++
			phys[s.PhysServer]++
			if !s.HasPort(PortHTTP) {
				t.Fatal("Goldnet front without port 80")
			}
		}
	}
	if n != 9 {
		t.Fatalf("Goldnet family size = %d, want 9", n)
	}
	if len(phys) != 2 {
		t.Fatalf("Goldnet physical servers = %d, want 2", len(phys))
	}
}

func TestSkynetClusterShape(t *testing.T) {
	pop := testPop(t)
	cc := 0
	for _, s := range pop.Services {
		if s.Kind == KindSkynetCC {
			cc++
			if s.Ports[PortSkynet] != PortAbnormal {
				t.Fatal("Skynet C&C without abnormal port 55080")
			}
		}
	}
	if cc != 10 {
		t.Fatalf("Skynet C&C count = %d, want 10", cc)
	}
	counts := pop.CountByKind()
	if counts[KindSkynetBot] < 100 {
		t.Fatalf("Skynet bots = %d, want scaled thousands", counts[KindSkynetBot])
	}
}

func TestPortMixApproximatesFig1(t *testing.T) {
	pop := testPop(t)
	portCounts := map[int]int{}
	for _, s := range pop.Services {
		if !s.DescriptorAtScan {
			continue
		}
		for p := range s.Ports {
			portCounts[p]++
		}
	}
	// At scale 0.05 the Fig. 1 ordering must hold: 55080 > 80 > 443 ≥ 22.
	if !(portCounts[PortSkynet] > portCounts[PortHTTP]) {
		t.Fatalf("port 55080 (%d) not dominant over 80 (%d)", portCounts[PortSkynet], portCounts[PortHTTP])
	}
	if !(portCounts[PortHTTP] > portCounts[PortHTTPS]) {
		t.Fatalf("port 80 (%d) not above 443 (%d)", portCounts[PortHTTP], portCounts[PortHTTPS])
	}
	// Skynet should be roughly 55-70% of all answering ports.
	total := 0
	for _, n := range portCounts {
		total += n
	}
	frac := float64(portCounts[PortSkynet]) / float64(total)
	if frac < 0.5 || frac > 0.75 {
		t.Fatalf("Skynet port fraction = %.2f, want ~0.63", frac)
	}
}

func TestCertProfilesCover443Owners(t *testing.T) {
	pop := testPop(t)
	profiles := map[CertProfile]int{}
	for _, s := range pop.Services {
		if s.HasPort(PortHTTPS) {
			if s.Cert.Profile == CertNone {
				t.Fatalf("443 owner %s without certificate", s.Address)
			}
			profiles[s.Cert.Profile]++
			if s.Cert.Profile == CertTorHost && s.Cert.CommonName != TorHostCN {
				t.Fatal("TorHost cert with wrong CN")
			}
			if s.Cert.Profile == CertSelfSignedMatch && s.Cert.CommonName != s.Address.String() {
				t.Fatal("matching cert with mismatched CN")
			}
		} else if s.Cert.Profile != CertNone {
			t.Fatalf("service %s has cert but no 443", s.Address)
		}
	}
	if profiles[CertTorHost] == 0 || profiles[CertDNSLeak] == 0 || profiles[CertSelfSignedMismatch] == 0 {
		t.Fatalf("cert profile mix incomplete: %v", profiles)
	}
	// TorHost must dominate, as in the paper (1,168 of ~1,366).
	if profiles[CertTorHost] < profiles[CertSelfSignedMismatch] {
		t.Fatal("TorHost CN not the dominant certificate profile")
	}
}

func TestPageAttributesSane(t *testing.T) {
	pop := testPop(t)
	short, def, errp, subst := 0, 0, 0, 0
	english, other := 0, 0
	for _, s := range pop.Services {
		if s.Page == nil {
			continue
		}
		p := s.Page
		if p.WordCount <= 0 {
			t.Fatalf("page with word count %d", p.WordCount)
		}
		switch {
		case p.TorhostDefault:
			def++
		case p.ErrorPage:
			errp++
		case p.WordCount < 20:
			short++
		default:
			subst++
			if p.Language == corpus.LangEnglish {
				english++
			} else {
				other++
			}
		}
	}
	if short == 0 || def == 0 || errp == 0 || subst == 0 {
		t.Fatalf("page category mix incomplete: short=%d default=%d error=%d subst=%d", short, def, errp, subst)
	}
	engFrac := float64(english) / float64(english+other)
	if engFrac < 0.70 || engFrac > 0.92 {
		t.Fatalf("English fraction = %.2f, want ~0.81", engFrac)
	}
}

func TestPopularityHeadOrderAndTail(t *testing.T) {
	pop := testPop(t)
	popular := pop.PopularServices()
	if len(popular) < 100 {
		t.Fatalf("popular services = %d, want scaled tail", len(popular))
	}
	for i := 1; i < len(popular); i++ {
		if popular[i].ExpectedRequests > popular[i-1].ExpectedRequests {
			t.Fatal("PopularServices not sorted")
		}
	}
	if popular[0].Label != "Goldnet" {
		t.Fatalf("most popular service is %q, want Goldnet", popular[0].Label)
	}
	// Tail rates decay below the last anchor.
	last := popular[len(popular)-1].ExpectedRequests
	if last > 100 {
		t.Fatalf("tail minimum rate = %v, want small", last)
	}
}

func TestTailRateInterpolatesAnchors(t *testing.T) {
	g := &generator{cfg: PaperConfig(1)}
	anchors := headAnchors()
	maxRank := anchors[len(anchors)-1][0]
	// At every anchor rank, the interpolation must reproduce the anchor.
	for _, a := range anchors[1:] {
		got := g.tailRate(a[0], anchors, maxRank)
		if math.Abs(got-float64(a[1]))/float64(a[1]) > 0.01 {
			t.Fatalf("tailRate(%d) = %v, want %d", a[0], got, a[1])
		}
	}
	// Beyond the last anchor, rates decay monotonically.
	r1 := g.tailRate(600, anchors, maxRank)
	r2 := g.tailRate(1200, anchors, maxRank)
	if r1 <= r2 {
		t.Fatalf("tail not decaying: rate(600)=%v rate(1200)=%v", r1, r2)
	}
}

func TestWithDescriptorFiltersDead(t *testing.T) {
	pop := testPop(t)
	alive := pop.WithDescriptor()
	if len(alive) >= pop.Len() {
		t.Fatal("no dead services generated")
	}
	for _, s := range alive {
		if !s.DescriptorAtScan {
			t.Fatal("WithDescriptor returned dead service")
		}
	}
	frac := float64(len(alive)) / float64(pop.Len())
	if frac < 0.5 || frac > 0.75 {
		t.Fatalf("descriptor-available fraction = %.2f, want ~0.62", frac)
	}
}

func TestPageRNGStable(t *testing.T) {
	pop := testPop(t)
	var svc *Service
	for _, s := range pop.Services {
		if s.Page != nil {
			svc = s
			break
		}
	}
	if svc == nil {
		t.Fatal("no page-bearing service")
	}
	a := svc.NewPageRNG().Int63()
	b := svc.NewPageRNG().Int63()
	if a != b {
		t.Fatal("page RNG not stable per service")
	}
}

func TestKindString(t *testing.T) {
	if KindGoldnetCC.String() != "GoldnetCC" {
		t.Fatal("kind name wrong")
	}
	if Kind(99).String() != "Kind(?)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestPhishingClonesSharePrefix(t *testing.T) {
	pop := testPop(t)
	var silkroad *Service
	for _, s := range pop.Services {
		if s.Label == "SilkRoad" {
			silkroad = s
			break
		}
	}
	if silkroad == nil {
		t.Fatal("no SilkRoad service")
	}
	prefix := string(silkroad.Address[:7])
	cluster := 0
	phish, forum := 0, 0
	for _, s := range pop.Services {
		if string(s.Address[:7]) != prefix {
			continue
		}
		cluster++
		switch s.Label {
		case "SilkRoad(phish)":
			phish++
			if s.Key != nil {
				t.Fatal("phishing clone carries key material")
			}
			if !s.DescriptorAtScan || !s.HasPort(PortHTTP) {
				t.Fatal("phishing clone not serving")
			}
		case "SilkRoad(forum)":
			forum++
		}
	}
	// 15 addresses with the prefix, as in the paper: the marketplace,
	// the forum, and 13 clones (minus rare base32 collisions).
	if cluster < 14 || cluster > 16 {
		t.Fatalf("prefix cluster size = %d, want ~15", cluster)
	}
	if forum != 1 || phish < 12 {
		t.Fatalf("forum = %d, phish = %d", forum, phish)
	}
}

func TestMiscPortsAreUncommonAndBounded(t *testing.T) {
	pop := testPop(t)
	named := map[int]bool{
		PortHTTP: true, PortHTTPS: true, PortSSH: true, PortSkynet: true,
		PortTorChat: true, PortIRC: true, Port4050: true,
	}
	perPort := map[int]int{}
	for _, s := range pop.Services {
		if s.Kind != KindMisc {
			continue
		}
		for p := range s.Ports {
			if named[p] {
				t.Fatalf("misc service on named port %d", p)
			}
			perPort[p]++
		}
	}
	for p, n := range perPort {
		if n >= 50 {
			t.Fatalf("misc port %d has %d services; Fig. 1 groups <50 under Other", p, n)
		}
	}
}
