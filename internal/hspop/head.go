package hspop

import "torhs/internal/corpus"

// HeadEntry is one named service from Table II of the paper: a popularity
// rank, its observed request count over the 2-hour window, the label the
// paper assigned, and the behavioural kind we model it with.
type HeadEntry struct {
	Rank     int
	Requests int
	Label    string
	Kind     Kind
	// PhysServer groups the Goldnet fronts onto two physical machines
	// (the paper matched their Apache uptimes).
	PhysServer int
	// Topic for KindWeb head entries (Adult sites, markets, …).
	Topic corpus.Topic
}

// TableIIHead reproduces every row of Table II the paper prints,
// plus one below-top-30 Goldnet front so the Goldnet family has the nine
// members the text describes.
func TableIIHead() []HeadEntry {
	return []HeadEntry{
		{Rank: 1, Requests: 13714, Label: "Goldnet", Kind: KindGoldnetCC, PhysServer: 1},
		{Rank: 2, Requests: 11582, Label: "Goldnet", Kind: KindGoldnetCC, PhysServer: 1},
		{Rank: 3, Requests: 11315, Label: "Goldnet", Kind: KindGoldnetCC, PhysServer: 2},
		{Rank: 4, Requests: 7324, Label: "Goldnet", Kind: KindGoldnetCC, PhysServer: 1},
		{Rank: 5, Requests: 7183, Label: "Goldnet", Kind: KindGoldnetCC, PhysServer: 2},
		{Rank: 6, Requests: 6852, Label: "<n/a>", Kind: KindGoldnetCC, PhysServer: 1},
		{Rank: 7, Requests: 6528, Label: "Goldnet", Kind: KindGoldnetCC, PhysServer: 2},
		{Rank: 8, Requests: 4941, Label: "<n/a>", Kind: KindGoldnetCC, PhysServer: 2},
		{Rank: 9, Requests: 3746, Label: "BcMine", Kind: KindBitcoinMine},
		{Rank: 10, Requests: 3678, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 11, Requests: 2573, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 12, Requests: 1950, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 13, Requests: 1863, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 14, Requests: 1665, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 15, Requests: 1631, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 16, Requests: 1481, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 17, Requests: 1326, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 18, Requests: 1175, Label: "SilkRoad", Kind: KindWeb, Topic: corpus.TopicDrugs},
		{Rank: 19, Requests: 1094, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 20, Requests: 1021, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 21, Requests: 942, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 22, Requests: 899, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 23, Requests: 898, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 24, Requests: 889, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 25, Requests: 781, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 26, Requests: 746, Label: "<n/a>", Kind: KindWeb, Topic: corpus.TopicOther},
		{Rank: 27, Requests: 694, Label: "FreedomHosting", Kind: KindWeb, Topic: corpus.TopicAnonymity},
		{Rank: 28, Requests: 667, Label: "Skynet", Kind: KindSkynetCC},
		{Rank: 29, Requests: 585, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		{Rank: 30, Requests: 542, Label: "Adult", Kind: KindWeb, Topic: corpus.TopicAdult},
		// Ninth Goldnet front, just below the printed top 30.
		{Rank: 31, Requests: 520, Label: "<n/a>", Kind: KindGoldnetCC, PhysServer: 1},
		{Rank: 34, Requests: 453, Label: "SilkRoad(wiki)", Kind: KindWeb, Topic: corpus.TopicFAQsTutorials},
		{Rank: 47, Requests: 255, Label: "TorDir", Kind: KindWeb, Topic: corpus.TopicOther},
		{Rank: 62, Requests: 172, Label: "BlckMrktReloaded", Kind: KindWeb, Topic: corpus.TopicDrugs},
		{Rank: 157, Requests: 55, Label: "DuckDuckGo", Kind: KindWeb, Topic: corpus.TopicTechnology},
		{Rank: 250, Requests: 30, Label: "Onion Bookmarks", Kind: KindWeb, Topic: corpus.TopicOther},
		{Rank: 547, Requests: 10, Label: "Tor Host", Kind: KindWeb, Topic: corpus.TopicAnonymity},
	}
}

// headAnchors returns the (rank, count) interpolation anchors for the
// popularity tail, in ascending rank order.
func headAnchors() [][2]int {
	entries := TableIIHead()
	anchors := make([][2]int, 0, len(entries))
	for _, e := range entries {
		anchors = append(anchors, [2]int{e.Rank, e.Requests})
	}
	return anchors
}
