package hspop

// Config calibrates the synthetic population. All counts are full-scale
// (matching the paper's February 2013 measurements); Scale shrinks the
// anonymous body of the population proportionally while always keeping
// the named Table II head services.
type Config struct {
	// Seed drives all generation randomness.
	Seed int64
	// Scale in (0,1] shrinks the population. 1.0 reproduces the paper's
	// 39,824 services; tests use ~0.05.
	Scale float64

	// --- Fig. 1 port-mix targets (counts among descriptor-bearing
	// services during the scan window) ---

	// SkynetBots answer port 55080 with the abnormal error.
	SkynetBots int
	// Web80Only / WebBoth / Web443Only partition content sites by
	// listener set.
	Web80Only  int
	WebBoth    int
	Web443Only int
	// SSHOnly services expose only port 22.
	SSHOnly int
	// TorChat / IRC / P4050 are the remaining named Fig. 1 ports.
	TorChat int
	IRC     int
	P4050   int
	// Misc services expose one uncommon port each.
	Misc int
	// MiscUniquePorts is how many distinct uncommon port numbers the
	// Misc services spread over (488 in the paper, for 495 total unique
	// ports).
	MiscUniquePorts int
	// MiscHTTPCount of the Misc services speak HTTP ("Other" row of
	// Table I); Misc8080 of those sit on port 8080.
	MiscHTTPCount int
	Misc8080      int
	// Dark services publish a descriptor but expose no ports.
	Dark int
	// Dead services exist (their addresses are collected) but publish no
	// descriptor during the scan window.
	Dead int

	// --- certificate targets (Section III) ---

	// CertTorHostCount 443-services present the TorHost CN;
	// CertDNSLeakCount leak a public DNS name; CertMismatchCount are
	// other self-signed mismatches. The remainder self-sign with a
	// matching CN.
	CertTorHostCount  int
	CertDNSLeakCount  int
	CertMismatchCount int

	// --- crawl-time churn (two months after the scan) ---

	// Survival probabilities by destination class.
	SurviveWeb80   float64
	SurviveWeb443  float64
	SurviveSSH     float64
	SurviveMiscTCP float64

	// --- content targets (Section IV) ---

	// PageShortFrac / PageErrorFrac / PageTorhostDefaultFrac are the
	// fractions of HTTP pages that are <20 words, HTML-wrapped errors,
	// and the TorHost default page, respectively. The remainder is
	// substantive content.
	PageShortFrac          float64
	PageErrorFrac          float64
	PageTorhostDefaultFrac float64
	// EnglishFrac is the fraction of substantive pages in English.
	EnglishFrac float64

	// PhishingClones is the number of vanity-prefix clones of the Silk
	// Road address (the paper found 15 addresses with prefix "silkroa",
	// two official and the rest phishing, at least one imitating the
	// login page).
	PhishingClones int

	// --- link graph (the paper's crawling-coverage motivation) ---

	// DirectoryLinkFraction is the share of the descriptor-publishing
	// population each directory site (Hidden-Wiki-style service) links
	// to. Three Hidden Wikis plus ahmia.fi covered ~1,657 of 39,824
	// addresses (~4%) at the time of the paper.
	DirectoryLinkFraction float64
	// WebOutlinkMean is the Poisson mean of outlinks on an ordinary
	// content site ("hidden services only rarely link to each other").
	WebOutlinkMean float64

	// --- popularity (Section V / Table II) ---

	// PhantomRequestFraction of all descriptor fetches target IDs that
	// were never published (0.8 in the paper).
	PhantomRequestFraction float64
	// PhantomUniqueIDs is the number of distinct never-published IDs
	// requested (≈23,000 in the paper).
	PhantomUniqueIDs int
	// PopularTail is how many services beyond the named head receive at
	// least one request (the paper resolved 3,140 addresses).
	PopularTail int
	// TailExponent is the power-law exponent of the popularity tail.
	TailExponent float64

	// Workers shards the population's identity derivation (SHA-1
	// permanent IDs and base32 onion addresses) across goroutines
	// (<= 0 means one per CPU). The derivation draws no randomness, so
	// the generated population is identical at every worker count.
	Workers int

	// DemandHint, when positive, is the consumer's expected working-set
	// size in services (the streaming pipeline's per-window demand). It
	// only sizes the generator's arena chunks — allocation then grows in
	// demand-sized blocks instead of one full-population block — and
	// never changes what is generated: the population is byte-identical
	// with any hint.
	DemandHint int
}

// PaperConfig returns the full-scale configuration calibrated to the
// paper's reported counts. See DESIGN.md §4 for the derivation of each
// number.
func PaperConfig(seed int64) Config {
	return Config{
		Seed:  seed,
		Scale: 1.0,

		SkynetBots: 13844, // + 10 Skynet C&C = 13,854 port-55080 answers
		Web80Only:  2917,  // 4,027 port-80 minus dual-stack, Goldnet, BcMine
		WebBoth:    1100,
		Web443Only: 266, // 1,366 port-443 minus dual-stack
		SSHOnly:    1238,
		TorChat:    385,
		IRC:        113,
		P4050:      138,
		Misc:       886,

		MiscUniquePorts: 488, // 495 unique ports minus the 7 named ones
		MiscHTTPCount:   455, // Table I: 451 "Other" + 4 on port 8080
		Misc8080:        4,

		Dark: 3604,  // descriptor-bearing, no open ports
		Dead: 15313, // 39,824 collected − 24,511 with descriptors

		CertTorHostCount:  1168,
		CertDNSLeakCount:  34,
		CertMismatchCount: 57, // 1,225 self-signed mismatches − 1,168 TorHost

		SurviveWeb80:   0.929,  // 3,741 / 4,027
		SurviveWeb443:  0.9436, // 1,289 / 1,366
		SurviveSSH:     0.8837, // 1,094 / 1,238
		SurviveMiscTCP: 0.50,   // 535 of 1,067 non-HTTP oddballs

		// Non-dual-stack page mix; dual-stack (80+443) services use a
		// dedicated mix dominated by the TorHost default page (see
		// generator.sampleDualPage). Jointly calibrated so the crawl
		// funnel reproduces the paper's exclusion counts: 2,348 short,
		// 1,108 duplicates, 73 errors, 3,050 classified, 805 defaults.
		PageShortFrac:          0.34,
		PageErrorFrac:          0.02,
		PageTorhostDefaultFrac: 0.10,
		EnglishFrac:            0.8083, // 1,813 / 2,243 substantive pages

		PhishingClones: 13, // + the two official addresses = 15 "silkroa" prefixes

		DirectoryLinkFraction: 0.015,
		WebOutlinkMean:        0.25,

		PhantomRequestFraction: 0.80,
		PhantomUniqueIDs:       23010, // 29,123 unique IDs − 6,113 resolved
		PopularTail:            3100,  // ≈3,140 addresses minus the named head
		TailExponent:           1.4,
	}
}

// TestConfig returns a scaled-down configuration suitable for unit and
// integration tests.
func TestConfig(seed int64) Config {
	cfg := PaperConfig(seed)
	cfg.Scale = 0.05
	return cfg
}

// ScaledPhantomIDs returns the phantom descriptor-ID pool size at the
// configured scale.
func (c Config) ScaledPhantomIDs() int {
	return c.scaled(c.PhantomUniqueIDs, 50)
}

// scaled rounds a full-scale count down to the configured scale, keeping
// at least min.
func (c Config) scaled(n, min int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < min {
		v = min
	}
	return v
}
