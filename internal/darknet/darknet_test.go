package darknet

import (
	"context"
	"errors"
	"strings"
	"testing"

	"torhs/internal/hspop"
	"torhs/internal/onion"
)

func testFabric(t *testing.T) (*Fabric, *hspop.Population) {
	t.Helper()
	pop, err := hspop.Generate(context.Background(), hspop.TestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	return New(pop), pop
}

func findService(t *testing.T, pop *hspop.Population, pred func(*hspop.Service) bool) *hspop.Service {
	t.Helper()
	for _, s := range pop.Services {
		if pred(s) {
			return s
		}
	}
	t.Fatal("no service matching predicate")
	return nil
}

func TestProbeUnknownAddress(t *testing.T) {
	f, _ := testFabric(t)
	if got := f.Probe("aaaaaaaaaaaaaaaa", 80, PhaseScan); got != ProbeNoDescriptor {
		t.Fatalf("probe unknown = %v, want no-descriptor", got)
	}
}

func TestProbeDeadService(t *testing.T) {
	f, pop := testFabric(t)
	dead := findService(t, pop, func(s *hspop.Service) bool { return !s.DescriptorAtScan })
	if got := f.Probe(dead.Address, 80, PhaseScan); got != ProbeNoDescriptor {
		t.Fatalf("probe dead = %v, want no-descriptor", got)
	}
	if f.HasDescriptor(dead.Address, PhaseScan) {
		t.Fatal("dead service has descriptor")
	}
}

func TestProbeSkynetAbnormal(t *testing.T) {
	f, pop := testFabric(t)
	bot := findService(t, pop, func(s *hspop.Service) bool {
		return s.Kind == hspop.KindSkynetBot && !s.ScanTimeout
	})
	if got := f.Probe(bot.Address, hspop.PortSkynet, PhaseScan); got != ProbeAbnormal {
		t.Fatalf("probe bot:55080 = %v, want abnormal", got)
	}
	if got := f.Probe(bot.Address, 80, PhaseScan); got != ProbeClosed {
		t.Fatalf("probe bot:80 = %v, want closed", got)
	}
}

func TestProbeTimeout(t *testing.T) {
	f, pop := testFabric(t)
	to := findService(t, pop, func(s *hspop.Service) bool { return s.ScanTimeout })
	if got := f.Probe(to.Address, 80, PhaseScan); got != ProbeTimeout {
		t.Fatalf("probe timeout service = %v, want timeout", got)
	}
}

func TestCrawlPhaseChurn(t *testing.T) {
	f, pop := testFabric(t)
	gone := findService(t, pop, func(s *hspop.Service) bool {
		return s.DescriptorAtScan && !s.OpenAtCrawl && s.HasPort(hspop.PortHTTP) && !s.ScanTimeout
	})
	if got := f.Probe(gone.Address, hspop.PortHTTP, PhaseScan); got != ProbeOpen {
		t.Fatalf("scan-phase probe = %v, want open", got)
	}
	if got := f.Probe(gone.Address, hspop.PortHTTP, PhaseCrawl); got != ProbeNoDescriptor {
		t.Fatalf("crawl-phase probe = %v, want no-descriptor", got)
	}
}

func TestGetGoldnet503WithServerStatus(t *testing.T) {
	f, pop := testFabric(t)
	cc := findService(t, pop, func(s *hspop.Service) bool { return s.Kind == hspop.KindGoldnetCC })
	resp, err := f.Get(cc.Address, hspop.PortHTTP, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 || !resp.ServerStatusAvailable {
		t.Fatalf("goldnet response = %+v, want 503 + server-status", resp)
	}
	ss, err := f.ServerStatusPage(cc.Address, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	if ss.RequestsPerSec != 10 || ss.PostFraction < 0.9 {
		t.Fatalf("server-status = %+v", ss)
	}
}

func TestGoldnetUptimeGroupsByPhysicalServer(t *testing.T) {
	f, pop := testFabric(t)
	uptimes := map[int]map[int64]bool{}
	for _, s := range pop.Services {
		if s.Kind != hspop.KindGoldnetCC {
			continue
		}
		ss, err := f.ServerStatusPage(s.Address, PhaseScan)
		if err != nil {
			t.Fatal(err)
		}
		if uptimes[s.PhysServer] == nil {
			uptimes[s.PhysServer] = map[int64]bool{}
		}
		uptimes[s.PhysServer][ss.UptimeSeconds] = true
	}
	if len(uptimes) != 2 {
		t.Fatalf("physical server groups = %d, want 2", len(uptimes))
	}
	for phys, set := range uptimes {
		if len(set) != 1 {
			t.Fatalf("server %d has %d distinct uptimes, want 1", phys, len(set))
		}
	}
}

func TestServerStatusOnlyOnGoldnet(t *testing.T) {
	f, pop := testFabric(t)
	web := findService(t, pop, func(s *hspop.Service) bool {
		return s.Kind == hspop.KindWeb && s.OpenAtCrawl && !s.ScanTimeout
	})
	if _, err := f.ServerStatusPage(web.Address, PhaseScan); err == nil {
		t.Fatal("server-status on ordinary web service")
	}
}

func TestGetRendersDeterministicBody(t *testing.T) {
	f, pop := testFabric(t)
	web := findService(t, pop, func(s *hspop.Service) bool {
		return s.Kind == hspop.KindWeb && s.Page != nil && !s.Page.TorhostDefault &&
			!s.Page.ErrorPage && s.Page.WordCount >= 50 && !s.ScanTimeout && s.HasPort(hspop.PortHTTP)
	})
	a, err := f.Get(web.Address, hspop.PortHTTP, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Get(web.Address, hspop.PortHTTP, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Body != b.Body {
		t.Fatal("page body not deterministic")
	}
	if a.StatusCode != 200 || len(a.Body) == 0 {
		t.Fatalf("response = %d, body len %d", a.StatusCode, len(a.Body))
	}
}

func TestDupOn443ServesIdenticalBody(t *testing.T) {
	f, pop := testFabric(t)
	dual := findService(t, pop, func(s *hspop.Service) bool {
		return s.Page != nil && s.Page.DupOn443 && !s.ScanTimeout
	})
	a, err := f.Get(dual.Address, hspop.PortHTTP, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Get(dual.Address, hspop.PortHTTPS, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	if a.Body != b.Body {
		t.Fatal("443 copy differs from port-80 body")
	}
}

func TestGetOnNonHTTPPort(t *testing.T) {
	f, pop := testFabric(t)
	tc := findService(t, pop, func(s *hspop.Service) bool {
		return s.Kind == hspop.KindTorChat && !s.ScanTimeout
	})
	_, err := f.Get(tc.Address, hspop.PortTorChat, PhaseScan)
	if !errors.Is(err, ErrNotHTTP) {
		t.Fatalf("err = %v, want ErrNotHTTP", err)
	}
}

func TestSSHBannerShortAndParsable(t *testing.T) {
	f, pop := testFabric(t)
	ssh := findService(t, pop, func(s *hspop.Service) bool {
		return s.Kind == hspop.KindSSH && s.Page.WordCount < 20 && !s.ScanTimeout
	})
	resp, err := f.Get(ssh.Address, hspop.PortSSH, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.Body, "SSH-2.0-") {
		t.Fatalf("banner = %q", resp.Body)
	}
	if len(strings.Fields(resp.Body)) >= 20 {
		t.Fatal("short banner has >= 20 words")
	}
}

func TestTLSCertServed(t *testing.T) {
	f, pop := testFabric(t)
	th := findService(t, pop, func(s *hspop.Service) bool {
		return s.Cert.Profile == hspop.CertTorHost && !s.ScanTimeout
	})
	cert, err := f.TLSCert(th.Address, PhaseScan)
	if err != nil {
		t.Fatal(err)
	}
	if cert.CommonName != hspop.TorHostCN {
		t.Fatalf("CN = %q, want TorHost", cert.CommonName)
	}

	noTLS := findService(t, pop, func(s *hspop.Service) bool {
		return s.Kind == hspop.KindSSH && !s.ScanTimeout
	})
	if _, err := f.TLSCert(noTLS.Address, PhaseScan); !errors.Is(err, ErrNoTLS) {
		t.Fatalf("err = %v, want ErrNoTLS", err)
	}
}

func TestProbeResultString(t *testing.T) {
	for r, want := range map[ProbeResult]string{
		ProbeOpen: "open", ProbeClosed: "closed", ProbeAbnormal: "abnormal",
		ProbeTimeout: "timeout", ProbeNoDescriptor: "no-descriptor", ProbeResult(0): "unknown",
	} {
		if got := r.String(); got != want {
			t.Fatalf("String(%d) = %q, want %q", r, got, want)
		}
	}
}

func TestTorhostDefaultPagesIdenticalAcrossServices(t *testing.T) {
	f, pop := testFabric(t)
	var bodies []string
	for _, s := range pop.Services {
		if s.Page != nil && s.Page.TorhostDefault && !s.ScanTimeout && len(s.HTTPPorts) > 0 {
			resp, err := f.Get(s.Address, s.HTTPPorts[0], PhaseScan)
			if err != nil {
				continue
			}
			bodies = append(bodies, resp.Body)
			if len(bodies) == 5 {
				break
			}
		}
	}
	if len(bodies) < 2 {
		t.Skip("not enough torhost services at this scale")
	}
	for _, b := range bodies[1:] {
		if b != bodies[0] {
			t.Fatal("torhost default pages differ across services")
		}
	}
	var unknownAddr onion.Address = "zzzzzzzzzzzzzzzz"
	if _, err := f.Get(unknownAddr, 80, PhaseScan); !errors.Is(err, ErrUnknownService) {
		t.Fatalf("err = %v, want ErrUnknownService", err)
	}
}
