// Package darknet is the reachability fabric the measurement pipelines
// probe: it answers port probes, serves TLS certificates, and renders
// HTTP bodies for the synthetic population. It stands in for the live
// network the paper scanned and crawled, reproducing the behaviours the
// pipelines depend on: descriptor churn between scan and crawl, timeouts,
// the Skynet abnormal-error fingerprint on port 55080, the Goldnet 503 +
// server-status behaviour, TorHost default pages, and 443 duplicates.
package darknet

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"torhs/internal/corpus"
	"torhs/internal/hspop"
	"torhs/internal/onion"
)

// Phase selects the measurement epoch: the February port scan or the
// content crawl two months later.
type Phase int

// Measurement phases.
const (
	PhaseScan Phase = iota + 1
	PhaseCrawl
)

// ProbeResult is the outcome of a TCP probe against one onion:port.
type ProbeResult int

// Probe outcomes.
const (
	// ProbeOpen: the port accepts connections.
	ProbeOpen ProbeResult = iota + 1
	// ProbeClosed: connection refused.
	ProbeClosed
	// ProbeAbnormal: the distinctive Skynet error on port 55080; the
	// paper counts it as open because it fingerprints the bot.
	ProbeAbnormal
	// ProbeTimeout: the probe persistently times out.
	ProbeTimeout
	// ProbeNoDescriptor: the service's descriptor cannot be fetched, so
	// no connection can even be attempted.
	ProbeNoDescriptor
)

// String names the probe result.
func (r ProbeResult) String() string {
	switch r {
	case ProbeOpen:
		return "open"
	case ProbeClosed:
		return "closed"
	case ProbeAbnormal:
		return "abnormal"
	case ProbeTimeout:
		return "timeout"
	case ProbeNoDescriptor:
		return "no-descriptor"
	default:
		return "unknown"
	}
}

// Errors returned by fabric operations.
var (
	ErrUnknownService = errors.New("darknet: unknown onion address")
	ErrNotHTTP        = errors.New("darknet: destination does not speak HTTP")
	ErrUnreachable    = errors.New("darknet: destination unreachable")
	ErrNoTLS          = errors.New("darknet: no TLS listener")
)

// HTTPResponse is a crawled HTTP(S) response.
type HTTPResponse struct {
	StatusCode int
	Body       string
	// ServerStatusAvailable marks that /server-status is exposed (the
	// Goldnet C&C misconfiguration the paper exploited).
	ServerStatusAvailable bool
}

// ServerStatus is the Apache server-status page of a C&C front.
type ServerStatus struct {
	// UptimeSeconds is the Apache uptime; fronts on the same physical
	// machine report identical uptimes.
	UptimeSeconds int64
	// TrafficBytesPerSec ≈ 330 KB/s in the paper.
	TrafficBytesPerSec float64
	// RequestsPerSec ≈ 10 in the paper, almost all POST.
	RequestsPerSec float64
	PostFraction   float64
}

// Fabric answers probes against a population.
type Fabric struct {
	pop *hspop.Population
}

// New creates a fabric over the population.
func New(pop *hspop.Population) *Fabric { return &Fabric{pop: pop} }

// HasDescriptor reports whether a descriptor for the address is fetchable
// in the given phase.
func (f *Fabric) HasDescriptor(addr onion.Address, phase Phase) bool {
	s, ok := f.pop.ByAddress(addr)
	if !ok {
		return false
	}
	if !s.DescriptorAtScan {
		return false
	}
	if phase == PhaseCrawl && !s.OpenAtCrawl {
		return false
	}
	return true
}

// Probe performs a TCP probe of addr:port in the given phase.
func (f *Fabric) Probe(addr onion.Address, port int, phase Phase) ProbeResult {
	s, ok := f.pop.ByAddress(addr)
	if !ok || !s.DescriptorAtScan {
		return ProbeNoDescriptor
	}
	if phase == PhaseCrawl && !s.OpenAtCrawl {
		return ProbeNoDescriptor
	}
	if s.ScanTimeout {
		return ProbeTimeout
	}
	state, open := s.Ports[port]
	if !open {
		return ProbeClosed
	}
	if state == hspop.PortAbnormal {
		return ProbeAbnormal
	}
	return ProbeOpen
}

// AnsweringPorts performs a full-range port sweep of addr in the given
// phase. It returns the answering ports in ascending order (including
// abnormal-error ports, which fingerprint Skynet bots) and a status:
// ProbeOpen when the sweep completed, ProbeTimeout or ProbeNoDescriptor
// when it could not.
func (f *Fabric) AnsweringPorts(addr onion.Address, phase Phase) ([]int, ProbeResult) {
	s, ok := f.pop.ByAddress(addr)
	if !ok || !s.DescriptorAtScan {
		return nil, ProbeNoDescriptor
	}
	if phase == PhaseCrawl && !s.OpenAtCrawl {
		return nil, ProbeNoDescriptor
	}
	if s.ScanTimeout {
		return nil, ProbeTimeout
	}
	ports := make([]int, 0, len(s.Ports))
	for p := range s.Ports {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	return ports, ProbeOpen
}

// TLSCert returns the certificate served on addr:443.
func (f *Fabric) TLSCert(addr onion.Address, phase Phase) (hspop.Cert, error) {
	s, ok := f.pop.ByAddress(addr)
	if !ok {
		return hspop.Cert{}, ErrUnknownService
	}
	if f.Probe(addr, hspop.PortHTTPS, phase) != ProbeOpen {
		return hspop.Cert{}, ErrNoTLS
	}
	return s.Cert, nil
}

// Get issues an HTTP(S) GET against addr:port in the given phase.
func (f *Fabric) Get(addr onion.Address, port int, phase Phase) (*HTTPResponse, error) {
	s, ok := f.pop.ByAddress(addr)
	if !ok {
		return nil, ErrUnknownService
	}
	switch f.Probe(addr, port, phase) {
	case ProbeOpen:
	case ProbeAbnormal:
		return nil, ErrUnreachable
	default:
		return nil, ErrUnreachable
	}
	if !s.SpeaksHTTP(port) {
		return nil, ErrNotHTTP
	}

	if s.Kind == hspop.KindGoldnetCC {
		return &HTTPResponse{
			StatusCode:            503,
			Body:                  "<html><head><title>503 Service Temporarily Unavailable</title></head></html>",
			ServerStatusAvailable: true,
		}, nil
	}
	body, err := renderPage(s)
	if err != nil {
		return nil, fmt.Errorf("darknet: render %s: %w", addr, err)
	}
	return &HTTPResponse{StatusCode: 200, Body: body}, nil
}

// ServerStatusPage fetches /server-status from a C&C front.
func (f *Fabric) ServerStatusPage(addr onion.Address, phase Phase) (*ServerStatus, error) {
	s, ok := f.pop.ByAddress(addr)
	if !ok {
		return nil, ErrUnknownService
	}
	if s.Kind != hspop.KindGoldnetCC {
		return nil, ErrUnreachable
	}
	if f.Probe(addr, hspop.PortHTTP, phase) != ProbeOpen {
		return nil, ErrUnreachable
	}
	// Fronts on the same physical server share one Apache instance and
	// hence one uptime; the two machines differ.
	uptime := int64(1234567)
	if s.PhysServer == 2 {
		uptime = 2345678
	}
	return &ServerStatus{
		UptimeSeconds:      uptime,
		TrafficBytesPerSec: 330 * 1024,
		RequestsPerSec:     10,
		PostFraction:       0.97,
	}, nil
}

// renderPage produces the deterministic page body for a service.
func renderPage(s *hspop.Service) (string, error) {
	p := s.Page
	if p == nil {
		return "", nil
	}
	rng := s.NewPageRNG()
	switch {
	case s.Kind == hspop.KindSSH:
		return sshBanner(s), nil
	case p.TorhostDefault:
		return torhostDefaultPage(), nil
	case p.ErrorPage:
		text, err := corpus.SampleText(rng, corpus.LangEnglish, p.WordCount-6, nil, 0)
		if err != nil {
			return "", err
		}
		return "<html><body><h1>404 Not Found</h1><p>the requested resource was not found " +
			text + "</p></body></html>", nil
	default:
		keywords, err := corpus.TopicKeywords(p.Topic)
		if err != nil {
			return "", err
		}
		extraProb := 0.30
		if p.Language != corpus.LangEnglish {
			// Non-English pages carry few English topic keywords.
			extraProb = 0.02
		}
		text, err := corpus.SampleText(rng, p.Language, p.WordCount, keywords, extraProb)
		if err != nil {
			return "", err
		}
		var sb strings.Builder
		sb.WriteString("<html><body><p>")
		sb.WriteString(text)
		sb.WriteString("</p>")
		for _, link := range s.LinksTo {
			sb.WriteString(`<a href="http://`)
			sb.WriteString(link.String())
			sb.WriteString(`/">`)
			sb.WriteString(string(link))
			sb.WriteString("</a> ")
		}
		sb.WriteString("</body></html>")
		return sb.String(), nil
	}
}

// ExtractOnionLinks parses onion-address hyperlinks out of an HTML body.
func ExtractOnionLinks(body string) []onion.Address {
	var out []onion.Address
	rest := body
	for {
		i := strings.Index(rest, `href="http://`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`href="http://`):]
		end := strings.IndexAny(rest, `/"`)
		if end < 0 {
			return out
		}
		if addr, _, err := onion.ParseAddress(rest[:end]); err == nil {
			out = append(out, addr)
		}
		rest = rest[end:]
	}
}

// sshBanner renders an SSH version banner. Long-banner services append a
// verbose MOTD (the two ≥20-word oddities the paper classified).
func sshBanner(s *hspop.Service) string {
	versions := []string{
		"SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1",
		"SSH-2.0-OpenSSH_6.0p1 Debian-4",
		"SSH-2.0-dropbear_2012.55",
	}
	rng := s.NewPageRNG()
	banner := versions[rng.Intn(len(versions))]
	if s.Page != nil && s.Page.WordCount >= 20 {
		motd, err := corpus.SampleText(rng, corpus.LangEnglish, s.Page.WordCount, nil, 0)
		if err == nil {
			banner += "\n" + motd
		}
	}
	return banner
}

// torhostDefaultPage is the TorHost free-hosting default page; every
// TorHost-hosted site that never uploaded content serves this same text.
func torhostDefaultPage() string {
	return "<html><body><h1>torhost.onion free anonymous hosting</h1><p>" +
		strings.Repeat("welcome to torhost free anonymous hidden service hosting "+
			"your site is ready upload your content to get started this page is the default page ", 3) +
		"</p></body></html>"
}

// TorhostDefaultBody exposes the default page for detector training in
// the crawler.
func TorhostDefaultBody() string { return torhostDefaultPage() }
