package relaynet

import (
	"testing"
	"time"

	"torhs/internal/consensus"
)

func TestNewSimRejectsBadConfig(t *testing.T) {
	cfg := DefaultFleetConfig(1)
	cfg.Days = 0
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("days=0 accepted")
	}
	cfg = DefaultFleetConfig(1)
	cfg.FinalRelays = cfg.InitialRelays - 10
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("shrinking bounds accepted")
	}
	cfg = DefaultFleetConfig(1)
	cfg.DailyChurn = 1.5
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("churn 1.5 accepted")
	}
}

func TestRunProducesDailyHistory(t *testing.T) {
	cfg := DefaultFleetConfig(2)
	cfg.Days = 5
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 5 {
		t.Fatalf("history length = %d, want 5", h.Len())
	}
	docs := h.All()
	for i, doc := range docs {
		want := cfg.Start.Add(time.Duration(i) * 24 * time.Hour)
		if !doc.ValidAfter.Equal(want) {
			t.Fatalf("doc %d valid-after = %v, want %v", i, doc.ValidAfter, want)
		}
	}
}

func TestFirstConsensusHasFlagMix(t *testing.T) {
	cfg := DefaultFleetConfig(3)
	cfg.Days = 1
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := h.All()[0]
	if len(doc.HSDirs()) < 50 {
		t.Fatalf("HSDirs on day 0 = %d, want a realistic mix", len(doc.HSDirs()))
	}
	if len(doc.Guards()) < 10 {
		t.Fatalf("Guards on day 0 = %d, want a realistic mix", len(doc.Guards()))
	}
}

func TestNetworkGrowth(t *testing.T) {
	cfg := DefaultFleetConfig(4)
	cfg.Days = 8
	cfg.InitialRelays = 200
	cfg.FinalRelays = 400
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := h.All()
	first := len(docs[0].Entries)
	last := len(docs[len(docs)-1].Entries)
	if last <= first {
		t.Fatalf("no growth: %d -> %d entries", first, last)
	}
	if last < 350 {
		t.Fatalf("final consensus %d entries, want near 400", last)
	}
}

func TestChurnIntroducesNewFingerprints(t *testing.T) {
	cfg := DefaultFleetConfig(5)
	cfg.Days = 6
	cfg.DailyChurn = 0.05
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	docs := h.All()
	firstSet := map[string]bool{}
	for _, e := range docs[0].Entries {
		firstSet[e.Fingerprint.Hex()] = true
	}
	fresh := 0
	for _, e := range docs[len(docs)-1].Entries {
		if !firstSet[e.Fingerprint.Hex()] {
			fresh++
		}
	}
	if fresh == 0 {
		t.Fatal("no new fingerprints after churn")
	}
}

func TestDayHookRunsEveryDay(t *testing.T) {
	cfg := DefaultFleetConfig(6)
	cfg.Days = 4
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var days []int
	_, err = sim.Run(func(day int, now time.Time) {
		days = append(days, day)
		if !now.Equal(cfg.Start.Add(time.Duration(day) * 24 * time.Hour)) {
			t.Errorf("hook day %d wrong instant %v", day, now)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 4 {
		t.Fatalf("hook ran %d times, want 4", len(days))
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []int {
		cfg := DefaultFleetConfig(7)
		cfg.Days = 3
		sim, err := NewSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := sim.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for _, d := range h.All() {
			sizes = append(sizes, len(d.Entries), len(d.HSDirs()))
		}
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestConsensusRespectsPerIPCap(t *testing.T) {
	cfg := DefaultFleetConfig(8)
	cfg.Days = 2
	sim, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sim.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	th := consensus.DefaultThresholds()
	for _, doc := range h.All() {
		perIP := map[string]int{}
		for _, e := range doc.Entries {
			perIP[e.IP]++
			if perIP[e.IP] > th.MaxPerIP {
				t.Fatalf("IP %s has %d consensus entries", e.IP, perIP[e.IP])
			}
		}
	}
}
