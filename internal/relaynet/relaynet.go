// Package relaynet builds and drives relay fleets: honest relay
// populations with realistic bandwidth/uptime mixes, daily consensus
// publication into a history archive, churn, and network growth. It is
// the scenario engine behind both the trawling experiments (which need a
// single rich consensus) and the Section VII tracking detection (which
// needs years of history with planted trackers).
package relaynet

import (
	"fmt"
	"math/rand"
	"time"

	"torhs/internal/consensus"
	"torhs/internal/relay"
)

// FleetConfig describes a simulated relay network run.
type FleetConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Start is the instant of the first published consensus.
	Start time.Time
	// Days is how many daily consensuses to publish.
	Days int
	// InitialRelays and FinalRelays bound linear network growth (the
	// paper's HSDir count grew 757 → 1,862 over the Silk Road period).
	InitialRelays int
	FinalRelays   int
	// DailyChurn is the fraction of relays replaced each day (stop one,
	// start a fresh one).
	DailyChurn float64
	// Thresholds are the flag-assignment parameters.
	Thresholds consensus.Thresholds
}

// DefaultFleetConfig returns a small but realistic network for tests.
func DefaultFleetConfig(seed int64) FleetConfig {
	return FleetConfig{
		Seed:          seed,
		Start:         time.Date(2013, 2, 1, 0, 0, 0, 0, time.UTC),
		Days:          10,
		InitialRelays: 400,
		FinalRelays:   450,
		DailyChurn:    0.01,
		Thresholds:    consensus.DefaultThresholds(),
	}
}

// Sim is a running relay-network simulation.
type Sim struct {
	cfg     FleetConfig
	rng     *rand.Rand
	auth    *consensus.Authority
	relays  []*relay.Relay
	history *consensus.History
	nextID  relay.ID
	// day is the next day StepDay will simulate (the day cursor the
	// streaming consumers advance one window at a time).
	day int
}

// NewSim constructs the simulation and bootstraps the initial fleet with
// staggered start times (so the first consensus already contains Guard-
// and HSDir-flagged relays, as the real network always does).
func NewSim(cfg FleetConfig) (*Sim, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("relaynet: days %d must be positive", cfg.Days)
	}
	if cfg.InitialRelays <= 0 || cfg.FinalRelays < cfg.InitialRelays {
		return nil, fmt.Errorf("relaynet: relay bounds %d..%d invalid",
			cfg.InitialRelays, cfg.FinalRelays)
	}
	if cfg.DailyChurn < 0 || cfg.DailyChurn > 1 {
		return nil, fmt.Errorf("relaynet: churn %v out of [0,1]", cfg.DailyChurn)
	}
	s := &Sim{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		auth:    consensus.NewAuthority(cfg.Thresholds),
		history: consensus.NewHistory(),
	}
	for i := 0; i < cfg.InitialRelays; i++ {
		// Stagger initial uptimes from 2 hours to ~100 days so the flag
		// mix is realistic from day one.
		age := time.Duration(2+s.rng.Intn(100*24)) * time.Hour
		s.addRelay(cfg.Start.Add(-age))
	}
	return s, nil
}

// addRelay creates, starts, and registers a fresh honest relay.
func (s *Sim) addRelay(startAt time.Time) *relay.Relay {
	id := s.nextID
	s.nextID++
	r := relay.New(relay.Config{
		ID:        id,
		Nickname:  fmt.Sprintf("relay%05d", id),
		IP:        s.randomIP(),
		ORPort:    9001,
		Bandwidth: s.randomBandwidth(),
	}, s.rng)
	r.Start(startAt)
	s.relays = append(s.relays, r)
	s.auth.Register(r)
	return r
}

func (s *Sim) randomIP() string {
	return fmt.Sprintf("%d.%d.%d.%d",
		20+s.rng.Intn(200), s.rng.Intn(256), s.rng.Intn(256), 1+s.rng.Intn(254))
}

// randomBandwidth draws a heavy-tailed bandwidth (KB/s): many slow
// relays, a few fast ones.
func (s *Sim) randomBandwidth() int {
	base := 50 + s.rng.Intn(300)
	if s.rng.Float64() < 0.2 {
		base += s.rng.Intn(5000)
	}
	return base
}

// AddAttackerRelay registers an externally constructed relay (tracker,
// trawler instance) with the authority.
func (s *Sim) AddAttackerRelay(r *relay.Relay) { s.auth.Register(r) }

// NewRelayID hands out a fresh unique relay ID for attacker fleets.
func (s *Sim) NewRelayID() relay.ID {
	id := s.nextID
	s.nextID++
	return id
}

// Authority exposes the directory authority.
func (s *Sim) Authority() *consensus.Authority { return s.auth }

// History exposes the consensus archive built so far.
func (s *Sim) History() *consensus.History { return s.history }

// RNG exposes the simulation's random source for scenario scripts.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// DayHook runs before each day's consensus is published. now is the
// consensus ValidAfter instant for that day.
type DayHook func(day int, now time.Time)

// StepDay advances the simulation by exactly one day — growth toward
// FinalRelays, churn, the day hook — and returns that day's published
// consensus without archiving it. This is the streaming window source:
// callers that fold documents online (the tracking sweep's sliding ring)
// step the simulation one consensus at a time and let each document go
// out of scope after its fold, instead of materializing the full history.
// Run is implemented on top of StepDay, so for a fixed seed the stepped
// document sequence is byte-identical to the archived one. Returns an
// error once all cfg.Days days have been stepped.
func (s *Sim) StepDay(hook DayHook) (*consensus.Document, error) {
	cfg := s.cfg
	if s.day >= cfg.Days {
		return nil, fmt.Errorf("relaynet: all %d days already stepped", cfg.Days)
	}
	day := s.day
	now := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)

	// Linear growth toward FinalRelays.
	target := cfg.InitialRelays
	if cfg.Days > 1 {
		target += (cfg.FinalRelays - cfg.InitialRelays) * day / (cfg.Days - 1)
	}
	for s.liveCount() < target {
		s.addRelay(now.Add(-time.Duration(s.rng.Intn(48)) * time.Hour))
	}

	// Churn: replace a random fraction of live relays.
	nChurn := int(float64(s.liveCount()) * cfg.DailyChurn)
	for i := 0; i < nChurn; i++ {
		s.stopRandomLive()
		s.addRelay(now.Add(-time.Duration(s.rng.Intn(12)) * time.Hour))
	}

	if hook != nil {
		hook(day, now)
	}
	s.day++
	return s.auth.Publish(now), nil
}

// Day returns the next day StepDay will simulate (0 before the first
// step, cfg.Days once the run is exhausted).
func (s *Sim) Day() int { return s.day }

// Days returns the configured number of daily consensuses.
func (s *Sim) Days() int { return s.cfg.Days }

// Run publishes one consensus per day for cfg.Days days, applying growth
// and churn, and invoking hook (if non-nil) before each publication.
// It returns the accumulated history.
func (s *Sim) Run(hook DayHook) (*consensus.History, error) {
	for s.day < s.cfg.Days {
		day := s.day
		doc, err := s.StepDay(hook)
		if err != nil {
			return nil, err
		}
		if err := s.history.Append(doc); err != nil {
			return nil, fmt.Errorf("relaynet: day %d: %w", day, err)
		}
	}
	return s.history, nil
}

func (s *Sim) liveCount() int {
	n := 0
	for _, r := range s.relays {
		if r.Running() {
			n++
		}
	}
	return n
}

func (s *Sim) stopRandomLive() {
	// Collect indexes of running relays and stop one at random.
	live := make([]int, 0, len(s.relays))
	for i, r := range s.relays {
		if r.Running() {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return
	}
	s.relays[live[s.rng.Intn(len(live))]].Stop()
}
