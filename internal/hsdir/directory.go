package hsdir

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"torhs/internal/onion"
)

// Directory is the descriptor store operated by one HSDir relay.
// Descriptors expire after TTL (24 h on the 2013 network: directories
// responsible for the previous time period erase old descriptors). Every
// fetch is recorded in the request log — this is exactly the vantage point
// the paper's popularity measurement exploits.
//
// The store is a pointer-free entry arena plus an open-addressed probe
// table of int32 references keyed by the descriptor IDs' own leading
// bytes (the same scheme as the popularity index): descriptor IDs are
// SHA-1 outputs, already uniformly distributed, so lookups need no hash
// function and no map. Each distinct ID ever published owns exactly one
// arena entry for the directory's lifetime; expiry tombstones the entry
// in place and republication revives it. The arena doubles as the
// "published ever" set of the paper's 10% statistic, and the IDs ever
// fetched are a bitset over arena indexes — replacing the two
// map[DescriptorID]bool sets of the map-based store.
type Directory struct {
	mu sync.Mutex

	fingerprint onion.Fingerprint
	ttl         time.Duration

	slots   []int32 // 1-based indexes into entries; 0 = empty
	mask    uint64
	entries []dirEntry
	descs   []*onion.Descriptor // descs[i] belongs to entries[i]
	live    int

	// requested marks arena indexes whose descriptor was ever fetched
	// while stored — the numerator of the paper's "only 10% of published
	// descriptors were ever requested" statistic. Bits are set with
	// atomic OR so the lock-free Probe path can record them while other
	// probes run.
	requested []uint32

	log *RequestLog
}

// dirEntry is one arena slot: a descriptor ID ever published here and its
// current expiry (unix nanoseconds; 0 = tombstoned, not currently
// stored). The entry array holds no pointers, so the garbage collector
// never scans it.
type dirEntry struct {
	id        onion.DescriptorID
	expiresAt int64
}

// NewDirectory creates a directory for the relay with fingerprint fp.
// ttl <= 0 defaults to 24 hours.
func NewDirectory(fp onion.Fingerprint, ttl time.Duration) *Directory {
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	return &Directory{
		fingerprint: fp,
		ttl:         ttl,
		log:         NewRequestLog(),
	}
}

// Fingerprint returns the operating relay's fingerprint.
func (d *Directory) Fingerprint() onion.Fingerprint { return d.fingerprint }

// lookup returns the arena index of id, or -1.
//
//torhs:hotpath
func (d *Directory) lookup(id onion.DescriptorID) int32 {
	if len(d.slots) == 0 {
		return -1
	}
	slot := binary.BigEndian.Uint64(id[0:8]) & d.mask
	for {
		ref := d.slots[slot]
		if ref == 0 {
			return -1
		}
		if d.entries[ref-1].id == id {
			return ref - 1
		}
		slot = (slot + 1) & d.mask
	}
}

// grow (re)builds the probe table at double capacity (≤50% load).
func (d *Directory) grow() {
	size := 2 * len(d.slots)
	if size < 16 {
		size = 1 << bits.Len(uint(2*(len(d.entries)+1)))
		if size < 16 {
			size = 16
		}
	}
	d.slots = make([]int32, size)
	d.mask = uint64(size - 1)
	for i := range d.entries {
		slot := binary.BigEndian.Uint64(d.entries[i].id[0:8]) & d.mask
		for d.slots[slot] != 0 {
			slot = (slot + 1) & d.mask
		}
		d.slots[slot] = int32(i + 1)
	}
}

// Publish stores a descriptor at instant now, replacing any previous
// descriptor under the same ID and refreshing its expiry. Steady-state
// republication (an ID this directory has seen before) performs zero heap
// allocations.
//
//torhs:hotpath
func (d *Directory) Publish(desc *onion.Descriptor, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	expires := now.Add(d.ttl).UnixNano()
	if i := d.lookup(desc.DescID); i >= 0 {
		if d.entries[i].expiresAt == 0 {
			d.live++
		}
		d.entries[i].expiresAt = expires
		d.descs[i] = desc
		return
	}
	if 2*(len(d.entries)+1) > len(d.slots) {
		d.grow()
	}
	d.entries = append(d.entries, dirEntry{id: desc.DescID, expiresAt: expires})
	d.descs = append(d.descs, desc)
	if w := (len(d.entries) + 31) / 32; w > len(d.requested) {
		d.requested = append(d.requested, 0)
	}
	d.live++
	slot := binary.BigEndian.Uint64(desc.DescID[0:8]) & d.mask
	for d.slots[slot] != 0 {
		slot = (slot + 1) & d.mask
	}
	d.slots[slot] = int32(len(d.entries))
}

// markRequested sets the requested bit for arena index i with an atomic
// OR, so concurrent Probe calls may record hits without the lock.
func (d *Directory) markRequested(i int32) {
	atomic.OrUint32(&d.requested[i/32], 1<<uint(i%32))
}

// isRequested reports the requested bit for arena index i.
func (d *Directory) isRequested(i int32) bool {
	return atomic.LoadUint32(&d.requested[i/32])&(1<<uint(i%32)) != 0
}

// Fetch looks up a descriptor by ID at instant now, recording the request
// in the directory's own log. Expired descriptors are treated as absent
// (and reaped).
func (d *Directory) Fetch(id onion.DescriptorID, now time.Time) (*onion.Descriptor, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var desc *onion.Descriptor
	found := false
	if i := d.lookup(id); i >= 0 && d.entries[i].expiresAt != 0 {
		if now.UnixNano() > d.entries[i].expiresAt {
			d.entries[i].expiresAt = 0 // reap in place
			d.live--
		} else {
			found = true
			desc = d.descs[i]
			d.markRequested(i)
		}
	}
	d.log.record(Request{At: now, DescID: id, Found: found})
	return desc, found
}

// Probe is the lock-free fetch used on the driven-traffic hot path: it
// looks up a descriptor by ID, marks it as requested on a hit, and leaves
// request logging to the caller (DriveWindow batches the records into the
// per-directory logs once per window). Expired descriptors are treated as
// absent but not reaped. Probe performs zero heap allocations and may run
// concurrently with other Probe calls; callers must not run it
// concurrently with Publish, Fetch, or Expire.
//
//torhs:hotpath
func (d *Directory) Probe(id onion.DescriptorID, now time.Time) (*onion.Descriptor, bool) {
	i := d.lookup(id)
	if i < 0 {
		return nil, false
	}
	exp := d.entries[i].expiresAt
	if exp == 0 || now.UnixNano() > exp {
		return nil, false
	}
	d.markRequested(i)
	return d.descs[i], true
}

// Expire reaps all descriptors that have expired as of now and returns the
// number removed.
func (d *Directory) Expire(now time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	nowN := now.UnixNano()
	n := 0
	for i := range d.entries {
		if e := &d.entries[i]; e.expiresAt != 0 && nowN > e.expiresAt {
			e.expiresAt = 0
			d.live--
			n++
		}
	}
	return n
}

// All returns the currently stored descriptors in publication order. This
// is the harvesting vantage point: an attacker operating the directory
// reads out every descriptor uploaded to it. Callers that only iterate
// should prefer the zero-copy Each.
func (d *Directory) All() []*onion.Descriptor {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*onion.Descriptor, 0, d.live)
	for i := range d.entries {
		if d.entries[i].expiresAt != 0 {
			out = append(out, d.descs[i])
		}
	}
	return out
}

// Each visits the currently stored descriptors in publication order
// without copying a snapshot. The directory's lock is held for the whole
// iteration; fn must not call back into the directory.
func (d *Directory) Each(fn func(*onion.Descriptor)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.entries {
		if d.entries[i].expiresAt != 0 {
			fn(d.descs[i])
		}
	}
}

// Stored returns the number of live descriptors.
func (d *Directory) Stored() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.live
}

// Log returns the directory's request log.
func (d *Directory) Log() *RequestLog { return d.log }

// PublishedEver returns how many distinct descriptor IDs were ever stored.
func (d *Directory) PublishedEver() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// RequestedPublishedEver returns how many distinct *published* descriptor
// IDs were ever fetched — numerator of the paper's 10% statistic.
func (d *Directory) RequestedPublishedEver() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for i := range d.requested {
		n += bits.OnesCount32(atomic.LoadUint32(&d.requested[i]))
	}
	return n
}

// PublishedIDs returns every descriptor ID ever stored on this directory,
// in publication order. Callers that only iterate should prefer the
// zero-copy EachPublishedID.
func (d *Directory) PublishedIDs() []onion.DescriptorID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]onion.DescriptorID, len(d.entries))
	for i := range d.entries {
		out[i] = d.entries[i].id
	}
	return out
}

// EachPublishedID visits every descriptor ID ever stored on this
// directory, in publication order, without copying a snapshot. The lock
// is held for the whole iteration; fn must not call back into the
// directory.
func (d *Directory) EachPublishedID(fn func(onion.DescriptorID)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.entries {
		fn(d.entries[i].id)
	}
}

// RequestedPublishedIDs returns the stored descriptor IDs that were ever
// fetched by a client. Callers that only iterate should prefer the
// zero-copy EachRequestedPublishedID.
func (d *Directory) RequestedPublishedIDs() []onion.DescriptorID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]onion.DescriptorID, 0, len(d.entries))
	for i := range d.entries {
		if d.isRequested(int32(i)) {
			out = append(out, d.entries[i].id)
		}
	}
	return out
}

// EachRequestedPublishedID visits the stored descriptor IDs that were
// ever fetched by a client, in publication order, without copying a
// snapshot. The lock is held for the whole iteration; fn must not call
// back into the directory.
func (d *Directory) EachRequestedPublishedID(fn func(onion.DescriptorID)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.entries {
		if d.isRequested(int32(i)) {
			fn(d.entries[i].id)
		}
	}
}
