package hsdir

import (
	"sync"
	"time"

	"torhs/internal/onion"
)

// Directory is the descriptor store operated by one HSDir relay.
// Descriptors expire after TTL (24 h on the 2013 network: directories
// responsible for the previous time period erase old descriptors). Every
// fetch is recorded in the request log — this is exactly the vantage point
// the paper's popularity measurement exploits.
type Directory struct {
	mu sync.Mutex

	fingerprint onion.Fingerprint
	ttl         time.Duration

	store map[onion.DescriptorID]storedDescriptor
	log   *RequestLog

	// requestedIDs tracks which stored descriptor IDs were ever fetched,
	// for the paper's "only 10% of published descriptors were ever
	// requested" statistic.
	publishedEver map[onion.DescriptorID]bool
	requestedEver map[onion.DescriptorID]bool
}

type storedDescriptor struct {
	desc      *onion.Descriptor
	expiresAt time.Time
}

// NewDirectory creates a directory for the relay with fingerprint fp.
// ttl <= 0 defaults to 24 hours.
func NewDirectory(fp onion.Fingerprint, ttl time.Duration) *Directory {
	if ttl <= 0 {
		ttl = 24 * time.Hour
	}
	return &Directory{
		fingerprint:   fp,
		ttl:           ttl,
		store:         make(map[onion.DescriptorID]storedDescriptor),
		log:           NewRequestLog(),
		publishedEver: make(map[onion.DescriptorID]bool),
		requestedEver: make(map[onion.DescriptorID]bool),
	}
}

// Fingerprint returns the operating relay's fingerprint.
func (d *Directory) Fingerprint() onion.Fingerprint { return d.fingerprint }

// Publish stores a descriptor at instant now, replacing any previous
// descriptor under the same ID and refreshing its expiry.
func (d *Directory) Publish(desc *onion.Descriptor, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.store[desc.DescID] = storedDescriptor{desc: desc, expiresAt: now.Add(d.ttl)}
	d.publishedEver[desc.DescID] = true
}

// Fetch looks up a descriptor by ID at instant now, recording the request.
// Expired descriptors are treated as absent (and reaped).
func (d *Directory) Fetch(id onion.DescriptorID, now time.Time) (*onion.Descriptor, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	sd, ok := d.store[id]
	if ok && now.After(sd.expiresAt) {
		delete(d.store, id)
		ok = false
	}
	d.log.record(Request{At: now, DescID: id, Found: ok})
	if ok {
		d.requestedEver[id] = true
		return sd.desc, true
	}
	return nil, false
}

// Expire reaps all descriptors that have expired as of now and returns the
// number removed.
func (d *Directory) Expire(now time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for id, sd := range d.store {
		if now.After(sd.expiresAt) {
			delete(d.store, id)
			n++
		}
	}
	return n
}

// All returns the currently stored descriptors in unspecified order. This
// is the harvesting vantage point: an attacker operating the directory
// reads out every descriptor uploaded to it.
func (d *Directory) All() []*onion.Descriptor {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*onion.Descriptor, 0, len(d.store))
	for _, sd := range d.store {
		out = append(out, sd.desc)
	}
	return out
}

// Stored returns the number of live descriptors.
func (d *Directory) Stored() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.store)
}

// Log returns the directory's request log.
func (d *Directory) Log() *RequestLog { return d.log }

// PublishedEver returns how many distinct descriptor IDs were ever stored.
func (d *Directory) PublishedEver() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.publishedEver)
}

// RequestedPublishedEver returns how many distinct *published* descriptor
// IDs were ever fetched — numerator of the paper's 10% statistic.
func (d *Directory) RequestedPublishedEver() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for id := range d.requestedEver {
		if d.publishedEver[id] {
			n++
		}
	}
	return n
}

// PublishedIDs returns every descriptor ID ever stored on this directory.
func (d *Directory) PublishedIDs() []onion.DescriptorID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]onion.DescriptorID, 0, len(d.publishedEver))
	for id := range d.publishedEver {
		out = append(out, id)
	}
	return out
}

// RequestedPublishedIDs returns the stored descriptor IDs that were ever
// fetched by a client.
func (d *Directory) RequestedPublishedIDs() []onion.DescriptorID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]onion.DescriptorID, 0, len(d.requestedEver))
	for id := range d.requestedEver {
		if d.publishedEver[id] {
			out = append(out, id)
		}
	}
	return out
}
