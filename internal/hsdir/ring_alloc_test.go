package hsdir

import (
	"math/rand"
	"testing"

	"torhs/internal/onion"
)

// TestResponsibleIntoMatchesResponsible checks the append-into variant
// against the allocating one across random descriptor IDs, including
// buffer reuse across calls.
func TestResponsibleIntoMatchesResponsible(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	fps := make([]onion.Fingerprint, 200)
	for i := range fps {
		fps[i] = onion.RandomFingerprint(rng)
	}
	ring := NewRing(fps)
	buf := make([]onion.Fingerprint, 0, onion.SpreadPerReplica)
	for i := 0; i < 200; i++ {
		var d onion.DescriptorID
		f := onion.RandomFingerprint(rng)
		copy(d[:], f[:])
		want := ring.Responsible(d, onion.SpreadPerReplica)
		buf = ring.ResponsibleInto(buf[:0], d, onion.SpreadPerReplica)
		if len(buf) != len(want) {
			t.Fatalf("len %d, want %d", len(buf), len(want))
		}
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("fingerprint %d: %x want %x", j, buf[j], want[j])
			}
		}
	}
	// Empty ring appends nothing.
	empty := NewRing(nil)
	var d onion.DescriptorID
	if got := empty.ResponsibleInto(buf[:0], d, 3); len(got) != 0 {
		t.Fatalf("empty ring appended %d fingerprints", len(got))
	}
}

// TestResponsibleIntoAllocsZero locks in the zero-allocation guarantee
// when the scratch buffer has capacity.
func TestResponsibleIntoAllocsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	fps := make([]onion.Fingerprint, 1400)
	for i := range fps {
		fps[i] = onion.RandomFingerprint(rng)
	}
	ring := NewRing(fps)
	var d onion.DescriptorID
	f := onion.RandomFingerprint(rng)
	copy(d[:], f[:])
	buf := make([]onion.Fingerprint, 0, onion.SpreadPerReplica)
	if avg := testing.AllocsPerRun(100, func() {
		buf = ring.ResponsibleInto(buf[:0], d, onion.SpreadPerReplica)
	}); avg != 0 {
		t.Errorf("ResponsibleInto: %v allocs/op, want 0", avg)
	}
}
