package hsdir

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"torhs/internal/onion"
)

// refDirectory is the map-based reference store the probe-table Directory
// replaced (PR 4): a map of stored descriptors plus two "ever" sets. The
// property suite drives both implementations through the same random
// publish/expire/fetch/probe interleavings and requires every observable
// to agree.
type refDirectory struct {
	ttl       time.Duration
	store     map[onion.DescriptorID]refStored
	published map[onion.DescriptorID]bool
	requested map[onion.DescriptorID]bool
	total     int
	found     int
	counts    map[onion.DescriptorID]int
}

type refStored struct {
	desc      *onion.Descriptor
	expiresAt time.Time
}

func newRefDirectory(ttl time.Duration) *refDirectory {
	return &refDirectory{
		ttl:       ttl,
		store:     make(map[onion.DescriptorID]refStored),
		published: make(map[onion.DescriptorID]bool),
		requested: make(map[onion.DescriptorID]bool),
		counts:    make(map[onion.DescriptorID]int),
	}
}

func (r *refDirectory) publish(desc *onion.Descriptor, now time.Time) {
	r.store[desc.DescID] = refStored{desc: desc, expiresAt: now.Add(r.ttl)}
	r.published[desc.DescID] = true
}

func (r *refDirectory) fetch(id onion.DescriptorID, now time.Time) (*onion.Descriptor, bool) {
	sd, ok := r.store[id]
	if ok && now.After(sd.expiresAt) {
		delete(r.store, id)
		ok = false
	}
	r.total++
	r.counts[id]++
	if ok {
		r.found++
		r.requested[id] = true
		return sd.desc, true
	}
	return nil, false
}

// probe mirrors Directory.Probe: no reap, no log record.
func (r *refDirectory) probe(id onion.DescriptorID, now time.Time) (*onion.Descriptor, bool) {
	sd, ok := r.store[id]
	if !ok || now.After(sd.expiresAt) {
		return nil, false
	}
	r.requested[id] = true
	return sd.desc, true
}

func (r *refDirectory) expire(now time.Time) int {
	n := 0
	for id, sd := range r.store {
		if now.After(sd.expiresAt) {
			delete(r.store, id)
			n++
		}
	}
	return n
}

func sortedIDs(ids []onion.DescriptorID) []onion.DescriptorID {
	out := make([]onion.DescriptorID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (r *refDirectory) check(t *testing.T, dir *Directory, step int) {
	t.Helper()
	if got, want := dir.Stored(), len(r.store); got != want {
		t.Fatalf("step %d: Stored = %d, want %d", step, got, want)
	}
	if got, want := dir.PublishedEver(), len(r.published); got != want {
		t.Fatalf("step %d: PublishedEver = %d, want %d", step, got, want)
	}
	if got, want := dir.RequestedPublishedEver(), len(r.requested); got != want {
		t.Fatalf("step %d: RequestedPublishedEver = %d, want %d", step, got, want)
	}
	if got, want := dir.Log().Total(), r.total; got != want {
		t.Fatalf("step %d: log total = %d, want %d", step, got, want)
	}

	// Stored descriptor set (by ID).
	var gotLive []onion.DescriptorID
	dir.Each(func(d *onion.Descriptor) { gotLive = append(gotLive, d.DescID) })
	wantLive := make([]onion.DescriptorID, 0, len(r.store))
	for id := range r.store {
		wantLive = append(wantLive, id)
	}
	gotLive, wantLive = sortedIDs(gotLive), sortedIDs(wantLive)
	for i := range gotLive {
		if i >= len(wantLive) || gotLive[i] != wantLive[i] {
			t.Fatalf("step %d: stored descriptor sets diverge", step)
		}
	}
	if len(gotLive) != len(wantLive) {
		t.Fatalf("step %d: stored descriptor sets diverge in size", step)
	}

	// Ever-published and ever-requested sets.
	var gotPub []onion.DescriptorID
	dir.EachPublishedID(func(id onion.DescriptorID) { gotPub = append(gotPub, id) })
	if len(gotPub) != len(r.published) {
		t.Fatalf("step %d: published set size = %d, want %d", step, len(gotPub), len(r.published))
	}
	for _, id := range gotPub {
		if !r.published[id] {
			t.Fatalf("step %d: unexpected published ID %x", step, id)
		}
	}
	var gotReq []onion.DescriptorID
	dir.EachRequestedPublishedID(func(id onion.DescriptorID) { gotReq = append(gotReq, id) })
	if len(gotReq) != len(r.requested) {
		t.Fatalf("step %d: requested set size = %d, want %d", step, len(gotReq), len(r.requested))
	}
	for _, id := range gotReq {
		if !r.requested[id] {
			t.Fatalf("step %d: unexpected requested ID %x", step, id)
		}
	}

	// Per-ID request counts.
	counts := dir.Log().CountsByID()
	if len(counts) != len(r.counts) {
		t.Fatalf("step %d: count map size = %d, want %d", step, len(counts), len(r.counts))
	}
	for id, n := range counts {
		if r.counts[id] != n {
			t.Fatalf("step %d: count[%x] = %d, want %d", step, id, n, r.counts[id])
		}
	}
}

// TestDirectoryMatchesMapReference drives the compact probe-table store
// and the old map-based semantics through identical random interleavings
// of publish, republish, expire, fetch, and probe, and requires every
// observable statistic and set to stay equal throughout.
func TestDirectoryMatchesMapReference(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ttl := 24 * time.Hour
		dir := NewDirectory(onion.RandomFingerprint(rng), ttl)
		ref := newRefDirectory(ttl)

		// A fixed pool of descriptors (so republication and repeated
		// fetches are common) plus never-published query IDs.
		descs := make([]*onion.Descriptor, 40)
		for i := range descs {
			descs[i] = makeDescriptor(rng, at(0))
		}
		bogus := make([]onion.DescriptorID, 10)
		for i := range bogus {
			f := onion.RandomFingerprint(rng)
			copy(bogus[i][:], f[:])
		}

		now := at(0)
		for step := 0; step < 600; step++ {
			// Time advances randomly so descriptors keep expiring.
			now = now.Add(time.Duration(rng.Intn(5)) * time.Hour)
			pick := func() onion.DescriptorID {
				if rng.Intn(5) == 0 {
					return bogus[rng.Intn(len(bogus))]
				}
				return descs[rng.Intn(len(descs))].DescID
			}
			switch op := rng.Intn(10); {
			case op < 4: // publish / republish
				d := descs[rng.Intn(len(descs))]
				dir.Publish(d, now)
				ref.publish(d, now)
			case op < 7: // locked fetch (logs, reaps)
				id := pick()
				gd, gok := dir.Fetch(id, now)
				wd, wok := ref.fetch(id, now)
				if gok != wok || gd != wd {
					t.Fatalf("seed %d step %d: Fetch(%x) = (%v,%v), want (%v,%v)",
						seed, step, id, gd, gok, wd, wok)
				}
			case op < 9: // lock-free probe (no log, no reap)
				id := pick()
				gd, gok := dir.Probe(id, now)
				wd, wok := ref.probe(id, now)
				if gok != wok || gd != wd {
					t.Fatalf("seed %d step %d: Probe(%x) = (%v,%v), want (%v,%v)",
						seed, step, id, gd, gok, wd, wok)
				}
			default: // bulk expiry
				if got, want := dir.Expire(now), ref.expire(now); got != want {
					t.Fatalf("seed %d step %d: Expire = %d, want %d", seed, step, got, want)
				}
			}
			if step%97 == 0 {
				ref.check(t, dir, step)
			}
		}
		ref.check(t, dir, 600)
	}
}
