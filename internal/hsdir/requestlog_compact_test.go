package hsdir

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"torhs/internal/onion"
)

// compactTestRequests builds a request stream with repeated descriptor
// IDs and a mix of found/not-found hits.
func compactTestRequests(seed int64, n, distinct int) []Request {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]onion.DescriptorID, distinct)
	for i := range ids {
		f := onion.RandomFingerprint(rng)
		copy(ids[i][:], f[:])
	}
	at := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			At:     at.Add(time.Duration(i) * time.Second),
			DescID: ids[rng.Intn(distinct)],
			Found:  rng.Intn(5) != 0,
		}
	}
	return reqs
}

// assertSameAggregates requires every aggregate query of the two logs to
// agree — the compact-mode contract.
func assertSameAggregates(t *testing.T, raw, compact *RequestLog) {
	t.Helper()
	if got, want := compact.Total(), raw.Total(); got != want {
		t.Errorf("Total = %d, want %d", got, want)
	}
	if got, want := compact.UniqueIDs(), raw.UniqueIDs(); got != want {
		t.Errorf("UniqueIDs = %d, want %d", got, want)
	}
	if got, want := compact.FoundFraction(), raw.FoundFraction(); got != want {
		t.Errorf("FoundFraction = %v, want %v", got, want)
	}
	if got, want := compact.CountsByID(), raw.CountsByID(); !reflect.DeepEqual(got, want) {
		t.Errorf("CountsByID diverged: %d vs %d entries", len(got), len(want))
	}
	gotEach := make(map[onion.DescriptorID]int)
	compact.EachCount(func(id onion.DescriptorID, n int) { gotEach[id] += n })
	if want := raw.CountsByID(); !reflect.DeepEqual(gotEach, want) {
		t.Error("EachCount fold diverged from the raw counts")
	}
}

func TestCompactLogAggregatesMatchRaw(t *testing.T) {
	reqs := compactTestRequests(1, 5000, 60)
	raw, compact := NewRequestLog(), NewCompactLog()
	// Interleave single records and batches so both arrival paths fold.
	for i := 0; i < 100; i++ {
		raw.Record(reqs[i])
		compact.Record(reqs[i])
	}
	raw.RecordBatch(reqs[100:])
	compact.RecordBatch(reqs[100:])

	assertSameAggregates(t, raw, compact)
	if !compact.Compacted() || raw.Compacted() {
		t.Fatal("Compacted() mode flags wrong")
	}
	if got := raw.Requests(); len(got) != len(reqs) {
		t.Fatalf("raw log retained %d requests, want %d", len(got), len(reqs))
	}
	if got := compact.Requests(); got != nil {
		t.Fatalf("compact log returned %d raw requests, want nil", len(got))
	}
}

func TestCompactMidStreamMatchesRaw(t *testing.T) {
	reqs := compactTestRequests(2, 2000, 40)
	raw, mid := NewRequestLog(), NewRequestLog()
	raw.RecordBatch(reqs)
	// mid folds half raw, compacts (retiring the records), then folds the
	// rest in compact mode — the trawl per-step retirement shape.
	mid.RecordBatch(reqs[:1000])
	mid.Compact()
	mid.Compact() // idempotent
	if !mid.Compacted() {
		t.Fatal("Compact did not switch the log to compact mode")
	}
	mid.RecordBatch(reqs[1000:])
	assertSameAggregates(t, raw, mid)
}

func TestCompactStateRoundTrip(t *testing.T) {
	reqs := compactTestRequests(3, 1500, 30)
	for _, mode := range []string{"raw", "compact"} {
		t.Run(mode, func(t *testing.T) {
			src := NewRequestLog()
			if mode == "compact" {
				src = NewCompactLog()
			}
			src.RecordBatch(reqs)
			counts, total, found := src.CompactState()
			back := NewRequestLog()
			back.RestoreCompact(counts, total, found)
			assertSameAggregates(t, src, back)
			// RestoreCompact copies: mutating the caller's map afterwards
			// must not reach into the log.
			for id := range counts {
				counts[id] += 99
				break
			}
			if !reflect.DeepEqual(back.CountsByID(), src.CountsByID()) {
				t.Fatal("RestoreCompact aliased the caller's counts map")
			}
		})
	}
}

func TestMergeMixedCompactAndRaw(t *testing.T) {
	reqs := compactTestRequests(4, 3000, 50)
	// Reference: everything folded raw into one log.
	ref := NewRequestLog()
	ref.RecordBatch(reqs)

	rawSrc := NewRequestLog()
	rawSrc.RecordBatch(reqs[:1000])
	compactSrc := NewCompactLog()
	compactSrc.RecordBatch(reqs[1000:2000])
	dst := NewRequestLog()
	dst.RecordBatch(reqs[2000:])

	dst.MergeAll([]*RequestLog{rawSrc, compactSrc})
	if !dst.Compacted() {
		t.Fatal("merging a compact source must leave the destination compact")
	}
	assertSameAggregates(t, ref, dst)

	// Merge (the pairwise form) with a compact operand routes through the
	// same counts fold.
	dst2 := NewRequestLog()
	dst2.RecordBatch(reqs[:2000])
	tail := NewCompactLog()
	tail.RecordBatch(reqs[2000:])
	dst2.Merge(tail)
	if !dst2.Compacted() {
		t.Fatal("pairwise Merge with a compact source must leave the destination compact")
	}
	assertSameAggregates(t, ref, dst2)
}
