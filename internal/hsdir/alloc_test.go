package hsdir

import (
	"math/rand"
	"testing"
	"time"

	"torhs/internal/onion"
)

// TestPublishSteadyStateAllocFree locks in that republishing descriptors
// the directory has seen before — the common case across a trawl's
// rotation steps — performs zero heap allocations.
func TestPublishSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := NewDirectory(onion.RandomFingerprint(rng), 24*time.Hour)
	descs := make([]*onion.Descriptor, 64)
	for i := range descs {
		descs[i] = makeDescriptor(rng, at(0))
		dir.Publish(descs[i], at(0))
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		dir.Publish(descs[i%len(descs)], at(1))
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Publish allocates %v times per op, want 0", allocs)
	}
}

// TestProbeAllocFree locks in that the lock-free fetch path (hits,
// misses, and expired entries alike) performs zero heap allocations.
func TestProbeAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := NewDirectory(onion.RandomFingerprint(rng), 24*time.Hour)
	descs := make([]*onion.Descriptor, 64)
	for i := range descs {
		descs[i] = makeDescriptor(rng, at(0))
		dir.Publish(descs[i], at(0))
	}
	var missing onion.DescriptorID
	missing[0] = 0xFF
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := dir.Probe(descs[i%len(descs)].DescID, at(1)); !ok {
			t.Fatal("probe missed a stored descriptor")
		}
		if _, ok := dir.Probe(missing, at(1)); ok {
			t.Fatal("probe found a never-published descriptor")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Probe allocates %v times per op, want 0", allocs)
	}
}

// TestRecordBatchAllocFree locks in that the sharded-log merge path — one
// bulk RecordBatch per directory per driven window — performs zero heap
// allocations once the log has capacity: recording is a pure append, no
// per-request map operation.
func TestRecordBatchAllocFree(t *testing.T) {
	batch := make([]Request, 32)
	for i := range batch {
		batch[i] = Request{At: at(i), DescID: onion.DescriptorID{byte(i)}, Found: i%2 == 0}
	}
	const runs = 100
	l := NewRequestLog()
	l.requests = make([]Request, 0, (runs+10)*len(batch))
	allocs := testing.AllocsPerRun(runs, func() {
		l.RecordBatch(batch)
	})
	if allocs != 0 {
		t.Fatalf("RecordBatch allocates %v times per op with spare capacity, want 0", allocs)
	}
}

// TestResponsibleIndicesIntoAllocFree locks in that handle-based
// responsible-set resolution reuses its scratch buffer.
func TestResponsibleIndicesIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fps := make([]onion.Fingerprint, 800)
	for i := range fps {
		fps[i] = onion.RandomFingerprint(rng)
	}
	ring := NewRing(fps)
	ids := make([]onion.DescriptorID, 64)
	for i := range ids {
		f := onion.RandomFingerprint(rng)
		copy(ids[i][:], f[:])
	}
	buf := make([]int32, 0, onion.SpreadPerReplica)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf = ring.ResponsibleIndicesInto(buf[:0], ids[i%len(ids)], onion.SpreadPerReplica)
		if len(buf) != onion.SpreadPerReplica {
			t.Fatal("bad responsible set")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("ResponsibleIndicesInto allocates %v times per op, want 0", allocs)
	}
}
