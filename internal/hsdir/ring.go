// Package hsdir implements the hidden-service directory system: the
// fingerprint ring on which descriptor IDs are mapped to responsible
// directories, the per-relay descriptor store with expiry, and the request
// log that powers the paper's popularity measurement.
package hsdir

import (
	"encoding/binary"
	"sort"
	"time"

	"torhs/internal/onion"
)

// Ring is the sorted circle of HSDir fingerprints. A descriptor replica is
// stored on the onion.SpreadPerReplica relays whose fingerprints follow
// the descriptor ID (wrapping at the top of the SHA-1 space).
type Ring struct {
	fps []onion.Fingerprint
	// hi caches the leading 8 bytes of every fingerprint as a big-endian
	// word, so the binary search touches one dense uint64 array instead of
	// scattered 20-byte keys; fingerprints are uniform SHA-1 outputs, so
	// the prefix almost always decides the comparison on its own.
	hi []uint64
}

// NewRing builds a ring from the given fingerprints, sorting and
// deduplicating them. The input slice is not retained.
func NewRing(fps []onion.Fingerprint) *Ring {
	sorted := make([]onion.Fingerprint, len(fps))
	copy(sorted, fps)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	dedup := sorted[:0]
	for i, f := range sorted {
		if i == 0 || f != sorted[i-1] {
			dedup = append(dedup, f)
		}
	}
	hi := make([]uint64, len(dedup))
	for i := range dedup {
		hi[i] = binary.BigEndian.Uint64(dedup[i][:8])
	}
	return &Ring{fps: dedup, hi: hi}
}

// search returns the index of the first fingerprint > d on the ring
// (len(fps) if none is). Hand-rolled binary search over the prefix
// array: a closure passed to sort.Search would defeat the
// zero-allocation guarantee, and the dense uint64 prefixes decide almost
// every probe without loading the full 20-byte fingerprint.
func (r *Ring) search(d onion.DescriptorID) int {
	dHi := binary.BigEndian.Uint64(d[:8])
	dAsFP := onion.Fingerprint(d)
	lo, hi := 0, len(r.fps)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		var less bool
		switch {
		case dHi < r.hi[m]:
			less = true
		case dHi > r.hi[m]:
			less = false
		default:
			less = dAsFP.Less(r.fps[m])
		}
		if less {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// Len returns the number of distinct fingerprints on the ring.
func (r *Ring) Len() int { return len(r.fps) }

// Fingerprints returns the ring in sorted order. The returned slice
// aliases the ring; callers must not mutate it.
func (r *Ring) Fingerprints() []onion.Fingerprint { return r.fps }

// Responsible returns the spread fingerprints following descriptor ID d on
// the ring (binary search; see ResponsibleLinear for the ablation
// baseline). If the ring has fewer than spread members, all of them are
// returned.
func (r *Ring) Responsible(d onion.DescriptorID, spread int) []onion.Fingerprint {
	if len(r.fps) == 0 {
		return nil
	}
	if spread > len(r.fps) {
		spread = len(r.fps)
	}
	return r.ResponsibleInto(make([]onion.Fingerprint, 0, spread), d, spread)
}

// ResponsibleInto appends the spread fingerprints following d to dst and
// returns it, so per-consensus sweeps can reuse one scratch buffer across
// calls (pass dst[:0]); with sufficient capacity the call performs zero
// heap allocations.
func (r *Ring) ResponsibleInto(dst []onion.Fingerprint, d onion.DescriptorID, spread int) []onion.Fingerprint {
	if len(r.fps) == 0 {
		return dst
	}
	if spread > len(r.fps) {
		spread = len(r.fps)
	}
	lo := r.search(d)
	for i := 0; i < spread; i++ {
		dst = append(dst, r.fps[(lo+i)%len(r.fps)])
	}
	return dst
}

// ResponsibleIndicesInto appends the ring positions (indexes into
// Fingerprints()) of the spread relays following d to dst and returns it.
// Callers that keep per-relay state in dense ring-ordered arrays — the
// simnet directory stores — resolve a descriptor ID straight to integer
// relay handles with zero per-call allocations and no map lookups.
func (r *Ring) ResponsibleIndicesInto(dst []int32, d onion.DescriptorID, spread int) []int32 {
	if len(r.fps) == 0 {
		return dst
	}
	if spread > len(r.fps) {
		spread = len(r.fps)
	}
	lo := r.search(d)
	for i := 0; i < spread; i++ {
		dst = append(dst, int32((lo+i)%len(r.fps)))
	}
	return dst
}

// ResponsibleLinear is the O(n) scan variant of Responsible, kept as the
// ablation baseline for BenchmarkRingLookup*.
func (r *Ring) ResponsibleLinear(d onion.DescriptorID, spread int) []onion.Fingerprint {
	if len(r.fps) == 0 {
		return nil
	}
	if spread > len(r.fps) {
		spread = len(r.fps)
	}
	var dAsFP onion.Fingerprint
	copy(dAsFP[:], d[:])
	start := len(r.fps)
	for i, f := range r.fps {
		if dAsFP.Less(f) {
			start = i
			break
		}
	}
	out := make([]onion.Fingerprint, 0, spread)
	for i := 0; i < spread; i++ {
		out = append(out, r.fps[(start+i)%len(r.fps)])
	}
	return out
}

// ResponsibleForServiceAt returns the full responsible set for a service
// at instant t: onion.Replicas replicas × onion.SpreadPerReplica relays (6
// on the 2013 network). The result may contain duplicates if replica
// ranges overlap on a small ring.
func (r *Ring) ResponsibleForServiceAt(id onion.PermanentID, t time.Time) []onion.Fingerprint {
	ids := onion.DescriptorIDs(id, t)
	out := make([]onion.Fingerprint, 0, len(ids)*onion.SpreadPerReplica)
	for _, d := range ids {
		out = append(out, r.Responsible(d, onion.SpreadPerReplica)...)
	}
	return out
}

// AverageGap returns the mean forward distance between consecutive
// fingerprints on the ring as a RingInt (2^160 / n for a perfectly uniform
// ring). Tracking detection compares observed descriptor-to-fingerprint
// distances against this average.
func (r *Ring) AverageGap() onion.RingInt {
	if len(r.fps) < 2 {
		return onion.MaxRingAvgGap(0)
	}
	// The consecutive gaps around the ring sum to exactly 2^160, so the
	// average gap is 2^160/n.
	return onion.MaxRingAvgGap(uint64(len(r.fps)))
}
