package hsdir

import (
	"sync"
	"testing"
	"time"

	"torhs/internal/onion"
)

func idWithByte(b byte) onion.DescriptorID {
	var id onion.DescriptorID
	id[0] = b
	return id
}

// TestMergeBulkSemantics checks the single-lock bulk merge preserves the
// per-record semantics: totals, per-ID counts, and the found tally.
func TestMergeBulkSemantics(t *testing.T) {
	at := time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC)
	src := NewRequestLog()
	for i := 0; i < 10; i++ {
		src.Record(Request{At: at, DescID: idWithByte(byte(i % 3)), Found: i%2 == 0})
	}
	dst := NewRequestLog()
	dst.Record(Request{At: at, DescID: idWithByte(0), Found: true})

	dst.Merge(src)
	if got := dst.Total(); got != 11 {
		t.Fatalf("Total = %d, want 11", got)
	}
	if got := dst.UniqueIDs(); got != 3 {
		t.Fatalf("UniqueIDs = %d, want 3", got)
	}
	counts := dst.CountsByID()
	if counts[idWithByte(0)] != 5 { // 4 from src (i=0,3,6,9) + 1 own
		t.Fatalf("counts[id0] = %d, want 5", counts[idWithByte(0)])
	}
	// found: src has i=0,2,4,6,8 -> 5, dst 1 -> 6 of 11.
	if got := dst.FoundFraction(); got != 6.0/11.0 {
		t.Fatalf("FoundFraction = %v, want %v", got, 6.0/11.0)
	}
	// Source untouched.
	if src.Total() != 10 {
		t.Fatalf("source mutated: Total = %d", src.Total())
	}
}

// TestMergeSelfAndNilNoop guards the degenerate inputs.
func TestMergeSelfAndNilNoop(t *testing.T) {
	l := NewRequestLog()
	l.Record(Request{DescID: idWithByte(1), Found: true})
	l.Merge(nil)
	l.Merge(l)
	if l.Total() != 1 || l.UniqueIDs() != 1 {
		t.Fatalf("self/nil merge corrupted log: total=%d unique=%d", l.Total(), l.UniqueIDs())
	}
}

// TestMergeConcurrent exercises the trawl pattern under the race
// detector: many directories' logs folded into one harvest log while
// recorders still append.
func TestMergeConcurrent(t *testing.T) {
	const sources = 8
	const perSource = 200
	dst := NewRequestLog()
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		src := NewRequestLog()
		for i := 0; i < perSource; i++ {
			src.Record(Request{DescID: idWithByte(byte(s)), Found: true})
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			dst.Merge(src)
		}()
		go func(s int) {
			defer wg.Done()
			dst.Record(Request{DescID: idWithByte(byte(s))})
		}(s)
	}
	wg.Wait()
	if got := dst.Total(); got != sources*perSource+sources {
		t.Fatalf("Total = %d, want %d", got, sources*perSource+sources)
	}
}
