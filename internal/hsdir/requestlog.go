package hsdir

import (
	"sync"
	"time"

	"torhs/internal/onion"
)

// Request is one descriptor fetch observed by a directory.
type Request struct {
	At     time.Time
	DescID onion.DescriptorID
	// Found reports whether a live descriptor was stored under the ID.
	// The paper found 80% of live-network requests were for descriptors
	// that were never published.
	Found bool
}

// RequestLog accumulates descriptor fetches. It is safe for concurrent
// use and supports merging, since the trawling attack aggregates logs from
// many attacker-operated directories.
type RequestLog struct {
	mu       sync.Mutex
	requests []Request
	perID    map[onion.DescriptorID]int
	found    int
}

// NewRequestLog returns an empty log.
func NewRequestLog() *RequestLog {
	return &RequestLog{perID: make(map[onion.DescriptorID]int)}
}

func (l *RequestLog) record(r Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests = append(l.requests, r)
	l.perID[r.DescID]++
	if r.Found {
		l.found++
	}
}

// Record appends a request observation. Exposed for components (such as
// the simnet client driver) that observe fetches outside a Directory.
func (l *RequestLog) Record(r Request) { l.record(r) }

// Total returns the total number of requests.
func (l *RequestLog) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.requests)
}

// UniqueIDs returns the number of distinct descriptor IDs requested.
func (l *RequestLog) UniqueIDs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.perID)
}

// FoundFraction returns the fraction of requests that hit a stored
// descriptor (0 when the log is empty).
func (l *RequestLog) FoundFraction() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.requests) == 0 {
		return 0
	}
	return float64(l.found) / float64(len(l.requests))
}

// CountsByID returns a copy of the per-descriptor-ID request counts.
func (l *RequestLog) CountsByID() map[onion.DescriptorID]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[onion.DescriptorID]int, len(l.perID))
	for id, n := range l.perID {
		out[id] = n
	}
	return out
}

// Requests returns a copy of all recorded requests in arrival order.
func (l *RequestLog) Requests() []Request {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Request, len(l.requests))
	copy(out, l.requests)
	return out
}

// Merge folds other's requests into l with one bulk append and a map
// fold, taking each log's lock exactly once. The other log is left
// unchanged.
func (l *RequestLog) Merge(other *RequestLog) {
	if other == nil || other == l {
		return
	}
	// Snapshot under other's lock only, so the two locks are never held
	// together (no ordering to deadlock on).
	other.mu.Lock()
	requests := make([]Request, len(other.requests))
	copy(requests, other.requests)
	perID := make(map[onion.DescriptorID]int, len(other.perID))
	for id, n := range other.perID {
		perID[id] = n
	}
	found := other.found
	other.mu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests = append(l.requests, requests...)
	for id, n := range perID {
		l.perID[id] += n
	}
	l.found += found
}
