package hsdir

import (
	"sync"
	"time"

	"torhs/internal/onion"
)

// Request is one descriptor fetch observed by a directory.
type Request struct {
	At     time.Time
	DescID onion.DescriptorID
	// Found reports whether a live descriptor was stored under the ID.
	// The paper found 80% of live-network requests were for descriptors
	// that were never published.
	Found bool
}

// RequestLog accumulates descriptor fetches. It is safe for concurrent
// use and supports merging, since the trawling attack aggregates logs from
// many attacker-operated directories.
//
// Recording is append-only: the per-descriptor-ID count map is built
// lazily on the first aggregate query and maintained incrementally from
// then on, so the recording hot path (one bulk RecordBatch per driven
// window per directory) never pays a map operation per request.
//
// A log can run in compact mode (NewCompactLog, or Compact on an existing
// log): raw Request records are folded into the per-ID counts as they
// arrive and never retained, so the log's footprint is bounded by the
// number of distinct descriptor IDs instead of the request volume. Every
// aggregate query (Total, UniqueIDs, FoundFraction, CountsByID, EachCount)
// returns exactly the same values in either mode; only Requests — the raw
// arrival-order record — is unavailable (nil) on a compact log. This is
// the per-window retirement step of the streaming pipeline: request
// timestamps feed no experiment output, so dropping them preserves
// byte-identical study renders.
type RequestLog struct {
	mu       sync.Mutex
	requests []Request
	found    int
	// compact discards raw requests on arrival; total then carries the
	// request count that len(requests) carries in raw mode, and perID is
	// authoritative (always non-nil).
	compact bool
	total   int
	// perID is the lazily built per-descriptor-ID request count; nil
	// means "not built yet" (rebuilt on demand by countsLocked).
	perID map[onion.DescriptorID]int
}

// NewRequestLog returns an empty log.
func NewRequestLog() *RequestLog {
	return &RequestLog{}
}

// NewCompactLog returns an empty log in compact mode: requests fold into
// per-ID counts on arrival and are never retained.
func NewCompactLog() *RequestLog {
	return &RequestLog{compact: true, perID: make(map[onion.DescriptorID]int)}
}

// Compact switches the log to compact mode, folding any raw requests
// already recorded into the per-ID counts and releasing them. Idempotent.
func (l *RequestLog) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactLocked()
}

// compactLocked folds raw state into compact state. Callers hold l.mu.
func (l *RequestLog) compactLocked() {
	if l.compact {
		return
	}
	l.perID = l.countsLocked()
	l.total = len(l.requests)
	l.requests = nil
	l.compact = true
}

// Compacted reports whether the log runs in compact mode.
func (l *RequestLog) Compacted() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compact
}

func (l *RequestLog) record(r Request) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.compact {
		l.perID[r.DescID]++
		l.total++
		if r.Found {
			l.found++
		}
		return
	}
	l.requests = append(l.requests, r)
	if r.Found {
		l.found++
	}
	if l.perID != nil {
		l.perID[r.DescID]++
	}
}

// Record appends a request observation. Exposed for components (such as
// the simnet client driver) that observe fetches outside a Directory.
func (l *RequestLog) Record(r Request) { l.record(r) }

// RecordBatch appends a batch of request observations, taking the lock
// exactly once. This is how DriveWindow merges a window's per-worker
// shard buffers into the per-directory logs: fetches record lock-free
// into local buffers during the window and land here in one append.
// With sufficient spare capacity the call performs zero heap allocations.
func (l *RequestLog) RecordBatch(batch []Request) {
	if len(batch) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.compact {
		for i := range batch {
			l.perID[batch[i].DescID]++
			if batch[i].Found {
				l.found++
			}
		}
		l.total += len(batch)
		return
	}
	l.requests = append(l.requests, batch...)
	for i := range batch {
		if batch[i].Found {
			l.found++
		}
		if l.perID != nil {
			l.perID[batch[i].DescID]++
		}
	}
}

// countsLocked returns the per-ID count map, building it on first use.
// Callers must hold l.mu. In compact mode perID is authoritative.
func (l *RequestLog) countsLocked() map[onion.DescriptorID]int {
	if l.perID == nil {
		l.perID = make(map[onion.DescriptorID]int, len(l.requests))
		for i := range l.requests {
			l.perID[l.requests[i].DescID]++
		}
	}
	return l.perID
}

// totalLocked returns the request count in either mode. Callers hold l.mu.
func (l *RequestLog) totalLocked() int {
	if l.compact {
		return l.total
	}
	return len(l.requests)
}

// Total returns the total number of requests.
func (l *RequestLog) Total() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totalLocked()
}

// UniqueIDs returns the number of distinct descriptor IDs requested.
func (l *RequestLog) UniqueIDs() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.countsLocked())
}

// FoundFraction returns the fraction of requests that hit a stored
// descriptor (0 when the log is empty).
func (l *RequestLog) FoundFraction() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := l.totalLocked()
	if total == 0 {
		return 0
	}
	return float64(l.found) / float64(total)
}

// CountsByID returns a copy of the per-descriptor-ID request counts.
// Callers that only iterate should prefer the zero-copy EachCount.
func (l *RequestLog) CountsByID() map[onion.DescriptorID]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	counts := l.countsLocked()
	out := make(map[onion.DescriptorID]int, len(counts))
	for id, n := range counts {
		out[id] = n
	}
	return out
}

// EachCount visits the per-descriptor-ID request counts without copying
// the map, in unspecified order. The log's lock is held for the whole
// iteration; fn must not call back into the log.
func (l *RequestLog) EachCount(fn func(id onion.DescriptorID, n int)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//torhs:ignore detorder unordered visiting is EachCount's documented contract; deterministic consumers must fold commutatively (popularity.Resolution.addCount is the exemplar)
	for id, n := range l.countsLocked() {
		fn(id, n)
	}
}

// Requests returns a copy of all recorded requests in arrival order, or
// nil for a compact log (the raw records were retired on arrival).
func (l *RequestLog) Requests() []Request {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.compact {
		return nil
	}
	out := make([]Request, len(l.requests))
	copy(out, l.requests)
	return out
}

// CompactState returns a copy of the log's aggregate state — the per-ID
// counts, the total request count, and the found count — in either mode.
// This is the snapshot form the trawl checkpoints persist for compact
// harvests: it reconstructs every aggregate query exactly.
func (l *RequestLog) CompactState() (counts map[onion.DescriptorID]int, total, found int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	src := l.countsLocked()
	counts = make(map[onion.DescriptorID]int, len(src))
	for id, n := range src {
		counts[id] = n
	}
	return counts, l.totalLocked(), l.found
}

// RestoreCompact replaces the log's contents with the given compact
// aggregate state (the log switches to compact mode). The counts map is
// copied; the caller keeps ownership of its argument.
func (l *RequestLog) RestoreCompact(counts map[onion.DescriptorID]int, total, found int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests = nil
	l.compact = true
	l.total = total
	l.found = found
	l.perID = make(map[onion.DescriptorID]int, len(counts))
	for id, n := range counts {
		l.perID[id] = n
	}
}

// MergeAll folds every log in others into l in slice order, with one
// snapshot pass over the sources and a single bulk append under l's
// lock. This is the one-merge-per-step path of the trawl read-out: the
// per-shard directory logs land in shard-then-directory order, and the
// lazy per-ID map is invalidated once instead of once per source. The
// source logs are left unchanged.
//
// Compact sources fold commutatively — per-ID count sums — which is
// order-insensitive by construction, so merging compact logs preserves
// the shard-merge determinism contract. If l or any source is compact,
// l ends up compact (raw records cannot be reconstructed from counts).
func (l *RequestLog) MergeAll(others []*RequestLog) {
	need := 0
	anyCompact := false
	for _, o := range others {
		if o != nil && o != l {
			need += o.Total()
			if o.Compacted() {
				anyCompact = true
			}
		}
	}
	if need == 0 {
		return
	}
	// Snapshot every source under its own lock only, then append under
	// l's lock only — the two locks are never held together (same
	// no-ordering-to-deadlock-on discipline as Merge).
	var scratch []Request
	var counts map[onion.DescriptorID]int
	if anyCompact {
		counts = make(map[onion.DescriptorID]int)
	} else {
		scratch = make([]Request, 0, need)
	}
	total, found := 0, 0
	for _, o := range others {
		if o == nil || o == l {
			continue
		}
		o.mu.Lock()
		if anyCompact {
			for id, n := range o.countsLocked() {
				counts[id] += n
			}
			total += o.totalLocked()
		} else {
			scratch = append(scratch, o.requests...)
		}
		found += o.found
		o.mu.Unlock()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if anyCompact || l.compact {
		l.compactLocked()
		for id, n := range counts {
			l.perID[id] += n
		}
		for i := range scratch {
			l.perID[scratch[i].DescID]++
		}
		l.total += total + len(scratch)
		l.found += found
		return
	}
	l.requests = append(l.requests, scratch...)
	l.found += found
	l.perID = nil // cheaper to rebuild once than to fold map into map
}

// Merge folds other's requests into l with one bulk append, taking each
// log's lock exactly once. The other log is left unchanged. Compact
// sources (or a compact destination) fold per-ID counts instead, leaving
// l compact — see MergeAll.
func (l *RequestLog) Merge(other *RequestLog) {
	if other == nil || other == l {
		return
	}
	if other.Compacted() || l.Compacted() {
		l.MergeAll([]*RequestLog{other})
		return
	}
	// Snapshot under other's lock only, so the two locks are never held
	// together (no ordering to deadlock on). The per-ID counts need no
	// copying: the destination rebuilds its lazy map from the merged
	// request list on the next aggregate query.
	other.mu.Lock()
	requests := make([]Request, len(other.requests))
	copy(requests, other.requests)
	found := other.found
	other.mu.Unlock()

	l.mu.Lock()
	defer l.mu.Unlock()
	l.requests = append(l.requests, requests...)
	l.found += found
	l.perID = nil // cheaper to rebuild once than to fold map into map
}
