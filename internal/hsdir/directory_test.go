package hsdir

import (
	"math/rand"
	"testing"
	"time"

	"torhs/internal/onion"
)

func at(h int) time.Time {
	return time.Date(2013, 2, 4, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func makeDescriptor(rng *rand.Rand, now time.Time) *onion.Descriptor {
	key := onion.GenerateKey(rng)
	id := key.PermanentID()
	return &onion.Descriptor{
		DescID:      onion.ComputeDescriptorID(id, now, 0),
		Address:     onion.AddressFromID(id),
		PermID:      id,
		Replica:     0,
		PublishedAt: now,
	}
}

func TestPublishAndFetch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := NewDirectory(onion.RandomFingerprint(rng), 0)
	desc := makeDescriptor(rng, at(0))

	dir.Publish(desc, at(0))
	got, ok := dir.Fetch(desc.DescID, at(1))
	if !ok {
		t.Fatal("fetch failed for stored descriptor")
	}
	if got.Address != desc.Address {
		t.Fatal("fetched wrong descriptor")
	}
}

func TestFetchMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dir := NewDirectory(onion.RandomFingerprint(rng), 0)
	var id onion.DescriptorID
	if _, ok := dir.Fetch(id, at(0)); ok {
		t.Fatal("fetch of absent descriptor succeeded")
	}
	if dir.Log().Total() != 1 {
		t.Fatal("missing fetch not logged")
	}
	if dir.Log().FoundFraction() != 0 {
		t.Fatal("found fraction should be 0")
	}
}

func TestDescriptorExpiresAfterTTL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := NewDirectory(onion.RandomFingerprint(rng), 24*time.Hour)
	desc := makeDescriptor(rng, at(0))
	dir.Publish(desc, at(0))

	if _, ok := dir.Fetch(desc.DescID, at(23)); !ok {
		t.Fatal("descriptor gone before TTL")
	}
	if _, ok := dir.Fetch(desc.DescID, at(25)); ok {
		t.Fatal("descriptor alive after TTL")
	}
	if dir.Stored() != 0 {
		t.Fatal("expired descriptor not reaped on fetch")
	}
}

func TestRepublishRefreshesExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dir := NewDirectory(onion.RandomFingerprint(rng), 24*time.Hour)
	desc := makeDescriptor(rng, at(0))
	dir.Publish(desc, at(0))
	dir.Publish(desc, at(20))
	if _, ok := dir.Fetch(desc.DescID, at(30)); !ok {
		t.Fatal("republished descriptor expired early")
	}
}

func TestExpireReapsInBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dir := NewDirectory(onion.RandomFingerprint(rng), 24*time.Hour)
	for i := 0; i < 10; i++ {
		dir.Publish(makeDescriptor(rng, at(0)), at(0))
	}
	for i := 0; i < 5; i++ {
		dir.Publish(makeDescriptor(rng, at(20)), at(20))
	}
	if n := dir.Expire(at(30)); n != 10 {
		t.Fatalf("expired %d, want 10", n)
	}
	if dir.Stored() != 5 {
		t.Fatalf("stored = %d, want 5", dir.Stored())
	}
}

func TestPublishedAndRequestedStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dir := NewDirectory(onion.RandomFingerprint(rng), 0)

	descs := make([]*onion.Descriptor, 10)
	for i := range descs {
		descs[i] = makeDescriptor(rng, at(0))
		dir.Publish(descs[i], at(0))
	}
	// Only one published descriptor is requested (the paper saw ~10%).
	dir.Fetch(descs[0].DescID, at(1))
	// Plus requests for never-published IDs.
	for i := 0; i < 4; i++ {
		var bogus onion.DescriptorID
		bogus[0] = byte(i + 1)
		dir.Fetch(bogus, at(1))
	}

	if got := dir.PublishedEver(); got != 10 {
		t.Fatalf("PublishedEver = %d, want 10", got)
	}
	if got := dir.RequestedPublishedEver(); got != 1 {
		t.Fatalf("RequestedPublishedEver = %d, want 1", got)
	}
	if got := dir.Log().Total(); got != 5 {
		t.Fatalf("log total = %d, want 5", got)
	}
	if got := dir.Log().FoundFraction(); got != 0.2 {
		t.Fatalf("found fraction = %v, want 0.2", got)
	}
}

func TestRequestLogCountsAndMerge(t *testing.T) {
	a := NewRequestLog()
	b := NewRequestLog()
	var id1, id2 onion.DescriptorID
	id1[0], id2[0] = 1, 2

	a.Record(Request{At: at(0), DescID: id1, Found: true})
	a.Record(Request{At: at(0), DescID: id1})
	b.Record(Request{At: at(1), DescID: id2})

	a.Merge(b)
	if a.Total() != 3 {
		t.Fatalf("merged total = %d, want 3", a.Total())
	}
	if a.UniqueIDs() != 2 {
		t.Fatalf("unique IDs = %d, want 2", a.UniqueIDs())
	}
	counts := a.CountsByID()
	if counts[id1] != 2 || counts[id2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Merge must not mutate the source.
	if b.Total() != 1 {
		t.Fatal("merge mutated source log")
	}
}

func TestRequestsReturnsCopy(t *testing.T) {
	l := NewRequestLog()
	var id onion.DescriptorID
	l.Record(Request{At: at(0), DescID: id})
	reqs := l.Requests()
	reqs[0].Found = true
	if l.Requests()[0].Found {
		t.Fatal("Requests leaked internal slice")
	}
}
