package hsdir

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"torhs/internal/onion"
)

func randomRing(rng *rand.Rand, n int) *Ring {
	fps := make([]onion.Fingerprint, n)
	for i := range fps {
		fps[i] = onion.RandomFingerprint(rng)
	}
	return NewRing(fps)
}

func TestNewRingSortsAndDedups(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f1 := onion.RandomFingerprint(rng)
	f2 := onion.RandomFingerprint(rng)
	ring := NewRing([]onion.Fingerprint{f2, f1, f2, f1})
	if ring.Len() != 2 {
		t.Fatalf("ring length = %d, want 2", ring.Len())
	}
	fps := ring.Fingerprints()
	if !fps[0].Less(fps[1]) {
		t.Fatal("ring not sorted")
	}
}

func TestResponsibleReturnsFollowingFingerprints(t *testing.T) {
	// Construct a ring with known fingerprints 0x10, 0x20, 0x30 (in the
	// first byte) and check wrap-around behaviour.
	mk := func(b byte) onion.Fingerprint {
		var f onion.Fingerprint
		f[0] = b
		return f
	}
	ring := NewRing([]onion.Fingerprint{mk(0x10), mk(0x20), mk(0x30)})

	var d onion.DescriptorID
	d[0] = 0x15
	got := ring.Responsible(d, 2)
	if got[0] != mk(0x20) || got[1] != mk(0x30) {
		t.Fatalf("responsible for 0x15 = %v", got)
	}

	// Descriptor beyond the last fingerprint wraps to the start.
	d[0] = 0x35
	got = ring.Responsible(d, 2)
	if got[0] != mk(0x10) || got[1] != mk(0x20) {
		t.Fatalf("responsible for 0x35 = %v (no wrap)", got)
	}

	// Exact match: responsibility starts strictly after the ID.
	d = onion.DescriptorID{}
	d[0] = 0x20
	got = ring.Responsible(d, 1)
	if got[0] != mk(0x30) {
		t.Fatalf("responsible for exact 0x20 = %v, want 0x30", got)
	}
}

func TestResponsibleSpreadLargerThanRing(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ring := randomRing(rng, 2)
	var d onion.DescriptorID
	if got := ring.Responsible(d, 5); len(got) != 2 {
		t.Fatalf("len = %d, want clamped 2", len(got))
	}
}

func TestResponsibleEmptyRing(t *testing.T) {
	ring := NewRing(nil)
	var d onion.DescriptorID
	if got := ring.Responsible(d, 3); got != nil {
		t.Fatalf("responsible on empty ring = %v, want nil", got)
	}
}

func TestResponsibleMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ring := randomRing(rng, 200)
	for i := 0; i < 500; i++ {
		var d onion.DescriptorID
		f := onion.RandomFingerprint(rng)
		copy(d[:], f[:])
		a := ring.Responsible(d, 3)
		b := ring.ResponsibleLinear(d, 3)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("binary/linear mismatch at query %d", i)
			}
		}
	}
}

func TestResponsibleForServiceAtYieldsSixDirectories(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ring := randomRing(rng, 1000)
	id := onion.GenerateKey(rng).PermanentID()
	at := time.Date(2013, 2, 4, 12, 0, 0, 0, time.UTC)

	got := ring.ResponsibleForServiceAt(id, at)
	if len(got) != onion.Replicas*onion.SpreadPerReplica {
		t.Fatalf("responsible set size = %d, want %d", len(got), onion.Replicas*onion.SpreadPerReplica)
	}
}

func TestAverageGapApproximatesUniformSpacing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ring := randomRing(rng, 1024)
	want := math.Pow(2, 160) / 1024
	got := ring.AverageGap().Float64()
	if rel := math.Abs(got-want) / want; rel > 1e-9 {
		t.Fatalf("average gap = %g, want %g", got, want)
	}
}

func TestAverageGapTinyRing(t *testing.T) {
	ring := NewRing(nil)
	if !ring.AverageGap().IsZero() {
		t.Fatal("average gap of empty ring not zero")
	}
}

// Property: responsibility is deterministic and returns ring members in
// ring order starting strictly after the ID.
func TestQuickResponsibleInvariants(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%500) + 4
		ring := randomRing(rng, size)
		var d onion.DescriptorID
		fp := onion.RandomFingerprint(rng)
		copy(d[:], fp[:])

		got := ring.Responsible(d, 3)
		if len(got) != 3 {
			return false
		}
		// Deterministic.
		again := ring.Responsible(d, 3)
		for i := range got {
			if got[i] != again[i] {
				return false
			}
		}
		// All distinct members of the ring.
		members := make(map[onion.Fingerprint]bool, ring.Len())
		for _, m := range ring.Fingerprints() {
			members[m] = true
		}
		seen := make(map[onion.Fingerprint]bool, 3)
		for _, g := range got {
			if !members[g] || seen[g] {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestResponsibleIndicesMatchFingerprints pins the handle-based lookup to
// the fingerprint-based one: position i must always name the same relay.
func TestResponsibleIndicesMatchFingerprints(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 3, 7, 400} {
		fps := make([]onion.Fingerprint, n)
		for i := range fps {
			fps[i] = onion.RandomFingerprint(rng)
		}
		ring := NewRing(fps)
		ringFPs := ring.Fingerprints()
		for trial := 0; trial < 200; trial++ {
			f := onion.RandomFingerprint(rng)
			var id onion.DescriptorID
			copy(id[:], f[:])
			want := ring.Responsible(id, onion.SpreadPerReplica)
			got := ring.ResponsibleIndicesInto(nil, id, onion.SpreadPerReplica)
			if len(got) != len(want) {
				t.Fatalf("n=%d: len mismatch %d vs %d", n, len(got), len(want))
			}
			for i := range got {
				if ringFPs[got[i]] != want[i] {
					t.Fatalf("n=%d: position %d resolves to %x, want %x",
						n, got[i], ringFPs[got[i]], want[i])
				}
			}
		}
	}
}
