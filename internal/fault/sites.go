package fault

// The fault-site registry. Every injection point in the codebase is one
// constant below, annotated //torhs:faultsite so the faultsite analyzer
// can prove (a) the directive name matches the constant's value, (b)
// names are globally unique, (c) every marked constant is a key of the
// sites map, and (d) call sites only ever pass these constants — never
// inline strings — to Hit/MustHit.
//
// Naming convention: "<package>.<boundary>". Sites on paths with no
// error return (DriveWindow returns bare TrafficStats) are registered
// crash/slow-only; Parse and Set reject err-mode rules for them.

const (
	// SiteStoreWrite fires before the result store writes an object's
	// temp file — a fault here loses the write but never the store.
	//
	//torhs:faultsite resultstore.write
	SiteStoreWrite Site = "resultstore.write"

	// SiteStoreRename fires between fsync and the atomic rename — the
	// window where a torn publish would leave an orphan temp file.
	//
	//torhs:faultsite resultstore.rename
	SiteStoreRename Site = "resultstore.rename"

	// SiteStoreRead fires on the store's read path (object and key
	// lookups), modelling transient I/O errors under a live server.
	//
	//torhs:faultsite resultstore.read
	SiteStoreRead Site = "resultstore.read"

	// SiteCheckpoint fires before a checkpoint snapshot is saved, the
	// boundary that decides how much window progress a crash loses.
	//
	//torhs:faultsite resultstore.checkpoint
	SiteCheckpoint Site = "resultstore.checkpoint"

	// SiteTask fires at the DAG scheduler's per-task boundary, before
	// the task closure runs — retrying it never re-executes work.
	//
	//torhs:faultsite parallel.task
	SiteTask Site = "parallel.task"

	// SiteTrawlStep fires at each trawl step boundary, after the
	// previous step's accumulators are complete.
	//
	//torhs:faultsite trawl.step
	SiteTrawlStep Site = "trawl.step"

	// SiteTrackingWindow fires at each tracking checkpoint window
	// boundary during the consensus-history sweep.
	//
	//torhs:faultsite tracking.window
	SiteTrackingWindow Site = "tracking.window"

	// SiteSimWindow fires as a traffic window starts driving.
	// DriveWindow has no error return, so this site is crash/slow only.
	//
	//torhs:faultsite simnet.window
	SiteSimWindow Site = "simnet.window"
)

// siteCaps declares which modes a site supports.
type siteCaps struct {
	// errOK permits ModeErr: the call site propagates Hit's error.
	errOK bool
}

// sites is the registry the faultsite analyzer checks the constants
// against. Every key must be one of the marked constants above, and
// every marked constant must appear here.
var sites = map[Site]siteCaps{
	SiteStoreWrite:     {errOK: true},
	SiteStoreRename:    {errOK: true},
	SiteStoreRead:      {errOK: true},
	SiteCheckpoint:     {errOK: true},
	SiteTask:           {errOK: true},
	SiteTrawlStep:      {errOK: true},
	SiteTrackingWindow: {errOK: true},
	SiteSimWindow:      {errOK: false},
}
