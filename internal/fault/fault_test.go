package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// withInjector installs in for the duration of the test.
func withInjector(t *testing.T, in *Injector) {
	t.Helper()
	prev := Active()
	Install(in)
	t.Cleanup(func() { Install(prev) })
}

func TestHitWithoutInjector(t *testing.T) {
	withInjector(t, nil)
	if err := Hit(SiteStoreWrite); err != nil {
		t.Fatalf("Hit with no injector: %v", err)
	}
}

func TestParseGrammar(t *testing.T) {
	in, err := Parse("seed=42; hard; resultstore.write=err@2; trawl.step=crash; simnet.window=slow:5ms~0.25x3")
	if err != nil {
		t.Fatal(err)
	}
	if in.seed != 42 || !in.hard {
		t.Fatalf("seed/hard = %d/%v, want 42/true", in.seed, in.hard)
	}
	w := in.rules[SiteStoreWrite]
	if len(w) != 1 || w[0].Mode != ModeErr || w[0].At != 2 {
		t.Fatalf("write rule = %+v", w)
	}
	s := in.rules[SiteSimWindow]
	if len(s) != 1 || s[0].Mode != ModeSlow || s[0].Delay != 5*time.Millisecond || s[0].Prob != 0.25 || s[0].Count != 3 {
		t.Fatalf("window rule = %+v", s)
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"nosuch.site=err",        // unregistered site
		"simnet.window=err",      // err on an error-free site
		"trawl.step=explode",     // unknown mode
		"trawl.step=err@0",       // hit indexes are 1-based
		"trawl.step=err~1.5",     // probability out of range
		"trawl.step=err:xyz",     // bad duration
		"seed=abc",               // bad seed
		"trawl.step",             // missing mode
		"trawl.step=err@2 extra", // trailing junk inside the clause
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestAtHitTrigger(t *testing.T) {
	in := New(1)
	if err := in.Set(SiteStoreWrite, Rule{Mode: ModeErr, At: 3}); err != nil {
		t.Fatal(err)
	}
	withInjector(t, in)
	for i := 1; i <= 5; i++ {
		err := Hit(SiteStoreWrite)
		if (i == 3) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, Transient) {
			t.Fatalf("hit %d: error not transient: %v", i, err)
		}
	}
	if got := in.Fires(SiteStoreWrite); got != 1 {
		t.Fatalf("fires = %d, want 1", got)
	}
}

func TestCountCap(t *testing.T) {
	in := New(1)
	if err := in.Set(SiteTrawlStep, Rule{Mode: ModeErr, Count: 2}); err != nil {
		t.Fatal(err)
	}
	withInjector(t, in)
	fired := 0
	for i := 0; i < 6; i++ {
		if Hit(SiteTrawlStep) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestProbabilityDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(99)
		if err := in.Set(SiteStoreRead, Rule{Mode: ModeErr, Prob: 0.5}); err != nil {
			t.Fatal(err)
		}
		withInjector(t, in)
		out := make([]bool, 40)
		for i := range out {
			out[i] = Hit(SiteStoreRead) != nil
		}
		return out
	}
	a, b := run(), run()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probability draw diverged at hit %d", i+1)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Fatalf("p=0.5 over 40 hits fired always or never: %v", a)
	}
}

func TestCrashPanicsWithCrashPoint(t *testing.T) {
	in := New(1)
	if err := in.Set(SiteTask, Rule{Mode: ModeCrash, At: 1}); err != nil {
		t.Fatal(err)
	}
	withInjector(t, in)
	defer func() {
		cp, ok := recover().(CrashPoint)
		if !ok {
			t.Fatalf("recover() = %v, want CrashPoint", cp)
		}
		if cp.Site != SiteTask || cp.Hit != 1 {
			t.Fatalf("CrashPoint = %+v", cp)
		}
	}()
	Hit(SiteTask)
	t.Fatal("Hit did not panic")
}

func TestSlowProceeds(t *testing.T) {
	in := New(1)
	if err := in.Set(SiteSimWindow, Rule{Mode: ModeSlow, Delay: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	withInjector(t, in)
	MustHit(SiteSimWindow) // must not panic and must return
	if got := in.Fires(SiteSimWindow); got != 1 {
		t.Fatalf("fires = %d, want 1", got)
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	calls := 0
	err := Retry(RetryPolicy{Attempts: 3}, func() error {
		calls++
		if calls < 3 {
			return &injectedError{site: SiteStoreWrite, hit: calls}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil, 3", err, calls)
	}
}

func TestRetryPermanentPassesThrough(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Retry(RetryPolicy{Attempts: 5}, func() error { calls++; return boom })
	if err != boom || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want boom after 1 call", err, calls)
	}
}

func TestRetryExhaustionIsPermanent(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		Attempts: 3,
		Backoff:  10 * time.Millisecond,
		Sleep:    func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := Retry(p, func() error {
		calls++
		return &injectedError{site: SiteStoreWrite, hit: calls}
	})
	if err == nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want exhaustion after 3", err, calls)
	}
	if errors.Is(err, Transient) {
		t.Fatalf("exhausted error still classifies transient: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("backoff = %v, want %v", slept, want)
	}
}

func TestRetryNoDoubleExecutionOnSuccess(t *testing.T) {
	calls := 0
	if err := Retry(DefaultRetry, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want nil, 1", err, calls)
	}
}

func TestSiteRegistryShape(t *testing.T) {
	if !IsSite("trawl.step") || IsSite("nosuch.site") {
		t.Fatal("IsSite misclassifies")
	}
	if SiteCanErr(SiteSimWindow) {
		t.Fatal("simnet.window must be crash/slow only")
	}
	if !SiteCanErr(SiteStoreWrite) {
		t.Fatal("resultstore.write must allow err mode")
	}
	names := SiteNames()
	if len(names) != len(sites) {
		t.Fatalf("SiteNames: %d names, %d sites", len(names), len(sites))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate site name %s", n)
		}
		seen[n] = true
	}
}
