// Package fault is torhs's deterministic fault-injection plane: a
// seeded Injector that fires at named sites threaded through the layers
// that can lose or corrupt work (resultstore writes, DAG task
// boundaries, simulation window boundaries). Faults come in three
// modes — a transient error (classified via errors.Is(err, Transient)
// so schedulers can retry), a crash at the site (a sentinel CrashPoint
// panic, or a hard os.Exit for kill-style testing), and slow I/O — and
// every trigger decision is a pure function of the injector seed, the
// site name, and the per-site hit index, so a faulty run replays
// byte-identically.
//
// Injection is off unless an Injector is installed. Production code
// calls Hit (or MustHit at sites with no error return) with a constant
// from sites.go; with no active injector that is one atomic load.
//
// The TORHS_FAULT environment variable installs an injector at process
// init (required so a re-exec'd test child faults before any test code
// runs). Grammar, clauses separated by ';':
//
//	seed=N                     injector seed (default 1)
//	hard                       crash mode exits the process (code 73)
//	                           instead of panicking
//	<site>=<mode>[@N][xC][~P][:DUR]
//	                           arm <site> with <mode> (err|crash|slow);
//	                           @N  fire on the Nth hit only (1-based)
//	                           xC  fire at most C times
//	                           ~P  fire with probability P per hit
//	                           :DUR sleep DUR in slow mode (default 2ms)
//
// Example: TORHS_FAULT="seed=7; hard; trawl.step=crash@2"
package fault

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one injection point. The registry in sites.go is the
// single source of truth; Parse and Set reject unregistered names, and
// the faultsite analyzer proves every //torhs:faultsite constant is
// unique and registered.
type Site string

// Mode is what happens when a rule fires.
type Mode int

const (
	// ModeErr returns a transient error from Hit.
	ModeErr Mode = iota
	// ModeCrash panics with a CrashPoint (or exits with HardExitCode
	// when the injector is hard).
	ModeCrash
	// ModeSlow sleeps for the rule's delay, then proceeds normally.
	ModeSlow
)

func (m Mode) String() string {
	switch m {
	case ModeErr:
		return "err"
	case ModeCrash:
		return "crash"
	case ModeSlow:
		return "slow"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// HardExitCode is the process exit code of a hard crash. It is
// deliberately distinct from go test's failure (1) and panic (2) exits
// so a kill harness can tell "died at the site" from "test broke".
const HardExitCode = 73

// Transient is the classification sentinel: errors.Is(err, Transient)
// reports whether err is a retryable injected fault.
var Transient = errors.New("transient fault")

// injectedError is the ModeErr payload. It matches Transient through
// Is, not wrapping, so exhaustion wrappers can drop the classification.
type injectedError struct {
	site Site
	hit  int
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("fault: injected transient error at %s (hit %d)", e.site, e.hit)
}

func (e *injectedError) Is(target error) bool { return target == Transient }

// CrashPoint is the sentinel panic value of a soft crash. Harnesses
// recover it to assert that a site fired; anything else re-panics.
type CrashPoint struct {
	Site Site
	Hit  int
}

func (c CrashPoint) String() string {
	return fmt.Sprintf("fault: crash at %s (hit %d)", c.Site, c.Hit)
}

// Rule arms one site. Zero trigger fields mean "every hit".
type Rule struct {
	Mode Mode
	// At fires on the Nth hit of the site only (1-based; 0 = any hit).
	At int
	// Count caps how many times the rule fires (0 = unlimited).
	Count int
	// Prob fires with this per-hit probability, drawn deterministically
	// from the injector seed, the site, and the hit index (0 = always).
	Prob float64
	// Delay is the ModeSlow sleep (0 = 2ms default).
	Delay time.Duration
}

// defaultSlowDelay keeps slow-mode runs finite when no :DUR is given.
const defaultSlowDelay = 2 * time.Millisecond

type armedRule struct {
	Rule
	fired int
}

// Injector holds the armed rules and per-site hit counters. All methods
// are safe for concurrent use.
type Injector struct {
	seed int64
	hard bool

	mu    sync.Mutex
	rules map[Site][]*armedRule
	hits  map[Site]int
	fires map[Site]int
}

// New returns an empty injector with the given seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		rules: map[Site][]*armedRule{},
		hits:  map[Site]int{},
		fires: map[Site]int{},
	}
}

// Hard makes crash-mode rules exit the process (HardExitCode) instead
// of panicking, and returns the injector for chaining.
func (in *Injector) Hard() *Injector { in.hard = true; return in }

// Set arms site with r, validating the site is registered and the mode
// is allowed there (sites with no error return cannot inject ModeErr).
func (in *Injector) Set(site Site, r Rule) error {
	caps, ok := sites[site]
	if !ok {
		return fmt.Errorf("fault: unknown site %q (have: %s)", site, strings.Join(SiteNames(), ", "))
	}
	if r.Mode == ModeErr && !caps.errOK {
		return fmt.Errorf("fault: site %s cannot surface errors (crash/slow only)", site)
	}
	if r.At < 0 || r.Count < 0 || r.Prob < 0 || r.Prob > 1 || r.Delay < 0 {
		return fmt.Errorf("fault: invalid rule %+v for site %s", r, site)
	}
	if r.Mode == ModeSlow && r.Delay == 0 {
		r.Delay = defaultSlowDelay
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[site] = append(in.rules[site], &armedRule{Rule: r})
	return nil
}

// Hits reports how many times site was reached (fired or not).
func (in *Injector) Hits(site Site) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fires reports how many times a rule fired at site.
func (in *Injector) Fires(site Site) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fires[site]
}

// hit advances the site counter and returns the rule to fire, if any.
func (in *Injector) hit(site Site) (*armedRule, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[site]++
	n := in.hits[site]
	for _, r := range in.rules[site] {
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.At > 0 && n != r.At {
			continue
		}
		if r.Prob > 0 && chance(in.seed, site, n) >= r.Prob {
			continue
		}
		r.fired++
		in.fires[site]++
		return r, n
	}
	return nil, n
}

// chance maps (seed, site, hit) to a uniform float64 in [0,1) with the
// package's own splitmix64 — fault sits below internal/parallel in the
// import graph, so it cannot borrow parallel.SeedFor.
func chance(seed int64, site Site, n int) float64 {
	h := uint64(seed)
	for _, b := range []byte(site) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h += uint64(n) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// active is the installed injector; nil means injection is off
// everywhere, and Hit is a single atomic load.
var active atomic.Pointer[Injector]

// Install makes in the process-wide injector (nil disarms injection).
func Install(in *Injector) { active.Store(in) }

// Active returns the installed injector, or nil.
func Active() *Injector { return active.Load() }

// Hit marks that execution reached site and applies any armed rule:
// returns a Transient-classified error (ModeErr), panics with
// CrashPoint or hard-exits (ModeCrash), or sleeps then returns nil
// (ModeSlow). With no installed injector it returns nil immediately.
func Hit(site Site) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	r, n := in.hit(site)
	if r == nil {
		return nil
	}
	switch r.Mode {
	case ModeErr:
		return &injectedError{site: site, hit: n}
	case ModeCrash:
		if in.hard {
			fmt.Fprintf(os.Stderr, "fault: hard crash at %s (hit %d)\n", site, n)
			os.Exit(HardExitCode)
		}
		panic(CrashPoint{Site: site, Hit: n})
	case ModeSlow:
		time.Sleep(r.Delay)
	}
	return nil
}

// MustHit is Hit for sites with no error return (registered crash/slow
// only, so an error here means the registry invariant broke).
func MustHit(site Site) {
	if err := Hit(site); err != nil {
		panic(fmt.Sprintf("fault: error-mode rule on error-free site %s: %v", site, err))
	}
}

// Parse builds an injector from a TORHS_FAULT spec (see package doc).
func Parse(spec string) (*Injector, error) {
	seed := int64(1)
	hard := false
	type armed struct {
		site Site
		rule Rule
	}
	var rules []armed
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		switch {
		case clause == "":
			continue
		case clause == "hard":
			hard = true
		case strings.HasPrefix(clause, "seed="):
			n, err := strconv.ParseInt(clause[len("seed="):], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed clause %q: %v", clause, err)
			}
			seed = n
		default:
			site, rest, ok := strings.Cut(clause, "=")
			if !ok {
				return nil, fmt.Errorf("fault: bad clause %q (want site=mode[@N][xC][~P][:DUR])", clause)
			}
			r, err := parseRule(rest)
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: %v", clause, err)
			}
			rules = append(rules, armed{site: Site(strings.TrimSpace(site)), rule: r})
		}
	}
	in := New(seed)
	if hard {
		in.Hard()
	}
	for _, a := range rules {
		if err := in.Set(a.site, a.rule); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// parseRule parses "mode[@N][xC][~P][:DUR]".
func parseRule(s string) (Rule, error) {
	s = strings.TrimSpace(s)
	cut := len(s)
	for i, c := range s {
		if c == '@' || c == 'x' || c == '~' || c == ':' {
			cut = i
			break
		}
	}
	var r Rule
	switch mode := s[:cut]; mode {
	case "err":
		r.Mode = ModeErr
	case "crash":
		r.Mode = ModeCrash
	case "slow":
		r.Mode = ModeSlow
	default:
		return Rule{}, fmt.Errorf("unknown mode %q (want err, crash, or slow)", mode)
	}
	rest := s[cut:]
	for rest != "" {
		op := rest[0]
		arg := rest[1:]
		end := len(arg)
		for i, c := range arg {
			if c == '@' || c == 'x' || c == '~' || c == ':' {
				end = i
				break
			}
		}
		val, next := arg[:end], arg[end:]
		switch op {
		case '@':
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("bad @hit %q", val)
			}
			r.At = n
		case 'x':
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("bad xcount %q", val)
			}
			r.Count = n
		case '~':
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("bad ~prob %q", val)
			}
			r.Prob = p
		case ':':
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("bad :duration %q", val)
			}
			r.Delay = d
		default:
			return Rule{}, fmt.Errorf("bad rule suffix %q", rest)
		}
		rest = next
	}
	return r, nil
}

// EnvVar is the environment variable init consumes.
const EnvVar = "TORHS_FAULT"

func init() {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return
	}
	in, err := Parse(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault: invalid %s=%q: %v\n", EnvVar, spec, err)
		os.Exit(2)
	}
	Install(in)
}

// RetryPolicy bounds Retry: Attempts total tries with exponential
// backoff starting at Backoff (doubling per retry).
type RetryPolicy struct {
	// Attempts is the total number of tries (minimum 1).
	Attempts int
	// Backoff is the sleep before the first retry; each further retry
	// doubles it. Zero means no sleep (unit tests).
	Backoff time.Duration
	// Sleep replaces time.Sleep when non-nil (tests observe backoff
	// without waiting).
	Sleep func(time.Duration)
}

// DefaultRetry is the scheduler policy: three tries, 10ms then 20ms of
// backoff. Real studies only see injected transients, so the absolute
// durations just need to be visibly exponential and test-affordable.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 10 * time.Millisecond}

// exhaustedError is the permanent error after backoff runs out. It
// deliberately does not unwrap to the transient cause: exhaustion IS
// the reclassification, so a second retry layer will not spin on it.
type exhaustedError struct {
	attempts int
	last     error
}

func (e *exhaustedError) Error() string {
	return fmt.Sprintf("giving up after %d attempts: %v", e.attempts, e.last)
}

// Retry runs fn until it succeeds, fails permanently, or exhausts the
// policy. Only errors classified transient (errors.Is(err, Transient))
// are retried; anything else returns immediately. Exhaustion returns a
// permanent error that no longer matches Transient.
func Retry(p RetryPolicy, fn func() error) error {
	return RetryCtx(context.Background(), p, fn)
}

// RetryCtx is Retry with a cancellation escape hatch: a cancelled
// context is permanent — ctx.Err() is returned before the next attempt
// and is never retried (cancellation is a decision, not weather) — and
// the backoff sleep aborts the moment ctx is cancelled instead of
// serving out its exponential wait.
func RetryCtx(ctx context.Context, p RetryPolicy, fn func() error) error {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	backoff := p.Backoff
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = fn()
		if err == nil || !errors.Is(err, Transient) {
			return err
		}
		if attempt >= p.Attempts {
			return &exhaustedError{attempts: p.Attempts, last: err}
		}
		if backoff > 0 {
			if p.Sleep != nil {
				p.Sleep(backoff)
			} else if !sleepCtx(ctx, backoff) {
				return ctx.Err()
			}
			backoff *= 2
		}
	}
}

// sleepCtx waits for d, reporting false if ctx was cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// SiteNames lists the registered sites, sorted.
func SiteNames() []string {
	names := make([]string, 0, len(sites))
	for s := range sites {
		names = append(names, string(s))
	}
	sort.Strings(names)
	return names
}

// SiteCanErr reports whether the registered site may surface ModeErr
// (false for sites on paths with no error return).
func SiteCanErr(site Site) bool { return sites[site].errOK }

// IsSite reports whether name is registered.
func IsSite(name string) bool { _, ok := sites[Site(name)]; return ok }
