// Package parallel provides the small worker-pool primitives the
// experiment pipelines share: bounded fan-out over index ranges, an
// errgroup-style task group, and deterministic per-index seed derivation.
//
// Every helper is written so that the *result* of a computation depends
// only on the inputs, never on the worker count: callers shard work by
// index, derive any randomness from SeedFor, and merge partial results in
// index order. Workers only changes wall-clock time.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
)

// Workers normalises a worker-count knob: values <= 0 mean "one worker
// per available CPU", everything else is used as-is.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Effective clamps a worker-count knob for an n-item loop to
// min(Workers(workers), n, GOMAXPROCS): more goroutines than items or
// schedulable CPUs only add spawn and scheduling overhead, never
// throughput, and the clamp is what gives Workers==1 (and 1-core boxes)
// a zero-spawn sequential path in ForEach and Chunks.
func Effective(workers, n int) int {
	w := Workers(workers)
	if p := runtime.GOMAXPROCS(0); w > p {
		w = p
	}
	if w > n {
		w = n
	}
	return w
}

// ForEach runs fn(i) for every i in [0,n) on up to workers goroutines.
// It blocks until all calls return. fn must be safe to call concurrently;
// the assignment of indexes to goroutines is unspecified, so fn must not
// depend on execution order. With workers <= 1 (after clamping to n and
// GOMAXPROCS) the calls run inline on the caller's goroutine, in index
// order, with no goroutine spawned.
func ForEach(workers, n int, fn func(i int)) {
	workers = Effective(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg   sync.WaitGroup
		next int
		mu   sync.Mutex
	)
	// Batched work-stealing: each grab takes a small contiguous run of
	// indexes, amortising the mutex without the imbalance of one huge
	// chunk per worker.
	batch := n / (workers * 8)
	if batch < 1 {
		batch = 1
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += batch
				mu.Unlock()
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Chunks partitions [0,n) into at most workers contiguous [lo,hi) spans
// of near-equal size and runs fn on each concurrently. Use it when a
// shard needs its own accumulator that is later merged in shard order:
// fn(shard, lo, hi) with shard in [0, NumChunks(workers, n)). Because the
// spans are contiguous and ascending, concatenating per-shard results in
// shard index order reproduces global index order exactly — the property
// every deterministic merge in this repo leans on. A single shard (after
// clamping) runs inline with no goroutine spawned.
func Chunks(workers, n int, fn func(shard, lo, hi int)) {
	shards := NumChunks(workers, n)
	if shards == 0 {
		return
	}
	if shards == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		go func(shard, lo, hi int) {
			defer wg.Done()
			fn(shard, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// NumChunks reports how many shards Chunks(workers, n, ...) will create,
// so callers can pre-size their per-shard accumulator slices. Chunks
// itself derives its shard count from this function, so the two can
// never disagree.
func NumChunks(workers, n int) int {
	return Effective(workers, n)
}

// Group runs a set of tasks concurrently and collects every error, in
// the order the tasks were added (not the order they finished). Unlike
// x/sync/errgroup it does not cancel siblings: experiment tasks are
// independent and short-lived, and deterministic error reporting matters
// more than early exit.
type Group struct {
	limit chan struct{}

	wg   sync.WaitGroup
	mu   sync.Mutex
	errs []error
	next int
}

// NewGroup creates a group running at most workers tasks at once
// (workers <= 0 means one per CPU).
func NewGroup(workers int) *Group {
	return &Group{limit: make(chan struct{}, Workers(workers))}
}

// Go schedules fn on the group.
func (g *Group) Go(fn func() error) {
	g.mu.Lock()
	slot := g.next
	g.next++
	g.errs = append(g.errs, nil)
	g.mu.Unlock()

	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.limit <- struct{}{}
		defer func() { <-g.limit }()
		err := fn()
		g.mu.Lock()
		g.errs[slot] = err
		g.mu.Unlock()
	}()
}

// Wait blocks until every scheduled task has finished and returns the
// first non-nil error in scheduling order (nil if all succeeded).
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, err := range g.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SeedFor derives a statistically independent sub-seed for index idx
// from a base seed, using the splitmix64 finaliser. The derivation is a
// pure function of (base, idx), so shard layouts and worker counts never
// change the random stream an index sees.
func SeedFor(base, idx int64) int64 {
	z := uint64(base) + uint64(idx+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// splitmixSource is a splitmix64 stream implementing rand.Source64.
// Unlike math/rand's default source (a 607-word table costing ~150µs to
// seed), it seeds in O(1) — which is what makes one-RNG-per-work-item
// affordable on hot paths.
type splitmixSource struct {
	state uint64
}

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

// NewRNG returns a *rand.Rand over a splitmix64 source seeded with seed.
// Use it (typically with SeedFor) wherever a parallel loop needs one
// cheap deterministic RNG per work item.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(&splitmixSource{state: uint64(seed)})
}
