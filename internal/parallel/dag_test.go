package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"torhs/internal/fault"
)

func TestDAGRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(key string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, key)
			mu.Unlock()
			return nil
		}
	}
	d := NewDAG(8)
	// c -> b -> a, d independent.
	if err := d.Add("c", []string{"b"}, record("c")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a", nil, record("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("b", []string{"a"}, record("b")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("d", nil, record("d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, key := range order {
		pos[key] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d tasks, want 4 (%v)", len(order), order)
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Fatalf("dependency order violated: %v", order)
	}
}

func TestDAGDuplicateKey(t *testing.T) {
	d := NewDAG(1)
	if err := d.Add("x", nil, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("x", nil, func() error { return nil }); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestDAGUnknownDependency(t *testing.T) {
	d := NewDAG(1)
	if err := d.Add("x", []string{"ghost"}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	err := d.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown dependency not reported: %v", err)
	}
}

func TestDAGCycle(t *testing.T) {
	d := NewDAG(2)
	ran := false
	if err := d.Add("a", []string{"b"}, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("b", []string{"a"}, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	err := d.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not reported: %v", err)
	}
	if ran {
		t.Fatal("task ran despite cycle")
	}
}

func TestDAGSkipsDownstreamOfFailure(t *testing.T) {
	boom := errors.New("boom")
	var downstream, sibling atomic.Bool
	d := NewDAG(4)
	if err := d.Add("fail", nil, func() error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("child", []string{"fail"}, func() error { downstream.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("grandchild", []string{"child"}, func() error { downstream.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("independent", nil, func() error { sibling.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if downstream.Load() {
		t.Fatal("task downstream of a failure ran")
	}
	if !sibling.Load() {
		t.Fatal("independent sibling was not run")
	}
}

func TestDAGFirstErrorInAddOrder(t *testing.T) {
	first := errors.New("first")
	second := errors.New("second")
	// The later-added task fails instantly, the earlier one slowly; the
	// reported error must still be the earlier one.
	for i := 0; i < 10; i++ {
		d := NewDAG(4)
		if err := d.Add("slow", nil, func() error {
			for j := 0; j < 1000; j++ {
				_ = j
			}
			return first
		}); err != nil {
			t.Fatal(err)
		}
		if err := d.Add("fast", nil, func() error { return second }); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(context.Background()); !errors.Is(err, first) {
			t.Fatalf("err = %v, want first-added task's error", err)
		}
	}
}

func TestDAGWorkerLimit(t *testing.T) {
	var running, peak atomic.Int32
	d := NewDAG(2)
	for i := 0; i < 16; i++ {
		key := string(rune('a' + i))
		if err := d.Add(key, nil, func() error {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			for j := 0; j < 10000; j++ {
				_ = j
			}
			running.Add(-1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds worker limit 2", p)
	}
}

// withInjector installs a fault injector for one test.
func withInjector(t *testing.T, in *fault.Injector) {
	t.Helper()
	prev := fault.Active()
	fault.Install(in)
	t.Cleanup(func() { fault.Install(prev) })
}

// noBackoff keeps retry tests instant.
var noBackoff = fault.RetryPolicy{Attempts: 3}

func TestDAGRetriesBoundaryFaultWithoutRerunningTask(t *testing.T) {
	in := fault.New(1)
	if err := in.Set(fault.SiteTask, fault.Rule{Mode: fault.ModeErr, At: 1}); err != nil {
		t.Fatal(err)
	}
	withInjector(t, in)
	var runs atomic.Int32
	d := NewDAG(1)
	d.SetRetry(noBackoff)
	if err := d.Add("only", nil, func() error { runs.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("task ran %d times, want exactly 1 (boundary fault must not re-execute work)", got)
	}
	if in.Fires(fault.SiteTask) != 1 {
		t.Fatalf("site fired %d times, want 1", in.Fires(fault.SiteTask))
	}
}

func TestDAGRetryExhaustionIsPermanent(t *testing.T) {
	in := fault.New(1)
	// Every hit faults: the boundary never clears, the task never runs.
	if err := in.Set(fault.SiteTask, fault.Rule{Mode: fault.ModeErr}); err != nil {
		t.Fatal(err)
	}
	withInjector(t, in)
	var runs atomic.Int32
	d := NewDAG(1)
	d.SetRetry(noBackoff)
	if err := d.Add("only", nil, func() error { runs.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	err := d.Run(context.Background())
	if err == nil {
		t.Fatal("Run succeeded under a persistent boundary fault")
	}
	if errors.Is(err, fault.Transient) {
		t.Fatalf("exhausted retry still classifies transient: %v", err)
	}
	if got := runs.Load(); got != 0 {
		t.Fatalf("task ran %d times behind a persistent boundary fault, want 0", got)
	}
}

func TestDAGRetriesTransientTaskError(t *testing.T) {
	// A transient error *returned by the closure* is retried too; this
	// is safe in the study pipeline because artefact memos latch, so a
	// retried closure returns instantly instead of re-executing work.
	withInjector(t, nil)
	var runs atomic.Int32
	d := NewDAG(1)
	d.SetRetry(noBackoff)
	if err := d.Add("flaky", nil, func() error {
		if runs.Add(1) == 1 {
			return fmt.Errorf("wrapped: %w", fault.Transient)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("task ran %d times, want 2 (one retry)", got)
	}
}
