package parallel

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDAGRespectsDependencies(t *testing.T) {
	var mu sync.Mutex
	var order []string
	record := func(key string) func() error {
		return func() error {
			mu.Lock()
			order = append(order, key)
			mu.Unlock()
			return nil
		}
	}
	d := NewDAG(8)
	// c -> b -> a, d independent.
	if err := d.Add("c", []string{"b"}, record("c")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("a", nil, record("a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("b", []string{"a"}, record("b")); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("d", nil, record("d")); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int, len(order))
	for i, key := range order {
		pos[key] = i
	}
	if len(order) != 4 {
		t.Fatalf("ran %d tasks, want 4 (%v)", len(order), order)
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Fatalf("dependency order violated: %v", order)
	}
}

func TestDAGDuplicateKey(t *testing.T) {
	d := NewDAG(1)
	if err := d.Add("x", nil, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("x", nil, func() error { return nil }); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestDAGUnknownDependency(t *testing.T) {
	d := NewDAG(1)
	if err := d.Add("x", []string{"ghost"}, func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	err := d.Run()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("unknown dependency not reported: %v", err)
	}
}

func TestDAGCycle(t *testing.T) {
	d := NewDAG(2)
	ran := false
	if err := d.Add("a", []string{"b"}, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("b", []string{"a"}, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	err := d.Run()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not reported: %v", err)
	}
	if ran {
		t.Fatal("task ran despite cycle")
	}
}

func TestDAGSkipsDownstreamOfFailure(t *testing.T) {
	boom := errors.New("boom")
	var downstream, sibling atomic.Bool
	d := NewDAG(4)
	if err := d.Add("fail", nil, func() error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("child", []string{"fail"}, func() error { downstream.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("grandchild", []string{"child"}, func() error { downstream.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Add("independent", nil, func() error { sibling.Store(true); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if downstream.Load() {
		t.Fatal("task downstream of a failure ran")
	}
	if !sibling.Load() {
		t.Fatal("independent sibling was not run")
	}
}

func TestDAGFirstErrorInAddOrder(t *testing.T) {
	first := errors.New("first")
	second := errors.New("second")
	// The later-added task fails instantly, the earlier one slowly; the
	// reported error must still be the earlier one.
	for i := 0; i < 10; i++ {
		d := NewDAG(4)
		if err := d.Add("slow", nil, func() error {
			for j := 0; j < 1000; j++ {
				_ = j
			}
			return first
		}); err != nil {
			t.Fatal(err)
		}
		if err := d.Add("fast", nil, func() error { return second }); err != nil {
			t.Fatal(err)
		}
		if err := d.Run(); !errors.Is(err, first) {
			t.Fatalf("err = %v, want first-added task's error", err)
		}
	}
}

func TestDAGWorkerLimit(t *testing.T) {
	var running, peak atomic.Int32
	d := NewDAG(2)
	for i := 0; i < 16; i++ {
		key := string(rune('a' + i))
		if err := d.Add(key, nil, func() error {
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			for j := 0; j < 10000; j++ {
				_ = j
			}
			running.Add(-1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeds worker limit 2", p)
	}
}
