package parallel

import (
	"context"
	"fmt"
	"sync"

	"torhs/internal/fault"
)

// DAG runs a set of keyed tasks with declared dependencies on a bounded
// worker pool. A task starts only once every task it depends on has
// finished successfully; tasks with no path between them run
// concurrently, up to the worker limit. Like Group, the DAG never
// cancels siblings and reports the first error in Add order, so error
// surfaces are deterministic regardless of scheduling.
//
// Each task runs behind the fault plane's parallel.task site and a
// retry policy: errors classified transient (errors.Is(err,
// fault.Transient)) are retried with exponential backoff before the
// task is declared failed. The site fires before the task closure, so
// retrying a boundary fault never re-executes completed work; a
// transient error escaping the closure itself is only retried because
// the layers below either latch their result or retry internally.
type DAG struct {
	workers int
	retry   fault.RetryPolicy
	keys    []string
	nodes   map[string]*dagNode
}

type dagNode struct {
	deps    []string
	fn      func() error
	done    chan struct{}
	err     error // written before done closes, read only after
	skipped bool  // a dependency failed or was itself skipped
}

// NewDAG creates a scheduler running at most workers tasks at once
// (workers <= 0 means one per CPU).
func NewDAG(workers int) *DAG {
	return &DAG{
		workers: Workers(workers),
		retry:   fault.DefaultRetry,
		nodes:   make(map[string]*dagNode),
	}
}

// SetRetry replaces the scheduler's transient-fault retry policy (the
// default is fault.DefaultRetry). Must be called before Run.
func (d *DAG) SetRetry(p fault.RetryPolicy) { d.retry = p }

// Add registers fn under key, to run after every task named in deps.
// Dependencies may be added in any order before Run; Add only rejects a
// duplicate key.
func (d *DAG) Add(key string, deps []string, fn func() error) error {
	if _, dup := d.nodes[key]; dup {
		return fmt.Errorf("parallel: duplicate DAG task %q", key)
	}
	d.keys = append(d.keys, key)
	d.nodes[key] = &dagNode{
		deps: append([]string(nil), deps...),
		fn:   fn,
		done: make(chan struct{}),
	}
	return nil
}

// validate rejects edges to unknown tasks and dependency cycles (via
// Kahn's algorithm) before anything runs, so a malformed graph fails
// fast instead of deadlocking.
func (d *DAG) validate() error {
	indeg := make(map[string]int, len(d.keys))
	dependents := make(map[string][]string, len(d.keys))
	for _, key := range d.keys {
		n := d.nodes[key]
		for _, dep := range n.deps {
			if _, ok := d.nodes[dep]; !ok {
				return fmt.Errorf("parallel: DAG task %q depends on unknown task %q", key, dep)
			}
			indeg[key]++
			dependents[dep] = append(dependents[dep], key)
		}
	}
	queue := make([]string, 0, len(d.keys))
	for _, key := range d.keys {
		if indeg[key] == 0 {
			queue = append(queue, key)
		}
	}
	seen := 0
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		seen++
		for _, dep := range dependents[key] {
			if indeg[dep]--; indeg[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if seen != len(d.keys) {
		var cyclic []string
		for _, key := range d.keys {
			if indeg[key] > 0 {
				cyclic = append(cyclic, key)
			}
		}
		return fmt.Errorf("parallel: DAG dependency cycle through %v", cyclic)
	}
	return nil
}

// Run validates the graph, executes it, and blocks until every runnable
// task has finished. It returns the first error in Add order: either a
// graph-shape error (unknown dependency, cycle) before anything runs, or
// the first task error. Tasks downstream of a failed task are skipped.
// Run must be called at most once.
//
// Cancelling ctx stops the schedule at task boundaries: tasks that have
// not yet started record ctx.Err() instead of running (their dependents
// are skipped like any other failure), tasks already executing are
// cancelled through the ctx their closure observes, and Run still waits
// for every in-flight task to return — there are no goroutines left
// behind, and a task that completed before the cancellation keeps its
// result.
func (d *DAG) Run(ctx context.Context) error {
	if err := d.validate(); err != nil {
		return err
	}
	limit := make(chan struct{}, d.workers)
	var wg sync.WaitGroup
	wg.Add(len(d.keys))
	for _, key := range d.keys {
		n := d.nodes[key]
		go func(key string, n *dagNode) {
			defer wg.Done()
			defer close(n.done)
			for _, dep := range n.deps {
				dn := d.nodes[dep]
				<-dn.done
				if dn.err != nil || dn.skipped {
					n.skipped = true
				}
			}
			if n.skipped {
				return
			}
			select {
			case limit <- struct{}{}:
			case <-ctx.Done():
				n.err = ctx.Err()
				return
			}
			defer func() { <-limit }()
			n.err = fault.RetryCtx(ctx, d.retry, func() error {
				if err := fault.Hit(fault.SiteTask); err != nil {
					return err
				}
				return n.fn()
			})
		}(key, n)
	}
	wg.Wait()
	for _, key := range d.keys {
		if err := d.nodes[key].err; err != nil {
			return err
		}
	}
	return nil
}
