package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 1000
		var hits [n]int32
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		for _, n := range []int{0, 1, 5, 97} {
			covered := make([]int32, n)
			shards := NumChunks(workers, n)
			seen := make([]int32, shards+1)
			Chunks(workers, n, func(shard, lo, hi int) {
				atomic.AddInt32(&seen[shard], 1)
				if lo > hi || hi > n {
					t.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
			for s := 0; s < shards; s++ {
				if seen[s] != 1 {
					t.Fatalf("workers=%d n=%d: shard %d run %d times", workers, n, s, seen[s])
				}
			}
		}
	}
}

// TestEffectiveClamps pins the worker clamp: min(workers, n, GOMAXPROCS),
// with <= 0 meaning one per CPU. GOMAXPROCS is pinned for the test so the
// expectations hold on any box.
func TestEffectiveClamps(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	cases := []struct{ workers, n, want int }{
		{1, 100, 1},   // explicit sequential
		{2, 100, 2},   // under every bound
		{8, 100, 4},   // clamped by GOMAXPROCS
		{8, 3, 3},     // clamped by n
		{0, 100, 4},   // auto: one per CPU
		{0, 2, 2},     // auto, clamped by n
		{100, 100, 4}, // clamped by GOMAXPROCS
		{3, 0, 0},     // empty range
	}
	for _, c := range cases {
		if got := Effective(c.workers, c.n); got != c.want {
			t.Errorf("Effective(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
		if got := NumChunks(c.workers, c.n); got != c.want {
			t.Errorf("NumChunks(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestChunksBoundariesPinned pins the exact [lo,hi) spans Chunks hands
// out: contiguous, ascending, s*n/shards..(s+1)*n/shards — the invariant
// that makes shard-then-index merges reproduce global index order.
func TestChunksBoundariesPinned(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, c := range []struct{ workers, n int }{
		{4, 10}, {3, 7}, {2, 97}, {4, 4}, {1, 5}, {4, 2},
	} {
		shards := NumChunks(c.workers, c.n)
		type span struct{ lo, hi int }
		got := make([]span, shards)
		Chunks(c.workers, c.n, func(shard, lo, hi int) {
			got[shard] = span{lo, hi}
		})
		for s := 0; s < shards; s++ {
			wantLo, wantHi := s*c.n/shards, (s+1)*c.n/shards
			if got[s].lo != wantLo || got[s].hi != wantHi {
				t.Errorf("workers=%d n=%d shard %d: span [%d,%d), want [%d,%d)",
					c.workers, c.n, s, got[s].lo, got[s].hi, wantLo, wantHi)
			}
		}
		if shards > 0 && (got[0].lo != 0 || got[shards-1].hi != c.n) {
			t.Errorf("workers=%d n=%d: spans do not cover [0,%d)", c.workers, c.n, c.n)
		}
	}
}

// TestForEachSequentialPathIsOrdered pins the zero-spawn path: at
// workers=1 the indexes arrive inline, in ascending order — which only a
// same-goroutine loop can guarantee.
func TestForEachSequentialPathIsOrdered(t *testing.T) {
	const n = 100
	var order []int // deliberately unsynchronised: -race proves inline execution
	ForEach(1, n, func(i int) { order = append(order, i) })
	if len(order) != n {
		t.Fatalf("fn ran %d times, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential path visited index %d at position %d", v, i)
		}
	}
}

// TestForEachEveryIndexOnceAboveGOMAXPROCS covers the clamp path: worker
// counts far above GOMAXPROCS and n still see every index exactly once.
func TestForEachEveryIndexOnceAboveGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	const n = 500
	var hits [n]int32
	ForEach(64, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestGroupReturnsFirstErrorInOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	release := make(chan struct{})
	g := NewGroup(4)
	g.Go(func() error { <-release; return errA }) // scheduled first, finishes last
	g.Go(func() error { return errB })
	g.Go(func() error { close(release); return nil })
	if err := g.Wait(); err != errA {
		t.Fatalf("Wait() = %v, want first-scheduled error %v", err, errA)
	}
}

func TestGroupNilOnSuccess(t *testing.T) {
	g := NewGroup(2)
	var n int32
	for i := 0; i < 10; i++ {
		g.Go(func() error { atomic.AddInt32(&n, 1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ran %d tasks, want 10", n)
	}
}

func TestSeedForIsPureAndSpread(t *testing.T) {
	if SeedFor(42, 7) != SeedFor(42, 7) {
		t.Fatal("SeedFor not deterministic")
	}
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		s := SeedFor(42, i)
		if seen[s] {
			t.Fatalf("collision at idx %d", i)
		}
		seen[s] = true
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatal("base seed ignored")
	}
}
