package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 1000
		var hits [n]int32
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestChunksPartition(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		for _, n := range []int{0, 1, 5, 97} {
			covered := make([]int32, n)
			shards := NumChunks(workers, n)
			seen := make([]int32, shards+1)
			Chunks(workers, n, func(shard, lo, hi int) {
				atomic.AddInt32(&seen[shard], 1)
				if lo > hi || hi > n {
					t.Errorf("bad span [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
			for s := 0; s < shards; s++ {
				if seen[s] != 1 {
					t.Fatalf("workers=%d n=%d: shard %d run %d times", workers, n, s, seen[s])
				}
			}
		}
	}
}

func TestGroupReturnsFirstErrorInOrder(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	release := make(chan struct{})
	g := NewGroup(4)
	g.Go(func() error { <-release; return errA }) // scheduled first, finishes last
	g.Go(func() error { return errB })
	g.Go(func() error { close(release); return nil })
	if err := g.Wait(); err != errA {
		t.Fatalf("Wait() = %v, want first-scheduled error %v", err, errA)
	}
}

func TestGroupNilOnSuccess(t *testing.T) {
	g := NewGroup(2)
	var n int32
	for i := 0; i < 10; i++ {
		g.Go(func() error { atomic.AddInt32(&n, 1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("ran %d tasks, want 10", n)
	}
}

func TestSeedForIsPureAndSpread(t *testing.T) {
	if SeedFor(42, 7) != SeedFor(42, 7) {
		t.Fatal("SeedFor not deterministic")
	}
	seen := make(map[int64]bool)
	for i := int64(0); i < 1000; i++ {
		s := SeedFor(42, i)
		if seen[s] {
			t.Fatalf("collision at idx %d", i)
		}
		seen[s] = true
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatal("base seed ignored")
	}
}
