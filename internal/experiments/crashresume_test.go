package experiments

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"torhs/internal/fault"
	"torhs/internal/resultstore"
)

// The crash-kill matrix: for every registered fault site, a child
// process runs a small study with checkpointing and is hard-killed
// (os.Exit via TORHS_FAULT hard mode) the moment the site fires; a
// second child then resumes over the same store, and its rendered
// output must be byte-identical to an uninterrupted run — at workers=1
// and workers=all. The re-exec pattern is the real thing: the child
// parses TORHS_FAULT in package init and dies with a process exit, not
// a recovered panic, so resume starts from genuine cold state.

const (
	crashChildEnv   = "TORHS_CRASH_CHILD"   // marks the re-exec child
	crashDirEnv     = "TORHS_CRASH_DIR"     // store + output directory
	crashSelectEnv  = "TORHS_CRASH_SELECT"  // experiment selector
	crashWorkersEnv = "TORHS_CRASH_WORKERS" // worker count
	crashResumeEnv  = "TORHS_CRASH_RESUME"  // "1": resume from checkpoints
	crashStreamEnv  = "TORHS_CRASH_STREAM"  // "1": run the streaming pipeline
)

// crashConfig is the tiny study the matrix runs: big enough that every
// site fires, small enough for dozens of child processes.
func crashConfig(workers int) Config {
	cfg := DefaultConfig(7)
	cfg.Scale = 0.02
	cfg.Clients = 100
	cfg.TrawlIPs = 6
	cfg.TrawlSteps = 3
	cfg.Relays = 250
	cfg.Workers = workers
	return cfg
}

// TestCrashResumeChild is the re-exec entry point, inert unless the
// parent set the child environment.
func TestCrashResumeChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("re-exec child of TestResumeByteIdentical")
	}
	dir := os.Getenv(crashDirEnv)
	workers := 1
	if n, err := strconv.Atoi(os.Getenv(crashWorkersEnv)); err == nil {
		workers = n
	}
	store, err := resultstore.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := crashConfig(workers)
	cfg.Stream = os.Getenv(crashStreamEnv) == "1"
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = Paper().RunStudy(context.Background(), env, RunOptions{
		Names:           parseNames(os.Getenv(crashSelectEnv)),
		Scenario:        "crash",
		Store:           store,
		UseCache:        true,
		CheckpointEvery: 1,
		Resume:          os.Getenv(crashResumeEnv) == "1",
	}, &buf)
	if err != nil {
		t.Fatalf("child study: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "out.txt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func parseNames(s string) []string {
	var names []string
	for _, part := range bytes.Split([]byte(s), []byte(",")) {
		if len(part) > 0 {
			names = append(names, string(part))
		}
	}
	return names
}

// runChild re-execs the test binary into TestCrashResumeChild and
// returns its exit code and combined output. extraEnv entries (KEY=V)
// are appended to the child environment.
func runChild(t *testing.T, dir, selector string, workers int, faultSpec string, resume bool, extraEnv ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashResumeChild$", "-test.count=1")
	// Pin the child's GOMAXPROCS (dropping any inherited value — the
	// runtime takes the first match) so the worker matrix exercises real
	// sharding even on small runners.
	for _, kv := range os.Environ() {
		if !strings.HasPrefix(kv, "GOMAXPROCS=") {
			cmd.Env = append(cmd.Env, kv)
		}
	}
	cmd.Env = append(cmd.Env,
		"GOMAXPROCS=8",
		crashChildEnv+"=1",
		crashDirEnv+"="+dir,
		crashSelectEnv+"="+selector,
		fmt.Sprintf("%s=%d", crashWorkersEnv, workers),
	)
	if resume {
		cmd.Env = append(cmd.Env, crashResumeEnv+"=1")
	}
	if faultSpec != "" {
		cmd.Env = append(cmd.Env, fault.EnvVar+"="+faultSpec)
	}
	cmd.Env = append(cmd.Env, extraEnv...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("re-exec failed: %v\n%s", err, out)
	return -1, ""
}

// crashCell is one site of the matrix: the experiments that can reach
// it and the hit index to kill at (late enough that real work — and for
// window sites, at least one checkpoint — precedes the crash).
type crashCell struct {
	site fault.Site
	sel  string
	at   int
}

func matrixCells() []crashCell {
	return []crashCell{
		{fault.SiteStoreWrite, "popularity,tracking", 2},
		{fault.SiteStoreRename, "popularity,tracking", 2},
		{fault.SiteStoreRead, "popularity,tracking", 2},
		{fault.SiteCheckpoint, "popularity,tracking", 4},
		{fault.SiteTask, "popularity,tracking", 2},
		{fault.SiteTrawlStep, "popularity", 3},
		{fault.SiteTrackingWindow, "tracking", 60},
		// deanon drives exactly one traffic window, so the kill must land
		// on the first hit.
		{fault.SiteSimWindow, "deanon", 1},
	}
}

// TestResumeByteIdentical is the acceptance-criterion matrix: kill at
// every registered fault site, at workers=1, workers=4 and workers=all,
// and require the resumed output to equal the uninterrupted run's bytes.
func TestResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec matrix is not short")
	}
	refs := map[string][]byte{} // (selector|workers) -> uninterrupted output
	reference := func(sel string, workers int) []byte {
		key := fmt.Sprintf("%s|%d", sel, workers)
		if ref, ok := refs[key]; ok {
			return ref
		}
		dir := t.TempDir()
		if code, out := runChild(t, dir, sel, workers, "", false); code != 0 {
			t.Fatalf("reference run (%s workers=%d) exited %d\n%s", sel, workers, code, out)
		}
		ref, err := os.ReadFile(filepath.Join(dir, "out.txt"))
		if err != nil {
			t.Fatal(err)
		}
		refs[key] = ref
		return ref
	}

	for _, workers := range []int{1, 4, 0} {
		crashed := 0
		for _, cell := range matrixCells() {
			name := fmt.Sprintf("%s/workers=%d", cell.site, workers)
			dir := t.TempDir()
			spec := fmt.Sprintf("seed=1; hard; %s=crash@%d", cell.site, cell.at)
			code, out := runChild(t, dir, cell.sel, workers, spec, false)
			switch code {
			case fault.HardExitCode:
				crashed++
			case 0:
				// The site never reached hit `at` in this configuration;
				// the cell proves nothing, but must not mask a crash
				// that produced partial on-disk state.
				t.Logf("%s: site not hit (run completed); skipping cell", name)
				continue
			default:
				t.Fatalf("%s: crash child exited %d, want %d\n%s", name, code, fault.HardExitCode, out)
			}
			if _, err := os.Stat(filepath.Join(dir, "out.txt")); !os.IsNotExist(err) {
				t.Fatalf("%s: crashed child left an output file", name)
			}

			if code, out := runChild(t, dir, cell.sel, workers, "", true); code != 0 {
				t.Fatalf("%s: resume run exited %d\n%s", name, code, out)
			}
			got, err := os.ReadFile(filepath.Join(dir, "out.txt"))
			if err != nil {
				t.Fatal(err)
			}
			if want := reference(cell.sel, workers); !bytes.Equal(got, want) {
				t.Errorf("%s: resumed output diverged from uninterrupted run (%d vs %d bytes)",
					name, len(got), len(want))
			}
		}
		// The matrix is only evidence if the kills actually happened: a
		// cell whose site stops firing (code drift, config drift) must
		// fail loudly, not silently shrink coverage.
		if want := len(matrixCells()); crashed != want {
			t.Errorf("workers=%d: only %d/%d sites crashed the child; matrix lost coverage", workers, crashed, want)
		}
	}
}
