package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// subsetConfig is the shared small-but-complete study configuration the
// registry tests run at (same sizes as the RunAll determinism test).
func subsetConfig(seed int64, workers int) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.02
	cfg.Clients = 250
	cfg.TrawlIPs = 12
	cfg.TrawlSteps = 3
	cfg.Relays = 300
	cfg.Workers = workers
	return cfg
}

// renderSubset runs the named experiments (nil = all) on a fresh Env and
// returns the rendered output.
func renderSubset(t *testing.T, seed int64, workers int, names []string) string {
	t.Helper()
	env, err := NewEnv(subsetConfig(seed, workers))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Paper().Run(context.Background(), env, names, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSubsetMatchesFullStudy is the registry's determinism contract: for
// a fixed seed, every registered experiment run alone renders
// byte-identically to its section of the full-study output — at one
// worker and at one-per-CPU — and the full output is exactly the
// concatenation of the per-experiment sections in paper order.
func TestSubsetMatchesFullStudy(t *testing.T) {
	const seed = 11
	full := renderSubset(t, seed, 1, nil)
	if full == "" {
		t.Fatal("full study rendered nothing")
	}
	var concat strings.Builder
	for _, name := range Paper().Names() {
		alone := renderSubset(t, seed, 1, []string{name})
		if alone == "" {
			t.Errorf("experiment %q rendered nothing", name)
		}
		if allWorkers := renderSubset(t, seed, 0, []string{name}); allWorkers != alone {
			t.Errorf("experiment %q renders differently at Workers=1 vs Workers=all:\n--- workers=1 ---\n%s\n--- workers=all ---\n%s",
				name, alone, allWorkers)
		}
		if !strings.Contains(full, alone) {
			t.Errorf("experiment %q run alone is not a section of the full study output:\n%s", name, alone)
		}
		concat.WriteString(alone)
	}
	if concat.String() != full {
		t.Errorf("concatenated per-experiment sections differ from the full study output:\n--- concatenated ---\n%s\n--- full ---\n%s",
			concat.String(), full)
	}
}

// TestSubsetRendersOnlySelection: a dependency pulled in for its result
// must execute but not render.
func TestSubsetRendersOnlySelection(t *testing.T) {
	out := renderSubset(t, 11, 0, []string{ExpContent})
	if strings.Contains(out, "Fig. 1") {
		t.Fatalf("content subset rendered its scan dependency:\n%s", out)
	}
	if !strings.Contains(out, "Table I") {
		t.Fatalf("content subset missing its own artefact:\n%s", out)
	}
}

// TestSubsetSharesDependencyExecution: within one Env, asking for the
// dependency's typed result after a dependent ran must not re-run it.
func TestSubsetSharesDependencyExecution(t *testing.T) {
	env, err := NewEnv(subsetConfig(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := Paper().Run(context.Background(), env, []string{ExpContent}, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, err := env.Dep(ExpScan)
	if err != nil {
		t.Fatalf("scan artefact not memoized after content ran: %v", err)
	}
	if a.(*scanArtefact).res == nil {
		t.Fatal("memoized scan artefact empty")
	}
}

func TestRegistryResolve(t *testing.T) {
	r := Paper()
	all, err := r.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(r.Names()) {
		t.Fatalf("Resolve(nil) = %d experiments, want %d", len(all), len(r.Names()))
	}
	closure, err := r.Resolve([]string{ExpContent})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range closure {
		names = append(names, e.Name())
	}
	if strings.Join(names, ",") != ExpScan+","+ExpContent {
		t.Fatalf("content closure = %v, want [scan content] in paper order", names)
	}
	if _, err := r.Resolve([]string{"nope"}); err == nil || !strings.Contains(err.Error(), ExpScan) {
		t.Fatalf("unknown experiment error should list the registry, got %v", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := NewRegistry()
	ok := NewExperiment("a", "", nil, func(context.Context, *Env) (Artefact, error) { return ArtefactFunc(func(io.Writer) {}), nil })
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Experiment{
		NewExperiment("a", "", nil, nil),                 // duplicate
		NewExperiment("", "", nil, nil),                  // empty
		NewExperiment("all", "", nil, nil),               // reserved
		NewExperiment("x,y", "", nil, nil),               // comma
		NewExperiment("b", "", []string{"missing"}, nil), // unknown dep
		NewExperiment("c", "", []string{"c"}, nil),       // self dep
	} {
		if err := r.Register(bad); err == nil {
			t.Errorf("Register(%q deps %v) accepted", bad.Name(), bad.Needs())
		}
	}
}

// TestCustomExperiment: a registered extension participates in
// scheduling, dependency resolution and rendering with no other wiring.
func TestCustomExperiment(t *testing.T) {
	r := Paper()
	err := r.Register(NewExperiment("descriptor-count", "how many services published", []string{ExpScan},
		func(ctx context.Context, e *Env) (Artefact, error) {
			dep, err := e.Dep(ExpScan)
			if err != nil {
				return nil, err
			}
			n := dep.(*scanArtefact).res.WithDescriptor
			return ArtefactFunc(func(w io.Writer) {
				fmt.Fprintf(w, "== custom: descriptor count ==\n%d\n", n)
			}), nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(subsetConfig(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Run(context.Background(), env, []string{"descriptor-count"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "== custom: descriptor count ==") || strings.Contains(out, "Fig. 1") {
		t.Fatalf("custom experiment output wrong:\n%s", out)
	}
}

// TestRunPropagatesExperimentError: a failing experiment surfaces
// wrapped with its name, and dependents are skipped rather than run.
func TestRunPropagatesExperimentError(t *testing.T) {
	boom := errors.New("boom")
	r := NewRegistry()
	if err := r.Register(NewExperiment("fail", "", nil,
		func(context.Context, *Env) (Artefact, error) { return nil, boom })); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := r.Register(NewExperiment("child", "", []string{"fail"},
		func(context.Context, *Env) (Artefact, error) {
			ran = true
			return ArtefactFunc(func(io.Writer) {}), nil
		})); err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(subsetConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	runErr := r.Run(context.Background(), env, nil, io.Discard)
	if !errors.Is(runErr, boom) || !strings.Contains(runErr.Error(), "fail") {
		t.Fatalf("err = %v, want wrapped boom", runErr)
	}
	if ran {
		t.Fatal("dependent of failed experiment ran")
	}
}

func TestDepBeforeRunIsAnError(t *testing.T) {
	env, err := NewEnv(subsetConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.Dep(ExpScan); err == nil {
		t.Fatal("Dep before the dependency ran should error")
	}
	// The failed probe must not poison the memo: the experiment still
	// runs on this Env afterwards.
	if err := Paper().Run(context.Background(), env, []string{ExpScan}, io.Discard); err != nil {
		t.Fatalf("scan no longer runs after an early Dep probe: %v", err)
	}
	if a, err := env.Dep(ExpScan); err != nil || a.(*scanArtefact).res == nil {
		t.Fatalf("Dep after the run = (%v, %v), want the scan artefact", a, err)
	}
}

func TestNewEnvValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"overscale", func(c *Config) { c.Scale = 2 }},
		{"negative bot factor", func(c *Config) { c.BotFactor = -1 }},
		{"negative tracking days", func(c *Config) { c.TrackingDays = -1 }},
	} {
		cfg := DefaultConfig(1)
		tc.mutate(&cfg)
		if _, err := NewEnv(cfg); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
