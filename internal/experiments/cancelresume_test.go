package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"torhs/internal/fault"
	"torhs/internal/resultstore"
)

// The cancellation matrix, the in-process sibling of the crash-kill
// matrix: a study runs under a cancellable context and is cancelled
// mid-kernel — timed off the fault-site hit counters, which tick at
// exactly the boundaries the //torhs:cancelpoint annotations guard —
// then a resume run over the same store must produce byte-identical
// output to an uninterrupted run, and every document the cancelled run
// published must be the full document (same content hash as the
// reference), never a partial one.

type cancelCell struct {
	site fault.Site
	sel  string
	at   int // cancel once the site has been hit this many times
}

func cancelCells() []cancelCell {
	return []cancelCell{
		// deanon drives exactly one traffic window; cancel as it starts.
		{fault.SiteSimWindow, "deanon", 1},
		{fault.SiteTrawlStep, "popularity", 2},
		{fault.SiteTrackingWindow, "tracking", 40},
		{fault.SiteTask, "popularity,tracking", 2},
		{fault.SiteCheckpoint, "popularity,tracking", 3},
	}
}

// cancelStudy runs the small crashConfig study in-process under ctx.
func cancelStudy(ctx context.Context, store *resultstore.Store, sel string, workers int, resume bool) ([]byte, error) {
	env, err := NewEnv(crashConfig(workers))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err = Paper().RunStudy(ctx, env, RunOptions{
		Names:           parseNames(sel),
		Scenario:        "cancel",
		Store:           store,
		UseCache:        true,
		CheckpointEvery: 1,
		Resume:          resume,
	}, &buf)
	return buf.Bytes(), err
}

// TestCancelResumeByteIdentical is the cancellation acceptance matrix:
// cancel at every kernel boundary site, at workers=1 and workers=all,
// and require (a) the run to surface context.Canceled, (b) every
// published document to match the uninterrupted run's content hash, and
// (c) the resumed output to equal the uninterrupted run's bytes.
func TestCancelResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cancellation matrix is not short")
	}

	type ref struct {
		out    []byte
		hashes map[string]string // experiment -> content hash
	}
	refs := map[string]ref{}
	reference := func(t *testing.T, sel string, workers int) ref {
		key := fmt.Sprintf("%s|%d", sel, workers)
		if r, ok := refs[key]; ok {
			return r
		}
		store, err := resultstore.Open(filepath.Join(t.TempDir(), "store"))
		if err != nil {
			t.Fatal(err)
		}
		out, err := cancelStudy(context.Background(), store, sel, workers, false)
		if err != nil {
			t.Fatalf("reference run (%s workers=%d): %v", sel, workers, err)
		}
		entries, err := store.List()
		if err != nil {
			t.Fatal(err)
		}
		hashes := map[string]string{}
		for _, e := range entries {
			hashes[e.Key.Experiment] = e.ContentHash
		}
		r := ref{out: out, hashes: hashes}
		refs[key] = r
		return r
	}

	for _, workers := range []int{1, 0} {
		cancelled := 0
		for _, cell := range cancelCells() {
			name := fmt.Sprintf("%s/workers=%d", cell.site, workers)
			want := reference(t, cell.sel, workers)

			store, err := resultstore.Open(filepath.Join(t.TempDir(), "store"))
			if err != nil {
				t.Fatal(err)
			}

			// A rule-less injector still counts hits, giving the test a
			// clock that ticks at kernel boundaries.
			inj := fault.New(1)
			fault.Install(inj)
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := cancelStudy(ctx, store, cell.sel, workers, false)
				done <- err
			}()
			var runErr error
			finished := false
			for inj.Hits(cell.site) < cell.at {
				select {
				case runErr = <-done:
					finished = true
				case <-time.After(200 * time.Microsecond):
				}
				if finished {
					break
				}
			}
			cancel()
			if !finished {
				runErr = <-done
			}
			fault.Install(nil)

			if runErr == nil {
				// The run outpaced the poll loop; the cell proves nothing
				// about cancellation, but must not mask bad store state.
				t.Logf("%s: study finished before the cancel landed; skipping cell", name)
			} else if !errors.Is(runErr, context.Canceled) {
				t.Fatalf("%s: cancelled run returned %v, want context.Canceled", name, runErr)
			} else {
				cancelled++
			}

			// Never-partial-documents: whatever the cancelled run managed
			// to publish must be the complete document — bit-identical to
			// the uninterrupted run's content hash for that experiment.
			entries, err := store.List()
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				wantHash, ok := want.hashes[e.Key.Experiment]
				if !ok {
					t.Fatalf("%s: cancelled run published unexpected experiment %q", name, e.Key.Experiment)
				}
				if e.ContentHash != wantHash {
					t.Fatalf("%s: experiment %q published with hash %s, want %s (partial document?)",
						name, e.Key.Experiment, e.ContentHash, wantHash)
				}
			}

			// Resume over the same store (fresh env, as a fresh process
			// would have) and require byte-identical output.
			got, err := cancelStudy(context.Background(), store, cell.sel, workers, true)
			if err != nil {
				t.Fatalf("%s: resume run: %v", name, err)
			}
			if !bytes.Equal(got, want.out) {
				t.Errorf("%s: resumed output diverged from uninterrupted run (%d vs %d bytes)",
					name, len(got), len(want.out))
			}
		}
		// The matrix is only evidence if the cancels actually landed
		// mid-run; a cell that consistently outruns the poll loop shrinks
		// coverage and must be retimed.
		if want := len(cancelCells()); cancelled != want {
			t.Errorf("workers=%d: only %d/%d cells cancelled mid-run; matrix lost coverage", workers, cancelled, want)
		}
	}
}
