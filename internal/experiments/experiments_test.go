package experiments

import (
	"bytes"
	"strings"
	"testing"

	"torhs/internal/corpus"
	"torhs/internal/hspop"
)

func newStudy(t *testing.T, seed int64) *Study {
	t.Helper()
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.03
	cfg.Clients = 400
	cfg.TrawlIPs = 20
	cfg.TrawlSteps = 5
	cfg.Relays = 300
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStudyValidation(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Scale = 0
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestE1ScanShape(t *testing.T) {
	s := newStudy(t, 1)
	res, audit, err := s.RunScan()
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Fig1(50)
	if rows[0].Label != "55080-Skynet" {
		t.Fatalf("dominant port = %s, want Skynet", rows[0].Label)
	}
	if audit.TorHostCN == 0 || audit.DNSLeaks == 0 {
		t.Fatalf("cert audit incomplete: %+v", audit)
	}

	var buf bytes.Buffer
	RenderFig1(&buf, res)
	RenderCertAudit(&buf, audit)
	for _, want := range []string{"Fig. 1", "55080-Skynet", "other", "TorHost CN"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestE3E5ContentShape(t *testing.T) {
	s := newStudy(t, 2)
	scanRes, _, err := s.RunScan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContent(scanRes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Classified == 0 || res.EnglishTotal == 0 {
		t.Fatalf("empty content result: %+v", res)
	}
	pct := res.TopicPercentages()
	if pct[corpus.TopicAdult]+pct[corpus.TopicDrugs] < 20 {
		t.Fatalf("Adult+Drugs = %d%%, want dominant", pct[corpus.TopicAdult]+pct[corpus.TopicDrugs])
	}

	var buf bytes.Buffer
	RenderTableI(&buf, res)
	RenderLanguages(&buf, res)
	RenderFig2(&buf, res)
	for _, want := range []string{"Table I", "Other", "language mix", "Fig. 2", "Adult"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestE6PopularityShape(t *testing.T) {
	s := newStudy(t, 3)
	res, err := s.RunPopularity()
	if err != nil {
		t.Fatal(err)
	}
	if res.Harvest.CollectedFraction < 0.8 {
		t.Fatalf("collected %.2f of population", res.Harvest.CollectedFraction)
	}
	if res.Resolution.ResolvedAddresses == 0 {
		t.Fatal("nothing resolved")
	}
	// Unresolvable share ≈ 80% as in the paper.
	unresolved := float64(res.Resolution.TotalRequests-res.Resolution.ResolvedRequests) /
		float64(res.Resolution.TotalRequests)
	if unresolved < 0.6 || unresolved > 0.95 {
		t.Fatalf("unresolved share = %.2f, want ~0.8", unresolved)
	}
	// Table II shape: Goldnet tops the ranking; Skynet cluster in the
	// upper ranks; Silk Road present.
	if res.Ranking[0].Label != "Goldnet" {
		t.Fatalf("rank 1 label = %q, want Goldnet", res.Ranking[0].Label)
	}
	foundSilkRoad := false
	skynetTop30 := 0
	for _, e := range res.Ranking {
		if e.Label == "SilkRoad" {
			foundSilkRoad = true
			if e.Rank < 5 || e.Rank > 40 {
				t.Fatalf("SilkRoad rank = %d, want mid-top (paper: 18)", e.Rank)
			}
		}
		if e.Rank <= 30 && e.Label == "Skynet" {
			skynetTop30++
		}
	}
	if !foundSilkRoad {
		t.Fatal("SilkRoad missing from ranking")
	}
	if skynetTop30 < 5 {
		t.Fatalf("Skynet services in top 30 = %d, want ~10", skynetTop30)
	}

	var buf bytes.Buffer
	RenderTableII(&buf, res, 30)
	for _, want := range []string{"Table II", "Goldnet", "SilkRoad"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestE7DeanonShape(t *testing.T) {
	s := newStudy(t, 4)
	rep, err := s.RunDeanon()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignaturesSent == 0 || len(rep.Detections) == 0 {
		t.Fatalf("deanon produced nothing: %+v", rep)
	}
	if len(rep.MapPoints()) < 3 {
		t.Fatal("client map too narrow")
	}
	var buf bytes.Buffer
	RenderFig3(&buf, rep)
	if !strings.Contains(buf.String(), "Fig. 3") {
		t.Fatal("render missing header")
	}
}

func TestServiceDeanonShape(t *testing.T) {
	s := newStudy(t, 7)
	rep, err := s.RunServiceDeanon()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SignaturesSent == 0 {
		t.Fatal("no upload signatures observed")
	}
	if rep.Success && rep.RevealedIP == "" {
		t.Fatal("success without revealed IP")
	}
	var buf bytes.Buffer
	RenderServiceDeanon(&buf, rep)
	if !strings.Contains(buf.String(), "Section II-B") {
		t.Fatal("render missing header")
	}
}

func TestE8TrackingShape(t *testing.T) {
	s := newStudy(t, 5)
	res, err := s.RunTracking()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Suspicious) < 10 {
		t.Fatalf("suspicious relays = %d, want the planted trackers", len(res.Report.Suspicious))
	}
	full := false
	for _, ep := range res.Report.Episodes {
		if ep.FullTakeover {
			full = true
		}
	}
	if !full {
		t.Fatal("full takeover episode not detected")
	}
	var buf bytes.Buffer
	RenderTracking(&buf, res)
	for _, want := range []string{"Section VII", "FULL TAKEOVER", "tracknet"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestPrefixAuditFindsSilkroadCluster(t *testing.T) {
	s := newStudy(t, 9)
	if _, err := s.RunPrefixAudit(0, 3); err == nil {
		t.Fatal("prefix length 0 accepted")
	}
	if _, err := s.RunPrefixAudit(7, 1); err == nil {
		t.Fatal("cluster size 1 accepted")
	}
	clusters, err := s.RunPrefixAudit(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) == 0 {
		t.Fatal("no prefix clusters found")
	}
	top := clusters[0]
	if len(top.Addresses) < 14 {
		t.Fatalf("largest cluster = %d addresses, want ~15", len(top.Addresses))
	}
	hasOfficial, hasPhish := false, false
	for _, l := range top.Labels {
		if l == "SilkRoad" {
			hasOfficial = true
		}
		if l == "SilkRoad(phish)" {
			hasPhish = true
		}
	}
	if !hasOfficial || !hasPhish {
		t.Fatalf("cluster labels incomplete: %v", top.Labels)
	}
	var buf bytes.Buffer
	RenderPrefixAudit(&buf, clusters)
	if !strings.Contains(buf.String(), "Vanity-prefix") {
		t.Fatal("render missing header")
	}
}

func TestCollectionComparisonShape(t *testing.T) {
	s := newStudy(t, 8)
	c, err := s.RunCollectionComparison()
	if err != nil {
		t.Fatal(err)
	}
	if c.CrawlDiscovered == 0 || c.TrawlCollected == 0 {
		t.Fatalf("empty comparison: %+v", c)
	}
	// The paper's motivating gap: crawling covers a few percent,
	// trawling nearly everything.
	if c.CrawlFraction >= 0.3 {
		t.Fatalf("crawl fraction = %.2f, want small", c.CrawlFraction)
	}
	if c.TrawlFraction <= 2*c.CrawlFraction {
		t.Fatalf("trawl (%.2f) not decisively above crawl (%.2f)",
			c.TrawlFraction, c.CrawlFraction)
	}
	var buf bytes.Buffer
	RenderCollectionComparison(&buf, c)
	if !strings.Contains(buf.String(), "Collection methods") {
		t.Fatal("render missing header")
	}
}

func TestStudyExposesPopulation(t *testing.T) {
	s := newStudy(t, 6)
	if s.Population() == nil || s.Fabric() == nil {
		t.Fatal("accessors broken")
	}
	if s.Population().CountByKind()[hspop.KindGoldnetCC] != 9 {
		t.Fatal("population malformed")
	}
}
