package experiments

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"strings"
	"testing"

	"torhs/internal/report"
	"torhs/internal/resultstore"
)

// newStudyEnv builds a fresh Env at the shared small test configuration.
func newStudyEnv(t *testing.T, seed int64) *Env {
	t.Helper()
	env, err := NewEnv(subsetConfig(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestRunStudyCacheSkipsExecution is the caching acceptance contract: a
// second run with UseCache against the same store executes nothing
// (observable via RunResult's scheduling report) yet renders
// byte-identical text.
func TestRunStudyCacheSkipsExecution(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Scenario: "laptop", Store: store}

	var first bytes.Buffer
	res1, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), opts, &first)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Executed) != len(Paper().Names()) || len(res1.Cached) != 0 {
		t.Fatalf("first run executed=%v cached=%v, want all executed", res1.Executed, res1.Cached)
	}

	var second bytes.Buffer
	opts.UseCache = true
	res2, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), opts, &second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Executed) != 0 {
		t.Fatalf("cached run still executed %v", res2.Executed)
	}
	if !reflect.DeepEqual(res2.Cached, Paper().Names()) {
		t.Fatalf("cached run served %v, want every experiment", res2.Cached)
	}
	if first.String() != second.String() {
		t.Fatalf("cached render differs from fresh render:\n--- fresh ---\n%s\n--- cached ---\n%s",
			first.String(), second.String())
	}
}

// TestRunStudyCacheSkipsDependencies: when the only selected experiment
// is cached, its dependency must not execute either; on a miss the
// dependency still runs.
func TestRunStudyCacheSkipsDependencies(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := RunOptions{Names: []string{ExpContent}, Scenario: "laptop", Store: store, UseCache: true}

	res1, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Executed, []string{ExpScan, ExpContent}) {
		t.Fatalf("miss run executed %v, want scan then content", res1.Executed)
	}

	res2, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Executed) != 0 || !reflect.DeepEqual(res2.Cached, []string{ExpContent}) {
		t.Fatalf("cached run executed=%v cached=%v, want pure cache hit", res2.Executed, res2.Cached)
	}

	// The scan executed as a dependency, so its document was persisted
	// too: selecting it alone now is a cache hit, not a re-execution.
	scanOnly := opts
	scanOnly.Names = []string{ExpScan}
	res3, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), scanOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Executed) != 0 || !reflect.DeepEqual(res3.Cached, []string{ExpScan}) {
		t.Fatalf("dependency document not persisted: executed=%v cached=%v", res3.Executed, res3.Cached)
	}
}

// TestRunStudyCachedDependencyOfMissReportsExecuted: when a cached
// selected experiment must execute anyway because a cache miss depends
// on it, it is reported (and rendered) as executed, never
// double-counted as cached.
func TestRunStudyCachedDependencyOfMissReportsExecuted(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache with scan only.
	if _, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), RunOptions{
		Names: []string{ExpScan}, Scenario: "laptop", Store: store,
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Select scan+content: content misses and needs scan, so scan runs.
	var out bytes.Buffer
	res, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), RunOptions{
		Names: []string{ExpScan, ExpContent}, Scenario: "laptop", Store: store, UseCache: true,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Executed, []string{ExpScan, ExpContent}) || len(res.Cached) != 0 {
		t.Fatalf("executed=%v cached=%v, want both executed and nothing cached", res.Executed, res.Cached)
	}
	var fresh bytes.Buffer
	if err := Paper().Run(context.Background(), newStudyEnv(t, 5), []string{ExpScan, ExpContent}, &fresh); err != nil {
		t.Fatal(err)
	}
	if out.String() != fresh.String() {
		t.Fatal("partially cached run renders differently from a fresh run")
	}
}

// TestRunStudyCacheKeyedByInputs: a different seed (an output
// determinant) misses the cache; a different scenario *label* over
// identical parameters hits it — the label buckets the serving index
// but never changes output bytes, so identical runs must share one
// entry regardless of how they were spelled.
func TestRunStudyCacheKeyedByInputs(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := RunOptions{Names: []string{ExpPrefixAudit}, Scenario: "laptop", Store: store, UseCache: true}
	if _, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), base, nil); err != nil {
		t.Fatal(err)
	}

	// Different seed: miss.
	res, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 6), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) == 0 {
		t.Fatal("different seed served from cache")
	}
	// Different scenario label, same parameters: hit.
	relabelled := base
	relabelled.Scenario = "custom"
	res, err = Paper().RunStudy(context.Background(), newStudyEnv(t, 5), relabelled, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Executed) != 0 {
		t.Fatalf("identical run under a different label re-executed %v", res.Executed)
	}
	// The cache hit still bound the new label's serving slot: the run
	// is servable under the label it asked for, not only the original.
	if e, err := store.Lookup("custom", ExpPrefixAudit); err != nil || e == nil {
		t.Fatalf("cache-hit run did not bind its serving slot: entry=%v err=%v", e, err)
	}
}

// TestRunStudyJSONRoundTrips: the combined JSON encoding decodes back
// to the same document (the acceptance round-trip on real study data),
// and the per-experiment stored documents round-trip too.
func TestRunStudyJSONRoundTrips(t *testing.T) {
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	opts := RunOptions{Names: []string{ExpPrefixAudit, ExpTracking}, Format: report.FormatJSON,
		Scenario: "laptop", Store: store}
	if _, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 5), opts, &buf); err != nil {
		t.Fatal(err)
	}
	doc, err := report.DecodeJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := report.EncodeJSON(&again, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("combined study JSON did not round-trip")
	}

	entry, err := store.Lookup("laptop", ExpTracking)
	if err != nil || entry == nil {
		t.Fatalf("tracking document not stored: %v", err)
	}
	stored, err := store.Document(entry)
	if err != nil {
		t.Fatal(err)
	}
	back, err := report.DecodeJSON(strings.NewReader(string(mustCanonical(t, stored))))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stored, back) {
		t.Fatal("stored document did not round-trip")
	}
}

func mustCanonical(t *testing.T, d *report.Document) []byte {
	t.Helper()
	b, err := report.CanonicalJSON(d)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunStudyTextMatchesRun: RunStudy's text path and the legacy Run
// facade emit identical bytes.
func TestRunStudyTextMatchesRun(t *testing.T) {
	var legacy, study bytes.Buffer
	if err := Paper().Run(context.Background(), newStudyEnv(t, 9), []string{ExpPrefixAudit}, &legacy); err != nil {
		t.Fatal(err)
	}
	if _, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 9), RunOptions{Names: []string{ExpPrefixAudit}}, &study); err != nil {
		t.Fatal(err)
	}
	if legacy.String() != study.String() {
		t.Fatal("RunStudy text differs from Run")
	}
}

func TestRunStudyRejectsUnknownFormat(t *testing.T) {
	if _, err := Paper().RunStudy(context.Background(), newStudyEnv(t, 1), RunOptions{Format: "xml"}, nil); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestArtefactDocumentFallback: a print-only extension artefact wraps
// its rendered bytes in a raw section, so document text encoding equals
// Render for every artefact kind.
func TestArtefactDocumentFallback(t *testing.T) {
	a := ArtefactFunc(func(w io.Writer) { io.WriteString(w, "plain bytes\n") })
	doc := ArtefactDocument("custom", a)
	if got := report.TextString(doc); got != "plain bytes\n" {
		t.Fatalf("fallback document text = %q", got)
	}
	// An artefact that prints nothing must encode to nothing (a raw
	// section with empty Raw would otherwise grow a stray blank line).
	empty := ArtefactDocument("silent", ArtefactFunc(func(io.Writer) {}))
	if got := report.TextString(empty); got != "" {
		t.Fatalf("empty artefact document text = %q, want empty", got)
	}
}
